let check = Alcotest.check

let registry_complete () =
  let names = Workloads.names () in
  check Alcotest.int "twenty-three kernels" 23 (List.length names);
  check Alcotest.bool "sorted unique" true (names = List.sort_uniq compare names);
  List.iter
    (fun n -> check Alcotest.string "find by name" n (Workloads.find n).Kernel.name)
    names;
  (match Workloads.find "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown name should raise");
  check Alcotest.int "opencgra subset" 8 (List.length (Workloads.opencgra_compatible ()));
  check Alcotest.int "dynaspam subset" 8 (List.length (Workloads.dynaspam_shared ()))

let every_kernel_runs_and_checks () =
  List.iter
    (fun (k : Kernel.t) ->
      let mem = Main_memory.create () in
      let m = Kernel.prepare k mem in
      let halt, retired = Interp.run k.Kernel.program m in
      check Alcotest.bool (k.Kernel.name ^ " halts") true (halt = Interp.Ecall_halt);
      check Alcotest.bool (k.Kernel.name ^ " does real work") true (retired > k.Kernel.n);
      match k.Kernel.check mem with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" k.Kernel.name e)
    (Workloads.all ())

let checks_catch_corruption () =
  (* A check must actually look at the outputs: corrupt one word after a
     valid run and expect a failure. *)
  List.iter
    (fun name ->
      let k = Workloads.find name in
      let mem = Main_memory.create () in
      let m = Kernel.prepare k mem in
      let _ = Interp.run k.Kernel.program m in
      (* All kernels write a word/float stream starting at 0x200000 or, for
         in-place kernels, at their first array; flip a bit in both areas. *)
      let flip addr = Main_memory.store_word mem addr (Main_memory.load_word mem addr lxor 1) in
      flip 0x200000;
      flip 0x100000;
      check Alcotest.bool (name ^ " detects corruption") true
        (Result.is_error (k.Kernel.check mem)))
    [ "nn"; "btree"; "lud"; "bfs" ]

let kernels_fit_trace_cache () =
  List.iter
    (fun (k : Kernel.t) ->
      let dfg = Runner.dfg_of_kernel k in
      check Alcotest.bool (k.Kernel.name ^ " under C1 capacity") true
        (Dfg.node_count dfg <= 512))
    (Workloads.all ())

let parallel_flags_match_pragmas () =
  List.iter
    (fun (k : Kernel.t) ->
      let dfg = Runner.dfg_of_kernel k in
      let has_pragma = Program.pragma_at k.Kernel.program dfg.Dfg.entry_addr <> None in
      check Alcotest.bool (k.Kernel.name ^ " pragma consistent") k.Kernel.parallel has_pragma)
    (Workloads.all ())

let slicing_is_equivalent () =
  (* Running a parallel kernel as 4 slices over the same memory must produce
     the same result as one full-range run. *)
  List.iter
    (fun name ->
      let k = Workloads.find name in
      let mem = Main_memory.create () in
      k.Kernel.setup mem;
      let n = k.Kernel.n in
      List.iter
        (fun tid ->
          let lo = n * tid / 4 and hi = n * (tid + 1) / 4 in
          let m = Kernel.prepare_slice k mem ~lo ~hi in
          let halt, _ = Interp.run k.Kernel.program m in
          check Alcotest.bool "slice halts" true (halt = Interp.Ecall_halt))
        [ 0; 1; 2; 3 ];
      check Alcotest.bool (name ^ " sliced result correct") true (k.Kernel.check mem = Ok ()))
    [ "nn"; "hotspot"; "btree"; "streamcluster" ]

let nn_custom_size () =
  let k = Workloads.nn ~n:128 () in
  check Alcotest.int "size honored" 128 k.Kernel.n;
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let _ = Interp.run k.Kernel.program m in
  check Alcotest.bool "small run correct" true (k.Kernel.check mem = Ok ())

let kernel_feature_coverage () =
  (* The suite must exercise the mechanisms the paper describes. *)
  let any p = List.exists p (Workloads.all ()) in
  let dfg_of = Runner.dfg_of_kernel in
  check Alcotest.bool "a kernel with predication" true
    (any (fun k ->
         Array.exists (fun nd -> nd.Dfg.guards <> []) (dfg_of k).Dfg.nodes));
  check Alcotest.bool "a kernel with vectorizable loads" true
    (any (fun k -> (Mem_opt.analyze (dfg_of k)).Mem_opt.vector_groups <> []));
  check Alcotest.bool "a kernel with prefetchable loads" true
    (any (fun k -> (Mem_opt.analyze (dfg_of k)).Mem_opt.prefetched <> []));
  check Alcotest.bool "an FP-divide kernel" true
    (any (fun k ->
         Array.exists
           (fun nd -> Isa.op_class nd.Dfg.instr = Isa.C_fdiv)
           (dfg_of k).Dfg.nodes));
  check Alcotest.bool "a non-parallel kernel" true (any (fun k -> not k.Kernel.parallel));
  check Alcotest.bool "an integer-only kernel" true (any (fun k -> not k.Kernel.fp))

(* -------------------- mem_opt on kernels -------------------- *)

let memopt_btree_vectorizes () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "btree") in
  let mo = Mem_opt.analyze dfg in
  (* Eight separator loads share the node base register. *)
  check Alcotest.bool "one group of 8" true
    (List.exists (fun g -> List.length g = 8) mo.Mem_opt.vector_groups)

let memopt_hotspot_vectorizes_stencil () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "hotspot") in
  let mo = Mem_opt.analyze dfg in
  check Alcotest.bool "five-point stencil coalesced" true
    (List.exists (fun g -> List.length g = 5) mo.Mem_opt.vector_groups)

let memopt_induction_regs () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "nn") in
  let mo = Mem_opt.analyze dfg in
  (* a0, a1, a2 are bumped pointers. *)
  check (Alcotest.list Alcotest.int) "pointer induction" [ 10; 11; 12 ]
    (List.sort compare mo.Mem_opt.induction_regs)

let memopt_prefetch_via_induction () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "gaussian") in
  let mo = Mem_opt.analyze dfg in
  check Alcotest.int "both streaming loads prefetchable" 2
    (List.length mo.Mem_opt.prefetched)

let memopt_forwarding_pair () =
  (* store then load of the same base+offset becomes a forwarding edge. *)
  let instrs =
    [|
      Isa.Rtype (Isa.ADD, 6, 5, 5);
      Isa.Store (Isa.SW, 6, 10, 8);
      Isa.Load (Isa.LW, 7, 10, 8);
      Isa.Rtype (Isa.ADD, 28, 7, 7);
      Isa.Itype (Isa.ADDI, 5, 5, 1);
      Isa.Branch (Isa.BLT, 5, 13, -20);
    |]
  in
  let region =
    {
      Region.entry = 0x1000;
      back_branch_addr = 0x1000 + 20;
      instrs;
      pragma = None;
      observed_iterations = 8;
    }
  in
  let dfg = Ldfg.build_exn region in
  let mo = Mem_opt.analyze dfg in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "load 2 forwards from store 1"
    [ (2, 1) ] mo.Mem_opt.forwarding

let memopt_no_forwarding_across_unknown_store () =
  (* An intervening store with a different base kills the forwarding. *)
  let instrs =
    [|
      Isa.Rtype (Isa.ADD, 6, 5, 5);
      Isa.Store (Isa.SW, 6, 10, 8);
      Isa.Store (Isa.SW, 6, 11, 0);  (* unknown alias *)
      Isa.Load (Isa.LW, 7, 10, 8);
      Isa.Itype (Isa.ADDI, 5, 5, 1);
      Isa.Branch (Isa.BLT, 5, 13, -20);
    |]
  in
  let region =
    {
      Region.entry = 0x1000;
      back_branch_addr = 0x1000 + 20;
      instrs;
      pragma = None;
      observed_iterations = 8;
    }
  in
  let dfg = Ldfg.build_exn region in
  let mo = Mem_opt.analyze dfg in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "no pair" []
    mo.Mem_opt.forwarding

let suites =
  [
    ( "workloads",
      [
        Alcotest.test_case "registry" `Quick registry_complete;
        Alcotest.test_case "all kernels run and check" `Quick every_kernel_runs_and_checks;
        Alcotest.test_case "checks catch corruption" `Quick checks_catch_corruption;
        Alcotest.test_case "kernels fit C1" `Quick kernels_fit_trace_cache;
        Alcotest.test_case "parallel flags" `Quick parallel_flags_match_pragmas;
        Alcotest.test_case "slicing equivalence" `Quick slicing_is_equivalent;
        Alcotest.test_case "nn custom size" `Quick nn_custom_size;
        Alcotest.test_case "feature coverage" `Quick kernel_feature_coverage;
      ] );
    ( "mem_opt",
      [
        Alcotest.test_case "btree vectorizes" `Quick memopt_btree_vectorizes;
        Alcotest.test_case "hotspot stencil coalesced" `Quick memopt_hotspot_vectorizes_stencil;
        Alcotest.test_case "induction registers" `Quick memopt_induction_regs;
        Alcotest.test_case "prefetch via induction" `Quick memopt_prefetch_via_induction;
        Alcotest.test_case "forwarding pair" `Quick memopt_forwarding_pair;
        Alcotest.test_case "no forwarding across unknown store" `Quick
          memopt_no_forwarding_across_unknown_store;
      ] );
  ]
