(* QCheck generators shared across the property-based tests: random RV32IMF
   instructions (for the codec roundtrip) and random acceptable loop bodies
   (for the end-to-end CPU-vs-accelerator equivalence property). *)

open QCheck2

let reg = Gen.int_range 0 31
let nonzero_reg = Gen.int_range 1 31
let imm12 = Gen.int_range (-2048) 2047
let shamt = Gen.int_range 0 31

let rop =
  Gen.oneofl
    [ Isa.ADD; Isa.SUB; Isa.SLL; Isa.SLT; Isa.SLTU; Isa.XOR; Isa.SRL; Isa.SRA;
      Isa.OR; Isa.AND; Isa.MUL; Isa.MULH; Isa.MULHSU; Isa.MULHU; Isa.DIV;
      Isa.DIVU; Isa.REM; Isa.REMU ]

let iop =
  Gen.oneofl
    [ Isa.ADDI; Isa.SLTI; Isa.SLTIU; Isa.XORI; Isa.ORI; Isa.ANDI ]

let shift_op = Gen.oneofl [ Isa.SLLI; Isa.SRLI; Isa.SRAI ]
let bop = Gen.oneofl [ Isa.BEQ; Isa.BNE; Isa.BLT; Isa.BGE; Isa.BLTU; Isa.BGEU ]
let lop = Gen.oneofl [ Isa.LB; Isa.LH; Isa.LW; Isa.LBU; Isa.LHU ]
let sop = Gen.oneofl [ Isa.SB; Isa.SH; Isa.SW ]

let fop =
  Gen.oneofl
    [ Isa.FADD; Isa.FSUB; Isa.FMUL; Isa.FDIV; Isa.FMIN; Isa.FMAX; Isa.FSGNJ;
      Isa.FSGNJN; Isa.FSGNJX ]

let fcmp = Gen.oneofl [ Isa.FEQ; Isa.FLT; Isa.FLE ]

(* Even, in-range branch/jal offsets. *)
let branch_off = Gen.map (fun k -> 2 * k) (Gen.int_range (-2048) 2047)
let jal_off = Gen.map (fun k -> 2 * k) (Gen.int_range (-524288) 524287)
let upper20 = Gen.map (fun k -> k lsl 12) (Gen.int_range (-524288) 524287)

let instr : Isa.t Gen.t =
  Gen.oneof
    [
      Gen.map4 (fun op rd rs1 rs2 -> Isa.Rtype (op, rd, rs1, rs2)) rop reg reg reg;
      Gen.map4 (fun op rd rs1 imm -> Isa.Itype (op, rd, rs1, imm)) iop reg reg imm12;
      Gen.map4 (fun op rd rs1 imm -> Isa.Itype (op, rd, rs1, imm)) shift_op reg reg shamt;
      Gen.map4 (fun op rd base off -> Isa.Load (op, rd, base, off)) lop reg reg imm12;
      Gen.map4 (fun op src base off -> Isa.Store (op, src, base, off)) sop reg reg imm12;
      Gen.map4 (fun op rs1 rs2 off -> Isa.Branch (op, rs1, rs2, off)) bop reg reg branch_off;
      Gen.map2 (fun rd imm -> Isa.Lui (rd, imm)) reg upper20;
      Gen.map2 (fun rd imm -> Isa.Auipc (rd, imm)) reg upper20;
      Gen.map2 (fun rd off -> Isa.Jal (rd, off)) reg jal_off;
      Gen.map3 (fun rd base off -> Isa.Jalr (rd, base, off)) reg reg imm12;
      Gen.map4 (fun op fd fs1 fs2 -> Isa.Ftype (op, fd, fs1, fs2)) fop reg reg reg;
      Gen.map2 (fun fd fs1 -> Isa.Ftype (Isa.FSQRT, fd, fs1, 0)) reg reg;
      Gen.map4 (fun op rd fs1 fs2 -> Isa.Fcmp (op, rd, fs1, fs2)) fcmp reg reg reg;
      Gen.map3 (fun fd base off -> Isa.Flw (fd, base, off)) reg reg imm12;
      Gen.map3 (fun fsrc base off -> Isa.Fsw (fsrc, base, off)) reg reg imm12;
      Gen.map2 (fun rd fs1 -> Isa.Fcvt_w_s (rd, fs1)) reg reg;
      Gen.map2 (fun fd rs1 -> Isa.Fcvt_s_w (fd, rs1)) reg reg;
      Gen.map2 (fun rd fs1 -> Isa.Fmv_x_w (rd, fs1)) reg reg;
      Gen.map2 (fun fd rs1 -> Isa.Fmv_w_x (fd, rs1)) reg reg;
      Gen.oneofl [ Isa.Ecall; Isa.Ebreak; Isa.Fence ];
    ]

(* --------------------------------------------------------------------- *)
(* Random acceptable loops.

   The loop iterates a fixed induction register over [0, n), streaming one
   output array, with a body of random integer/FP arithmetic over a small
   register window, bounded random loads from two input arrays, and an
   optional predicated segment under a forward branch. The shape satisfies
   C1-C3 by construction, so MESA must accept it and produce bit-identical
   architectural results. *)

type loop_spec = {
  body : Isa.t list;     (** body instructions, without induction/branch *)
  iterations : int;
  with_guard : bool;
}

(* Register conventions inside generated loops:
   a0 = input base 1, a1 = input base 2, a2 = output pointer (bumped),
   t0 = induction counter, a3 = trip count; temps t1-t6, s2-s5;
   FP temps ft0-ft7. *)

let in1_base = 0x100000
let in2_base = 0x140000
let out_base = 0x200000

let int_temp = Gen.oneofl [ 6; 7; 28; 29; 30 ] (* t1 t2 t3 t4 t5 *)
let fp_temp = Gen.int_range 0 7
let word_off = Gen.map (fun k -> 4 * k) (Gen.int_range 0 63)

let body_instr : Isa.t Gen.t =
  Gen.oneof
    [
      (* integer arithmetic over temps and the induction counter *)
      Gen.map4
        (fun op rd rs1 rs2 -> Isa.Rtype (op, rd, rs1, rs2))
        (Gen.oneofl [ Isa.ADD; Isa.SUB; Isa.XOR; Isa.OR; Isa.AND; Isa.SLT; Isa.MUL ])
        int_temp
        (Gen.oneofl [ 5; 6; 7; 28; 29 ])
        (Gen.oneofl [ 5; 6; 7; 28; 30 ]);
      Gen.map3 (fun rd rs1 imm -> Isa.Itype (Isa.ADDI, rd, rs1, imm)) int_temp int_temp
        (Gen.int_range (-64) 64);
      Gen.map3 (fun rd rs1 sh -> Isa.Itype (Isa.SLLI, rd, rs1, sh)) int_temp int_temp
        (Gen.int_range 0 4);
      (* loads from the two input arrays *)
      Gen.map2 (fun rd off -> Isa.Load (Isa.LW, rd, 10, off)) int_temp word_off;
      Gen.map2 (fun rd off -> Isa.Load (Isa.LW, rd, 11, off)) int_temp word_off;
      Gen.map2 (fun fd off -> Isa.Flw (fd, 10, off)) fp_temp word_off;
      (* FP arithmetic over temps *)
      Gen.map4
        (fun op fd fs1 fs2 -> Isa.Ftype (op, fd, fs1, fs2))
        (Gen.oneofl [ Isa.FADD; Isa.FSUB; Isa.FMUL; Isa.FMIN; Isa.FMAX ])
        fp_temp fp_temp fp_temp;
      Gen.map2 (fun rd fs -> Isa.Fcvt_w_s (rd, fs)) int_temp fp_temp;
      Gen.map2 (fun fd rs -> Isa.Fcvt_s_w (fd, rs)) fp_temp int_temp;
    ]

let loop_spec : loop_spec Gen.t =
  let open Gen in
  let* len = int_range 3 20 in
  let* body = list_size (return len) body_instr in
  let* iterations = int_range 40 200 in
  let* with_guard = bool in
  return { body; iterations; with_guard }

(* Materialize a spec into a runnable program + machine. The output store
   makes every iteration observable; the guard (when present) predicates the
   last two body instructions plus the store of a shadow value. *)
let build_loop (spec : loop_spec) =
  let b = Asm.create () in
  let open Reg in
  Asm.label b "loop";
  let body = Array.of_list spec.body in
  let n = Array.length body in
  Array.iteri
    (fun i instr ->
      if spec.with_guard && i = n - 1 then begin
        (* Predicate the final body instruction on a data-dependent test. *)
        Asm.andi b t6 t1 1;
        Asm.bne b t6 zero "skip";
        Asm.emit b instr;
        Asm.addi b t2 t2 3;
        Asm.label b "skip"
      end
      else Asm.emit b instr)
    body;
  (* Observable result per iteration. *)
  Asm.xor b t6 t1 t2;
  Asm.add b t6 t6 t3;
  Asm.sw b t6 0 a2;
  Asm.addi b a2 a2 4;
  Asm.addi b t0 t0 1;
  Asm.blt b t0 a3 "loop";
  Asm.ecall b;
  let prog = Asm.assemble b in
  let mem = Main_memory.create () in
  let rng = Prng.create 0xfeed in
  Main_memory.blit_words mem in1_base (Array.init 256 (fun _ -> Prng.int_in rng (-1000) 1000));
  Main_memory.blit_words mem in2_base (Array.init 256 (fun _ -> Prng.int_in rng (-1000) 1000));
  let machine = Machine.create ~pc:(Program.entry prog) mem in
  Machine.set_args machine
    [ (a0, in1_base); (a1, in2_base); (a2, out_base); (t0, 0); (a3, spec.iterations) ];
  Machine.set_fargs machine [ (ft0, 1.5); (ft1, -0.25); (ft2, 3.0) ];
  (prog, machine)

let loop_spec_print (spec : loop_spec) =
  Printf.sprintf "iterations=%d guard=%b body=[%s]" spec.iterations spec.with_guard
    (String.concat "; " (List.map (fun i -> Format.asprintf "%a" Isa.pp i) spec.body))

(* --------------------------------------------------------------------- *)
(* Random fabric configurations.

   The axes live in {!Fuzz} (rows/cols/ports/interconnect choices), so the
   qcheck properties here and the differential fuzzer draw from exactly one
   generator definition. [max_ports] lets slow consumers (the profiling
   properties) cap the port axis. *)

type arch_case = {
  kernel : int;  (** index into [Workloads.all ()] *)
  rows : int;
  cols : int;
  ports : int;
  kind : Interconnect.kind;
}

let arch_case ?max_ports () =
  let open QCheck2.Gen in
  let ports_axis =
    Array.to_list Fuzz.ports_choices
    |> List.filter (fun p ->
           match max_ports with None -> true | Some m -> p <= m)
  in
  let n_kernels = List.length (Workloads.all ()) in
  0 -- (n_kernels - 1) >>= fun kernel ->
  oneofl (Array.to_list Fuzz.rows_choices) >>= fun rows ->
  oneofl (Array.to_list Fuzz.cols_choices) >>= fun cols ->
  oneofl ports_axis >>= fun ports ->
  oneofl (Array.to_list Fuzz.kind_choices) >>= fun kind ->
  return { kernel; rows; cols; ports; kind }

let arch_case_print c =
  let k = List.nth (Workloads.all ()) c.kernel in
  Printf.sprintf "%s on %dx%d ports=%d kind=%s" k.Kernel.name c.rows c.cols
    c.ports (Dse.kind_to_string c.kind)

let arch_case_kernel c = List.nth (Workloads.all ()) c.kernel
