let check = Alcotest.check

(* Run a kernel's hot loop on the accelerator engine and on the reference
   interpreter from identical initial state; compare every architectural
   effect. The kernel programs start at the loop entry, so both substrates
   execute exactly the loop followed by the epilogue (interpreter only). *)
let engine_setup ?(grid = Grid.m128) ?(optimize = false) ?(pipelined = true) (k : Kernel.t) =
  let dfg = Runner.dfg_of_kernel k in
  let model = Perf_model.create dfg in
  let placement =
    Result.get_ok (Mapper.map ~grid ~kind:Interconnect.Mesh_noc model)
  in
  let config =
    if optimize then begin
      let mo = Mem_opt.analyze dfg in
      let ld =
        Loop_opt.decide ~grid ~dfg
          ~pragma:(Program.pragma_at k.Kernel.program dfg.Dfg.entry_addr)
      in
      Accel_config.with_opts ~forwarding:mo.Mem_opt.forwarding
        ~vector_groups:mo.Mem_opt.vector_groups ~prefetched:mo.Mem_opt.prefetched
        ~tiling:ld.Loop_opt.tiling ~pipelined placement
    end
    else Accel_config.with_opts ~pipelined placement
  in
  (dfg, config)

(* Nested kernels (the DSL-built ones) enter their hot loop mid-program, so
   the engine cannot start from the program entry with induction state
   unset; equivalence for those goes through the full controller, which
   offloads the inner loop at its natural entry points. *)
let run_equivalence_nested ?(grid = Grid.m128) (k : Kernel.t) =
  let mem_ref = Main_memory.create () in
  let m_ref = Kernel.prepare k mem_ref in
  let halt, _ = Interp.run k.Kernel.program m_ref in
  check Alcotest.bool "reference halts" true (halt = Interp.Ecall_halt);
  let mem_acc = Main_memory.create () in
  let m_acc = Kernel.prepare k mem_acc in
  let options = Controller.default_options ~grid () in
  let report = Controller.run ~options k.Kernel.program m_acc in
  check Alcotest.bool "controller halts" true
    (report.Controller.halt = Interp.Ecall_halt);
  check Alcotest.bool (k.Kernel.name ^ ": memory equal") true
    (Main_memory.equal mem_ref mem_acc);
  check Alcotest.bool (k.Kernel.name ^ ": kernel check") true
    (k.Kernel.check mem_acc = Ok ())

let run_equivalence ?grid ?optimize (k : Kernel.t) =
  let dfg, config = engine_setup ?grid ?optimize k in
  if dfg.Dfg.entry_addr <> Program.entry k.Kernel.program then
    run_equivalence_nested ?grid k
  else begin
    (* Reference run. *)
    let mem_ref = Main_memory.create () in
    let m_ref = Kernel.prepare k mem_ref in
    let halt, _ = Interp.run k.Kernel.program m_ref in
    check Alcotest.bool "reference halts" true (halt = Interp.Ecall_halt);
    (* Engine run of the loop, then interpreter for the epilogue. *)
    let mem_acc = Main_memory.create () in
    let m_acc = Kernel.prepare k mem_acc in
    let hier = Hierarchy.create Hierarchy.default_config in
    (match Engine.execute ~config ~dfg ~machine:m_acc ~hier () with
    | Error e -> Alcotest.failf "%s: engine failed: %s" k.Kernel.name e
    | Ok res ->
      check Alcotest.bool "completed" true res.Engine.completed;
      check Alcotest.int "iteration count" k.Kernel.n res.Engine.iterations;
      check Alcotest.int "exit pc" dfg.Dfg.exit_addr m_acc.Machine.pc);
    let halt2, _ = Interp.run k.Kernel.program m_acc in
    check Alcotest.bool "epilogue halts" true (halt2 = Interp.Ecall_halt);
    check Alcotest.bool (k.Kernel.name ^ ": memory equal") true
      (Main_memory.equal mem_ref mem_acc);
    check Alcotest.bool (k.Kernel.name ^ ": kernel check") true
      (k.Kernel.check mem_acc = Ok ())
  end

let equivalence_plain () =
  List.iter (fun k -> run_equivalence k) (Workloads.all ())

let equivalence_optimized () =
  List.iter (fun k -> run_equivalence ~optimize:true k) (Workloads.all ())

let equivalence_m64 () =
  List.iter
    (fun name -> run_equivalence ~grid:Grid.m64 ~optimize:true (Workloads.find name))
    [ "nn"; "kmeans"; "pathfinder"; "bfs" ]

let tiling_preserves_results () =
  let k = Workloads.nn ~n:500 () in
  let dfg, config = engine_setup ~optimize:false k in
  let config = { config with Accel_config.tiling = 7 } in
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  (match Engine.execute ~config ~dfg ~machine:m ~hier () with
  | Error e -> Alcotest.fail e
  | Ok res -> check Alcotest.int "all iterations" 500 res.Engine.iterations);
  check Alcotest.bool "outputs correct" true (k.Kernel.check mem = Ok ())

let pipelining_only_affects_timing () =
  let k = Workloads.find "gaussian" in
  let run pipelined =
    let dfg, config = engine_setup ~pipelined k in
    let mem = Main_memory.create () in
    let m = Kernel.prepare k mem in
    let hier = Hierarchy.create Hierarchy.default_config in
    match Engine.execute ~config ~dfg ~machine:m ~hier () with
    | Error e -> Alcotest.fail e
    | Ok res -> (res.Engine.cycles, mem)
  in
  let cyc_pipe, mem_pipe = run true in
  let cyc_seq, mem_seq = run false in
  check Alcotest.bool "same memory" true (Main_memory.equal mem_pipe mem_seq);
  check Alcotest.bool "pipelining faster" true (cyc_pipe < cyc_seq)

let stop_and_resume () =
  let k = Workloads.nn ~n:300 () in
  let dfg, config = engine_setup k in
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  (* First window. *)
  (match Engine.execute ~stop_after:100 ~config ~dfg ~machine:m ~hier () with
  | Error e -> Alcotest.fail e
  | Ok res ->
    check Alcotest.bool "paused" false res.Engine.completed;
    check Alcotest.int "window iterations" 100 res.Engine.iterations;
    check Alcotest.int "pc back at entry" dfg.Dfg.entry_addr m.Machine.pc);
  (* Resume to completion. *)
  (match Engine.execute ~config ~dfg ~machine:m ~hier () with
  | Error e -> Alcotest.fail e
  | Ok res ->
    check Alcotest.bool "completed" true res.Engine.completed;
    check Alcotest.int "remaining iterations" 200 res.Engine.iterations);
  check Alcotest.bool "results equal a straight run" true (k.Kernel.check mem = Ok ())

let pause_can_hand_back_to_cpu () =
  (* After a pause the architectural state must be a valid CPU resume
     point: finishing on the interpreter gives the right answer. *)
  let k = Workloads.find "pathfinder" in
  let dfg, config = engine_setup k in
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  (match Engine.execute ~stop_after:37 ~config ~dfg ~machine:m ~hier () with
  | Error e -> Alcotest.fail e
  | Ok res -> check Alcotest.bool "paused mid-loop" false res.Engine.completed);
  let halt, _ = Interp.run k.Kernel.program m in
  check Alcotest.bool "cpu finishes" true (halt = Interp.Ecall_halt);
  check Alcotest.bool "combined result correct" true (k.Kernel.check mem = Ok ())

let measurements_populated () =
  let k = Workloads.find "cfd" in
  let dfg, config = engine_setup k in
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  match Engine.execute ~config ~dfg ~machine:m ~hier () with
  | Error e -> Alcotest.fail e
  | Ok res ->
    let m = res.Engine.measured in
    let hist_mean name =
      match Stats.find_hist m name with
      | Some h when h.Stats.hcount > 0 -> Stats.hist_mean h
      | Some _ | None -> 0.0
    in
    for i = 0 to Dfg.node_count dfg - 1 do
      check Alcotest.bool (Printf.sprintf "node %d measured" i) true
        (hist_mean (Printf.sprintf "node.%d.latency" i) > 0.0);
      if Dfg.is_memory_node dfg i then
        check Alcotest.bool (Printf.sprintf "node %d amat" i) true
          (hist_mean (Printf.sprintf "node.%d.amat" i) > 0.0)
    done;
    check Alcotest.bool "edges measured" true (List.length (Stats.hists_under m "edge") > 0);
    check Alcotest.bool "fp ops counted" true
      (res.Engine.activity.Activity.fp_ops = 11 * res.Engine.iterations)

let rejects_invalid_placement () =
  let k = Workloads.find "nn" in
  let dfg, config = engine_setup k in
  let assign = Array.copy config.Accel_config.placement.Placement.assign in
  assign.(1) <- assign.(0);
  let bad =
    { config with
      Accel_config.placement =
        Placement.make config.Accel_config.placement.Placement.grid
          config.Accel_config.placement.Placement.kind assign }
  in
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  check Alcotest.bool "rejected" true
    (Result.is_error (Engine.execute ~config:bad ~dfg ~machine:m ~hier ()))

let max_iterations_pauses () =
  let k = Workloads.nn ~n:1000 () in
  let dfg, config = engine_setup k in
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  match Engine.execute ~max_iterations:50 ~config ~dfg ~machine:m ~hier () with
  | Error e -> Alcotest.fail e
  | Ok res ->
    check Alcotest.bool "paused, not failed" false res.Engine.completed;
    check Alcotest.int "stopped at the cap" 50 res.Engine.iterations

(* The crown-jewel property: for random accepted loops, running under the
   full MESA controller yields the same memory image as the plain
   interpreter. *)
let random_loop_equivalence =
  QCheck2.Test.make ~name:"controller equals interpreter on random loops" ~count:60
    ~print:Gen.loop_spec_print Gen.loop_spec (fun spec ->
      let prog, m_ref = Gen.build_loop spec in
      let m_mesa =
        Machine.copy m_ref ~mem:(Main_memory.copy m_ref.Machine.mem) ()
      in
      let halt_ref, _ = Interp.run prog m_ref in
      let options =
        Controller.default_options ~grid:Grid.m128 ~optimize:true ~iterative:true ()
      in
      let report = Controller.run ~options prog m_mesa in
      halt_ref = Interp.Ecall_halt
      && report.Controller.halt = Interp.Ecall_halt
      && Main_memory.equal m_ref.Machine.mem m_mesa.Machine.mem)

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "equivalence (plain) on all kernels" `Quick equivalence_plain;
        Alcotest.test_case "equivalence (optimized) on all kernels" `Quick equivalence_optimized;
        Alcotest.test_case "equivalence on M-64" `Quick equivalence_m64;
        Alcotest.test_case "tiling preserves results" `Quick tiling_preserves_results;
        Alcotest.test_case "pipelining only affects timing" `Quick pipelining_only_affects_timing;
        Alcotest.test_case "stop and resume" `Quick stop_and_resume;
        Alcotest.test_case "pause hands back to CPU" `Quick pause_can_hand_back_to_cpu;
        Alcotest.test_case "measurements populated" `Quick measurements_populated;
        Alcotest.test_case "rejects invalid placement" `Quick rejects_invalid_placement;
        Alcotest.test_case "max_iterations pauses" `Quick max_iterations_pauses;
        QCheck_alcotest.to_alcotest random_loop_equivalence;
      ] );
  ]
