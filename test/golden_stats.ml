(* Golden-stats regression: kernel_bfs on M-128, load-bearing counters only.
   The dune rule diffs this program's output against the checked-in
   golden_bfs_stats.json; any drift in cycle accounting, offload behaviour
   or cache traffic fails `dune runtest`.

   To regenerate after an intentional change:

     dune runtest; dune promote

   (or `dune build @runtest --auto-promote`). *)

let () =
  let k = Workloads.find "bfs" in
  let _, report = Runner.mesa ~grid:Grid.m128 k in
  let s = report.Controller.stats in
  let pick p =
    match Stats.find s p with
    | Some (Stats.VInt i) -> Json.Int i
    | Some (Stats.VFloat f) -> Json.Float f
    | None -> failwith ("golden counter missing from snapshot: " ^ p)
  in
  let paths =
    [
      "controller.total_cycles";
      "controller.cpu_cycles";
      "controller.accel_cycles";
      "controller.overhead_cycles";
      "controller.mesa_busy_cycles";
      "controller.offloads";
      "controller.reconfigurations";
      "controller.translations";
      "controller.regions_accepted";
      "controller.regions_rejected";
      "cache.l1.hits";
      "cache.l1.misses";
      "cache.l2.hits";
      "cache.l2.misses";
      "engine.iterations";
      "engine.windows";
      "cpu.instructions";
      (* Fault-free run: the whole recovery ladder must stay cold. *)
      "faults.injected";
      "faults.detected";
      "faults.retried";
      "faults.remapped";
      "faults.quarantined";
      "faults.config_upsets";
      "controller.iteration_budget_aborts";
    ]
  in
  print_string
    (Json.to_string ~indent:2 (Json.Assoc (List.map (fun p -> (p, pick p)) paths)))
