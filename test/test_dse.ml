(* The design-space explorer: enumeration, Pareto frontier semantics,
   checkpoint serialization, and the load-bearing guarantee — an
   interrupted-then-resumed sweep is bit-identical to an uninterrupted one,
   at any jobs value. *)

let check = Alcotest.check

let base_point =
  {
    Dse.kernel = "nn";
    rows = 8;
    cols = 8;
    mem_ports = 4;
    kind = Interconnect.Mesh_noc;
    l1_kb = 64;
    l2_kb = 8192;
  }

(* -------------------- enumeration -------------------- *)

let points_of_spec_shape () =
  let spec =
    {
      Dse.kernels = [ "nn"; "bfs"; "nn" ];  (* duplicate collapses *)
      grids = [ (4, 4); (8, 8) ];
      ports = [ 2; 8 ];
      kinds = [ Interconnect.Mesh_noc ];
      l1_kb = [ 64 ];
      l2_kb = [ 1024; 8192 ];
      budget = None;
    }
  in
  let pts = Dse.points_of_spec spec in
  check Alcotest.int "cartesian product of deduped axes" (2 * 2 * 2 * 1 * 1 * 2)
    (List.length pts);
  check Alcotest.string "kernels outermost" "nn" (List.hd pts).Dse.kernel;
  (* L2 is the innermost axis: the first two points differ only in L2. *)
  let p0 = List.nth pts 0 and p1 = List.nth pts 1 in
  check Alcotest.int "first L2" 1024 p0.Dse.l2_kb;
  check Alcotest.int "second L2" 8192 p1.Dse.l2_kb;
  check Alcotest.bool "otherwise equal" true (p0 = { p1 with Dse.l2_kb = 1024 });
  check Alcotest.int "labels are unique" (List.length pts)
    (List.length (List.sort_uniq compare (List.map Dse.point_label pts)))

let spec_validation () =
  let ok s = match Dse.validate_spec s with Ok () -> true | Error _ -> false in
  check Alcotest.bool "default spec valid" true (ok Dse.default_spec);
  check Alcotest.bool "unknown kernel rejected" false
    (ok { Dse.default_spec with Dse.kernels = [ "nosuch" ] });
  check Alcotest.bool "empty axis rejected" false
    (ok { Dse.default_spec with Dse.ports = [] });
  check Alcotest.bool "bad grid rejected" false
    (ok { Dse.default_spec with Dse.grids = [ (0, 4) ] });
  check Alcotest.bool "non-pow2 cache rejected" false
    (ok { Dse.default_spec with Dse.l1_kb = [ 48 ] });
  check Alcotest.bool "zero budget rejected" false
    (ok { Dse.default_spec with Dse.budget = Some 0 })

(* -------------------- point evaluation -------------------- *)

let evaluate_mapped_and_rejected () =
  let good = Dse.evaluate base_point in
  check Alcotest.bool "nn on 8x8 maps" true good.Dse.mapped;
  check Alcotest.bool "cycles positive" true (good.Dse.cycles > 0);
  check Alcotest.bool "energy positive" true (good.Dse.energy_nj > 0.0);
  check Alcotest.bool "area positive" true (good.Dse.area_mm2 > 0.0);
  check Alcotest.bool "perf positive" true (good.Dse.perf > 0.0);
  check Alcotest.bool "perf/W positive" true (good.Dse.perf_per_watt > 0.0);
  (* kmeans needs more FP PEs than an 8x4 fabric offers (cf. the robustness
     fallback test): the mapper rejects, metrics stay zero. *)
  let bad =
    Dse.evaluate { base_point with Dse.kernel = "kmeans"; rows = 8; cols = 4 }
  in
  check Alcotest.bool "kmeans on 8x4 rejected" false bad.Dse.mapped;
  check Alcotest.bool "reject reason recorded" true (bad.Dse.reject <> None);
  check Alcotest.int "zero cycles" 0 bad.Dse.cycles

(* -------------------- Pareto frontier -------------------- *)

let gen_outcome_cloud =
  let open QCheck2.Gen in
  let outcome =
    triple bool (int_bound 4) (int_bound 4) >>= fun (mapped, p, w) ->
    return
      {
        Dse.point = base_point;
        mapped;
        reject = (if mapped then None else Some "no route");
        cycles = 100;
        iterations = 10;
        energy_nj = 1.0;
        power_w = 1.0;
        area_mm2 = 1.0;
        perf = float_of_int p;
        perf_per_watt = float_of_int w;
      }
  in
  list_size (0 -- 12) outcome

let print_outcome_cloud outs =
  String.concat "; "
    (List.map
       (fun (o : Dse.outcome) ->
         Printf.sprintf "%c(%.0f,%.0f)"
           (if o.Dse.mapped then 'm' else 'r')
           o.Dse.perf o.Dse.perf_per_watt)
       outs)

let frontier_is_exactly_the_nondominated_set =
  QCheck2.Test.make
    ~name:"frontier = mapped points no mapped point dominates" ~count:300
    ~print:print_outcome_cloud gen_outcome_cloud (fun outs ->
      let f = Dse.frontier outs in
      let mapped = List.filter (fun (o : Dse.outcome) -> o.Dse.mapped) outs in
      List.for_all (fun (o : Dse.outcome) -> o.Dse.mapped) f
      (* no frontier point is dominated *)
      && List.for_all
           (fun o -> not (List.exists (fun x -> Dse.dominates x o) mapped))
           f
      (* every dominated (or rejected) point is excluded; every
         non-dominated mapped point is present *)
      && List.for_all
           (fun o ->
             let dominated = List.exists (fun x -> Dse.dominates x o) mapped in
             List.mem o f = not dominated)
           mapped
      (* input order preserved *)
      && f = List.filter (fun o -> List.mem o f) outs)

let dominates_axioms () =
  let o perf ppw = { (Dse.evaluate base_point) with Dse.perf; perf_per_watt = ppw } in
  check Alcotest.bool "strictly better both" true (Dse.dominates (o 2. 2.) (o 1. 1.));
  check Alcotest.bool "better one, equal other" true (Dse.dominates (o 2. 1.) (o 1. 1.));
  check Alcotest.bool "equal dominates nothing" false (Dse.dominates (o 1. 1.) (o 1. 1.));
  check Alcotest.bool "trade-off incomparable" false (Dse.dominates (o 2. 1.) (o 1. 2.));
  check Alcotest.bool "irreflexive under trade-off" false (Dse.dominates (o 1. 2.) (o 2. 1.))

(* -------------------- checkpoint serialization -------------------- *)

let gen_finite =
  let open QCheck2.Gen in
  pair (int_range (-4000) 4000) (int_range (-8) 8) >>= fun (m, e) ->
  return (float_of_int m *. (2.0 ** float_of_int e))

let gen_kind =
  QCheck2.Gen.oneofl
    [ Interconnect.Mesh_noc; Interconnect.Hierarchical_rows; Interconnect.Pure_mesh ]

let gen_point =
  let open QCheck2.Gen in
  oneofl [ "nn"; "kmeans"; "bfs"; "lud" ] >>= fun kernel ->
  int_range 1 16 >>= fun rows ->
  int_range 1 16 >>= fun cols ->
  oneofl [ 1; 2; 4; 8 ] >>= fun mem_ports ->
  gen_kind >>= fun kind ->
  oneofl [ 16; 64; 256 ] >>= fun l1_kb ->
  oneofl [ 1024; 8192 ] >>= fun l2_kb ->
  return { Dse.kernel; rows; cols; mem_ports; kind; l1_kb; l2_kb }

let gen_saved_outcome =
  let open QCheck2.Gen in
  gen_point >>= fun point ->
  bool >>= fun mapped ->
  int_bound 1_000_000 >>= fun cycles ->
  int_bound 10_000 >>= fun iterations ->
  gen_finite >>= fun energy_nj ->
  gen_finite >>= fun power_w ->
  gen_finite >>= fun area_mm2 ->
  gen_finite >>= fun perf ->
  gen_finite >>= fun perf_per_watt ->
  return
    {
      Dse.point;
      mapped;
      reject = (if mapped then None else Some "mapper: no route");
      cycles;
      iterations;
      energy_nj;
      power_w;
      area_mm2;
      perf;
      perf_per_watt;
    }

let gen_checkpoint =
  let open QCheck2.Gen in
  let spec =
    list_size (1 -- 3) (oneofl [ "nn"; "bfs"; "kmeans" ]) >>= fun kernels ->
    list_size (1 -- 3) (pair (int_range 1 16) (int_range 1 16)) >>= fun grids ->
    list_size (1 -- 3) (oneofl [ 1; 2; 4; 8 ]) >>= fun ports ->
    list_size (1 -- 2) gen_kind >>= fun kinds ->
    list_size (1 -- 2) (oneofl [ 16; 64 ]) >>= fun l1_kb ->
    list_size (1 -- 2) (oneofl [ 1024; 8192 ]) >>= fun l2_kb ->
    opt (int_range 1 20) >>= fun budget ->
    return { Dse.kernels; grids; ports; kinds; l1_kb; l2_kb; budget }
  in
  triple spec
    (oneofl [ Dse.Exhaustive; Dse.Guided ])
    (list_size (0 -- 8) gen_saved_outcome)

let print_checkpoint (spec, strategy, outs) =
  Json.to_string ~indent:2 (Dse.checkpoint_to_json ~strategy spec outs)

let checkpoint_roundtrip_random =
  QCheck2.Test.make
    ~name:"checkpoint decode after encode is the identity" ~count:200
    ~print:print_checkpoint gen_checkpoint (fun (spec, strategy, outs) ->
      let text =
        Json.to_string ~indent:2 (Dse.checkpoint_to_json ~strategy spec outs)
      in
      match Result.bind (Json.of_string text) Dse.checkpoint_of_json with
      | Error _ -> false
      | Ok (spec', strategy', outs') ->
        spec' = spec && strategy' = strategy && outs' = outs)

let checkpoint_strategy_field_compat () =
  (* Exhaustive checkpoints carry no strategy field at all — the pre-guided
     byte format — and decode as Exhaustive. *)
  let j = Dse.checkpoint_to_json Dse.default_spec [] in
  check Alcotest.bool "no strategy field when exhaustive" true
    (Json.member "strategy" j = None);
  (match Dse.checkpoint_of_json j with
  | Ok (_, Dse.Exhaustive, []) -> ()
  | _ -> Alcotest.fail "absent strategy must decode as Exhaustive");
  let jg = Dse.checkpoint_to_json ~strategy:Dse.Guided Dse.default_spec [] in
  match Dse.checkpoint_of_json jg with
  | Ok (_, Dse.Guided, []) -> ()
  | _ -> Alcotest.fail "guided strategy must round-trip"

(* -------------------- resumable runs -------------------- *)

let small_spec =
  {
    Dse.kernels = [ "gaussian"; "nn" ];
    grids = [ (4, 4); (8, 8) ];
    ports = [ 4; 8 ];
    kinds = [ Interconnect.Mesh_noc ];
    l1_kb = [ 64 ];
    l2_kb = [ 8192 ];
    budget = None;
  }

let result_text r = Json.to_string ~indent:2 (Dse.result_to_json r)

let with_ckpt_file f =
  let path = Filename.temp_file ~temp_dir:(Sys.getcwd ()) "dse_ckpt" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let run_exn ?jobs ?checkpoint ?resume ?stop_after ?strategy ?defect spec =
  match Dse.run ?jobs ?checkpoint ?resume ?stop_after ?strategy ?defect spec with
  | Ok r -> r
  | Error e -> Alcotest.fail ("Dse.run: " ^ e)

let resume_is_bit_identical () =
  let full = run_exn ~jobs:1 small_spec in
  check Alcotest.int "eight points" 8 (List.length full.Dse.outcomes);
  check Alcotest.bool "complete" true full.Dse.complete;
  check Alcotest.bool "frontier non-empty" true (full.Dse.front <> []);
  with_ckpt_file (fun ckpt ->
      let cut = run_exn ~jobs:2 ~checkpoint:ckpt ~stop_after:3 small_spec in
      check Alcotest.bool "interrupted" false cut.Dse.complete;
      check Alcotest.int "three fresh points" 3 cut.Dse.evaluated;
      (* A killed sweep resumes from the checkpoint file alone — at a
         different jobs value — and must reproduce the uninterrupted
         result bit for bit. *)
      let resumed = run_exn ~jobs:3 ~checkpoint:ckpt ~resume:true small_spec in
      check Alcotest.bool "resumed to completion" true resumed.Dse.complete;
      check Alcotest.int "three restored" 3 resumed.Dse.restored;
      check Alcotest.int "five fresh" 5 resumed.Dse.evaluated;
      check Alcotest.string "bit-identical result" (result_text full)
        (result_text resumed);
      (* The final checkpoint holds the complete sweep. *)
      let ic = open_in ckpt in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Result.bind (Json.of_string text) Dse.checkpoint_of_json with
      | Error e -> Alcotest.fail ("final checkpoint unreadable: " ^ e)
      | Ok (_, _, outs) ->
        check Alcotest.int "checkpoint holds all points" 8 (List.length outs))

let jobs_value_is_immaterial () =
  let a = run_exn ~jobs:1 small_spec and b = run_exn ~jobs:4 small_spec in
  check Alcotest.string "jobs=1 equals jobs=4" (result_text a) (result_text b)

let mismatched_checkpoint_rejected () =
  with_ckpt_file (fun ckpt ->
      let _ = run_exn ~jobs:1 ~checkpoint:ckpt ~stop_after:1 small_spec in
      let other = { small_spec with Dse.ports = [ 2 ] } in
      match Dse.run ~checkpoint:ckpt ~resume:true other with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "checkpoint from a different spec must be rejected")

let budget_run_is_deterministic () =
  let spec =
    {
      Dse.kernels = [ "nn" ];
      grids = [ (4, 4); (8, 4); (8, 8); (16, 8) ];
      ports = [ 2; 4; 8 ];
      kinds = [ Interconnect.Mesh_noc ];
      l1_kb = [ 64 ];
      l2_kb = [ 8192 ];
      budget = Some 6;
    }
  in
  let a = run_exn ~jobs:1 spec and b = run_exn ~jobs:4 spec in
  check Alcotest.bool "budget respected" true (List.length a.Dse.outcomes <= 6);
  check Alcotest.bool "budget explores something" true (a.Dse.outcomes <> []);
  check Alcotest.string "greedy trajectory deterministic" (result_text a)
    (result_text b);
  (* Interrupt + resume must replay the same trajectory: restored points
     count against the budget exactly like fresh ones. *)
  with_ckpt_file (fun ckpt ->
      let _ = run_exn ~jobs:2 ~checkpoint:ckpt ~stop_after:2 spec in
      let resumed = run_exn ~jobs:2 ~checkpoint:ckpt ~resume:true spec in
      check Alcotest.string "budgeted resume bit-identical" (result_text a)
        (result_text resumed))

(* -------------------- guided strategy -------------------- *)

(* The pinned sub-space the guided strategy is gated on (also the CI smoke
   job's sweep): two kernels across four geometries and two port counts.
   Small enough to sweep exhaustively, rich enough that the frontier is not
   just the seed points. *)
let guided_spec =
  {
    Dse.kernels = [ "nn"; "kmeans" ];
    grids = [ (4, 4); (8, 4); (8, 8); (16, 8) ];
    ports = [ 2; 8 ];
    kinds = [ Interconnect.Mesh_noc ];
    l1_kb = [ 64 ];
    l2_kb = [ 8192 ];
    budget = None;
  }

let front_labels (r : Dse.result) =
  List.sort compare
    (List.map (fun (o : Dse.outcome) -> Dse.point_label o.Dse.point) r.Dse.front)

let guided_reaches_frontier_cheaply () =
  let ex = run_exn ~jobs:2 guided_spec in
  let gd = run_exn ~jobs:2 ~strategy:Dse.Guided guided_spec in
  (* The whole point: the exhaustive Pareto frontier, point for point, from
     a fraction of the measurements. *)
  check
    Alcotest.(list string)
    "frontier point-for-point" (front_labels ex) (front_labels gd);
  check Alcotest.bool "at most half the lattice measured" true
    (2 * gd.Dse.measured <= gd.Dse.exhaustive_count);
  check Alcotest.bool "strictly fewer measurements than exhaustive" true
    (gd.Dse.measured < ex.Dse.measured);
  let get p =
    match Stats.find gd.Dse.stats p with
    | Some (Stats.VInt i) -> i
    | _ -> Alcotest.fail ("missing dse stat " ^ p)
  in
  check Alcotest.int "points_measured stat" gd.Dse.measured
    (get "dse.points_measured");
  check Alcotest.int "exhaustive_count stat" gd.Dse.exhaustive_count
    (get "dse.exhaustive_count");
  check Alcotest.bool "halving batches dispatched" true
    (get "dse.guided_batches" > 0)

let inverted_rank_misses_frontier () =
  (* Mutation test: ranking worst-first must demonstrably break the search —
     the cap bites before the frontier points are reached — proving the
     surrogate ranking (not the cap alone) is what finds the frontier. *)
  let ex = run_exn ~jobs:2 guided_spec in
  let bad =
    run_exn ~jobs:2 ~strategy:Dse.Guided ~defect:Dse.Inverted_rank guided_spec
  in
  check Alcotest.bool "defective ranking misses the frontier" true
    (front_labels bad <> front_labels ex)

let guided_resume_and_jobs_identical () =
  let a = run_exn ~jobs:1 ~strategy:Dse.Guided guided_spec in
  let b = run_exn ~jobs:4 ~strategy:Dse.Guided guided_spec in
  check Alcotest.string "jobs=1 equals jobs=4" (result_text a) (result_text b);
  with_ckpt_file (fun ckpt ->
      let cut =
        run_exn ~jobs:2 ~checkpoint:ckpt ~stop_after:3 ~strategy:Dse.Guided
          guided_spec
      in
      check Alcotest.bool "interrupted" false cut.Dse.complete;
      let resumed =
        run_exn ~jobs:4 ~checkpoint:ckpt ~resume:true ~strategy:Dse.Guided
          guided_spec
      in
      check Alcotest.string "guided resume bit-identical" (result_text a)
        (result_text resumed);
      (* The checkpoint left behind equals, byte for byte, one written by an
         uninterrupted guided run. *)
      let ic = open_in_bin ckpt in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let direct =
        Json.to_string ~indent:2
          (Dse.checkpoint_to_json ~strategy:Dse.Guided guided_spec
             a.Dse.outcomes)
        ^ "\n"
      in
      check Alcotest.string "final checkpoint byte-identical" direct text)

let guided_guardrails () =
  (* An exhaustive resume must not silently consume a guided checkpoint. *)
  with_ckpt_file (fun ckpt ->
      let _ =
        run_exn ~jobs:1 ~checkpoint:ckpt ~stop_after:1 ~strategy:Dse.Guided
          guided_spec
      in
      match Dse.run ~checkpoint:ckpt ~resume:true guided_spec with
      | Error _ -> ()
      | Ok _ ->
        Alcotest.fail "exhaustive resume from a guided checkpoint must be rejected");
  match
    Dse.run ~strategy:Dse.Guided { guided_spec with Dse.budget = Some 4 }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "guided strategy with a spec budget must be rejected"

let stats_and_timeline () =
  let r = run_exn ~jobs:2 small_spec in
  let s = r.Dse.stats in
  let get p =
    match Stats.find s p with
    | Some (Stats.VInt i) -> i
    | _ -> Alcotest.fail ("missing dse stat " ^ p)
  in
  check Alcotest.int "points_evaluated" 8 (get "dse.points_evaluated");
  check Alcotest.int "cache_hits" 0 (get "dse.cache_hits");
  check Alcotest.int "frontier_size" (List.length r.Dse.front)
    (get "dse.frontier_size");
  check Alcotest.int "one span per point" (List.length r.Dse.outcomes)
    (List.length r.Dse.timeline);
  (* The ranked table renders one data row per outcome. *)
  let t = Dse.table r in
  check Alcotest.int "table rows" (List.length r.Dse.outcomes)
    (List.length (Tables.data_rows t))

let suites =
  [
    ( "dse",
      [
        Alcotest.test_case "points_of_spec shape" `Quick points_of_spec_shape;
        Alcotest.test_case "spec validation" `Quick spec_validation;
        Alcotest.test_case "evaluate mapped and rejected" `Quick
          evaluate_mapped_and_rejected;
        Alcotest.test_case "dominates axioms" `Quick dominates_axioms;
        QCheck_alcotest.to_alcotest frontier_is_exactly_the_nondominated_set;
        QCheck_alcotest.to_alcotest checkpoint_roundtrip_random;
        Alcotest.test_case "checkpoint strategy field compat" `Quick
          checkpoint_strategy_field_compat;
        Alcotest.test_case "resume is bit-identical" `Slow resume_is_bit_identical;
        Alcotest.test_case "jobs value immaterial" `Slow jobs_value_is_immaterial;
        Alcotest.test_case "mismatched checkpoint rejected" `Quick
          mismatched_checkpoint_rejected;
        Alcotest.test_case "budgeted run deterministic" `Slow
          budget_run_is_deterministic;
        Alcotest.test_case "guided reaches frontier cheaply" `Slow
          guided_reaches_frontier_cheaply;
        Alcotest.test_case "inverted rank misses frontier" `Slow
          inverted_rank_misses_frontier;
        Alcotest.test_case "guided resume and jobs identical" `Slow
          guided_resume_and_jobs_identical;
        Alcotest.test_case "guided guardrails" `Quick guided_guardrails;
        Alcotest.test_case "stats and timeline" `Quick stats_and_timeline;
      ] );
  ]
