(* Failure injection and edge-of-envelope behaviour: whatever goes wrong —
   loops too short to amortize, fabrics too small to route, capture misses,
   step budgets — MESA must degrade to plain CPU execution with bit-exact
   results, never corrupt state. *)

let check = Alcotest.check

let sum_loop ~iterations =
  let b = Asm.create () in
  let open Reg in
  Asm.li b s2 0;
  Asm.label b "outer";
  Asm.li b t0 0;
  Asm.label b "loop";
  Asm.lw b t1 0 a0;
  Asm.mul b t2 t1 t1;
  Asm.add b t3 t3 t2;
  Asm.addi b t0 t0 1;
  Asm.blt b t0 a1 "loop";
  Asm.addi b s2 s2 1;
  Asm.blt b s2 a2 "outer";
  Asm.sw b t3 0 a3;
  Asm.ecall b;
  let prog = Asm.assemble b in
  let mem = Main_memory.create () in
  Main_memory.store_word mem 0x10000 7;
  let machine = Machine.create ~pc:(Program.entry prog) mem in
  Machine.set_args machine
    [ (a0, 0x10000); (a1, iterations); (a2, 8); (a3, 0x20000) ];
  (prog, machine, mem)

let reference_of prog machine =
  let m = Machine.copy machine ~mem:(Main_memory.copy machine.Machine.mem) () in
  let _ = Interp.run prog m in
  m.Machine.mem

(* The loop exits before the configuration is ready: MESA must not offload
   a stale region mid-flight, and results stay exact. *)
let short_loop_never_breaks () =
  let prog, machine, mem = sum_loop ~iterations:12 in
  let expected = reference_of prog machine in
  let report = Controller.run prog machine in
  check Alcotest.bool "halts" true (report.Controller.halt = Interp.Ecall_halt);
  check Alcotest.bool "memory exact" true (Main_memory.equal expected mem)

(* With more inner iterations the pending configuration becomes ready on a
   later outer re-entry; offloads must eventually happen and stay exact. *)
let pending_config_fires_on_reentry () =
  let prog, machine, mem = sum_loop ~iterations:400 in
  let expected = reference_of prog machine in
  let report = Controller.run prog machine in
  check Alcotest.bool "offloaded eventually" true (report.Controller.offloads >= 1);
  check Alcotest.bool "reused across re-entries" true (report.Controller.offloads >= 4);
  check Alcotest.bool "memory exact" true (Main_memory.equal expected mem)

(* A fabric too small to route the loop: C1 admits it, the mapper fails,
   the region is blacklisted, and the program completes on the CPU. *)
let unroutable_region_falls_back () =
  let k = Workloads.find "kmeans" in
  (* 32 PEs but only 16 with FP — kmeans needs 26 FP operations. *)
  let grid = Grid.make ~rows:8 ~cols:4 () in
  let options = Controller.default_options ~grid () in
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let report = Controller.run ~options k.Kernel.program machine in
  check Alcotest.int "no offload" 0 report.Controller.offloads;
  let rejected =
    List.filter (fun (r : Controller.region_report) -> not r.Controller.accepted)
      report.Controller.regions
  in
  check Alcotest.bool "mapping rejection recorded" true
    (List.exists
       (fun (r : Controller.region_report) ->
         match r.Controller.reject_reason with
         | Some reason ->
           String.length reason > 0
           && (String.length reason < 2 || String.sub reason 0 2 <> "C1")
         | None -> false)
       rejected);
  check Alcotest.bool "outputs still correct" true (k.Kernel.check mem = Ok ())

(* Step-limit exhaustion surfaces as a clean halt, not a hang. *)
let controller_step_limit () =
  let prog, machine, _ = sum_loop ~iterations:100000 in
  let options = { (Controller.default_options ()) with Controller.max_steps = 500 } in
  let report = Controller.run ~options prog machine in
  check Alcotest.bool "step limit halt" true (report.Controller.halt = Interp.Step_limit)

(* Trace-cache capture with a flaky fetch path: stays incomplete, reports
   the right missing addresses, then completes when fetch recovers. *)
let trace_cache_flaky_fetch () =
  let tc = Trace_cache.create ~capacity:8 in
  Trace_cache.set_region tc ~entry:0x1000 ~last:0x101C;
  (* Only even-indexed words fetch successfully. *)
  Trace_cache.fill_from tc (fun addr ->
      if (addr - 0x1000) / 4 mod 2 = 0 then Some (Int32.of_int addr) else None);
  check Alcotest.bool "still incomplete" false (Trace_cache.complete tc);
  check Alcotest.int "four missing" 4 (List.length (Trace_cache.missing tc));
  Trace_cache.fill_from tc (fun addr -> Some (Int32.of_int addr));
  check Alcotest.bool "recovers" true (Trace_cache.complete tc)

(* Multicore degenerate shapes. *)
let multicore_more_cores_than_work () =
  let k = Workloads.nn ~n:8 () in
  let mem = Main_memory.create () in
  k.Kernel.setup mem;
  let r = Multicore.run ~cores:16 k mem in
  check Alcotest.bool "at most 8 busy threads" true (r.Multicore.threads <= 8);
  check Alcotest.bool "correct" true (k.Kernel.check mem = Ok ())

let multicore_one_core () =
  let k = Workloads.find "gaussian" in
  let mem = Main_memory.create () in
  k.Kernel.setup mem;
  let r = Multicore.run ~cores:1 k mem in
  check Alcotest.int "single thread" 1 r.Multicore.threads;
  check Alcotest.bool "correct" true (k.Kernel.check mem = Ok ())

(* A one-iteration loop: the backward branch never repeats, so MESA never
   even forms a candidate — and nothing breaks. *)
let single_trip_loop () =
  let prog, machine, mem = sum_loop ~iterations:1 in
  let expected = reference_of prog machine in
  let report = Controller.run prog machine in
  check Alcotest.int "no offloads" 0 report.Controller.offloads;
  check Alcotest.bool "memory exact" true (Main_memory.equal expected mem)

(* Engine runaway guard composes with the controller: an enormous trip
   count still completes (in max_iterations windows) with exact results. *)
let very_long_loop_windows () =
  let k = Workloads.nn ~n:600 () in
  let dfg = Runner.dfg_of_kernel k in
  let model = Perf_model.create dfg in
  let placement =
    Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model)
  in
  let config = Accel_config.plain placement in
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  let windows = ref 0 in
  let rec drive () =
    incr windows;
    match Engine.execute ~max_iterations:100 ~config ~dfg ~machine ~hier () with
    | Error e -> Alcotest.fail e
    | Ok res -> if not res.Engine.completed then drive ()
  in
  drive ();
  check Alcotest.int "six windows" 6 !windows;
  let _ = Interp.run k.Kernel.program machine in
  check Alcotest.bool "exact across windows" true (k.Kernel.check mem = Ok ())

(* The detector's candidate tracking under interleaved loops: two sibling
   inner loops inside an outer loop both get verdicts. *)
let sibling_loops_both_considered () =
  let b = Asm.create () in
  let open Reg in
  Asm.label b "outer";
  Asm.li b t0 0;
  Asm.label b "first";
  Asm.addi b t1 t1 1;
  Asm.addi b t0 t0 1;
  Asm.blt b t0 a0 "first";
  Asm.li b t0 0;
  Asm.label b "second";
  Asm.addi b t2 t2 3;
  Asm.addi b t0 t0 1;
  Asm.blt b t0 a0 "second";
  Asm.addi b s2 s2 1;
  Asm.blt b s2 a1 "outer";
  Asm.ecall b;
  let prog = Asm.assemble b in
  let machine = Machine.create ~pc:(Program.entry prog) (Main_memory.create ~size:65536 ()) in
  Machine.set_args machine [ (a0, 300); (a1, 4) ];
  let report = Controller.run prog machine in
  let accepted =
    List.filter (fun (r : Controller.region_report) -> r.Controller.accepted)
      report.Controller.regions
  in
  check Alcotest.int "both inner loops accepted" 2 (List.length accepted);
  check Alcotest.bool "both offloaded" true
    (List.for_all
       (fun (r : Controller.region_report) -> r.Controller.offload_count >= 1)
       accepted);
  check Alcotest.int "register outcome" (300 * 4) (Machine.get_x machine t1)

(* {2 Property: any kernel, any geometry, any interconnect — the
   accelerator's architectural side effects (memory and live-out registers)
   equal the CPU interpreter's, and the cycle accounting closes. Fault-free
   counterpart of test_fault's random-schedule property. *)

let accel_matches_interpreter =
  QCheck2.Test.make ~name:"random configs: accelerator matches the interpreter"
    ~count:12 ~print:Gen.arch_case_print (Gen.arch_case ())
    (fun (c : Gen.arch_case) ->
      let k = Gen.arch_case_kernel c in
      let mem = Main_memory.create () in
      let machine = Kernel.prepare k mem in
      let expected = Machine.copy machine ~mem:(Main_memory.copy mem) () in
      let _ = Interp.run k.Kernel.program expected in
      let grid = Grid.make ~rows:c.Gen.rows ~cols:c.Gen.cols ~mem_ports:c.Gen.ports () in
      let options =
        { (Controller.default_options ~grid ()) with Controller.kind = c.Gen.kind }
      in
      let report = Controller.run ~options k.Kernel.program machine in
      Main_memory.equal expected.Machine.mem mem
      && Machine.arch_equal expected machine
      && k.Kernel.check mem = Ok ()
      && report.Controller.total_cycles
         = report.Controller.cpu_cycles + report.Controller.accel_cycles
           + report.Controller.overhead_cycles)

let suites =
  [
    ( "robustness",
      [
        Alcotest.test_case "short loop never breaks" `Quick short_loop_never_breaks;
        Alcotest.test_case "pending config fires on re-entry" `Quick
          pending_config_fires_on_reentry;
        Alcotest.test_case "unroutable region falls back" `Quick unroutable_region_falls_back;
        Alcotest.test_case "controller step limit" `Quick controller_step_limit;
        Alcotest.test_case "trace cache flaky fetch" `Quick trace_cache_flaky_fetch;
        Alcotest.test_case "multicore more cores than work" `Quick
          multicore_more_cores_than_work;
        Alcotest.test_case "multicore one core" `Quick multicore_one_core;
        Alcotest.test_case "single-trip loop" `Quick single_trip_loop;
        Alcotest.test_case "very long loop in windows" `Quick very_long_loop_windows;
        Alcotest.test_case "sibling loops" `Quick sibling_loops_both_considered;
        QCheck_alcotest.to_alcotest accel_matches_interpreter;
      ] );
  ]
