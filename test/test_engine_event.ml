(* Differential pinning of the event-driven engine against the legacy
   reference engine ({!Engine_reference}, kept as a test-only oracle behind
   [?engine:`Reference]).

   The event core memoizes steady-state arrival folds, batches fault clock
   advances and indexes store-to-load disambiguation — all pure
   restructurings, so *every* observable must stay bit-identical: cycles,
   iterations, memory contents, architectural registers, the full measured
   stats snapshot (per-node latency and per-edge transfer histograms,
   contention queues, achieved II), and the attribution bucket sums. *)

let check = Alcotest.check

(* One draw: a random workload on a random fabric (test/gen.ml axes) with a
   random tiling / pipelining choice so the memoized steady-state path, the
   multi-instance clock and the plain serial path are all exercised. *)
type draw = { arch : Gen.arch_case; tiling : int; pipelined : bool }

let gen_draw =
  let open QCheck2.Gen in
  Gen.arch_case () >>= fun arch ->
  oneofl [ 1; 2; 4 ] >>= fun tiling ->
  bool >>= fun pipelined -> return { arch; tiling; pipelined }

let print_draw d =
  Printf.sprintf "%s tiling=%d pipelined=%b" (Gen.arch_case_print d.arch) d.tiling
    d.pipelined

(* Everything observable from one engine run. The stats snapshot is
   compared as serialized JSON: histogram creation order pins the key
   order, so string equality also proves the engines observe in the same
   sequence. *)
type observation = {
  o_res : Engine.result;
  o_mem_checksum : int;
  o_stats_json : string;
  o_attr_totals : int array;
  o_attr_cycles : int;
}

let run_one ~engine ?fault_spec (d : draw) =
  let k = Gen.arch_case_kernel d.arch in
  let grid =
    Grid.make ~rows:d.arch.Gen.rows ~cols:d.arch.Gen.cols ~mem_ports:d.arch.Gen.ports ()
  in
  let dfg = Runner.dfg_of_kernel k in
  match Mapper.map ~grid ~kind:d.arch.Gen.kind (Perf_model.create dfg) with
  | Error _ -> None (* unmappable draw: nothing to compare *)
  | Ok placement ->
    let config =
      Accel_config.with_opts ~tiling:d.tiling ~pipelined:d.pipelined placement
    in
    let mem = Main_memory.create () in
    let machine = Kernel.prepare k mem in
    let attribution = Attribution.create ~grid () in
    Attribution.begin_window attribution ~at:0.0;
    let fault = Option.map (fun spec -> Fault.create ~grid spec) fault_spec in
    let hier = Hierarchy.create Hierarchy.default_config in
    let out =
      match Engine.execute ~engine ~attribution ?fault ~config ~dfg ~machine ~hier () with
      | Error e -> Alcotest.failf "%s: %s" k.Kernel.name e
      | Ok res ->
        Some
          (Ok
             ( {
                 o_res = res;
                 o_mem_checksum = Main_memory.checksum mem;
                 o_stats_json = Json.to_string (Stats.to_json res.Engine.measured);
                 o_attr_totals = Attribution.totals attribution;
                 o_attr_cycles = Attribution.total_cycles attribution;
               },
               machine ))
      | exception exn when fault <> None ->
        (* A wild corrupted address escaping mid-firing is documented
           behavior; both engines must blow up at the same point with the
           same partial memory image and a corrupted-window flag. *)
        Some
          (Error
             ( Printexc.to_string exn,
               Main_memory.checksum mem,
               Option.fold ~none:false ~some:Fault.window_corrupted fault ))
    in
    Hierarchy.release hier;
    out

let same_detection (a : Engine.detection option) (b : Engine.detection option) =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    a.Engine.d_kinds = b.Engine.d_kinds
    && a.Engine.d_latency = b.Engine.d_latency
    && a.Engine.d_watchdog = b.Engine.d_watchdog
  | _ -> false

let compare_observations name (ev, ev_m) (re, re_m) =
  check Alcotest.int (name ^ ": cycles") re.o_res.Engine.cycles ev.o_res.Engine.cycles;
  check Alcotest.int (name ^ ": iterations") re.o_res.Engine.iterations
    ev.o_res.Engine.iterations;
  check Alcotest.bool (name ^ ": completed") re.o_res.Engine.completed
    ev.o_res.Engine.completed;
  check Alcotest.int (name ^ ": exit pc") re.o_res.Engine.exit_pc
    ev.o_res.Engine.exit_pc;
  check Alcotest.bool (name ^ ": detection") true
    (same_detection re.o_res.Engine.fault ev.o_res.Engine.fault);
  check Alcotest.int (name ^ ": memory checksum") re.o_mem_checksum ev.o_mem_checksum;
  check Alcotest.bool (name ^ ": registers") true (Machine.arch_equal re_m ev_m);
  check Alcotest.string (name ^ ": stats snapshot") re.o_stats_json ev.o_stats_json;
  check Alcotest.(array int) (name ^ ": attribution buckets") re.o_attr_totals
    ev.o_attr_totals;
  check Alcotest.int (name ^ ": attribution cycles") re.o_attr_cycles ev.o_attr_cycles

(* {2 Property: random fabric x kernel x tiling draws are bit-identical
   across the two engines in every observable.} *)

let engines_bit_identical =
  QCheck2.Test.make
    ~name:"random configs: event engine bit-identical to reference oracle" ~count:10
    ~print:print_draw gen_draw
    (fun d ->
      match (run_one ~engine:`Event d, run_one ~engine:`Reference d) with
      | None, None -> true (* both reject the unmappable draw the same way *)
      | Some (Ok ev), Some (Ok re) ->
        compare_observations (print_draw d) ev re;
        true
      | _ -> false)

(* {2 Fault injection across a batched time jump.}

   In steady state the event engine replays memoized arrival folds and the
   fault clock advances through {!Fault.tick}'s batched fast path (no event
   due -> no list traversal). The schedule below strikes at iterations 100
   and 300 — both deep inside the memoized regime of a pipelined, tiled nn
   run — so each strike lands *after* a batched quiet stretch and must
   flip the engine back onto the dirty path at exactly the reference
   iteration. Detection metadata, the corrupted memory image and the cycle
   count must all match the reference engine exactly. *)

let fault_crosses_batched_jump () =
  let d =
    {
      arch = { Gen.kernel = 0; rows = 8; cols = 16; ports = 4; kind = Interconnect.Mesh_noc };
      tiling = 4;
      pipelined = true;
    }
  in
  (* Fix the drawn kernel to nn regardless of workload-list order. *)
  let d =
    let all = Workloads.all () in
    let idx =
      match List.find_index (fun k -> k.Kernel.name = "nn") all with
      | Some i -> i
      | None -> Alcotest.fail "nn not in workload list"
    in
    { d with arch = { d.arch with Gen.kernel = idx } }
  in
  (* Several seeds draw different victim PEs, so both fault endings are
     exercised: windows whose corruption is detected at the checksum, and
     windows whose wild corrupted address escapes mid-firing. Either way
     the two engines must agree exactly. *)
  let detected = ref 0 and escaped = ref 0 in
  List.iter
    (fun seed ->
      let spec =
        Fault.spec ~seed
          [
            { Fault.at = 100; kind = Fault.Transient_pe; coord = None };
            { Fault.at = 300; kind = Fault.Permanent_pe; coord = None };
          ]
      in
      let name = Printf.sprintf "faulted nn (seed %d)" seed in
      match
        ( run_one ~engine:`Event ~fault_spec:spec d,
          run_one ~engine:`Reference ~fault_spec:spec d )
      with
      | Some (Ok ((ev_obs, _) as ev)), Some (Ok re) ->
        check Alcotest.bool (name ^ ": a fault was detected") true
          (ev_obs.o_res.Engine.fault <> None);
        incr detected;
        compare_observations name ev re
      | Some (Error (e1, ck1, c1)), Some (Error (e2, ck2, c2)) ->
        incr escaped;
        check Alcotest.string (name ^ ": same escape") e2 e1;
        check Alcotest.int (name ^ ": same partial memory") ck2 ck1;
        check Alcotest.bool (name ^ ": event window corrupted") true c1;
        check Alcotest.bool (name ^ ": reference window corrupted") true c2
      | Some (Ok _), Some (Error _) | Some (Error _), Some (Ok _) ->
        Alcotest.failf "%s: engines disagree on whether the window escapes" name
      | _ -> Alcotest.fail "nn must map on 8x16")
    [ 2; 7; 11; 23; 41 ];
  check Alcotest.bool "at least one detected window" true (!detected > 0)

let suites =
  [
    ( "engine-event",
      [
        QCheck_alcotest.to_alcotest engines_bit_identical;
        Alcotest.test_case "fault crosses a batched time jump" `Quick
          fault_crosses_batched_jump;
      ] );
  ]
