let check = Alcotest.check

let multicore_parallel_speedup () =
  let k = Workloads.find "gaussian" in
  let single = Runner.single_core k in
  let multi = Runner.multicore k in
  check Alcotest.bool "single correct" true (single.Runner.checked = Ok ());
  check Alcotest.bool "multi correct" true (multi.Runner.checked = Ok ());
  check Alcotest.bool "parallel speedup" true (multi.Runner.cycles < single.Runner.cycles)

let multicore_serial_kernel_single_thread () =
  let k = Workloads.find "nw" in
  let mem = Main_memory.create () in
  k.Kernel.setup mem;
  let r = Multicore.run k mem in
  check Alcotest.int "one thread" 1 r.Multicore.threads;
  check Alcotest.bool "correct" true (k.Kernel.check mem = Ok ())

let multicore_threads_and_overhead () =
  let k = Workloads.find "nn" in
  let mem = Main_memory.create () in
  k.Kernel.setup mem;
  let r = Multicore.run ~cores:16 k mem in
  check Alcotest.int "sixteen threads" 16 r.Multicore.threads;
  check Alcotest.int "one summary per thread" 16 (List.length r.Multicore.summaries);
  let slowest =
    List.fold_left (fun acc s -> max acc s.Ooo_model.cycles) 0 r.Multicore.summaries
  in
  check Alcotest.int "fork/join overhead applied"
    (slowest + Multicore.default_fork_join_cycles)
    r.Multicore.cycles;
  check Alcotest.bool "correct" true (k.Kernel.check mem = Ok ())

(* Slice boundaries with n < cores: surplus slices are empty, only
   populated ones spawn threads, and padding with empty slices leaves the
   cycle count exactly at the dense (cores = populated) run's value. *)
let multicore_sparse_slices () =
  let k = Workloads.nn ~n:10 () in
  let mem = Main_memory.create () in
  k.Kernel.setup mem;
  let sparse = Multicore.run ~cores:16 k mem in
  check Alcotest.int "threads = populated slices" 10 sparse.Multicore.threads;
  check Alcotest.int "one summary per populated slice" 10
    (List.length sparse.Multicore.summaries);
  check Alcotest.bool "correct" true (k.Kernel.check mem = Ok ());
  let mem_dense = Main_memory.create () in
  k.Kernel.setup mem_dense;
  let dense = Multicore.run ~cores:10 k mem_dense in
  check Alcotest.int "cycles unchanged vs dense run" dense.Multicore.cycles
    sparse.Multicore.cycles;
  check Alcotest.(list int) "per-slice cycles unchanged vs dense run"
    (List.map (fun s -> s.Ooo_model.cycles) dense.Multicore.summaries)
    (List.map (fun s -> s.Ooo_model.cycles) sparse.Multicore.summaries)

let multicore_empty_high_slices () =
  (* n divides cores: the populated slices sit at the tail of each group,
     every other slice is empty. *)
  let k = Workloads.nn ~n:4 () in
  let mem = Main_memory.create () in
  k.Kernel.setup mem;
  let r = Multicore.run ~cores:16 k mem in
  check Alcotest.int "four populated slices" 4 r.Multicore.threads;
  check Alcotest.int "four summaries" 4 (List.length r.Multicore.summaries);
  check Alcotest.bool "correct" true (k.Kernel.check mem = Ok ())

let translation_memo_shares_results () =
  let k = Workloads.find "bfs" in
  let d1 = Runner.dfg_of_kernel k in
  let d2 = Runner.dfg_of_kernel k in
  check Alcotest.bool "same LDFG object" true (d1 == d2);
  let p1 = Runner.placement_of ~grid:Grid.m128 k in
  let p2 = Runner.placement_of ~grid:Grid.m128 k in
  check Alcotest.bool "same placement object" true (p1 == p2);
  let hits, misses, _ = Runner.translation_cache_stats () in
  check Alcotest.bool "cache hit recorded" true (hits >= 2);
  check Alcotest.bool "cache miss recorded" true (misses >= 2);
  (* Different geometry is a different key. *)
  let p64 = Runner.placement_of ~grid:Grid.m64 k in
  check Alcotest.bool "distinct grid, distinct entry" true (not (p64 == p1));
  Runner.clear_translation_cache ();
  let d3 = Runner.dfg_of_kernel k in
  check Alcotest.bool "cleared cache rebuilds" true (not (d1 == d3))

let translation_memo_eviction () =
  let saved = Runner.translation_cache_capacity () in
  Fun.protect
    ~finally:(fun () ->
      Runner.set_translation_cache_capacity saved;
      Runner.clear_translation_cache ())
    (fun () ->
      Runner.clear_translation_cache ();
      Runner.set_translation_cache_capacity 3;
      check Alcotest.int "capacity readable" 3 (Runner.translation_cache_capacity ());
      (* Each kernel costs one dfg_memo entry; four distinct grids per kernel
         cost four placement_memo entries — far past a bound of 3. *)
      let k = Workloads.find "bfs" in
      let grids =
        List.map (fun rows -> Grid.make ~rows ~cols:4 ()) [ 2; 4; 6; 8 ]
      in
      List.iter (fun grid -> ignore (Runner.placement_of ~grid k)) grids;
      let _, _, evictions = Runner.translation_cache_stats () in
      check Alcotest.bool "overflow resets the tables" true (evictions >= 1);
      (* The memo still works after a reset: a repeated lookup hits. *)
      let p1 = Runner.placement_of ~grid:(List.hd grids) k in
      let p2 = Runner.placement_of ~grid:(List.hd grids) k in
      check Alcotest.bool "recompute after eviction is shared" true (p1 == p2);
      check Alcotest.bool "capacity below 1 rejected" true
        (match Runner.set_translation_cache_capacity 0 with
        | () -> false
        | exception Invalid_argument _ -> true))

let mesa_measurement_checked () =
  let k = Workloads.find "srad" in
  let m, report = Runner.mesa k in
  check Alcotest.bool "correct" true (m.Runner.checked = Ok ());
  check Alcotest.int "cycles match report" report.Controller.total_cycles m.Runner.cycles;
  check Alcotest.bool "energy positive" true (m.Runner.energy_nj > 0.0)

let mesa_mem_ports_override () =
  let k = Workloads.nn ~n:1024 () in
  let narrow, _ = Runner.mesa ~mem_ports:1 k in
  let wide, _ = Runner.mesa ~mem_ports:64 k in
  check Alcotest.bool "ports matter" true (wide.Runner.cycles < narrow.Runner.cycles)

let dfg_of_kernel_total () =
  List.iter
    (fun (k : Kernel.t) ->
      let dfg = Runner.dfg_of_kernel k in
      check Alcotest.bool (k.Kernel.name ^ " validates") true (Dfg.validate dfg = Ok ()))
    (Workloads.all ())

let speedup_and_efficiency_helpers () =
  let base =
    { Runner.label = "b"; cycles = 1000; energy_nj = 500.0; checked = Ok ();
      stats = Stats.empty }
  in
  let fast =
    { Runner.label = "f"; cycles = 250; energy_nj = 250.0; checked = Ok ();
      stats = Stats.empty }
  in
  check (Alcotest.float 1e-9) "speedup" 4.0 (Runner.speedup ~baseline:base fast);
  check (Alcotest.float 1e-9) "efficiency" 2.0 (Runner.efficiency ~baseline:base fast)

(* Experiments: smoke-run the cheap ones and check their headline shapes.
   The expensive ones run in the benchmark executable. *)

let experiment_fig15_shape () =
  let o = Experiments.fig15 ~n:512 () in
  let v name = List.assoc name o.Experiments.summary in
  check Alcotest.bool "512-PE default much slower than ideal scaling" true
    (v "default_512pe_speedup" < 24.0);
  check Alcotest.bool "but still scales beyond 1" true (v "default_512pe_speedup" > 2.0)

let experiment_fig16_shape () =
  let o = Experiments.fig16 ~n:512 () in
  let be = List.assoc "breakeven_iterations" o.Experiments.summary in
  check Alcotest.bool "amortization in the paper's decade" true (be > 10.0 && be < 300.0)

let experiment_table1_shape () =
  let o = Experiments.table1 () in
  let f = List.assoc "mesa_core_area_fraction" o.Experiments.summary in
  check Alcotest.bool "under 10%" true (f < 0.10)

let experiment_table2_shape () =
  let o = Experiments.table2 () in
  let lo = List.assoc "config_cycles_min" o.Experiments.summary in
  let hi = List.assoc "config_cycles_max" o.Experiments.summary in
  check Alcotest.bool "JIT band 10^3-10^4" true (lo >= 500.0 && hi <= 20000.0)

let experiment_fig11_small () =
  let kernels = [ Workloads.find "gaussian"; Workloads.nn ~n:1024 () ] in
  let o = Experiments.fig11 ~kernels () in
  let v name = List.assoc name o.Experiments.summary in
  check Alcotest.bool "speedups computed" true (v "m128_speedup_geomean" > 0.2);
  check Alcotest.bool "efficiency computed" true (v "m128_efficiency_geomean" > 0.2);
  (* The rendered table mentions both kernels. *)
  let text = Tables.render o.Experiments.table in
  check Alcotest.bool "table has rows" true
    (String.split_on_char '\n' text
    |> List.exists (fun l -> String.length l > 2 && String.sub l 0 2 = "| "))

let experiment_fig12_small () =
  let o = Experiments.fig12 ~kernels:[ Workloads.find "gaussian" ] () in
  let noopt = List.assoc "noopt_vs_opencgra" o.Experiments.summary in
  let opt = List.assoc "opt_vs_opencgra" o.Experiments.summary in
  check Alcotest.bool "no-opt behind the compiler" true (noopt < 1.0);
  check Alcotest.bool "optimized ahead" true (opt > 1.0)

let experiment_fig14_small () =
  let o = Experiments.fig14 ~kernels:[ Workloads.find "lud" ] () in
  let m64 = List.assoc "m64_geomean" o.Experiments.summary in
  check Alcotest.bool "M-64 beats the single core on lud" true (m64 > 1.0)

let suites =
  [
    ( "multicore",
      [
        Alcotest.test_case "parallel speedup" `Quick multicore_parallel_speedup;
        Alcotest.test_case "serial kernel single thread" `Quick multicore_serial_kernel_single_thread;
        Alcotest.test_case "threads and overhead" `Quick multicore_threads_and_overhead;
        Alcotest.test_case "sparse slices (n < cores)" `Quick multicore_sparse_slices;
        Alcotest.test_case "empty high slices" `Quick multicore_empty_high_slices;
      ] );
    ( "runner",
      [
        Alcotest.test_case "mesa measurement" `Quick mesa_measurement_checked;
        Alcotest.test_case "translation memo" `Quick translation_memo_shares_results;
        Alcotest.test_case "translation memo eviction" `Quick translation_memo_eviction;
        Alcotest.test_case "mem ports override" `Quick mesa_mem_ports_override;
        Alcotest.test_case "dfg of every kernel" `Quick dfg_of_kernel_total;
        Alcotest.test_case "speedup/efficiency" `Quick speedup_and_efficiency_helpers;
      ] );
    ( "experiments",
      [
        Alcotest.test_case "fig15 shape" `Slow experiment_fig15_shape;
        Alcotest.test_case "fig16 shape" `Slow experiment_fig16_shape;
        Alcotest.test_case "table1 shape" `Quick experiment_table1_shape;
        Alcotest.test_case "table2 shape" `Quick experiment_table2_shape;
        Alcotest.test_case "fig11 smoke" `Slow experiment_fig11_small;
        Alcotest.test_case "fig12 smoke" `Slow experiment_fig12_small;
        Alcotest.test_case "fig14 smoke" `Slow experiment_fig14_small;
      ] );
  ]
