(* Timing-model properties of the accelerator engine: the cycle counts must
   respond to the physical levers (ports, tiling, placement distance,
   recurrences) in the direction the hardware would. *)

let check = Alcotest.check

let run_config ?(grid = Grid.m128) ?mem_ports ?(tiling = 1) ?(pipelined = true)
    ?placement_kind (k : Kernel.t) =
  let grid = match mem_ports with None -> grid | Some p -> { grid with Grid.mem_ports = p } in
  let kind = Option.value placement_kind ~default:Interconnect.Mesh_noc in
  let dfg = Runner.dfg_of_kernel k in
  let model = Perf_model.create dfg in
  let placement = Result.get_ok (Mapper.map ~grid ~kind model) in
  let config = Accel_config.with_opts ~tiling ~pipelined placement in
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  match Engine.execute ~config ~dfg ~machine ~hier () with
  | Ok res -> res
  | Error e -> Alcotest.fail e

let tiling_improves_throughput () =
  let k = Workloads.nn ~n:1024 () in
  let t1 = run_config ~tiling:1 k in
  let t4 = run_config ~tiling:4 k in
  let t8 = run_config ~tiling:8 k in
  check Alcotest.bool "4 instances faster" true (t4.Engine.cycles < t1.Engine.cycles);
  check Alcotest.bool "8 no slower than 4" true
    (t8.Engine.cycles <= t4.Engine.cycles + (t4.Engine.cycles / 10));
  check Alcotest.bool "sublinear (ports shared)" true
    (t8.Engine.cycles * 8 > t1.Engine.cycles)

let ports_bound_memory_kernels () =
  let k = Workloads.nn ~n:1024 () in
  let p1 = run_config ~mem_ports:1 ~tiling:8 k in
  let p4 = run_config ~mem_ports:4 ~tiling:8 k in
  check Alcotest.bool "more ports, fewer cycles" true (p4.Engine.cycles < p1.Engine.cycles);
  (* 3 memory ops per iteration through 1 port floor the makespan. *)
  check Alcotest.bool "1-port floor respected" true (p1.Engine.cycles >= 3 * 1024)

let recurrence_bounds_pipelining () =
  (* nw's carried chain caps pipelined throughput well above 1 cycle/iter. *)
  let res = run_config (Workloads.find "nw") in
  let per_iter = float_of_int res.Engine.cycles /. float_of_int res.Engine.iterations in
  check Alcotest.bool "carried loop beats 4 cycles/iter" true (per_iter > 4.0)

let noc_contention_measured () =
  (* Force long routes with a hierarchical-unfriendly placement: compare a
     mesh+NoC run's measured edge latencies against the contention-free
     base; some transfer must exceed its base latency when tiled. *)
  let k = Workloads.find "cfd" in
  let res = run_config ~tiling:4 k in
  check Alcotest.bool "activity recorded" true
    (res.Engine.activity.Activity.local_transfers > 0);
  let edges = Stats.hists_under res.Engine.measured "edge" in
  check Alcotest.bool "edges measured" true (List.length edges > 0);
  List.iter
    (fun (_, h) ->
      check Alcotest.bool "measured >= 1 cycle" true (Stats.hist_mean h >= 1.0))
    edges

let interconnect_kind_changes_timing () =
  let k = Workloads.find "kmeans" in
  let mesh = run_config ~placement_kind:Interconnect.Pure_mesh ~pipelined:false k in
  let rows = run_config ~placement_kind:Interconnect.Hierarchical_rows ~pipelined:false k in
  check Alcotest.bool "backends time differently" true
    (mesh.Engine.cycles <> rows.Engine.cycles);
  check Alcotest.int "same functional iterations" mesh.Engine.iterations rows.Engine.iterations

let cycles_lower_bound () =
  (* Unpipelined execution can never beat iterations x critical-op floor. *)
  let k = Workloads.find "gaussian" in
  let res = run_config ~pipelined:false k in
  (* Each iteration has an fmul (5 cycles) on the critical path, plus a
     load and a store. *)
  check Alcotest.bool "sequential floor" true (res.Engine.cycles > 8 * res.Engine.iterations)

let activity_consistency () =
  let k = Workloads.find "btree" in
  let res = run_config k in
  let a = res.Engine.activity in
  check Alcotest.int "iterations counted" k.Kernel.n a.Activity.iterations;
  (* 8 separator loads + 1 query load + 1 store per iteration. *)
  check Alcotest.int "memory ops exact" (10 * k.Kernel.n) a.Activity.mem_ops;
  (* li + 8x(slt,add) + 3 addi per iteration are integer firings. *)
  check Alcotest.int "int ops exact" (19 * k.Kernel.n) a.Activity.int_ops;
  check Alcotest.int "branch per iteration" k.Kernel.n a.Activity.branch_ops;
  check Alcotest.int "no fp" 0 a.Activity.fp_ops

let predication_counts_disabled () =
  let k = Workloads.find "kmeans" in
  let res = run_config k in
  let a = res.Engine.activity in
  check Alcotest.bool "some nodes predicated off" true (a.Activity.disabled_ops > 0);
  (* Each iteration fires 27 unguarded int/FP ops; the 6 guarded ones are
     split between enabled firings and disabled pass-throughs. *)
  check Alcotest.int "guard universe" (6 * k.Kernel.n)
    (a.Activity.disabled_ops
    + (a.Activity.int_ops + a.Activity.fp_ops - (27 * k.Kernel.n)))

let suites =
  [
    ( "engine_timing",
      [
        Alcotest.test_case "tiling improves throughput" `Quick tiling_improves_throughput;
        Alcotest.test_case "ports bound memory kernels" `Quick ports_bound_memory_kernels;
        Alcotest.test_case "recurrence bounds pipelining" `Quick recurrence_bounds_pipelining;
        Alcotest.test_case "noc measurements sane" `Quick noc_contention_measured;
        Alcotest.test_case "interconnect kind changes timing" `Quick
          interconnect_kind_changes_timing;
        Alcotest.test_case "sequential floor" `Quick cycles_lower_bound;
        Alcotest.test_case "activity consistency" `Quick activity_consistency;
        Alcotest.test_case "predication counts" `Quick predication_counts_disabled;
      ] );
  ]
