(* The live-telemetry layer: sketch quantile/merge laws, frame and span
   codecs, slow-consumer shedding on the span ring — and the two
   service-level contracts of the profiling-window feedback loop: armed
   telemetry never changes results, and oracle-fed refinement never makes
   a kernel slower. *)

let check = Alcotest.check

(* ---------------- sketches ---------------- *)

(* Op streams for the qcheck laws: non-negative ints decode to an
   observation or (every 7th value) a ring advance, so the generator
   exercises sub-window alignment too. Observations are integer-valued so
   the sketch's float sums are exact and merge order cannot perturb them
   (0.1 +. 0.3 +. 0.6 associates differently; 1. +. 3. +. 6. does not). *)
let apply_ops sk ops =
  List.iter
    (fun i ->
      let i = abs i in
      if i mod 7 = 0 then Sketch.advance sk
      else Sketch.observe sk (float_of_int (i mod 1000)))
    ops

let sketch_of ops =
  let sk = Sketch.create () in
  apply_ops sk ops;
  sk

let sketch_eq a b = Json.to_string (Sketch.to_json a) = Json.to_string (Sketch.to_json b)

let qcheck_merge_assoc_comm =
  QCheck.Test.make ~count:100
    ~name:"Sketch.merge is associative and commutative (to_json equality)"
    QCheck.(triple (small_list small_int) (small_list small_int) (small_list small_int))
    (fun (xs, ys, zs) ->
      let a () = sketch_of xs and b () = sketch_of ys and c () = sketch_of zs in
      sketch_eq
        (Sketch.merge (Sketch.merge (a ()) (b ())) (c ()))
        (Sketch.merge (a ()) (Sketch.merge (b ()) (c ())))
      && sketch_eq (Sketch.merge (a ()) (b ())) (Sketch.merge (b ()) (a ())))

(* The documented quantile guarantee: never an underestimate, at most the
   bucket ratio over (or the floor, below it). Values are drawn on the
   sketch's own 1e-3 resolution so the true quantile is unambiguous. *)
let qcheck_quantile_bounds =
  QCheck.Test.make ~count:200 ~name:"Sketch.quantile error bound"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 200) (int_bound 1_000_000))
        (int_bound 100))
    (fun (raw, qi) ->
      let values = List.map (fun i -> float_of_int i /. 1000.0) raw in
      let q = float_of_int qi /. 100.0 in
      let sk = Sketch.create () in
      List.iter (Sketch.observe sk) values;
      let est = Sketch.quantile sk q in
      let n = List.length values in
      let sorted = List.sort compare values in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let true_q = List.nth sorted (rank - 1) in
      let hi = Float.max Sketch.floor_value (true_q *. Sketch.ratio) in
      est >= true_q && est <= hi *. (1.0 +. 1e-9))

let sketch_json_roundtrip () =
  let sk = sketch_of [ 3; 15; 7; 142; 9; 21; 500; 7; 999; 14; 6 ] in
  match Sketch.of_json (Sketch.to_json sk) with
  | Error e -> Alcotest.fail ("sketch decode: " ^ e)
  | Ok back ->
    check Alcotest.bool "canonical encoding round-trips" true (sketch_eq sk back);
    check Alcotest.int "window count preserved" (Sketch.window_count sk)
      (Sketch.window_count back);
    check (Alcotest.float 0.0) "p99 preserved" (Sketch.quantile sk 0.99)
      (Sketch.quantile back 0.99)

(* ---------------- frames and spans ---------------- *)

(* A deterministic hub: time only moves when the test says so. *)
let manual_hub () =
  let now = ref 0.0 in
  let hub = Telemetry.create ~ring:64 ~windows:4 ~window_ms:100.0 ~clock:(fun () -> !now) () in
  (hub, now)

let frame_json_roundtrip () =
  let hub, now = manual_hub () in
  Telemetry.emit hub ~req:1 ~kernel:"nn" ~shard:0 Telemetry.Admit;
  Telemetry.observe_latency hub ~outcome:"ok" 2.25;
  Telemetry.observe_latency hub ~outcome:"overloaded" 0.4;
  Telemetry.observe_cycles hub ~kernel:"nn" 11464;
  Telemetry.note_profile_window hub ~kernel:"nn";
  Telemetry.note_refine_accept hub ~kernel:"nn";
  now := 123.0;
  let w = Telemetry.watcher hub in
  Telemetry.note_missed w 2;
  let f = Telemetry.next_frame hub w Stats.empty in
  let j = Telemetry.frame_to_json f in
  (match Telemetry.frame_of_json j with
  | Error e -> Alcotest.fail ("frame decode: " ^ e)
  | Ok back ->
    check Alcotest.string "frame round-trips bit-identically"
      (Json.to_string j)
      (Json.to_string (Telemetry.frame_to_json back));
    check Alcotest.int "dropped ticks survive" 2 back.Telemetry.f_dropped;
    (match List.assoc_opt "nn" back.Telemetry.f_kernels with
    | None -> Alcotest.fail "kernel row lost"
    | Some k ->
      check Alcotest.int "profile windows" 1 k.Telemetry.k_profile_windows;
      check Alcotest.int "refine accepts" 1 k.Telemetry.k_refine_accepts));
  (* Every taxonomy outcome is present in every frame, zeros included. *)
  check Alcotest.int "all outcomes present"
    (1 + List.length Proto.all_error_kinds)
    (List.length f.Telemetry.f_outcomes)

let span_json_roundtrip () =
  let hub, _ = manual_hub () in
  Telemetry.emit hub ~req:7 ~kernel:"bfs" ~shard:1 ~outcome:"ok"
    ~detail:"14081 cycles" Telemetry.Execute;
  let cursor = Telemetry.subscribe hub in
  Telemetry.emit hub ~req:8 ~kernel:"kmeans" ~shard:0 Telemetry.Refine;
  match Telemetry.poll hub cursor ~max:10 with
  | [ sp ] ->
    (match Telemetry.span_of_json (Telemetry.span_to_json sp) with
    | Error e -> Alcotest.fail ("span decode: " ^ e)
    | Ok back ->
      check Alcotest.string "span round-trips bit-identically"
        (Json.to_string (Telemetry.span_to_json sp))
        (Json.to_string (Telemetry.span_to_json back)))
  | spans -> Alcotest.failf "expected 1 span after subscribe, got %d" (List.length spans)

(* Deltas across a watcher's stream telescope to the final totals — the
   closure property `mesa_cli telemetry-check` gates on. *)
let watcher_deltas_close () =
  let hub, _ = manual_hub () in
  let reg = Stats.registry () in
  let g = Stats.group reg "service" in
  let og = Stats.subgroup g "outcomes" in
  let ok = Stats.counter og "ok" in
  let w = Telemetry.watcher hub in
  let deltas = ref 0 in
  for i = 1 to 4 do
    Stats.add ok i;
    let f = Telemetry.next_frame hub w (Stats.snapshot reg) in
    (match List.assoc_opt "ok" f.Telemetry.f_outcomes with
    | Some r ->
      deltas := !deltas + r.Telemetry.o_delta;
      if i = 4 then
        check Alcotest.int "summed deltas equal the final total" r.Telemetry.o_total !deltas
    | None -> Alcotest.fail "ok row missing")
  done

(* ---------------- slow-consumer shedding ---------------- *)

let ring_sheds_forward () =
  let hub, _ = manual_hub () in
  (* ring = 64: subscribe, then overrun it. *)
  let cursor = Telemetry.subscribe hub in
  for i = 0 to 199 do
    Telemetry.emit hub ~req:i Telemetry.Admit
  done;
  let spans = Telemetry.poll hub cursor ~max:1000 in
  check Alcotest.int "only the retained suffix is delivered" 64 (List.length spans);
  check Alcotest.int "shed count is exact" 136 (Telemetry.cursor_dropped cursor);
  (* Delivered spans keep their original, contiguous sequence numbers. *)
  List.iteri
    (fun i sp ->
      check Alcotest.int
        (Printf.sprintf "seq at position %d" i)
        (136 + i) sp.Telemetry.sp_seq)
    spans;
  check (Alcotest.list Alcotest.int) "a drained cursor yields nothing" []
    (List.map (fun s -> s.Telemetry.sp_seq) (Telemetry.poll hub cursor ~max:10))

(* ---------------- the service-level contracts ---------------- *)

let exec_ok svc id kernel =
  match Service.execute svc (Proto.run_request ~id kernel) with
  | Proto.Ok_run b -> b
  | Proto.Err e -> Alcotest.failf "%s: %s" kernel e.Proto.message
  | _ -> Alcotest.fail "unexpected body"

let base_config =
  {
    Service.default_config with
    Service.shards = 1;
    shard_pes = 64;
    jobs = 1;
    warm = false;
  }

(* Armed telemetry is pure observation: the first response of a profiling
   service (every run profiled) is bit-identical to an unprofiled one. *)
let telemetry_on_off_bit_identical () =
  let run profile_window =
    let svc = Service.create ~config:{ base_config with Service.profile_window } () in
    Fun.protect
      ~finally:(fun () -> Service.shutdown svc)
      (fun () -> exec_ok svc 1 "nn")
  in
  let off = run None in
  let on = run (Some 1) in
  check Alcotest.int "cycles identical" off.Proto.cycles on.Proto.cycles;
  check Alcotest.int "memory checksum identical" off.Proto.mem_checksum
    on.Proto.mem_checksum;
  check Alcotest.int "offloads identical" off.Proto.offloads on.Proto.offloads

(* The feedback loop end to end: a profiled run's measured oracles drive a
   background refine whose accepted placement is swapped into the warm
   memo — and the re-executed kernel never got slower (kmeans on M-64 has
   known refinement headroom, so an accept must actually land). *)
let oracle_fed_refine_never_regresses () =
  let config = { base_config with Service.profile_window = Some 1 } in
  let svc = Service.create ~config () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      let first = exec_ok svc 1 "kmeans" in
      (* The profiled run queued a refine; wait for the refiner to drain. *)
      let deadline = Unix.gettimeofday () +. 60.0 in
      while Service.refine_backlog svc > 0 && Unix.gettimeofday () < deadline do
        Thread.delay 0.02
      done;
      check Alcotest.int "refiner drained" 0 (Service.refine_backlog svc);
      let snap = Service.stats svc in
      let stat p = Option.value ~default:0 (Stats.find_int snap p) in
      check Alcotest.bool "a profiling window was captured" true
        (stat "telemetry.profile_windows" >= 1);
      check Alcotest.bool "oracles were handed to the refiner" true
        (stat "telemetry.oracle_refreshes" >= 1);
      check Alcotest.bool "the refinement was confirmed and installed" true
        (stat "telemetry.refine_accepts" >= 1);
      let second = exec_ok svc 2 "kmeans" in
      check Alcotest.bool
        (Printf.sprintf "never regress: %d <= %d" second.Proto.cycles
           first.Proto.cycles)
        true
        (second.Proto.cycles <= first.Proto.cycles);
      check Alcotest.int "results unchanged by the swap" first.Proto.mem_checksum
        second.Proto.mem_checksum)

let suites =
  [
    ( "telemetry",
      [
        QCheck_alcotest.to_alcotest qcheck_merge_assoc_comm;
        QCheck_alcotest.to_alcotest qcheck_quantile_bounds;
        Alcotest.test_case "sketch json roundtrip" `Quick sketch_json_roundtrip;
        Alcotest.test_case "frame json roundtrip" `Quick frame_json_roundtrip;
        Alcotest.test_case "span json roundtrip" `Quick span_json_roundtrip;
        Alcotest.test_case "watcher delta closure" `Quick watcher_deltas_close;
        Alcotest.test_case "ring sheds forward" `Quick ring_sheds_forward;
        Alcotest.test_case "telemetry on/off bit-identity" `Slow
          telemetry_on_off_bit_identical;
        Alcotest.test_case "oracle-fed refine never regresses" `Slow
          oracle_fed_refine_never_regresses;
      ] );
  ]
