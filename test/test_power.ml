let check = Alcotest.check

let find name entries =
  List.find (fun (e : Area_model.entry) -> e.Area_model.component = name) entries

(* Table 1's published numbers must come out exactly at the calibration
   point (512 entries, 128 PEs). *)
let table1_calibration_point () =
  let mesa = Area_model.mesa_extensions ~capacity:512 in
  let cases =
    [
      ("MESA Top", 502000.0, 360.0);
      ("MESA ArchModel", 375000.0, 270.0);
      ("Instr. RenameTable", 11417.5, 6.161);
      ("LDFG", 148483.6, 90.0);
      ("Instr. Convert", 601.4, 0.465);
      ("Instr. Mapping", 208432.9, 130.0);
      ("Latency Optimizer", 4060.4, 3.302);
      ("SDFG", 201171.0, 120.0);
      ("MESA ConfigBlock", 101357.9, 70.0);
    ]
  in
  List.iter
    (fun (name, area, power) ->
      let e = find name mesa in
      check (Alcotest.float 0.5) (name ^ " area") area e.Area_model.area_um2;
      check (Alcotest.float 0.5) (name ^ " power") power e.Area_model.power_mw)
    cases;
  let cpu = Area_model.cpu_additions ~capacity:512 in
  check (Alcotest.float 0.5) "trace cache" 27124.5 (find "Trace Cache" cpu).Area_model.area_um2;
  let acc = Area_model.accelerator ~grid:Grid.m128 in
  check (Alcotest.float 1000.0) "accelerator top" 26.56e6
    (find "Accelerator Top" acc).Area_model.area_um2;
  check (Alcotest.float 1.0) "accelerator power" 11650.0
    (find "Accelerator Top" acc).Area_model.power_mw

let table1_scaling () =
  let big = find "LDFG" (Area_model.mesa_extensions ~capacity:512) in
  let small = find "LDFG" (Area_model.mesa_extensions ~capacity:128) in
  check (Alcotest.float 1.0) "LDFG scales with capacity"
    (big.Area_model.area_um2 /. 4.0)
    small.Area_model.area_um2;
  let a512 = find "PE Array" (Area_model.accelerator ~grid:Grid.m512) in
  let a128 = find "PE Array" (Area_model.accelerator ~grid:Grid.m128) in
  check (Alcotest.float 1.0) "PE array scales 4x" (4.0 *. a128.Area_model.area_um2)
    a512.Area_model.area_um2

let mesa_under_ten_percent_of_core () =
  let f = Area_model.mesa_area_fraction_of_core ~capacity:512 in
  check Alcotest.bool "paper's <10% claim" true (f > 0.0 && f < 0.10)

let totals_are_top_level_sums () =
  let entries = Area_model.accelerator ~grid:Grid.m128 in
  check (Alcotest.float 0.01) "total area = top entry" 26.56
    (Area_model.total_area_mm2 entries);
  check (Alcotest.float 0.01) "total power = top entry" 11.65
    (Area_model.total_power_w entries)

(* -------------------- energy model -------------------- *)

let mk_activity ~ops ~cycles =
  let a = Activity.create () in
  a.Activity.int_ops <- ops;
  a.Activity.fp_ops <- ops;
  a.Activity.mem_ops <- ops / 2;
  a.Activity.local_transfers <- 2 * ops;
  a.Activity.noc_transfers <- ops / 4;
  a.Activity.cycles <- cycles;
  a.Activity.iterations <- max 1 (ops / 10);
  a

let energy_positive_and_additive () =
  let b1 = Energy_model.accel_energy ~grid:Grid.m128 (mk_activity ~ops:1000 ~cycles:500) in
  let b2 = Energy_model.accel_energy ~grid:Grid.m128 (mk_activity ~ops:2000 ~cycles:500) in
  check Alcotest.bool "positive" true (b1.Energy_model.total_nj > 0.0);
  check Alcotest.bool "monotone in activity" true
    (b2.Energy_model.total_nj > b1.Energy_model.total_nj);
  check (Alcotest.float 1e-6) "categories sum to total"
    b1.Energy_model.total_nj
    (b1.Energy_model.compute_nj +. b1.Energy_model.memory_nj
    +. b1.Energy_model.interconnect_nj +. b1.Energy_model.control_nj)

let control_energy_scales_with_time () =
  let short = Energy_model.accel_energy ~grid:Grid.m128 (mk_activity ~ops:100 ~cycles:100) in
  let long = Energy_model.accel_energy ~grid:Grid.m128 (mk_activity ~ops:100 ~cycles:10000) in
  check Alcotest.bool "idle time costs control energy" true
    (long.Energy_model.control_nj > 10.0 *. short.Energy_model.control_nj)

let cpu_energy_model () =
  let s =
    {
      Ooo_model.cycles = 1000;
      instructions = 2000;
      mispredicts = 3;
      loads = 400;
      stores = 100;
      int_ops = 1200;
      fp_ops = 300;
      branches = 200;
      load_latency_sum = 2000;
      rob_stalls = 0;
      fetch_refills = 0;
    }
  in
  let e = Energy_model.cpu_energy_nj s in
  check Alcotest.bool "positive" true (e > 0.0);
  check Alcotest.bool "dynamic dominates for busy core" true
    (e > float_of_int s.Ooo_model.cycles *. 0.175);
  check (Alcotest.float 1e-9) "multicore sums" (2.0 *. e)
    (Energy_model.multicore_energy_nj [ s; s ])

let efficiency_gain_semantics () =
  check (Alcotest.float 1e-9) "half the energy, 2x efficiency" 2.0
    (Energy_model.efficiency_gain ~baseline_nj:100.0 50.0);
  check (Alcotest.float 1e-9) "degenerate" 0.0
    (Energy_model.efficiency_gain ~baseline_nj:100.0 0.0)

let mesa_translation_energy () =
  check (Alcotest.float 1e-9) "0.36 W at 2 GHz" 180.0
    (Energy_model.mesa_energy_nj ~busy_cycles:1000)

let suites =
  [
    ( "area_model",
      [
        Alcotest.test_case "Table 1 calibration point" `Quick table1_calibration_point;
        Alcotest.test_case "scaling model" `Quick table1_scaling;
        Alcotest.test_case "MESA under 10% of a core" `Quick mesa_under_ten_percent_of_core;
        Alcotest.test_case "totals" `Quick totals_are_top_level_sums;
      ] );
    ( "energy_model",
      [
        Alcotest.test_case "positive and additive" `Quick energy_positive_and_additive;
        Alcotest.test_case "control scales with time" `Quick control_energy_scales_with_time;
        Alcotest.test_case "cpu model" `Quick cpu_energy_model;
        Alcotest.test_case "efficiency gain" `Quick efficiency_gain_semantics;
        Alcotest.test_case "mesa translation energy" `Quick mesa_translation_energy;
      ] );
  ]
