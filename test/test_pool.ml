(* The domain pool under the harness: submission-order results, exception
   propagation, inline jobs=1 mode — and the determinism guarantee the
   parallel experiments rely on (identical tables at any job count). *)

let check = Alcotest.check

let squares = List.init 50 (fun i -> i * i)

let map_preserves_submission_order () =
  List.iter
    (fun jobs ->
      let got = Pool.run ~jobs (fun x -> x * x) (List.init 50 Fun.id) in
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "jobs=%d results in submission order" jobs)
        squares got)
    [ 1; 2; 4 ]

let out_of_order_completion () =
  (* Earlier tasks do more work than later ones, so with several workers
     completion order inverts; await must still restore submission order. *)
  let spin n =
    let acc = ref 0 in
    for i = 1 to (50 - n) * 10_000 do
      acc := !acc + i
    done;
    ignore !acc;
    n
  in
  let got = Pool.run ~jobs:4 spin (List.init 50 Fun.id) in
  check (Alcotest.list Alcotest.int) "order restored" (List.init 50 Fun.id) got

let jobs_one_runs_inline () =
  let trace = ref [] in
  Pool.with_pool ~jobs:1 (fun pool ->
      let f1 = Pool.submit pool (fun () -> trace := 1 :: !trace) in
      (* With jobs = 1 the task has already run when submit returns. *)
      check (Alcotest.list Alcotest.int) "ran at submit" [ 1 ] !trace;
      let f2 = Pool.submit pool (fun () -> trace := 2 :: !trace) in
      Pool.await f1;
      Pool.await f2);
  check (Alcotest.list Alcotest.int) "submission order" [ 2; 1 ] !trace

let exception_propagates () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let ok = Pool.submit pool (fun () -> 41 + 1) in
          let bad = Pool.submit pool (fun () -> failwith "boom") in
          check Alcotest.int "healthy task unaffected" 42 (Pool.await ok);
          Alcotest.check_raises "failure re-raised at await" (Failure "boom")
            (fun () -> Pool.await bad)))
    [ 1; 4 ]

let await_is_idempotent () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let f = Pool.submit pool (fun () -> 7) in
      check Alcotest.int "first await" 7 (Pool.await f);
      check Alcotest.int "second await" 7 (Pool.await f))

let submit_after_shutdown_rejected () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit rejected"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> ())))

let default_jobs_positive () =
  check Alcotest.bool "recommended domain count >= 1" true (Pool.default_jobs () >= 1)

let try_await_polls_without_blocking () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let gate = Atomic.make false in
      let f =
        Pool.submit pool (fun () ->
            while not (Atomic.get gate) do
              Domain.cpu_relax ()
            done;
            11)
      in
      check (Alcotest.option Alcotest.int) "pending -> None" None (Pool.try_await f);
      Atomic.set gate true;
      check Alcotest.int "await still yields the value" 11 (Pool.await f);
      check (Alcotest.option Alcotest.int) "settled -> Some" (Some 11)
        (Pool.try_await f))

let await_timeout_times_out_then_settles () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let gate = Atomic.make false in
      let f =
        Pool.submit pool (fun () ->
            while not (Atomic.get gate) do
              Domain.cpu_relax ()
            done;
            23)
      in
      check (Alcotest.option Alcotest.int) "times out while blocked" None
        (Pool.await_timeout f 0.02);
      check (Alcotest.option Alcotest.int) "non-positive timeout is a poll" None
        (Pool.await_timeout f 0.0);
      Atomic.set gate true;
      (* The abandoned task kept running; a later bounded wait gets it. *)
      check (Alcotest.option Alcotest.int) "later wait sees the result" (Some 23)
        (Pool.await_timeout f 5.0))

let await_timeout_zero_polls_settled_state () =
  (* A non-positive window is a poll, not an unconditional None: the
     initial try_await runs first, so a settled future still yields. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let f = Pool.submit pool (fun () -> 5) in
      check Alcotest.int "settle it" 5 (Pool.await f);
      check (Alcotest.option Alcotest.int) "zero window on settled future"
        (Some 5)
        (Pool.await_timeout f 0.0);
      check (Alcotest.option Alcotest.int) "negative window too" (Some 5)
        (Pool.await_timeout f (-1.0)))

let await_timeout_completion_race () =
  (* The task settles mid-window, from another thread: the bounded wait
     must pick the result up promptly (next poll step) instead of either
     sleeping the window out or losing the wakeup. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let gate = Atomic.make false in
      let f =
        Pool.submit pool (fun () ->
            while not (Atomic.get gate) do
              Domain.cpu_relax ()
            done;
            31)
      in
      let opener =
        Thread.create
          (fun () ->
            Unix.sleepf 0.05;
            Atomic.set gate true)
          ()
      in
      let t0 = Unix.gettimeofday () in
      let r = Pool.await_timeout f 30.0 in
      let elapsed = Unix.gettimeofday () -. t0 in
      Thread.join opener;
      check (Alcotest.option Alcotest.int) "settled mid-window" (Some 31) r;
      check Alcotest.bool "returned well before the deadline" true
        (elapsed < 10.0))

let await_timeout_propagates_exceptions () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let f = Pool.submit pool (fun () -> failwith "boom") in
      Alcotest.check_raises "failure re-raised within the window"
        (Failure "boom") (fun () -> ignore (Pool.await_timeout f 1.0));
      Alcotest.check_raises "try_await re-raises too" (Failure "boom")
        (fun () -> ignore (Pool.try_await f)))

(* qcheck: for settled futures a bounded wait agrees with await, at any
   jobs count (jobs=1 settles at submit; jobs>1 settles within the window). *)
let qcheck_await_timeout_agrees =
  QCheck.Test.make ~count:50 ~name:"Pool.await_timeout agrees with await"
    QCheck.(pair (int_range 1 4) small_int)
    (fun (jobs, x) ->
      Pool.with_pool ~jobs (fun pool ->
          let f = Pool.submit pool (fun () -> x * 3) in
          Pool.await_timeout f 5.0 = Some (Pool.await f)))

(* qcheck: parallel map is extensionally List.map, for arbitrary inputs and
   job counts. *)
let qcheck_map_is_list_map =
  QCheck.Test.make ~count:50 ~name:"Pool.run = List.map"
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
      Pool.run ~jobs (fun x -> (2 * x) + 1) xs = List.map (fun x -> (2 * x) + 1) xs)

(* Golden determinism for the experiment layer: the same figure at jobs=1
   and jobs=4 must render the same table text and the same summary. *)
let fig11_jobs_bit_identical () =
  let kernels () = [ Workloads.find "gaussian"; Workloads.nn ~n:512 () ] in
  let seq = Experiments.fig11 ~jobs:1 ~kernels:(kernels ()) () in
  let par = Experiments.fig11 ~jobs:4 ~kernels:(kernels ()) () in
  check Alcotest.string "table text identical"
    (Tables.render seq.Experiments.table)
    (Tables.render par.Experiments.table);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
    "summaries identical" seq.Experiments.summary par.Experiments.summary

let suites =
  [
    ( "pool",
      [
        Alcotest.test_case "submission order" `Quick map_preserves_submission_order;
        Alcotest.test_case "out-of-order completion" `Quick out_of_order_completion;
        Alcotest.test_case "jobs=1 inline" `Quick jobs_one_runs_inline;
        Alcotest.test_case "exception propagation" `Quick exception_propagates;
        Alcotest.test_case "await idempotent" `Quick await_is_idempotent;
        Alcotest.test_case "shutdown semantics" `Quick submit_after_shutdown_rejected;
        Alcotest.test_case "default jobs" `Quick default_jobs_positive;
        Alcotest.test_case "try_await" `Quick try_await_polls_without_blocking;
        Alcotest.test_case "await_timeout" `Quick await_timeout_times_out_then_settles;
        Alcotest.test_case "await_timeout zero window" `Quick
          await_timeout_zero_polls_settled_state;
        Alcotest.test_case "await_timeout completion race" `Quick
          await_timeout_completion_race;
        Alcotest.test_case "await_timeout exceptions" `Quick
          await_timeout_propagates_exceptions;
        QCheck_alcotest.to_alcotest qcheck_map_is_list_map;
        QCheck_alcotest.to_alcotest qcheck_await_timeout_agrees;
        Alcotest.test_case "fig11 jobs determinism" `Slow fig11_jobs_bit_identical;
      ] );
  ]
