(* The tile-DSL generator stack (lib/gen): unit tests that each combinator
   lowers to the expected RV32 shape, qcheck properties over the random
   program generator (validity, determinism, decodability, no undefined
   registers), and the mutation test — an injected lowering defect must be
   caught by the differential oracle and shrink to a tiny reproducer. *)

let chk = Alcotest.check

let code_of spec =
  match Tile_lower.lower spec with
  | Ok b -> Program.code b.Tile_lower.program
  | Error e -> Alcotest.failf "lower: %s" e

let exists_instr code p = Array.exists p code

(* A one-loop spec around [body], with x/out arrays sized generously. *)
let wrap1 ?(extent = 16) body =
  {
    Tile_dsl.sname = "t";
    seed = 7;
    arrays = [ Tile_dsl.array_i "x" 64; Tile_dsl.array_i ~input:false "out" 64 ];
    body = [ Tile_dsl.for_ "i" extent body ];
  }

(* {2 Combinator lowering} *)

let affine_load_store_lowering () =
  let open Tile_dsl in
  (* out[2i+3] = x[i] + 5: the load index scales by 4 bytes (slli 2), the
     store index by 8 (slli 3) plus a 12-byte displacement. *)
  let code =
    code_of
      (wrap1
         [
           Istore
             ( "out",
               idx ~const:3 [ ("i", 2) ],
               Ibin (Add, Iload ("x", idx [ ("i", 1) ]), Iconst 5) );
         ])
  in
  chk Alcotest.bool "x index: slli by 2" true
    (exists_instr code (function Isa.Itype (Isa.SLLI, _, _, 2) -> true | _ -> false));
  chk Alcotest.bool "out index: slli by 3" true
    (exists_instr code (function Isa.Itype (Isa.SLLI, _, _, 3) -> true | _ -> false));
  chk Alcotest.bool "out displacement: addi 12" true
    (exists_instr code (function Isa.Itype (Isa.ADDI, _, _, 12) -> true | _ -> false));
  chk Alcotest.bool "word load" true
    (exists_instr code (function Isa.Load (Isa.LW, _, _, _) -> true | _ -> false));
  chk Alcotest.bool "word store" true
    (exists_instr code (function Isa.Store (Isa.SW, _, _, _) -> true | _ -> false));
  chk Alcotest.bool "bottom-test backward branch" true
    (exists_instr code (function Isa.Branch (Isa.BLT, _, _, o) -> o < 0 | _ -> false))

let reduction_lowering () =
  let open Tile_dsl in
  (* ft0 accumulates: an FADD into scratch followed by a move into the
     temporary's home register ft0. *)
  let spec =
    {
      sname = "t";
      seed = 7;
      arrays = [ array_f "x" 64; array_f ~input:false "out" 4 ];
      body =
        [
          for_ "i" 4
            [
              Fset (0, Fconst 0.0);
              for_ "j" 16 [ accum_f 0 Fadd (Fload ("x", idx [ ("j", 1) ])) ];
              Fstore ("out", idx [ ("i", 1) ], Ftmp 0);
            ];
        ];
    }
  in
  let code = code_of spec in
  chk Alcotest.bool "fadd present" true
    (exists_instr code (function Isa.Ftype (Isa.FADD, _, _, _) -> true | _ -> false));
  chk Alcotest.bool "accumulator moved back into ft0" true
    (exists_instr code (function
      | Isa.Ftype (Isa.FSGNJ, fd, s, s') -> fd = Reg.ft0 && s = s'
      | _ -> false))

let guard_lowering () =
  let open Tile_dsl in
  (* A guard branches on the negated comparison over the guarded body. *)
  let store = Istore ("out", idx [ ("i", 1) ], Iconst 1) in
  let lt =
    code_of (wrap1 [ if_ Lt (Ivar "i") (Iconst 8) [ store ] ])
  in
  chk Alcotest.bool "Lt guards with bge" true
    (exists_instr lt (function Isa.Branch (Isa.BGE, _, _, o) -> o > 0 | _ -> false));
  let eq =
    code_of (wrap1 [ if_ Eq (Ibin (And, Ivar "i", Iconst 1)) (Iconst 0) [ store ] ])
  in
  chk Alcotest.bool "Eq guards with bne" true
    (exists_instr eq (function Isa.Branch (Isa.BNE, _, _, o) -> o > 0 | _ -> false))

let tile_lowering () =
  let open Tile_dsl in
  let loop =
    for_ "j" 16 [ Istore ("out", idx [ ("j", 1) ], Iload ("x", idx [ ("j", 2) ])) ]
  in
  let tiled =
    match tile ~t:4 loop with Ok s -> s | Error e -> Alcotest.fail e
  in
  (* Tiling splits the loop in two; untiling restores the original AST. *)
  chk Alcotest.bool "untile inverts tile" true (untile tiled = Some loop);
  let spec =
    {
      sname = "t";
      seed = 7;
      arrays = [ array_i "x" 64; array_i ~input:false "out" 16 ];
      body = [ for_ "i" 2 [ tiled ] ];
    }
  in
  let b =
    match Tile_lower.lower spec with Ok b -> b | Error e -> Alcotest.fail e
  in
  let p = b.Tile_lower.program in
  chk Alcotest.bool "outer tile loop label" true
    (match Program.symbol p "L_j_o" with _ -> true | exception Not_found -> false);
  chk Alcotest.bool "inner tile loop label" true
    (match Program.symbol p "L_j_i" with _ -> true | exception Not_found -> false);
  (* The strip-mined pair must compute exactly what the flat loop does. *)
  let flat = { spec with body = [ for_ "i" 2 [ loop ] ] } in
  let mem_t = Main_memory.create () and mem_f = Main_memory.create () in
  Tile_dsl.setup spec mem_t;
  Tile_dsl.setup flat mem_f;
  Tile_dsl.eval spec mem_t;
  Tile_dsl.eval flat mem_f;
  chk Alcotest.bool "tiled eval equals flat eval" true
    (Main_memory.equal mem_t mem_f)

let validate_rejects_bad_shapes () =
  let open Tile_dsl in
  let base = wrap1 [ Istore ("out", idx [ ("i", 1) ], Iconst 1) ] in
  chk Alcotest.bool "well-formed accepted" true (validate base = Ok ());
  let oob = wrap1 [ Istore ("out", idx [ ("i", 9) ], Iconst 1) ] in
  chk Alcotest.bool "out-of-bounds index rejected" true
    (Result.is_error (validate oob));
  let two_loops =
    {
      base with
      body =
        [
          for_ "i" 4
            [
              for_ "j" 10 [ Istore ("out", idx [ ("j", 1) ], Iconst 1) ];
              for_ "k" 10 [ Istore ("out", idx [ ("k", 1) ], Iconst 2) ];
            ];
        ];
    }
  in
  chk Alcotest.bool "two loops per level rejected" true
    (Result.is_error (validate two_loops));
  let loop_under_guard =
    wrap1
      [
        if_ Lt (Ivar "i") (Iconst 4)
          [ For { var = "j"; extent = 4; tile_tag = None; body = [] } ];
      ]
  in
  chk Alcotest.bool "loop under guard rejected" true
    (Result.is_error (validate loop_under_guard));
  let unbound = wrap1 [ Istore ("out", idx [ ("q", 1) ], Iconst 1) ] in
  chk Alcotest.bool "unbound variable rejected" true
    (Result.is_error (validate unbound))

(* {2 Properties of the random generator} *)

let gen_seed = QCheck2.Gen.int_range 0 1_000_000_000

let generated_specs_are_valid =
  QCheck2.Test.make ~name:"generated specs validate and lower" ~count:120
    ~print:string_of_int gen_seed (fun seed ->
      let spec = Tile_gen.generate ~seed in
      Tile_dsl.validate spec = Ok ()
      && Result.is_ok (Tile_lower.lower spec))

let lowering_is_deterministic =
  QCheck2.Test.make ~name:"lowering is deterministic (byte-identical)" ~count:60
    ~print:string_of_int gen_seed (fun seed ->
      let spec = Tile_gen.generate ~seed in
      let spec' = Tile_gen.generate ~seed in
      let words s =
        match Tile_lower.lower s with
        | Ok b -> Program.words b.Tile_lower.program
        | Error e -> Alcotest.failf "lower: %s" e
      in
      spec = spec' && words spec = words spec')

let json_roundtrip =
  QCheck2.Test.make ~name:"spec JSON roundtrip is exact" ~count:60
    ~print:string_of_int gen_seed (fun seed ->
      let spec = Tile_gen.generate ~seed in
      match Tile_dsl.of_json (Tile_dsl.to_json spec) with
      | Ok spec' -> spec = spec'
      | Error e -> Alcotest.failf "of_json: %s" e)

(* Well-formedness of the emitted machine code: it decodes back from its
   binary image, and every register any instruction reads is either an
   argument register or written somewhere in the program (the preamble
   zeroes the DSL temporaries, so nothing is read undefined). *)
let programs_well_formed =
  QCheck2.Test.make ~name:"generated programs decode and read no undefined regs"
    ~count:60 ~print:string_of_int gen_seed (fun seed ->
      let spec = Tile_gen.generate ~seed in
      let b =
        match Tile_lower.lower spec with
        | Ok b -> b
        | Error e -> Alcotest.failf "lower: %s" e
      in
      let prog = b.Tile_lower.program in
      let decodes =
        match Program.of_words ~base:(Program.base prog) (Program.words prog) with
        | Ok p -> Array.to_list (Program.code p) = Array.to_list (Program.code prog)
        | Error _ -> false
      in
      let code = Program.code prog in
      let args = List.map fst (b.Tile_lower.args ~lo:0 ~hi:b.Tile_lower.n) in
      let written_i = Hashtbl.create 32 and written_f = Hashtbl.create 32 in
      List.iter (fun r -> Hashtbl.replace written_i r ()) (Reg.zero :: args);
      Array.iter
        (fun instr ->
          (match Isa.writes_int instr with
          | Some r -> Hashtbl.replace written_i r ()
          | None -> ());
          match Isa.writes_fp instr with
          | Some r -> Hashtbl.replace written_f r ()
          | None -> ())
        code;
      let defined =
        Array.for_all
          (fun instr ->
            List.for_all
              (fun (r, file) ->
                match file with
                | `Int -> Hashtbl.mem written_i r
                | `Fp -> Hashtbl.mem written_f r)
              (Isa.reads instr))
          code
      in
      decodes && defined)

(* Trip counts are bounded by construction: the interpreter must reach the
   final ecall. *)
let programs_terminate =
  QCheck2.Test.make ~name:"generated programs terminate on the interpreter"
    ~count:30 ~print:string_of_int gen_seed (fun seed ->
      let spec = Tile_gen.generate ~seed in
      let b =
        match Tile_lower.lower spec with
        | Ok b -> b
        | Error e -> Alcotest.failf "lower: %s" e
      in
      let mem = Main_memory.create () in
      b.Tile_lower.setup mem;
      let m = Machine.create ~pc:(Program.entry b.Tile_lower.program) mem in
      Machine.set_args m (b.Tile_lower.args ~lo:0 ~hi:b.Tile_lower.n);
      let halt, _ = Interp.run b.Tile_lower.program m in
      halt = Interp.Ecall_halt && b.Tile_lower.check mem = Ok ())

(* {2 Mutation test: the harness catches an injected lowering bug} *)

let mutation_fabric =
  {
    Fuzz.rows = 8;
    cols = 8;
    ports = 4;
    kind = Interconnect.Mesh_noc;
    l1_kb = 32;
    l2_kb = 4096;
    profile = false;
  }

let mutation_is_caught_and_shrinks () =
  (* Scan fixed seeds for a program whose stores index with two or more
     loop variables — the shape Store_skew displaces — then demand the
     differential oracle catches it and the shrinker reduces it to a
     minimal reproducer that still fails (and still passes unskewed). *)
  let defect = Tile_lower.Store_skew in
  let rec find seed =
    if seed > 400 then Alcotest.fail "no seed triggered the defect"
    else
      let spec = Tile_gen.generate ~seed in
      match Fuzz.run_case ~defect spec mutation_fabric with
      | Error _ -> spec
      | Ok _ -> find (seed + 1)
  in
  let spec = find 0 in
  chk Alcotest.bool "clean lowering passes" true
    (Result.is_ok (Fuzz.run_case spec mutation_fabric));
  let shrunk, detail, steps = Fuzz.shrink ~defect spec mutation_fabric in
  chk Alcotest.bool "shrunk still fails" true
    (Result.is_error (Fuzz.run_case ~defect shrunk mutation_fabric));
  chk Alcotest.bool "shrunk passes without the defect" true
    (Result.is_ok (Fuzz.run_case shrunk mutation_fabric));
  chk Alcotest.bool "shrunk to at most 10 statements" true
    (Tile_dsl.stmt_count shrunk <= 10);
  chk Alcotest.bool "shrink made progress or was already minimal" true
    (steps >= 0 && detail <> "not reproducible")

(* {2 Campaign determinism} *)

let fuzz_digest_job_invariant () =
  (* The summary digest must not depend on the worker count. *)
  let run jobs = Fuzz.run ~jobs ~seed:11 ~count:12 () in
  let a = run 1 and b = run 4 in
  chk Alcotest.int "same case count" a.Fuzz.cases b.Fuzz.cases;
  chk Alcotest.int "same offloaded cases" a.Fuzz.offloaded_cases b.Fuzz.offloaded_cases;
  chk Alcotest.int "same total offloads" a.Fuzz.total_offloads b.Fuzz.total_offloads;
  chk Alcotest.bool "no failures" true
    (a.Fuzz.failures = [] && b.Fuzz.failures = []);
  chk Alcotest.bool "bit-identical digest" true (a.Fuzz.digest = b.Fuzz.digest)

let suites =
  [
    ( "tile_dsl",
      [
        Alcotest.test_case "affine load/store lowering" `Quick affine_load_store_lowering;
        Alcotest.test_case "reduction lowering" `Quick reduction_lowering;
        Alcotest.test_case "guard lowering" `Quick guard_lowering;
        Alcotest.test_case "tile / untile lowering" `Quick tile_lowering;
        Alcotest.test_case "validate rejects bad shapes" `Quick validate_rejects_bad_shapes;
        QCheck_alcotest.to_alcotest generated_specs_are_valid;
        QCheck_alcotest.to_alcotest lowering_is_deterministic;
        QCheck_alcotest.to_alcotest json_roundtrip;
        QCheck_alcotest.to_alcotest programs_well_formed;
        QCheck_alcotest.to_alcotest programs_terminate;
      ] );
    ( "fuzz",
      [
        Alcotest.test_case "mutation caught and shrunk" `Quick mutation_is_caught_and_shrinks;
        Alcotest.test_case "digest invariant across jobs" `Quick fuzz_digest_job_invariant;
      ] );
  ]
