(* Smoke-check mesa_cli's --stats-json / --trace output files (produced by
   the dune rule in this directory): both must parse as JSON, the stats
   tree must contain every top-level counter group, and the trace must
   carry well-formed Chrome trace_event records. *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("cli_smoke: " ^ m); exit 1) fmt

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match Json.of_string text with
  | Ok j -> j
  | Error e -> die "%s does not parse: %s" path e

let () =
  let stats_path, trace_path =
    match Sys.argv with
    | [| _; s; t |] -> (s, t)
    | _ -> die "usage: cli_smoke STATS.json TRACE.json"
  in
  let stats = read_json stats_path in
  List.iter
    (fun grp ->
      match Json.member grp stats with
      | Some (Json.Assoc (_ :: _)) -> ()
      | _ -> die "stats group %S missing or empty in %s" grp stats_path)
    [ "cpu"; "cache"; "engine"; "controller" ];
  (match Option.bind (Json.path [ "controller"; "offloads" ] stats) Json.to_int with
  | Some n when n > 0 -> ()
  | _ -> die "expected at least one offload in %s" stats_path);
  let trace = read_json trace_path in
  (match Option.bind (Json.member "traceEvents" trace) Json.to_list with
  | Some (_ :: _ as events) ->
    List.iter
      (fun ev ->
        let field k = Json.member k ev in
        match (field "name", field "ph", Option.bind (field "ts") Json.to_int) with
        | Some (Json.String _), Some (Json.String _), Some ts when ts >= 0 -> ()
        | _ -> die "malformed trace event in %s" trace_path)
      events
  | _ -> die "no traceEvents in %s" trace_path);
  print_endline "cli_smoke: ok"
