(* The mesad service layer: wire-protocol codec (golden taxonomy pin,
   qcheck roundtrips, unknown-field tolerance), circuit breaker and
   backoff state machines, and the live service behind a temp unix
   socket — admission control, deadlines, chaos recovery, graceful
   drain and the seeded loadgen determinism digest. *)

let check = Alcotest.check

(* ---------------- taxonomy golden pin ---------------- *)

(* The closed error taxonomy, pinned: changing any string (or the set) is
   a protocol revision, not a refactor. Extend deliberately or not at
   all. *)
let taxonomy_golden () =
  check
    (Alcotest.list Alcotest.string)
    "taxonomy strings are pinned"
    [
      "bad_request";
      "deadline_exceeded";
      "overloaded";
      "fabric_quarantined";
      "internal";
    ]
    (List.map Proto.error_kind_to_string Proto.all_error_kinds);
  List.iter
    (fun k ->
      match Proto.error_kind_of_string (Proto.error_kind_to_string k) with
      | Ok k' when k' = k -> ()
      | _ -> Alcotest.fail "error_kind_of_string does not invert to_string")
    Proto.all_error_kinds;
  (match Proto.error_kind_of_string "timeout" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind must not decode")

(* ---------------- codec roundtrips (qcheck) ---------------- *)

let gen_run_request =
  QCheck.Gen.(
    let* id = int_bound 10_000 in
    let* kernel = oneofl [ "nn"; "kmeans"; "bfs"; "hotspot"; "x y\"z" ] in
    let* deadline_ms =
      oneof [ return None; map (fun f -> Some (Float.abs f +. 0.5)) float ]
    in
    let* inject =
      oneofl [ None; Some "transient@40"; Some "permanent@80,link@9" ]
    in
    let* fault_seed = int_bound 1_000_000 in
    let* allow_fallback = bool in
    return
      {
        Proto.id;
        kernel;
        deadline_ms;
        inject;
        fault_seed;
        allow_fallback;
      })

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> Proto.Run r) gen_run_request;
        map (fun id -> Proto.Get_stats id) (int_bound 1000);
        map (fun id -> Proto.Ping id) (int_bound 1000);
      ])

let arb_request = QCheck.make ~print:Proto.request_to_line gen_request

let qcheck_request_roundtrip =
  QCheck.Test.make ~count:200 ~name:"Proto request json roundtrip"
    arb_request (fun req ->
      match Proto.request_of_json (Proto.request_to_json req) with
      | Ok req' -> req' = req
      | Error _ -> false)

let gen_body =
  QCheck.Gen.(
    oneof
      [
        ( let* kernel = oneofl [ "nn"; "bfs" ] in
          let* cycles = int_bound 1_000_000 in
          let* offloads = int_bound 16 in
          let* mem_checksum = int_bound max_int in
          let* site = oneofl [ Proto.Fabric; Proto.Cpu ] in
          let* shard = if site = Proto.Cpu then return (-1) else int_bound 7 in
          let* rerouted = bool in
          let* retries = int_bound 3 in
          let* quarantines = int_bound 3 in
          let* faults_detected = int_bound 5 in
          let* latency_ms = map Float.abs float in
          return
            (Proto.Ok_run
               {
                 Proto.kernel;
                 cycles;
                 offloads;
                 mem_checksum;
                 shard;
                 site;
                 rerouted;
                 retries;
                 quarantines;
                 faults_detected;
                 latency_ms;
               }) );
        ( let* kind = oneofl Proto.all_error_kinds in
          let* message = oneofl [ ""; "boom"; "shard 3: \"quoted\"\n" ] in
          return (Proto.Err { Proto.kind; message }) );
        return Proto.Pong;
        return (Proto.Stats_dump (Json.Assoc [ ("x", Json.Int 3) ]));
      ])

let gen_response =
  QCheck.Gen.(
    let* rsp_id = int_bound 10_000 in
    let* body = gen_body in
    return { Proto.rsp_id; body })

let arb_response = QCheck.make ~print:Proto.response_to_line gen_response

let qcheck_response_roundtrip =
  QCheck.Test.make ~count:200 ~name:"Proto response json roundtrip"
    arb_response (fun rsp ->
      (* Through the actual wire format (one line of text), not just the
         Json.t tree. *)
      match
        Result.bind
          (Json.of_string (Proto.response_to_line rsp))
          Proto.response_of_json
      with
      | Ok rsp' -> rsp' = rsp
      | Error _ -> false)

(* ---------------- unknown-field tolerance ---------------- *)

let unknown_fields_tolerated () =
  (* A request from a newer client: extra fields everywhere, fancier op
     spelling absent (missing op means run). *)
  let line =
    {|{"id":7,"kernel":"nn","priority":"high","tags":[1,2],"fault_seed":9,"nested":{"a":true}}|}
  in
  (match Result.bind (Json.of_string line) Proto.request_of_json with
  | Ok (Proto.Run r) ->
    check Alcotest.int "id" 7 r.Proto.id;
    check Alcotest.string "kernel" "nn" r.Proto.kernel;
    check Alcotest.int "fault_seed" 9 r.Proto.fault_seed;
    check Alcotest.bool "fallback defaults true" true r.Proto.allow_fallback
  | Ok _ -> Alcotest.fail "decoded to the wrong op"
  | Error e -> Alcotest.fail ("unknown fields must be ignored: " ^ e));
  (* A response from a newer daemon likewise. *)
  let line =
    {|{"id":3,"ok":{"kernel":"nn","cycles":5,"offloads":1,"mem_checksum":2,"shard":0,"site":"fabric","power_mw":123},"took_ns":88}|}
  in
  (match Result.bind (Json.of_string line) Proto.response_of_json with
  | Ok { Proto.rsp_id = 3; body = Proto.Ok_run b } ->
    check Alcotest.int "cycles" 5 b.Proto.cycles
  | Ok _ -> Alcotest.fail "decoded to the wrong body"
  | Error e -> Alcotest.fail ("unknown fields must be ignored: " ^ e));
  (* But a malformed known field is still an error, not a default. *)
  match
    Result.bind
      (Json.of_string {|{"id":1,"kernel":"nn","deadline_ms":-5}|})
      Proto.request_of_json
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-positive deadline must not decode"

(* ---------------- breaker state machine ---------------- *)

let breaker_cfg =
  { Breaker.trip_threshold = 2; cooldown = 3; max_cooldown = 12 }

let breaker_trips_and_recloses () =
  let b = Breaker.create breaker_cfg in
  check Alcotest.string "starts closed" "closed"
    (Breaker.state_name (Breaker.state b));
  (* One fault is below threshold; a clean run resets the count. *)
  (match Breaker.acquire b with Some `Route -> () | _ -> Alcotest.fail "route");
  ignore (Breaker.record b ~probe:false ~ok:false);
  ignore (Breaker.record b ~probe:false ~ok:true);
  ignore (Breaker.record b ~probe:false ~ok:false);
  check Alcotest.string "still closed below threshold" "closed"
    (Breaker.state_name (Breaker.state b));
  (* Second consecutive fault trips. *)
  (match Breaker.record b ~probe:false ~ok:false with
  | Breaker.Tripped -> ()
  | _ -> Alcotest.fail "expected Tripped");
  check Alcotest.bool "open admits nothing" true (Breaker.acquire b = None);
  (* Cooldown is measured in ticks; after [cooldown] the breaker goes
     half-open and grants exactly one probe. *)
  Breaker.tick b;
  Breaker.tick b;
  check Alcotest.bool "still open mid-cooldown" true (Breaker.acquire b = None);
  Breaker.tick b;
  (match Breaker.acquire b with
  | Some `Probe -> ()
  | _ -> Alcotest.fail "expected the half-open probe");
  check Alcotest.bool "only one probe" true (Breaker.acquire b = None);
  (match Breaker.record b ~probe:true ~ok:true with
  | Breaker.Reclosed -> ()
  | _ -> Alcotest.fail "clean probe must reclose");
  check Alcotest.string "reclosed" "closed"
    (Breaker.state_name (Breaker.state b))

let breaker_reopen_doubles_cooldown () =
  let b = Breaker.create breaker_cfg in
  let trip () =
    for _ = 1 to breaker_cfg.Breaker.trip_threshold do
      ignore (Breaker.acquire b);
      ignore (Breaker.record b ~probe:false ~ok:false)
    done
  in
  let ticks_until_half_open () =
    let n = ref 0 in
    while Breaker.state b = Breaker.Open do
      Breaker.tick b;
      incr n
    done;
    !n
  in
  trip ();
  check Alcotest.int "first cooldown" 3 (ticks_until_half_open ());
  ignore (Breaker.acquire b);
  (match Breaker.record b ~probe:true ~ok:false with
  | Breaker.Reopened -> ()
  | _ -> Alcotest.fail "faulted probe must reopen");
  check Alcotest.int "doubled" 6 (ticks_until_half_open ());
  ignore (Breaker.acquire b);
  ignore (Breaker.record b ~probe:true ~ok:false);
  check Alcotest.int "doubled again" 12 (ticks_until_half_open ());
  ignore (Breaker.acquire b);
  ignore (Breaker.record b ~probe:true ~ok:false);
  check Alcotest.int "capped at max_cooldown" 12 (ticks_until_half_open ())

(* ---------------- backoff ---------------- *)

let backoff_seeded_and_bounded () =
  let seq seed =
    let b = Backoff.create ~base_ms:1.0 ~cap_ms:8.0 ~seed () in
    List.init 6 (fun _ -> Backoff.next_ms b)
  in
  check (Alcotest.list (Alcotest.float 0.0)) "same seed, same schedule"
    (seq 42) (seq 42);
  check Alcotest.bool "different seeds diverge" true (seq 1 <> seq 2);
  List.iteri
    (fun i d ->
      if d < 0.0 || d > 8.0 then
        Alcotest.fail
          (Printf.sprintf "draw %d = %f outside [0, cap]" i d))
    (seq 7);
  let b = Backoff.create ~seed:5 () in
  ignore (Backoff.next_ms b);
  ignore (Backoff.next_ms b);
  check Alcotest.int "attempt counter advances" 2 (Backoff.attempt b)

(* ---------------- the live service ---------------- *)

(* Small, fast, deterministic-friendly service: 2 shards of 64 PEs, a
   hair-trigger breaker so chaos runs actually trip it. *)
let test_service_config =
  {
    Service.default_config with
    Service.shards = 2;
    shard_pes = 64;
    jobs = 2;
    breaker = { Breaker.trip_threshold = 1; cooldown = 2; max_cooldown = 16 };
    warm = false;
  }

let with_service ?(config = test_service_config) f =
  let svc = Service.create ~config () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

(* The dense transient storm that exhausts the controller's consecutive
   retry budget and quarantines the shard mid-run. *)
let storm =
  "transient@40,transient@90,transient@140,transient@190,transient@240,\
   transient@290,transient@340,transient@390,transient@440,transient@490"

let service_validates_requests () =
  with_service (fun svc ->
      (match Service.execute svc (Proto.run_request ~id:1 "no-such-kernel") with
      | Proto.Err { Proto.kind = Proto.Bad_request; _ } -> ()
      | _ -> Alcotest.fail "unknown kernel must be bad_request");
      match
        Service.execute svc
          (Proto.run_request ~id:2 ~inject:"garbage@@" "nn")
      with
      | Proto.Err { Proto.kind = Proto.Bad_request; _ } -> ()
      | _ -> Alcotest.fail "malformed inject must be bad_request")

let service_runs_and_counts () =
  with_service (fun svc ->
      (match Service.execute svc (Proto.run_request ~id:1 "nn") with
      | Proto.Ok_run b ->
        check Alcotest.string "fabric site" "fabric"
          (Proto.site_to_string b.Proto.site);
        check Alcotest.bool "positive cycles" true (b.Proto.cycles > 0)
      | _ -> Alcotest.fail "clean run must succeed");
      let snap = Service.stats svc in
      check (Alcotest.option Alcotest.int) "ok counted" (Some 1)
        (Stats.find_int snap "service.outcomes.ok");
      check (Alcotest.option Alcotest.int) "no internal errors" (Some 0)
        (Stats.find_int snap "service.outcomes.internal"))

let deadline_resolves_to_taxonomy () =
  with_service (fun svc ->
      (* 2 worker domains: execution is asynchronous, so a microscopic
         deadline elapses while the run (hundreds of ms) is in flight. *)
      (match
         Service.execute svc (Proto.run_request ~id:1 ~deadline_ms:0.01 "nn")
       with
      | Proto.Err { Proto.kind = Proto.Deadline_exceeded; _ } -> ()
      | _ -> Alcotest.fail "must resolve to deadline_exceeded");
      let snap = Service.stats svc in
      check (Alcotest.option Alcotest.int) "counted once" (Some 1)
        (Stats.find_int snap "service.outcomes.deadline_exceeded"))

let draining_sheds_with_overloaded () =
  with_service (fun svc ->
      Service.begin_drain svc;
      (match Service.execute svc (Proto.run_request ~id:1 "nn") with
      | Proto.Err { Proto.kind = Proto.Overloaded; _ } -> ()
      | _ -> Alcotest.fail "draining service must shed with overloaded");
      let snap = Service.drain svc in
      check (Alcotest.option Alcotest.int) "shed counted" (Some 1)
        (Stats.find_int snap "service.shed"))

let queue_full_sheds_with_overloaded () =
  let config = { test_service_config with Service.queue_depth = 1 } in
  with_service ~config (fun svc ->
      (* Fill the single queue slot with a request whose awaiter gives up
         immediately; the worker task keeps the slot occupied. *)
      (match
         Service.execute svc (Proto.run_request ~id:1 ~deadline_ms:0.01 "nn")
       with
      | Proto.Err { Proto.kind = Proto.Deadline_exceeded; _ } -> ()
      | _ -> Alcotest.fail "expected deadline_exceeded");
      match Service.execute svc (Proto.run_request ~id:2 "nn") with
      | Proto.Err { Proto.kind = Proto.Overloaded; _ } -> ()
      | _ -> Alcotest.fail "full queue must shed with overloaded")

let chaos_trips_and_recovers () =
  with_service (fun svc ->
      (* A storm on the first request quarantines mid-run and trips that
         shard's breaker (threshold 1); the service retries clean and the
         request still succeeds. *)
      (match
         Service.execute svc (Proto.run_request ~id:1 ~inject:storm "nn")
       with
      | Proto.Ok_run _ -> ()
      | _ -> Alcotest.fail "storm run must still succeed via retry");
      (* Clean traffic ticks the open breaker through cooldown into its
         half-open probe, which recloses it. *)
      for i = 2 to 6 do
        match Service.execute svc (Proto.run_request ~id:i "nn") with
        | Proto.Ok_run _ -> ()
        | _ -> Alcotest.fail "clean run must succeed"
      done;
      let snap = Service.stats svc in
      let counter name =
        Option.value ~default:0 (Stats.find_int snap name)
      in
      check Alcotest.bool "breaker tripped" true
        (counter "service.breaker.trips" > 0);
      check Alcotest.bool "half-open probe reclosed" true
        (counter "service.breaker.recloses" > 0);
      check (Alcotest.option Alcotest.int) "no internal errors" (Some 0)
        (Stats.find_int snap "service.outcomes.internal");
      check (Alcotest.option Alcotest.int) "every request resolved ok"
        (Some 6)
        (Stats.find_int snap "service.outcomes.ok"))

let fallback_forbidden_is_fabric_quarantined () =
  let config =
    {
      test_service_config with
      Service.shards = 1;
      breaker =
        { Breaker.trip_threshold = 1; cooldown = 50; max_cooldown = 50 };
      max_retries = 0;
    }
  in
  with_service ~config (fun svc ->
      (* Trip the only shard... *)
      (match
         Service.execute svc (Proto.run_request ~id:1 ~inject:storm "nn")
       with
      | Proto.Ok_run _ -> ()
      | _ -> Alcotest.fail "storm run still succeeds (degraded)");
      (* ...then a request that forbids CPU fallback has nowhere to go. *)
      (match
         Service.execute svc
           (Proto.run_request ~id:2 ~allow_fallback:false "nn")
       with
      | Proto.Err { Proto.kind = Proto.Fabric_quarantined; _ } -> ()
      | _ -> Alcotest.fail "must resolve to fabric_quarantined");
      (* ...while one that allows it lands on the CPU. *)
      match Service.execute svc (Proto.run_request ~id:3 "nn") with
      | Proto.Ok_run b ->
        check Alcotest.string "cpu fallback" "cpu"
          (Proto.site_to_string b.Proto.site)
      | _ -> Alcotest.fail "fallback run must succeed")

(* ---------------- the daemon over a real socket ---------------- *)

let temp_socket () =
  let path = Filename.temp_file "mesad-test" ".sock" in
  Sys.remove path;
  path

let with_daemon ?(config = test_service_config) f =
  let d = Mesad.start ~service_config:config ~socket:(temp_socket ()) () in
  Fun.protect ~finally:(fun () -> ignore (Mesad.stop d)) (fun () -> f d)

let send_line fd line =
  let b = Bytes.of_string (line ^ "\n") in
  ignore (Unix.write fd b 0 (Bytes.length b))

let read_line_fd fd =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let rec go () =
    match Unix.read fd one 0 1 with
    | 0 -> None
    | _ ->
      if Bytes.get one 0 = '\n' then Some (Buffer.contents buf)
      else begin
        Buffer.add_char buf (Bytes.get one 0);
        go ()
      end
  in
  go ()

let daemon_answers_and_salvages_ids () =
  with_daemon (fun d ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX (Mesad.socket_path d));
          send_line fd {|{"op":"ping","id":41}|};
          (match
             Option.bind (read_line_fd fd) (fun l ->
                 Result.to_option
                   (Result.bind (Json.of_string l) Proto.response_of_json))
           with
          | Some { Proto.rsp_id = 41; body = Proto.Pong } -> ()
          | _ -> Alcotest.fail "expected a pong with the caller's id");
          (* Unparseable line: a structured bad_request, never a hang or
             a dropped connection. *)
          send_line fd "this is not json";
          (match
             Option.bind (read_line_fd fd) (fun l ->
                 Result.to_option
                   (Result.bind (Json.of_string l) Proto.response_of_json))
           with
          | Some { Proto.body = Proto.Err e; _ } ->
            check Alcotest.string "bad_request" "bad_request"
              (Proto.error_kind_to_string e.Proto.kind)
          | _ -> Alcotest.fail "expected a bad_request response");
          (* Malformed request with a recoverable id: the error response
             carries the caller's id. *)
          send_line fd {|{"id":77,"op":"warp"}|};
          match
            Option.bind (read_line_fd fd) (fun l ->
                Result.to_option
                  (Result.bind (Json.of_string l) Proto.response_of_json))
          with
          | Some { Proto.rsp_id = 77; body = Proto.Err _ } -> ()
          | _ -> Alcotest.fail "salvaged id must come back on the error"))

let drain_loses_no_inflight_request () =
  with_daemon (fun d ->
      let got = ref None in
      let client =
        Thread.create
          (fun () ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX (Mesad.socket_path d));
            send_line fd
              (Proto.request_to_line
                 (Proto.Run (Proto.run_request ~id:9 "nn")));
            got :=
              Option.bind (read_line_fd fd) (fun l ->
                  Result.to_option
                    (Result.bind (Json.of_string l) Proto.response_of_json));
            Unix.close fd)
          ()
      in
      (* Let the request reach admission, then drain concurrently. *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      while
        Option.value ~default:0
          (Stats.find_int (Service.stats (Mesad.service d)) "service.admitted")
        = 0
        && Unix.gettimeofday () < deadline
      do
        Thread.yield ()
      done;
      ignore (Mesad.stop d);
      Thread.join client;
      match !got with
      | Some { Proto.rsp_id = 9; body = Proto.Ok_run _ } -> ()
      | Some { Proto.body = Proto.Err e; _ } ->
        Alcotest.fail
          ("in-flight request resolved to an error across drain: "
          ^ Proto.error_kind_to_string e.Proto.kind)
      | _ -> Alcotest.fail "in-flight request lost across drain")

(* ---------------- seeded loadgen determinism (satellite) ---------------- *)

let loadgen_digest_deterministic () =
  (* Same seed, concurrency 1, chaos on: per-request results (outcome,
     cycles, checksum, site, shard, retries, quarantines — latency
     excluded) must be bit-identical across two fresh daemons. *)
  let run_once () =
    let socket = temp_socket () in
    let d = Mesad.start ~service_config:test_service_config ~socket () in
    Fun.protect
      ~finally:(fun () -> ignore (Mesad.stop d))
      (fun () ->
        Loadgen.run
          {
            Loadgen.default_config with
            Loadgen.socket;
            requests = 6;
            concurrency = 1;
            seed = 11;
            kernels = [ "nn" ];
            chaos = true;
            chaos_rate = 0.5;
            injects = [ storm ];
            no_fallback_rate = 0.0;
          })
  in
  let a = run_once () in
  let b = run_once () in
  check Alcotest.int "all requests answered" 6 a.Loadgen.completed;
  check Alcotest.int "no protocol errors" 0 a.Loadgen.protocol_errors;
  check Alcotest.string "digest is bit-identical across runs"
    (Printf.sprintf "%016x" a.Loadgen.digest)
    (Printf.sprintf "%016x" b.Loadgen.digest);
  (* And the stream itself is a pure function of the seed. *)
  let cfg = { Loadgen.default_config with Loadgen.seed = 11 } in
  check Alcotest.bool "request stream deterministic" true
    (List.init 20 (Loadgen.request_at cfg)
    = List.init 20 (Loadgen.request_at cfg))

(* ---------------- shard isolation under concurrency ---------------- *)

(* Two threads hammering the service concurrently must reproduce the serial
   answers bit-for-bit. This is the event engine's shard-locality contract:
   its memo state (arrival caches, store table) is per-execution, its
   contention-table scratch is claimed under the domain-local pool's lock,
   and the memory/hierarchy pools hand a buffer to exactly one run at a
   time — so one in-flight request can never perturb another's cycles or
   memory image. A violation shows up here as a checksum or cycle count
   that differs from the serial oracle. *)
let concurrent_shards_match_serial () =
  with_service (fun svc ->
      let kernels = [| "nn"; "kmeans"; "bfs"; "hotspot" |] in
      let exec ~id name =
        match Service.execute svc (Proto.run_request ~id name) with
        | Proto.Ok_run b -> (name, b.Proto.cycles, b.Proto.mem_checksum, b.Proto.offloads)
        | _ -> Alcotest.failf "%s: clean run must succeed" name
      in
      (* Serial oracle: one answer per kernel. *)
      let oracle =
        Array.to_list kernels |> List.mapi (fun i name -> (name, exec ~id:i name))
      in
      let per_thread = 8 in
      let slots = Array.make 2 [] in
      let threads =
        List.init 2 (fun tid ->
            Thread.create
              (fun () ->
                slots.(tid) <-
                  List.init per_thread (fun j ->
                      let i = (tid * per_thread) + j in
                      exec ~id:(100 + i) kernels.(i mod Array.length kernels)))
              ())
      in
      List.iter Thread.join threads;
      List.iter
        (fun ((name, cycles, checksum, offloads) as got) ->
          match List.assoc_opt name oracle with
          | None -> Alcotest.failf "unexpected kernel %s" name
          | Some (_, c, k, o) ->
            if (cycles, checksum, offloads) <> (c, k, o) then
              Alcotest.failf
                "%s under concurrency: (cycles %d, checksum %#x, offloads %d) \
                 differs from serial (%d, %#x, %d)"
                name cycles checksum offloads c k o;
            ignore got)
        (slots.(0) @ slots.(1)))

let suites =
  [
    ( "service.proto",
      [
        Alcotest.test_case "taxonomy golden pin" `Quick taxonomy_golden;
        Alcotest.test_case "unknown fields tolerated" `Quick
          unknown_fields_tolerated;
        QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
      ] );
    ( "service.breaker",
      [
        Alcotest.test_case "trips, cools down, probes, recloses" `Quick
          breaker_trips_and_recloses;
        Alcotest.test_case "reopen doubles cooldown up to the cap" `Quick
          breaker_reopen_doubles_cooldown;
        Alcotest.test_case "backoff is seeded and bounded" `Quick
          backoff_seeded_and_bounded;
      ] );
    ( "service.core",
      [
        Alcotest.test_case "validation errors are bad_request" `Quick
          service_validates_requests;
        Alcotest.test_case "clean run succeeds and is counted" `Quick
          service_runs_and_counts;
        Alcotest.test_case "deadline resolves to deadline_exceeded" `Quick
          deadline_resolves_to_taxonomy;
        Alcotest.test_case "draining sheds with overloaded" `Quick
          draining_sheds_with_overloaded;
        Alcotest.test_case "full queue sheds with overloaded" `Quick
          queue_full_sheds_with_overloaded;
        Alcotest.test_case "chaos trips the breaker and recovers" `Slow
          chaos_trips_and_recovers;
        Alcotest.test_case "no shard + no fallback = fabric_quarantined"
          `Slow fallback_forbidden_is_fabric_quarantined;
        Alcotest.test_case "concurrent shards match the serial oracle" `Slow
          concurrent_shards_match_serial;
      ] );
    ( "service.daemon",
      [
        Alcotest.test_case "answers, salvages ids, survives garbage" `Quick
          daemon_answers_and_salvages_ids;
        Alcotest.test_case "drain loses no in-flight request" `Slow
          drain_loses_no_inflight_request;
        Alcotest.test_case "seeded loadgen digest is deterministic" `Slow
          loadgen_digest_deterministic;
      ] );
  ]
