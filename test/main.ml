(* Aggregate alcotest runner for the whole repository. *)
let () =
  Alcotest.run "mesa"
    (List.concat
       [
         Test_util.suites;
         Test_pool.suites;
         Test_stats.suites;
         Test_riscv.suites;
         Test_interp.suites;
         Test_mem.suites;
         Test_cpu.suites;
         Test_dfg.suites;
         Test_ldfg.suites;
         Test_accel.suites;
         Test_mapper.suites;
         Test_engine.suites;
         Test_detector.suites;
         Test_controller.suites;
         Test_baselines.suites;
         Test_power.suites;
         Test_workloads.suites;
         Test_harness.suites;
         Test_extensions.suites;
         Test_robustness.suites;
         Test_engine_timing.suites;
         Test_engine_event.suites;
         Test_rv64.suites;
         Test_cse.suites;
         Test_fault.suites;
         Test_dse.suites;
         Test_cost_model.suites;
         Test_refine.suites;
         Test_profile.suites;
         Test_gen.suites;
         Test_service.suites;
         Test_telemetry.suites;
       ])
