(* Property pinning of the analytical {!Cost_model} against the event
   engine.

   The model deliberately prices every memory access at the L1 hit latency
   (the calibration scale absorbs a kernel's average miss penalty), so its
   cycle estimate is near-optimistic: on random fabric x kernel x tiling
   draws the divergence from the engine is bounded — measured tails over
   thousands of draws are -85%/+19%, pinned here with margin at -95%/+30% —
   and on loops where the model's assumptions hold exactly (straight-line
   compute-only bodies, no memory traffic) the estimate must equal the
   engine's measured cycles bit for bit. The model is also a pure function:
   same inputs, same estimate, no {!Sim_meter} writes, and the fixed-point
   extrapolation fast path is observationally identical to simulating every
   iteration. *)

let check = Alcotest.check

(* Pinned divergence bounds for random draws (see header). *)
let max_underestimate = 0.95
let max_overestimate = 0.30

(* The same draw space as the event-vs-reference differential property. *)
type draw = { arch : Gen.arch_case; tiling : int; pipelined : bool }

let gen_draw =
  let open QCheck2.Gen in
  Gen.arch_case () >>= fun arch ->
  oneofl [ 1; 2; 4 ] >>= fun tiling ->
  bool >>= fun pipelined -> return { arch; tiling; pipelined }

let print_draw d =
  Printf.sprintf "%s tiling=%d pipelined=%b" (Gen.arch_case_print d.arch) d.tiling
    d.pipelined

(* Run a draw on the event engine and estimate the same configuration with
   the model; [None] when the mapper rejects the draw. *)
let engine_and_model (d : draw) =
  let k = Gen.arch_case_kernel d.arch in
  let grid =
    Grid.make ~rows:d.arch.Gen.rows ~cols:d.arch.Gen.cols ~mem_ports:d.arch.Gen.ports ()
  in
  let dfg = Runner.dfg_of_kernel k in
  match Mapper.map ~grid ~kind:d.arch.Gen.kind (Perf_model.create dfg) with
  | Error _ -> None
  | Ok placement ->
    let config =
      Accel_config.with_opts ~tiling:d.tiling ~pipelined:d.pipelined placement
    in
    let mem = Main_memory.create () in
    let machine = Kernel.prepare k mem in
    let hier = Hierarchy.create Hierarchy.default_config in
    let out =
      match Engine.execute ~config ~dfg ~machine ~hier () with
      | Error e -> Alcotest.failf "%s: %s" k.Kernel.name e
      | Ok res -> (res, config, dfg)
    in
    Hierarchy.release hier;
    Main_memory.release mem;
    Some out

(* {2 Property: bounded relative error on random draws, and the
   extrapolation fast path is observationally identical.} *)

let model_error_bounded =
  QCheck2.Test.make
    ~name:"random configs: model within [-95%, +30%] of engine cycles" ~count:10
    ~print:print_draw gen_draw
    (fun d ->
      match engine_and_model d with
      | None -> true (* unmappable draw: nothing to model *)
      | Some (res, config, dfg) ->
        let iterations = res.Engine.iterations in
        let est = Cost_model.estimate ~config ~dfg ~iterations () in
        let full = Cost_model.estimate ~config ~dfg ~iterations ~extrapolate:false () in
        check Alcotest.int
          (print_draw d ^ ": extrapolated cycles = fully simulated cycles")
          full.Cost_model.cycles est.Cost_model.cycles;
        let engine = float_of_int res.Engine.cycles in
        let err = (float_of_int est.Cost_model.cycles -. engine) /. engine in
        if err > max_overestimate then
          Alcotest.failf "%s: model overestimates by %+.1f%% (engine %d, model %d)"
            (print_draw d) (100.0 *. err) res.Engine.cycles est.Cost_model.cycles;
        if err < -.max_underestimate then
          Alcotest.failf "%s: model underestimates by %+.1f%% (engine %d, model %d)"
            (print_draw d) (100.0 *. err) res.Engine.cycles est.Cost_model.cycles;
        true)

(* {2 Property: cycle-exact on compute-only loops.}

   A straight-line body with no memory traffic satisfies every model
   assumption (no guards, no aliasing, no cache), so the estimate must be
   exact — this pins the arrival folds, the II computation and the
   extrapolation itself, with no memory-latency noise to hide behind. *)

type compute_loop = {
  body : Isa.t list;
  iterations : int;
  rows : int;
  cols : int;
  ports : int;
  cl_tiling : int;
  cl_pipelined : bool;
}

let int_temps = [ 6; 7; 28; 29; 30 ] (* t1 t2 t3 t4 t5 *)

let compute_instr : Isa.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let int_temp = oneofl int_temps in
  let fp_temp = int_range 0 7 in
  oneof
    [
      map4
        (fun op rd rs1 rs2 -> Isa.Rtype (op, rd, rs1, rs2))
        (oneofl [ Isa.ADD; Isa.SUB; Isa.XOR; Isa.OR; Isa.AND; Isa.SLT; Isa.MUL ])
        int_temp int_temp int_temp;
      map3
        (fun rd rs1 imm -> Isa.Itype (Isa.ADDI, rd, rs1, imm))
        int_temp int_temp (int_range (-64) 64);
      map3
        (fun rd rs1 sh -> Isa.Itype (Isa.SLLI, rd, rs1, sh))
        int_temp int_temp (int_range 0 4);
      map4
        (fun op fd fs1 fs2 -> Isa.Ftype (op, fd, fs1, fs2))
        (oneofl [ Isa.FADD; Isa.FSUB; Isa.FMUL; Isa.FMIN; Isa.FMAX ])
        fp_temp fp_temp fp_temp;
      map2 (fun fd rs -> Isa.Fcvt_s_w (fd, rs)) fp_temp int_temp;
    ]

let gen_compute_loop : compute_loop QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* len = int_range 3 18 in
  let* body = list_size (return len) compute_instr in
  let* iterations = int_range 40 200 in
  let* rows = oneofl [ 4; 6; 8; 16 ] in
  let* cols = oneofl [ 4; 8 ] in
  let* ports = oneofl [ 1; 2; 4; 8 ] in
  let* cl_tiling = oneofl [ 1; 2; 4 ] in
  let* cl_pipelined = bool in
  return { body; iterations; rows; cols; ports; cl_tiling; cl_pipelined }

let print_compute_loop c =
  Printf.sprintf "%dx%d ports=%d tiling=%d pipelined=%b iterations=%d body=[%s]"
    c.rows c.cols c.ports c.cl_tiling c.cl_pipelined c.iterations
    (String.concat "; " (List.map (fun i -> Format.asprintf "%a" Isa.pp i) c.body))

(* The hot-region extraction recipe {!Runner} uses for kernels, applied to a
   bare assembled program. *)
let dfg_of_program prog =
  let code = Program.code prog in
  let backward =
    let rec find i =
      if i = Array.length code then Alcotest.fail "no backward branch"
      else
        match code.(i) with
        | Isa.Branch (_, _, _, off) when off < 0 -> i
        | _ -> find (i + 1)
    in
    find 0
  in
  let last_addr = Program.addr_of_index prog backward in
  let off = Option.get (Isa.branch_offset code.(backward)) in
  let entry = last_addr + off in
  let first = Program.index_of_addr prog entry in
  Ldfg.build
    {
      Region.entry;
      back_branch_addr = last_addr;
      instrs = Array.sub code first (backward - first + 1);
      pragma = Program.pragma_at prog entry;
      observed_iterations = 0;
    }

let build_compute_loop (c : compute_loop) =
  let b = Asm.create () in
  let open Reg in
  Asm.label b "loop";
  List.iter (Asm.emit b) c.body;
  Asm.addi b t0 t0 1;
  Asm.blt b t0 a3 "loop";
  Asm.ecall b;
  Asm.assemble b

let model_exact_on_compute_only =
  QCheck2.Test.make
    ~name:"compute-only loops: model cycle-exact against the engine" ~count:25
    ~print:print_compute_loop gen_compute_loop
    (fun c ->
      let prog = build_compute_loop c in
      let dfg =
        match dfg_of_program prog with
        | Ok dfg -> dfg
        | Error e -> Alcotest.failf "compute-only loop rejected by LDFG: %s" e
      in
      let grid = Grid.make ~rows:c.rows ~cols:c.cols ~mem_ports:c.ports () in
      match Mapper.map ~grid ~kind:Interconnect.Mesh_noc (Perf_model.create dfg) with
      | Error _ -> true (* body too wide for the drawn grid: nothing to compare *)
      | Ok placement ->
        let config =
          Accel_config.with_opts ~tiling:c.cl_tiling ~pipelined:c.cl_pipelined placement
        in
        let mem = Main_memory.create () in
        let machine = Machine.create ~pc:(Program.entry prog) mem in
        Machine.set_args machine [ (Reg.t0, 0); (Reg.a3, c.iterations) ];
        Machine.set_fargs machine [ (Reg.ft0, 1.5); (Reg.ft1, -0.25); (Reg.ft2, 3.0) ];
        let hier = Hierarchy.create Hierarchy.default_config in
        let out =
          match Engine.execute ~config ~dfg ~machine ~hier () with
          | Error e -> Alcotest.failf "engine rejected compute-only loop: %s" e
          | Ok res ->
            let est =
              Cost_model.estimate ~config ~dfg ~iterations:res.Engine.iterations ()
            in
            check Alcotest.int
              (print_compute_loop c ^ ": model cycles = engine cycles")
              res.Engine.cycles est.Cost_model.cycles
        in
        Hierarchy.release hier;
        Main_memory.release mem;
        out;
        true)

(* {2 Purity: same input, same estimate, and no simulation-meter writes.}

   The engine charges every run to {!Sim_meter}; the model must not — that
   is what makes it safe to call thousands of times inside the guided
   search's pricing loop without skewing the harness accounting. *)

let model_is_pure () =
  List.iter
    (fun (k : Kernel.t) ->
      let grid = Grid.m64 in
      let dfg = Runner.dfg_of_kernel k in
      match Runner.placement_of ~grid k with
      | Error _ -> ()
      | Ok placement ->
        let config = Accel_config.with_opts ~pipelined:true placement in
        let meter_before = Sim_meter.read () in
        let a = Cost_model.estimate ~config ~dfg ~iterations:k.Kernel.n () in
        let b = Cost_model.estimate ~config ~dfg ~iterations:k.Kernel.n () in
        check Alcotest.int
          (k.Kernel.name ^ ": sim meter untouched by the model")
          meter_before (Sim_meter.read ());
        check Alcotest.bool (k.Kernel.name ^ ": estimate is deterministic") true (a = b))
    (Workloads.all ())

(* {2 Accuracy anchor: the reference kernels at the default geometry.}

   At M-64 defaults the reference kernels' working sets sit mostly in L1,
   so the model's L1-hit pricing is nearly right: measured divergence is
   within -1.7%..0% across the ten Rodinia reference kernels. Pinned at 5%
   so a timing-equation regression (not a cache-pricing nuance) trips it.
   (The wider workload list is covered by the random-draw bound above —
   e.g. nw's port traffic is modeled pessimistically at +14%.) *)

let reference_kernels =
  [ "nn"; "kmeans"; "bfs"; "cfd"; "hotspot"; "gaussian"; "pathfinder"; "srad";
    "lud"; "backprop" ]

let model_tight_on_reference_kernels () =
  List.iter
    (fun (k : Kernel.t) ->
      let grid = Grid.m64 in
      let dfg = Runner.dfg_of_kernel k in
      match Runner.placement_of ~grid k with
      | Error _ -> ()
      | Ok placement ->
        let mo = Mem_opt.analyze dfg in
        let ld =
          Loop_opt.decide ~grid ~dfg
            ~pragma:(Program.pragma_at k.Kernel.program dfg.Dfg.entry_addr)
        in
        let config =
          Accel_config.with_opts ~forwarding:mo.Mem_opt.forwarding
            ~vector_groups:mo.Mem_opt.vector_groups ~prefetched:mo.Mem_opt.prefetched
            ~tiling:ld.Loop_opt.tiling ~pipelined:true placement
        in
        let mem = Main_memory.create () in
        let machine = Kernel.prepare k mem in
        let hier = Hierarchy.create Hierarchy.default_config in
        (match Engine.execute ~config ~dfg ~machine ~hier () with
        | Error e -> Alcotest.failf "%s: %s" k.Kernel.name e
        | Ok res ->
          let est =
            Cost_model.estimate ~config ~dfg ~iterations:res.Engine.iterations ()
          in
          let engine = float_of_int res.Engine.cycles in
          let err = Float.abs (float_of_int est.Cost_model.cycles -. engine) /. engine in
          if err > 0.05 then
            Alcotest.failf "%s: model %d vs engine %d (%.1f%% off, limit 5%%)"
              k.Kernel.name est.Cost_model.cycles res.Engine.cycles (100.0 *. err));
        Hierarchy.release hier;
        Main_memory.release mem)
    (List.map Workloads.find reference_kernels)

let suites =
  [
    ( "cost-model",
      [
        QCheck_alcotest.to_alcotest model_error_bounded;
        QCheck_alcotest.to_alcotest model_exact_on_compute_only;
        Alcotest.test_case "model is pure (deterministic, no meter writes)" `Quick
          model_is_pure;
        Alcotest.test_case "model within 5% on reference kernels at M-64" `Slow
          model_tight_on_reference_kernels;
      ] );
  ]
