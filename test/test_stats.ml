(* The counter registry: registration semantics, JSON round-trip, snapshot
   diffing — plus the property-based guarantees MESA's measure-then-remap
   loop relies on: counters stay non-negative and monotone across profiling
   windows, and the controller's cycle accounting identity holds on random
   accepted loops. *)

let check = Alcotest.check

(* -------------------- registration -------------------- *)

let registration_and_paths () =
  let reg = Stats.registry () in
  let cpu = Stats.group reg "cpu" in
  let c = Stats.counter cpu "cycles" in
  Stats.incr c;
  Stats.add c 9;
  check Alcotest.int "counter accumulates" 10 (Stats.get c);
  Stats.set c 42;
  check Alcotest.int "set overrides" 42 (Stats.get c);
  let l1 = Stats.subgroup (Stats.group reg "cache") "l1" in
  let h = Stats.histogram l1 "latency" in
  Stats.observe h 3.0;
  Stats.observe h 5.0;
  Stats.derived cpu "ipc" (fun () -> 1.5);
  Stats.int_probe cpu "insts" (fun () -> 7);
  let s = Stats.snapshot reg in
  check
    Alcotest.(list string)
    "dotted paths in registration order"
    [ "cpu.cycles"; "cpu.ipc"; "cpu.insts"; "cache.l1.latency" ]
    (Stats.names s);
  check Alcotest.(option int) "find_int" (Some 42) (Stats.find_int s "cpu.cycles");
  (match Stats.find_hist s "cache.l1.latency" with
  | Some hh ->
    check Alcotest.int "hist count" 2 hh.Stats.hcount;
    check (Alcotest.float 1e-9) "hist mean" 4.0 (Stats.hist_mean hh);
    check (Alcotest.float 1e-9) "hist min" 3.0 hh.Stats.hmin;
    check (Alcotest.float 1e-9) "hist max" 5.0 hh.Stats.hmax
  | None -> Alcotest.fail "histogram missing from snapshot");
  check Alcotest.bool "invariants hold" true (Stats.check_invariants s = Ok ())

let duplicate_names_rejected () =
  let reg = Stats.registry () in
  let g = Stats.group reg "cpu" in
  let _ = Stats.counter g "cycles" in
  let dup () = ignore (Stats.counter g "cycles") in
  check Alcotest.bool "duplicate counter raises" true
    (match dup () with exception Invalid_argument _ -> true | () -> false);
  check Alcotest.bool "duplicate group raises" true
    (match Stats.group reg "cpu" with exception Invalid_argument _ -> true | _ -> false);
  check Alcotest.bool "name collision across kinds raises" true
    (match Stats.histogram g "cycles" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check Alcotest.bool "dotted names rejected" true
    (match Stats.counter g "a.b" with exception Invalid_argument _ -> true | _ -> false);
  check Alcotest.bool "empty names rejected" true
    (match Stats.group reg "" with exception Invalid_argument _ -> true | _ -> false)

(* -------------------- JSON round-trip -------------------- *)

let sample_registry () =
  let reg = Stats.registry () in
  let cpu = Stats.group reg "cpu" in
  Stats.add (Stats.counter cpu "cycles") 1234;
  Stats.derived cpu "ipc" (fun () -> 1.75);
  let cache = Stats.group reg "cache" in
  let l1 = Stats.subgroup cache "l1" in
  Stats.add (Stats.counter l1 "hits") 99;
  Stats.add (Stats.counter l1 "misses") 7;
  let h = Stats.histogram (Stats.subgroup cache "l2") "latency" in
  Stats.observe h 12.0;
  Stats.observe h 31.5;
  Stats.observe h 12.0;
  reg

let json_roundtrip () =
  let s = Stats.snapshot (sample_registry ()) in
  let text = Json.to_string ~indent:2 (Stats.to_json s) in
  match Json.of_string text with
  | Error e -> Alcotest.fail ("emitted JSON does not parse: " ^ e)
  | Ok j -> (
    check Alcotest.(option int) "nested path readable" (Some 99)
      (Option.bind (Json.path [ "cache"; "l1"; "hits" ] j) Json.to_int);
    match Stats.of_json j with
    | Error e -> Alcotest.fail ("of_json failed: " ^ e)
    | Ok s' ->
      check Alcotest.bool "round-trip preserves every entry" true
        (Stats.to_assoc s = Stats.to_assoc s'))

(* Randomized counterpart: any registry shape must survive the full
   text round-trip (to_json, print, parse, of_json). Histograms always get
   at least one observation — an empty histogram normalizes its min/max
   sentinels on serialization, so identity only holds for observed ones. *)
let gen_registry_spec =
  let open QCheck2.Gen in
  let finite =
    pair (int_range (-4000) 4000) (int_range (-8) 8) >>= fun (m, e) ->
    return (float_of_int m *. (2.0 ** float_of_int e))
  in
  let group_spec =
    pair
      (list_size (0 -- 3) (int_bound 1_000_000))
      (list_size (0 -- 2) (list_size (1 -- 5) finite))
  in
  list_size (1 -- 3) group_spec

let build_registry spec =
  let reg = Stats.registry () in
  List.iteri
    (fun gi (counters, hists) ->
      let g = Stats.group reg (Printf.sprintf "g%d" gi) in
      List.iteri
        (fun ci v -> Stats.add (Stats.counter g (Printf.sprintf "c%d" ci)) v)
        counters;
      List.iteri
        (fun hi obs ->
          let h = Stats.histogram g (Printf.sprintf "h%d" hi) in
          List.iter (Stats.observe h) obs)
        hists)
    spec;
  reg

let print_registry_spec spec =
  Stats.to_flat_text (Stats.snapshot (build_registry spec))

let json_roundtrip_random =
  QCheck2.Test.make ~name:"json round-trip is the identity on random snapshots"
    ~count:100 ~print:print_registry_spec gen_registry_spec (fun spec ->
      let s = Stats.snapshot (build_registry spec) in
      let text = Json.to_string ~indent:2 (Stats.to_json s) in
      match Result.bind (Json.of_string text) Stats.of_json with
      | Error _ -> false
      | Ok s' -> Stats.to_assoc s' = Stats.to_assoc s)

let flat_text_lists_every_path () =
  let s = Stats.snapshot (sample_registry ()) in
  let text = Stats.to_flat_text s in
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " present in flat dump") true
        (let re = name ^ " " in
         let rec find i =
           i + String.length re <= String.length text
           && (String.sub text i (String.length re) = re || find (i + 1))
         in
         find 0))
    (Stats.names s)

(* -------------------- diff -------------------- *)

let diff_reports_changes_only () =
  let reg = Stats.registry () in
  let g = Stats.group reg "ctl" in
  let a = Stats.counter g "offloads" in
  let b = Stats.counter g "steady" in
  let h = Stats.histogram g "latency" in
  Stats.add a 1;
  Stats.add b 5;
  Stats.observe h 2.0;
  let before = Stats.snapshot reg in
  Stats.add a 3;
  Stats.observe h 4.0;
  let after = Stats.snapshot reg in
  let deltas = Stats.diff before after in
  let find p = List.find_opt (fun d -> d.Stats.path = p) deltas in
  (match find "ctl.offloads" with
  | Some d ->
    check (Alcotest.float 1e-9) "counter before" 1.0 d.Stats.before;
    check (Alcotest.float 1e-9) "counter after" 4.0 d.Stats.after
  | None -> Alcotest.fail "changed counter missing from diff");
  check Alcotest.bool "unchanged counter excluded" true (find "ctl.steady" = None);
  (match find "ctl.latency" with
  | Some d -> check (Alcotest.float 1e-9) "hist sum delta" 6.0 d.Stats.after
  | None -> Alcotest.fail "histogram sum missing from diff");
  match find "ctl.latency.count" with
  | Some d -> check (Alcotest.float 1e-9) "hist count delta" 2.0 d.Stats.after
  | None -> Alcotest.fail "histogram count missing from diff"

let invariant_checker_catches_bad_state () =
  let reg = Stats.registry () in
  let g = Stats.group reg "bad" in
  let c = Stats.counter g "negative" in
  Stats.set c (-3);
  Stats.derived g "nan" (fun () -> Float.nan);
  match Stats.check_invariants (Stats.snapshot reg) with
  | Ok () -> Alcotest.fail "negative counter and NaN probe not flagged"
  | Error problems -> check Alcotest.int "both violations reported" 2 (List.length problems)

(* -------------------- properties -------------------- *)

(* Engine profiling windows: re-executing a paused loop window by window
   must only ever grow the registry's counters (non-negative, monotone) —
   the foundation under iterative reoptimization's readouts. *)
let monotone_across_windows =
  QCheck2.Test.make ~name:"counters monotone across profile windows" ~count:30
    ~print:Gen.loop_spec_print Gen.loop_spec (fun spec ->
      let prog, machine = Gen.build_loop spec in
      let code = Program.code prog in
      let n_loop =
        1
        + (Array.to_list code
          |> List.mapi (fun i x -> (i, x))
          |> List.find (fun (_, x) ->
                 match x with Isa.Branch (_, _, _, o) -> o < 0 | _ -> false)
          |> fst)
      in
      let region =
        {
          Region.entry = Program.base prog;
          back_branch_addr = Program.base prog + (4 * (n_loop - 1));
          instrs = Array.sub code 0 n_loop;
          pragma = None;
          observed_iterations = 8;
        }
      in
      match Ldfg.build region with
      | Error _ -> false
      | Ok dfg -> (
        match
          Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc (Perf_model.create dfg)
        with
        | Error _ -> false
        | Ok placement ->
          let config = Accel_config.plain placement in
          let hier = Hierarchy.create Hierarchy.default_config in
          let reg = Stats.registry () in
          let grp = Stats.group reg "engine" in
          let activity = Activity.create () in
          Activity.register_stats activity grp;
          let cycles = Stats.counter grp "accel_cycles" in
          let iters = Stats.counter grp "iterations_run" in
          Hierarchy.register_stats hier (Stats.group reg "cache");
          let ok = ref true in
          let prev = ref (Stats.snapshot reg) in
          let completed = ref false in
          let windows = ref 0 in
          while (not !completed) && !ok && !windows < 16 do
            incr windows;
            match Engine.execute ~stop_after:64 ~config ~dfg ~machine ~hier () with
            | Error _ -> ok := false
            | Ok res ->
              Stats.add cycles res.Engine.cycles;
              Stats.add iters res.Engine.iterations;
              Activity.add activity res.Engine.activity;
              completed := res.Engine.completed;
              let cur = Stats.snapshot reg in
              (* Monotonicity applies to the integer counters; derived
                 ratios (hit rates) legitimately move both ways. *)
              let is_int p = Stats.find_int cur p <> None in
              ok :=
                !ok
                && Stats.check_invariants cur = Ok ()
                && List.for_all
                     (fun d ->
                       (not (is_int d.Stats.path)) || d.Stats.after >= d.Stats.before)
                     (Stats.diff !prev cur);
              prev := cur
          done;
          !ok && !completed))

(* The controller's accounting identity, read back from its own snapshot:
   total = cpu + accel + overhead, with every counter group present. *)
let accounting_identity =
  QCheck2.Test.make ~name:"total = cpu + accel + overhead on random loops" ~count:30
    ~print:Gen.loop_spec_print Gen.loop_spec (fun spec ->
      let prog, machine = Gen.build_loop spec in
      let report = Controller.run prog machine in
      let s = report.Controller.stats in
      let get p = Option.value ~default:min_int (Stats.find_int s p) in
      Stats.check_invariants s = Ok ()
      && get "controller.total_cycles"
         = get "controller.cpu_cycles" + get "controller.accel_cycles"
           + get "controller.overhead_cycles"
      && get "controller.total_cycles" = report.Controller.total_cycles
      && get "cpu.cycles" = report.Controller.cpu_cycles
      && List.exists (fun n -> String.length n > 6 && String.sub n 0 6 = "cache.")
           (Stats.names s)
      && List.exists (fun n -> String.length n > 7 && String.sub n 0 7 = "engine.")
           (Stats.names s))

let suites =
  [
    ( "stats",
      [
        Alcotest.test_case "registration and paths" `Quick registration_and_paths;
        Alcotest.test_case "duplicate names rejected" `Quick duplicate_names_rejected;
        Alcotest.test_case "json round-trip" `Quick json_roundtrip;
        QCheck_alcotest.to_alcotest json_roundtrip_random;
        Alcotest.test_case "flat text dump" `Quick flat_text_lists_every_path;
        Alcotest.test_case "diff reports changes only" `Quick diff_reports_changes_only;
        Alcotest.test_case "invariant checker" `Quick invariant_checker_catches_bad_state;
        QCheck_alcotest.to_alcotest monotone_across_windows;
        QCheck_alcotest.to_alcotest accounting_identity;
      ] );
  ]
