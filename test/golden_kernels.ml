(* Golden kernel matrix: every workload on the M-64 reference config, pinned
   by cycle count, offload count, the first reject/abandon reason (null when
   fully accelerated) and an FNV-1a checksum of final memory. The suite is
   the full kernel registry (Rodinia plus the DSL-built kernels) plus three
   fixed-seed programs from the tile-DSL random generator, so drift in the
   generator or the lowering pins the matrix too. The dune rule diffs this
   program's output against the checked-in golden_kernels.json; any drift in
   timing, offload policy or architectural results for any kernel fails
   `dune runtest`.

   To regenerate after an intentional change:

     dune runtest; dune promote

   (or `dune build @runtest --auto-promote`).

   A "refine" section pins the model-guided refinement pass on five
   reference kernels: the Algorithm-1 baseline cycles, the refined cycles
   (engine-confirmed, so never worse) and the accepted-move count. Any
   change to the cost model's ranking or the refinement search shows up
   here as a diff. *)

let generated_seeds = [ 101; 202; 303 ]
let refined_kernels = [ "nn"; "kmeans"; "bfs"; "cfd"; "hotspot" ]

let entry_of options name prepare program check =
  let mem = Main_memory.create () in
  let machine = prepare mem in
  let report = Controller.run ~options program machine in
  (match check mem with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "%s: wrong result: %s" name e));
  let reject =
    List.fold_left
      (fun acc (r : Controller.region_report) ->
        match acc with Some _ -> acc | None -> r.Controller.reject_reason)
      None report.Controller.regions
  in
  ( name,
    Json.Assoc
      [
        ("cycles", Json.Int report.Controller.total_cycles);
        ("offloads", Json.Int report.Controller.offloads);
        ( "reject",
          match reject with None -> Json.Null | Some r -> Json.String r );
        ("mem_checksum", Json.Int (Main_memory.checksum mem));
      ] )

let () =
  let options = Controller.default_options ~grid:Grid.m64 () in
  let suite =
    List.map
      (fun (k : Kernel.t) ->
        entry_of options k.Kernel.name
          (fun mem -> Kernel.prepare k mem)
          k.Kernel.program k.Kernel.check)
      (Workloads.all ())
  in
  let generated =
    List.map
      (fun seed ->
        let spec = Tile_gen.generate ~seed in
        let b = Tile_lower.lower_exn spec in
        entry_of options
          (Printf.sprintf "generated-%d" seed)
          (fun mem ->
            b.Tile_lower.setup mem;
            let machine =
              Machine.create ~pc:(Program.entry b.Tile_lower.program) mem
            in
            Machine.set_args machine (b.Tile_lower.args ~lo:0 ~hi:b.Tile_lower.n);
            machine)
          b.Tile_lower.program b.Tile_lower.check)
      generated_seeds
  in
  let refined =
    List.map
      (fun name ->
        match Refine.run ~seed:0 (Workloads.find name) with
        | Error e -> failwith (Printf.sprintf "refine %s: %s" name e)
        | Ok r ->
          ( "refine-" ^ name,
            Json.Assoc
              [
                ("baseline_cycles", Json.Int r.Refine.baseline_cycles);
                ("refined_cycles", Json.Int r.Refine.refined_cycles);
                ("accepted", Json.Int r.Refine.accepted);
              ] ))
      refined_kernels
  in
  print_string
    (Json.to_string ~indent:2 (Json.Assoc (suite @ generated @ refined)))
