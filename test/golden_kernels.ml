(* Golden kernel matrix: every workload on the M-64 reference config, pinned
   by cycle count, offload count, the first reject/abandon reason (null when
   fully accelerated) and an FNV-1a checksum of final memory. The dune rule
   diffs this program's output against the checked-in golden_kernels.json;
   any drift in timing, offload policy or architectural results for any of
   the 20 kernels fails `dune runtest`.

   To regenerate after an intentional change:

     dune runtest; dune promote

   (or `dune build @runtest --auto-promote`). *)

let () =
  let options = Controller.default_options ~grid:Grid.m64 () in
  let entries =
    List.map
      (fun (k : Kernel.t) ->
        let mem = Main_memory.create () in
        let machine = Kernel.prepare k mem in
        let report = Controller.run ~options k.Kernel.program machine in
        (match k.Kernel.check mem with
        | Ok () -> ()
        | Error e -> failwith (Printf.sprintf "%s: wrong result: %s" k.Kernel.name e));
        let reject =
          List.fold_left
            (fun acc (r : Controller.region_report) ->
              match acc with Some _ -> acc | None -> r.Controller.reject_reason)
            None report.Controller.regions
        in
        ( k.Kernel.name,
          Json.Assoc
            [
              ("cycles", Json.Int report.Controller.total_cycles);
              ("offloads", Json.Int report.Controller.offloads);
              ( "reject",
                match reject with None -> Json.Null | Some r -> Json.String r );
              ("mem_checksum", Json.Int (Main_memory.checksum mem));
            ] ))
      (Workloads.all ())
  in
  print_string (Json.to_string ~indent:2 (Json.Assoc entries))
