(* Differential pinning of model-guided placement refinement.

   {!Refine.run} lets the cost model propose swap moves and the event
   engine confirm them. Three things must hold for the pass to be safe to
   trust: it never regresses a kernel (engine-confirmed acceptance), the
   refined placement is an ordinary placement — re-running it through both
   the event engine and the reference oracle stays bit-identical in every
   observable — and the whole search is deterministic for a fixed seed. *)

let check = Alcotest.check

let kernels = [ "nn"; "kmeans"; "bfs"; "cfd"; "hotspot" ]

let run_exn name =
  match Refine.run ~seed:0 (Workloads.find name) with
  | Ok r -> r
  | Error e -> Alcotest.failf "refine %s: %s" name e

(* {2 Refinement never regresses, and its report is internally consistent.} *)

let refine_never_regresses () =
  List.iter
    (fun name ->
      let r = run_exn name in
      if r.Refine.refined_cycles > r.Refine.baseline_cycles then
        Alcotest.failf "%s: refined %d cycles > baseline %d" name
          r.Refine.refined_cycles r.Refine.baseline_cycles;
      check Alcotest.bool
        (name ^ ": confirmations within proposals")
        true
        (r.Refine.confirmed <= r.Refine.proposed);
      check Alcotest.bool
        (name ^ ": acceptances within confirmations")
        true
        (r.Refine.accepted <= r.Refine.confirmed);
      if r.Refine.accepted = 0 then
        check Alcotest.int
          (name ^ ": no accepted move, cycles unchanged")
          r.Refine.baseline_cycles r.Refine.refined_cycles)
    kernels

(* {2 The refined placement through both engines, bit for bit.}

   Same observation set as the event-vs-reference differential property:
   cycles, iterations, memory checksum, architectural registers, the full
   measured stats snapshot and the attribution bucket sums. *)

type observation = {
  o_res : Engine.result;
  o_mem_checksum : int;
  o_stats_json : string;
  o_attr_totals : int array;
  o_attr_cycles : int;
}

let execute_refined ~engine (r : Refine.report) (k : Kernel.t) =
  let config = Refine.config_for r r.Refine.placement in
  let grid = r.Refine.placement.Placement.grid in
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let attribution = Attribution.create ~grid () in
  Attribution.begin_window attribution ~at:0.0;
  let hier = Hierarchy.create Hierarchy.default_config in
  let out =
    match
      Engine.execute ~engine ~attribution ~config ~dfg:r.Refine.dfg ~machine ~hier ()
    with
    | Error e -> Alcotest.failf "%s (%s engine): %s" k.Kernel.name
        (match engine with `Event -> "event" | `Reference -> "reference") e
    | Ok res ->
      ( {
          o_res = res;
          o_mem_checksum = Main_memory.checksum mem;
          o_stats_json = Json.to_string (Stats.to_json res.Engine.measured);
          o_attr_totals = Attribution.totals attribution;
          o_attr_cycles = Attribution.total_cycles attribution;
        },
        machine )
  in
  Hierarchy.release hier;
  out

let refined_placement_differential () =
  List.iter
    (fun name ->
      let k = Workloads.find name in
      let r = run_exn name in
      let ev, ev_m = execute_refined ~engine:`Event r k in
      let re, re_m = execute_refined ~engine:`Reference r k in
      check Alcotest.int (name ^ ": cycles") re.o_res.Engine.cycles
        ev.o_res.Engine.cycles;
      check Alcotest.int (name ^ ": refined cycles as reported")
        r.Refine.refined_cycles ev.o_res.Engine.cycles;
      check Alcotest.int (name ^ ": iterations") re.o_res.Engine.iterations
        ev.o_res.Engine.iterations;
      check Alcotest.bool (name ^ ": completed") re.o_res.Engine.completed
        ev.o_res.Engine.completed;
      check Alcotest.int (name ^ ": memory checksum") re.o_mem_checksum
        ev.o_mem_checksum;
      check Alcotest.bool (name ^ ": registers") true (Machine.arch_equal re_m ev_m);
      check Alcotest.string (name ^ ": stats snapshot") re.o_stats_json
        ev.o_stats_json;
      check Alcotest.(array int) (name ^ ": attribution buckets") re.o_attr_totals
        ev.o_attr_totals;
      check Alcotest.int (name ^ ": attribution cycles") re.o_attr_cycles
        ev.o_attr_cycles)
    kernels

(* {2 Determinism: fixed seed, identical search and identical outcome.} *)

let refine_is_deterministic () =
  List.iter
    (fun name ->
      let a = run_exn name and b = run_exn name in
      check Alcotest.int (name ^ ": refined cycles") a.Refine.refined_cycles
        b.Refine.refined_cycles;
      check Alcotest.int (name ^ ": rounds") a.Refine.rounds b.Refine.rounds;
      check Alcotest.int (name ^ ": proposed") a.Refine.proposed b.Refine.proposed;
      check Alcotest.int (name ^ ": confirmed") a.Refine.confirmed b.Refine.confirmed;
      check Alcotest.int (name ^ ": accepted") a.Refine.accepted b.Refine.accepted;
      check Alcotest.bool (name ^ ": same placement") true
        (a.Refine.placement = b.Refine.placement);
      check Alcotest.string (name ^ ": same report json")
        (Json.to_string (Refine.report_to_json a))
        (Json.to_string (Refine.report_to_json b)))
    [ "kmeans"; "hotspot" ]

let suites =
  [
    ( "refine",
      [
        Alcotest.test_case "refinement never regresses a kernel" `Slow
          refine_never_regresses;
        Alcotest.test_case "refined placement bit-identical across engines" `Slow
          refined_placement_differential;
        Alcotest.test_case "fixed seed: deterministic search" `Slow
          refine_is_deterministic;
      ] );
  ]
