(* Golden-profile regression: bfs on M-64 with the cycle-attribution
   profiler armed. Pins the bucket totals, the closure accounting, the
   dominant bottleneck and the measured critical path — any drift in the
   stall taxonomy fails `dune runtest`.

   To regenerate after an intentional change:

     dune runtest; dune promote

   (or `dune build @runtest --auto-promote`). *)

let () =
  let k = Workloads.find "bfs" in
  let _, report = Runner.mesa ~grid:Grid.m64 ~profile:true k in
  let p =
    match Profile.of_report ~kernel:"bfs" report with
    | Ok p -> p
    | Error e -> failwith e
  in
  if not (Profile.closes p) then failwith "golden profile does not close";
  let buckets =
    List.map
      (fun b ->
        ( Attribution.bucket_name b,
          Json.Int p.Profile.totals.(Attribution.bucket_index b) ))
      Attribution.buckets
  in
  print_string
    (Json.to_string ~indent:2
       (Json.Assoc
          [
            ("kernel", Json.String p.Profile.kernel);
            ("grid", Json.String p.Profile.grid_name);
            ("total_cycles", Json.Int p.Profile.total_cycles);
            ("accel_cycles", Json.Int p.Profile.accel_cycles);
            ("config_cycles", Json.Int p.Profile.config_cycles);
            ("attributed_cycles", Json.Int p.Profile.attributed_cycles);
            ("iterations", Json.Int p.Profile.iterations);
            ("windows", Json.Int p.Profile.windows);
            ("buckets", Json.Assoc buckets);
            ("dominant", Json.String (Attribution.bucket_name p.Profile.dominant));
            ( "critical_path_nodes",
              Json.Int (List.length p.Profile.critical_path) );
            ( "critical_path_latency",
              Json.Float p.Profile.critical_path_latency );
            ("ii_mean", Json.Float p.Profile.ii.Attribution.ii_mean);
            ("ii_rec_mean", Json.Float p.Profile.ii.Attribution.ii_rec_mean);
            ("ii_mem_mean", Json.Float p.Profile.ii.Attribution.ii_mem_mean);
            ("port_claims", Json.Int p.Profile.port_claims);
            ("port_busy", Json.Int p.Profile.port_busy);
          ]))
