(* `mesa_cli fuzz --replay` on a missing or malformed corpus file must
   fail with a one-line diagnostic and a non-zero exit — never a raw
   backtrace. argv: mesa_cli path. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let run_replay cli file =
  let stderr_file = Filename.temp_file "replay-smoke" ".err" in
  let code =
    Sys.command
      (Filename.quote_command cli ~stdout:Filename.null ~stderr:stderr_file
         [ "fuzz"; "--replay"; file ])
  in
  let ic = open_in stderr_file in
  let len = in_channel_length ic in
  let err = really_input_string ic len in
  close_in ic;
  Sys.remove stderr_file;
  (code, err)

let check_case cli ~label file =
  let code, err = run_replay cli file in
  if code = 0 then fail "%s: expected a non-zero exit, got 0" label;
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' err)
  in
  (match lines with
  | [ _ ] -> ()
  | _ ->
    fail "%s: expected exactly one diagnostic line, got %d:\n%s" label
      (List.length lines) err);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun marker ->
      List.iter
        (fun l ->
          if contains l marker then
            fail "%s: diagnostic looks like a backtrace: %s" label l)
        lines)
    [ "Raised at"; "Raised by"; "Called from"; "Fatal error" ];
  Printf.printf "%s: exit %d, %s\n" label code (List.hd lines)

let () =
  let cli = Sys.argv.(1) in
  check_case cli ~label:"missing corpus file" "no-such-corpus-entry.json";
  let malformed = Filename.temp_file "replay-smoke" ".json" in
  let oc = open_out malformed in
  output_string oc "{ this is not json\n";
  close_out oc;
  check_case cli ~label:"malformed corpus file" malformed;
  let nospec = Filename.temp_file "replay-smoke" ".json" in
  let oc = open_out nospec in
  output_string oc "{\"note\": \"valid json, not a corpus entry\"}\n";
  close_out oc;
  check_case cli ~label:"json without spec/fabric" nospec;
  Sys.remove malformed;
  Sys.remove nospec;
  print_endline "replay smoke ok"
