(* Cycle-attribution profiler: closure of the stall taxonomy against the
   controller's wall-clock accounting, bit-identity of profiled runs,
   deterministic profiles, the JSON schema round-trip, the regression gate,
   and the Perfetto lane extensions to Trace. *)

let check = Alcotest.check

let profile_of ?(grid = Grid.m64) name =
  let k = Workloads.find name in
  let _, report = Runner.mesa ~grid ~profile:true k in
  match Profile.of_report ~kernel:name report with
  | Ok p -> (p, report)
  | Error e -> Alcotest.failf "profile of %s: %s" name e

(* ------------------------------------------------------------------ *)
(* Closure: every lane's buckets sum to exactly accel + overhead cycles. *)

let closure_against_accounting () =
  List.iter
    (fun name ->
      let p, report = profile_of name in
      check Alcotest.bool (name ^ " closes") true (Profile.closes p);
      check Alcotest.int
        (name ^ " attributed = accel + overhead")
        (report.Controller.accel_cycles + report.Controller.overhead_cycles)
        p.Profile.attributed_cycles;
      Array.iteri
        (fun i b ->
          check Alcotest.int
            (Printf.sprintf "%s lane %s sum" name p.Profile.lane_labels.(i))
            p.Profile.attributed_cycles
            (Array.fold_left ( + ) 0 b))
        p.Profile.lane_buckets)
    [ "bfs"; "nn"; "kmeans" ]

let collector_closure () =
  let _, report = profile_of "bfs" |> fun (_, r) -> ((), r) in
  match report.Controller.attribution with
  | None -> Alcotest.fail "no attribution"
  | Some a ->
    check Alcotest.int "total = engine + config"
      (Attribution.engine_cycles a + Attribution.config_cycles a)
      (Attribution.total_cycles a);
    for lane = 0 to Attribution.lane_count a - 1 do
      check Alcotest.int
        (Printf.sprintf "lane %d quantized sum" lane)
        (Attribution.total_cycles a)
        (Array.fold_left ( + ) 0 (Attribution.lane_buckets a lane))
    done

(* ------------------------------------------------------------------ *)
(* Bit-identity: profiling must not perturb timing or architecture. *)

let run_controller ~profile (k : Kernel.t) ~grid ~kind =
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let options =
    { (Controller.default_options ~grid ~profile ()) with Controller.kind }
  in
  let report = Controller.run ~options k.Kernel.program machine in
  (report, machine, mem)

let profiling_is_pure_observation () =
  List.iter
    (fun name ->
      let k = Workloads.find name in
      let grid = Grid.m64 and kind = Interconnect.Mesh_noc in
      let off, m_off, mem_off = run_controller ~profile:false k ~grid ~kind in
      let on, m_on, mem_on = run_controller ~profile:true k ~grid ~kind in
      check Alcotest.int (name ^ " total cycles") off.Controller.total_cycles
        on.Controller.total_cycles;
      check Alcotest.int (name ^ " cpu cycles") off.Controller.cpu_cycles
        on.Controller.cpu_cycles;
      check Alcotest.int (name ^ " accel cycles") off.Controller.accel_cycles
        on.Controller.accel_cycles;
      check Alcotest.int (name ^ " overhead") off.Controller.overhead_cycles
        on.Controller.overhead_cycles;
      check Alcotest.bool (name ^ " memory identical") true
        (Main_memory.equal mem_off mem_on);
      check Alcotest.bool (name ^ " registers identical") true
        (Machine.arch_equal m_off m_on))
    [ "bfs"; "nn"; "hotspot" ]

(* The reference cycle counts the roadmap pins must be reproduced exactly
   with profiling armed. *)
let reference_cycles_with_profiling () =
  List.iter
    (fun (name, cycles) ->
      let k = Workloads.find name in
      let m, _ = Runner.mesa ~profile:true k in
      check Alcotest.int (name ^ " reference cycles") cycles m.Runner.cycles)
    [ ("nn", 11464); ("kmeans", 8469); ("bfs", 14081) ]

(* ------------------------------------------------------------------ *)
(* Randomized properties. *)

(* The shared draw, with the port axis capped: profiling every port width
   is slow and adds nothing to the closure property. *)
let gen_arch_case = Gen.arch_case ~max_ports:8 ()
let print_arch_case = Gen.arch_case_print

let profile_json (k : Kernel.t) ~grid ~kind =
  let report, _, _ = run_controller ~profile:true k ~grid ~kind in
  match Profile.of_report ~kernel:k.Kernel.name report with
  | Ok p -> Json.to_string (Profile.to_json p)
  | Error e -> Alcotest.failf "profile: %s" e

(* Profiling the same draw twice yields bit-identical profile JSON. *)
let profiles_are_deterministic =
  QCheck2.Test.make ~name:"random configs: profiles are bit-identical across runs"
    ~count:6 ~print:print_arch_case gen_arch_case
    (fun (c : Gen.arch_case) ->
      let k = Gen.arch_case_kernel c in
      let grid = Grid.make ~rows:c.Gen.rows ~cols:c.Gen.cols ~mem_ports:c.Gen.ports () in
      let kind = c.Gen.kind in
      String.equal (profile_json k ~grid ~kind) (profile_json k ~grid ~kind))

(* Every lane's bucket sum closes against the run's fabric accounting. *)
let profiles_close =
  QCheck2.Test.make ~name:"random configs: attribution closes on every lane"
    ~count:8 ~print:print_arch_case gen_arch_case
    (fun (c : Gen.arch_case) ->
      let k = Gen.arch_case_kernel c in
      let grid = Grid.make ~rows:c.Gen.rows ~cols:c.Gen.cols ~mem_ports:c.Gen.ports () in
      let report, _, _ = run_controller ~profile:true k ~grid ~kind:c.Gen.kind in
      match Profile.of_report ~kernel:k.Kernel.name report with
      | Error e -> Alcotest.failf "profile: %s" e
      | Ok p ->
        Profile.closes p
        && p.Profile.attributed_cycles
           = report.Controller.accel_cycles + report.Controller.overhead_cycles)

(* Profiling on/off leaves cycles, memory and registers bit-identical. *)
let profiling_bit_identical =
  QCheck2.Test.make
    ~name:"random configs: profiling on/off is bit-identical" ~count:6
    ~print:print_arch_case gen_arch_case
    (fun (c : Gen.arch_case) ->
      let k = Gen.arch_case_kernel c in
      let grid = Grid.make ~rows:c.Gen.rows ~cols:c.Gen.cols ~mem_ports:c.Gen.ports () in
      let kind = c.Gen.kind in
      let off, m_off, mem_off = run_controller ~profile:false k ~grid ~kind in
      let on, m_on, mem_on = run_controller ~profile:true k ~grid ~kind in
      off.Controller.total_cycles = on.Controller.total_cycles
      && off.Controller.accel_cycles = on.Controller.accel_cycles
      && off.Controller.overhead_cycles = on.Controller.overhead_cycles
      && Main_memory.equal mem_off mem_on
      && Machine.arch_equal m_off m_on)

(* ------------------------------------------------------------------ *)
(* Collector unit behaviour. *)

let small_grid = Grid.make ~rows:2 ~cols:2 ~mem_ports:2 ()

let collector_charges_and_tails () =
  let a = Attribution.create ~grid:small_grid () in
  Attribution.begin_window a ~at:100.0;
  (* Lane 0: waits 2 (1 of it NoC), queues 1 on a port, serves 3. *)
  Attribution.charge_op a ~lane:0 ~start:2.0 ~noc_wait:1.0 ~port_wait:1.0
    ~service:3.0 ~long_op:false;
  Attribution.end_window a ~grid:small_grid ~cycles:10 ~iterations:1;
  let b = Attribution.lane_buckets a 0 in
  let idx bk = Attribution.bucket_index bk in
  check Alcotest.int "busy" 3 b.(idx Attribution.Busy);
  check Alcotest.int "rec wait" 1 b.(idx Attribution.Recurrence_wait);
  check Alcotest.int "noc" 1 b.(idx Attribution.Noc_stall);
  check Alcotest.int "port" 1 b.(idx Attribution.Mem_port_stall);
  check Alcotest.int "drain" 4 b.(idx Attribution.Drain);
  (* An untouched lane is all Idle. *)
  let b1 = Attribution.lane_buckets a 1 in
  check Alcotest.int "idle lane" 10 b1.(idx Attribution.Idle);
  check Alcotest.int "total" 10 (Attribution.total_cycles a);
  (* Interval ring carries absolute (w_at-offset) times. *)
  match Attribution.lane_intervals a 0 with
  | (start, dur, bucket) :: _ ->
    check (Alcotest.float 1e-9) "first interval at w_at" 100.0 start;
    check (Alcotest.float 1e-9) "first interval dur" 1.0 dur;
    check Alcotest.bool "first interval bucket" true
      (bucket = Attribution.Recurrence_wait)
  | [] -> Alcotest.fail "no intervals"

let collector_overlap_clips () =
  let a = Attribution.create ~grid:small_grid () in
  Attribution.begin_window a ~at:0.0;
  Attribution.charge_op a ~lane:0 ~start:0.0 ~noc_wait:0.0 ~port_wait:0.0
    ~service:4.0 ~long_op:false;
  (* Second (pipelined) firing starts inside the first: only the
     non-overlapping tail may charge. *)
  Attribution.charge_op a ~lane:0 ~start:2.0 ~noc_wait:0.0 ~port_wait:0.0
    ~service:4.0 ~long_op:false;
  Attribution.end_window a ~grid:small_grid ~cycles:6 ~iterations:2;
  let b = Attribution.lane_buckets a 0 in
  check Alcotest.int "clipped busy" 6
    b.(Attribution.bucket_index Attribution.Busy);
  check Alcotest.int "no drain" 0
    b.(Attribution.bucket_index Attribution.Drain)

let collector_fractional_quantization () =
  let a = Attribution.create ~grid:small_grid () in
  Attribution.begin_window a ~at:0.0;
  (* Fractional segments: 0.4 wait + 2.3 busy; the remaining 7.3 drains.
     Quantization must make the integers close to exactly 10. *)
  Attribution.charge_op a ~lane:0 ~start:0.4 ~noc_wait:0.0 ~port_wait:0.0
    ~service:2.3 ~long_op:false;
  Attribution.end_window a ~grid:small_grid ~cycles:10 ~iterations:1;
  for lane = 0 to Attribution.lane_count a - 1 do
    check Alcotest.int
      (Printf.sprintf "lane %d closes" lane)
      10
      (Array.fold_left ( + ) 0 (Attribution.lane_buckets a lane))
  done

let collector_abort_restores () =
  let a = Attribution.create ~grid:small_grid () in
  Attribution.begin_window a ~at:0.0;
  Attribution.charge_op a ~lane:0 ~start:0.0 ~noc_wait:0.0 ~port_wait:0.0
    ~service:4.0 ~long_op:true;
  Attribution.end_window a ~grid:small_grid ~cycles:8 ~iterations:1;
  let before = (Attribution.total_cycles a, Attribution.totals a) in
  (* A faulted window: charges then a rollback, re-charged as Config. *)
  Attribution.begin_window a ~at:8.0;
  Attribution.charge_op a ~lane:1 ~start:1.0 ~noc_wait:0.5 ~port_wait:2.0
    ~service:9.0 ~long_op:false;
  Attribution.end_window a ~grid:small_grid ~cycles:12 ~iterations:1;
  Attribution.abort_window a;
  check Alcotest.int "total restored" (fst before) (Attribution.total_cycles a);
  check Alcotest.(array int) "totals restored" (snd before) (Attribution.totals a);
  Attribution.charge_config a 5;
  check Alcotest.int "config re-charge" (fst before + 5)
    (Attribution.total_cycles a);
  (* totals sums over lanes, and a config stall charges every lane. *)
  check Alcotest.int "config bucket" (5 * Attribution.lane_count a)
    (Attribution.totals a).(Attribution.bucket_index Attribution.Config)

let collector_masked_lanes () =
  let masked = Grid.mask small_grid [ Grid.coord 1 1 ] in
  let a = Attribution.create ~grid:small_grid () in
  Attribution.begin_window a ~at:0.0;
  Attribution.end_window a ~grid:masked ~cycles:5 ~iterations:1;
  let b = Attribution.lane_buckets a (Attribution.pe_lane a (Grid.coord 1 1)) in
  check Alcotest.int "masked lane charged Masked_faulty" 5
    b.(Attribution.bucket_index Attribution.Masked_faulty)

let collector_ring_is_bounded () =
  let a = Attribution.create ~ring:4 ~grid:small_grid () in
  Attribution.begin_window a ~at:0.0;
  for i = 0 to 99 do
    Attribution.charge_op a ~lane:0
      ~start:(float_of_int (2 * i))
      ~noc_wait:0.0 ~port_wait:0.0 ~service:1.0 ~long_op:false
  done;
  Attribution.end_window a ~grid:small_grid ~cycles:200 ~iterations:100;
  let ivs = Attribution.lane_intervals a 0 in
  check Alcotest.bool "ring bounded" true (List.length ivs <= 4);
  (* Totals are exact even though the ring dropped old intervals. *)
  check Alcotest.int "busy total exact" 100
    (Attribution.lane_buckets a 0).(Attribution.bucket_index Attribution.Busy)

(* ------------------------------------------------------------------ *)
(* JSON schema round-trip and the regression gate. *)

let json_roundtrip () =
  let p, _ = profile_of "bfs" in
  match Profile.of_json (Profile.to_json p) with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    check Alcotest.string "roundtrip identical"
      (Json.to_string (Profile.to_json p))
      (Json.to_string (Profile.to_json p'));
    check Alcotest.bool "roundtrip closes" true (Profile.closes p')

let json_roundtrip_through_text () =
  let p, _ = profile_of "nn" in
  let text = Json.to_string ~indent:2 (Profile.to_json p) in
  match Json.of_string text with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    match Profile.of_json j with
    | Error e -> Alcotest.fail e
    | Ok p' ->
      check Alcotest.string "text roundtrip" text
        (Json.to_string ~indent:2 (Profile.to_json p')))

let diff_gate () =
  let p, _ = profile_of "bfs" in
  check Alcotest.int "self-diff clean at 0%" 0
    (List.length (Profile.diff ~max_regress:0.0 p p));
  (* Grow one stall bucket past the gate (keeping the record well-formed is
     not required for diff, which reads totals). *)
  let idx = Attribution.bucket_index Attribution.Noc_stall in
  let worse_totals = Array.copy p.Profile.totals in
  worse_totals.(idx) <- worse_totals.(idx) + 500;
  let worse = { p with Profile.totals = worse_totals } in
  (match Profile.diff ~max_regress:5.0 p worse with
  | [ v ] ->
    check Alcotest.string "violating key" "noc_stall" v.Profile.v_key;
    check Alcotest.int "after" (p.Profile.totals.(idx) + 500) v.Profile.v_after
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  (* A per-bucket tolerance (absolute floor included) absolves it. *)
  check Alcotest.int "tolerance override" 0
    (List.length
       (Profile.diff
          ~tolerances:[ ("noc_stall", 1000.0) ]
          ~max_regress:5.0 p worse));
  (* Shrinking is never a regression. *)
  check Alcotest.int "improvement passes" 0
    (List.length (Profile.diff ~max_regress:0.0 worse p))

let render_names_bottleneck () =
  let p, _ = profile_of "bfs" in
  let text = Profile.render p in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  check Alcotest.bool "names the dominant bucket" true
    (contains text (Attribution.bucket_name p.Profile.dominant));
  check Alcotest.bool "names the II regime" true
    (contains text "bound");
  check Alcotest.bool "reports the critical path" true
    (contains text "critical path")

(* ------------------------------------------------------------------ *)
(* Trace lanes (satellite: pid/tid + metadata events). *)

let trace_lane_fields () =
  let default = Trace.span ~cat:"mesa" ~ts:5 ~dur:2 "plain" in
  check Alcotest.int "default pid" 0 default.Trace.pid;
  check Alcotest.int "default tid" 0 default.Trace.tid;
  let lane = Trace.span ~pid:1 ~tid:42 ~cat:"fabric" ~ts:0 ~dur:1 "busy" in
  let j = Trace.to_chrome_json [ default; lane; Trace.thread_name ~pid:1 ~tid:42 "pe_5_2" ] in
  match Json.member "traceEvents" j with
  | Some (Json.List [ d; l; m ]) ->
    check (Alcotest.option Alcotest.int) "plain pid 0" (Some 0)
      (Option.bind (Json.member "pid" d) Json.to_int);
    check (Alcotest.option Alcotest.int) "lane tid" (Some 42)
      (Option.bind (Json.member "tid" l) Json.to_int);
    check (Alcotest.option Alcotest.string) "metadata ph" (Some "M")
      (Option.bind (Json.member "ph" m) Json.to_string_opt);
    check (Alcotest.option Alcotest.string) "metadata name" (Some "thread_name")
      (Option.bind (Json.member "name" m) Json.to_string_opt);
    check (Alcotest.option Alcotest.string) "metadata lane label" (Some "pe_5_2")
      (Option.bind (Json.path [ "args"; "name" ] m) Json.to_string_opt)
  | _ -> Alcotest.fail "bad trace json"

let timeline_lanes () =
  let _, report = profile_of "bfs" in
  let a = Option.get report.Controller.attribution in
  let spans = Profile.timeline a in
  let metas, events = List.partition (fun s -> s.Trace.meta <> None) spans in
  (* One process per group + one thread per lane and per port. *)
  check Alcotest.int "metadata count"
    (3 + Attribution.lane_count a + Attribution.port_count a)
    (List.length metas);
  check Alcotest.bool "events exist" true (events <> []);
  List.iter
    (fun s ->
      check Alcotest.bool "event on a profiler pid" true
        (s.Trace.pid = 1 || s.Trace.pid = 2);
      check Alcotest.bool "positive duration" true (s.Trace.dur >= 1))
    events;
  (* Bucket-named fabric spans only (idle/masked elided). *)
  List.iter
    (fun s ->
      if s.Trace.pid = 1 then
        check Alcotest.bool ("bucket name: " ^ s.Trace.name) true
          (Attribution.bucket_of_name s.Trace.name <> None))
    events

let suites =
  [
    ( "profile",
      [
        Alcotest.test_case "closure against accounting" `Quick
          closure_against_accounting;
        Alcotest.test_case "collector closure" `Quick collector_closure;
        Alcotest.test_case "profiling is pure observation" `Quick
          profiling_is_pure_observation;
        Alcotest.test_case "reference cycles with profiling" `Quick
          reference_cycles_with_profiling;
        Alcotest.test_case "collector charges and tails" `Quick
          collector_charges_and_tails;
        Alcotest.test_case "collector overlap clips" `Quick
          collector_overlap_clips;
        Alcotest.test_case "collector fractional quantization" `Quick
          collector_fractional_quantization;
        Alcotest.test_case "collector abort restores" `Quick
          collector_abort_restores;
        Alcotest.test_case "collector masked lanes" `Quick collector_masked_lanes;
        Alcotest.test_case "collector ring is bounded" `Quick
          collector_ring_is_bounded;
        Alcotest.test_case "json roundtrip" `Quick json_roundtrip;
        Alcotest.test_case "json roundtrip through text" `Quick
          json_roundtrip_through_text;
        Alcotest.test_case "diff gate" `Quick diff_gate;
        Alcotest.test_case "render names bottleneck" `Quick
          render_names_bottleneck;
        Alcotest.test_case "trace lane fields" `Quick trace_lane_fields;
        Alcotest.test_case "timeline lanes" `Quick timeline_lanes;
        QCheck_alcotest.to_alcotest profiles_are_deterministic;
        QCheck_alcotest.to_alcotest profiles_close;
        QCheck_alcotest.to_alcotest profiling_bit_identical;
      ] );
  ]
