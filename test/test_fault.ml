(* The fault-injection subsystem: every scheduled fault must be survived —
   detected, retried, remapped around, or quarantined — with architectural
   state bit-exact against the plain interpreter, and the whole ladder must
   be reproducible from the (spec, seed) pair alone. *)

let check = Alcotest.check

(* Same nested summation loop the robustness suite uses: the inner region
   qualifies for offload (5 instructions, one load), the outer loop re-enters
   it 8 times so recovery and re-arming both get exercised. *)
let sum_loop ~iterations =
  let b = Asm.create () in
  let open Reg in
  Asm.li b s2 0;
  Asm.label b "outer";
  Asm.li b t0 0;
  Asm.label b "loop";
  Asm.lw b t1 0 a0;
  Asm.mul b t2 t1 t1;
  Asm.add b t3 t3 t2;
  Asm.addi b t0 t0 1;
  Asm.blt b t0 a1 "loop";
  Asm.addi b s2 s2 1;
  Asm.blt b s2 a2 "outer";
  Asm.sw b t3 0 a3;
  Asm.ecall b;
  let prog = Asm.assemble b in
  let mem = Main_memory.create () in
  Main_memory.store_word mem 0x10000 7;
  let machine = Machine.create ~pc:(Program.entry prog) mem in
  Machine.set_args machine
    [ (a0, 0x10000); (a1, iterations); (a2, 8); (a3, 0x20000) ];
  (prog, machine, mem)

let reference_of prog machine =
  let m = Machine.copy machine ~mem:(Main_memory.copy machine.Machine.mem) () in
  let _ = Interp.run prog m in
  m

let stat_int report name =
  match Stats.find_int report.Controller.stats name with
  | Some v -> v
  | None -> Alcotest.failf "stat %s missing" name

let run_injected ?(options = Controller.default_options ()) ~inject iterations =
  let prog, machine, mem = sum_loop ~iterations in
  let expected = reference_of prog machine in
  let report = Controller.run ~options:{ options with Controller.inject } prog machine in
  check Alcotest.bool "halts" true (report.Controller.halt = Interp.Ecall_halt);
  check Alcotest.bool "memory exact" true
    (Main_memory.equal expected.Machine.mem mem);
  check Alcotest.bool "registers exact" true (Machine.arch_equal expected machine);
  report

(* {2 Spec parsing} *)

let spec_parses () =
  match Fault.spec_of_string ~seed:7 "transient@100,permanent@300:2x5,config@1,link@50,ports@10" with
  | Error e -> Alcotest.fail e
  | Ok sp ->
    check Alcotest.int "seed" 7 sp.Fault.seed;
    check Alcotest.int "events" 5 (List.length sp.Fault.events);
    let kinds = List.map (fun e -> Fault.kind_name e.Fault.kind) sp.Fault.events in
    check Alcotest.(list string) "kinds"
      [ "transient"; "permanent"; "config"; "link"; "ports" ] kinds;
    let pinned = List.nth sp.Fault.events 1 in
    check Alcotest.bool "pinned coord" true
      (pinned.Fault.coord = Some { Grid.row = 2; col = 5 });
    (* Round trip through the printer. *)
    (match Fault.spec_of_string ~seed:7 (Fault.spec_to_string sp) with
    | Ok sp' -> check Alcotest.bool "roundtrip" true (sp = sp')
    | Error e -> Alcotest.fail e)

let spec_rejects_garbage () =
  let bad s =
    check Alcotest.bool (s ^ " rejected") true
      (Result.is_error (Fault.spec_of_string s))
  in
  bad "meteor@3";
  bad "transient";
  bad "transient@x";
  bad "permanent@10:5";
  bad ""

(* {2 Injector determinism} *)

let injector_deterministic () =
  let spec =
    Result.get_ok
      (Fault.spec_of_string ~seed:99 "transient@3,transient@9,permanent@6,ports@2")
  in
  let grid = Grid.m128 in
  let used = [ { Grid.row = 0; col = 0 }; { Grid.row = 3; col = 2 };
               { Grid.row = 7; col = 5 } ] in
  let trace f =
    Fault.begin_window f ~used;
    List.concat_map
      (fun _ ->
        let s = Fault.tick f in
        List.map
          (fun k -> (k.Fault.s_coord, Fault.kind_name k.Fault.s_kind, k.Fault.s_value))
          s.Fault.strikes)
      (List.init 12 Fun.id)
  in
  let a = Fault.create ~grid spec and b = Fault.create ~grid spec in
  check Alcotest.bool "identical strike streams" true (trace a = trace b);
  check Alcotest.bool "identical permanent damage" true (Fault.dead a = Fault.dead b);
  check Alcotest.int "ports" (Fault.ports_lost a) (Fault.ports_lost b);
  check Alcotest.bool "events fired" true (Fault.injected a >= 3)

(* {2 Recovery ladder on the controller} *)

(* One transient upset: the window is detected as corrupt, replayed from the
   iteration-boundary checkpoint, and the run stays bit-exact. *)
let transient_is_retried () =
  let inject = Some (Fault.spec ~seed:11 [ { Fault.at = 120; kind = Fault.Transient_pe; coord = None } ]) in
  let report = run_injected ~inject 400 in
  check Alcotest.bool "offloaded" true (report.Controller.offloads >= 1);
  check Alcotest.bool "detected" true (stat_int report "faults.detected" >= 1);
  check Alcotest.bool "retried" true (stat_int report "faults.retried" >= 1);
  check Alcotest.int "no quarantine" 0 (stat_int report "faults.quarantined");
  check Alcotest.bool "recovery stalls in overhead" true
    (report.Controller.overhead_cycles > 0);
  check Alcotest.int "accounting identity" report.Controller.total_cycles
    (report.Controller.cpu_cycles + report.Controller.accel_cycles
   + report.Controller.overhead_cycles)

(* A stuck-at PE: masked out of the grid, placement re-run on the degraded
   fabric, and acceleration continues on the remaining PEs. *)
let permanent_is_remapped () =
  let inject = Some (Fault.spec ~seed:5 [ { Fault.at = 150; kind = Fault.Permanent_pe; coord = None } ]) in
  let report = run_injected ~inject 400 in
  check Alcotest.bool "remapped" true (stat_int report "faults.remapped" >= 1);
  check Alcotest.int "no quarantine" 0 (stat_int report "faults.quarantined");
  check Alcotest.bool "still accelerating after the remap" true
    (report.Controller.accel_cycles > 0 && report.Controller.offloads >= 2);
  let r =
    List.find (fun (r : Controller.region_report) -> r.Controller.accepted)
      report.Controller.regions
  in
  check Alcotest.bool "remap recorded per region" true (r.Controller.fault_remaps >= 1)

(* A barrage of transients — one per profiling window — exhausts the retry
   budget; the region is quarantined and the program completes exactly. *)
let retry_budget_quarantines () =
  let ev at = { Fault.at; kind = Fault.Transient_pe; coord = None } in
  let inject = Some (Fault.spec ~seed:3 (List.map ev [ 10; 70; 130; 200; 260; 320 ])) in
  let report = run_injected ~inject 400 in
  check Alcotest.bool "quarantined" true (stat_int report "faults.quarantined" >= 1);
  let r =
    List.find (fun (r : Controller.region_report) -> r.Controller.accepted)
      report.Controller.regions
  in
  check Alcotest.bool "quarantine reason surfaced" true
    (match r.Controller.reject_reason with Some _ -> true | None -> false)

(* Worst case: permanent faults on a fabric with no spare capacity. The
   remap cannot route, the region is quarantined with backoff, and the
   program degrades to CPU-only completion — still bit-exact. *)
let degrades_to_cpu_only () =
  let grid = Grid.make ~rows:2 ~cols:3 ~name:"M-6" () in
  let options = Controller.default_options ~grid () in
  (* Control: the tiny fabric can run the loop when healthy. *)
  let prog, machine, mem = sum_loop ~iterations:400 in
  let expected = reference_of prog machine in
  let clean = Controller.run ~options prog machine in
  check Alcotest.bool "tiny fabric offloads when healthy" true
    (clean.Controller.offloads >= 1);
  check Alcotest.bool "clean memory exact" true
    (Main_memory.equal expected.Machine.mem mem);
  (* Now kill PEs until the mapper cannot place the loop any more. *)
  let ev at = { Fault.at; kind = Fault.Permanent_pe; coord = None } in
  let inject = Some (Fault.spec ~seed:21 (List.map ev [ 100; 300; 500 ])) in
  let report = run_injected ~options ~inject 400 in
  check Alcotest.bool "quarantined" true (stat_int report "faults.quarantined" >= 1);
  let r =
    List.find (fun (r : Controller.region_report) -> r.Controller.accepted)
      report.Controller.regions
  in
  check Alcotest.bool "abandonment reason recorded" true
    (match r.Controller.reject_reason with Some _ -> true | None -> false)

(* Configuration upsets are caught by the checksummed codec at write time;
   the write is simply paid again. *)
let config_upset_repays_write () =
  let inject = Some (Fault.spec ~seed:2 [ { Fault.at = 1; kind = Fault.Config_upset; coord = None } ]) in
  let report = run_injected ~inject 400 in
  check Alcotest.bool "upset hit" true (stat_int report "faults.config_upsets" >= 1);
  check Alcotest.int "no quarantine" 0 (stat_int report "faults.quarantined")

(* {2 Budget abort (satellite a)} *)

let iteration_budget_aborts () =
  let options =
    { (Controller.default_options ()) with
      Controller.iterative = false;
      engine_max_iterations = 100 }
  in
  let prog, machine, mem = sum_loop ~iterations:400 in
  let expected = reference_of prog machine in
  let report = Controller.run ~options prog machine in
  check Alcotest.bool "halts" true (report.Controller.halt = Interp.Ecall_halt);
  check Alcotest.bool "memory exact" true
    (Main_memory.equal expected.Machine.mem mem);
  check Alcotest.bool "budget abort counted" true
    (stat_int report "controller.iteration_budget_aborts" >= 1);
  let r =
    List.find (fun (r : Controller.region_report) -> r.Controller.accepted)
      report.Controller.regions
  in
  check Alcotest.(option string) "distinct abort reason"
    (Some "iteration budget exhausted") r.Controller.reject_reason

(* {2 Determinism and the fault-free path} *)

let same_spec_same_run () =
  let inject =
    Some
      (Result.get_ok
         (Fault.spec_of_string ~seed:17 "transient@50,permanent@200,config@1"))
  in
  let once () =
    let report = run_injected ~inject 400 in
    ( report.Controller.total_cycles,
      List.map (fun p -> stat_int report ("faults." ^ p))
        [ "injected"; "detected"; "retried"; "remapped"; "quarantined" ] )
  in
  let a = once () and b = once () in
  check Alcotest.bool "bitwise repeatable timing and counters" true (a = b)

let fault_free_group_is_zero () =
  let report = run_injected ~inject:None 400 in
  List.iter
    (fun p -> check Alcotest.int ("faults." ^ p) 0 (stat_int report ("faults." ^ p)))
    [ "injected"; "detected"; "retried"; "remapped"; "quarantined"; "config_upsets" ]

(* {2 Property: any schedule, any loop — bit-exact or bust} *)

let gen_schedule =
  let open QCheck2.Gen in
  let kind =
    oneofl [ Fault.Transient_pe; Fault.Permanent_pe; Fault.Link_down; Fault.Config_upset; Fault.Port_degrade ]
  in
  let event =
    kind >>= fun kind ->
    (match kind with
    | Fault.Config_upset -> 1 -- 3
    | _ -> 1 -- 400)
    >>= fun at -> return { Fault.at; kind; coord = None }
  in
  small_nat >>= fun seed ->
  list_size (0 -- 4) event >>= fun events ->
  return (Fault.spec ~seed events)

let gen_case =
  QCheck2.Gen.pair Gen.loop_spec gen_schedule

let print_case (spec, sched) =
  Printf.sprintf "%s\n  inject %s seed %d" (Gen.loop_spec_print spec)
    (Fault.spec_to_string sched) sched.Fault.seed

let random_faults_stay_exact =
  QCheck2.Test.make ~name:"random fault schedules stay bit-exact" ~count:40
    ~print:print_case gen_case (fun (spec, sched) ->
      let prog, machine = Gen.build_loop spec in
      let expected =
        reference_of prog machine
      in
      let mem = machine.Machine.mem in
      let options = Controller.default_options ~inject:sched () in
      let report = Controller.run ~options prog machine in
      report.Controller.halt = Interp.Ecall_halt
      && Main_memory.equal expected.Machine.mem mem
      && Machine.arch_equal expected machine
      && report.Controller.total_cycles
         = report.Controller.cpu_cycles + report.Controller.accel_cycles
           + report.Controller.overhead_cycles)

let suites =
  [
    ( "fault",
      [
      Alcotest.test_case "spec parses and round-trips" `Quick spec_parses;
      Alcotest.test_case "spec rejects garbage" `Quick spec_rejects_garbage;
      Alcotest.test_case "injector is deterministic" `Quick injector_deterministic;
      Alcotest.test_case "transient fault is retried" `Quick transient_is_retried;
      Alcotest.test_case "permanent fault is remapped" `Quick permanent_is_remapped;
      Alcotest.test_case "retry budget quarantines" `Quick retry_budget_quarantines;
      Alcotest.test_case "no-spare fabric degrades to CPU" `Quick degrades_to_cpu_only;
      Alcotest.test_case "config upset repays the write" `Quick config_upset_repays_write;
      Alcotest.test_case "iteration budget aborts distinctly" `Quick iteration_budget_aborts;
      Alcotest.test_case "same spec, same run" `Quick same_spec_same_run;
      Alcotest.test_case "fault-free group is all zero" `Quick fault_free_group_is_zero;
        QCheck_alcotest.to_alcotest random_faults_stay_exact;
      ] );
  ]
