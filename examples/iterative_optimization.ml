(* The feedback loop of Section 4.3: execute a profiling window on the
   fabric, fold the measured per-node and per-edge latencies back into the
   performance model, remap under the measured weights, and adopt the new
   configuration only when the model says it pays. Also prints the Figure 16
   amortization curve for this kernel.

     dune exec examples/iterative_optimization.exe *)

let () =
  let k = Workloads.find "cfd" in
  let dfg = Runner.dfg_of_kernel k in
  let model = Perf_model.create dfg in
  let grid = Grid.m128 in
  let placement =
    match Mapper.map ~grid ~kind:Interconnect.Mesh_noc model with
    | Ok p -> p
    | Error e -> failwith e
  in
  let config = Accel_config.plain placement in
  Printf.printf "initial modeled iteration latency: %.1f cycles (static weights)\n"
    (Perf_model.iteration_latency model);

  (* Profiling window: 64 iterations on the fabric. *)
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  let res =
    match Engine.execute ~stop_after:64 ~config ~dfg ~machine ~hier () with
    | Ok r -> r
    | Error e -> failwith e
  in
  Printf.printf "profiling window: %d iterations, %d cycles\n" res.Engine.iterations
    res.Engine.cycles;
  for i = 0 to Dfg.node_count dfg - 1 do
    match Stats.find_hist res.Engine.measured (Printf.sprintf "node.%d.amat" i) with
    | Some h when h.Stats.hcount > 0 ->
      Printf.printf "  measured AMAT of node %d (%s): %.1f cycles\n" i
        (Disasm.to_string dfg.Dfg.nodes.(i).Dfg.instr)
        (Stats.hist_mean h)
    | Some _ | None -> ()
  done;

  (* Feed the counters back and ask the optimizer for a better mapping. *)
  Optimizer.absorb model res;
  Printf.printf "modeled latency under measured weights: %.1f cycles\n"
    (Perf_model.iteration_latency model);
  (match Optimizer.step ~grid ~kind:Interconnect.Mesh_noc ~mapper:Mapper.default_config
           ~model ~current:config
   with
  | Optimizer.Adopt { latency; previous; _ } ->
    Printf.printf "optimizer: ADOPT a remap, modeled %.1f -> %.1f cycles\n" previous latency
  | Optimizer.Keep latency ->
    Printf.printf "optimizer: KEEP the current mapping (modeled %.1f cycles)\n" latency);

  (* Amortization (Figure 16): configuration energy is a sunk cost that the
     per-iteration energy dilutes over time. *)
  let _, report = Runner.mesa ~grid k in
  let accel = Energy_model.accel_energy ~grid report.Controller.activity in
  let iters = report.Controller.activity.Activity.iterations in
  let e_iter = accel.Energy_model.total_nj /. float_of_int (max 1 iters) in
  let e_config =
    Energy_model.mesa_energy_nj ~busy_cycles:report.Controller.mesa_busy_cycles
  in
  Printf.printf "\namortization: config energy %.0f nJ, steady %.1f nJ/iteration\n"
    e_config e_iter;
  List.iter
    (fun n ->
      Printf.printf "  after %4d iterations: %.1f nJ/iteration\n" n
        ((e_config +. (float_of_int n *. e_iter)) /. float_of_int n))
    [ 1; 10; 30; 70; 150; 500 ];
  Printf.printf "break-even at ~%.0f iterations (paper: ~70)\n" (e_config /. e_iter)
