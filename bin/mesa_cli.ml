(* mesa_cli — inspect and run the MESA reproduction from the command line.

   Subcommands:
     list                     kernel registry
     disasm  <kernel>         disassemble a kernel
     dfg     <kernel>         show its LDFG (use --dot for Graphviz)
     map     <kernel>         map it and show the placement
     run     <kernel>         run under MESA and compare with CPU baselines
     bench   [experiment...]  regenerate the paper's tables/figures *)

open Cmdliner

let kernel_arg =
  let doc = "Benchmark kernel name (see `mesa_cli list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let grid_arg =
  let doc = "Accelerator configuration: 64, 128 or 512 PEs." in
  Arg.(value & opt int 128 & info [ "grid" ] ~docv:"PES" ~doc)

let grid_of = function
  | 64 -> Grid.m64
  | 128 -> Grid.m128
  | 512 -> Grid.m512
  | n -> Grid.of_pe_count n

(* Engine selection rides on MESA_ENGINE (read per execution by
   {!Engine.execute}), so one flag covers every run the subcommand makes —
   including those behind the controller and the fuzzer. *)
let engine_arg =
  let doc =
    "Accelerator engine: $(b,event) (wake-list scheduler, the default) or \
     $(b,reference) (the legacy per-node scan, kept as a bit-identical \
     oracle). Equivalent to setting MESA_ENGINE."
  in
  Arg.(
    value
    & opt (some (enum [ ("event", "event"); ("reference", "reference") ])) None
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

let set_engine = function
  | None -> ()
  | Some e -> Unix.putenv "MESA_ENGINE" e

let find_kernel name =
  match Workloads.find name with
  | k -> Ok k
  | exception Not_found ->
    Error (`Msg (Printf.sprintf "unknown kernel %S; try `mesa_cli list`" name))

let write_text path contents =
  try
    let oc = open_out path in
    output_string oc contents;
    output_char oc '\n';
    close_out oc;
    Ok ()
  with Sys_error e -> Error (`Msg ("cannot write " ^ e))

let read_json path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents ->
    Result.map_error (fun e -> `Msg (path ^ ": " ^ e)) (Json.of_string contents)
  | exception Sys_error e -> Error (`Msg ("cannot read " ^ e))

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    let t =
      Tables.create
        [
          ("kernel", Tables.Left);
          ("description", Tables.Left);
          ("loop size", Tables.Right);
          ("iterations", Tables.Right);
          ("parallel", Tables.Left);
        ]
    in
    List.iter
      (fun (k : Kernel.t) ->
        let dfg = Runner.dfg_of_kernel k in
        Tables.add_row t
          [
            k.Kernel.name;
            k.Kernel.description;
            string_of_int (Dfg.node_count dfg);
            Tables.icell k.Kernel.n;
            (if k.Kernel.parallel then "omp" else "-");
          ])
      (Workloads.all ());
    Tables.print t
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark kernels")
    Term.(const run $ const ())

(* ---------------- disasm ---------------- *)

let disasm_cmd =
  let run name =
    Result.map
      (fun (k : Kernel.t) -> print_string (Disasm.listing k.Kernel.program))
      (find_kernel name)
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a kernel")
    Term.(term_result (const run $ kernel_arg))

(* ---------------- dfg ---------------- *)

let dfg_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
  in
  let run name dot =
    Result.map
      (fun k ->
        let dfg = Runner.dfg_of_kernel k in
        if dot then print_string (Dfg.to_dot dfg)
        else begin
          Format.printf "%a@." Dfg.pp dfg;
          let model = Perf_model.create dfg in
          Format.printf "static iteration latency: %.1f cycles@."
            (Perf_model.iteration_latency model);
          Format.printf "critical path: %s@."
            (String.concat " -> "
               (List.map string_of_int (Perf_model.critical_path model)))
        end)
      (find_kernel name)
  in
  Cmd.v (Cmd.info "dfg" ~doc:"Show a kernel's logical dataflow graph")
    Term.(term_result (const run $ kernel_arg $ dot))

(* ---------------- map ---------------- *)

let map_cmd =
  let run name pes =
    Result.bind (find_kernel name) (fun k ->
        let grid = grid_of pes in
        let dfg = Runner.dfg_of_kernel k in
        let model = Perf_model.create dfg in
        match Mapper.map ~grid ~kind:Interconnect.Mesh_noc model with
        | Error e -> Error (`Msg ("mapping failed: " ^ e))
        | Ok p ->
          Format.printf "%a@." Placement.pp p;
          Format.printf "modeled iteration latency: %.1f cycles@."
            (Perf_model.iteration_latency model);
          let mo = Mem_opt.analyze dfg in
          Format.printf
            "memory optimizations: %d forwarding pair(s), %d vector group(s), %d prefetched load(s)@."
            (List.length mo.Mem_opt.forwarding)
            (List.length mo.Mem_opt.vector_groups)
            (List.length mo.Mem_opt.prefetched);
          let ld =
            Loop_opt.decide ~grid ~dfg
              ~pragma:(Program.pragma_at k.Kernel.program dfg.Dfg.entry_addr)
          in
          Format.printf "loop optimizations: tiling x%d, pipelined %b@."
            ld.Loop_opt.tiling ld.Loop_opt.pipelined;
          Ok ())
  in
  Cmd.v (Cmd.info "map" ~doc:"Run Algorithm 1 and show the spatial placement")
    Term.(term_result (const run $ kernel_arg $ grid_arg))

(* ---------------- run ---------------- *)

let run_cmd =
  let no_opt =
    Arg.(value & flag & info [ "no-optimize" ] ~doc:"Disable MESA's optimizations.")
  in
  let no_iter =
    Arg.(value & flag & info [ "no-iterative" ] ~doc:"Disable runtime reoptimization.")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Dump the MESA run's full counter tree as JSON to $(docv).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the offload/region timeline to $(docv) in Chrome trace_event \
             format (load in chrome://tracing or Perfetto).")
  in
  let inject_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:
            "Arm a deterministic fault schedule: comma-separated \
             KIND@AT[:ROWxCOL] events where KIND is transient, permanent, \
             link, config or ports; AT is the fabric iteration (or \
             configuration-write ordinal for config) at which the event \
             fires; ROWxCOL pins the victim PE. Example: \
             'transient@100,permanent@300:2x5,config@1'.")
  in
  let fault_seed =
    Arg.(
      value
      & opt int 0x5EED
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:
            "PRNG seed for the fault injector's drawn victims and corruption \
             values; with --inject, the whole run is reproducible from SPEC \
             and $(docv) alone.")
  in
  let write_file path contents =
    try
      let oc = open_out path in
      output_string oc contents;
      output_char oc '\n';
      close_out oc;
      Ok ()
    with Sys_error e -> Error (`Msg ("cannot write " ^ e))
  in
  let parse_inject fault_seed = function
    | None -> Ok None
    | Some s ->
      Result.map_error
        (fun e -> `Msg ("bad --inject spec: " ^ e))
        (Result.map Option.some (Fault.spec_of_string ~seed:fault_seed s))
  in
  let run name pes no_opt no_iter inject fault_seed stats_json trace_out engine =
    set_engine engine;
    Result.bind (find_kernel name) (fun (k : Kernel.t) ->
        Result.bind (parse_inject fault_seed inject) (fun inject ->
        let grid = grid_of pes in
        let single = Runner.single_core k in
        let multi = Runner.multicore k in
        let mesa, report =
          Runner.mesa ~grid ~optimize:(not no_opt) ~iterative:(not no_iter)
            ?inject k
        in
        let t =
          Tables.create
            ~title:(Printf.sprintf "%s (%s)" k.Kernel.name k.Kernel.description)
            [
              ("configuration", Tables.Left);
              ("cycles", Tables.Right);
              ("speedup", Tables.Right);
              ("energy (uJ)", Tables.Right);
              ("outputs", Tables.Left);
            ]
        in
        let row (m : Runner.measurement) =
          Tables.add_row t
            [
              m.Runner.label;
              Tables.icell m.Runner.cycles;
              Tables.xcell (Runner.speedup ~baseline:single m);
              Tables.fcell (m.Runner.energy_nj /. 1000.0);
              (match m.Runner.checked with Ok () -> "ok" | Error e -> "FAIL: " ^ e);
            ]
        in
        row single;
        row multi;
        row mesa;
        Tables.print t;
        Printf.printf
          "\nMESA breakdown: cpu %d + accel %d + overhead %d cycles; %d offload(s); translation busy %d cycles\n"
          report.Controller.cpu_cycles report.Controller.accel_cycles
          report.Controller.overhead_cycles report.Controller.offloads
          report.Controller.mesa_busy_cycles;
        List.iter
          (fun (r : Controller.region_report) ->
            if r.Controller.accepted then begin
              Printf.printf
                "region 0x%x: %d instrs, tiling x%d, %d iterations on fabric, %d reconfiguration(s)\n"
                r.Controller.entry r.Controller.size r.Controller.tiling
                r.Controller.accel_iterations r.Controller.reconfigurations;
              if
                r.Controller.faults_detected > 0
                || r.Controller.reject_reason <> None
              then
                Printf.printf
                  "  faults: %d detected, %d retried, %d remap(s), %d quarantine(s)%s\n"
                  r.Controller.faults_detected r.Controller.fault_retries
                  r.Controller.fault_remaps r.Controller.quarantines
                  (match r.Controller.reject_reason with
                  | Some why -> "; aborted: " ^ why
                  | None -> "")
            end
            else
              Printf.printf "region 0x%x rejected: %s\n" r.Controller.entry
                (Option.value r.Controller.reject_reason ~default:"?"))
          report.Controller.regions;
        (if inject <> None then
           let g p =
             match Stats.find report.Controller.stats ("faults." ^ p) with
             | Some (Stats.VInt i) -> i
             | _ -> 0
           in
           Printf.printf
             "fault summary: %d injected, %d detected, %d retried, %d remapped, %d quarantined, %d config upset(s)\n"
             (g "injected") (g "detected") (g "retried") (g "remapped")
             (g "quarantined") (g "config_upsets"));
        let dump what path json =
          match path with
          | None -> Ok ()
          | Some p ->
            Result.map
              (fun () -> Printf.printf "%s written to %s\n" what p)
              (write_file p (Json.to_string ~indent:2 json))
        in
        Result.bind
          (dump "stats" stats_json (Stats.to_json report.Controller.stats))
          (fun () ->
            dump "trace" trace_out
              (Trace.to_chrome_json report.Controller.timeline))))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a kernel under MESA against the CPU baselines")
    Term.(
      term_result
        (const run $ kernel_arg $ grid_arg $ no_opt $ no_iter $ inject_arg
       $ fault_seed $ stats_json $ trace_out $ engine_arg))

(* ---------------- profile ---------------- *)

let profile_cmd =
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the profile as diffable mesa-profile-v1 JSON to $(docv) \
             (feed two of these to `mesa_cli profile-diff`).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the full Perfetto timeline to $(docv): controller spans on \
             lane (0,0) plus one lane per PE / load-store entry / cache port.")
  in
  let no_opt =
    Arg.(value & flag & info [ "no-optimize" ] ~doc:"Disable MESA's optimizations.")
  in
  let no_iter =
    Arg.(value & flag & info [ "no-iterative" ] ~doc:"Disable runtime reoptimization.")
  in
  let run name pes no_opt no_iter json_out trace_out =
    Result.bind (find_kernel name) (fun (k : Kernel.t) ->
        let grid = grid_of pes in
        let _m, report =
          Runner.mesa ~grid ~optimize:(not no_opt) ~iterative:(not no_iter)
            ~profile:true k
        in
        match Profile.of_report ~kernel:k.Kernel.name report with
        | Error e -> Error (`Msg e)
        | Ok p ->
          print_string (Profile.render p);
          if not (Profile.closes p) then
            Error (`Msg "internal error: profile buckets do not close")
          else
            let dump what path json =
              match path with
              | None -> Ok ()
              | Some f ->
                Result.map
                  (fun () -> Printf.printf "%s written to %s\n" what f)
                  (write_text f (Json.to_string ~indent:2 json))
            in
            Result.bind (dump "profile" json_out (Profile.to_json p)) (fun () ->
                match trace_out with
                | None -> Ok ()
                | Some _ ->
                  let att = Option.get report.Controller.attribution in
                  dump "trace" trace_out
                    (Trace.to_chrome_json
                       (report.Controller.timeline @ Profile.timeline att))))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a kernel with cycle attribution: per-PE stall taxonomy, \
          utilization heatmaps, II decomposition and the dominant bottleneck")
    Term.(
      term_result
        (const run $ kernel_arg $ grid_arg $ no_opt $ no_iter $ json_out
       $ trace_out))

(* ---------------- profile-diff ---------------- *)

let profile_diff_cmd =
  let before_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BEFORE.json"
           ~doc:"Baseline profile (from `mesa_cli profile --json`).")
  in
  let after_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"AFTER.json"
           ~doc:"Candidate profile to gate.")
  in
  let max_regress =
    Arg.(
      value & opt float 5.0
      & info [ "max-regress" ] ~docv:"PCT"
          ~doc:
            "Fail (non-zero exit) when any stall bucket or the attributed \
             cycle total grows by more than $(docv) percent.")
  in
  let tolerance =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string float) []
      & info [ "tolerance" ] ~docv:"BUCKET=PCT"
          ~doc:
            "Per-bucket override of --max-regress (repeatable), e.g. \
             --tolerance noc_stall=20.")
  in
  let run before after max_regress tolerances =
    let ( let* ) = Result.bind in
    let load path =
      let* j = read_json path in
      Result.map_error (fun e -> `Msg (path ^ ": " ^ e)) (Profile.of_json j)
    in
    let* b = load before in
    let* a = load after in
    if not (Profile.closes a) then
      Error (`Msg (after ^ ": profile buckets do not close"))
    else
      match Profile.diff ~tolerances ~max_regress b a with
      | [] ->
        Printf.printf "profile-diff: OK (no bucket grew past %.1f%%)\n" max_regress;
        Ok ()
      | vs ->
        print_string (Profile.render_violations vs);
        Error
          (`Msg
            (Printf.sprintf "%d profile regression(s) past the threshold"
               (List.length vs)))
  in
  Cmd.v
    (Cmd.info "profile-diff"
       ~doc:
         "Gate one profile JSON against another: non-zero exit when a stall \
          bucket regresses past the tolerance")
    Term.(
      term_result
        (const run $ before_arg $ after_arg $ max_regress $ tolerance))

(* ---------------- stats-diff ---------------- *)

let stats_diff_cmd =
  let before_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BEFORE.json"
           ~doc:"Baseline counter tree (from `mesa_cli run --stats-json`).")
  in
  let after_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"AFTER.json"
           ~doc:"Candidate counter tree to gate.")
  in
  let max_regress =
    Arg.(
      value & opt float 0.0
      & info [ "max-regress" ] ~docv:"PCT"
          ~doc:
            "Fail (non-zero exit) when any gated counter grows by more than \
             $(docv) percent (default 0: any increase fails).")
  in
  let paths =
    Arg.(
      value & opt_all string []
      & info [ "path" ] ~docv:"PREFIX"
          ~doc:
            "Gate only counters whose dotted path starts with $(docv) \
             (repeatable); every changed counter is still printed. Default: \
             gate the cycle accounts \
             (controller.total_cycles/accel_cycles/overhead_cycles and \
             cpu.cycles).")
  in
  let run before after max_regress paths =
    let ( let* ) = Result.bind in
    let load path =
      let* j = read_json path in
      Result.map_error (fun e -> `Msg (path ^ ": " ^ e)) (Stats.of_json j)
    in
    let* b = load before in
    let* a = load after in
    let deltas = Stats.diff b a in
    let gated_prefixes =
      match paths with
      | [] ->
        [
          "controller.total_cycles"; "controller.accel_cycles";
          "controller.overhead_cycles"; "cpu.cycles";
        ]
      | ps -> ps
    in
    let gated (d : Stats.delta) =
      List.exists
        (fun p -> String.starts_with ~prefix:p d.Stats.path)
        gated_prefixes
    in
    List.iter
      (fun (d : Stats.delta) ->
        Printf.printf "  %c %-48s %.6g -> %.6g\n"
          (if gated d then '*' else ' ')
          d.Stats.path d.Stats.before d.Stats.after)
      deltas;
    let violations =
      List.filter
        (fun (d : Stats.delta) ->
          gated d
          && d.Stats.after
             > (d.Stats.before *. (1.0 +. (max_regress /. 100.0))) +. 1e-9)
        deltas
    in
    match violations with
    | [] ->
      Printf.printf "stats-diff: OK (%d changed counter(s), none gated past %.1f%%)\n"
        (List.length deltas) max_regress;
      Ok ()
    | vs ->
      List.iter
        (fun (d : Stats.delta) ->
          Printf.printf "REGRESSED %s: %.6g -> %.6g (limit +%.1f%%)\n"
            d.Stats.path d.Stats.before d.Stats.after max_regress)
        vs;
      Error
        (`Msg
          (Printf.sprintf "%d counter regression(s) past the threshold"
             (List.length vs)))
  in
  Cmd.v
    (Cmd.info "stats-diff"
       ~doc:
         "Gate one stats JSON against another: non-zero exit when a gated \
          counter regresses past the tolerance")
    Term.(term_result (const run $ before_arg $ after_arg $ max_regress $ paths))

(* ---------------- schedule ---------------- *)

let schedule_cmd =
  let run name pes =
    Result.bind (find_kernel name) (fun k ->
        let grid = grid_of pes in
        let dfg = Runner.dfg_of_kernel k in
        let model = Perf_model.create dfg in
        match Mapper.map ~grid ~kind:Interconnect.Mesh_noc model with
        | Error e -> Error (`Msg e)
        | Ok placement ->
          let slots = Schedule_view.compute model placement in
          print_string (Schedule_view.gantt dfg slots);
          Ok ())
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Show the one-iteration Gantt schedule of a mapped kernel")
    Term.(term_result (const run $ kernel_arg $ grid_arg))

(* ---------------- imap ---------------- *)

let imap_cmd =
  let run name =
    Result.map
      (fun k ->
        let dfg = Runner.dfg_of_kernel k in
        print_string (Imap_fsm.timing_diagram Mapper.default_config dfg);
        Printf.printf "total mapping cycles: %d\n"
          (Imap_fsm.cycles Mapper.default_config dfg))
      (find_kernel name)
  in
  Cmd.v
    (Cmd.info "imap" ~doc:"Show the Figure 8 instruction-mapping FSM timing diagram")
    Term.(term_result (const run $ kernel_arg))

(* ---------------- anneal ---------------- *)

let anneal_cmd =
  let proposals =
    Arg.(value & opt int 2000 & info [ "proposals" ] ~doc:"Annealing proposals.")
  in
  let seed =
    Arg.(
      value
      & opt int 0x5A5A
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "PRNG seed for the annealer's proposal/acceptance draws; runs \
             with the same seed are bit-identical.")
  in
  let run name pes proposals seed =
    Result.bind (find_kernel name) (fun k ->
        let grid = grid_of pes in
        let dfg = Runner.dfg_of_kernel k in
        let model = Perf_model.create dfg in
        match Mapper.map ~grid ~kind:Interconnect.Mesh_noc model with
        | Error e -> Error (`Msg e)
        | Ok greedy ->
          let refined, stats =
            Mapper_anneal.refine ~seed ~proposals ~grid ~kind:Interconnect.Mesh_noc
              ~model greedy
          in
          Format.printf "%a@." Placement.pp refined;
          Printf.printf
            "greedy %.1f -> annealed %.1f modeled cycles (%d/%d proposals accepted, %d improving)\n"
            stats.Mapper_anneal.initial_latency stats.Mapper_anneal.final_latency
            stats.Mapper_anneal.accepted stats.Mapper_anneal.proposals
            stats.Mapper_anneal.improved;
          Ok ())
  in
  Cmd.v
    (Cmd.info "anneal"
       ~doc:"Refine Algorithm 1's placement with simulated annealing (future-work mapper)")
    Term.(term_result (const run $ kernel_arg $ grid_arg $ proposals $ seed))

(* ---------------- bench ---------------- *)

let bench_cmd =
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"fig11..fig16, table1, table2")
  in
  let run names =
    let all = Experiments.all in
    let chosen =
      match names with
      | [] -> List.map fst (all ()) |> fun _ -> None
      | ns -> Some ns
    in
    match chosen with
    | None ->
      List.iter
        (fun (_, (o : Experiments.outcome)) ->
          Tables.print o.Experiments.table;
          print_newline ())
        (all ());
      Ok ()
    | Some ns ->
      let table = [
        ("fig11", fun () -> Experiments.fig11 ());
        ("fig12", fun () -> Experiments.fig12 ());
        ("fig13", fun () -> Experiments.fig13 ());
        ("fig14", fun () -> Experiments.fig14 ());
        ("fig15", fun () -> Experiments.fig15 ());
        ("fig16", fun () -> Experiments.fig16 ());
        ("table1", fun () -> Experiments.table1 ());
        ("table2", fun () -> Experiments.table2 ());
        ("ablation", fun () -> Ablation.experiment ());
        ("dse", fun () -> Dse.experiment ());
        ("dse-guided", fun () -> Dse.guided_experiment ());
        ("refine", fun () -> Refine.experiment ());
      ]
      in
      List.fold_left
        (fun acc n ->
          Result.bind acc (fun () ->
              match List.assoc_opt n table with
              | Some f ->
                Tables.print (f ()).Experiments.table;
                print_newline ();
                Ok ()
              | None -> Error (`Msg ("unknown experiment " ^ n))))
        (Ok ()) ns
  in
  Cmd.v (Cmd.info "bench" ~doc:"Regenerate the paper's tables and figures")
    Term.(term_result (const run $ names))

(* ---------------- refine ---------------- *)

let refine_cmd =
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Tie-break seed for candidate ranking.")
  in
  let max_rounds =
    Arg.(
      value & opt int 8
      & info [ "max-rounds" ] ~docv:"N" ~doc:"Refinement rounds to attempt.")
  in
  let beam =
    Arg.(
      value & opt int 4
      & info [ "beam" ] ~docv:"N"
          ~doc:"Model-ranked candidates engine-confirmed per round.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the mesa-refine-v1 report (cycle counts, search counters).")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Write a mesa-profile-v1 JSON of the refined placement (feed to \
             `mesa_cli profile-diff` against --baseline-profile-out).")
  in
  let baseline_profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline-profile-out" ] ~docv:"FILE"
          ~doc:"Write a mesa-profile-v1 JSON of the unrefined placement.")
  in
  let run name pes seed max_rounds beam json_out profile_out baseline_profile_out
      =
    Result.bind (find_kernel name) (fun (k : Kernel.t) ->
        let grid = grid_of pes in
        match Refine.run ~seed ~max_rounds ~beam ~grid k with
        | Error e -> Error (`Msg e)
        | Ok r ->
          let gain =
            100.0
            *. float_of_int (r.Refine.baseline_cycles - r.Refine.refined_cycles)
            /. float_of_int (max 1 r.Refine.baseline_cycles)
          in
          Printf.printf
            "%s: baseline %d cycles -> refined %d cycles (%.1f%% better)\n"
            r.Refine.kernel r.Refine.baseline_cycles r.Refine.refined_cycles gain;
          Printf.printf
            "model: baseline %d, refined %d; %d round(s), %d proposed, %d \
             confirmed, %d accepted\n"
            r.Refine.model_baseline r.Refine.model_refined r.Refine.rounds
            r.Refine.proposed r.Refine.confirmed r.Refine.accepted;
          let dump what path json =
            match path with
            | None -> Ok ()
            | Some f ->
              Result.map
                (fun () -> Printf.printf "%s written to %s\n" what f)
                (write_text f (Json.to_string ~indent:2 json))
          in
          let dump_profile what path placement =
            match path with
            | None -> Ok ()
            | Some _ -> (
              match Refine.profile r placement with
              | Error e -> Error (`Msg (what ^ ": " ^ e))
              | Ok p -> dump what path (Profile.to_json p))
          in
          let ( let* ) = Result.bind in
          let* () = dump "report" json_out (Refine.report_to_json r) in
          let* () = dump_profile "profile" profile_out r.Refine.placement in
          dump_profile "baseline profile" baseline_profile_out r.Refine.baseline)
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:
         "Refine a kernel's placement with the analytical cost model: \
          model-ranked move/swap candidates, each accepted only after the \
          event engine confirms the predicted cycle win")
    Term.(
      term_result
        (const run $ kernel_arg $ grid_arg $ seed $ max_rounds $ beam $ json_out
       $ profile_out $ baseline_profile_out))

(* ---------------- dse ---------------- *)

let dse_cmd =
  let list_opt name ~docv ~doc default =
    Arg.(value & opt (some string) default & info [ name ] ~docv ~doc)
  in
  let kernels =
    list_opt "kernels" ~docv:"K1,K2,..."
      ~doc:"Comma-separated kernel subset (default nn,kmeans,bfs)." None
  in
  let grids =
    list_opt "grids" ~docv:"RxC,..."
      ~doc:"Grid geometries, e.g. 4x4,8x8,16x8 (default 4x4,8x4,8x8,16x8)." None
  in
  let ports =
    list_opt "ports" ~docv:"N,..." ~doc:"Cache-port counts (default 2,4,8)." None
  in
  let kinds =
    list_opt "kinds" ~docv:"KIND,..."
      ~doc:"Interconnect backends: mesh_noc, hier_rows, pure_mesh (default mesh_noc)."
      None
  in
  let l1 = list_opt "l1" ~docv:"KB,..." ~doc:"L1 capacities in KB (default 64)." None in
  let l2 =
    list_opt "l2" ~docv:"KB,..." ~doc:"L2 capacities in KB (default 8192)." None
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Worker domains; the result is bit-identical for any value.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Rewrite $(docv) after every completed point (atomic rename).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Restore completed points from --checkpoint before sweeping; the \
             final result is bit-identical to an uninterrupted run.")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Cap the sweep at $(docv) points: greedy exploration from \
             deterministic seeds, expanding to lattice neighbours of the \
             current Pareto frontier.")
  in
  let stop_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) fresh measurements (deterministic stand-in \
             for an interrupted sweep; pair with --checkpoint).")
  in
  let strategy_arg =
    Arg.(
      value
      & opt string "exhaustive"
      & info [ "strategy" ] ~docv:"S"
          ~doc:
            "Search strategy: $(b,exhaustive) measures every lattice point; \
             $(b,guided) calibrates the analytical cost model on one seed per \
             kernel, ranks the rest by the surrogate and measures \
             successively-halved batches until every unmeasured candidate is \
             dominated — at most half the lattice is ever measured.")
  in
  let defect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "defect" ] ~docv:"D"
          ~doc:
            "Inject a search defect (mutation testing): $(b,inverted-rank) \
             makes the guided surrogate rank candidates worst-first, which \
             must demonstrably miss the Pareto frontier.")
  in
  let frontier_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "frontier-out" ] ~docv:"FILE"
          ~doc:
            "Write the Pareto-frontier point labels, sorted, one per line — \
             plain-diffable against another run's frontier.")
  in
  let max_frac =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-frac" ] ~docv:"X"
          ~doc:
            "Fail (non-zero exit) when more than fraction $(docv) of the \
             exhaustive lattice was engine-measured — the guided-search \
             efficiency gate.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the result (spec, outcomes, frontier) as JSON to $(docv).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write per-point spans in Chrome trace_event format to $(docv).")
  in
  let top =
    Arg.(
      value
      & opt (some int) None
      & info [ "top" ] ~docv:"N" ~doc:"Show only the $(docv) best-ranked rows.")
  in
  let split s = String.split_on_char ',' s |> List.filter (fun x -> x <> "") in
  let parse_list what conv field s =
    match s with
    | None -> Ok field
    | Some s ->
      List.fold_left
        (fun acc tok ->
          Result.bind acc (fun xs ->
              match conv tok with
              | Ok v -> Ok (v :: xs)
              | Error e -> Error (`Msg (Printf.sprintf "bad %s %S: %s" what tok e))))
        (Ok []) (split s)
      |> Result.map List.rev
  in
  let int_tok t =
    match int_of_string_opt t with Some i -> Ok i | None -> Error "not an integer"
  in
  let grid_tok t =
    match String.index_opt t 'x' with
    | Some i -> (
      match
        ( int_of_string_opt (String.sub t 0 i),
          int_of_string_opt (String.sub t (i + 1) (String.length t - i - 1)) )
      with
      | Some r, Some c -> Ok (r, c)
      | _ -> Error "expected ROWSxCOLS")
    | None -> Error "expected ROWSxCOLS"
  in
  let run kernels grids ports kinds l1 l2 jobs checkpoint resume budget
      stop_after strategy defect frontier_out max_frac out trace_out top =
    let d = Dse.default_spec in
    let ( let* ) = Result.bind in
    let* kernels = parse_list "kernel" (fun t -> Ok t) d.Dse.kernels kernels in
    let* grids = parse_list "grid" grid_tok d.Dse.grids grids in
    let* ports = parse_list "port count" int_tok d.Dse.ports ports in
    let* kinds = parse_list "interconnect" Dse.kind_of_string d.Dse.kinds kinds in
    let* l1_kb = parse_list "L1 capacity" int_tok d.Dse.l1_kb l1 in
    let* l2_kb = parse_list "L2 capacity" int_tok d.Dse.l2_kb l2 in
    let* strategy =
      Result.map_error (fun e -> `Msg e) (Dse.strategy_of_string strategy)
    in
    let* defect =
      match defect with
      | None -> Ok None
      | Some "inverted-rank" -> Ok (Some Dse.Inverted_rank)
      | Some d -> Error (`Msg (Printf.sprintf "unknown defect %S (inverted-rank)" d))
    in
    let spec = { Dse.kernels; grids; ports; kinds; l1_kb; l2_kb; budget } in
    match Dse.run ?jobs ?checkpoint ~resume ?stop_after ~strategy ?defect spec with
    | Error e -> Error (`Msg e)
    | Ok r ->
      Tables.print (Dse.table ?top r);
      Printf.printf
        "\n%d point(s): %d measured fresh, %d restored, %d on the Pareto frontier%s\n"
        (List.length r.Dse.outcomes) r.Dse.evaluated r.Dse.restored
        (List.length r.Dse.front)
        (if r.Dse.complete then "" else " [interrupted by --stop-after]");
      Printf.printf "engine-measured %d of %d lattice point(s) (%.1f%%)\n"
        r.Dse.measured r.Dse.exhaustive_count
        (100.0 *. float_of_int r.Dse.measured
        /. float_of_int (max 1 r.Dse.exhaustive_count));
      List.iter
        (fun (o : Dse.outcome) ->
          Printf.printf "  frontier: %-40s perf %.3f it/kc, %.3f it/kc/W\n"
            (Dse.point_label o.Dse.point)
            o.Dse.perf o.Dse.perf_per_watt)
        r.Dse.front;
      let write path json =
        let oc = open_out path in
        output_string oc (Json.to_string ~indent:2 json);
        output_char oc '\n';
        close_out oc;
        Printf.printf "written %s\n" path
      in
      Option.iter (fun p -> write p (Dse.result_to_json r)) out;
      Option.iter (fun p -> write p (Trace.to_chrome_json r.Dse.timeline)) trace_out;
      Option.iter
        (fun p ->
          let labels =
            List.sort compare
              (List.map (fun (o : Dse.outcome) -> Dse.point_label o.Dse.point) r.Dse.front)
          in
          let oc = open_out p in
          List.iter (fun l -> output_string oc (l ^ "\n")) labels;
          close_out oc;
          Printf.printf "written %s\n" p)
        frontier_out;
      (match max_frac with
      | Some x
        when float_of_int r.Dse.measured
             > x *. float_of_int r.Dse.exhaustive_count ->
        Error
          (`Msg
            (Printf.sprintf
               "measured %d of %d lattice points, exceeding --max-frac %g"
               r.Dse.measured r.Dse.exhaustive_count x))
      | _ -> Ok ())
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Explore the joint design space (grids, ports, interconnects, cache \
          sizes) with a deterministic, resumable sweep — exhaustively or \
          guided by the analytical cost model")
    Term.(
      term_result
        (const run $ kernels $ grids $ ports $ kinds $ l1 $ l2 $ jobs
       $ checkpoint $ resume $ budget $ stop_after $ strategy_arg $ defect_arg
       $ frontier_out $ max_frac $ out $ trace_out $ top))

let fuzz_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Master seed; the whole campaign is a pure function of it.")
  in
  let count =
    Arg.(
      value & opt int 500
      & info [ "count" ] ~docv:"N" ~doc:"Number of (program, fabric) cases.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Worker domains; the summary is bit-identical for any value.")
  in
  let corpus =
    Arg.(
      value & opt string "fuzz-corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Directory for minimized failing-case JSON files.")
  in
  let max_shrink =
    Arg.(
      value & opt int 300
      & info [ "max-shrink" ] ~docv:"N"
          ~doc:"Re-execution budget for shrinking each failure.")
  in
  let defect =
    Arg.(
      value
      & opt (some string) None
      & info [ "defect" ] ~docv:"KIND"
          ~doc:
            "Arm a deliberate lowering bug (store-skew) to mutation-test the \
             fuzzer: the run must fail and shrink it.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run one corpus entry instead of a campaign.")
  in
  let run seed count jobs corpus max_shrink defect replay engine =
    set_engine engine;
    let ( let* ) = Result.bind in
    let* defect =
      match defect with
      | None -> Ok None
      | Some s -> (
        match Tile_lower.defect_of_string s with
        | Ok d -> Ok (Some d)
        | Error e -> Error (`Msg e))
    in
    match replay with
    | Some path ->
      (* A missing or malformed corpus file is a usage error: one line on
         stderr and a non-zero exit, never a backtrace — and never
         confused with a genuine differential mismatch. *)
      let* text =
        match
          let ic = open_in path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | text -> Ok text
        | exception Sys_error e -> Error (`Msg ("cannot replay: " ^ e))
      in
      let* j =
        Result.map_error
          (fun e -> `Msg (path ^ ": not a corpus entry: " ^ e))
          (Json.of_string text)
      in
      let* () =
        match (Json.member "fabric" j, Json.member "shrunk" j, Json.member "spec" j) with
        | None, _, _ ->
          Error (`Msg (path ^ ": not a corpus entry: no \"fabric\" field"))
        | _, None, None ->
          Error (`Msg (path ^ ": not a corpus entry: no \"shrunk\" or \"spec\" field"))
        | _ -> Ok ()
      in
      (match Fuzz.replay ?defect j with
      | Ok o ->
        Printf.printf "replay ok: %d cycles, %d offload(s), checksum %d\n"
          o.Fuzz.cycles o.Fuzz.offloads o.Fuzz.mem_checksum;
        Ok ()
      | Error e ->
        Printf.printf "replay still fails: %s\n" e;
        exit 1)
    | None ->
      let s = Fuzz.run ?jobs ?defect ~max_shrink ~seed ~count () in
      Printf.printf
        "fuzz: seed %d, %d case(s), %d offloaded, %d offload(s) total, digest %016x\n"
        seed s.Fuzz.cases s.Fuzz.offloaded_cases s.Fuzz.total_offloads
        s.Fuzz.digest;
      if s.Fuzz.failures = [] then begin
        Printf.printf "no differential mismatches\n";
        Ok ()
      end
      else begin
        List.iter
          (fun (f : Fuzz.failure) ->
            let path = Fuzz.write_corpus ~dir:corpus ~master_seed:seed f in
            Printf.printf
              "FAIL case %d (kernel seed %d, %s): %s\n  shrunk to %d statement(s) in %d step(s): %s\n  corpus: %s\n"
              f.Fuzz.index f.Fuzz.kernel_seed
              (Fuzz.fabric_to_string f.Fuzz.fabric)
              f.Fuzz.detail
              (Tile_dsl.stmt_count f.Fuzz.shrunk)
              f.Fuzz.shrink_steps f.Fuzz.shrunk_detail path)
          s.Fuzz.failures;
        Printf.printf "%d failing case(s)\n" (List.length s.Fuzz.failures);
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the whole pipeline: random tile-DSL programs × \
          random fabrics, interpreter vs accelerator vs DSL reference, with \
          automatic shrinking of failures to a minimal corpus")
    Term.(
      term_result
        (const run $ seed $ count $ jobs $ corpus $ max_shrink $ defect $ replay
       $ engine_arg))

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/mesad.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path of the daemon.")

let serve_cmd =
  let shards =
    Arg.(
      value
      & opt int Service.default_config.Service.shards
      & info [ "shards" ] ~docv:"N" ~doc:"Logical fabric instances.")
  in
  let shard_pes =
    Arg.(
      value
      & opt int Service.default_config.Service.shard_pes
      & info [ "shard-pes" ] ~docv:"PES" ~doc:"PEs per shard grid: 64, 128 or 512.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains executing requests.")
  in
  let queue_depth =
    Arg.(
      value
      & opt int Service.default_config.Service.queue_depth
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"In-flight requests admitted before shedding with overloaded.")
  in
  let max_retries =
    Arg.(
      value
      & opt int Service.default_config.Service.max_retries
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Service-level retry budget after a quarantining run.")
  in
  let breaker_threshold =
    Arg.(
      value
      & opt int Breaker.default_config.Breaker.trip_threshold
      & info [ "breaker-threshold" ] ~docv:"N"
          ~doc:"Consecutive shard faults before its circuit breaker opens.")
  in
  let breaker_cooldown =
    Arg.(
      value
      & opt int Breaker.default_config.Breaker.cooldown
      & info [ "breaker-cooldown" ] ~docv:"N"
          ~doc:
            "Admitted requests an open breaker waits before its half-open \
             probe (doubles on reopen).")
  in
  let default_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline when the request carries none.")
  in
  let seed =
    Arg.(
      value
      & opt int Service.default_config.Service.seed
      & info [ "seed" ] ~docv:"S" ~doc:"Master seed for retry-backoff jitter.")
  in
  let no_warm =
    Arg.(
      value & flag
      & info [ "no-warm" ]
          ~doc:"Skip pre-translating the kernel registry at startup.")
  in
  let stats_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-out" ] ~docv:"FILE"
          ~doc:
            "Write the stats snapshot as JSON: the final drained snapshot \
             on shutdown, and (with --profile-window) a fresh one on every \
             completed profiling window. Writes are atomic (tmp + rename), \
             so a concurrent reader always sees a complete snapshot.")
  in
  let profile_window =
    Arg.(
      value
      & opt (some int) None
      & info [ "profile-window" ] ~docv:"N"
          ~doc:
            "Profile every N-th clean run (pure observation; results stay \
             bit-identical) and feed the measured per-node oracles into a \
             background refine pass whose confirmed-faster placements are \
             swapped into the warm translation memo — subsequent requests \
             for that kernel can only get faster. Progress is counted in \
             the telemetry stats group.")
  in
  let run socket shards shard_pes jobs queue_depth max_retries
      breaker_threshold breaker_cooldown default_deadline seed no_warm
      stats_out profile_window =
    let cfg =
      {
        Service.default_config with
        Service.shards;
        shard_pes;
        jobs = Option.value jobs ~default:Service.default_config.Service.jobs;
        queue_depth;
        max_retries;
        breaker =
          {
            Breaker.default_config with
            Breaker.trip_threshold = breaker_threshold;
            cooldown = breaker_cooldown;
          };
        seed;
        default_deadline_ms = default_deadline;
        warm = not no_warm;
        profile_window;
      }
    in
    match Mesad.start ~service_config:cfg ~socket () with
    | exception Failure e -> Error (`Msg e)
    | exception Unix.Unix_error (err, _, _) ->
      Error (`Msg (socket ^ ": " ^ Unix.error_message err))
    | d ->
      (* Atomic snapshot flush: write beside the target, then rename, so a
         reader polling the file mid-run never sees a torn JSON object.
         One lock serializes window-hook flushes from concurrent workers
         against each other and against the final shutdown write. *)
      let flush_lock = Mutex.create () in
      let write_stats snap =
        Option.iter
          (fun path ->
            Mutex.lock flush_lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock flush_lock)
              (fun () ->
                try
                  let tmp = path ^ ".tmp" in
                  let oc = open_out tmp in
                  output_string oc (Json.to_string (Stats.to_json snap));
                  output_char oc '\n';
                  close_out oc;
                  Sys.rename tmp path
                with Sys_error e ->
                  Printf.eprintf "mesad: stats flush failed: %s\n%!" e))
          stats_out
      in
      if profile_window <> None then
        Service.set_on_window (Mesad.service d) write_stats;
      let stop_requested = Atomic.make false in
      let request _ = Atomic.set stop_requested true in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle request);
      Sys.set_signal Sys.sigint (Sys.Signal_handle request);
      Printf.printf "mesad: serving on %s (%d shard(s) of %d PEs, %d worker(s))\n%!"
        socket cfg.Service.shards cfg.Service.shard_pes cfg.Service.jobs;
      while not (Atomic.get stop_requested) do
        Unix.sleepf 0.05
      done;
      Printf.printf "mesad: draining\n%!";
      let snap = Mesad.stop d in
      write_stats snap;
      Printf.printf "mesad: drained, %s request(s) served\n%!"
        (match Stats.find_int snap "service.admitted" with
        | Some n -> string_of_int n
        | None -> "?");
      Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run mesad, the persistent offload daemon: line-delimited JSON over \
          a unix socket, with admission control, deadlines, seeded retry \
          backoff and per-shard fabric circuit breakers. SIGTERM drains \
          gracefully: in-flight requests finish and their responses are \
          flushed before the socket closes.")
    Term.(
      term_result
        (const run $ socket_arg $ shards $ shard_pes $ jobs $ queue_depth
       $ max_retries $ breaker_threshold $ breaker_cooldown
       $ default_deadline $ seed $ no_warm $ stats_out $ profile_window))

let loadgen_cmd =
  let requests =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.requests
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to send in total.")
  in
  let concurrency =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.concurrency
      & info [ "concurrency" ] ~docv:"N"
          ~doc:"Client lanes; one connection and one in-flight request each.")
  in
  let seed =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.seed
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Stream seed; the request mix is a pure function of it, and at \
             concurrency 1 the per-request digest is bit-identical across \
             runs.")
  in
  let kernels =
    Arg.(
      value
      & opt (list string) Loadgen.default_config.Loadgen.kernels
      & info [ "kernels" ] ~docv:"K1,K2,.."
          ~doc:"Kernel mix drawn uniformly per request.")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Arm fault schedules on a seeded fraction of requests: \
             quarantines, breaker trips and recoveries under load.")
  in
  let chaos_rate =
    Arg.(
      value
      & opt float Loadgen.default_config.Loadgen.chaos_rate
      & info [ "chaos-rate" ] ~docv:"R" ~doc:"Fraction of requests carrying a fault.")
  in
  let injects =
    Arg.(
      value
      & opt_all string []
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:
            "Override the chaos fault-schedule pool (repeatable); default \
             mixes transient, permanent, link, ports and a quarantining \
             transient storm.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline.")
  in
  let no_fallback_rate =
    Arg.(
      value
      & opt float Loadgen.default_config.Loadgen.no_fallback_rate
      & info [ "no-fallback-rate" ] ~docv:"R"
          ~doc:"Chaos fraction of requests forbidding CPU fallback.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the result JSON to FILE.")
  in
  let require_zero_internal =
    Arg.(
      value & flag
      & info [ "require-zero-internal" ]
          ~doc:
            "Exit non-zero unless internal errors, protocol errors and \
             unanswered in-flight requests are all zero (CI gate).")
  in
  let require_recoveries =
    Arg.(
      value & flag
      & info [ "require-recoveries" ]
          ~doc:
            "Exit non-zero unless the daemon reports breaker trips and \
             half-open recloses, proving quarantine and recovery both \
             happened (CI chaos gate).")
  in
  let run socket requests concurrency seed kernels chaos chaos_rate injects
      deadline_ms no_fallback_rate out require_zero_internal
      require_recoveries =
    let cfg =
      {
        Loadgen.socket;
        requests;
        concurrency;
        seed;
        kernels;
        chaos;
        chaos_rate;
        injects =
          (if injects = [] then Loadgen.default_config.Loadgen.injects
           else injects);
        deadline_ms;
        no_fallback_rate;
      }
    in
    match Loadgen.run cfg with
    | exception Unix.Unix_error (err, _, _) ->
      Error (`Msg (socket ^ ": " ^ Unix.error_message err))
    | exception Invalid_argument e -> Error (`Msg e)
    | r ->
      let text = Json.to_string (Loadgen.result_to_json r) in
      print_endline text;
      (match out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc text;
        output_char oc '\n';
        close_out oc);
      let counter p = Option.value ~default:0 (Loadgen.find_service_counter r p) in
      let internal =
        Option.value ~default:0 (List.assoc_opt "internal" r.Loadgen.outcomes)
      in
      let failures =
        (if
           require_zero_internal
           && (internal > 0
              || r.Loadgen.protocol_errors > 0
              || r.Loadgen.closed_unanswered > 0)
         then
           [
             Printf.sprintf
               "gate: internal=%d protocol_errors=%d closed_unanswered=%d (all must be 0)"
               internal r.Loadgen.protocol_errors r.Loadgen.closed_unanswered;
           ]
         else [])
        @
        if
          require_recoveries
          && (counter "service.breaker.trips" = 0
             || counter "service.breaker.recloses" = 0)
        then
          [
            Printf.sprintf
              "gate: breaker trips=%d recloses=%d (both must be > 0)"
              (counter "service.breaker.trips")
              (counter "service.breaker.recloses");
          ]
        else []
      in
      List.iter prerr_endline failures;
      if failures = [] then Ok () else exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running mesad with a seeded stream of mixed-kernel offload \
          requests — optionally with chaos fault injection — and report \
          latency percentiles, throughput, the error-taxonomy histogram and \
          a determinism digest as JSON.")
    Term.(
      term_result
        (const run $ socket_arg $ requests $ concurrency $ seed $ kernels
       $ chaos $ chaos_rate $ injects $ deadline_ms $ no_fallback_rate $ out
       $ require_zero_internal $ require_recoveries))

(* ---------------- live telemetry clients ---------------- *)

let connect_daemon socket =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send_request oc req =
  output_string oc (Proto.request_to_line req);
  output_char oc '\n';
  flush oc

(* Consume a watch/trace stream: [on_body] handles each response body
   until [End_stream], connection close (a drain ends endless streams this
   way) or an error. Returns how many bodies were handled. *)
let stream_responses ic ~on_body =
  let rec loop n =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> Ok n
    | line -> (
      match Json.of_string line with
      | Error e -> Error ("unparseable response: " ^ e)
      | Ok j -> (
        match Proto.response_of_json j with
        | Error e -> Error ("bad response: " ^ e)
        | Ok { Proto.body = Proto.End_stream; _ } -> Ok n
        | Ok { Proto.body = Proto.Err e; _ } ->
          Error (Proto.error_kind_to_string e.Proto.kind ^ ": " ^ e.Proto.message)
        | Ok rsp -> (
          match on_body rsp.Proto.body with
          | Ok () -> loop (n + 1)
          | Error _ as err -> err)))
  in
  loop 0

let interval_ms_arg default =
  Arg.(
    value
    & opt float default
    & info [ "interval-ms" ] ~docv:"MS" ~doc:"Frame cadence in milliseconds.")

let watch_cmd =
  let frames =
    Arg.(
      value
      & opt (some int) None
      & info [ "frames" ] ~docv:"N"
          ~doc:"Stop after N frames; default: until the daemon drains.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Also append each frame line to FILE (flushed per frame) — the \
             input `mesa_cli telemetry-check` gates on.")
  in
  let run socket interval_ms frames out =
    match connect_daemon socket with
    | exception Unix.Unix_error (err, _, _) ->
      Error (`Msg (socket ^ ": " ^ Unix.error_message err))
    | fd, ic, oc ->
      let out_oc = Option.map open_out out in
      send_request oc
        (Proto.Watch (Proto.watch_request ~interval_ms ?frames ~id:1 ()));
      let emit text =
        print_string text;
        print_newline ();
        flush stdout;
        Option.iter
          (fun o ->
            output_string o text;
            output_char o '\n';
            flush o)
          out_oc
      in
      let r =
        stream_responses ic ~on_body:(function
          | Proto.Frame j ->
            emit (Json.to_string ~indent:0 j);
            Ok ()
          | _ -> Error "unexpected response in watch stream")
      in
      Option.iter close_out out_oc;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match r with
      | Ok n ->
        Printf.eprintf "watch: %d frame(s)\n%!" n;
        Ok ()
      | Error e -> Error (`Msg e))
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Subscribe to a running mesad's metrics stream and print one \
          mesa-telemetry-v1 frame (JSON, one line) per tick: per-outcome \
          latency quantiles over a sliding window, per-kernel cycle \
          quantiles with profiling/refine progress, and the raw counter \
          deltas and totals. An endless stream ends cleanly when the \
          daemon drains.")
    Term.(
      term_result
        (const run $ socket_arg $ interval_ms_arg 250.0 $ frames $ out))

let print_frame (f : Telemetry.frame) =
  Printf.printf "mesad telemetry — frame %d  t=%.0f ms  shed-ticks=%d\n"
    f.Telemetry.f_seq f.Telemetry.f_at_ms f.Telemetry.f_dropped;
  Printf.printf "%-22s %8s %6s | window %6s %9s %9s %9s\n" "outcome" "total"
    "delta" "n" "p50 ms" "p99 ms" "max ms";
  List.iter
    (fun (name, (r : Telemetry.outcome_row)) ->
      let q = r.Telemetry.o_window in
      Printf.printf "  %-20s %8d %6d | %13d %9.2f %9.2f %9.2f\n" name
        r.Telemetry.o_total r.Telemetry.o_delta q.Telemetry.q_count
        q.Telemetry.q_p50 q.Telemetry.q_p99 q.Telemetry.q_max)
    f.Telemetry.f_outcomes;
  if f.Telemetry.f_kernels <> [] then begin
    Printf.printf "%-22s | window %6s %11s %11s %9s %8s\n" "kernel" "n"
      "p50 cycles" "max cycles" "profiled" "refined";
    List.iter
      (fun (name, (k : Telemetry.kernel_row)) ->
        let q = k.Telemetry.k_window in
        Printf.printf "  %-20s | %13d %11.0f %11.0f %9d %8d\n" name
          q.Telemetry.q_count q.Telemetry.q_p50 q.Telemetry.q_max
          k.Telemetry.k_profile_windows k.Telemetry.k_refine_accepts)
      f.Telemetry.f_kernels
  end;
  print_string "totals:\n";
  List.iter
    (fun (path, v) -> Printf.printf "  %s %d\n" path v)
    f.Telemetry.f_totals;
  flush stdout

let top_cmd =
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Print a single frame and exit (greppable `path value` totals \
             — what the CI smoke test polls for refine acceptances).")
  in
  let run socket interval_ms once =
    match connect_daemon socket with
    | exception Unix.Unix_error (err, _, _) ->
      Error (`Msg (socket ^ ": " ^ Unix.error_message err))
    | fd, ic, oc ->
      let frames = if once then Some 1 else None in
      send_request oc
        (Proto.Watch (Proto.watch_request ~interval_ms ?frames ~id:1 ()));
      let r =
        stream_responses ic ~on_body:(function
          | Proto.Frame j -> (
            match Telemetry.frame_of_json j with
            | Error e -> Error ("bad frame: " ^ e)
            | Ok f ->
              if not once then print_string "\027[2J\027[H";
              print_frame f;
              Ok ())
          | _ -> Error "unexpected response in watch stream")
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match r with Ok _ -> Ok () | Error e -> Error (`Msg e))
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view of a running mesad: per-outcome latency and \
          per-kernel cycle quantiles over the daemon's sliding window, \
          refreshed in place every tick until interrupted (or once, with \
          $(b,--once)).")
    Term.(term_result (const run $ socket_arg $ interval_ms_arg 1000.0 $ once))

let trace_cmd =
  let spans =
    Arg.(
      value
      & opt (some int) None
      & info [ "spans" ] ~docv:"N"
          ~doc:"Stop after N spans; default: until the daemon drains.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the stream to FILE.")
  in
  let perfetto =
    Arg.(
      value & flag
      & info [ "perfetto" ]
          ~doc:
            "Emit one Chrome trace_event JSON document (load it in \
             ui.perfetto.dev; one thread lane per shard) instead of \
             line-delimited span JSON. Buffers until the stream ends.")
  in
  let run socket spans out perfetto =
    match connect_daemon socket with
    | exception Unix.Unix_error (err, _, _) ->
      Error (`Msg (socket ^ ": " ^ Unix.error_message err))
    | fd, ic, oc ->
      let out_oc = if perfetto then None else Option.map open_out out in
      send_request oc (Proto.Trace (Proto.trace_request ?spans ~id:2 ()));
      let collected = ref [] in
      let r =
        stream_responses ic ~on_body:(function
          | Proto.Span j -> (
            match Telemetry.span_of_json j with
            | Error e -> Error ("bad span: " ^ e)
            | Ok sp ->
              if perfetto then collected := sp :: !collected
              else begin
                let text = Json.to_string ~indent:0 j in
                print_string text;
                print_newline ();
                flush stdout;
                Option.iter
                  (fun o ->
                    output_string o text;
                    output_char o '\n';
                    flush o)
                  out_oc
              end;
              Ok ())
          | _ -> Error "unexpected response in trace stream")
      in
      Option.iter close_out out_oc;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match r with
      | Error e -> Error (`Msg e)
      | Ok n ->
        if perfetto then begin
          let doc =
            Trace.to_string
              (List.rev_map Telemetry.to_trace_span !collected)
          in
          match out with
          | None ->
            print_string doc;
            print_newline ()
          | Some path -> (
            match write_text path doc with
            | Ok () -> Printf.eprintf "trace: %d span(s) -> %s\n%!" n path
            | Error (`Msg e) -> failwith e)
        end
        else Printf.eprintf "trace: %d span(s)\n%!" n;
        Ok ())
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Subscribe to a running mesad's request-lifecycle span stream \
          (admit/queue/translate/execute/retry/breaker/resolve, plus the \
          profiling-window feedback loop's events) as line-delimited JSON, \
          or as a Perfetto-loadable Chrome trace with $(b,--perfetto). A \
          consumer slower than the daemon's bounded span ring skips \
          forward; delivered spans keep their order and sequence numbers.")
    Term.(term_result (const run $ socket_arg $ spans $ out $ perfetto))

let telemetry_check_cmd =
  let frames_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FRAMES"
          ~doc:"Line-delimited frame JSON from `mesa_cli watch --out`.")
  in
  let stats_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats" ] ~docv:"FILE"
          ~doc:
            "Final stats snapshot from `serve --stats-out`; the stream's \
             summed per-outcome deltas must close exactly against its \
             totals.")
  in
  let require_oracle =
    Arg.(
      value & flag
      & info [ "require-oracle-refresh" ]
          ~doc:
            "Exit non-zero unless at least one profiling window handed \
             measured oracles to the refiner.")
  in
  let require_refine =
    Arg.(
      value & flag
      & info [ "require-refine-accept" ]
          ~doc:
            "Exit non-zero unless at least one background refinement was \
             confirmed and swapped into the warm translation memo.")
  in
  let run frames_path stats_path require_oracle require_refine =
    let parse_line i line =
      match Json.of_string line with
      | Error e -> Error (Printf.sprintf "line %d: %s" (i + 1) e)
      | Ok j ->
        Result.map_error
          (fun e -> Printf.sprintf "line %d: %s" (i + 1) e)
          (Telemetry.frame_of_json j)
    in
    match In_channel.with_open_text frames_path In_channel.input_lines with
    | exception Sys_error e -> Error (`Msg ("cannot read " ^ e))
    | lines -> (
      let lines = List.filter (fun l -> String.trim l <> "") lines in
      let parsed = List.mapi parse_line lines in
      let frames =
        List.filter_map (function Ok f -> Some f | Error _ -> None) parsed
      in
      let failures = ref [] in
      let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
      List.iter
        (function Error e -> fail "unparseable frame: %s" e | Ok _ -> ())
        parsed;
      (match frames with
      | [] -> fail "no frames in %s" frames_path
      | first :: _ ->
        (* Per-watcher frame sequence is gap-free and monotone; the hub
           clock and the shed-tick counter never go backwards. *)
        List.iteri
          (fun i (f : Telemetry.frame) ->
            if f.Telemetry.f_seq <> first.Telemetry.f_seq + i then
              fail "frame %d: seq %d, expected %d" i f.Telemetry.f_seq
                (first.Telemetry.f_seq + i))
          frames;
        ignore
          (List.fold_left
             (fun (prev : Telemetry.frame) (f : Telemetry.frame) ->
               if f.Telemetry.f_at_ms < prev.Telemetry.f_at_ms then
                 fail "frame %d: at_ms went backwards" f.Telemetry.f_seq;
               if f.Telemetry.f_dropped < prev.Telemetry.f_dropped then
                 fail "frame %d: dropped went backwards" f.Telemetry.f_seq;
               f)
             first (List.tl frames));
        let last = List.nth frames (List.length frames - 1) in
        (* Closure: a watcher's baseline starts empty, so per-outcome
           deltas summed over the whole stream telescope to the final
           totals — if a frame was lost or fabricated, the sum breaks. *)
        let delta_sum name =
          List.fold_left
            (fun acc (f : Telemetry.frame) ->
              match List.assoc_opt name f.Telemetry.f_outcomes with
              | Some (r : Telemetry.outcome_row) -> acc + r.Telemetry.o_delta
              | None -> acc)
            0 frames
        in
        List.iter
          (fun (name, (r : Telemetry.outcome_row)) ->
            let sum = delta_sum name in
            if sum <> r.Telemetry.o_total then
              fail "outcome %s: summed deltas %d <> final total %d" name sum
                r.Telemetry.o_total)
          last.Telemetry.f_outcomes;
        let last_total path =
          Option.value ~default:0
            (List.assoc_opt path last.Telemetry.f_totals)
        in
        (match stats_path with
        | None -> ()
        | Some path -> (
          match read_json path with
          | Error (`Msg e) -> fail "%s" e
          | Ok j -> (
            match Stats.of_json j with
            | Error e -> fail "%s: %s" path e
            | Ok snap ->
              List.iter
                (fun (name, (r : Telemetry.outcome_row)) ->
                  let stat =
                    Option.value ~default:0
                      (Stats.find_int snap ("service.outcomes." ^ name))
                  in
                  if stat <> r.Telemetry.o_total then
                    fail
                      "outcome %s: stream total %d <> stats snapshot %d"
                      name r.Telemetry.o_total stat)
                last.Telemetry.f_outcomes)));
        let gate_counter path required =
          if required then begin
            let n =
              match stats_path with
              | None -> last_total path
              | Some sp -> (
                match read_json sp with
                | Ok j -> (
                  match Stats.of_json j with
                  | Ok snap ->
                    Option.value ~default:0 (Stats.find_int snap path)
                  | Error _ -> last_total path)
                | Error _ -> last_total path)
            in
            if n < 1 then fail "gate: %s = %d (must be > 0)" path n
          end
        in
        gate_counter "telemetry.oracle_refreshes" require_oracle;
        gate_counter "telemetry.refine_accepts" require_refine);
      match List.rev !failures with
      | [] ->
        Printf.printf
          "telemetry-check: OK (%d frame(s), deltas close against totals%s)\n"
          (List.length frames)
          (if stats_path = None then "" else " and the stats snapshot");
        Ok ()
      | fs ->
        List.iter prerr_endline fs;
        exit 1)
  in
  Cmd.v
    (Cmd.info "telemetry-check"
       ~doc:
         "Validate a recorded watch stream: every frame parses, sequence \
          numbers are gap-free, the clock and shed counters are monotone, \
          and the per-outcome deltas summed over the stream close exactly \
          against the final totals (and, with $(b,--stats), against the \
          daemon's drained stats snapshot). Optional gates assert the \
          profiling-window feedback loop actually fired. The CI telemetry \
          smoke job runs this over the artifact it uploads.")
    Term.(
      term_result
        (const run $ frames_arg $ stats_arg $ require_oracle $ require_refine))

let () =
  let doc = "MESA: microarchitecture extensions for spatial architecture generation" in
  let info = Cmd.info "mesa_cli" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ list_cmd; disasm_cmd; dfg_cmd; map_cmd; schedule_cmd; imap_cmd; anneal_cmd; run_cmd; profile_cmd; profile_diff_cmd; stats_diff_cmd; bench_cmd; refine_cmd; dse_cmd; fuzz_cmd; serve_cmd; loadgen_cmd; watch_cmd; top_cmd; trace_cmd; telemetry_check_cmd ]))
