examples/quickstart.ml: Array Asm Controller Cpu_run Disasm List Machine Main_memory Printf Program Reg
