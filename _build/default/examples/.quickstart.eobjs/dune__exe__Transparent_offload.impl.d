examples/transparent_offload.ml: Accel_config Controller Dfg Disasm Format Grid Interconnect Kernel List Loop_opt Mapper Mem_opt Perf_model Placement Printf Program Runner String Workloads
