examples/quickstart.mli:
