examples/backend_portability.mli:
