examples/config_bitstream.mli:
