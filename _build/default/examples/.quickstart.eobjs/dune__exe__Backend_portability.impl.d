examples/backend_portability.ml: Accel_config Array Dfg Engine Format Grid Hierarchy Interconnect Kernel List Main_memory Mapper Perf_model Placement Printf Runner Workloads
