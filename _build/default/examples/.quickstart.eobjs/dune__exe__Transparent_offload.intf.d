examples/transparent_offload.mli:
