examples/iterative_optimization.mli:
