(* Quickstart: write a loop in the assembler DSL, run it on the CPU
   reference, then let MESA accelerate it transparently.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A program: out[i] = a[i] * a[i] + 7, annotated as a parallel loop
     the way OpenMP metadata would mark it. *)
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.lw b t1 0 a0;
  Asm.mul b t2 t1 t1;
  Asm.addi b t2 t2 7;
  Asm.sw b t2 0 a1;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.bltu b a0 a2 "loop";
  Asm.ecall b;
  let prog = Asm.assemble b in
  print_endline "Program:";
  print_string (Disasm.listing prog);

  (* 2. Data and architectural state. *)
  let n = 2000 in
  let setup () =
    let mem = Main_memory.create () in
    Main_memory.blit_words mem 0x10000 (Array.init n (fun i -> (i mod 91) - 45));
    let machine = Machine.create ~pc:(Program.entry prog) mem in
    Machine.set_args machine
      [ (a0, 0x10000); (a1, 0x20000); (a2, 0x10000 + (4 * n)) ];
    (mem, machine)
  in

  (* 3. Reference run on one out-of-order core. *)
  let mem_cpu, machine_cpu = setup () in
  let cpu = Cpu_run.run prog machine_cpu in
  Printf.printf "\nCPU:  %d cycles (IPC %.2f)\n" (Cpu_run.cycles cpu) (Cpu_run.ipc cpu);

  (* 4. The same binary under MESA: the controller watches the stream,
     detects the loop, builds the LDFG, maps it with Algorithm 1 and
     offloads — no recompilation, no annotations beyond the pragma. *)
  let mem_mesa, machine_mesa = setup () in
  let report = Controller.run prog machine_mesa in
  Printf.printf "MESA: %d cycles (cpu %d + accel %d + overhead %d)\n"
    report.Controller.total_cycles report.Controller.cpu_cycles
    report.Controller.accel_cycles report.Controller.overhead_cycles;
  List.iter
    (fun (r : Controller.region_report) ->
      if r.Controller.accepted then
        Printf.printf
          "      loop at 0x%x: %d instructions, tiled x%d on the fabric\n"
          r.Controller.entry r.Controller.size r.Controller.tiling)
    report.Controller.regions;

  (* 5. Transparency means bit-identical results. *)
  Printf.printf "\nresults identical: %b\n" (Main_memory.equal mem_cpu mem_mesa);
  Printf.printf "speedup over one core: %.2fx\n"
    (Controller.speedup ~baseline_cycles:(Cpu_run.cycles cpu) report)
