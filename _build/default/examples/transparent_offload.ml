(* Transparent offload of a real Rodinia kernel (nn, the nearest-neighbor
   distance computation the paper scales in Figure 15), showing each stage
   the MESA hardware walks through: detection, LDFG, spatial mapping,
   configuration, execution, and the resulting speedups over the CPU
   baselines.

     dune exec examples/transparent_offload.exe *)

let () =
  let k = Workloads.find "nn" in
  Printf.printf "kernel: %s — %s (%d iterations)\n\n" k.Kernel.name
    k.Kernel.description k.Kernel.n;

  (* What the detector will see: the loop's machine code. *)
  print_endline "hot loop:";
  print_string (Disasm.listing k.Kernel.program);

  (* T1 — the logical DFG the rename table produces. *)
  let dfg = Runner.dfg_of_kernel k in
  Format.printf "@.LDFG (T1):@.%a@." Dfg.pp dfg;

  (* T2 — Algorithm 1 places it on the M-128 fabric. *)
  let model = Perf_model.create dfg in
  let placement =
    match Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model with
    | Ok p -> p
    | Error e -> failwith e
  in
  Format.printf "SDFG placement (T2):@.%a@." Placement.pp placement;
  Format.printf "modeled iteration latency: %.1f cycles; critical path %s@."
    (Perf_model.iteration_latency model)
    (String.concat " -> " (List.map string_of_int (Perf_model.critical_path model)));

  (* T3 — configuration sizing. *)
  let mo = Mem_opt.analyze dfg in
  let ld =
    Loop_opt.decide ~grid:Grid.m128 ~dfg
      ~pragma:(Program.pragma_at k.Kernel.program dfg.Dfg.entry_addr)
  in
  let config =
    Accel_config.with_opts ~forwarding:mo.Mem_opt.forwarding
      ~vector_groups:mo.Mem_opt.vector_groups ~prefetched:mo.Mem_opt.prefetched
      ~tiling:ld.Loop_opt.tiling ~pipelined:ld.Loop_opt.pipelined placement
  in
  Printf.printf
    "configuration (T3): %d bits, %d cycles to write; tiling x%d; %d prefetched load(s)\n\n"
    (Accel_config.bitstream_bits config dfg)
    (Accel_config.config_cycles config dfg)
    config.Accel_config.tiling
    (List.length config.Accel_config.prefetched);

  (* End to end against the baselines. *)
  let single = Runner.single_core k in
  let multi = Runner.multicore k in
  let mesa, report = Runner.mesa ~grid:Grid.m128 k in
  Printf.printf "1-core OoO : %7d cycles\n" single.Runner.cycles;
  Printf.printf "16-core OoO: %7d cycles (%.2fx)\n" multi.Runner.cycles
    (Runner.speedup ~baseline:single multi);
  Printf.printf "MESA M-128 : %7d cycles (%.2fx vs 1 core, %.2fx vs 16 cores)\n"
    mesa.Runner.cycles
    (Runner.speedup ~baseline:single mesa)
    (Runner.speedup ~baseline:multi mesa);
  Printf.printf "energy efficiency vs 16-core: %.2fx\n"
    (Runner.efficiency ~baseline:multi mesa);
  Printf.printf "offloads: %d; outputs verified: %b\n" report.Controller.offloads
    (mesa.Runner.checked = Ok ())
