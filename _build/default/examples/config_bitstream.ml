(* The configuration bitstream (task T3 made concrete): translate a loop
   once, serialize the configuration to a binary image — what MESA's
   ConfigBlock would stream to the fabric, and what its configuration cache
   stores — then bring up a "fresh fabric" from nothing but that image and
   run, getting identical results and timing.

     dune exec examples/config_bitstream.exe *)

let () =
  let k = Workloads.find "streamcluster" in
  let dfg = Runner.dfg_of_kernel k in
  let model = Perf_model.create dfg in
  let placement =
    match Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model with
    | Ok p -> p
    | Error e -> failwith e
  in
  let mo = Mem_opt.analyze dfg in
  let ld =
    Loop_opt.decide ~grid:Grid.m128 ~dfg
      ~pragma:(Program.pragma_at k.Kernel.program dfg.Dfg.entry_addr)
  in
  let config =
    Accel_config.with_opts ~forwarding:mo.Mem_opt.forwarding
      ~vector_groups:mo.Mem_opt.vector_groups ~prefetched:mo.Mem_opt.prefetched
      ~tiling:ld.Loop_opt.tiling ~pipelined:ld.Loop_opt.pipelined placement
  in

  (* Serialize. *)
  let image = Bitstream.encode dfg config in
  Printf.printf "encoded %s: %d words (%d bits), magic 0x%lx, checksum 0x%lx\n"
    k.Kernel.name (Array.length image)
    (Bitstream.size_bits dfg config)
    image.(0)
    image.(Array.length image - 1);

  (* Persist to disk and reload, as the configuration cache would. *)
  let path = Filename.temp_file "mesa_config" ".bin" in
  let oc = open_out_bin path in
  Array.iter (fun w -> output_binary_int oc (Int32.to_int w)) image;
  close_out oc;
  let ic = open_in_bin path in
  let reloaded =
    Array.init (Array.length image) (fun _ -> Int32.of_int (input_binary_int ic))
  in
  close_in ic;
  Sys.remove path;
  Printf.printf "reloaded %d words from disk; images identical: %b\n"
    (Array.length reloaded) (reloaded = image);

  (* Bring up a fabric from the image alone. *)
  let dfg', config' =
    match Bitstream.decode reloaded with
    | Ok x -> x
    | Error e -> failwith ("decode: " ^ e)
  in
  let run d c =
    let mem = Main_memory.create () in
    let machine = Kernel.prepare k mem in
    let hier = Hierarchy.create Hierarchy.default_config in
    match Engine.execute ~config:c ~dfg:d ~machine ~hier () with
    | Ok res -> (res.Engine.cycles, k.Kernel.check mem = Ok ())
    | Error e -> failwith e
  in
  let cyc_orig, ok_orig = run dfg config in
  let cyc_img, ok_img = run dfg' config' in
  Printf.printf "original config : %d cycles, outputs ok = %b\n" cyc_orig ok_orig;
  Printf.printf "from bitstream  : %d cycles, outputs ok = %b\n" cyc_img ok_img;

  (* Corruption is caught before it reaches the fabric. *)
  let corrupt = Array.copy image in
  corrupt.(10) <- Int32.logxor corrupt.(10) 1l;
  (match Bitstream.decode corrupt with
  | Error e -> Printf.printf "single-bit corruption rejected: %s\n" e
  | Ok _ -> print_endline "BUG: corruption accepted")
