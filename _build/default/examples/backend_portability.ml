(* Backend portability (Section 3.3 / Figure 4): MESA's mapper only needs a
   point-to-point latency model, so the same loop maps onto different
   interconnects — the evaluation's mesh+NoC, a hierarchical row-slice
   fabric, and a pure mesh — each placement shaped by that backend's cost
   function.

     dune exec examples/backend_portability.exe *)

let () =
  let k = Workloads.find "kmeans" in
  let dfg = Runner.dfg_of_kernel k in
  Printf.printf "kernel %s: %d-node DFG, %d guarded (predicated) nodes\n\n"
    k.Kernel.name (Dfg.node_count dfg)
    (Array.fold_left
       (fun acc nd -> if nd.Dfg.guards <> [] then acc + 1 else acc)
       0 dfg.Dfg.nodes);
  List.iter
    (fun (name, kind) ->
      let model = Perf_model.create dfg in
      match Mapper.map ~grid:Grid.m128 ~kind model with
      | Error e -> Printf.printf "%s: mapping failed (%s)\n" name e
      | Ok placement ->
        Format.printf "--- %s ---@.%a@." name Placement.pp placement;
        Format.printf "modeled iteration latency: %.1f cycles@.@."
          (Perf_model.iteration_latency model))
    [
      ("mesh + half-ring NoC (evaluation backend, Figure 9)", Interconnect.Mesh_noc);
      ("hierarchical row slices (Figure 4, example 1)", Interconnect.Hierarchical_rows);
      ("pure mesh (Figure 4, example 2)", Interconnect.Pure_mesh);
    ];
  (* The placements differ because the cost functions differ; the functional
     result must not. Run the hierarchical backend end to end. *)
  let model = Perf_model.create dfg in
  let placement =
    match Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Hierarchical_rows model with
    | Ok p -> p
    | Error e -> failwith e
  in
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  (match
     Engine.execute ~config:(Accel_config.plain placement) ~dfg ~machine ~hier ()
   with
  | Ok res ->
    Printf.printf "hierarchical backend executed %d iterations in %d cycles\n"
      res.Engine.iterations res.Engine.cycles
  | Error e -> failwith e);
  Printf.printf "outputs verified on the alternate backend: %b\n"
    (k.Kernel.check mem = Ok ())
