type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits scaled to [0, bound). *)
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  raw /. 9007199254740992.0 *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = bits64 t }
