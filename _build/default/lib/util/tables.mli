(** Plain-text rendering of experiment tables and figure series.

    The benchmark harness reproduces every table and figure of the paper as
    text: tables are aligned column grids, figures are one row per series
    point. Keeping the renderer here lets the bench, the examples and the CLI
    produce identical output. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given column headers and
    alignments. *)

val add_row : t -> string list -> unit
(** Append a row; the row must have exactly as many cells as there are
    columns. *)

val add_rule : t -> unit
(** Append a horizontal separator (rendered as dashes). *)

val headers : t -> string list
val data_rows : t -> string list list
(** The cell rows in insertion order (rules omitted) — used by the CSV
    exporter. *)

val title : t -> string option

val render : t -> string
(** Render to an aligned multi-line string, including title and header. *)

val print : t -> unit
(** [render] followed by [print_string] and a flush. *)

val fcell : float -> string
(** Format a float for a table cell: 3 significant decimals, fixed point. *)

val fcell1 : float -> string
(** Same with 1 decimal, for large magnitudes (cycle counts, nJ). *)

val xcell : float -> string
(** Format a speedup/ratio as ["1.33x"]. *)

val icell : int -> string
(** Format an int with thousands separators, e.g. ["12_345"]. *)
