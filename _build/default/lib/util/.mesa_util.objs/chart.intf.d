lib/util/chart.mli:
