lib/util/tables.ml: Array Buffer List Printf String
