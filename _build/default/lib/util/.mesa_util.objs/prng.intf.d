lib/util/prng.mli:
