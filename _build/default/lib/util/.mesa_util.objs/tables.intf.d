lib/util/tables.mli:
