lib/util/chart.ml: Array Buffer Bytes Float List Printf String
