lib/util/stats.mli:
