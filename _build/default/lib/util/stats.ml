let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percentile p xs =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    let rank = max 0 (min (n - 1) rank) in
    List.nth sorted rank

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
let iclamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
let div_ceil a b = (a + b - 1) / b

module Running = struct
  type t = { mutable sum : float; mutable count : int }

  let create () = { sum = 0.0; count = 0 }

  let add t x =
    t.sum <- t.sum +. x;
    t.count <- t.count + 1

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let mean_or t default = if t.count = 0 then default else mean t

  let reset t =
    t.sum <- 0.0;
    t.count <- 0
end
