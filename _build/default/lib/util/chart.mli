(** Horizontal ASCII bar charts, for rendering the paper's figures as
    pictures next to their numeric tables. *)

val bars :
  ?width:int -> ?baseline:float -> title:string -> (string * float) list -> string
(** [bars ~title series] renders one bar per (label, value). Values are
    scaled so the largest bar spans [width] characters (default 50). When
    [baseline] is given, a marker [|] is drawn at that value's position
    (e.g. the 1.0x line of a speedup chart). Returns a multi-line string
    ending in a newline; the empty series renders just the title. *)

val grouped :
  ?width:int ->
  title:string ->
  series_names:string list ->
  (string * float list) list ->
  string
(** Multi-series variant: each row carries one bar per series, tagged with
    the series' index glyph. Used for figures comparing M-128 vs M-512. *)
