(** Deterministic pseudo-random number generation.

    All stochastic pieces of the simulator (workload input generation, the
    modulo-scheduler's randomized restarts, ...) draw from an explicit
    generator state so that every experiment is reproducible from a seed. The
    implementation is splitmix64, which is small, fast and has good
    statistical quality for simulation purposes. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Equal seeds
    yield equal streams. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)]. [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is a uniform integer in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is a uniform float in [\[lo, hi)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val bits64 : t -> int64
(** The raw next 64-bit output of the generator. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] derives an independent generator; used to give each parallel
    experiment its own stream without coupling their draws. *)
