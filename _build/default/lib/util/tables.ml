type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reverse order *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tables.add_row: cell count does not match column count";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let headers t = t.headers
let title t = t.title

let data_rows t =
  List.rev t.rows
  |> List.filter_map (function Cells c -> Some c | Rule -> None)

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.headers :: List.filter_map (function Cells c -> Some c | Rule -> None) rows
  in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let note_row cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter note_row all_cell_rows;
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    match List.nth t.aligns i with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let line cells = "| " ^ String.concat " | " (List.mapi pad cells) ^ " |" in
  let rule =
    "|" ^ String.concat "|" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "|"
  in
  let body =
    List.map (function Cells c -> line c | Rule -> rule) rows
  in
  let header_block = [ line t.headers; rule ] in
  let title_block = match t.title with None -> [] | Some s -> [ s; String.make (String.length s) '=' ] in
  String.concat "\n" (title_block @ header_block @ body) ^ "\n"

let print t =
  print_string (render t);
  flush stdout

let fcell x = Printf.sprintf "%.3f" x
let fcell1 x = Printf.sprintf "%.1f" x
let xcell x = Printf.sprintf "%.2fx" x

let icell n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + len / 3 + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf '_';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
