(** Small statistics helpers shared by the timing models and the experiment
    harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; the paper reports cross-benchmark averages of speedup
    ratios, for which the geometric mean is the appropriate aggregate.
    0 on the empty list; all inputs must be positive. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank on the sorted
    list. Raises [Invalid_argument] on the empty list. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a float into [\[lo, hi\]]. *)

val iclamp : lo:int -> hi:int -> int -> int
(** Clamp an int into [\[lo, hi\]]. *)

val div_ceil : int -> int -> int
(** [div_ceil a b] is ceil(a / b) for positive [b]. *)

(** Online accumulator for mean over a stream of samples, used by the
    per-instruction latency counters (the hardware tallies sum and count). *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val mean : t -> float
  (** 0 before any sample has been added. *)

  val mean_or : t -> float -> float
  (** [mean_or t default] is the mean, or [default] before any sample. *)

  val reset : t -> unit
end
