type t = {
  name : string;
  description : string;
  parallel : bool;
  fp : bool;
  n : int;
  program : Program.t;
  setup : Main_memory.t -> unit;
  args : lo:int -> hi:int -> (Reg.t * int) list;
  fargs : (Reg.t * float) list;
  check : Main_memory.t -> (unit, string) result;
}

let prepare k mem =
  k.setup mem;
  let machine = Machine.create ~pc:(Program.entry k.program) mem in
  Machine.set_args machine (k.args ~lo:0 ~hi:k.n);
  Machine.set_fargs machine k.fargs;
  machine

let prepare_slice k mem ~lo ~hi =
  let machine = Machine.create ~pc:(Program.entry k.program) mem in
  Machine.set_args machine (k.args ~lo ~hi);
  Machine.set_fargs machine k.fargs;
  machine

let r32 = Machine.round32
let float_input rng = r32 (Prng.float_in rng (-2.0) 2.0)

let check_words mem ~addr ~expected =
  let n = Array.length expected in
  let rec go i =
    if i = n then Ok ()
    else
      let got = Main_memory.load_word mem (addr + (4 * i)) in
      if got = expected.(i) then go (i + 1)
      else
        Error
          (Printf.sprintf "word %d at 0x%x: expected %d, got %d" i (addr + (4 * i))
             expected.(i) got)
  in
  go 0

let check_floats mem ~addr ~expected =
  let n = Array.length expected in
  let rec go i =
    if i = n then Ok ()
    else
      let got = Main_memory.load_float32 mem (addr + (4 * i)) in
      let want = expected.(i) in
      let same = got = want || (Float.is_nan got && Float.is_nan want) in
      if same then go (i + 1)
      else
        Error
          (Printf.sprintf "float %d at 0x%x: expected %.9g, got %.9g" i (addr + (4 * i))
             want got)
  in
  go 0
