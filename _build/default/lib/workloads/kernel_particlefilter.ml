(* Rodinia particlefilter: likelihood-weight evaluation, with the
   exponential approximated by the rational kernel 1 / (1 + u + u^2/2) as
   fixed-function accelerators commonly do. *)

let x_base = 0x100000
let out_base = 0x200000

let inputs n =
  let rng = Prng.create 0x7066 in
  Array.init n (fun _ -> Kernel.float_input rng)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;
  Asm.fmul b ft1 ft0 ft0;   (* u = x^2 *)
  Asm.fmul b ft2 ft1 ft1;   (* u^2 *)
  Asm.fmul b ft2 ft2 fa1;   (* u^2 / 2 *)
  Asm.fadd b ft3 fa0 ft1;   (* 1 + u *)
  Asm.fadd b ft3 ft3 ft2;   (* 1 + u + u^2/2 *)
  Asm.fdiv b ft3 fa0 ft3;
  Asm.fsw b ft3 0 a1;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.bltu b a0 a2 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let x = inputs n in
  Array.init n (fun i ->
      let u = r32 (x.(i) *. x.(i)) in
      let u2 = r32 (r32 (u *. u) *. 0.5) in
      let den = r32 (r32 (1.0 +. u) +. u2) in
      r32 (1.0 /. den))

let make ?(n = 2048) () =
  {
    Kernel.name = "particlefilter";
    description = "particlefilter: likelihood weights (rational exp)";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup = (fun mem -> Main_memory.blit_floats mem x_base (inputs n));
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, x_base + (4 * lo));
          (Reg.a1, out_base + (4 * lo));
          (Reg.a2, x_base + (4 * hi));
        ]);
    fargs = [ (Reg.fa0, 1.0); (Reg.fa1, 0.5) ];
    check = (fun mem -> Kernel.check_floats mem ~addr:out_base ~expected:(reference n));
  }
