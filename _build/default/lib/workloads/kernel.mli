(** A benchmark kernel: one hot loop in RV32IMF assembly plus everything
    needed to run and validate it.

    Each kernel mirrors the instruction mix of a Rodinia benchmark's
    innermost loop (§6.1 cross-compiles the originals to RV32G; MESA only
    ever sees that loop's machine code, so reproducing the loop reproduces
    the experiment). Iteration spaces are expressed as a [lo, hi) index
    range so the multicore baseline can slice them across threads; kernels
    whose loop is annotated parallel carry the corresponding pragma in their
    program, which is what MESA's tiling keys on.

    Every kernel has an OCaml reference ({!check}) computing the expected
    output with identical single-precision rounding — the equivalence the
    test suite enforces on every execution substrate. *)

type t = {
  name : string;
  description : string;
  parallel : bool;   (** the hot loop carries an OpenMP annotation *)
  fp : bool;         (** uses the FP pipeline *)
  n : int;           (** iteration count of the hot loop *)
  program : Program.t;
  setup : Main_memory.t -> unit;  (** write the (seeded, deterministic) inputs *)
  args : lo:int -> hi:int -> (Reg.t * int) list;
      (** integer argument registers for the slice [lo, hi) *)
  fargs : (Reg.t * float) list;   (** FP argument registers *)
  check : Main_memory.t -> (unit, string) result;
      (** validate outputs against the OCaml reference *)
}

val prepare : t -> Main_memory.t -> Machine.t
(** Fresh machine over [mem] with [setup] applied and the full-range
    arguments loaded — ready to run the whole kernel. *)

val prepare_slice : t -> Main_memory.t -> lo:int -> hi:int -> Machine.t
(** Same, but for one thread's slice (memory must already be set up). *)

(** {1 Helpers for kernel authors} *)

val r32 : float -> float
(** Single-precision rounding, for reference computations. *)

val float_input : Prng.t -> float
(** A well-conditioned random single in [\[-2, 2\)]. *)

val check_words : Main_memory.t -> addr:int -> expected:int array -> (unit, string) result
val check_floats : Main_memory.t -> addr:int -> expected:float array -> (unit, string) result
(** Exact comparison (floats were produced by identical rounding). *)
