(* Rodinia streamcluster: squared distance of 4-dimensional points to a
   candidate center. The four coordinate loads share one base register. *)

let pts_base = 0x100000
let out_base = 0x200000
let center = [| 0.25; -0.5; 1.0; -0.125 |]

let inputs n =
  let rng = Prng.create 0x7363 in
  Array.init (4 * n) (fun _ -> Kernel.float_input rng)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;
  Asm.flw b ft1 4 a0;
  Asm.flw b ft2 8 a0;
  Asm.flw b ft3 12 a0;
  Asm.fsub b ft0 ft0 fa0;
  Asm.fsub b ft1 ft1 fa1;
  Asm.fsub b ft2 ft2 fa2;
  Asm.fsub b ft3 ft3 fa3;
  Asm.fmul b ft0 ft0 ft0;
  Asm.fmul b ft1 ft1 ft1;
  Asm.fmul b ft2 ft2 ft2;
  Asm.fmul b ft3 ft3 ft3;
  Asm.fadd b ft0 ft0 ft1;
  Asm.fadd b ft2 ft2 ft3;
  Asm.fadd b ft0 ft0 ft2;
  Asm.fsw b ft0 0 a1;
  Asm.addi b a0 a0 16;
  Asm.addi b a1 a1 4;
  Asm.bltu b a0 a2 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let pts = inputs n in
  Array.init n (fun i ->
      let d k = r32 (pts.((4 * i) + k) -. r32 center.(k)) in
      let sq k = r32 (d k *. d k) in
      let s01 = r32 (sq 0 +. sq 1) in
      let s23 = r32 (sq 2 +. sq 3) in
      r32 (s01 +. s23))

let make ?(n = 2048) () =
  {
    Kernel.name = "streamcluster";
    description = "streamcluster: 4-D squared distance to a center";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup = (fun mem -> Main_memory.blit_floats mem pts_base (inputs n));
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, pts_base + (16 * lo));
          (Reg.a1, out_base + (4 * lo));
          (Reg.a2, pts_base + (16 * hi));
        ]);
    fargs =
      [ (Reg.fa0, center.(0)); (Reg.fa1, center.(1)); (Reg.fa2, center.(2)); (Reg.fa3, center.(3)) ];
    check = (fun mem -> Kernel.check_floats mem ~addr:out_base ~expected:(reference n));
  }
