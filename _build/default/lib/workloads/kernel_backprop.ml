(* Rodinia backprop: weight update with momentum,
   w += eta * delta * x + momentum * oldw (in place). *)

let w_base = 0x100000
let delta_base = 0x140000
let x_base = 0x180000
let oldw_base = 0x1c0000
let eta = 0.3
let momentum = 0.3

let inputs n =
  let rng = Prng.create 0x6270 in
  let mk () = Array.init n (fun _ -> Kernel.float_input rng) in
  let w = mk () and delta = mk () and x = mk () and oldw = mk () in
  (w, delta, x, oldw)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;
  Asm.flw b ft1 0 a1;
  Asm.flw b ft2 0 a2;
  Asm.flw b ft3 0 a3;
  Asm.fmul b ft4 ft1 ft2;
  Asm.fmul b ft4 ft4 fa0;
  Asm.fmul b ft5 ft3 fa1;
  Asm.fadd b ft4 ft4 ft5;
  Asm.fadd b ft0 ft0 ft4;
  Asm.fsw b ft0 0 a0;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.addi b a2 a2 4;
  Asm.addi b a3 a3 4;
  Asm.bltu b a0 a4 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let w, delta, x, oldw = inputs n in
  Array.init n (fun i ->
      let g = r32 (delta.(i) *. x.(i)) in
      let g = r32 (g *. r32 eta) in
      let m = r32 (oldw.(i) *. r32 momentum) in
      r32 (w.(i) +. r32 (g +. m)))

let make ?(n = 2048) () =
  {
    Kernel.name = "backprop";
    description = "backprop: weight update with momentum (in place)";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let w, delta, x, oldw = inputs n in
        Main_memory.blit_floats mem w_base w;
        Main_memory.blit_floats mem delta_base delta;
        Main_memory.blit_floats mem x_base x;
        Main_memory.blit_floats mem oldw_base oldw);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, w_base + (4 * lo));
          (Reg.a1, delta_base + (4 * lo));
          (Reg.a2, x_base + (4 * lo));
          (Reg.a3, oldw_base + (4 * lo));
          (Reg.a4, w_base + (4 * hi));
        ]);
    fargs = [ (Reg.fa0, eta); (Reg.fa1, momentum) ];
    check = (fun mem -> Kernel.check_floats mem ~addr:w_base ~expected:(reference n));
  }
