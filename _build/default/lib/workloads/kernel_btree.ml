(* Rodinia b+tree: for each query key, locate the child slot within a node
   of eight sorted separator keys. The probe is branchless (a sum of
   comparisons), and the eight separator loads share one base register —
   prime vectorization material. *)

let fanout = 8
let keys_base = 0x100000
let node_base = 0x140000
let out_base = 0x200000

let inputs n =
  let rng = Prng.create 0x6274 in
  let node = Array.init fanout (fun i -> (i + 1) * 1000) in
  let queries = Array.init n (fun _ -> Prng.int rng ((fanout + 1) * 1000)) in
  (node, queries)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.lw b t1 0 a0; (* query key *)
  Asm.li b t2 0;    (* slot accumulator *)
  for j = 0 to fanout - 1 do
    Asm.lw b t3 (4 * j) a1;
    Asm.slt b t4 t3 t1; (* node[j] < key *)
    Asm.add b t2 t2 t4
  done;
  Asm.sw b t2 0 a2;
  Asm.addi b a0 a0 4;
  Asm.addi b a2 a2 4;
  Asm.bltu b a0 a3 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let node, queries = inputs n in
  Array.init n (fun i ->
      Array.fold_left (fun acc k -> if k < queries.(i) then acc + 1 else acc) 0 node)

let make ?(n = 2048) () =
  {
    Kernel.name = "btree";
    description = "b+tree: branchless child-slot probe over 8 separators";
    parallel = true;
    fp = false;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let node, queries = inputs n in
        Main_memory.blit_words mem node_base node;
        Main_memory.blit_words mem keys_base queries);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, keys_base + (4 * lo));
          (Reg.a1, node_base);
          (Reg.a2, out_base + (4 * lo));
          (Reg.a3, keys_base + (4 * hi));
        ]);
    fargs = [];
    check = (fun mem -> Kernel.check_words mem ~addr:out_base ~expected:(reference n));
  }
