(* Rodinia hybridsort: the bucket-histogram pass. Each sample increments
   its bucket counter — a load-modify-store through a computed address, the
   dynamic-aliasing pattern the accelerator's LSU must disambiguate at
   runtime (two consecutive samples can hit the same bucket). Updates are
   order-sensitive read-modify-writes, so the loop is not parallel. *)

let buckets = 64
let samples_base = 0x100000
let hist_base = 0x200000

let inputs n =
  let rng = Prng.create 0x6879 in
  Array.init n (fun _ -> Prng.int rng 4096)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.label b "loop";
  Asm.lw b t1 0 a0;     (* sample *)
  Asm.srli b t1 t1 6;   (* 4096 values -> 64 buckets *)
  Asm.andi b t1 t1 63;
  Asm.slli b t1 t1 2;
  Asm.add b t1 t1 a1;   (* &hist[b] *)
  Asm.lw b t2 0 t1;
  Asm.addi b t2 t2 1;
  Asm.sw b t2 0 t1;
  Asm.addi b a0 a0 4;
  Asm.bltu b a0 a2 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let xs = inputs n in
  let hist = Array.make buckets 0 in
  Array.iter (fun x -> let b = (x lsr 6) land 63 in hist.(b) <- hist.(b) + 1) xs;
  hist

let make ?(n = 4096) () =
  {
    Kernel.name = "hybridsort";
    description = "hybridsort: bucket histogram (read-modify-write aliasing)";
    parallel = false;
    fp = false;
    n;
    program = build_program ();
    setup = (fun mem -> Main_memory.blit_words mem samples_base (inputs n));
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, samples_base + (4 * lo));
          (Reg.a1, hist_base);
          (Reg.a2, samples_base + (4 * hi));
        ]);
    fargs = [];
    check = (fun mem -> Kernel.check_words mem ~addr:hist_base ~expected:(reference n));
  }
