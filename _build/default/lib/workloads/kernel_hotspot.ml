(* Rodinia hotspot: one Jacobi step of the 5-point thermal stencil. The five
   temperature loads share one base register at different offsets — the
   pattern MESA's vectorization optimization (§4.2) coalesces. *)

let width = 64
let height = 66
let grid_cells = width * height

let temp_base = 0x100000
let power_base = 0x180000
let out_base = 0x200000
let cap = 0.064
let pk = 0.353

(* The hot loop covers the flat interior [width+1, cells-width-1). *)
let iterations = grid_cells - (2 * width) - 2

let inputs () =
  let rng = Prng.create 0x6873 in
  let temp = Array.init grid_cells (fun _ -> Kernel.r32 (Prng.float_in rng 310.0 340.0)) in
  let power = Array.init grid_cells (fun _ -> Kernel.float_input rng) in
  (temp, power)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  let w4 = 4 * width in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;
  Asm.flw b ft1 (-4) a0;
  Asm.flw b ft2 4 a0;
  Asm.flw b ft3 (-w4) a0;
  Asm.flw b ft4 w4 a0;
  Asm.flw b ft5 0 a1;
  Asm.fadd b ft6 ft1 ft2;
  Asm.fadd b ft7 ft3 ft4;
  Asm.fadd b ft6 ft6 ft7;
  Asm.fadd b ft7 ft0 ft0;
  Asm.fadd b ft7 ft7 ft7;
  Asm.fsub b ft6 ft6 ft7;
  Asm.fmul b ft6 ft6 fa0;
  Asm.fmul b ft5 ft5 fa1;
  Asm.fadd b ft6 ft6 ft5;
  Asm.fadd b ft6 ft0 ft6;
  Asm.fsw b ft6 0 a2;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.addi b a2 a2 4;
  Asm.bltu b a0 a3 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference () =
  let r32 = Kernel.r32 in
  let temp, power = inputs () in
  Array.init iterations (fun k ->
      let i = width + 1 + k in
      let sum1 = r32 (temp.(i - 1) +. temp.(i + 1)) in
      let sum2 = r32 (temp.(i - width) +. temp.(i + width)) in
      let nbr = r32 (sum1 +. sum2) in
      let t2 = r32 (temp.(i) +. temp.(i)) in
      let t4 = r32 (t2 +. t2) in
      let lap = r32 (nbr -. t4) in
      let d = r32 (lap *. r32 cap) in
      let p = r32 (power.(i) *. r32 pk) in
      r32 (temp.(i) +. r32 (d +. p)))

let make ?n () =
  let n = Option.value n ~default:iterations in
  let n = min n iterations in
  {
    Kernel.name = "hotspot";
    description = "hotspot: 5-point thermal stencil (Jacobi step)";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let temp, power = inputs () in
        Main_memory.blit_floats mem temp_base temp;
        Main_memory.blit_floats mem power_base power);
    args =
      (fun ~lo ~hi ->
        let first = width + 1 in
        [
          (Reg.a0, temp_base + (4 * (first + lo)));
          (Reg.a1, power_base + (4 * (first + lo)));
          (Reg.a2, out_base + (4 * lo));
          (Reg.a3, temp_base + (4 * (first + hi)));
        ]);
    fargs = [ (Reg.fa0, cap); (Reg.fa1, pk) ];
    check =
      (fun mem ->
        Kernel.check_floats mem ~addr:out_base ~expected:(Array.sub (reference ()) 0 n));
  }
