(* Rodinia myocyte: one explicit-Euler step of the cardiac ODE system,
   with the right-hand side as a cubic polynomial evaluated by Horner's
   rule — a pure FP dependence chain. *)

let y_base = 0x100000
let out_base = 0x200000
let c3 = -0.3
let c2 = 0.8
let c1 = -1.1
let c0 = 0.2
let dt = 0.05

let inputs n =
  let rng = Prng.create 0x6d79 in
  Array.init n (fun _ -> Kernel.float_input rng)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;      (* y *)
  Asm.fmul b ft1 ft0 fa0;  (* c3*y *)
  Asm.fadd b ft1 ft1 fa1;  (* + c2 *)
  Asm.fmul b ft1 ft1 ft0;  (* *y *)
  Asm.fadd b ft1 ft1 fa2;  (* + c1 *)
  Asm.fmul b ft1 ft1 ft0;  (* *y *)
  Asm.fadd b ft1 ft1 fa3;  (* + c0 = f(y) *)
  Asm.fmul b ft1 ft1 fa4;  (* dt * f(y) *)
  Asm.fadd b ft1 ft0 ft1;  (* y + dt*f(y) *)
  Asm.fsw b ft1 0 a1;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.bltu b a0 a2 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let y = inputs n in
  Array.init n (fun i ->
      let h = r32 (y.(i) *. r32 c3) in
      let h = r32 (h +. r32 c2) in
      let h = r32 (h *. y.(i)) in
      let h = r32 (h +. r32 c1) in
      let h = r32 (h *. y.(i)) in
      let h = r32 (h +. r32 c0) in
      let h = r32 (h *. r32 dt) in
      r32 (y.(i) +. h))

let make ?(n = 2048) () =
  {
    Kernel.name = "myocyte";
    description = "myocyte: Euler ODE step with a Horner-form cubic RHS";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup = (fun mem -> Main_memory.blit_floats mem y_base (inputs n));
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, y_base + (4 * lo));
          (Reg.a1, out_base + (4 * lo));
          (Reg.a2, y_base + (4 * hi));
        ]);
    fargs =
      [ (Reg.fa0, c3); (Reg.fa1, c2); (Reg.fa2, c1); (Reg.fa3, c0); (Reg.fa4, dt) ];
    check = (fun mem -> Kernel.check_floats mem ~addr:out_base ~expected:(reference n));
  }
