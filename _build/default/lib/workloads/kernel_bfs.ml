(* Rodinia bfs: one sweep of edge relaxation. Irregular, memory-bound and
   control-heavy — the benchmark class the paper singles out as unsuited to
   spatial acceleration (Figure 11 discussion). Relaxations are order
   dependent, so the loop carries no parallel annotation. *)

let nodes = 512
let src_base = 0x100000
let dst_base = 0x140000
let cost_base = 0x200000
let infinity_cost = 9999

let inputs n =
  let rng = Prng.create 0x6266 in
  let src = Array.init n (fun _ -> Prng.int rng nodes) in
  let dst = Array.init n (fun _ -> Prng.int rng nodes) in
  let cost =
    Array.init nodes (fun v -> if v < 8 then 0 else infinity_cost)
  in
  (src, dst, cost)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.label b "loop";
  Asm.lw b t1 0 a0;   (* u = src[e] *)
  Asm.lw b t2 0 a1;   (* v = dst[e] *)
  Asm.slli b t1 t1 2;
  Asm.slli b t2 t2 2;
  Asm.add b t1 t1 a2;
  Asm.add b t2 t2 a2;
  Asm.lw b t3 0 t1;   (* cost[u] *)
  Asm.lw b t4 0 t2;   (* cost[v] *)
  Asm.addi b t3 t3 1;
  Asm.bge b t3 t4 "skip";
  Asm.sw b t3 0 t2;   (* guarded relaxation *)
  Asm.label b "skip";
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.bltu b a0 a3 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let src, dst, cost = inputs n in
  let cost = Array.copy cost in
  for e = 0 to n - 1 do
    let nc = cost.(src.(e)) + 1 in
    if nc < cost.(dst.(e)) then cost.(dst.(e)) <- nc
  done;
  cost

let make ?(n = 4096) () =
  {
    Kernel.name = "bfs";
    description = "bfs: edge relaxation sweep (irregular, guarded stores)";
    parallel = false;
    fp = false;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let src, dst, cost = inputs n in
        Main_memory.blit_words mem src_base src;
        Main_memory.blit_words mem dst_base dst;
        Main_memory.blit_words mem cost_base cost);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, src_base + (4 * lo));
          (Reg.a1, dst_base + (4 * lo));
          (Reg.a2, cost_base);
          (Reg.a3, src_base + (4 * hi));
        ]);
    fargs = [];
    check = (fun mem -> Kernel.check_words mem ~addr:cost_base ~expected:(reference n));
  }
