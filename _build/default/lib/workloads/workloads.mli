(** Registry of all benchmark kernels used by the evaluation. *)

val all : unit -> Kernel.t list
(** The full 20-kernel Rodinia suite at default sizes, in alphabetical
    order. *)

val find : string -> Kernel.t
(** Lookup by name. Raises [Not_found] on an unknown name. *)

val names : unit -> string list

val opencgra_compatible : unit -> Kernel.t list
(** The eight kernels used for the OpenCGRA comparison (Figure 12) — the
    ones without predicated bodies, which the baseline scheduler handles. *)

val dynaspam_shared : unit -> Kernel.t list
(** Kernels shared with the DynaSpAM evaluation (Figure 14). *)

val nn : ?n:int -> unit -> Kernel.t
(** The PE-scaling kernel (Figure 15) at a custom size. *)
