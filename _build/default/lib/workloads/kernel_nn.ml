(* Rodinia nn (nearest neighbor): Euclidean distance of every record to a
   target location — the paper's PE-scaling kernel (Figure 15), small enough
   to fit 16 PEs. *)

let lat_base = 0x100000
let lng_base = 0x140000
let out_base = 0x200000
let target_lat = 0.72
let target_lng = -1.31

let inputs n =
  let rng = Prng.create 0x4e4e in
  let lat = Array.init n (fun _ -> Kernel.float_input rng) in
  let lng = Array.init n (fun _ -> Kernel.float_input rng) in
  (lat, lng)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;
  Asm.flw b ft1 0 a1;
  Asm.fsub b ft0 ft0 fa0;
  Asm.fsub b ft1 ft1 fa1;
  Asm.fmul b ft0 ft0 ft0;
  Asm.fmul b ft1 ft1 ft1;
  Asm.fadd b ft0 ft0 ft1;
  Asm.fsqrt b ft2 ft0;
  Asm.fsw b ft2 0 a2;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.addi b a2 a2 4;
  Asm.bltu b a0 a3 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let lat, lng = inputs n in
  Array.init n (fun i ->
      let dx = r32 (lat.(i) -. r32 target_lat) in
      let dy = r32 (lng.(i) -. r32 target_lng) in
      let dx2 = r32 (dx *. dx) in
      let dy2 = r32 (dy *. dy) in
      r32 (sqrt (r32 (dx2 +. dy2))))

let make ?(n = 4096) () =
  {
    Kernel.name = "nn";
    description = "nearest neighbor: Euclidean distance to a target";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let lat, lng = inputs n in
        Main_memory.blit_floats mem lat_base lat;
        Main_memory.blit_floats mem lng_base lng);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, lat_base + (4 * lo));
          (Reg.a1, lng_base + (4 * lo));
          (Reg.a2, out_base + (4 * lo));
          (Reg.a3, lat_base + (4 * hi));
        ]);
    fargs = [ (Reg.fa0, target_lat); (Reg.fa1, target_lng) ];
    check = (fun mem -> Kernel.check_floats mem ~addr:out_base ~expected:(reference n));
  }
