(* Rodinia nw (Needleman-Wunsch): a running-maximum dynamic-programming
   recurrence. The carried register chain bounds pipelining — the kind of
   loop where MESA's II_rec matters. Not parallel. *)

let s_base = 0x100000
let t_base = 0x140000
let out_base = 0x200000

let inputs n =
  let rng = Prng.create 0x6e77 in
  let s = Array.init n (fun _ -> Prng.int_in rng (-8) 8) in
  let t = Array.init n (fun _ -> Prng.int_in rng (-64) 64) in
  (s, t)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  (* t0 carries the running score. *)
  Asm.label b "loop";
  Asm.lw b t1 0 a0;    (* s[i] *)
  Asm.lw b t2 0 a1;    (* t[i] *)
  Asm.add b t1 t0 t1;  (* prev + s[i] *)
  Asm.bge b t1 t2 "keep";
  Asm.mv b t1 t2;      (* guarded: take t[i] *)
  Asm.label b "keep";
  Asm.mv b t0 t1;
  Asm.sw b t0 0 a2;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.addi b a2 a2 4;
  Asm.bltu b a0 a3 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let s, t = inputs n in
  let out = Array.make n 0 in
  let prev = ref 0 in
  for i = 0 to n - 1 do
    prev := max (!prev + s.(i)) t.(i);
    out.(i) <- !prev
  done;
  out

let make ?(n = 4096) () =
  {
    Kernel.name = "nw";
    description = "needleman-wunsch: running-max DP recurrence (carried dep)";
    parallel = false;
    fp = false;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let s, t = inputs n in
        Main_memory.blit_words mem s_base s;
        Main_memory.blit_words mem t_base t);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.t0, 0);
          (Reg.a0, s_base + (4 * lo));
          (Reg.a1, t_base + (4 * lo));
          (Reg.a2, out_base + (4 * lo));
          (Reg.a3, s_base + (4 * hi));
        ]);
    fargs = [];
    check = (fun mem -> Kernel.check_words mem ~addr:out_base ~expected:(reference n));
  }
