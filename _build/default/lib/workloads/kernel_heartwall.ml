(* Rodinia heartwall: template correlation along the tracked wall — a
   4-tap sliding dot product of the image against a fixed template. The
   four image loads share a base register at consecutive offsets. *)

let img_base = 0x100000
let out_base = 0x200000
let template = [| 0.25; 0.5; 0.75; 0.5 |]

let inputs n =
  let rng = Prng.create 0x6877 in
  Array.init (n + 4) (fun _ -> Kernel.float_input rng)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;
  Asm.flw b ft1 4 a0;
  Asm.flw b ft2 8 a0;
  Asm.flw b ft3 12 a0;
  Asm.fmul b ft0 ft0 fa0;
  Asm.fmul b ft1 ft1 fa1;
  Asm.fmul b ft2 ft2 fa2;
  Asm.fmul b ft3 ft3 fa3;
  Asm.fadd b ft0 ft0 ft1;
  Asm.fadd b ft2 ft2 ft3;
  Asm.fadd b ft0 ft0 ft2;
  Asm.fsw b ft0 0 a1;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.bltu b a0 a2 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let img = inputs n in
  Array.init n (fun i ->
      let p k = r32 (img.(i + k) *. r32 template.(k)) in
      let s01 = r32 (p 0 +. p 1) in
      let s23 = r32 (p 2 +. p 3) in
      r32 (s01 +. s23))

let make ?(n = 2048) () =
  {
    Kernel.name = "heartwall";
    description = "heartwall: 4-tap template correlation along the wall";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup = (fun mem -> Main_memory.blit_floats mem img_base (inputs n));
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, img_base + (4 * lo));
          (Reg.a1, out_base + (4 * lo));
          (Reg.a2, img_base + (4 * hi));
        ]);
    fargs =
      [
        (Reg.fa0, template.(0)); (Reg.fa1, template.(1));
        (Reg.fa2, template.(2)); (Reg.fa3, template.(3));
      ];
    check = (fun mem -> Kernel.check_floats mem ~addr:out_base ~expected:(reference n));
  }
