(* Rodinia srad: speckle-reducing diffusion update — a diffusion
   coefficient from the local gradient, then an explicit Euler step. *)

let img_base = 0x100000
let grad_base = 0x140000
let out_base = 0x200000
let lambda = 0.25

let inputs n =
  let rng = Prng.create 0x7372 in
  let img = Array.init n (fun _ -> Kernel.r32 (Prng.float_in rng 0.0 255.0)) in
  let grad = Array.init n (fun _ -> Kernel.float_input rng) in
  (img, grad)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;      (* img *)
  Asm.flw b ft1 0 a1;      (* grad *)
  Asm.fmul b ft2 ft1 ft1;  (* g^2 *)
  Asm.fadd b ft3 fa0 ft2;  (* 1 + g^2 *)
  Asm.fdiv b ft3 fa0 ft3;  (* c = 1 / (1 + g^2) *)
  Asm.fmul b ft3 ft3 ft1;  (* c * g *)
  Asm.fmul b ft3 ft3 fa1;  (* lambda * c * g *)
  Asm.fadd b ft3 ft0 ft3;
  Asm.fsw b ft3 0 a2;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.addi b a2 a2 4;
  Asm.bltu b a0 a3 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let img, grad = inputs n in
  Array.init n (fun i ->
      let g2 = r32 (grad.(i) *. grad.(i)) in
      let den = r32 (1.0 +. g2) in
      let c = r32 (1.0 /. den) in
      let cg = r32 (c *. grad.(i)) in
      let d = r32 (cg *. r32 lambda) in
      r32 (img.(i) +. d))

let make ?(n = 2048) () =
  {
    Kernel.name = "srad";
    description = "srad: diffusion-coefficient update step";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let img, grad = inputs n in
        Main_memory.blit_floats mem img_base img;
        Main_memory.blit_floats mem grad_base grad);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, img_base + (4 * lo));
          (Reg.a1, grad_base + (4 * lo));
          (Reg.a2, out_base + (4 * lo));
          (Reg.a3, img_base + (4 * hi));
        ]);
    fargs = [ (Reg.fa0, 1.0); (Reg.fa1, lambda) ];
    check = (fun mem -> Kernel.check_floats mem ~addr:out_base ~expected:(reference n));
  }
