(* Rodinia kmeans: assign each 2-D point to the nearest of four centroids.
   The cluster loop is unrolled, giving the forward-branch / predication
   pattern MESA handles with PE enables (§5.2). *)

let x_base = 0x100000
let y_base = 0x140000
let out_base = 0x200000

let centroids = [| (0.5, 0.5); (-0.7, 0.9); (1.2, -1.1); (-0.3, -0.8) |]

let inputs n =
  let rng = Prng.create 0x6b6d in
  let x = Array.init n (fun _ -> Kernel.float_input rng) in
  let y = Array.init n (fun _ -> Kernel.float_input rng) in
  (x, y)

(* Centroid coordinates live in saved FP registers: xs in fs0..fs3, ys in
   fs4..fs7. *)
let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;
  Asm.flw b ft1 0 a1;
  (* Cluster 0 seeds the running best. *)
  Asm.fsub b ft2 ft0 fs0;
  Asm.fmul b ft2 ft2 ft2;
  Asm.fsub b ft3 ft1 fs4;
  Asm.fmul b ft3 ft3 ft3;
  Asm.fadd b ft4 ft2 ft3;
  Asm.li b t1 0;
  (* Clusters 1..3 challenge it under a forward branch. *)
  List.iter
    (fun c ->
      let skip = Printf.sprintf "skip%d" c in
      Asm.fsub b ft2 ft0 (fs0 + c);
      Asm.fmul b ft2 ft2 ft2;
      Asm.fsub b ft3 ft1 (fs4 + c);
      Asm.fmul b ft3 ft3 ft3;
      Asm.fadd b ft5 ft2 ft3;
      Asm.flt b t2 ft5 ft4;
      Asm.beq b t2 zero skip;
      Asm.fmv b ft4 ft5;
      Asm.li b t1 c;
      Asm.label b skip)
    [ 1; 2; 3 ];
  Asm.sw b t1 0 a2;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.addi b a2 a2 4;
  Asm.bltu b a0 a3 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let x, y = inputs n in
  Array.init n (fun i ->
      let dist (cx, cy) =
        let dx = r32 (x.(i) -. r32 cx) in
        let dy = r32 (y.(i) -. r32 cy) in
        r32 (r32 (dx *. dx) +. r32 (dy *. dy))
      in
      let best = ref (dist centroids.(0)) in
      let idx = ref 0 in
      for c = 1 to 3 do
        let d = dist centroids.(c) in
        if d < !best then begin
          best := d;
          idx := c
        end
      done;
      !idx)

let make ?(n = 2048) () =
  {
    Kernel.name = "kmeans";
    description = "kmeans assignment: nearest of 4 centroids, unrolled";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let x, y = inputs n in
        Main_memory.blit_floats mem x_base x;
        Main_memory.blit_floats mem y_base y);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, x_base + (4 * lo));
          (Reg.a1, y_base + (4 * lo));
          (Reg.a2, out_base + (4 * lo));
          (Reg.a3, x_base + (4 * hi));
        ]);
    fargs =
      List.concat
        (List.mapi
           (fun c (cx, cy) -> [ (Reg.fs0 + c, cx); (Reg.fs4 + c, cy) ])
           (Array.to_list centroids));
    check = (fun mem -> Kernel.check_words mem ~addr:out_base ~expected:(reference n));
  }
