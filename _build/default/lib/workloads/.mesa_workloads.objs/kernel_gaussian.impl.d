lib/workloads/kernel_gaussian.ml: Array Asm Kernel Main_memory Prng Program Reg
