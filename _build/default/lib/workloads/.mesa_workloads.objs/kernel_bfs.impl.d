lib/workloads/kernel_bfs.ml: Array Asm Kernel Main_memory Prng Reg
