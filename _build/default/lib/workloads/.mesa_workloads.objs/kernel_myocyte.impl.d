lib/workloads/kernel_myocyte.ml: Array Asm Kernel Main_memory Prng Program Reg
