lib/workloads/kernel_hotspot.ml: Array Asm Kernel Main_memory Option Prng Program Reg
