lib/workloads/kernel_srad.ml: Array Asm Kernel Main_memory Prng Program Reg
