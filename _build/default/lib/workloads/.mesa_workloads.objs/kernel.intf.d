lib/workloads/kernel.mli: Machine Main_memory Prng Program Reg
