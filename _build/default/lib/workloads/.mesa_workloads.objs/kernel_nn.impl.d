lib/workloads/kernel_nn.ml: Array Asm Kernel Main_memory Prng Program Reg
