lib/workloads/kernel.ml: Array Float Machine Main_memory Printf Prng Program Reg
