lib/workloads/workloads.mli: Kernel
