lib/workloads/kernel_kmeans.ml: Array Asm Kernel List Main_memory Printf Prng Program Reg
