lib/workloads/kernel_lavamd.ml: Array Asm Kernel Main_memory Prng Program Reg
