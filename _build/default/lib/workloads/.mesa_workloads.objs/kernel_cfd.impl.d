lib/workloads/kernel_cfd.ml: Array Asm Kernel Main_memory Prng Program Reg
