lib/workloads/kernel_mummergpu.ml: Array Asm Kernel List Main_memory Prng Program Reg
