lib/workloads/kernel_lud.ml: Array Asm Kernel Main_memory Prng Program Reg
