lib/workloads/kernel_particlefilter.ml: Array Asm Kernel Main_memory Prng Program Reg
