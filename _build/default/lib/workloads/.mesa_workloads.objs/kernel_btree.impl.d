lib/workloads/kernel_btree.ml: Array Asm Kernel Main_memory Prng Program Reg
