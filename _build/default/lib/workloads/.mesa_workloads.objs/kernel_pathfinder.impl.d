lib/workloads/kernel_pathfinder.ml: Array Asm Kernel Main_memory Prng Program Reg
