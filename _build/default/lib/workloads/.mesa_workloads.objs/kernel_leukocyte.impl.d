lib/workloads/kernel_leukocyte.ml: Array Asm Kernel Main_memory Prng Program Reg
