lib/workloads/kernel_backprop.ml: Array Asm Kernel Main_memory Prng Program Reg
