lib/workloads/kernel_nw.ml: Array Asm Kernel Main_memory Prng Reg
