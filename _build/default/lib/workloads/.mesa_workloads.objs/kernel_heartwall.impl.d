lib/workloads/kernel_heartwall.ml: Array Asm Kernel Main_memory Prng Program Reg
