lib/workloads/kernel_hybridsort.ml: Array Asm Kernel Main_memory Prng Reg
