lib/workloads/kernel_streamcluster.ml: Array Asm Kernel Main_memory Prng Program Reg
