(* Rodinia lavaMD: pairwise particle interaction against a reference
   particle — 3-D distance, inverse-square force plus a root term. *)

let x_base = 0x100000
let y_base = 0x140000
let z_base = 0x180000
let out_base = 0x200000
let qx = 0.11
let qy = -0.42
let qz = 0.77

let inputs n =
  let rng = Prng.create 0x6c61 in
  let mk () = Array.init n (fun _ -> Kernel.float_input rng) in
  (mk (), mk (), mk ())

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;
  Asm.flw b ft1 0 a1;
  Asm.flw b ft2 0 a2;
  Asm.fsub b ft0 ft0 fa0;
  Asm.fsub b ft1 ft1 fa1;
  Asm.fsub b ft2 ft2 fa2;
  Asm.fmul b ft0 ft0 ft0;
  Asm.fmul b ft1 ft1 ft1;
  Asm.fmul b ft2 ft2 ft2;
  Asm.fadd b ft0 ft0 ft1;
  Asm.fadd b ft0 ft0 ft2;
  Asm.fadd b ft0 ft0 fa3;  (* r2 + eps *)
  Asm.fdiv b ft3 fa4 ft0;  (* 1 / r2 *)
  Asm.fsqrt b ft4 ft0;
  Asm.fadd b ft3 ft3 ft4;
  Asm.fsw b ft3 0 a3;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.addi b a2 a2 4;
  Asm.addi b a3 a3 4;
  Asm.bltu b a0 a4 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let x, y, z = inputs n in
  Array.init n (fun i ->
      let dx = r32 (x.(i) -. r32 qx) in
      let dy = r32 (y.(i) -. r32 qy) in
      let dz = r32 (z.(i) -. r32 qz) in
      let s = r32 (r32 (dx *. dx) +. r32 (dy *. dy)) in
      let s = r32 (s +. r32 (dz *. dz)) in
      let r2 = r32 (s +. 0.5) in
      let inv = r32 (1.0 /. r2) in
      let rt = r32 (sqrt r2) in
      r32 (inv +. rt))

let make ?(n = 2048) () =
  {
    Kernel.name = "lavamd";
    description = "lavaMD: 3-D pairwise particle force (div + sqrt)";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let x, y, z = inputs n in
        Main_memory.blit_floats mem x_base x;
        Main_memory.blit_floats mem y_base y;
        Main_memory.blit_floats mem z_base z);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, x_base + (4 * lo));
          (Reg.a1, y_base + (4 * lo));
          (Reg.a2, z_base + (4 * lo));
          (Reg.a3, out_base + (4 * lo));
          (Reg.a4, x_base + (4 * hi));
        ]);
    fargs =
      [ (Reg.fa0, qx); (Reg.fa1, qy); (Reg.fa2, qz); (Reg.fa3, 0.5); (Reg.fa4, 1.0) ];
    check = (fun mem -> Kernel.check_floats mem ~addr:out_base ~expected:(reference n));
  }
