(* Rodinia pathfinder: next-row DP step, dst_i = w_i + min of the three
   neighbours in the previous row. Two forward branches realize the min. *)

let src_base = 0x100000
let w_base = 0x140000
let out_base = 0x200000

let inputs n =
  let rng = Prng.create 0x7068 in
  let src = Array.init (n + 2) (fun _ -> Prng.int rng 100) in
  let w = Array.init n (fun _ -> Prng.int rng 10) in
  (src, w)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  (* a0 points at src[i+1] (the center); neighbours at -4 and +4. *)
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.lw b t1 0 a0;
  Asm.lw b t2 (-4) a0;
  Asm.lw b t3 4 a0;
  Asm.bge b t2 t1 "no_left";
  Asm.mv b t1 t2;
  Asm.label b "no_left";
  Asm.bge b t3 t1 "no_right";
  Asm.mv b t1 t3;
  Asm.label b "no_right";
  Asm.lw b t4 0 a1;
  Asm.add b t1 t1 t4;
  Asm.sw b t1 0 a2;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.addi b a2 a2 4;
  Asm.bltu b a0 a3 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let src, w = inputs n in
  Array.init n (fun i ->
      let m = min src.(i + 1) (min src.(i) src.(i + 2)) in
      m + w.(i))

let make ?(n = 4096) () =
  {
    Kernel.name = "pathfinder";
    description = "pathfinder: DP row step with 3-way min (predicated)";
    parallel = true;
    fp = false;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let src, w = inputs n in
        Main_memory.blit_words mem src_base src;
        Main_memory.blit_words mem w_base w);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, src_base + (4 * (lo + 1)));
          (Reg.a1, w_base + (4 * lo));
          (Reg.a2, out_base + (4 * lo));
          (Reg.a3, src_base + (4 * (hi + 1)));
        ]);
    fargs = [];
    check = (fun mem -> Kernel.check_words mem ~addr:out_base ~expected:(reference n));
  }
