(* Rodinia mummergpu: substring matching — at each text position, compare
   four pattern bytes against the text and record how many match. Exercises
   the byte-granularity loads (lbu) of the memory system. *)

let pattern = [| 0x41; 0x43; 0x47; 0x54 |] (* "ACGT" *)
let text_base = 0x100000
let out_base = 0x200000

let inputs n =
  let rng = Prng.create 0x6d75 in
  (* DNA-ish alphabet so matches actually occur. *)
  Array.init (n + 4) (fun _ ->
      [| 0x41; 0x43; 0x47; 0x54 |].(Prng.int rng 4))

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.li b t2 0;
  for k = 0 to 3 do
    Asm.lbu b t1 k a0;
    Asm.xori b t1 t1 pattern.(k);
    Asm.sltiu b t1 t1 1; (* 1 when the byte matched *)
    Asm.add b t2 t2 t1
  done;
  Asm.sw b t2 0 a1;
  Asm.addi b a0 a0 1;
  Asm.addi b a1 a1 4;
  Asm.bltu b a0 a2 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let text = inputs n in
  Array.init n (fun i ->
      Array.to_list pattern
      |> List.mapi (fun k p -> if text.(i + k) = p then 1 else 0)
      |> List.fold_left ( + ) 0)

let make ?(n = 4096) () =
  {
    Kernel.name = "mummergpu";
    description = "mummergpu: 4-byte pattern match per text position";
    parallel = true;
    fp = false;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        Array.iteri
          (fun i byte -> Main_memory.store_byte mem (text_base + i) byte)
          (inputs n));
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, text_base + lo);
          (Reg.a1, out_base + (4 * lo));
          (Reg.a2, text_base + hi);
        ]);
    fargs = [];
    check = (fun mem -> Kernel.check_words mem ~addr:out_base ~expected:(reference n));
  }
