(* Rodinia cfd: per-cell Euler flux contribution — the FP-heaviest kernel,
   with a divide and a square root on the critical path. *)

let d_base = 0x100000
let e_base = 0x140000
let vx_base = 0x180000
let vy_base = 0x1c0000
let out_base = 0x200000

let inputs n =
  let rng = Prng.create 0x6366 in
  let mk () = Array.init n (fun _ -> Kernel.float_input rng) in
  let d = mk () and e = mk () and vx = mk () and vy = mk () in
  (d, e, vx, vy)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;
  Asm.flw b ft1 0 a1;
  Asm.flw b ft2 0 a2;
  Asm.flw b ft3 0 a3;
  Asm.fmul b ft4 ft0 ft2;
  Asm.fmul b ft5 ft1 ft3;
  Asm.fadd b ft4 ft4 ft5;
  Asm.fmul b ft6 ft0 ft0;
  Asm.fadd b ft6 ft6 fa0;
  Asm.fdiv b ft4 ft4 ft6;
  Asm.fmul b ft7 ft2 ft2;
  Asm.fmul b ft8 ft3 ft3;
  Asm.fadd b ft7 ft7 ft8;
  Asm.fsqrt b ft7 ft7;
  Asm.fadd b ft4 ft4 ft7;
  Asm.fsw b ft4 0 a4;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.addi b a2 a2 4;
  Asm.addi b a3 a3 4;
  Asm.addi b a4 a4 4;
  Asm.bltu b a0 a5 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let d, e, vx, vy = inputs n in
  Array.init n (fun i ->
      let m1 = r32 (d.(i) *. vx.(i)) in
      let m2 = r32 (e.(i) *. vy.(i)) in
      let num = r32 (m1 +. m2) in
      let den = r32 (r32 (d.(i) *. d.(i)) +. 1.0) in
      let q = r32 (num /. den) in
      let s = r32 (r32 (vx.(i) *. vx.(i)) +. r32 (vy.(i) *. vy.(i))) in
      let rt = r32 (sqrt s) in
      r32 (q +. rt))

let make ?(n = 2048) () =
  {
    Kernel.name = "cfd";
    description = "cfd: per-cell Euler flux (divide + sqrt heavy)";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let d, e, vx, vy = inputs n in
        Main_memory.blit_floats mem d_base d;
        Main_memory.blit_floats mem e_base e;
        Main_memory.blit_floats mem vx_base vx;
        Main_memory.blit_floats mem vy_base vy);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, d_base + (4 * lo));
          (Reg.a1, e_base + (4 * lo));
          (Reg.a2, vx_base + (4 * lo));
          (Reg.a3, vy_base + (4 * lo));
          (Reg.a4, out_base + (4 * lo));
          (Reg.a5, d_base + (4 * hi));
        ]);
    fargs = [ (Reg.fa0, 1.0) ];
    check = (fun mem -> Kernel.check_floats mem ~addr:out_base ~expected:(reference n));
  }
