(* Rodinia gaussian: one row-elimination step, row_j -= ratio * pivot_j. *)

let a_base = 0x100000
let pivot_base = 0x140000
let out_base = 0x200000
let ratio = 0.437

let inputs n =
  let rng = Prng.create 0x6761 in
  let a = Array.init n (fun _ -> Kernel.float_input rng) in
  let p = Array.init n (fun _ -> Kernel.float_input rng) in
  (a, p)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;
  Asm.flw b ft1 0 a1;
  Asm.fmul b ft1 ft1 fa0;
  Asm.fsub b ft0 ft0 ft1;
  Asm.fsw b ft0 0 a2;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.addi b a2 a2 4;
  Asm.bltu b a0 a3 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let a, p = inputs n in
  Array.init n (fun i -> r32 (a.(i) -. r32 (p.(i) *. r32 ratio)))

let make ?(n = 4096) () =
  {
    Kernel.name = "gaussian";
    description = "gaussian elimination: row update against the pivot row";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let a, p = inputs n in
        Main_memory.blit_floats mem a_base a;
        Main_memory.blit_floats mem pivot_base p);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, a_base + (4 * lo));
          (Reg.a1, pivot_base + (4 * lo));
          (Reg.a2, out_base + (4 * lo));
          (Reg.a3, a_base + (4 * hi));
        ]);
    fargs = [ (Reg.fa0, ratio) ];
    check = (fun mem -> Kernel.check_floats mem ~addr:out_base ~expected:(reference n));
  }
