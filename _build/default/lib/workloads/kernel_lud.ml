(* Rodinia lud: the LU-decomposition inner update a_j -= l * u_j, done in
   place on the active row. *)

let a_base = 0x100000
let u_base = 0x140000
let l_factor = 0.618

let inputs n =
  let rng = Prng.create 0x6c75 in
  let a = Array.init n (fun _ -> Kernel.float_input rng) in
  let u = Array.init n (fun _ -> Kernel.float_input rng) in
  (a, u)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;
  Asm.flw b ft1 0 a1;
  Asm.fmul b ft1 ft1 fa0;
  Asm.fsub b ft0 ft0 ft1;
  Asm.fsw b ft0 0 a0;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.bltu b a0 a2 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let a, u = inputs n in
  Array.init n (fun i -> r32 (a.(i) -. r32 (u.(i) *. r32 l_factor)))

let make ?(n = 4096) () =
  {
    Kernel.name = "lud";
    description = "lud: in-place LU inner row update";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let a, u = inputs n in
        Main_memory.blit_floats mem a_base a;
        Main_memory.blit_floats mem u_base u);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, a_base + (4 * lo));
          (Reg.a1, u_base + (4 * lo));
          (Reg.a2, a_base + (4 * hi));
        ]);
    fargs = [ (Reg.fa0, l_factor) ];
    check = (fun mem -> Kernel.check_floats mem ~addr:a_base ~expected:(reference n));
  }
