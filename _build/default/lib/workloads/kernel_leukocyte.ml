(* Rodinia leukocyte: the GICOV step — directional gradient products
   accumulated per cell from the two gradient fields. *)

let gx_base = 0x100000
let gy_base = 0x140000
let out_base = 0x200000

let inputs n =
  let rng = Prng.create 0x6c65 in
  let gx = Array.init (n + 2) (fun _ -> Kernel.float_input rng) in
  let gy = Array.init (n + 2) (fun _ -> Kernel.float_input rng) in
  (gx, gy)

let build_program () =
  let b = Asm.create () in
  let open Reg in
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.flw b ft0 0 a0;
  Asm.flw b ft1 4 a0;
  Asm.flw b ft2 0 a1;
  Asm.flw b ft3 4 a1;
  Asm.fmul b ft4 ft0 ft2;  (* gx_i * gy_i *)
  Asm.fmul b ft5 ft1 ft3;  (* gx_{i+1} * gy_{i+1} *)
  Asm.fadd b ft4 ft4 ft5;
  Asm.fmul b ft6 ft0 ft0;
  Asm.fmul b ft7 ft2 ft2;
  Asm.fadd b ft6 ft6 ft7;
  Asm.fadd b ft6 ft6 fa0;  (* variance + eps *)
  Asm.fdiv b ft4 ft4 ft6;  (* normalized gradient product *)
  Asm.fsw b ft4 0 a2;
  Asm.addi b a0 a0 4;
  Asm.addi b a1 a1 4;
  Asm.addi b a2 a2 4;
  Asm.bltu b a0 a3 "loop";
  Asm.ecall b;
  Asm.assemble b

let reference n =
  let r32 = Kernel.r32 in
  let gx, gy = inputs n in
  Array.init n (fun i ->
      let num = r32 (r32 (gx.(i) *. gy.(i)) +. r32 (gx.(i + 1) *. gy.(i + 1))) in
      let den = r32 (r32 (r32 (gx.(i) *. gx.(i)) +. r32 (gy.(i) *. gy.(i))) +. 1.0) in
      r32 (num /. den))

let make ?(n = 2048) () =
  {
    Kernel.name = "leukocyte";
    description = "leukocyte: normalized directional gradient products (GICOV)";
    parallel = true;
    fp = true;
    n;
    program = build_program ();
    setup =
      (fun mem ->
        let gx, gy = inputs n in
        Main_memory.blit_floats mem gx_base gx;
        Main_memory.blit_floats mem gy_base gy);
    args =
      (fun ~lo ~hi ->
        [
          (Reg.a0, gx_base + (4 * lo));
          (Reg.a1, gy_base + (4 * lo));
          (Reg.a2, out_base + (4 * lo));
          (Reg.a3, gx_base + (4 * hi));
        ]);
    fargs = [ (Reg.fa0, 1.0) ];
    check = (fun mem -> Kernel.check_floats mem ~addr:out_base ~expected:(reference n));
  }
