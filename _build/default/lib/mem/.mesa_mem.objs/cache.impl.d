lib/mem/cache.ml: Array Option
