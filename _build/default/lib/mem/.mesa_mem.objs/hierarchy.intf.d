lib/mem/hierarchy.mli: Cache
