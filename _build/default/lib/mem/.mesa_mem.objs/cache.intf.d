lib/mem/cache.mli:
