lib/mem/hierarchy.ml: Array Cache
