lib/mem/main_memory.mli:
