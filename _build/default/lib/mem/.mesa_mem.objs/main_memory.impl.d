lib/mem/main_memory.ml: Array Bytes Char Int32 Printf Sys
