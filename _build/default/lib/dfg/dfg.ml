type file = X | F

type src = Node of int | Reg_in of Reg.t * file

type node = {
  instr : Isa.t;
  addr : int;
  srcs : src array;
  guards : (int * bool) list;
  hidden : src option;
  prev_store : int option;
}

type t = {
  nodes : node array;
  live_in_x : Reg.t list;
  live_in_f : Reg.t list;
  live_out_x : (Reg.t * src) list;
  live_out_f : (Reg.t * src) list;
  back_branch : int;
  entry_addr : int;
  exit_addr : int;
}

type edge_kind = Data of int | Hidden | Guard | Mem_order

let node_count t = Array.length t.nodes

let edges t =
  let acc = ref [] in
  Array.iteri
    (fun j nd ->
      Array.iteri
        (fun k s -> match s with Node i -> acc := (i, j, Data k) :: !acc | Reg_in _ -> ())
        nd.srcs;
      (match nd.hidden with
      | Some (Node i) -> acc := (i, j, Hidden) :: !acc
      | Some (Reg_in _) | None -> ());
      List.iter (fun (b, _) -> acc := (b, j, Guard) :: !acc) nd.guards;
      match nd.prev_store with
      | Some s -> acc := (s, j, Mem_order) :: !acc
      | None -> ())
    t.nodes;
  List.rev !acc

let data_preds t i =
  let nd = t.nodes.(i) in
  let from_srcs =
    Array.to_list nd.srcs
    |> List.filter_map (function Node p -> Some p | Reg_in _ -> None)
  in
  match nd.hidden with Some (Node p) -> p :: from_srcs | Some (Reg_in _) | None -> from_srcs

let children t =
  let out = Array.make (node_count t) [] in
  List.iter (fun (i, j, _) -> out.(i) <- j :: out.(i)) (edges t);
  Array.map List.rev out

let is_memory_node t i = Isa.is_memory t.nodes.(i).instr
let is_branch_node t i = Isa.op_class t.nodes.(i).instr = Isa.C_branch

let validate t =
  let n = node_count t in
  let check_src j = function
    | Node i when i >= j ->
      Error (Printf.sprintf "node %d has forward/self source %d" j i)
    | Node i when i < 0 -> Error (Printf.sprintf "node %d has negative source %d" j i)
    | Node _ | Reg_in _ -> Ok ()
  in
  let rec fold_result f = function
    | [] -> Ok ()
    | x :: rest -> ( match f x with Ok () -> fold_result f rest | Error _ as e -> e)
  in
  let check_node j =
    let nd = t.nodes.(j) in
    match fold_result (check_src j) (Array.to_list nd.srcs) with
    | Error _ as e -> e
    | Ok () -> (
      match Option.map (check_src j) nd.hidden with
      | Some (Error _ as e) -> e
      | Some (Ok ()) | None ->
        let guard_ok (b, _) =
          if b < 0 || b >= j then
            Error (Printf.sprintf "node %d has invalid guard %d" j b)
          else if not (is_branch_node t b) then
            Error (Printf.sprintf "node %d guarded by non-branch %d" j b)
          else Ok ()
        in
        (match fold_result guard_ok nd.guards with
        | Error _ as e -> e
        | Ok () -> (
          match nd.prev_store with
          | Some s when s >= j || s < 0 ->
            Error (Printf.sprintf "node %d has invalid store link %d" j s)
          | Some s when not (Isa.is_store t.nodes.(s).instr) ->
            Error (Printf.sprintf "node %d store link %d is not a store" j s)
          | Some _ | None -> Ok ())))
  in
  if n = 0 then Error "empty graph"
  else if t.back_branch < 0 || t.back_branch >= n then Error "back_branch out of range"
  else if not (is_branch_node t t.back_branch) then Error "back_branch is not a branch"
  else
    let rec go j = if j = n then Ok () else
      match check_node j with Ok () -> go (j + 1) | Error _ as e -> e
    in
    go 0

let loop_carried t =
  let written_x = t.live_out_x and written_f = t.live_out_f in
  let carried_of file live_ins written =
    List.filter_map
      (fun r ->
        match List.assoc_opt r written with
        | Some producer -> Some (r, file, producer)
        | None -> None)
      live_ins
  in
  carried_of X t.live_in_x written_x @ carried_of F t.live_in_f written_f

(* Equation 2 over every dependence kind. Program order is topological, so a
   single left-to-right sweep suffices. *)
let completion_times t ~op_latency ~transfer =
  let n = node_count t in
  let compl_ = Array.make n 0.0 in
  for j = 0 to n - 1 do
    let nd = t.nodes.(j) in
    let arrival = ref 0.0 in
    let note_src = function
      | Node i -> arrival := Float.max !arrival (compl_.(i) +. transfer i j)
      | Reg_in _ -> ()
    in
    Array.iter note_src nd.srcs;
    Option.iter note_src nd.hidden;
    List.iter (fun (b, _) -> note_src (Node b)) nd.guards;
    Option.iter (fun s -> note_src (Node s)) nd.prev_store;
    compl_.(j) <- !arrival +. op_latency j
  done;
  compl_

let iteration_latency t ~op_latency ~transfer =
  let compl_ = completion_times t ~op_latency ~transfer in
  Array.fold_left Float.max 0.0 compl_

let critical_path t ~op_latency ~transfer =
  let compl_ = completion_times t ~op_latency ~transfer in
  let n = node_count t in
  (* Start from the globally latest node, then walk the maximizing arrival
     backwards. *)
  let last = ref 0 in
  for j = 1 to n - 1 do
    if compl_.(j) > compl_.(!last) then last := j
  done;
  let rec walk j acc =
    let nd = t.nodes.(j) in
    let best = ref None in
    let consider = function
      | Node i ->
        let arr = compl_.(i) +. transfer i j in
        (match !best with
        | Some (_, a) when a >= arr -> ()
        | _ -> best := Some (i, arr))
      | Reg_in _ -> ()
    in
    Array.iter consider nd.srcs;
    Option.iter consider nd.hidden;
    List.iter (fun (b, _) -> consider (Node b)) nd.guards;
    Option.iter (fun s -> consider (Node s)) nd.prev_store;
    match !best with None -> j :: acc | Some (i, _) -> walk i (j :: acc)
  in
  walk !last []

let pp ppf t =
  Format.fprintf ppf "@[<v>DFG: %d nodes, entry 0x%x, exit 0x%x, back branch %d@,"
    (node_count t) t.entry_addr t.exit_addr t.back_branch;
  Array.iteri
    (fun j nd ->
      let src_str = function
        | Node i -> Printf.sprintf "n%d" i
        | Reg_in (r, X) -> Reg.name r
        | Reg_in (r, F) -> Reg.fname r
      in
      let srcs = Array.to_list nd.srcs |> List.map src_str |> String.concat ", " in
      Format.fprintf ppf "  n%-3d %-28s <- [%s]" j
        (Format.asprintf "%a" Isa.pp nd.instr)
        srcs;
      if nd.guards <> [] then
        Format.fprintf ppf " guards:%s"
          (String.concat ","
             (List.map (fun (b, w) -> Printf.sprintf "n%d/%b" b w) nd.guards));
      Format.fprintf ppf "@,")
    t.nodes;
  Format.fprintf ppf "@]"

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dfg {\n  rankdir=TB;\n  node [shape=box, fontname=monospace];\n";
  Array.iteri
    (fun j nd ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%d: %s\"];\n" j j
           (Format.asprintf "%a" Isa.pp nd.instr)))
    t.nodes;
  List.iter
    (fun (i, j, kind) ->
      let style =
        match kind with
        | Data _ -> ""
        | Hidden -> " [style=dashed]"
        | Guard -> " [style=dotted, color=blue]"
        | Mem_order -> " [style=dotted, color=red]"
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" i j style))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
