type t = {
  dfg : Dfg.t;
  defaults : float array;              (* static op latency per node *)
  op_measured : Stats.Running.t array;
  transfer_estimate : (int * int, float) Hashtbl.t;
  transfer_measured : (int * int, Stats.Running.t) Hashtbl.t;
}

let create ?(defaults = Latency.accel) dfg =
  let n = Dfg.node_count dfg in
  {
    dfg;
    defaults =
      Array.init n (fun i ->
          float_of_int (defaults (Isa.op_class dfg.Dfg.nodes.(i).Dfg.instr)));
    op_measured = Array.init n (fun _ -> Stats.Running.create ());
    transfer_estimate = Hashtbl.create 64;
    transfer_measured = Hashtbl.create 64;
  }

let graph t = t.dfg
let op_latency t i = Stats.Running.mean_or t.op_measured.(i) t.defaults.(i)
let observe_op t i x = Stats.Running.add t.op_measured.(i) x

let transfer t i j =
  match Hashtbl.find_opt t.transfer_measured (i, j) with
  | Some r when Stats.Running.count r > 0 -> Stats.Running.mean r
  | Some _ | None -> (
    match Hashtbl.find_opt t.transfer_estimate (i, j) with
    | Some e -> e
    | None -> 1.0)

let set_transfer_estimate t i j e =
  Hashtbl.replace t.transfer_estimate (i, j) e;
  Hashtbl.remove t.transfer_measured (i, j)

let observe_transfer t i j x =
  let r =
    match Hashtbl.find_opt t.transfer_measured (i, j) with
    | Some r -> r
    | None ->
      let r = Stats.Running.create () in
      Hashtbl.add t.transfer_measured (i, j) r;
      r
  in
  Stats.Running.add r x

let iteration_latency t =
  Dfg.iteration_latency t.dfg ~op_latency:(op_latency t) ~transfer:(transfer t)

let completion_times t =
  Dfg.completion_times t.dfg ~op_latency:(op_latency t) ~transfer:(transfer t)

let critical_path t =
  Dfg.critical_path t.dfg ~op_latency:(op_latency t) ~transfer:(transfer t)

let reset_measurements t =
  Array.iter Stats.Running.reset t.op_measured;
  Hashtbl.reset t.transfer_measured
