(** Mutable latency weights over a {!Dfg.t} — MESA's real-time performance
    model.

    Node weights start from the static operation-latency table and are
    replaced by running averages of measured per-instruction latencies
    reported by the accelerator's counters (§5.2). Edge weights start from
    the interconnect's analytic estimate (set when a mapping is made) and are
    likewise refined by measurement. The optimizer reads
    {!iteration_latency}/{!critical_path} from here to decide whether a
    remap is worthwhile. *)

type t

val create : ?defaults:Latency.table -> Dfg.t -> t
(** Fresh model; node weights seeded from [defaults] (default
    {!Latency.accel}), all transfers at the 1-cycle neighbour estimate. *)

val graph : t -> Dfg.t

val op_latency : t -> int -> float
(** Current weight of a node: measured mean if any sample exists, else the
    static default. *)

val observe_op : t -> int -> float -> unit
(** Record a measured operation latency (counter readout). Memory nodes'
    AMAT is fed through here too. *)

val transfer : t -> int -> int -> float
(** Current weight of edge [(i, j)]. *)

val set_transfer_estimate : t -> int -> int -> float -> unit
(** Install the analytic estimate for an edge (called by the mapper when
    placement decides distances). Clears any stale measurements. *)

val observe_transfer : t -> int -> int -> float -> unit

val iteration_latency : t -> float
(** Modeled latency of one iteration under current weights (Eq. 2). *)

val completion_times : t -> float array
val critical_path : t -> int list

val reset_measurements : t -> unit
(** Drop all measured samples, keeping estimates — used when the mapping
    changes shape. *)
