lib/dfg/dfg.ml: Array Buffer Float Format Isa List Option Printf Reg String
