lib/dfg/perf_model.mli: Dfg Latency
