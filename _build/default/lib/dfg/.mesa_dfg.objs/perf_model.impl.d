lib/dfg/perf_model.ml: Array Dfg Hashtbl Isa Latency Stats
