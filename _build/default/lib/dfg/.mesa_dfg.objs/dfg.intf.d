lib/dfg/dfg.mli: Format Isa Reg
