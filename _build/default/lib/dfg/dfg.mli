(** The dataflow-graph architecture model (§3.1).

    A [Dfg.t] represents one loop body as a directed acyclic graph:
    instructions are nodes, data dependencies are edges. Node weights
    (operation latencies) and edge weights (transfer latencies) live in a
    separate {!Perf_model.t} so the same structural graph can be re-weighted
    as measurements arrive — that separation is what lets MESA keep a
    "real-time performance model" and re-optimize.

    Indexing is program order, which is also a topological order: every data
    source of node [i] is either a live-in or a node with a smaller index
    (the LDFG's defining property). The structure also carries the
    loop-level facts the backend needs: guards for predicated forward
    branches, memory-ordering links, live-in/live-out register sets, and the
    backward branch that decides whether another iteration runs. *)

(** Which register file a value lives in. *)
type file = X | F

(** Where a node's input value comes from. *)
type src =
  | Node of int            (** output of an earlier node *)
  | Reg_in of Reg.t * file (** register-file value at iteration start *)

type node = {
  instr : Isa.t;
  addr : int;                  (** instruction address in the region *)
  srcs : src array;            (** register inputs in operand order *)
  guards : (int * bool) list;
      (** [(b, disable_when)] — node is disabled when branch node [b]'s
          taken-outcome equals [disable_when] *)
  hidden : src option;
      (** previous producer of this node's destination; a disabled node
          forwards this value instead (§5.2, forward branches) *)
  prev_store : int option;     (** last preceding store, for memory ordering *)
}

type t = {
  nodes : node array;
  live_in_x : Reg.t list;      (** integer registers read before written *)
  live_in_f : Reg.t list;
  live_out_x : (Reg.t * src) list; (** final producer of each written int reg *)
  live_out_f : (Reg.t * src) list;
  back_branch : int;           (** node index of the loop's backward branch *)
  entry_addr : int;
  exit_addr : int;             (** PC when the loop finally falls through *)
}

(** Edge classification, used for weighting and for drawing. *)
type edge_kind =
  | Data of int   (** operand position *)
  | Hidden        (** old-value forwarding into a predicated node *)
  | Guard         (** enable signal from a branch node *)
  | Mem_order     (** store-to-memory-op program-order link *)

val node_count : t -> int

val edges : t -> (int * int * edge_kind) list
(** All (producer, consumer, kind) pairs; producers always have the smaller
    index. *)

val data_preds : t -> int -> int list
(** Producer nodes feeding node [i] through register data edges (including
    the hidden-value edge). *)

val children : t -> int list array
(** For each node, the nodes consuming its output via any edge kind. *)

val validate : t -> (unit, string) result
(** Check structural invariants: sources strictly backward, guards refer to
    branch nodes, [back_branch] is a conditional branch, memory links are
    monotone. The property tests run this on every generated graph. *)

val loop_carried : t -> (Reg.t * file * src) list
(** Registers that are both live-in and written in the body: the
    iteration-to-iteration dependencies that bound pipelining. *)

val is_memory_node : t -> int -> bool
val is_branch_node : t -> int -> bool

val completion_times :
  t -> op_latency:(int -> float) -> transfer:(int -> int -> float) -> float array
(** Equation 2: [L_i = L_i.op + max over sources (L_s + L_(s,i))], live-ins
    arriving at cycle 0. Guard and memory-order edges participate with their
    transfer latency, since an operation cannot act before its enable
    arrives or its ordering predecessor resolves. *)

val iteration_latency :
  t -> op_latency:(int -> float) -> transfer:(int -> int -> float) -> float
(** [max_i L_i] — the latency of one loop iteration (§3.1). *)

val critical_path :
  t -> op_latency:(int -> float) -> transfer:(int -> int -> float) -> int list
(** The node chain realizing {!iteration_latency}, in execution order. *)

val pp : Format.formatter -> t -> unit
val to_dot : t -> string
(** Graphviz rendering with nodes labelled by disassembly. *)
