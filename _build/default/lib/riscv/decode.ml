let sign_extend ~bits v =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let of_word w =
  let u = Int32.to_int w land 0xFFFFFFFF in
  let opcode = u land 0x7F in
  let rd = (u lsr 7) land 0x1F in
  let funct3 = (u lsr 12) land 0x7 in
  let rs1 = (u lsr 15) land 0x1F in
  let rs2 = (u lsr 20) land 0x1F in
  let funct7 = (u lsr 25) land 0x7F in
  let imm_i = sign_extend ~bits:12 ((u lsr 20) land 0xFFF) in
  let imm_s = sign_extend ~bits:12 ((funct7 lsl 5) lor rd) in
  let imm_b =
    let bit12 = (u lsr 31) land 1
    and bit11 = (u lsr 7) land 1
    and bits10_5 = (u lsr 25) land 0x3F
    and bits4_1 = (u lsr 8) land 0xF in
    sign_extend ~bits:13
      ((bit12 lsl 12) lor (bit11 lsl 11) lor (bits10_5 lsl 5) lor (bits4_1 lsl 1))
  in
  let imm_u = u land 0xFFFFF000 in
  let imm_u_signed = sign_extend ~bits:32 imm_u in
  let imm_j =
    let bit20 = (u lsr 31) land 1
    and bits19_12 = (u lsr 12) land 0xFF
    and bit11 = (u lsr 20) land 1
    and bits10_1 = (u lsr 21) land 0x3FF in
    sign_extend ~bits:21
      ((bit20 lsl 20) lor (bits19_12 lsl 12) lor (bit11 lsl 11) lor (bits10_1 lsl 1))
  in
  let bad fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match opcode with
  | 0x33 -> begin
    match (funct7, funct3) with
    | 0x00, 0 -> Ok (Isa.Rtype (ADD, rd, rs1, rs2))
    | 0x20, 0 -> Ok (Isa.Rtype (SUB, rd, rs1, rs2))
    | 0x00, 1 -> Ok (Isa.Rtype (SLL, rd, rs1, rs2))
    | 0x00, 2 -> Ok (Isa.Rtype (SLT, rd, rs1, rs2))
    | 0x00, 3 -> Ok (Isa.Rtype (SLTU, rd, rs1, rs2))
    | 0x00, 4 -> Ok (Isa.Rtype (XOR, rd, rs1, rs2))
    | 0x00, 5 -> Ok (Isa.Rtype (SRL, rd, rs1, rs2))
    | 0x20, 5 -> Ok (Isa.Rtype (SRA, rd, rs1, rs2))
    | 0x00, 6 -> Ok (Isa.Rtype (OR, rd, rs1, rs2))
    | 0x00, 7 -> Ok (Isa.Rtype (AND, rd, rs1, rs2))
    | 0x01, 0 -> Ok (Isa.Rtype (MUL, rd, rs1, rs2))
    | 0x01, 1 -> Ok (Isa.Rtype (MULH, rd, rs1, rs2))
    | 0x01, 2 -> Ok (Isa.Rtype (MULHSU, rd, rs1, rs2))
    | 0x01, 3 -> Ok (Isa.Rtype (MULHU, rd, rs1, rs2))
    | 0x01, 4 -> Ok (Isa.Rtype (DIV, rd, rs1, rs2))
    | 0x01, 5 -> Ok (Isa.Rtype (DIVU, rd, rs1, rs2))
    | 0x01, 6 -> Ok (Isa.Rtype (REM, rd, rs1, rs2))
    | 0x01, 7 -> Ok (Isa.Rtype (REMU, rd, rs1, rs2))
    | _ -> bad "unsupported OP funct7/funct3: 0x%02x/%d" funct7 funct3
  end
  | 0x13 -> begin
    match funct3 with
    | 0 -> Ok (Isa.Itype (ADDI, rd, rs1, imm_i))
    | 2 -> Ok (Isa.Itype (SLTI, rd, rs1, imm_i))
    | 3 -> Ok (Isa.Itype (SLTIU, rd, rs1, imm_i))
    | 4 -> Ok (Isa.Itype (XORI, rd, rs1, imm_i))
    | 6 -> Ok (Isa.Itype (ORI, rd, rs1, imm_i))
    | 7 -> Ok (Isa.Itype (ANDI, rd, rs1, imm_i))
    | 1 ->
      if funct7 = 0 then Ok (Isa.Itype (SLLI, rd, rs1, rs2))
      else bad "unsupported SLLI funct7: 0x%02x" funct7
    | 5 -> begin
      match funct7 with
      | 0x00 -> Ok (Isa.Itype (SRLI, rd, rs1, rs2))
      | 0x20 -> Ok (Isa.Itype (SRAI, rd, rs1, rs2))
      | _ -> bad "unsupported shift funct7: 0x%02x" funct7
    end
    | _ -> bad "unsupported OP-IMM funct3: %d" funct3
  end
  | 0x03 -> begin
    match funct3 with
    | 0 -> Ok (Isa.Load (LB, rd, rs1, imm_i))
    | 1 -> Ok (Isa.Load (LH, rd, rs1, imm_i))
    | 2 -> Ok (Isa.Load (LW, rd, rs1, imm_i))
    | 4 -> Ok (Isa.Load (LBU, rd, rs1, imm_i))
    | 5 -> Ok (Isa.Load (LHU, rd, rs1, imm_i))
    | _ -> bad "unsupported LOAD funct3: %d" funct3
  end
  | 0x23 -> begin
    match funct3 with
    | 0 -> Ok (Isa.Store (SB, rs2, rs1, imm_s))
    | 1 -> Ok (Isa.Store (SH, rs2, rs1, imm_s))
    | 2 -> Ok (Isa.Store (SW, rs2, rs1, imm_s))
    | _ -> bad "unsupported STORE funct3: %d" funct3
  end
  | 0x63 -> begin
    match funct3 with
    | 0 -> Ok (Isa.Branch (BEQ, rs1, rs2, imm_b))
    | 1 -> Ok (Isa.Branch (BNE, rs1, rs2, imm_b))
    | 4 -> Ok (Isa.Branch (BLT, rs1, rs2, imm_b))
    | 5 -> Ok (Isa.Branch (BGE, rs1, rs2, imm_b))
    | 6 -> Ok (Isa.Branch (BLTU, rs1, rs2, imm_b))
    | 7 -> Ok (Isa.Branch (BGEU, rs1, rs2, imm_b))
    | _ -> bad "unsupported BRANCH funct3: %d" funct3
  end
  | 0x37 -> Ok (Isa.Lui (rd, imm_u_signed))
  | 0x17 -> Ok (Isa.Auipc (rd, imm_u_signed))
  | 0x6F -> Ok (Isa.Jal (rd, imm_j))
  | 0x67 ->
    if funct3 = 0 then Ok (Isa.Jalr (rd, rs1, imm_i))
    else bad "unsupported JALR funct3: %d" funct3
  | 0x07 ->
    if funct3 = 2 then Ok (Isa.Flw (rd, rs1, imm_i))
    else bad "unsupported LOAD-FP funct3: %d" funct3
  | 0x27 ->
    if funct3 = 2 then Ok (Isa.Fsw (rs2, rs1, imm_s))
    else bad "unsupported STORE-FP funct3: %d" funct3
  | 0x53 -> begin
    match funct7 with
    | 0x00 -> Ok (Isa.Ftype (FADD, rd, rs1, rs2))
    | 0x04 -> Ok (Isa.Ftype (FSUB, rd, rs1, rs2))
    | 0x08 -> Ok (Isa.Ftype (FMUL, rd, rs1, rs2))
    | 0x0C -> Ok (Isa.Ftype (FDIV, rd, rs1, rs2))
    | 0x2C -> Ok (Isa.Ftype (FSQRT, rd, rs1, 0))
    | 0x10 -> begin
      match funct3 with
      | 0 -> Ok (Isa.Ftype (FSGNJ, rd, rs1, rs2))
      | 1 -> Ok (Isa.Ftype (FSGNJN, rd, rs1, rs2))
      | 2 -> Ok (Isa.Ftype (FSGNJX, rd, rs1, rs2))
      | _ -> bad "unsupported FSGNJ funct3: %d" funct3
    end
    | 0x14 -> begin
      match funct3 with
      | 0 -> Ok (Isa.Ftype (FMIN, rd, rs1, rs2))
      | 1 -> Ok (Isa.Ftype (FMAX, rd, rs1, rs2))
      | _ -> bad "unsupported FMIN/FMAX funct3: %d" funct3
    end
    | 0x50 -> begin
      match funct3 with
      | 0 -> Ok (Isa.Fcmp (FLE, rd, rs1, rs2))
      | 1 -> Ok (Isa.Fcmp (FLT, rd, rs1, rs2))
      | 2 -> Ok (Isa.Fcmp (FEQ, rd, rs1, rs2))
      | _ -> bad "unsupported FCMP funct3: %d" funct3
    end
    | 0x60 ->
      if rs2 = 0 then Ok (Isa.Fcvt_w_s (rd, rs1))
      else bad "unsupported FCVT.W variant rs2: %d" rs2
    | 0x68 ->
      if rs2 = 0 then Ok (Isa.Fcvt_s_w (rd, rs1))
      else bad "unsupported FCVT.S variant rs2: %d" rs2
    | 0x70 -> Ok (Isa.Fmv_x_w (rd, rs1))
    | 0x78 -> Ok (Isa.Fmv_w_x (rd, rs1))
    | _ -> bad "unsupported OP-FP funct7: 0x%02x" funct7
  end
  | 0x73 -> begin
    match imm_i with
    | 0 -> Ok Isa.Ecall
    | 1 -> Ok Isa.Ebreak
    | _ -> bad "unsupported SYSTEM immediate: %d" imm_i
  end
  | 0x0F -> Ok Isa.Fence
  | _ -> bad "unsupported opcode: 0x%02x" opcode

let of_word_exn w =
  match of_word w with
  | Ok i -> i
  | Error msg -> invalid_arg ("Decode.of_word_exn: " ^ msg)
