(** Operation latency tables (cycles from inputs available to output
    produced), one per execution substrate.

    The paper models node weights [L_i.op] as constants per operation type
    unless measured otherwise (§3.1); these tables are those constants. The
    accelerator PEs are simpler and clocked differently than the OoO core's
    functional units, hence the distinct presets: the worked example of
    Figure 2 (add = 3, mul = 5) is the accelerator table. *)

type table = Isa.op_class -> int

val cpu : table
(** Out-of-order core functional-unit latencies: 1-cycle ALU, pipelined
    3-cycle multiply, 20-cycle divide, 4-cycle FP add/mul, 16-cycle FP
    divide/sqrt. Loads/stores return the cache-port latency floor (the
    hierarchy supplies the real number). *)

val accel : table
(** Spatial-accelerator PE latencies, matching Figure 2: 3-cycle integer
    ALU, 5-cycle multiplier, 3-cycle FP add, 5-cycle FP multiply, longer
    iterative divide/sqrt. *)

val occupancy_cpu : Isa.op_class -> int
(** Cycles a CPU functional unit stays busy per operation (1 for pipelined
    units; full latency for the iterative dividers). *)
