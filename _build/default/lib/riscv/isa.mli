(** The RV32IMF instruction subset understood by every layer of the repo.

    This is the ISA MESA's evaluation targets (benchmarks are cross-compiled
    to RV32G in the paper; the kernels only exercise I, M and F). Operand
    order follows the RISC-V convention: destination first, then sources.
    Immediates are stored sign-extended as native ints; branch/jump offsets
    are byte offsets relative to the instruction's own address. *)

(** Register-register integer ops (OP opcode, including the M extension). *)
type rop =
  | ADD | SUB | SLL | SLT | SLTU | XOR | SRL | SRA | OR | AND
  | MUL | MULH | MULHSU | MULHU | DIV | DIVU | REM | REMU

(** Register-immediate integer ops (OP-IMM opcode). *)
type iop = ADDI | SLTI | SLTIU | XORI | ORI | ANDI | SLLI | SRLI | SRAI

(** Conditional branches. *)
type bop = BEQ | BNE | BLT | BGE | BLTU | BGEU

(** Integer loads. *)
type lop = LB | LH | LW | LBU | LHU

(** Integer stores. *)
type sop = SB | SH | SW

(** Single-precision FP register-register ops. [FSQRT] ignores its second
    source. *)
type fop = FADD | FSUB | FMUL | FDIV | FSQRT | FMIN | FMAX | FSGNJ | FSGNJN | FSGNJX

(** FP comparisons; the result is written to an integer register. *)
type fcmp = FEQ | FLT | FLE

type t =
  | Rtype of rop * Reg.t * Reg.t * Reg.t  (** [Rtype (op, rd, rs1, rs2)] *)
  | Itype of iop * Reg.t * Reg.t * int    (** [Itype (op, rd, rs1, imm)] *)
  | Load of lop * Reg.t * Reg.t * int     (** [Load (op, rd, base, offset)] *)
  | Store of sop * Reg.t * Reg.t * int    (** [Store (op, src, base, offset)] *)
  | Branch of bop * Reg.t * Reg.t * int   (** [Branch (op, rs1, rs2, offset)] *)
  | Lui of Reg.t * int                    (** upper-20-bit immediate (pre-shifted value) *)
  | Auipc of Reg.t * int
  | Jal of Reg.t * int                    (** [Jal (rd, offset)] *)
  | Jalr of Reg.t * Reg.t * int           (** [Jalr (rd, base, offset)] *)
  | Ftype of fop * Reg.t * Reg.t * Reg.t  (** all operands in the FP file *)
  | Fcmp of fcmp * Reg.t * Reg.t * Reg.t  (** [Fcmp (op, rd_int, fs1, fs2)] *)
  | Flw of Reg.t * Reg.t * int            (** [Flw (fd, base, offset)] *)
  | Fsw of Reg.t * Reg.t * int            (** [Fsw (fsrc, base, offset)] *)
  | Fcvt_w_s of Reg.t * Reg.t             (** int rd <- float rs1 (RTZ) *)
  | Fcvt_s_w of Reg.t * Reg.t             (** float fd <- int rs1 *)
  | Fmv_x_w of Reg.t * Reg.t              (** raw bit move float -> int *)
  | Fmv_w_x of Reg.t * Reg.t              (** raw bit move int -> float *)
  | Ecall
  | Ebreak
  | Fence

(** Functional-unit class of an instruction; drives both the CPU timing model
    and the accelerator's PE capability masks (the F_op matrices of §3.3). *)
type op_class =
  | C_alu      (** single-cycle integer *)
  | C_mul      (** integer multiply *)
  | C_div      (** integer divide / remainder *)
  | C_fadd     (** FP add/sub/min/max/sign/compare/convert/move *)
  | C_fmul     (** FP multiply *)
  | C_fdiv     (** FP divide / sqrt *)
  | C_load
  | C_store
  | C_branch   (** conditional branch *)
  | C_jump     (** jal / jalr *)
  | C_system   (** ecall / ebreak / fence: never accelerable *)

val op_class : t -> op_class

val is_memory : t -> bool
(** Loads and stores of either register file. *)

val is_load : t -> bool
val is_store : t -> bool

val is_control : t -> bool
(** Branches and jumps. *)

val is_fp : t -> bool
(** Uses the FP pipeline (includes flw/fsw). *)

val writes_int : t -> Reg.t option
(** Integer destination register, if any ([x0] writes are reported as-is;
    consumers decide whether to discard them). *)

val writes_fp : t -> Reg.t option
(** FP destination register, if any. *)

val reads : t -> (Reg.t * [ `Int | `Fp ]) list
(** Source registers in operand order, tagged with their file. [x0] is
    included when architecturally read. *)

val branch_offset : t -> int option
(** Byte offset of a branch or jal, if this is one. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Assembly-style rendering (same output as {!Disasm.to_string}). *)
