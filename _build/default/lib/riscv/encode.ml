exception Unencodable of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unencodable s)) fmt

let op_op = 0x33
let op_imm = 0x13
let op_load = 0x03
let op_store = 0x23
let op_branch = 0x63
let op_lui = 0x37
let op_auipc = 0x17
let op_jal = 0x6F
let op_jalr = 0x67
let op_load_fp = 0x07
let op_store_fp = 0x27
let op_fp = 0x53
let op_system = 0x73
let op_misc_mem = 0x0F

let imm12_fits imm = imm >= -2048 && imm <= 2047
let branch_offset_fits off = off >= -4096 && off <= 4094 && off land 1 = 0
let jal_offset_fits off = off >= -1048576 && off <= 1048574 && off land 1 = 0

let check_reg kind r =
  if not (Reg.valid r) then fail "%s register out of range: %d" kind r;
  r

let check_imm12 imm =
  if not (imm12_fits imm) then fail "12-bit immediate out of range: %d" imm;
  imm land 0xFFF

let check_shamt imm =
  if imm < 0 || imm > 31 then fail "shift amount out of range: %d" imm;
  imm

(* Field packers; all operate on plain ints and convert to int32 last. *)

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  (imm lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor opcode

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  let hi = (imm lsr 5) land 0x7F and lo = imm land 0x1F in
  (hi lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (lo lsl 7) lor opcode

let b_type ~off ~rs2 ~rs1 ~funct3 ~opcode =
  let u = off land 0x1FFF in
  let bit12 = (u lsr 12) land 1
  and bits10_5 = (u lsr 5) land 0x3F
  and bits4_1 = (u lsr 1) land 0xF
  and bit11 = (u lsr 11) land 1 in
  (bit12 lsl 31) lor (bits10_5 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15)
  lor (funct3 lsl 12) lor (bits4_1 lsl 8) lor (bit11 lsl 7) lor opcode

let u_type ~imm ~rd ~opcode = (imm land 0xFFFFF000) lor (rd lsl 7) lor opcode

let j_type ~off ~rd ~opcode =
  let u = off land 0x1FFFFF in
  let bit20 = (u lsr 20) land 1
  and bits10_1 = (u lsr 1) land 0x3FF
  and bit11 = (u lsr 11) land 1
  and bits19_12 = (u lsr 12) land 0xFF in
  (bit20 lsl 31) lor (bits10_1 lsl 21) lor (bit11 lsl 20) lor (bits19_12 lsl 12)
  lor (rd lsl 7) lor opcode

let rop_fields : Isa.rop -> int * int = function
  | ADD -> (0x00, 0) | SUB -> (0x20, 0) | SLL -> (0x00, 1) | SLT -> (0x00, 2)
  | SLTU -> (0x00, 3) | XOR -> (0x00, 4) | SRL -> (0x00, 5) | SRA -> (0x20, 5)
  | OR -> (0x00, 6) | AND -> (0x00, 7)
  | MUL -> (0x01, 0) | MULH -> (0x01, 1) | MULHSU -> (0x01, 2) | MULHU -> (0x01, 3)
  | DIV -> (0x01, 4) | DIVU -> (0x01, 5) | REM -> (0x01, 6) | REMU -> (0x01, 7)

let bop_funct3 : Isa.bop -> int = function
  | BEQ -> 0 | BNE -> 1 | BLT -> 4 | BGE -> 5 | BLTU -> 6 | BGEU -> 7

let lop_funct3 : Isa.lop -> int = function
  | LB -> 0 | LH -> 1 | LW -> 2 | LBU -> 4 | LHU -> 5

let sop_funct3 : Isa.sop -> int = function SB -> 0 | SH -> 1 | SW -> 2

(* rm=0b111 (dynamic) for rounding-mode-carrying FP ops; the selector ops
   (sign-inject, min/max, compares) use funct3 as a selector instead. *)
let rm_dyn = 0b111

let fop_fields : Isa.fop -> int * int = function
  | FADD -> (0x00, rm_dyn) | FSUB -> (0x04, rm_dyn) | FMUL -> (0x08, rm_dyn)
  | FDIV -> (0x0C, rm_dyn) | FSQRT -> (0x2C, rm_dyn)
  | FSGNJ -> (0x10, 0) | FSGNJN -> (0x10, 1) | FSGNJX -> (0x10, 2)
  | FMIN -> (0x14, 0) | FMAX -> (0x14, 1)

let fcmp_funct3 : Isa.fcmp -> int = function FLE -> 0 | FLT -> 1 | FEQ -> 2

let encode_int (i : Isa.t) =
  let reg = check_reg in
  match i with
  | Rtype (op, rd, rs1, rs2) ->
    let funct7, funct3 = rop_fields op in
    r_type ~funct7 ~rs2:(reg "rs2" rs2) ~rs1:(reg "rs1" rs1) ~funct3
      ~rd:(reg "rd" rd) ~opcode:op_op
  | Itype (op, rd, rs1, imm) ->
    let rd = reg "rd" rd and rs1 = reg "rs1" rs1 in
    let funct3, field =
      match op with
      | ADDI -> (0, check_imm12 imm)
      | SLTI -> (2, check_imm12 imm)
      | SLTIU -> (3, check_imm12 imm)
      | XORI -> (4, check_imm12 imm)
      | ORI -> (6, check_imm12 imm)
      | ANDI -> (7, check_imm12 imm)
      | SLLI -> (1, check_shamt imm)
      | SRLI -> (5, check_shamt imm)
      | SRAI -> (5, check_shamt imm lor 0x400)
    in
    i_type ~imm:field ~rs1 ~funct3 ~rd ~opcode:op_imm
  | Load (op, rd, base, off) ->
    i_type ~imm:(check_imm12 off) ~rs1:(reg "base" base)
      ~funct3:(lop_funct3 op) ~rd:(reg "rd" rd) ~opcode:op_load
  | Store (op, src, base, off) ->
    s_type ~imm:(check_imm12 off) ~rs2:(reg "src" src) ~rs1:(reg "base" base)
      ~funct3:(sop_funct3 op) ~opcode:op_store
  | Branch (op, rs1, rs2, off) ->
    if not (branch_offset_fits off) then fail "branch offset out of range: %d" off;
    b_type ~off ~rs2:(reg "rs2" rs2) ~rs1:(reg "rs1" rs1)
      ~funct3:(bop_funct3 op) ~opcode:op_branch
  | Lui (rd, imm) ->
    if imm land 0xFFF <> 0 then fail "lui immediate has nonzero low bits: %d" imm;
    u_type ~imm ~rd:(reg "rd" rd) ~opcode:op_lui
  | Auipc (rd, imm) ->
    if imm land 0xFFF <> 0 then fail "auipc immediate has nonzero low bits: %d" imm;
    u_type ~imm ~rd:(reg "rd" rd) ~opcode:op_auipc
  | Jal (rd, off) ->
    if not (jal_offset_fits off) then fail "jal offset out of range: %d" off;
    j_type ~off ~rd:(reg "rd" rd) ~opcode:op_jal
  | Jalr (rd, base, off) ->
    i_type ~imm:(check_imm12 off) ~rs1:(reg "base" base) ~funct3:0
      ~rd:(reg "rd" rd) ~opcode:op_jalr
  | Ftype (FSQRT, fd, fs1, _) ->
    r_type ~funct7:0x2C ~rs2:0 ~rs1:(reg "fs1" fs1) ~funct3:rm_dyn
      ~rd:(reg "fd" fd) ~opcode:op_fp
  | Ftype (op, fd, fs1, fs2) ->
    let funct7, funct3 = fop_fields op in
    r_type ~funct7 ~rs2:(reg "fs2" fs2) ~rs1:(reg "fs1" fs1) ~funct3
      ~rd:(reg "fd" fd) ~opcode:op_fp
  | Fcmp (op, rd, fs1, fs2) ->
    r_type ~funct7:0x50 ~rs2:(reg "fs2" fs2) ~rs1:(reg "fs1" fs1)
      ~funct3:(fcmp_funct3 op) ~rd:(reg "rd" rd) ~opcode:op_fp
  | Flw (fd, base, off) ->
    i_type ~imm:(check_imm12 off) ~rs1:(reg "base" base) ~funct3:2
      ~rd:(reg "fd" fd) ~opcode:op_load_fp
  | Fsw (fsrc, base, off) ->
    s_type ~imm:(check_imm12 off) ~rs2:(reg "fsrc" fsrc) ~rs1:(reg "base" base)
      ~funct3:2 ~opcode:op_store_fp
  | Fcvt_w_s (rd, fs1) ->
    (* rm = RTZ, matching the C semantics of (int) cast. *)
    r_type ~funct7:0x60 ~rs2:0 ~rs1:(reg "fs1" fs1) ~funct3:0b001
      ~rd:(reg "rd" rd) ~opcode:op_fp
  | Fcvt_s_w (fd, rs1) ->
    r_type ~funct7:0x68 ~rs2:0 ~rs1:(reg "rs1" rs1) ~funct3:rm_dyn
      ~rd:(reg "fd" fd) ~opcode:op_fp
  | Fmv_x_w (rd, fs1) ->
    r_type ~funct7:0x70 ~rs2:0 ~rs1:(reg "fs1" fs1) ~funct3:0
      ~rd:(reg "rd" rd) ~opcode:op_fp
  | Fmv_w_x (fd, rs1) ->
    r_type ~funct7:0x78 ~rs2:0 ~rs1:(reg "rs1" rs1) ~funct3:0
      ~rd:(reg "fd" fd) ~opcode:op_fp
  | Ecall -> i_type ~imm:0 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:op_system
  | Ebreak -> i_type ~imm:1 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:op_system
  | Fence -> i_type ~imm:0 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:op_misc_mem

let to_word i = Int32.of_int (encode_int i land 0xFFFFFFFF)
