(** Architectural register numbers and ABI names for RV32.

    Integer and floating-point registers are both plain ints in [\[0, 31\]];
    the two files are distinguished by context (an [Isa.t] constructor says
    which file each operand lives in). The ABI constants below make the
    assembler DSL kernels readable. *)

type t = int
(** A register number; valid values are 0..31. *)

val count : int
(** Number of registers per file (32). *)

val valid : t -> bool
(** [valid r] iff [0 <= r < 32]. *)

(** {1 Integer ABI names} *)

val zero : t
val ra : t
val sp : t
val gp : t
val tp : t
val t0 : t
val t1 : t
val t2 : t
val s0 : t
val fp : t (** alias of [s0] *)

val s1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val a4 : t
val a5 : t
val a6 : t
val a7 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
val s6 : t
val s7 : t
val s8 : t
val s9 : t
val s10 : t
val s11 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t

(** {1 Floating-point ABI names} *)

val ft0 : t
val ft1 : t
val ft2 : t
val ft3 : t
val ft4 : t
val ft5 : t
val ft6 : t
val ft7 : t
val fs0 : t
val fs1 : t
val fa0 : t
val fa1 : t
val fa2 : t
val fa3 : t
val fa4 : t
val fa5 : t
val fa6 : t
val fa7 : t
val fs2 : t
val fs3 : t
val fs4 : t
val fs5 : t
val fs6 : t
val fs7 : t
val fs8 : t
val fs9 : t
val fs10 : t
val fs11 : t
val ft8 : t
val ft9 : t
val ft10 : t
val ft11 : t

val name : t -> string
(** ABI name of an integer register, e.g. [name 10 = "a0"]. *)

val fname : t -> string
(** ABI name of a floating-point register, e.g. [fname 10 = "fa0"]. *)
