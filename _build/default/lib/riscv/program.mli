(** An assembled program: contiguous RV32IMF code at a base address, plus the
    symbol table and OpenMP-style loop annotations the paper relies on.

    MESA itself only ever sees machine code; the pragma list models the
    OpenMP annotations (§4.3) that survive compilation as metadata telling
    the hardware a given loop is fully parallelizable. *)

(** Parallelism annotation of a loop, keyed by the loop's entry address. *)
type pragma =
  | Omp_parallel  (** iterations are independent; tiling is legal *)
  | Omp_simd      (** iterations are independent and vectorizable *)

type t

val make :
  ?base:int ->
  ?entry:int ->
  ?symbols:(string * int) list ->
  ?pragmas:(int * pragma) list ->
  Isa.t array ->
  t
(** [make code] builds a program. [base] defaults to 0x1000; [entry] to
    [base]. Symbol and pragma addresses are absolute. *)

val base : t -> int
val entry : t -> int
val length : t -> int
(** Number of instructions. *)

val code : t -> Isa.t array
(** The raw instruction array (do not mutate). *)

val end_address : t -> int
(** First address past the last instruction. *)

val in_range : t -> int -> bool
(** Whether an address falls inside the code region. *)

val fetch : t -> int -> Isa.t option
(** [fetch t addr] is the instruction at byte address [addr], or [None] if
    out of range or misaligned. *)

val fetch_exn : t -> int -> Isa.t

val index_of_addr : t -> int -> int
(** [index_of_addr t addr] is the instruction index for an in-range aligned
    address. Raises [Invalid_argument] otherwise. *)

val addr_of_index : t -> int -> int

val symbol : t -> string -> int
(** Address of a label. Raises [Not_found] if absent. *)

val symbols : t -> (string * int) list

val pragma_at : t -> int -> pragma option
(** Annotation attached to the loop whose entry is at the given address. *)

val words : t -> int32 array
(** Binary encoding of the whole program, for loading into instruction
    memory. *)

val of_words : ?base:int -> int32 array -> (t, string) result
(** Decode a binary image back into a program (no symbols/pragmas). *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing with addresses and labels. *)
