type fixup =
  | Fix_branch of Isa.bop * Reg.t * Reg.t
  | Fix_jal of Reg.t

type t = {
  base : int;
  mutable instrs : Isa.t list; (* reverse order *)
  mutable count : int;
  mutable labels : (string * int) list; (* label -> address *)
  mutable fixups : (int * fixup * string) list; (* index, kind, target label *)
  mutable pragmas : (int * Program.pragma) list;
}

let create ?(base = 0x1000) () =
  { base; instrs = []; count = 0; labels = []; fixups = []; pragmas = [] }

let here t = t.base + (4 * t.count)

let label t name =
  if List.mem_assoc name t.labels then failwith ("Asm: duplicate label " ^ name);
  t.labels <- (name, here t) :: t.labels

let pragma t p = t.pragmas <- (here t, p) :: t.pragmas

let emit t i =
  t.instrs <- i :: t.instrs;
  t.count <- t.count + 1

let emit_fixup t placeholder kind target =
  t.fixups <- (t.count, kind, target) :: t.fixups;
  emit t placeholder

let assemble t =
  let code = Array.of_list (List.rev t.instrs) in
  let resolve label =
    match List.assoc_opt label t.labels with
    | Some addr -> addr
    | None -> failwith ("Asm: undefined label " ^ label)
  in
  List.iter
    (fun (index, kind, target) ->
      let pc = t.base + (4 * index) in
      let off = resolve target - pc in
      (match kind with
      | Fix_branch (op, rs1, rs2) ->
        if not (Encode.branch_offset_fits off) then
          failwith (Printf.sprintf "Asm: branch to %s out of range (%d)" target off);
        code.(index) <- Isa.Branch (op, rs1, rs2, off)
      | Fix_jal rd ->
        if not (Encode.jal_offset_fits off) then
          failwith (Printf.sprintf "Asm: jal to %s out of range (%d)" target off);
        code.(index) <- Isa.Jal (rd, off)))
    t.fixups;
  Program.make ~base:t.base ~symbols:t.labels ~pragmas:t.pragmas code

(* Integer register-register *)

let rtype op t rd rs1 rs2 = emit t (Isa.Rtype (op, rd, rs1, rs2))
let add t = rtype ADD t
let sub t = rtype SUB t
let sll t = rtype SLL t
let slt t = rtype SLT t
let sltu t = rtype SLTU t
let xor t = rtype XOR t
let srl t = rtype SRL t
let sra t = rtype SRA t
let or_ t = rtype OR t
let and_ t = rtype AND t
let mul t = rtype MUL t
let mulh t = rtype MULH t
let div t = rtype DIV t
let divu t = rtype DIVU t
let rem t = rtype REM t
let remu t = rtype REMU t

(* Integer register-immediate *)

let itype op t rd rs1 imm = emit t (Isa.Itype (op, rd, rs1, imm))
let addi t = itype ADDI t
let slti t = itype SLTI t
let sltiu t = itype SLTIU t
let xori t = itype XORI t
let ori t = itype ORI t
let andi t = itype ANDI t
let slli t = itype SLLI t
let srli t = itype SRLI t
let srai t = itype SRAI t

(* Memory *)

let load op t rd off base = emit t (Isa.Load (op, rd, base, off))
let lw t = load LW t
let lh t = load LH t
let lb t = load LB t
let lhu t = load LHU t
let lbu t = load LBU t

let store op t src off base = emit t (Isa.Store (op, src, base, off))
let sw t = store SW t
let sh t = store SH t
let sb t = store SB t

let flw t fd off base = emit t (Isa.Flw (fd, base, off))
let fsw t fsrc off base = emit t (Isa.Fsw (fsrc, base, off))

(* Control flow *)

let branch op t rs1 rs2 target =
  emit_fixup t (Isa.Branch (op, rs1, rs2, 0)) (Fix_branch (op, rs1, rs2)) target

let beq t = branch BEQ t
let bne t = branch BNE t
let blt t = branch BLT t
let bge t = branch BGE t
let bltu t = branch BLTU t
let bgeu t = branch BGEU t

let jal t rd target = emit_fixup t (Isa.Jal (rd, 0)) (Fix_jal rd) target
let j t target = jal t Reg.zero target
let jalr t rd base off = emit t (Isa.Jalr (rd, base, off))
let ret t = jalr t Reg.zero Reg.ra 0

(* Upper immediates and pseudos *)

let lui t rd v = emit t (Isa.Lui (rd, v))
let auipc t rd v = emit t (Isa.Auipc (rd, v))

let li t rd v =
  if Encode.imm12_fits v then addi t rd Reg.zero v
  else begin
    (* Split into upper 20 + signed lower 12; the addi sign-extension must be
       compensated in the lui part, as standard toolchains do. *)
    let lo = ((v land 0xFFF) lxor 0x800) - 0x800 in
    let hi = (v - lo) land 0xFFFFF000 in
    (* Re-sign-extend bit 31 so the decoded Lui payload matches. *)
    let hi = if hi land 0x80000000 <> 0 then hi - (1 lsl 32) else hi in
    lui t rd hi;
    if lo <> 0 then addi t rd rd lo
  end

let mv t rd rs = addi t rd rs 0
let nop t = addi t Reg.zero Reg.zero 0
let ecall t = emit t Isa.Ecall
let ebreak t = emit t Isa.Ebreak

(* Floating point *)

let ftype op t fd fs1 fs2 = emit t (Isa.Ftype (op, fd, fs1, fs2))
let fadd t = ftype FADD t
let fsub t = ftype FSUB t
let fmul t = ftype FMUL t
let fdiv t = ftype FDIV t
let fsqrt t fd fs1 = emit t (Isa.Ftype (FSQRT, fd, fs1, 0))
let fmin t = ftype FMIN t
let fmax t = ftype FMAX t
let fsgnj t = ftype FSGNJ t
let fmv t fd fs = fsgnj t fd fs fs

let fcmp op t rd fs1 fs2 = emit t (Isa.Fcmp (op, rd, fs1, fs2))
let feq t = fcmp FEQ t
let flt t = fcmp FLT t
let fle t = fcmp FLE t

let fcvt_w_s t rd fs1 = emit t (Isa.Fcvt_w_s (rd, fs1))
let fcvt_s_w t fd rs1 = emit t (Isa.Fcvt_s_w (fd, rs1))
let fmv_x_w t rd fs1 = emit t (Isa.Fmv_x_w (rd, fs1))
let fmv_w_x t fd rs1 = emit t (Isa.Fmv_w_x (fd, rs1))
