let to_string i = Format.asprintf "%a" Isa.pp i
let listing p = Format.asprintf "%a" Program.pp p
