(** Human-readable rendering of instructions and programs. *)

val to_string : Isa.t -> string
(** Assembly text of one instruction, e.g. ["add t0, t1, t2"]. *)

val listing : Program.t -> string
(** Full disassembly listing with addresses, labels and pragma markers. *)
