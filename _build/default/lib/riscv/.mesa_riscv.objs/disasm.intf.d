lib/riscv/disasm.mli: Isa Program
