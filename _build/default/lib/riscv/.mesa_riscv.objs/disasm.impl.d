lib/riscv/disasm.ml: Format Isa Program
