lib/riscv/encode.ml: Int32 Isa Printf Reg
