lib/riscv/reg.mli:
