lib/riscv/program.mli: Format Isa
