lib/riscv/isa.ml: Format Reg
