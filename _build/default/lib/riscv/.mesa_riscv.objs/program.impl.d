lib/riscv/program.ml: Array Decode Encode Format Isa List Option Printf
