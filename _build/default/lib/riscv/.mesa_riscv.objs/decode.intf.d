lib/riscv/decode.mli: Isa
