lib/riscv/latency.ml: Isa
