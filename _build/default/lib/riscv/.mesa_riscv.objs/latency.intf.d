lib/riscv/latency.mli: Isa
