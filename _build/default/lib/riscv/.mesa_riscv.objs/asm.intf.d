lib/riscv/asm.mli: Isa Program Reg
