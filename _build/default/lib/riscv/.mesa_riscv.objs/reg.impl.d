lib/riscv/reg.ml: Array Printf
