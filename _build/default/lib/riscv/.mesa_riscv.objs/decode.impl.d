lib/riscv/decode.ml: Int32 Isa Printf Sys
