lib/riscv/asm.ml: Array Encode Isa List Printf Program Reg
