lib/riscv/isa.mli: Format Reg
