lib/riscv/encode.mli: Isa
