type pragma = Omp_parallel | Omp_simd

type t = {
  base : int;
  entry : int;
  code : Isa.t array;
  symbols : (string * int) list;
  pragmas : (int * pragma) list;
}

let make ?(base = 0x1000) ?entry ?(symbols = []) ?(pragmas = []) code =
  let entry = Option.value entry ~default:base in
  { base; entry; code; symbols; pragmas }

let base t = t.base
let entry t = t.entry
let length t = Array.length t.code
let code t = t.code
let end_address t = t.base + (4 * Array.length t.code)
let in_range t addr = addr >= t.base && addr < end_address t

let fetch t addr =
  if in_range t addr && (addr - t.base) mod 4 = 0 then
    Some t.code.((addr - t.base) / 4)
  else None

let fetch_exn t addr =
  match fetch t addr with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Program.fetch_exn: bad address 0x%x" addr)

let index_of_addr t addr =
  if not (in_range t addr) || (addr - t.base) mod 4 <> 0 then
    invalid_arg (Printf.sprintf "Program.index_of_addr: bad address 0x%x" addr);
  (addr - t.base) / 4

let addr_of_index t i = t.base + (4 * i)

let symbol t name = List.assoc name t.symbols
let symbols t = t.symbols
let pragma_at t addr = List.assoc_opt addr t.pragmas

let words t = Array.map Encode.to_word t.code

let of_words ?(base = 0x1000) ws =
  let n = Array.length ws in
  let code = Array.make n Isa.Fence in
  let rec go i =
    if i = n then Ok (make ~base code)
    else
      match Decode.of_word ws.(i) with
      | Ok instr ->
        code.(i) <- instr;
        go (i + 1)
      | Error msg -> Error (Printf.sprintf "word %d: %s" i msg)
  in
  go 0

let pp ppf t =
  let label_at addr =
    List.filter_map (fun (n, a) -> if a = addr then Some n else None) t.symbols
  in
  Array.iteri
    (fun i instr ->
      let addr = addr_of_index t i in
      List.iter (fun l -> Format.fprintf ppf "%s:@." l) (label_at addr);
      (match pragma_at t addr with
      | Some Omp_parallel -> Format.fprintf ppf "  # pragma omp parallel@."
      | Some Omp_simd -> Format.fprintf ppf "  # pragma omp simd@."
      | None -> ());
      Format.fprintf ppf "  %08x:  %a@." addr Isa.pp instr)
    t.code
