(** Decoding 32-bit RISC-V instruction words back into {!Isa.t}.

    This is the model of the decode stage that MESA's monitoring logic hooks
    into (§4.1): the trace cache stores raw words and the LDFG builder decodes
    them. [of_word] is a total function returning a [result] so that
    unsupported encodings surface as a C2 violation rather than an
    exception. *)

val of_word : int32 -> (Isa.t, string) result
(** [of_word w] decodes [w], or returns a human-readable reason why [w] is
    not part of the supported RV32IMF subset. *)

val of_word_exn : int32 -> Isa.t
(** Like {!of_word} but raising [Invalid_argument] on undecodable words. *)
