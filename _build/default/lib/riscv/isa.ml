type rop =
  | ADD | SUB | SLL | SLT | SLTU | XOR | SRL | SRA | OR | AND
  | MUL | MULH | MULHSU | MULHU | DIV | DIVU | REM | REMU

type iop = ADDI | SLTI | SLTIU | XORI | ORI | ANDI | SLLI | SRLI | SRAI
type bop = BEQ | BNE | BLT | BGE | BLTU | BGEU
type lop = LB | LH | LW | LBU | LHU
type sop = SB | SH | SW
type fop = FADD | FSUB | FMUL | FDIV | FSQRT | FMIN | FMAX | FSGNJ | FSGNJN | FSGNJX
type fcmp = FEQ | FLT | FLE

type t =
  | Rtype of rop * Reg.t * Reg.t * Reg.t
  | Itype of iop * Reg.t * Reg.t * int
  | Load of lop * Reg.t * Reg.t * int
  | Store of sop * Reg.t * Reg.t * int
  | Branch of bop * Reg.t * Reg.t * int
  | Lui of Reg.t * int
  | Auipc of Reg.t * int
  | Jal of Reg.t * int
  | Jalr of Reg.t * Reg.t * int
  | Ftype of fop * Reg.t * Reg.t * Reg.t
  | Fcmp of fcmp * Reg.t * Reg.t * Reg.t
  | Flw of Reg.t * Reg.t * int
  | Fsw of Reg.t * Reg.t * int
  | Fcvt_w_s of Reg.t * Reg.t
  | Fcvt_s_w of Reg.t * Reg.t
  | Fmv_x_w of Reg.t * Reg.t
  | Fmv_w_x of Reg.t * Reg.t
  | Ecall
  | Ebreak
  | Fence

type op_class =
  | C_alu
  | C_mul
  | C_div
  | C_fadd
  | C_fmul
  | C_fdiv
  | C_load
  | C_store
  | C_branch
  | C_jump
  | C_system

let op_class = function
  | Rtype ((MUL | MULH | MULHSU | MULHU), _, _, _) -> C_mul
  | Rtype ((DIV | DIVU | REM | REMU), _, _, _) -> C_div
  | Rtype (_, _, _, _) | Itype (_, _, _, _) | Lui (_, _) | Auipc (_, _) -> C_alu
  | Load (_, _, _, _) | Flw (_, _, _) -> C_load
  | Store (_, _, _, _) | Fsw (_, _, _) -> C_store
  | Branch (_, _, _, _) -> C_branch
  | Jal (_, _) | Jalr (_, _, _) -> C_jump
  | Ftype (FMUL, _, _, _) -> C_fmul
  | Ftype ((FDIV | FSQRT), _, _, _) -> C_fdiv
  | Ftype (_, _, _, _) | Fcmp (_, _, _, _) -> C_fadd
  | Fcvt_w_s (_, _) | Fcvt_s_w (_, _) | Fmv_x_w (_, _) | Fmv_w_x (_, _) -> C_fadd
  | Ecall | Ebreak | Fence -> C_system

let is_memory i =
  match op_class i with C_load | C_store -> true | _ -> false

let is_load i = op_class i = C_load
let is_store i = op_class i = C_store

let is_control i =
  match op_class i with C_branch | C_jump -> true | _ -> false

let is_fp = function
  | Ftype _ | Fcmp _ | Flw _ | Fsw _ | Fcvt_w_s _ | Fcvt_s_w _ | Fmv_x_w _ | Fmv_w_x _ ->
    true
  | Rtype _ | Itype _ | Load _ | Store _ | Branch _ | Lui _ | Auipc _ | Jal _
  | Jalr _ | Ecall | Ebreak | Fence ->
    false

let writes_int = function
  | Rtype (_, rd, _, _) | Itype (_, rd, _, _) | Load (_, rd, _, _)
  | Lui (rd, _) | Auipc (rd, _) | Jal (rd, _) | Jalr (rd, _, _)
  | Fcmp (_, rd, _, _) | Fcvt_w_s (rd, _) | Fmv_x_w (rd, _) ->
    Some rd
  | Store _ | Branch _ | Ftype _ | Flw _ | Fsw _ | Fcvt_s_w _ | Fmv_w_x _
  | Ecall | Ebreak | Fence ->
    None

let writes_fp = function
  | Ftype (_, fd, _, _) | Flw (fd, _, _) | Fcvt_s_w (fd, _) | Fmv_w_x (fd, _) ->
    Some fd
  | Rtype _ | Itype _ | Load _ | Store _ | Branch _ | Lui _ | Auipc _ | Jal _
  | Jalr _ | Fcmp _ | Fsw _ | Fcvt_w_s _ | Fmv_x_w _ | Ecall | Ebreak | Fence ->
    None

let reads = function
  | Rtype (_, _, rs1, rs2) -> [ (rs1, `Int); (rs2, `Int) ]
  | Itype (_, _, rs1, _) -> [ (rs1, `Int) ]
  | Load (_, _, base, _) -> [ (base, `Int) ]
  | Store (_, src, base, _) -> [ (src, `Int); (base, `Int) ]
  | Branch (_, rs1, rs2, _) -> [ (rs1, `Int); (rs2, `Int) ]
  | Lui (_, _) | Auipc (_, _) | Jal (_, _) -> []
  | Jalr (_, base, _) -> [ (base, `Int) ]
  | Ftype (FSQRT, _, fs1, _) -> [ (fs1, `Fp) ]
  | Ftype (_, _, fs1, fs2) -> [ (fs1, `Fp); (fs2, `Fp) ]
  | Fcmp (_, _, fs1, fs2) -> [ (fs1, `Fp); (fs2, `Fp) ]
  | Flw (_, base, _) -> [ (base, `Int) ]
  | Fsw (fsrc, base, _) -> [ (fsrc, `Fp); (base, `Int) ]
  | Fcvt_w_s (_, fs1) -> [ (fs1, `Fp) ]
  | Fcvt_s_w (_, rs1) -> [ (rs1, `Int) ]
  | Fmv_x_w (_, fs1) -> [ (fs1, `Fp) ]
  | Fmv_w_x (_, rs1) -> [ (rs1, `Int) ]
  | Ecall | Ebreak | Fence -> []

let branch_offset = function
  | Branch (_, _, _, off) | Jal (_, off) -> Some off
  | Rtype _ | Itype _ | Load _ | Store _ | Lui _ | Auipc _ | Jalr _ | Ftype _
  | Fcmp _ | Flw _ | Fsw _ | Fcvt_w_s _ | Fcvt_s_w _ | Fmv_x_w _ | Fmv_w_x _
  | Ecall | Ebreak | Fence ->
    None

let equal (a : t) (b : t) = a = b

let rop_name = function
  | ADD -> "add" | SUB -> "sub" | SLL -> "sll" | SLT -> "slt" | SLTU -> "sltu"
  | XOR -> "xor" | SRL -> "srl" | SRA -> "sra" | OR -> "or" | AND -> "and"
  | MUL -> "mul" | MULH -> "mulh" | MULHSU -> "mulhsu" | MULHU -> "mulhu"
  | DIV -> "div" | DIVU -> "divu" | REM -> "rem" | REMU -> "remu"

let iop_name = function
  | ADDI -> "addi" | SLTI -> "slti" | SLTIU -> "sltiu" | XORI -> "xori"
  | ORI -> "ori" | ANDI -> "andi" | SLLI -> "slli" | SRLI -> "srli" | SRAI -> "srai"

let bop_name = function
  | BEQ -> "beq" | BNE -> "bne" | BLT -> "blt" | BGE -> "bge"
  | BLTU -> "bltu" | BGEU -> "bgeu"

let lop_name = function
  | LB -> "lb" | LH -> "lh" | LW -> "lw" | LBU -> "lbu" | LHU -> "lhu"

let sop_name = function SB -> "sb" | SH -> "sh" | SW -> "sw"

let fop_name = function
  | FADD -> "fadd.s" | FSUB -> "fsub.s" | FMUL -> "fmul.s" | FDIV -> "fdiv.s"
  | FSQRT -> "fsqrt.s" | FMIN -> "fmin.s" | FMAX -> "fmax.s"
  | FSGNJ -> "fsgnj.s" | FSGNJN -> "fsgnjn.s" | FSGNJX -> "fsgnjx.s"

let fcmp_name = function FEQ -> "feq.s" | FLT -> "flt.s" | FLE -> "fle.s"

let pp ppf i =
  let r = Reg.name and f = Reg.fname in
  match i with
  | Rtype (op, rd, rs1, rs2) ->
    Format.fprintf ppf "%s %s, %s, %s" (rop_name op) (r rd) (r rs1) (r rs2)
  | Itype (op, rd, rs1, imm) ->
    Format.fprintf ppf "%s %s, %s, %d" (iop_name op) (r rd) (r rs1) imm
  | Load (op, rd, base, off) ->
    Format.fprintf ppf "%s %s, %d(%s)" (lop_name op) (r rd) off (r base)
  | Store (op, src, base, off) ->
    Format.fprintf ppf "%s %s, %d(%s)" (sop_name op) (r src) off (r base)
  | Branch (op, rs1, rs2, off) ->
    Format.fprintf ppf "%s %s, %s, %d" (bop_name op) (r rs1) (r rs2) off
  | Lui (rd, imm) -> Format.fprintf ppf "lui %s, 0x%x" (r rd) (imm lsr 12)
  | Auipc (rd, imm) -> Format.fprintf ppf "auipc %s, 0x%x" (r rd) (imm lsr 12)
  | Jal (rd, off) -> Format.fprintf ppf "jal %s, %d" (r rd) off
  | Jalr (rd, base, off) ->
    Format.fprintf ppf "jalr %s, %d(%s)" (r rd) off (r base)
  | Ftype (FSQRT, fd, fs1, _) ->
    Format.fprintf ppf "fsqrt.s %s, %s" (f fd) (f fs1)
  | Ftype (op, fd, fs1, fs2) ->
    Format.fprintf ppf "%s %s, %s, %s" (fop_name op) (f fd) (f fs1) (f fs2)
  | Fcmp (op, rd, fs1, fs2) ->
    Format.fprintf ppf "%s %s, %s, %s" (fcmp_name op) (r rd) (f fs1) (f fs2)
  | Flw (fd, base, off) -> Format.fprintf ppf "flw %s, %d(%s)" (f fd) off (r base)
  | Fsw (fsrc, base, off) ->
    Format.fprintf ppf "fsw %s, %d(%s)" (f fsrc) off (r base)
  | Fcvt_w_s (rd, fs1) -> Format.fprintf ppf "fcvt.w.s %s, %s" (r rd) (f fs1)
  | Fcvt_s_w (fd, rs1) -> Format.fprintf ppf "fcvt.s.w %s, %s" (f fd) (r rs1)
  | Fmv_x_w (rd, fs1) -> Format.fprintf ppf "fmv.x.w %s, %s" (r rd) (f fs1)
  | Fmv_w_x (fd, rs1) -> Format.fprintf ppf "fmv.w.x %s, %s" (f fd) (r rs1)
  | Ecall -> Format.pp_print_string ppf "ecall"
  | Ebreak -> Format.pp_print_string ppf "ebreak"
  | Fence -> Format.pp_print_string ppf "fence"
