type table = Isa.op_class -> int

let cpu : table = function
  | Isa.C_alu -> 1
  | Isa.C_mul -> 3
  | Isa.C_div -> 20
  | Isa.C_fadd -> 4
  | Isa.C_fmul -> 4
  | Isa.C_fdiv -> 16
  | Isa.C_load -> 2 (* floor; the memory hierarchy supplies the real latency *)
  | Isa.C_store -> 1
  | Isa.C_branch -> 1
  | Isa.C_jump -> 1
  | Isa.C_system -> 1

let accel : table = function
  | Isa.C_alu -> 3
  | Isa.C_mul -> 5
  | Isa.C_div -> 24
  | Isa.C_fadd -> 3
  | Isa.C_fmul -> 5
  | Isa.C_fdiv -> 24
  | Isa.C_load -> 2 (* floor; the LSU supplies the measured AMAT *)
  | Isa.C_store -> 2
  | Isa.C_branch -> 1
  | Isa.C_jump -> 1
  | Isa.C_system -> 1

let occupancy_cpu = function
  | Isa.C_div -> 20
  | Isa.C_fdiv -> 16
  | Isa.C_alu | Isa.C_mul | Isa.C_fadd | Isa.C_fmul | Isa.C_load | Isa.C_store
  | Isa.C_branch | Isa.C_jump | Isa.C_system ->
    1
