type t = int

let count = 32
let valid r = r >= 0 && r < count

let zero = 0
let ra = 1
let sp = 2
let gp = 3
let tp = 4
let t0 = 5
let t1 = 6
let t2 = 7
let s0 = 8
let fp = 8
let s1 = 9
let a0 = 10
let a1 = 11
let a2 = 12
let a3 = 13
let a4 = 14
let a5 = 15
let a6 = 16
let a7 = 17
let s2 = 18
let s3 = 19
let s4 = 20
let s5 = 21
let s6 = 22
let s7 = 23
let s8 = 24
let s9 = 25
let s10 = 26
let s11 = 27
let t3 = 28
let t4 = 29
let t5 = 30
let t6 = 31

let ft0 = 0
let ft1 = 1
let ft2 = 2
let ft3 = 3
let ft4 = 4
let ft5 = 5
let ft6 = 6
let ft7 = 7
let fs0 = 8
let fs1 = 9
let fa0 = 10
let fa1 = 11
let fa2 = 12
let fa3 = 13
let fa4 = 14
let fa5 = 15
let fa6 = 16
let fa7 = 17
let fs2 = 18
let fs3 = 19
let fs4 = 20
let fs5 = 21
let fs6 = 22
let fs7 = 23
let fs8 = 24
let fs9 = 25
let fs10 = 26
let fs11 = 27
let ft8 = 28
let ft9 = 29
let ft10 = 30
let ft11 = 31

let int_names =
  [| "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0"; "a1";
     "a2"; "a3"; "a4"; "a5"; "a6"; "a7"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
     "s8"; "s9"; "s10"; "s11"; "t3"; "t4"; "t5"; "t6" |]

let fp_names =
  [| "ft0"; "ft1"; "ft2"; "ft3"; "ft4"; "ft5"; "ft6"; "ft7"; "fs0"; "fs1";
     "fa0"; "fa1"; "fa2"; "fa3"; "fa4"; "fa5"; "fa6"; "fa7"; "fs2"; "fs3";
     "fs4"; "fs5"; "fs6"; "fs7"; "fs8"; "fs9"; "fs10"; "fs11"; "ft8"; "ft9";
     "ft10"; "ft11" |]

let name r =
  if valid r then int_names.(r) else Printf.sprintf "x?%d" r

let fname r =
  if valid r then fp_names.(r) else Printf.sprintf "f?%d" r
