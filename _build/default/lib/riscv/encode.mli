(** Binary encoding of {!Isa.t} into 32-bit RISC-V instruction words.

    Encodings follow the RISC-V unprivileged specification (RV32I, M and F
    extensions). This is the format stored in the simulated instruction
    memory and in MESA's trace cache, and is round-trippable through
    {!Decode.of_word} — a property the test suite checks exhaustively. *)

exception Unencodable of string
(** Raised when an operand is out of range for its field, e.g. a 12-bit
    immediate outside [\[-2048, 2047\]], a misaligned branch offset, or an
    invalid register number. *)

val to_word : Isa.t -> int32
(** [to_word i] is the 32-bit little-endian instruction word for [i].
    @raise Unencodable when an operand does not fit its field. *)

val imm12_fits : int -> bool
(** Whether an immediate fits the signed 12-bit I/S-type field. *)

val branch_offset_fits : int -> bool
(** Whether a byte offset fits the signed 13-bit B-type field (and is
    2-byte aligned). *)

val jal_offset_fits : int -> bool
(** Whether a byte offset fits the signed 21-bit J-type field (and is
    2-byte aligned). *)
