(** An embedded assembler for writing the benchmark kernels.

    The builder accumulates instructions; branch and jump targets are given
    as label strings and resolved when {!assemble} is called. Mnemonic
    helpers mirror RISC-V assembly operand order ([op rd, rs1, rs2];
    loads/stores as [op rd, off(base)]), so a kernel reads like the .s file
    the paper's toolchain would produce.

    Example:
    {[
      let b = Asm.create () in
      Asm.li b Reg.t0 0;
      Asm.label b "loop";
      Asm.lw b Reg.t1 0 Reg.a0;
      Asm.add b Reg.t2 Reg.t2 Reg.t1;
      Asm.addi b Reg.a0 Reg.a0 4;
      Asm.addi b Reg.t0 Reg.t0 1;
      Asm.blt b Reg.t0 Reg.a1 "loop";
      Asm.assemble b
    ]} *)

type t

val create : ?base:int -> unit -> t
(** Fresh builder; code will be placed at [base] (default 0x1000). *)

val label : t -> string -> unit
(** Define a label at the current position. *)

val pragma : t -> Program.pragma -> unit
(** Attach an OpenMP-style annotation to the address of the next emitted
    instruction (the loop entry). *)

val here : t -> int
(** Address of the next instruction to be emitted. *)

val emit : t -> Isa.t -> unit
(** Append a fully-resolved instruction. *)

val assemble : t -> Program.t
(** Resolve all label references and produce the program.
    @raise Failure on an undefined label or an out-of-range resolved offset. *)

(** {1 Integer register-register} *)

val add : t -> Reg.t -> Reg.t -> Reg.t -> unit
val sub : t -> Reg.t -> Reg.t -> Reg.t -> unit
val sll : t -> Reg.t -> Reg.t -> Reg.t -> unit
val slt : t -> Reg.t -> Reg.t -> Reg.t -> unit
val sltu : t -> Reg.t -> Reg.t -> Reg.t -> unit
val xor : t -> Reg.t -> Reg.t -> Reg.t -> unit
val srl : t -> Reg.t -> Reg.t -> Reg.t -> unit
val sra : t -> Reg.t -> Reg.t -> Reg.t -> unit
val or_ : t -> Reg.t -> Reg.t -> Reg.t -> unit
val and_ : t -> Reg.t -> Reg.t -> Reg.t -> unit
val mul : t -> Reg.t -> Reg.t -> Reg.t -> unit
val mulh : t -> Reg.t -> Reg.t -> Reg.t -> unit
val div : t -> Reg.t -> Reg.t -> Reg.t -> unit
val divu : t -> Reg.t -> Reg.t -> Reg.t -> unit
val rem : t -> Reg.t -> Reg.t -> Reg.t -> unit
val remu : t -> Reg.t -> Reg.t -> Reg.t -> unit

(** {1 Integer register-immediate} *)

val addi : t -> Reg.t -> Reg.t -> int -> unit
val slti : t -> Reg.t -> Reg.t -> int -> unit
val sltiu : t -> Reg.t -> Reg.t -> int -> unit
val xori : t -> Reg.t -> Reg.t -> int -> unit
val ori : t -> Reg.t -> Reg.t -> int -> unit
val andi : t -> Reg.t -> Reg.t -> int -> unit
val slli : t -> Reg.t -> Reg.t -> int -> unit
val srli : t -> Reg.t -> Reg.t -> int -> unit
val srai : t -> Reg.t -> Reg.t -> int -> unit

(** {1 Memory: [op b rd off base]} *)

val lw : t -> Reg.t -> int -> Reg.t -> unit
val lh : t -> Reg.t -> int -> Reg.t -> unit
val lb : t -> Reg.t -> int -> Reg.t -> unit
val lhu : t -> Reg.t -> int -> Reg.t -> unit
val lbu : t -> Reg.t -> int -> Reg.t -> unit
val sw : t -> Reg.t -> int -> Reg.t -> unit
val sh : t -> Reg.t -> int -> Reg.t -> unit
val sb : t -> Reg.t -> int -> Reg.t -> unit
val flw : t -> Reg.t -> int -> Reg.t -> unit
val fsw : t -> Reg.t -> int -> Reg.t -> unit

(** {1 Control flow with label targets} *)

val beq : t -> Reg.t -> Reg.t -> string -> unit
val bne : t -> Reg.t -> Reg.t -> string -> unit
val blt : t -> Reg.t -> Reg.t -> string -> unit
val bge : t -> Reg.t -> Reg.t -> string -> unit
val bltu : t -> Reg.t -> Reg.t -> string -> unit
val bgeu : t -> Reg.t -> Reg.t -> string -> unit
val jal : t -> Reg.t -> string -> unit
val j : t -> string -> unit
val jalr : t -> Reg.t -> Reg.t -> int -> unit
val ret : t -> unit

(** {1 Upper immediates and pseudo-instructions} *)

val lui : t -> Reg.t -> int -> unit
(** [lui b rd v]: [v] is the final register value; its low 12 bits must be
    zero. *)

val auipc : t -> Reg.t -> int -> unit
val li : t -> Reg.t -> int -> unit
(** Load a full 32-bit constant (expands to [lui]+[addi] when needed). *)

val mv : t -> Reg.t -> Reg.t -> unit
val nop : t -> unit
val ecall : t -> unit
val ebreak : t -> unit

(** {1 Floating point} *)

val fadd : t -> Reg.t -> Reg.t -> Reg.t -> unit
val fsub : t -> Reg.t -> Reg.t -> Reg.t -> unit
val fmul : t -> Reg.t -> Reg.t -> Reg.t -> unit
val fdiv : t -> Reg.t -> Reg.t -> Reg.t -> unit
val fsqrt : t -> Reg.t -> Reg.t -> unit
val fmin : t -> Reg.t -> Reg.t -> Reg.t -> unit
val fmax : t -> Reg.t -> Reg.t -> Reg.t -> unit
val fsgnj : t -> Reg.t -> Reg.t -> Reg.t -> unit
val fmv : t -> Reg.t -> Reg.t -> unit
(** FP move, expands to [fsgnj fd fs fs]. *)

val feq : t -> Reg.t -> Reg.t -> Reg.t -> unit
val flt : t -> Reg.t -> Reg.t -> Reg.t -> unit
val fle : t -> Reg.t -> Reg.t -> Reg.t -> unit
val fcvt_w_s : t -> Reg.t -> Reg.t -> unit
val fcvt_s_w : t -> Reg.t -> Reg.t -> unit
val fmv_x_w : t -> Reg.t -> Reg.t -> unit
val fmv_w_x : t -> Reg.t -> Reg.t -> unit
