lib/power/energy_model.mli: Activity Grid Ooo_model
