lib/power/area_model.ml: Grid List
