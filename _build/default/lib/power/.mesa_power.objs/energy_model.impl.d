lib/power/energy_model.ml: Activity Grid List Ooo_model
