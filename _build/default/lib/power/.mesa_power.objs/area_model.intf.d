lib/power/area_model.mli: Grid
