(** Energy accounting (the paper's §6.1 methodology: per-cycle accumulation
    of dynamically active components, clock-gating disabled units).

    All figures are in nanojoules at the nominal 2 GHz clock. Accelerator
    component powers derive from Table 1; the CPU model follows the
    McPAT-style split of static per-cycle power plus per-instruction
    energies (the von Neumann overheads of fetch/decode/rename/wakeup that
    §6.2 credits MESA with avoiding). *)

(** Figure 13's categories. *)
type breakdown = {
  compute_nj : float;   (** PE array dynamic *)
  memory_nj : float;    (** load-store unit + caches + DRAM *)
  interconnect_nj : float; (** local links + NoC *)
  control_nj : float;   (** always-on sequencing/enable glue + MESA *)
  total_nj : float;
}

val accel_energy : grid:Grid.t -> Activity.t -> breakdown
(** Energy of an accelerator run with the given activity counters. *)

val mesa_energy_nj : busy_cycles:int -> float
(** MESA controller block energy for its translation/configuration work. *)

val cpu_energy_nj : Ooo_model.summary -> float
(** Energy of one core executing the summarized stream. *)

val multicore_energy_nj : Ooo_model.summary list -> float
(** Sum over cores (fork/join idling is inside each summary's cycles). *)

val efficiency_gain : baseline_nj:float -> float -> float
(** Energy-efficiency gain for the same unit of work: performance per watt
    relative to the baseline reduces to the energy ratio. *)
