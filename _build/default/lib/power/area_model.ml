type entry = {
  component : string;
  area_um2 : float;
  power_mw : float;
  indent : int;
}

(* Calibration point: the paper's synthesized configuration — capacity 512
   entries, 128 PEs. *)
let cal_capacity = 512.0
let cal_pes = 128.0
let cal_ls_entries = 64.0

let e component indent area_um2 power_mw = { component; area_um2; power_mw; indent }

let mesa_extensions ~capacity =
  let c = float_of_int capacity /. cal_capacity in
  let rename = e "Instr. RenameTable" 2 11417.5 6.161 in
  let ldfg = e "LDFG" 2 (148483.6 *. c) (90.0 *. c) in
  let convert = e "Instr. Convert" 2 601.4 0.465 in
  let lat_opt = e "Latency Optimizer" 3 4060.4 3.302 in
  let sdfg = e "SDFG" 3 (201171.0 *. c) (120.0 *. c) in
  (* Glue constants make the 128-PE/512-entry configuration reproduce the
     paper's roll-ups exactly. *)
  let mapping =
    e "Instr. Mapping" 2
      (lat_opt.area_um2 +. sdfg.area_um2 +. 3201.5)
      (lat_opt.power_mw +. sdfg.power_mw +. 6.698)
  in
  let arch_model =
    e "MESA ArchModel" 1
      (rename.area_um2 +. ldfg.area_um2 +. convert.area_um2 +. mapping.area_um2 +. 6064.6)
      (rename.power_mw +. ldfg.power_mw +. convert.power_mw +. mapping.power_mw +. 43.374)
  in
  let config_block = e "MESA ConfigBlock" 1 101357.9 70.0 in
  let top =
    e "MESA Top" 0
      (arch_model.area_um2 +. config_block.area_um2 +. 25642.1)
      (arch_model.power_mw +. config_block.power_mw +. 20.0)
  in
  [ top; arch_model; rename; ldfg; convert; mapping; lat_opt; sdfg; config_block ]

let cpu_additions ~capacity =
  let c = float_of_int capacity /. cal_capacity in
  [
    e "Trace Cache" 0 (27124.5 *. c) (15.455 *. c);
    e "Add'l Control / Interface" 0 3590.1 3.219;
  ]

let accelerator ~(grid : Grid.t) =
  let p = float_of_int (Grid.pe_count grid) /. cal_pes in
  let l = float_of_int grid.Grid.ls_entries /. cal_ls_entries in
  let pe_array = e "PE Array" 1 (14.95e6 *. p) (4080.0 *. p) in
  let fp_slice = e "FP Slice (2x2)" 2 821889.1 213.107 in
  let lsu = e "Load-Store Unit" 1 (5.04e6 *. l) (1550.0 *. l) in
  let noc = e "NoC" 1 (3.41e6 *. p) (1830.0 *. p) in
  let glue_area = 26.56e6 -. (14.95e6 +. 5.04e6 +. 3.41e6) in
  let glue_power = 11650.0 -. (4080.0 +. 1550.0 +. 1830.0) in
  let top =
    e "Accelerator Top" 0
      (pe_array.area_um2 +. lsu.area_um2 +. noc.area_um2 +. (glue_area *. p))
      (pe_array.power_mw +. lsu.power_mw +. noc.power_mw +. (glue_power *. p))
  in
  [ top; pe_array; fp_slice; lsu; noc ]

let full_table ~capacity ~grid =
  mesa_extensions ~capacity @ cpu_additions ~capacity @ accelerator ~grid

let total_area_mm2 entries =
  List.fold_left
    (fun acc en -> if en.indent = 0 then acc +. (en.area_um2 /. 1e6) else acc)
    0.0 entries

let total_power_w entries =
  List.fold_left
    (fun acc en -> if en.indent = 0 then acc +. (en.power_mw /. 1e3) else acc)
    0.0 entries

(* BOOM-class core: ~6 mm^2 in 28 nm [BROOM]; MESA Top at the paper's
   configuration is 0.502 mm^2, i.e. under 10% of the core. *)
let core_area_mm2 = 6.0

let mesa_area_fraction_of_core ~capacity =
  match mesa_extensions ~capacity with
  | top :: _ -> top.area_um2 /. 1e6 /. core_area_mm2
  | [] -> 0.0
