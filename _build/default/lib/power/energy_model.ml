type breakdown = {
  compute_nj : float;
  memory_nj : float;
  interconnect_nj : float;
  control_nj : float;
  total_nj : float;
}

(* Per-event energies in nJ, 15 nm class at 2 GHz. Derived from Table 1
   component powers at full activity:
   - PE array 4.08 W / 128 PEs = 31.9 mW per busy PE = ~16 pJ/cycle; integer
     ops occupy ~3 cycles, FP ~4-5, giving the per-op numbers below;
   - LSU 1.55 W over ~1 G accesses/s of steady demand = ~0.8 nJ per access
     budget, split into entry handling plus the cache hierarchy;
   - NoC 1.83 W at one transfer per slice per cycle. *)
let int_op_nj = 0.082
let fp_op_nj = 0.136
let branch_op_nj = 0.034
let disabled_op_nj = 0.007
let mem_entry_nj = 0.200
let cache_access_nj = 0.310 (* average L1 + amortized L2/DRAM traffic *)
let local_transfer_nj = 0.007
let noc_transfer_nj = 0.051

(* The non-gateable share of the accelerator (sequencers, config fan-out,
   clock tree of Table 1's top-level glue): ~3.2 W at the 128-PE point,
   scaled with array size. This term is what keeps the efficiency gain in
   the paper's ~1.9x band rather than an order of magnitude. *)
let control_nj_per_cycle grid =
  (* Idle slices are clock-gated, so the non-gateable share grows far more
     slowly than the array. *)
  0.22 *. ((float_of_int (Grid.pe_count grid) /. 128.0) ** 0.3)

let mesa_nj_per_cycle = 0.18 (* 0.36 W MESA Top *)

let accel_energy ~grid (a : Activity.t) =
  let compute_nj =
    (float_of_int a.Activity.int_ops *. int_op_nj)
    +. (float_of_int a.Activity.fp_ops *. fp_op_nj)
    +. (float_of_int a.Activity.branch_ops *. branch_op_nj)
    +. (float_of_int a.Activity.disabled_ops *. disabled_op_nj)
  in
  let memory_nj =
    float_of_int a.Activity.mem_ops *. (mem_entry_nj +. cache_access_nj)
  in
  let interconnect_nj =
    (float_of_int a.Activity.local_transfers *. local_transfer_nj)
    +. (float_of_int a.Activity.noc_transfers *. noc_transfer_nj)
  in
  let control_nj = float_of_int a.Activity.cycles *. control_nj_per_cycle grid in
  {
    compute_nj;
    memory_nj;
    interconnect_nj;
    control_nj;
    total_nj = compute_nj +. memory_nj +. interconnect_nj +. control_nj;
  }

let mesa_energy_nj ~busy_cycles = float_of_int busy_cycles *. mesa_nj_per_cycle

(* One OoO core: static/clock power plus per-instruction pipeline energy
   (frontend + rename + wakeup + bypass), plus memory and FP adders. *)
let core_static_nj_per_cycle = 0.175
let instr_nj = 0.250
let mem_instr_extra_nj = 0.060
let fp_instr_extra_nj = 0.040

let cpu_energy_nj (s : Ooo_model.summary) =
  (float_of_int s.Ooo_model.cycles *. core_static_nj_per_cycle)
  +. (float_of_int s.Ooo_model.instructions *. instr_nj)
  +. (float_of_int (s.Ooo_model.loads + s.Ooo_model.stores) *. mem_instr_extra_nj)
  +. (float_of_int s.Ooo_model.fp_ops *. fp_instr_extra_nj)

let multicore_energy_nj summaries =
  List.fold_left (fun acc s -> acc +. cpu_energy_nj s) 0.0 summaries

let efficiency_gain ~baseline_nj nj = if nj <= 0.0 then 0.0 else baseline_nj /. nj
