(** Parametric area/power model reproducing Table 1 (Synopsys DC +
    FreePDK15 synthesis in the paper).

    Constants are calibrated so the 128-PE configuration reproduces the
    paper's numbers exactly; other configurations derive from first-order
    scaling — DFG storage scales with trace capacity, array components with
    PE count, the LSU with entry count. The paper notes the LDFG/SDFG were
    synthesized to register arrays for lack of SRAM cells, which is why
    those two dominate MESA's area. *)

type entry = {
  component : string;
  area_um2 : float;
  power_mw : float;
  indent : int;  (** nesting level for table rendering *)
}

val mesa_extensions : capacity:int -> entry list
(** The MESA controller block: top, arch model (rename table, LDFG,
    instruction convert, instruction mapping with latency optimizer and
    SDFG) and config block. [capacity] is the trace-cache / LDFG entry
    count (512 at the paper's configuration). *)

val cpu_additions : capacity:int -> entry list
(** Per-core monitoring additions: trace cache and control/interface. *)

val accelerator : grid:Grid.t -> entry list
(** The spatial accelerator: PE array (with 2x2 FP slices), load-store
    unit, NoC. *)

val full_table : capacity:int -> grid:Grid.t -> entry list

val total_area_mm2 : entry list -> float
(** Sum of top-level entries (indent 0) in mm^2. *)

val total_power_w : entry list -> float

val mesa_area_fraction_of_core : capacity:int -> float
(** MESA top area over a single BOOM-class core area (the paper's "<10% of
    a core" claim). *)
