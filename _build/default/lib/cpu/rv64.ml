type t =
  | Rtype of Isa.rop * Reg.t * Reg.t * Reg.t
  | Itype of Isa.iop * Reg.t * Reg.t * int
  | Rw of Isa.rop * Reg.t * Reg.t * Reg.t
  | Iw of Isa.iop * Reg.t * Reg.t * int
  | Load of Isa.lop * Reg.t * Reg.t * int
  | Lwu of Reg.t * Reg.t * int
  | Ld of Reg.t * Reg.t * int
  | Store of Isa.sop * Reg.t * Reg.t * int
  | Sd of Reg.t * Reg.t * int
  | Branch of Isa.bop * Reg.t * Reg.t * int
  | Lui of Reg.t * int
  | Auipc of Reg.t * int
  | Jal of Reg.t * int
  | Jalr of Reg.t * Reg.t * int
  | Ecall

let equal (a : t) (b : t) = a = b

let pp ppf (i : t) =
  let r = Reg.name in
  match i with
  | Rtype (op, rd, rs1, rs2) ->
    Format.fprintf ppf "%a" Isa.pp (Isa.Rtype (op, rd, rs1, rs2))
  | Itype (op, rd, rs1, imm) ->
    Format.fprintf ppf "%a" Isa.pp (Isa.Itype (op, rd, rs1, imm))
  | Rw (op, rd, rs1, rs2) ->
    Format.fprintf ppf "%aw" Isa.pp (Isa.Rtype (op, rd, rs1, rs2))
  | Iw (op, rd, rs1, imm) ->
    Format.fprintf ppf "%aw" Isa.pp (Isa.Itype (op, rd, rs1, imm))
  | Load (op, rd, base, off) ->
    Format.fprintf ppf "%a" Isa.pp (Isa.Load (op, rd, base, off))
  | Lwu (rd, base, off) -> Format.fprintf ppf "lwu %s, %d(%s)" (r rd) off (r base)
  | Ld (rd, base, off) -> Format.fprintf ppf "ld %s, %d(%s)" (r rd) off (r base)
  | Store (op, src, base, off) ->
    Format.fprintf ppf "%a" Isa.pp (Isa.Store (op, src, base, off))
  | Sd (src, base, off) -> Format.fprintf ppf "sd %s, %d(%s)" (r src) off (r base)
  | Branch (op, rs1, rs2, off) ->
    Format.fprintf ppf "%a" Isa.pp (Isa.Branch (op, rs1, rs2, off))
  | Lui (rd, imm) -> Format.fprintf ppf "%a" Isa.pp (Isa.Lui (rd, imm))
  | Auipc (rd, imm) -> Format.fprintf ppf "%a" Isa.pp (Isa.Auipc (rd, imm))
  | Jal (rd, off) -> Format.fprintf ppf "%a" Isa.pp (Isa.Jal (rd, off))
  | Jalr (rd, base, off) -> Format.fprintf ppf "%a" Isa.pp (Isa.Jalr (rd, base, off))
  | Ecall -> Format.pp_print_string ppf "ecall"

(* ---------------- codec ---------------- *)

let encode (i : t) =
  match i with
  | Rtype (op, rd, rs1, rs2) -> begin
    match op with
    | Isa.MUL | Isa.MULH | Isa.MULHSU | Isa.MULHU | Isa.DIV | Isa.DIVU | Isa.REM
    | Isa.REMU ->
      raise (Encode.Unencodable "RV64I has no M extension here")
    | _ -> Encode.to_word (Isa.Rtype (op, rd, rs1, rs2))
  end
  | Itype (op, rd, rs1, imm) -> begin
    match op with
    | Isa.SLLI | Isa.SRLI | Isa.SRAI ->
      (* 6-bit shamt: reuse the 32-bit encoder then patch bit 25. *)
      if imm < 0 || imm > 63 then raise (Encode.Unencodable "shamt64 out of range");
      let base = Encode.to_word (Isa.Itype (op, rd, rs1, imm land 31)) in
      if imm >= 32 then Int32.logor base (Int32.shift_left 1l 25) else base
    | _ -> Encode.to_word (Isa.Itype (op, rd, rs1, imm))
  end
  | Rw (op, rd, rs1, rs2) ->
    (* OP-32 shares field layout with OP, at opcode 0x3B. *)
    let allowed =
      match op with
      | Isa.ADD | Isa.SUB | Isa.SLL | Isa.SRL | Isa.SRA -> true
      | _ -> false
    in
    if not allowed then raise (Encode.Unencodable "not an RV64I W-form op");
    let w = Encode.to_word (Isa.Rtype (op, rd, rs1, rs2)) in
    Int32.logor (Int32.logand w (Int32.lognot 0x7Fl)) 0x3Bl
  | Iw (op, rd, rs1, imm) ->
    let allowed =
      match op with Isa.ADDI | Isa.SLLI | Isa.SRLI | Isa.SRAI -> true | _ -> false
    in
    if not allowed then raise (Encode.Unencodable "not an RV64I W-form op-imm");
    let w = Encode.to_word (Isa.Itype (op, rd, rs1, imm)) in
    Int32.logor (Int32.logand w (Int32.lognot 0x7Fl)) 0x1Bl
  | Load (op, rd, base, off) -> Encode.to_word (Isa.Load (op, rd, base, off))
  | Lwu (rd, base, off) ->
    (* LOAD funct3 = 6. *)
    let w = Encode.to_word (Isa.Load (Isa.LW, rd, base, off)) in
    Int32.logor (Int32.logand w (Int32.lognot 0x7000l)) 0x6000l
  | Ld (rd, base, off) ->
    let w = Encode.to_word (Isa.Load (Isa.LW, rd, base, off)) in
    Int32.logor (Int32.logand w (Int32.lognot 0x7000l)) 0x3000l
  | Store (op, src, base, off) -> Encode.to_word (Isa.Store (op, src, base, off))
  | Sd (src, base, off) ->
    let w = Encode.to_word (Isa.Store (Isa.SW, src, base, off)) in
    Int32.logor (Int32.logand w (Int32.lognot 0x7000l)) 0x3000l
  | Branch (op, rs1, rs2, off) -> Encode.to_word (Isa.Branch (op, rs1, rs2, off))
  | Lui (rd, imm) -> Encode.to_word (Isa.Lui (rd, imm))
  | Auipc (rd, imm) -> Encode.to_word (Isa.Auipc (rd, imm))
  | Jal (rd, off) -> Encode.to_word (Isa.Jal (rd, off))
  | Jalr (rd, base, off) -> Encode.to_word (Isa.Jalr (rd, base, off))
  | Ecall -> Encode.to_word Isa.Ecall

let decode w =
  let u = Int32.to_int w land 0xFFFFFFFF in
  let opcode = u land 0x7F in
  let rd = (u lsr 7) land 0x1F in
  let funct3 = (u lsr 12) land 0x7 in
  let rs1 = (u lsr 15) land 0x1F in
  let rs2 = (u lsr 20) land 0x1F in
  let funct7 = (u lsr 25) land 0x7F in
  let shamt6 = (u lsr 20) land 0x3F in
  let sign_extend ~bits v = (v lsl (Sys.int_size - bits)) asr (Sys.int_size - bits) in
  let imm_i = sign_extend ~bits:12 ((u lsr 20) land 0xFFF) in
  let imm_s = sign_extend ~bits:12 ((funct7 lsl 5) lor rd) in
  match opcode with
  | 0x3B -> begin
    match (funct7, funct3) with
    | 0x00, 0 -> Ok (Rw (Isa.ADD, rd, rs1, rs2))
    | 0x20, 0 -> Ok (Rw (Isa.SUB, rd, rs1, rs2))
    | 0x00, 1 -> Ok (Rw (Isa.SLL, rd, rs1, rs2))
    | 0x00, 5 -> Ok (Rw (Isa.SRL, rd, rs1, rs2))
    | 0x20, 5 -> Ok (Rw (Isa.SRA, rd, rs1, rs2))
    | _ -> Error "unsupported OP-32 encoding"
  end
  | 0x1B -> begin
    match funct3 with
    | 0 -> Ok (Iw (Isa.ADDI, rd, rs1, imm_i))
    | 1 when funct7 = 0 -> Ok (Iw (Isa.SLLI, rd, rs1, rs2))
    | 5 when funct7 = 0x00 -> Ok (Iw (Isa.SRLI, rd, rs1, rs2))
    | 5 when funct7 = 0x20 -> Ok (Iw (Isa.SRAI, rd, rs1, rs2))
    | _ -> Error "unsupported OP-IMM-32 encoding"
  end
  | 0x03 when funct3 = 3 -> Ok (Ld (rd, rs1, imm_i))
  | 0x03 when funct3 = 6 -> Ok (Lwu (rd, rs1, imm_i))
  | 0x23 when funct3 = 3 -> Ok (Sd (rs2, rs1, imm_s))
  | 0x13 when funct3 = 1 || funct3 = 5 -> begin
    (* 64-bit shift immediates: funct6 discriminates. *)
    let funct6 = funct7 lsr 1 in
    match (funct3, funct6) with
    | 1, 0x00 -> Ok (Itype (Isa.SLLI, rd, rs1, shamt6))
    | 5, 0x00 -> Ok (Itype (Isa.SRLI, rd, rs1, shamt6))
    | 5, 0x10 -> Ok (Itype (Isa.SRAI, rd, rs1, shamt6))
    | _ -> Error "unsupported RV64 shift encoding"
  end
  | _ -> begin
    (* Everything else shares the RV32 decoding. *)
    match Decode.of_word w with
    | Error e -> Error e
    | Ok (Isa.Rtype ((Isa.MUL | Isa.MULH | Isa.MULHSU | Isa.MULHU | Isa.DIV
                     | Isa.DIVU | Isa.REM | Isa.REMU), _, _, _)) ->
      Error "M extension not part of RV64I"
    | Ok (Isa.Rtype (op, a, b, c)) -> Ok (Rtype (op, a, b, c))
    | Ok (Isa.Itype (op, a, b, c)) -> Ok (Itype (op, a, b, c))
    | Ok (Isa.Load (op, a, b, c)) -> Ok (Load (op, a, b, c))
    | Ok (Isa.Store (op, a, b, c)) -> Ok (Store (op, a, b, c))
    | Ok (Isa.Branch (op, a, b, c)) -> Ok (Branch (op, a, b, c))
    | Ok (Isa.Lui (a, b)) -> Ok (Lui (a, b))
    | Ok (Isa.Auipc (a, b)) -> Ok (Auipc (a, b))
    | Ok (Isa.Jal (a, b)) -> Ok (Jal (a, b))
    | Ok (Isa.Jalr (a, b, c)) -> Ok (Jalr (a, b, c))
    | Ok Isa.Ecall -> Ok Ecall
    | Ok instr ->
      Error (Printf.sprintf "not RV64I: %s" (Format.asprintf "%a" Isa.pp instr))
  end

(* ---------------- semantics ---------------- *)

let sext32 v = Int64.of_int32 (Int64.to_int32 v)

let alu64 (op : Isa.rop) a b =
  let shamt = Int64.to_int b land 63 in
  match op with
  | Isa.ADD -> Int64.add a b
  | Isa.SUB -> Int64.sub a b
  | Isa.SLL -> Int64.shift_left a shamt
  | Isa.SLT -> if Int64.compare a b < 0 then 1L else 0L
  | Isa.SLTU -> if Int64.unsigned_compare a b < 0 then 1L else 0L
  | Isa.XOR -> Int64.logxor a b
  | Isa.SRL -> Int64.shift_right_logical a shamt
  | Isa.SRA -> Int64.shift_right a shamt
  | Isa.OR -> Int64.logor a b
  | Isa.AND -> Int64.logand a b
  | Isa.MUL | Isa.MULH | Isa.MULHSU | Isa.MULHU | Isa.DIV | Isa.DIVU | Isa.REM
  | Isa.REMU ->
    invalid_arg "Rv64.alu64: M extension op"

let aluw (op : Isa.rop) a b =
  let a32 = sext32 a and shamt = Int64.to_int b land 31 in
  match op with
  | Isa.ADD -> sext32 (Int64.add a32 (sext32 b))
  | Isa.SUB -> sext32 (Int64.sub a32 (sext32 b))
  | Isa.SLL -> sext32 (Int64.shift_left a32 shamt)
  | Isa.SRL ->
    sext32 (Int64.shift_right_logical (Int64.logand a 0xFFFFFFFFL) shamt)
  | Isa.SRA -> sext32 (Int64.shift_right a32 shamt)
  | _ -> invalid_arg "Rv64.aluw: not a W-form op"

(* ---------------- execution ---------------- *)

type machine = {
  xregs : int64 array;
  mutable pc : int;
  mem : Main_memory.t;
}

let machine ?(pc = 0x1000) mem = { xregs = Array.make Reg.count 0L; pc; mem }
let get_x m r = if r = 0 then 0L else m.xregs.(r)
let set_x m r v = if r <> 0 then m.xregs.(r) <- v

let branch_taken (op : Isa.bop) a b =
  match op with
  | Isa.BEQ -> Int64.equal a b
  | Isa.BNE -> not (Int64.equal a b)
  | Isa.BLT -> Int64.compare a b < 0
  | Isa.BGE -> Int64.compare a b >= 0
  | Isa.BLTU -> Int64.unsigned_compare a b < 0
  | Isa.BGEU -> Int64.unsigned_compare a b >= 0

let step (code : t array) ~base m =
  let idx = (m.pc - base) / 4 in
  if idx < 0 || idx >= Array.length code || (m.pc - base) mod 4 <> 0 then
    Error "pc out of range"
  else begin
    let x = get_x m in
    let addr_of base_r off = Int64.to_int (get_x m base_r) + off in
    let continue_at pc = m.pc <- pc; Ok () in
    let next = m.pc + 4 in
    try
      match code.(idx) with
      | Rtype (op, rd, rs1, rs2) ->
        set_x m rd (alu64 op (x rs1) (x rs2));
        continue_at next
      | Itype ((Isa.SLLI | Isa.SRLI | Isa.SRAI) as op, rd, rs1, sh) ->
        set_x m rd (alu64 (match op with Isa.SLLI -> Isa.SLL | Isa.SRLI -> Isa.SRL | _ -> Isa.SRA)
                      (x rs1) (Int64.of_int sh));
        continue_at next
      | Itype (op, rd, rs1, imm) ->
        let rop =
          match op with
          | Isa.ADDI -> Isa.ADD | Isa.SLTI -> Isa.SLT | Isa.SLTIU -> Isa.SLTU
          | Isa.XORI -> Isa.XOR | Isa.ORI -> Isa.OR | Isa.ANDI -> Isa.AND
          | Isa.SLLI | Isa.SRLI | Isa.SRAI -> assert false
        in
        set_x m rd (alu64 rop (x rs1) (Int64.of_int imm));
        continue_at next
      | Rw (op, rd, rs1, rs2) ->
        set_x m rd (aluw op (x rs1) (x rs2));
        continue_at next
      | Iw (op, rd, rs1, imm) ->
        let rop =
          match op with
          | Isa.ADDI -> Isa.ADD | Isa.SLLI -> Isa.SLL | Isa.SRLI -> Isa.SRL
          | Isa.SRAI -> Isa.SRA | _ -> assert false
        in
        set_x m rd (aluw rop (x rs1) (Int64.of_int imm));
        continue_at next
      | Load (op, rd, base_r, off) ->
        let a = addr_of base_r off in
        let v =
          match op with
          | Isa.LB -> Int64.of_int (Main_memory.load_byte m.mem a)
          | Isa.LBU -> Int64.of_int (Main_memory.load_byte_u m.mem a)
          | Isa.LH -> Int64.of_int (Main_memory.load_half m.mem a)
          | Isa.LHU -> Int64.of_int (Main_memory.load_half_u m.mem a)
          | Isa.LW -> Int64.of_int (Main_memory.load_word m.mem a)
        in
        set_x m rd v;
        continue_at next
      | Lwu (rd, base_r, off) ->
        set_x m rd
          (Int64.logand (Int64.of_int (Main_memory.load_word m.mem (addr_of base_r off)))
             0xFFFFFFFFL);
        continue_at next
      | Ld (rd, base_r, off) ->
        set_x m rd (Main_memory.load_dword m.mem (addr_of base_r off));
        continue_at next
      | Store (op, src, base_r, off) ->
        let a = addr_of base_r off in
        let v = Int64.to_int (x src) in
        (match op with
        | Isa.SB -> Main_memory.store_byte m.mem a v
        | Isa.SH -> Main_memory.store_half m.mem a v
        | Isa.SW -> Main_memory.store_word m.mem a (Int64.to_int (sext32 (x src))));
        continue_at next
      | Sd (src, base_r, off) ->
        Main_memory.store_dword m.mem (addr_of base_r off) (x src);
        continue_at next
      | Branch (op, rs1, rs2, off) ->
        continue_at (if branch_taken op (x rs1) (x rs2) then m.pc + off else next)
      | Lui (rd, imm) ->
        set_x m rd (Int64.of_int imm);
        continue_at next
      | Auipc (rd, imm) ->
        set_x m rd (Int64.of_int (m.pc + imm));
        continue_at next
      | Jal (rd, off) ->
        set_x m rd (Int64.of_int next);
        continue_at (m.pc + off)
      | Jalr (rd, base_r, off) ->
        let target = (Int64.to_int (x base_r) + off) land lnot 1 in
        set_x m rd (Int64.of_int next);
        continue_at target
      | Ecall -> Error "exit"
    with Invalid_argument msg -> Error msg
  end

let run ?(max_steps = 10_000_000) code ~base m =
  let rec go retired =
    if retired >= max_steps then Error "step limit"
    else
      match step code ~base m with
      | Ok () -> go (retired + 1)
      | Error "exit" -> Ok retired
      | Error _ as e -> e |> Result.map (fun _ -> retired)
  in
  go 0
