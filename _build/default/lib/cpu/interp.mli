(** Functional RV32IMF interpreter — the architectural reference.

    Every other execution substrate in the repo (the OoO timing model, the
    accelerator engine, the baselines) is validated against this
    interpreter: same program, same initial state, same final registers and
    memory.

    The interpreter reports each retired instruction through an optional
    callback carrying its dynamic facts (effective address, branch
    direction), which is exactly the information MESA's monitoring hardware
    taps at the decode/commit stages. *)

(** Why execution stopped. *)
type halt =
  | Exited           (** PC left the program's address range *)
  | Ecall_halt       (** an [ecall]/[ebreak] was retired *)
  | Step_limit       (** the [max_steps] budget ran out *)
  | Fault of string  (** decode or memory fault *)

(** One retired dynamic instruction. *)
type event = {
  addr : int;             (** instruction address *)
  instr : Isa.t;
  mem_addr : int option;  (** effective address for memory ops *)
  taken : bool option;    (** direction for conditional branches *)
  next_pc : int;
}

val step : Program.t -> Machine.t -> (event, halt) result
(** Execute the instruction at [Machine.pc], updating state. *)

val run :
  ?max_steps:int ->
  ?on_event:(event -> unit) ->
  Program.t ->
  Machine.t ->
  halt * int
(** [run prog m] steps until a halt condition, returning the reason and the
    number of instructions retired. [max_steps] defaults to 100 million. *)

(** {1 32-bit arithmetic semantics}

    Exposed for reuse by the accelerator engine, which must compute the very
    same values PE-side. All functions take and return sign-extended 32-bit
    native ints. *)

module Alu : sig
  val rtype : Isa.rop -> int -> int -> int
  val itype : Isa.iop -> int -> int -> int
  val branch_taken : Isa.bop -> int -> int -> bool
  val ftype : Isa.fop -> float -> float -> float
  val fcmp : Isa.fcmp -> float -> float -> int
  val fcvt_w_s : float -> int
  val fcvt_s_w : int -> float
  val fmv_x_w : float -> int
  val fmv_w_x : int -> float
end
