type halt = Exited | Ecall_halt | Step_limit | Fault of string

type event = {
  addr : int;
  instr : Isa.t;
  mem_addr : int option;
  taken : bool option;
  next_pc : int;
}

let s32 = Machine.to_s32
let u32 = Machine.to_u32
let r32 = Machine.round32

module Alu = struct
  let int_min32 = -0x80000000

  let rtype (op : Isa.rop) a b =
    match op with
    | ADD -> s32 (a + b)
    | SUB -> s32 (a - b)
    | SLL -> s32 (a lsl (b land 31))
    | SLT -> if a < b then 1 else 0
    | SLTU -> if u32 a < u32 b then 1 else 0
    | XOR -> s32 (a lxor b)
    | SRL -> s32 (u32 a lsr (b land 31))
    | SRA -> s32 (a asr (b land 31))
    | OR -> s32 (a lor b)
    | AND -> s32 (a land b)
    | MUL -> s32 (a * b)
    | MULH ->
      let p = Int64.mul (Int64.of_int a) (Int64.of_int b) in
      s32 (Int64.to_int (Int64.shift_right p 32))
    | MULHSU ->
      let p = Int64.mul (Int64.of_int a) (Int64.of_int (u32 b)) in
      s32 (Int64.to_int (Int64.shift_right p 32))
    | MULHU ->
      let p = Int64.mul (Int64.of_int (u32 a)) (Int64.of_int (u32 b)) in
      s32 (Int64.to_int (Int64.shift_right p 32))
    | DIV ->
      if b = 0 then -1
      else if a = int_min32 && b = -1 then int_min32
      else s32 (a / b)
    | DIVU -> if b = 0 then -1 else s32 (u32 a / u32 b)
    | REM ->
      if b = 0 then a
      else if a = int_min32 && b = -1 then 0
      else s32 (a mod b)
    | REMU -> if b = 0 then a else s32 (u32 a mod u32 b)

  let itype (op : Isa.iop) a imm =
    match op with
    | ADDI -> rtype ADD a imm
    | SLTI -> rtype SLT a imm
    | SLTIU -> rtype SLTU a imm
    | XORI -> rtype XOR a imm
    | ORI -> rtype OR a imm
    | ANDI -> rtype AND a imm
    | SLLI -> rtype SLL a imm
    | SRLI -> rtype SRL a imm
    | SRAI -> rtype SRA a imm

  let branch_taken (op : Isa.bop) a b =
    match op with
    | BEQ -> a = b
    | BNE -> a <> b
    | BLT -> a < b
    | BGE -> a >= b
    | BLTU -> u32 a < u32 b
    | BGEU -> u32 a >= u32 b

  let sign_bit f = Int32.logand (Int32.bits_of_float f) Int32.min_int

  let with_sign f sign =
    Int32.float_of_bits
      (Int32.logor (Int32.logand (Int32.bits_of_float f) Int32.max_int) sign)

  let ftype (op : Isa.fop) a b =
    match op with
    | FADD -> r32 (a +. b)
    | FSUB -> r32 (a -. b)
    | FMUL -> r32 (a *. b)
    | FDIV -> r32 (a /. b)
    | FSQRT -> r32 (sqrt a)
    | FMIN ->
      if Float.is_nan a then b
      else if Float.is_nan b then a
      else if a < b then a
      else b
    | FMAX ->
      if Float.is_nan a then b
      else if Float.is_nan b then a
      else if a > b then a
      else b
    | FSGNJ -> with_sign a (sign_bit b)
    | FSGNJN -> with_sign a (Int32.logxor (sign_bit b) Int32.min_int)
    | FSGNJX -> with_sign a (Int32.logxor (sign_bit a) (sign_bit b))

  let fcmp (op : Isa.fcmp) a b =
    if Float.is_nan a || Float.is_nan b then 0
    else
      let r = match op with FEQ -> a = b | FLT -> a < b | FLE -> a <= b in
      if r then 1 else 0

  let fcvt_w_s f =
    if Float.is_nan f then 0x7FFFFFFF
    else if f >= 2147483647.0 then 0x7FFFFFFF
    else if f <= -2147483648.0 then int_min32
    else int_of_float f (* OCaml truncates toward zero = RTZ *)

  let fcvt_s_w v = r32 (float_of_int v)
  let fmv_x_w f = s32 (Int32.to_int (Int32.bits_of_float f))
  let fmv_w_x v = Int32.float_of_bits (Int32.of_int v)
end

let step prog (m : Machine.t) =
  match Program.fetch prog m.pc with
  | None -> Error Exited
  | Some instr -> begin
    let pc = m.pc in
    let default_next = pc + 4 in
    let x = Machine.get_x m and f = Machine.get_f m in
    let finish ?mem_addr ?taken next_pc =
      m.pc <- next_pc;
      Ok { addr = pc; instr; mem_addr; taken; next_pc }
    in
    try
      match instr with
      | Isa.Rtype (op, rd, rs1, rs2) ->
        Machine.set_x m rd (Alu.rtype op (x rs1) (x rs2));
        finish default_next
      | Isa.Itype (op, rd, rs1, imm) ->
        Machine.set_x m rd (Alu.itype op (x rs1) imm);
        finish default_next
      | Isa.Load (op, rd, base, off) ->
        let addr = u32 (x base + off) in
        let v =
          match op with
          | LB -> Main_memory.load_byte m.mem addr
          | LBU -> Main_memory.load_byte_u m.mem addr
          | LH -> Main_memory.load_half m.mem addr
          | LHU -> Main_memory.load_half_u m.mem addr
          | LW -> Main_memory.load_word m.mem addr
        in
        Machine.set_x m rd v;
        finish ~mem_addr:addr default_next
      | Isa.Store (op, src, base, off) ->
        let addr = u32 (x base + off) in
        (match op with
        | SB -> Main_memory.store_byte m.mem addr (x src)
        | SH -> Main_memory.store_half m.mem addr (x src)
        | SW -> Main_memory.store_word m.mem addr (x src));
        finish ~mem_addr:addr default_next
      | Isa.Branch (op, rs1, rs2, off) ->
        let taken = Alu.branch_taken op (x rs1) (x rs2) in
        finish ~taken (if taken then pc + off else default_next)
      | Isa.Lui (rd, imm) ->
        Machine.set_x m rd (s32 imm);
        finish default_next
      | Isa.Auipc (rd, imm) ->
        Machine.set_x m rd (s32 (pc + imm));
        finish default_next
      | Isa.Jal (rd, off) ->
        Machine.set_x m rd default_next;
        finish (pc + off)
      | Isa.Jalr (rd, base, off) ->
        let target = u32 (x base + off) land lnot 1 in
        Machine.set_x m rd default_next;
        finish target
      | Isa.Ftype (op, fd, fs1, fs2) ->
        Machine.set_f m fd (Alu.ftype op (f fs1) (f fs2));
        finish default_next
      | Isa.Fcmp (op, rd, fs1, fs2) ->
        Machine.set_x m rd (Alu.fcmp op (f fs1) (f fs2));
        finish default_next
      | Isa.Flw (fd, base, off) ->
        let addr = u32 (x base + off) in
        Machine.set_f m fd (Main_memory.load_float32 m.mem addr);
        finish ~mem_addr:addr default_next
      | Isa.Fsw (fsrc, base, off) ->
        let addr = u32 (x base + off) in
        Main_memory.store_float32 m.mem addr (f fsrc);
        finish ~mem_addr:addr default_next
      | Isa.Fcvt_w_s (rd, fs1) ->
        Machine.set_x m rd (Alu.fcvt_w_s (f fs1));
        finish default_next
      | Isa.Fcvt_s_w (fd, rs1) ->
        Machine.set_f m fd (Alu.fcvt_s_w (x rs1));
        finish default_next
      | Isa.Fmv_x_w (rd, fs1) ->
        Machine.set_x m rd (Alu.fmv_x_w (f fs1));
        finish default_next
      | Isa.Fmv_w_x (fd, rs1) ->
        Machine.set_f m fd (Alu.fmv_w_x (x rs1));
        finish default_next
      | Isa.Ecall | Isa.Ebreak -> Error Ecall_halt
      | Isa.Fence -> finish default_next
    with Invalid_argument msg -> Error (Fault msg)
  end

let run ?(max_steps = 100_000_000) ?on_event prog m =
  let rec go retired =
    if retired >= max_steps then (Step_limit, retired)
    else
      match step prog m with
      | Ok ev ->
        (match on_event with Some f -> f ev | None -> ());
        go (retired + 1)
      | Error halt -> (halt, retired)
  in
  go 0
