(** Branch direction predictors with an assumed-perfect BTB, as used by
    the OoO timing model.

    The loop branches MESA targets are highly biased, so the default
    bimodal (2-bit saturating counter) table captures the relevant
    first-order behaviour: one mispredict per loop exit plus cold-start
    noise. A gshare variant (global history XOR PC) is provided for
    pattern-sensitive studies — it learns alternating directions that blind
    a bimodal table. *)

type kind =
  | Bimodal
  | Gshare of int  (** history length in bits *)

type t

val create : ?entries:int -> ?kind:kind -> unit -> t
(** [entries] must be a power of two (default 1024); [kind] defaults to
    [Bimodal]. *)

val predict : t -> int -> bool
(** Predicted direction for the branch at the given address. *)

val update : t -> int -> bool -> unit
(** Train with the resolved direction. *)

val predict_and_update : t -> int -> bool -> bool
(** [predict_and_update t addr actual] returns whether the prediction was
    correct, then trains. *)

val mispredicts : t -> int
val lookups : t -> int
