lib/cpu/interp.mli: Isa Machine Program
