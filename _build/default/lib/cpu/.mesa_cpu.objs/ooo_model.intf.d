lib/cpu/ooo_model.mli: Hierarchy Interp Latency
