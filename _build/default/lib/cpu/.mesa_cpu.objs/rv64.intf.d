lib/cpu/rv64.mli: Format Isa Main_memory Reg
