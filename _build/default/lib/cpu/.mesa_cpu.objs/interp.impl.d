lib/cpu/interp.ml: Float Int32 Int64 Isa Machine Main_memory Program
