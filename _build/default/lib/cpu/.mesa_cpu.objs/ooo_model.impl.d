lib/cpu/ooo_model.ml: Array Hierarchy Interp Isa Latency List Option Predictor Reg
