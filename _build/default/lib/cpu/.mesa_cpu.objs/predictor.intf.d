lib/cpu/predictor.mli:
