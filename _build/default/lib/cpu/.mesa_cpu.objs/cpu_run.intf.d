lib/cpu/cpu_run.mli: Hierarchy Interp Machine Ooo_model Program
