lib/cpu/machine.mli: Main_memory Reg
