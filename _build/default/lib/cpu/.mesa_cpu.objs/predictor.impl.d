lib/cpu/predictor.ml: Array
