lib/cpu/rv64.ml: Array Decode Encode Format Int32 Int64 Isa Main_memory Printf Reg Result Sys
