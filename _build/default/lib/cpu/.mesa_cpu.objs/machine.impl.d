lib/cpu/machine.ml: Array Int32 List Main_memory Option Reg Sys
