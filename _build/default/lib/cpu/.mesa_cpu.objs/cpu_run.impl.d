lib/cpu/cpu_run.ml: Hierarchy Interp Ooo_model
