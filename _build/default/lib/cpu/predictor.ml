type kind = Bimodal | Gshare of int

type t = {
  counters : int array; (* 2-bit saturating, 0..3; >=2 means predict taken *)
  mask : int;
  kind : kind;
  mutable history : int; (* global direction history, newest bit lowest *)
  mutable mispredicts : int;
  mutable lookups : int;
}

let create ?(entries = 1024) ?(kind = Bimodal) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Predictor.create: entries must be a power of two";
  (* Initialize to weakly-taken: backward loop branches start out right. *)
  {
    counters = Array.make entries 2;
    mask = entries - 1;
    kind;
    history = 0;
    mispredicts = 0;
    lookups = 0;
  }

let index t addr =
  match t.kind with
  | Bimodal -> (addr lsr 2) land t.mask
  | Gshare bits ->
    ((addr lsr 2) lxor (t.history land ((1 lsl bits) - 1))) land t.mask

let predict t addr = t.counters.(index t addr) >= 2

let update t addr actual =
  let i = index t addr in
  let c = t.counters.(i) in
  t.counters.(i) <- (if actual then min 3 (c + 1) else max 0 (c - 1));
  match t.kind with
  | Bimodal -> ()
  | Gshare _ -> t.history <- (t.history lsl 1) lor (if actual then 1 else 0)

let predict_and_update t addr actual =
  t.lookups <- t.lookups + 1;
  let correct = predict t addr = actual in
  if not correct then t.mispredicts <- t.mispredicts + 1;
  update t addr actual;
  correct

let mispredicts t = t.mispredicts
let lookups t = t.lookups
