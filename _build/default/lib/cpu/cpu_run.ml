type result = { halt : Interp.halt; summary : Ooo_model.summary }

let run ?max_steps ?(config = Ooo_model.default_config) ?hierarchy prog machine =
  let hierarchy =
    match hierarchy with
    | Some h -> h
    | None -> Hierarchy.create Hierarchy.default_config
  in
  let model = Ooo_model.create config hierarchy in
  let halt, _retired =
    Interp.run ?max_steps ~on_event:(Ooo_model.feed model) prog machine
  in
  { halt; summary = Ooo_model.summary model }

let cycles r = r.summary.Ooo_model.cycles
let ipc r = Ooo_model.ipc r.summary
