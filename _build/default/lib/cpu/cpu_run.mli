(** Coupled functional + timing execution of a program on one OoO core. *)

type result = {
  halt : Interp.halt;
  summary : Ooo_model.summary;
}

val run :
  ?max_steps:int ->
  ?config:Ooo_model.config ->
  ?hierarchy:Hierarchy.t ->
  Program.t ->
  Machine.t ->
  result
(** Interpret the program from [Machine.pc] until it halts, feeding every
    retired instruction to the timing model. The machine is mutated to the
    final architectural state. A private default hierarchy is created when
    none is given. *)

val cycles : result -> int
val ipc : result -> float
