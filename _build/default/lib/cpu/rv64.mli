(** The RV64I base integer ISA — the paper's hardware "supports the RISC-V
    (RV32IMF and RV64I) ISA" (§1), so the repo carries both. The evaluation
    itself runs RV32G binaries; RV64I is provided as a self-contained
    codec + interpreter (64-bit architectural state over [Int64]) with the
    W-suffixed word operations and doubleword memory accesses RV64 adds.

    C2's control check rejects mixed-width regions anyway (a 64-bit loop
    cannot run on a 32-bit fabric), so this module stands beside the main
    pipeline rather than inside it — exactly like the RTL, where the RV64
    front-end feature is decode support, not a second fabric. *)

(** RV64I instructions. Where semantics coincide with RV32 the constructor
    is shared in spirit but operates on 64-bit registers; W-forms operate
    on the low 32 bits and sign-extend. *)
type t =
  | Rtype of Isa.rop * Reg.t * Reg.t * Reg.t   (** 64-bit; M ops excluded *)
  | Itype of Isa.iop * Reg.t * Reg.t * int     (** shifts take 6-bit shamt *)
  | Rw of Isa.rop * Reg.t * Reg.t * Reg.t      (** ADDW/SUBW/SLLW/SRLW/SRAW *)
  | Iw of Isa.iop * Reg.t * Reg.t * int        (** ADDIW/SLLIW/SRLIW/SRAIW *)
  | Load of Isa.lop * Reg.t * Reg.t * int
  | Lwu of Reg.t * Reg.t * int
  | Ld of Reg.t * Reg.t * int
  | Store of Isa.sop * Reg.t * Reg.t * int
  | Sd of Reg.t * Reg.t * int
  | Branch of Isa.bop * Reg.t * Reg.t * int
  | Lui of Reg.t * int
  | Auipc of Reg.t * int
  | Jal of Reg.t * int
  | Jalr of Reg.t * Reg.t * int
  | Ecall

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** {1 Binary codec (RV64I encodings)} *)

val encode : t -> int32
(** @raise Encode.Unencodable on out-of-range operands. *)

val decode : int32 -> (t, string) result

(** {1 Execution} *)

(** 64-bit hart state. *)
type machine = {
  xregs : int64 array;
  mutable pc : int;
  mem : Main_memory.t;
}

val machine : ?pc:int -> Main_memory.t -> machine
val get_x : machine -> Reg.t -> int64
val set_x : machine -> Reg.t -> int64 -> unit

val step : t array -> base:int -> machine -> (unit, string) result
(** Execute the instruction at [pc]; ["exit"] signals a clean [ecall]
    halt, other strings are faults. *)

val run : ?max_steps:int -> t array -> base:int -> machine -> (int, string) result
(** Run to the [ecall] or off the end; returns instructions retired. *)

(** {1 Semantics helpers (exposed for the differential tests)} *)

val alu64 : Isa.rop -> int64 -> int64 -> int64
val aluw : Isa.rop -> int64 -> int64 -> int64
(** 32-bit operate, sign-extend to 64. *)
