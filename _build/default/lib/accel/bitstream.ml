let magic = 0x4D455341l (* "MESA" *)

let version = 1

(* ------------------------------------------------------------------ *)
(* Field packing helpers. All values travel as int32 words; within this
   module we manipulate them as non-negative ints below 2^32.           *)

let to_word i = Int32.of_int (i land 0xFFFFFFFF)
let of_word w = Int32.to_int w land 0xFFFFFFFF

let src_word = function
  | Dfg.Node i ->
    if i < 0 || i >= 1 lsl 24 then invalid_arg "Bitstream: node index out of range";
    (1 lsl 31) lor i
  | Dfg.Reg_in (r, file) ->
    let f = match file with Dfg.X -> 0 | Dfg.F -> 1 in
    (f lsl 30) lor (r land 0xFF)

let src_of_word u =
  if u land (1 lsl 31) <> 0 then Dfg.Node (u land 0xFFFFFF)
  else
    let file = if u land (1 lsl 30) <> 0 then Dfg.F else Dfg.X in
    Dfg.Reg_in (u land 0xFF, file)

let loc_word = function
  | Placement.Ls e -> (1 lsl 31) lor (e land 0xFFFF)
  | Placement.Pe c -> (c.Grid.row lsl 8) lor (c.Grid.col land 0xFF)

let loc_of_word u =
  if u land (1 lsl 31) <> 0 then Placement.Ls (u land 0xFFFF)
  else Placement.Pe (Grid.coord ((u lsr 8) land 0x3FFFFF) (u land 0xFF))

(* ------------------------------------------------------------------ *)

let encode (dfg : Dfg.t) (config : Accel_config.t) =
  let n = Dfg.node_count dfg in
  let pl = config.Accel_config.placement in
  if Array.length pl.Placement.assign <> n then
    invalid_arg "Bitstream.encode: placement size mismatch";
  let words = ref [] in
  let emit u = words := to_word u :: !words in
  let emit32 w = words := w :: !words in
  emit32 magic;
  emit
    ((version lsl 24)
    lor ((config.Accel_config.tiling land 0xFFFF) lsl 8)
    lor (if config.Accel_config.pipelined then 1 else 0));
  emit n;
  emit dfg.Dfg.entry_addr;
  emit dfg.Dfg.exit_addr;
  emit dfg.Dfg.back_branch;
  (* Grid geometry so the decoder can rebuild the placement context. *)
  let g = pl.Placement.grid in
  emit
    ((g.Grid.rows lsl 20) lor (g.Grid.cols lsl 12) lor (g.Grid.mem_ports lsl 4)
    lor
    match pl.Placement.kind with
    | Interconnect.Mesh_noc -> 0
    | Interconnect.Hierarchical_rows -> 1
    | Interconnect.Pure_mesh -> 2);
  Array.iteri
    (fun i nd ->
      emit32 (Encode.to_word nd.Dfg.instr);
      emit nd.Dfg.addr;
      emit (loc_word pl.Placement.assign.(i));
      emit
        ((Array.length nd.Dfg.srcs lsl 24)
        lor (List.length nd.Dfg.guards lsl 16)
        lor ((if nd.Dfg.hidden <> None then 1 else 0) lsl 1)
        lor if nd.Dfg.prev_store <> None then 1 else 0);
      Array.iter (fun s -> emit (src_word s)) nd.Dfg.srcs;
      Option.iter (fun h -> emit (src_word h)) nd.Dfg.hidden;
      Option.iter (fun s -> emit s) nd.Dfg.prev_store;
      List.iter
        (fun (b, dis) -> emit ((b lsl 1) lor if dis then 1 else 0))
        nd.Dfg.guards)
    dfg.Dfg.nodes;
  let emit_reg_list rs =
    emit (List.length rs);
    List.iter emit rs
  in
  let emit_out_list os =
    emit (List.length os);
    List.iter
      (fun (r, s) ->
        emit r;
        emit (src_word s))
      os
  in
  emit_reg_list dfg.Dfg.live_in_x;
  emit_reg_list dfg.Dfg.live_in_f;
  emit_out_list dfg.Dfg.live_out_x;
  emit_out_list dfg.Dfg.live_out_f;
  emit (List.length config.Accel_config.forwarding);
  List.iter
    (fun (load, store) -> emit ((load lsl 16) lor (store land 0xFFFF)))
    config.Accel_config.forwarding;
  emit (List.length config.Accel_config.vector_groups);
  List.iter
    (fun group ->
      emit (List.length group);
      List.iter emit group)
    config.Accel_config.vector_groups;
  emit_reg_list config.Accel_config.prefetched;
  (* Integrity trailer: xor of everything so far. *)
  let body = List.rev !words in
  let csum = List.fold_left (fun acc w -> Int32.logxor acc w) 0l body in
  Array.of_list (body @ [ csum ])

(* ------------------------------------------------------------------ *)

exception Parse of string

let decode (image : int32 array) =
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length image then raise (Parse "truncated image");
    let w = image.(!pos) in
    incr pos;
    w
  in
  let nexti () = of_word (next ()) in
  try
    if Array.length image < 8 then raise (Parse "image too short");
    let csum =
      Array.sub image 0 (Array.length image - 1)
      |> Array.fold_left Int32.logxor 0l
    in
    if csum <> image.(Array.length image - 1) then raise (Parse "checksum mismatch");
    if next () <> magic then raise (Parse "bad magic");
    let h = nexti () in
    if h lsr 24 <> version then raise (Parse "unsupported version");
    let tiling = (h lsr 8) land 0xFFFF in
    let pipelined = h land 1 = 1 in
    let n = nexti () in
    if n <= 0 || n > 1 lsl 20 then raise (Parse "implausible node count");
    let entry_addr = nexti () in
    let exit_addr = nexti () in
    let back_branch = nexti () in
    let geom = nexti () in
    let rows = geom lsr 20
    and cols = (geom lsr 12) land 0xFF
    and mem_ports = (geom lsr 4) land 0xFF in
    let kind =
      match geom land 0xF with
      | 0 -> Interconnect.Mesh_noc
      | 1 -> Interconnect.Hierarchical_rows
      | 2 -> Interconnect.Pure_mesh
      | k -> raise (Parse (Printf.sprintf "unknown interconnect kind %d" k))
    in
    let grid = Grid.make ~rows ~cols ~mem_ports () in
    let assign = Array.make n (Placement.Ls 0) in
    let nodes =
      Array.init n (fun i ->
          let instr =
            match Decode.of_word (next ()) with
            | Ok instr -> instr
            | Error e -> raise (Parse ("node instruction: " ^ e))
          in
          let addr = nexti () in
          assign.(i) <- loc_of_word (nexti ());
          let meta = nexti () in
          let n_srcs = meta lsr 24
          and n_guards = (meta lsr 16) land 0xFF
          and has_hidden = meta land 2 <> 0
          and has_prev = meta land 1 <> 0 in
          let srcs = Array.init n_srcs (fun _ -> src_of_word (nexti ())) in
          let hidden = if has_hidden then Some (src_of_word (nexti ())) else None in
          let prev_store = if has_prev then Some (nexti ()) else None in
          let guards =
            List.init n_guards (fun _ ->
                let g = nexti () in
                (g lsr 1, g land 1 = 1))
          in
          { Dfg.instr; addr; srcs; guards; hidden; prev_store })
    in
    let reg_list () = List.init (nexti ()) (fun _ -> nexti ()) in
    let out_list () =
      List.init (nexti ()) (fun _ ->
          let r = nexti () in
          let s = src_of_word (nexti ()) in
          (r, s))
    in
    let live_in_x = reg_list () in
    let live_in_f = reg_list () in
    let live_out_x = out_list () in
    let live_out_f = out_list () in
    let forwarding =
      List.init (nexti ()) (fun _ ->
          let w = nexti () in
          (w lsr 16, w land 0xFFFF))
    in
    let vector_groups = List.init (nexti ()) (fun _ -> reg_list ()) in
    let prefetched = reg_list () in
    let dfg =
      {
        Dfg.nodes;
        live_in_x;
        live_in_f;
        live_out_x;
        live_out_f;
        back_branch;
        entry_addr;
        exit_addr;
      }
    in
    (match Dfg.validate dfg with
    | Ok () -> ()
    | Error e -> raise (Parse ("decoded graph invalid: " ^ e)));
    let placement = Placement.make grid kind assign in
    (match Placement.validate dfg placement with
    | Ok () -> ()
    | Error e -> raise (Parse ("decoded placement invalid: " ^ e)));
    let config =
      {
        Accel_config.placement;
        forwarding;
        vector_groups;
        prefetched;
        tiling;
        pipelined;
      }
    in
    Ok (dfg, config)
  with
  | Parse msg -> Error msg
  | Encode.Unencodable msg -> Error msg

let size_bits dfg config = 32 * Array.length (encode dfg config)
