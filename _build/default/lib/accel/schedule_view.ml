type slot = {
  node : int;
  start : float;
  finish : float;
  where : Placement.loc;
}

let compute (model : Perf_model.t) (placement : Placement.t) =
  let dfg = Perf_model.graph model in
  List.iter
    (fun (i, j, _) ->
      Perf_model.set_transfer_estimate model i j (Placement.transfer_f placement i j))
    (Dfg.edges dfg);
  let finish = Perf_model.completion_times model in
  Array.mapi
    (fun i f ->
      {
        node = i;
        start = f -. Perf_model.op_latency model i;
        finish = f;
        where = Placement.loc_of placement i;
      })
    finish

let makespan slots = Array.fold_left (fun acc s -> Float.max acc s.finish) 0.0 slots

let gantt ?(width = 60) (dfg : Dfg.t) slots =
  let total = Float.max 1.0 (makespan slots) in
  let scale = float_of_int width /. total in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "one-iteration schedule, makespan %.1f cycles\n" total);
  Array.iter
    (fun s ->
      let loc =
        match s.where with
        | Placement.Pe c -> Printf.sprintf "PE(%2d,%d)" c.Grid.row c.Grid.col
        | Placement.Ls e -> Printf.sprintf "LS[%3d] " e
      in
      let from = int_of_float (s.start *. scale) in
      let till = max (from + 1) (int_of_float (s.finish *. scale)) in
      let row = Bytes.make width '.' in
      for c = from to min (width - 1) (till - 1) do
        Bytes.set row c '='
      done;
      Buffer.add_string buf
        (Printf.sprintf "n%-3d %s %s [%5.1f,%5.1f) %s\n" s.node loc
           (Bytes.to_string row) s.start s.finish
           (Disasm.to_string dfg.Dfg.nodes.(s.node).Dfg.instr)))
    slots;
  Buffer.contents buf
