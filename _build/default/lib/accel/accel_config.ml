type t = {
  placement : Placement.t;
  forwarding : (int * int) list;
  vector_groups : int list list;
  prefetched : int list;
  tiling : int;
  pipelined : bool;
}

let plain placement =
  { placement; forwarding = []; vector_groups = []; prefetched = []; tiling = 1; pipelined = false }

let with_opts ?(forwarding = []) ?(vector_groups = []) ?(prefetched = []) ?(tiling = 1)
    ?(pipelined = false) placement =
  if tiling < 1 then invalid_arg "Accel_config.with_opts: tiling must be >= 1";
  { placement; forwarding; vector_groups; prefetched; tiling; pipelined }

(* Per node: 32-bit instruction descriptor + 2 x 16-bit source selects +
   8 routing-control bits. Per LS entry additionally a 16-bit ordering tag.
   Tiled instances are written in full. *)
let bitstream_bits t (dfg : Dfg.t) =
  let per_node = 32 + (2 * 16) + 8 in
  let mem_nodes =
    Array.fold_left
      (fun acc nd -> if Isa.is_memory nd.Dfg.instr then acc + 1 else acc)
      0 dfg.Dfg.nodes
  in
  let per_instance = (Dfg.node_count dfg * per_node) + (mem_nodes * 16) in
  t.tiling * per_instance

let config_cycles t dfg =
  (* Config words stream at two cycles each over the configuration network.
     Tiled instances are bit-identical (Figure 6 duplicates one virtual
     SDFG), so they are written by multicast: one instance's stream plus a
     per-instance routing tail. A fixed setup/drain tail covers the control
     transfer. Calibrated to the paper's 10^3-10^4-cycle band. *)
  let instance_words = Stats.div_ceil (bitstream_bits t dfg / t.tiling) 32 in
  (2 * instance_words) + (8 * t.tiling) + 768
