type loc = Pe of Grid.coord | Ls of int

type t = { grid : Grid.t; kind : Interconnect.kind; assign : loc array }

let make grid kind assign = { grid; kind; assign }

let loc_of t i = t.assign.(i)

let coord_of t i =
  match t.assign.(i) with
  | Pe c -> c
  | Ls e -> Interconnect.ls_coord t.grid e

let validate (dfg : Dfg.t) t =
  let n = Dfg.node_count dfg in
  if Array.length t.assign <> n then Error "placement size mismatch"
  else begin
    let seen = Hashtbl.create 64 in
    let rec go i =
      if i = n then Ok ()
      else
        let cls = Isa.op_class dfg.Dfg.nodes.(i).Dfg.instr in
        match t.assign.(i) with
        | Pe c ->
          if not (Grid.in_bounds t.grid c) then
            Error (Printf.sprintf "node %d placed out of bounds (%d,%d)" i c.row c.col)
          else if Isa.is_memory dfg.Dfg.nodes.(i).Dfg.instr then
            Error (Printf.sprintf "memory node %d placed on a PE" i)
          else if not (Grid.supports t.grid c cls) then
            Error (Printf.sprintf "node %d op unsupported at (%d,%d)" i c.row c.col)
          else if Hashtbl.mem seen (`Pe (c.row, c.col)) then
            Error (Printf.sprintf "PE (%d,%d) assigned twice" c.row c.col)
          else begin
            Hashtbl.add seen (`Pe (c.row, c.col)) ();
            go (i + 1)
          end
        | Ls e ->
          if not (Isa.is_memory dfg.Dfg.nodes.(i).Dfg.instr) then
            Error (Printf.sprintf "non-memory node %d placed on LS entry" i)
          else if e < 0 || e >= t.grid.Grid.ls_entries then
            Error (Printf.sprintf "LS entry %d out of range for node %d" e i)
          else if Hashtbl.mem seen (`Ls e) then
            Error (Printf.sprintf "LS entry %d assigned twice" e)
          else begin
            Hashtbl.add seen (`Ls e) ();
            go (i + 1)
          end
    in
    go 0
  end

let transfer t i j = Interconnect.latency t.grid t.kind (coord_of t i) (coord_of t j)
let transfer_f t i j = float_of_int (transfer t i j)
let route t i j = Interconnect.route t.grid t.kind (coord_of t i) (coord_of t j)

let used_pes t =
  Array.fold_left (fun acc l -> match l with Pe _ -> acc + 1 | Ls _ -> acc) 0 t.assign

let pp ppf t =
  let g = t.grid in
  let cell = Array.make_matrix g.Grid.rows g.Grid.cols (-1) in
  Array.iteri
    (fun i l -> match l with Pe c -> cell.(c.Grid.row).(c.Grid.col) <- i | Ls _ -> ())
    t.assign;
  Format.fprintf ppf "@[<v>%s placement (%d PEs used):@," g.Grid.name (used_pes t);
  for r = 0 to g.Grid.rows - 1 do
    Format.fprintf ppf "  ";
    for c = 0 to g.Grid.cols - 1 do
      if cell.(r).(c) >= 0 then Format.fprintf ppf "%4d" cell.(r).(c)
      else Format.fprintf ppf "   ."
    done;
    Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
