(** The configuration bitstream: a self-contained binary image of a
    configured loop, exactly what MESA's ConfigBlock streams to the fabric
    in task T3.

    The image carries everything the accelerator needs to run with no
    further help from MESA: each node's original RISC-V instruction word
    (PEs decode locally), its physical location, its input routes (source
    selects), predication guards, hidden-value and store-ordering links,
    the live-in/live-out register maps for architectural state transfer,
    the loop's entry/exit addresses, and the optimization controls
    (forwarding pairs, vector groups, prefetch flags, tiling, pipelining).

    [decode (encode dfg config)] reconstructs both structures exactly — a
    property the test suite checks for every kernel and for random loops —
    so a fabric driven only by the bitstream is provably configured
    identically to one driven by MESA's in-memory model. *)

val magic : int32
(** First word of every image. *)

val encode : Dfg.t -> Accel_config.t -> int32 array
(** Serialize. Raises [Invalid_argument] on structurally broken inputs
    (e.g. a placement array of the wrong length). *)

val decode : int32 array -> (Dfg.t * Accel_config.t, string) result
(** Parse an image back. Fails with a human-readable reason on truncated,
    corrupted or wrong-magic images. *)

val size_bits : Dfg.t -> Accel_config.t -> int
(** Exact size of the encoded image in bits. The analytic sizing model in
    {!Accel_config.bitstream_bits} approximates this; the tests keep the
    two within a small factor. *)
