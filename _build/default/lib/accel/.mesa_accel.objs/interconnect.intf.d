lib/accel/interconnect.mli: Grid
