lib/accel/placement.ml: Array Dfg Format Grid Hashtbl Interconnect Isa Printf
