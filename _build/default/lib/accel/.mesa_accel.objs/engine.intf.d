lib/accel/engine.mli: Accel_config Activity Dfg Hierarchy Machine Stdlib
