lib/accel/placement.mli: Dfg Format Grid Interconnect
