lib/accel/bitstream.ml: Accel_config Array Decode Dfg Encode Grid Int32 Interconnect List Option Placement Printf
