lib/accel/contention.ml: Float Hashtbl Option
