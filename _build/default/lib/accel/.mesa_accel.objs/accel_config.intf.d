lib/accel/accel_config.mli: Dfg Placement
