lib/accel/grid.mli: Isa
