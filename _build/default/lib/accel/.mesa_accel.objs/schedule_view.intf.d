lib/accel/schedule_view.mli: Dfg Perf_model Placement
