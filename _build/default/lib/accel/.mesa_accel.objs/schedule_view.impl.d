lib/accel/schedule_view.ml: Array Buffer Bytes Dfg Disasm Float Grid List Perf_model Placement Printf
