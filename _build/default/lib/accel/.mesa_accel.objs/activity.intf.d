lib/accel/activity.mli:
