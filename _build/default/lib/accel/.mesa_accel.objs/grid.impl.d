lib/accel/grid.ml: Isa Option Printf Stats
