lib/accel/contention.mli:
