lib/accel/bitstream.mli: Accel_config Dfg
