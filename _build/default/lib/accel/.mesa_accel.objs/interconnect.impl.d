lib/accel/interconnect.ml: Grid Stats
