lib/accel/activity.ml:
