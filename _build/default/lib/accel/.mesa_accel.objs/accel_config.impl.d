lib/accel/accel_config.ml: Array Dfg Isa Placement Stats
