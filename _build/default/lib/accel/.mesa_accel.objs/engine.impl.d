lib/accel/engine.ml: Accel_config Activity Array Contention Dfg Float Format Grid Hashtbl Hierarchy Interconnect Interp Isa Latency List Machine Main_memory Option Placement Printf Reg Stats Sys
