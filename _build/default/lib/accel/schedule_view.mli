(** A static one-iteration schedule of a placed DFG, and its Gantt
    rendering — the view a hardware engineer gets from the per-PE latency
    counters when debugging a mapping.

    Times come from Equation 2 under the performance model's operation
    weights and the placement's transfer latencies (no dynamic contention;
    the engine measures that). *)

type slot = {
  node : int;
  start : float;   (** all inputs arrived *)
  finish : float;  (** output produced *)
  where : Placement.loc;
}

val compute : Perf_model.t -> Placement.t -> slot array
(** One slot per node, in node order. The model's edge estimates are set
    from the placement first, so the result always reflects the placement
    given. *)

val makespan : slot array -> float

val gantt : ?width:int -> Dfg.t -> slot array -> string
(** One row per node: location, disassembly and a bar spanning
    [start, finish) scaled to [width] columns. *)
