(** A complete accelerator configuration: the placement plus the loop-level
    and memory optimizations MESA decided to apply (§4.2-4.3).

    This is the abstract form of the configuration bitstream the
    configuration manager writes to the fabric; {!bitstream_bits} sizes it
    for the config-time cost model of Table 2. *)

type t = {
  placement : Placement.t;
  forwarding : (int * int) list;
      (** [(load, store)]: store-load forwarding pairs — the load takes its
          value directly from the store's broadcast instead of the cache *)
  vector_groups : int list list;
      (** groups of loads off the same base register coalesced into one wide
          access; the group leader pays the AMAT, members ride along *)
  prefetched : int list;
      (** loads whose address depends only on induction registers, issued an
          iteration ahead so they complete at L1-hit cost *)
  tiling : int;       (** SDFG instances executing in parallel (Figure 6) *)
  pipelined : bool;   (** overlap successive iterations at the loop's II *)
}

val plain : Placement.t -> t
(** A configuration with no optimizations (tiling 1, no pipelining). *)

val with_opts :
  ?forwarding:(int * int) list ->
  ?vector_groups:int list list ->
  ?prefetched:int list ->
  ?tiling:int ->
  ?pipelined:bool ->
  Placement.t ->
  t

val bitstream_bits : t -> Dfg.t -> int
(** Size of the configuration stream: per placed node an opcode+operand
    descriptor and routing selects, per LS entry its ordering tag, times the
    tiling factor. *)

val config_cycles : t -> Dfg.t -> int
(** Cycles MESA's configuration block needs to write the bitstream (one
    32-bit config word per cycle plus handshake overhead) — the measured
    quantity in Table 2. *)
