(** A spatial placement of a DFG: the physical-side content of the SDFG
    (§3.2-3.3).

    Every node is assigned a location — compute and branch nodes to PEs,
    memory nodes to load-store entries. The placement determines every
    pairwise transfer latency via the backend's interconnect model; those
    numbers seed the performance model's edge weights and are what
    Algorithm 1 minimizes. *)

type loc =
  | Pe of Grid.coord
  | Ls of int  (** load-store entry index *)

type t = {
  grid : Grid.t;
  kind : Interconnect.kind;
  assign : loc array;  (** node index -> location *)
}

val make : Grid.t -> Interconnect.kind -> loc array -> t

val loc_of : t -> int -> loc
val coord_of : t -> int -> Grid.coord
(** Physical coordinate of a node's location (LS entries project to the
    array's left edge). *)

val validate : Dfg.t -> t -> (unit, string) result
(** No two nodes on the same PE / LS entry; compute nodes on PEs that
    support their op class; memory nodes on LS entries; every node placed. *)

val transfer : t -> int -> int -> int
(** Base transfer latency between two placed nodes. *)

val transfer_f : t -> int -> int -> float

val route : t -> int -> int -> Interconnect.route

val used_pes : t -> int
val pp : Format.formatter -> t -> unit
(** ASCII map of the grid with node indices. *)
