let escape_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let row_to_csv cells = String.concat "," (List.map escape_cell cells)

let table_to_csv t =
  let lines = row_to_csv (Tables.headers t) :: List.map row_to_csv (Tables.data_rows t) in
  String.concat "\n" lines ^ "\n"

let summary_to_csv summary =
  let lines =
    "metric,value"
    :: List.map (fun (k, v) -> Printf.sprintf "%s,%.6g" (escape_cell k) v) summary
  in
  String.concat "\n" lines ^ "\n"

let outcome_to_csv (o : Experiments.outcome) =
  table_to_csv o.Experiments.table ^ "\n" ^ summary_to_csv o.Experiments.summary

let write_file ~path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)
