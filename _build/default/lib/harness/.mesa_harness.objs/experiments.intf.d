lib/harness/experiments.mli: Kernel Tables
