lib/harness/ablation.ml: Accel_config Controller Energy_model Experiments Fun Grid Hashtbl Kernel List Main_memory Option Printf Runner Stats Tables Workloads
