lib/harness/export.ml: Experiments Fun List Printf String Tables
