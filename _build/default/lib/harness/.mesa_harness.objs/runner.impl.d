lib/harness/runner.ml: Array Controller Cpu_run Dfg Dynaspam Energy_model Grid Hierarchy Isa Kernel Ldfg Main_memory Multicore Ooo_model Option Printf Program Region
