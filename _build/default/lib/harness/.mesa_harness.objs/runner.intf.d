lib/harness/runner.mli: Controller Dfg Dynaspam Grid Kernel
