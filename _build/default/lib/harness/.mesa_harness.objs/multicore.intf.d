lib/harness/multicore.mli: Kernel Main_memory Ooo_model
