lib/harness/export.mli: Experiments Tables
