lib/harness/multicore.ml: Array Cpu_run Fun Hierarchy Kernel List Ooo_model
