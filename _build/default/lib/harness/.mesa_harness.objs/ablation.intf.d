lib/harness/ablation.mli: Experiments Grid Kernel Runner
