type result = {
  cycles : int;
  threads : int;
  summaries : Ooo_model.summary list;
}

let default_fork_join_cycles = 6000

let run ?(cores = 16) ?(fork_join_cycles = default_fork_join_cycles)
    ?(cpu = Ooo_model.default_config) (k : Kernel.t) mem =
  if (not k.Kernel.parallel) || cores <= 1 then begin
    let hier = Hierarchy.create Hierarchy.default_config in
    let machine = Kernel.prepare_slice k mem ~lo:0 ~hi:k.Kernel.n in
    let r = Cpu_run.run ~config:cpu ~hierarchy:hier k.Kernel.program machine in
    { cycles = r.Cpu_run.summary.Ooo_model.cycles; threads = 1; summaries = [ r.Cpu_run.summary ] }
  end
  else begin
    let hiers = Hierarchy.create_shared Hierarchy.default_config ~cores in
    let n = k.Kernel.n in
    let slice tid =
      let lo = n * tid / cores and hi = n * (tid + 1) / cores in
      if hi <= lo then None
      else begin
        let machine = Kernel.prepare_slice k mem ~lo ~hi in
        let r = Cpu_run.run ~config:cpu ~hierarchy:hiers.(tid) k.Kernel.program machine in
        Some r.Cpu_run.summary
      end
    in
    let summaries = List.filter_map slice (List.init cores Fun.id) in
    let slowest =
      List.fold_left (fun acc s -> max acc s.Ooo_model.cycles) 0 summaries
    in
    { cycles = slowest + fork_join_cycles; threads = List.length summaries; summaries }
  end
