(** Machine-readable export of experiment outcomes, for plotting outside
    the repo. *)

val table_to_csv : Tables.t -> string
(** RFC-4180-style CSV: header row then data rows; cells containing commas,
    quotes or newlines are quoted. *)

val summary_to_csv : (string * float) list -> string
(** Two-column [metric,value] CSV of an outcome's headline numbers. *)

val outcome_to_csv : Experiments.outcome -> string
(** The table followed by a blank line and the summary block. *)

val write_file : path:string -> string -> unit
(** Write a string to a file (used by `mesa_cli bench --csv DIR`). *)
