type schedule = {
  ii : int;
  makespan : int;
  slots : (int * int) array;
}

(* OpenCGRA-style FU latencies: pipelined single-cycle integer units, short
   FP pipes, scratchpad-latency memory. *)
let op_latency (cls : Isa.op_class) =
  match cls with
  | Isa.C_alu | Isa.C_branch | Isa.C_jump | Isa.C_system -> 1
  | Isa.C_mul -> 2
  | Isa.C_div -> 12
  | Isa.C_fadd -> 2
  | Isa.C_fmul -> 2
  | Isa.C_fdiv -> 12
  | Isa.C_load | Isa.C_store -> 5

let node_latency (dfg : Dfg.t) j = op_latency (Isa.op_class dfg.Dfg.nodes.(j).Dfg.instr)

let resource_mii dfg ~pes = max 1 (Stats.div_ceil (Dfg.node_count dfg) pes)

let recurrence_mii (dfg : Dfg.t) =
  let compl_ =
    Dfg.completion_times dfg
      ~op_latency:(fun j -> float_of_int (node_latency dfg j))
      ~transfer:(fun _ _ -> 1.0)
  in
  let rec_len =
    List.fold_left
      (fun acc (_, _, src) ->
        match src with
        | Dfg.Node p -> Float.max acc compl_.(p)
        | Dfg.Reg_in _ -> acc)
      1.0 (Dfg.loop_carried dfg)
  in
  int_of_float (Float.ceil rec_len)

(* Try to build a modulo schedule at a fixed II: place nodes in program
   (topological) order, each on the (PE, cycle) pair that starts earliest
   among slots free modulo II, with Manhattan-distance routing delays. *)
let try_ii (dfg : Dfg.t) (grid : Grid.t) ii =
  let n = Dfg.node_count dfg in
  let pes = Grid.pe_count grid in
  let cols = grid.Grid.cols in
  let coord p = (p / cols, p mod cols) in
  let dist a b =
    let ar, ac = coord a and br, bc = coord b in
    abs (ar - br) + abs (ac - bc)
  in
  let used : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let slots = Array.make n (0, 0) in
  let finish = Array.make n 0 in
  let place j =
    let nd = dfg.Dfg.nodes.(j) in
    let preds =
      let ds = ref [] in
      Array.iter (function Dfg.Node i -> ds := i :: !ds | Dfg.Reg_in _ -> ()) nd.Dfg.srcs;
      (match nd.Dfg.hidden with Some (Dfg.Node i) -> ds := i :: !ds | _ -> ());
      List.iter (fun (b, _) -> ds := b :: !ds) nd.Dfg.guards;
      Option.iter (fun s -> ds := s :: !ds) nd.Dfg.prev_store;
      !ds
    in
    let best = ref None in
    for pe = 0 to pes - 1 do
      let ready =
        List.fold_left
          (fun acc i ->
            let ppe, _ = slots.(i) in
            max acc (finish.(i) + max 1 (dist ppe pe)))
          0 preds
      in
      (* First free modulo slot at or after [ready], within one full II
         wrap (after that the PE is provably full at every phase). *)
      let rec find t =
        if t >= ready + ii then None
        else if Hashtbl.mem used (pe, t mod ii) then find (t + 1)
        else Some t
      in
      match find ready with
      | None -> ()
      | Some t -> (
        match !best with
        | Some (_, bt) when bt <= t -> ()
        | Some _ | None -> best := Some (pe, t))
    done;
    match !best with
    | None -> None
    | Some (pe, t) ->
      Hashtbl.replace used (pe, t mod ii) ();
      slots.(j) <- (pe, t);
      finish.(j) <- t + node_latency dfg j;
      Some ()
  in
  let rec go j =
    if j = n then
      let makespan = Array.fold_left max 0 finish in
      Some { ii; makespan; slots = Array.copy slots }
    else match place j with Some () -> go (j + 1) | None -> None
  in
  go 0

let schedule ?(max_ii = 128) dfg ~grid =
  let mii = max (resource_mii dfg ~pes:(Grid.pe_count grid)) (recurrence_mii dfg) in
  let rec search ii =
    if ii > max_ii then
      Error (Printf.sprintf "no modulo schedule up to II=%d" max_ii)
    else
      match try_ii dfg grid ii with
      | Some s -> Ok s
      | None -> search (ii + 1)
  in
  search (max 1 mii)

let iteration_cycles s = float_of_int s.makespan

let ipc dfg s =
  float_of_int (Dfg.node_count dfg) /. float_of_int (max 1 s.makespan)
