type result = { qualified : bool; ii : float; cycles : int }

type config = {
  window : int;
  alu_throughput : int;
  fp_throughput : int;
  mem_ports : int;
  div_occupancy : int;
}

let default_config =
  { window = 64; alu_throughput = 4; fp_throughput = 2; mem_ports = 2; div_occupancy = 16 }

let run ?(config = default_config) (dfg : Dfg.t) ~iterations =
  let n = Dfg.node_count dfg in
  if n > config.window then { qualified = false; ii = 0.0; cycles = 0 }
  else begin
    (* Class pressure per iteration on the core's execution resources. *)
    let ints = ref 0 and fps = ref 0 and mems = ref 0 and iter_units = ref 0 in
    Array.iter
      (fun nd ->
        match Isa.op_class nd.Dfg.instr with
        | Isa.C_alu | Isa.C_mul | Isa.C_branch | Isa.C_jump -> incr ints
        | Isa.C_div ->
          incr ints;
          iter_units := !iter_units + config.div_occupancy
        | Isa.C_fadd | Isa.C_fmul -> incr fps
        | Isa.C_fdiv ->
          incr fps;
          iter_units := !iter_units + config.div_occupancy
        | Isa.C_load | Isa.C_store -> incr mems
        | Isa.C_system -> ())
      dfg.Dfg.nodes;
    let ii_res =
      Float.max
        (float_of_int !ints /. float_of_int config.alu_throughput)
        (Float.max
           (float_of_int !fps /. float_of_int config.fp_throughput)
           (float_of_int !mems /. float_of_int config.mem_ports))
    in
    (* Iterative units serialize on the shared divider pool. *)
    let ii_div = float_of_int !iter_units /. float_of_int config.fp_throughput in
    (* Loop-carried recurrences with full bypass (zero-cycle forwarding). *)
    let compl_ =
      Dfg.completion_times dfg
        ~op_latency:(fun j -> float_of_int (Latency.cpu (Isa.op_class dfg.Dfg.nodes.(j).Dfg.instr)))
        ~transfer:(fun _ _ -> 0.0)
    in
    let ii_rec =
      List.fold_left
        (fun acc (_, _, src) ->
          match src with Dfg.Node p -> Float.max acc compl_.(p) | Dfg.Reg_in _ -> acc)
        1.0 (Dfg.loop_carried dfg)
    in
    let ii = Float.max 1.0 (Float.max ii_res (Float.max ii_div ii_rec)) in
    let fill = Array.fold_left Float.max 0.0 compl_ in
    let cycles = int_of_float (Float.ceil (fill +. (ii *. float_of_int (max 0 (iterations - 1))))) in
    { qualified = true; ii; cycles }
  end
