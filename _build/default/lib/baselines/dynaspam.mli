(** A DynaSpAM-style baseline (Liu et al., ISCA '15), used in Figure 14.

    DynaSpAM maps hot traces onto a small 1-D feedforward CGRA embedded in
    the core pipeline, driven by the out-of-order scheduler's schedule. Its
    qualitative profile, which this model reproduces:

    - trace window limited to the scheduler's reach (64 ops) — bigger loops
      do not qualify and run on the plain core;
    - gains come from full operand bypass and predication (no fetch/decode,
      no mispredictions), not from loop-level parallelism: throughput is
      bounded by the core's own functional-unit and memory-port mix;
    - configuration is near-instant (ns range) but the fabric cannot tile
      or target a 2-D array. *)

type result = {
  qualified : bool;
  ii : float;           (** steady-state cycles per iteration *)
  cycles : int;         (** loop execution cycles *)
}

type config = {
  window : int;        (** trace capacity (64) *)
  alu_throughput : int;
  fp_throughput : int;
  mem_ports : int;
  div_occupancy : int; (** cycles an iterative unit blocks *)
}

val default_config : config

val run : ?config:config -> Dfg.t -> iterations:int -> result
(** Analytic execution model of the loop on the DynaSpAM fabric. When the
    loop exceeds the window, [qualified] is false and the result carries
    the iteration count untouched ([cycles] = 0) — the caller falls back to
    the CPU baseline. *)
