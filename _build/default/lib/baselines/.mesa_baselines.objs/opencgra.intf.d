lib/baselines/opencgra.mli: Dfg Grid
