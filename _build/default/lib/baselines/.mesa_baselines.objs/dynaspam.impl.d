lib/baselines/dynaspam.ml: Array Dfg Float Isa Latency List
