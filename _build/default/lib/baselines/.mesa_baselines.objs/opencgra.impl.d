lib/baselines/opencgra.ml: Array Dfg Float Grid Hashtbl Isa List Option Printf Stats
