lib/baselines/dynaspam.mli: Dfg
