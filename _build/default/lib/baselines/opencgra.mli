(** An OpenCGRA-style modulo-scheduling mapper, the compiler baseline of
    Figure 12.

    Unlike MESA, a CGRA compiler time-multiplexes PEs: it searches for the
    smallest initiation interval II (from the resource/recurrence lower
    bound upward) at which every operation can be assigned an (PE, cycle
    mod II) slot with single-cycle-per-hop routing to its consumers. The
    steady-state throughput is then one iteration per II cycles — typically
    better than MESA's unpipelined spatial mapping (compilers are smarter),
    but without MESA's loop-level tiling, which is what Figure 12's second
    comparison shows. *)

type schedule = {
  ii : int;                       (** initiation interval achieved *)
  makespan : int;                 (** schedule length of one iteration *)
  slots : (int * int) array;      (** node -> (pe index, start cycle) *)
}

val resource_mii : Dfg.t -> pes:int -> int
(** ceil(ops / PEs): the resource lower bound on II. *)

val recurrence_mii : Dfg.t -> int
(** Longest loop-carried dependence chain under unit transfers. *)

val schedule : ?max_ii:int -> Dfg.t -> grid:Grid.t -> (schedule, string) result
(** Iterative-II modulo scheduling on [grid] (every PE general-purpose, as
    OpenCGRA configures FUs per need). Fails if no II up to [max_ii]
    (default 128) routes. *)

val iteration_cycles : schedule -> float
(** Cycles to execute one iteration (the schedule makespan) — the paper's
    Figure 12 compares raw scheduling quality with MESA's optimizations
    disabled, i.e. without iteration overlap on either side. *)

val ipc : Dfg.t -> schedule -> float
(** Per-iteration IPC: instructions over the one-iteration makespan. *)
