type state = Fetch | Generate | Filter | Reduce of int | Writeback

let state_name = function
  | Fetch -> "fetch"
  | Generate -> "generate"
  | Filter -> "filter"
  | Reduce k -> Printf.sprintf "reduce[%d]" k
  | Writeback -> "writeback"

type step = { cycle : int; node : int; state : state }

let reduction_depth (cfg : Mapper.config) =
  let window = cfg.Mapper.window_rows * cfg.Mapper.window_cols in
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  log2 window 0

let stages cfg =
  [ Fetch; Generate; Filter ]
  @ List.init (reduction_depth cfg) (fun k -> Reduce k)
  @ [ Writeback ]

let simulate cfg (dfg : Dfg.t) =
  let stages = stages cfg in
  let steps = ref [] in
  let cycle = ref 0 in
  for node = 0 to Dfg.node_count dfg - 1 do
    List.iter
      (fun state ->
        steps := { cycle = !cycle; node; state } :: !steps;
        incr cycle)
      stages
  done;
  List.rev !steps

let cycles cfg dfg =
  match List.rev (simulate cfg dfg) with [] -> 0 | last :: _ -> last.cycle + 1

let glyph = function
  | Fetch -> 'F'
  | Generate -> 'G'
  | Filter -> 'L'
  | Reduce _ -> 'R'
  | Writeback -> 'W'

let timing_diagram ?(max_nodes = 8) cfg dfg =
  let steps = simulate cfg dfg in
  let shown = min max_nodes (Dfg.node_count dfg) in
  let per_node = List.length (stages cfg) in
  let width = shown * per_node in
  let rows = Array.init shown (fun _ -> Bytes.make width '.') in
  List.iter
    (fun s -> if s.node < shown then Bytes.set rows.(s.node) s.cycle (glyph s.state))
    steps;
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "imap FSM, %d-entry candidate window: F=fetch G=candidates L=filter R=reduce W=writeback\n"
       (cfg.Mapper.window_rows * cfg.Mapper.window_cols));
  Array.iteri
    (fun i row ->
      Buffer.add_string buf (Printf.sprintf "i%-3d %s\n" i (Bytes.to_string row)))
    rows;
  if Dfg.node_count dfg > shown then
    Buffer.add_string buf
      (Printf.sprintf "... %d more instructions, %d cycles total\n"
         (Dfg.node_count dfg - shown) (cycles cfg dfg));
  Buffer.contents buf
