(** A code region accepted for acceleration: one innermost loop, from its
    entry address to its backward branch (inclusive). *)

type t = {
  entry : int;                (** address of the first instruction *)
  back_branch_addr : int;     (** address of the loop's backward branch *)
  instrs : Isa.t array;       (** body in program order *)
  pragma : Program.pragma option;
  observed_iterations : int;  (** iterations watched before confirmation *)
}

val size : t -> int
val exit_addr : t -> int
(** Fall-through address when the loop completes. *)

val addr_of_index : t -> int -> int
val contains : t -> int -> bool

(** Instruction-mix statistics backing criterion C3 (§4.1). *)
type mix = {
  compute : int;
  memory : int;
  control : int;
  fp : int;
  unsupported : int;
}

val mix : t -> mix
val pp : Format.formatter -> t -> unit
