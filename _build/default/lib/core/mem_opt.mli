(** Memory-access optimizations over the LDFG (§4.2).

    All three analyses key off the rename table's structural facts, exactly
    as the paper describes: the builder renames base-address registers, so
    two memory nodes with the *same renamed base source* provably share a
    base value, making offset comparison sufficient.

    - Store-load forwarding: a load preceded by a store with the same base
      source and offset (and no intervening store that could alias) takes
      its value from the store's broadcast instead of the cache.
    - Vectorization: loads off one base source at different offsets coalesce
      into one wide access — the group leader pays the AMAT, members follow
      in one cycle.
    - Prefetching: a load whose address derives only from induction
      registers and loop-invariant live-ins is issued an iteration ahead,
      hiding everything beyond the L1 hit. *)

type t = {
  forwarding : (int * int) list;   (** (load node, store node) pairs *)
  vector_groups : int list list;   (** leader first, ascending offsets *)
  prefetched : int list;
  induction_regs : Reg.t list;     (** integer registers following r = r + c *)
}

val analyze : Dfg.t -> t

val none : t
(** The empty analysis (used when optimizations are disabled). *)
