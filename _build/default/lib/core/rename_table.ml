type t = {
  x : Dfg.src array;
  f : Dfg.src array;
  x_read_unwritten : bool array;
  f_read_unwritten : bool array;
}

let fresh_file file = Array.init Reg.count (fun r -> Dfg.Reg_in (r, file))

let create () =
  {
    x = fresh_file Dfg.X;
    f = fresh_file Dfg.F;
    x_read_unwritten = Array.make Reg.count false;
    f_read_unwritten = Array.make Reg.count false;
  }

let lookup t file r =
  match file with
  | Dfg.X ->
    (match t.x.(r) with
    | Dfg.Reg_in _ when r <> 0 -> t.x_read_unwritten.(r) <- true
    | Dfg.Reg_in _ | Dfg.Node _ -> ());
    t.x.(r)
  | Dfg.F ->
    (match t.f.(r) with
    | Dfg.Reg_in _ -> t.f_read_unwritten.(r) <- true
    | Dfg.Node _ -> ());
    t.f.(r)

let write t file r node =
  match file with
  | Dfg.X -> if r <> 0 then t.x.(r) <- Dfg.Node node
  | Dfg.F -> t.f.(r) <- Dfg.Node node

let live_ins t file =
  let flags = match file with Dfg.X -> t.x_read_unwritten | Dfg.F -> t.f_read_unwritten in
  List.filter (fun r -> flags.(r)) (List.init Reg.count Fun.id)

let live_outs t file =
  let map = match file with Dfg.X -> t.x | Dfg.F -> t.f in
  List.filter_map
    (fun r -> match map.(r) with Dfg.Node _ as s -> Some (r, s) | Dfg.Reg_in _ -> None)
    (List.init Reg.count Fun.id)

let reset t =
  Array.iteri (fun r _ -> t.x.(r) <- Dfg.Reg_in (r, Dfg.X)) t.x;
  Array.iteri (fun r _ -> t.f.(r) <- Dfg.Reg_in (r, Dfg.F)) t.f;
  Array.fill t.x_read_unwritten 0 Reg.count false;
  Array.fill t.f_read_unwritten 0 Reg.count false
