(** MESA's trace cache (§4.1): a small buffer near the I-cache holding the
    raw instruction words of the code region targeted for acceleration, so
    the LDFG builder can read the body without stealing fetch bandwidth.

    Capacity equals the maximum number of instructions mappable on the
    accelerator — criterion C1 checks loop size against exactly this
    number. *)

type t

val create : capacity:int -> t
val capacity : t -> int

val set_region : t -> entry:int -> last:int -> unit
(** Start capturing the address window [\[entry, last\]] (inclusive),
    dropping previous contents. Raises [Invalid_argument] if the window
    exceeds capacity. *)

val observe : t -> addr:int -> word:int32 -> unit
(** Called for every fetched instruction; words inside the active window
    are recorded (idempotently). *)

val complete : t -> bool
(** Whether every slot of the active window has been captured. *)

val missing : t -> int list
(** Addresses still missing (the case where MESA would stall fetch to read
    the I-cache directly). *)

val fill_from : t -> (int -> int32 option) -> unit
(** Fill missing slots through a direct I-cache read function. *)

val words : t -> int32 array
(** Captured words in address order. Raises [Failure] if incomplete. *)

val fills : t -> int
(** Total words written, across all regions (for stats). *)
