let improvement_threshold = 0.05

let absorb model (res : Engine.result) =
  Array.iteri
    (fun i lat -> if lat > 0.0 then Perf_model.observe_op model i lat)
    res.Engine.node_latency;
  List.iter (fun ((i, j), lat) -> Perf_model.observe_transfer model i j lat) res.Engine.edge_samples

type outcome =
  | Keep of float
  | Adopt of { config : Accel_config.t; latency : float; previous : float }

let restore_estimates model placement =
  List.iter
    (fun (i, j, _) ->
      Perf_model.set_transfer_estimate model i j (Placement.transfer_f placement i j))
    (Dfg.edges (Perf_model.graph model))

let step ~grid ~kind ~mapper ~model ~(current : Accel_config.t) =
  (* Compare both placements under the same analytic transfer model (with
     measured operation latencies): measured transfer samples embed the old
     placement's contention, which would bias the comparison toward any
     remap. *)
  restore_estimates model current.Accel_config.placement;
  let current_latency = Perf_model.iteration_latency model in
  match Mapper.map ~config:mapper ~grid ~kind model with
  | Error _ ->
    restore_estimates model current.Accel_config.placement;
    Keep current_latency
  | Ok placement ->
    let candidate_latency = Perf_model.iteration_latency model in
    if candidate_latency < current_latency *. (1.0 -. improvement_threshold) then
      let config = { current with Accel_config.placement } in
      Adopt { config; latency = candidate_latency; previous = current_latency }
    else begin
      restore_estimates model current.Accel_config.placement;
      Keep current_latency
    end
