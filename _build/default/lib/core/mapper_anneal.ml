type stats = {
  proposals : int;
  accepted : int;
  improved : int;
  initial_latency : float;
  final_latency : float;
}

(* Iteration latency of the graph under [assign], using the model's node
   weights and the interconnect's analytic transfers. *)
let latency_of (dfg : Dfg.t) model grid kind assign =
  let coord i =
    match assign.(i) with
    | Placement.Pe c -> c
    | Placement.Ls e -> Interconnect.ls_coord grid e
  in
  Dfg.iteration_latency dfg
    ~op_latency:(Perf_model.op_latency model)
    ~transfer:(fun i j ->
      float_of_int (Interconnect.latency grid kind (coord i) (coord j)))

let refine ?(seed = 0x5A5A) ?(proposals = 2000) ?(initial_temperature = 8.0)
    ?(cooling = 0.995) ~(grid : Grid.t) ~kind ~(model : Perf_model.t)
    (placement : Placement.t) =
  let dfg = Perf_model.graph model in
  let n = Dfg.node_count dfg in
  let rng = Prng.create seed in
  let assign = Array.copy placement.Placement.assign in
  (* Occupancy maps for proposing moves into free space. *)
  let pe_used = Hashtbl.create 64 in
  let ls_used = Hashtbl.create 16 in
  Array.iteri
    (fun i loc ->
      match loc with
      | Placement.Pe c -> Hashtbl.replace pe_used (c.Grid.row, c.Grid.col) i
      | Placement.Ls e -> Hashtbl.replace ls_used e i)
    assign;
  let compatible i loc =
    let cls = Isa.op_class dfg.Dfg.nodes.(i).Dfg.instr in
    match loc with
    | Placement.Pe c ->
      (not (Isa.is_memory dfg.Dfg.nodes.(i).Dfg.instr)) && Grid.supports grid c cls
    | Placement.Ls e ->
      Isa.is_memory dfg.Dfg.nodes.(i).Dfg.instr && e >= 0 && e < grid.Grid.ls_entries
  in
  (* A proposal is a list of (node, new location) updates; [None] when the
     drawn move is not applicable. *)
  let propose () =
    let i = Prng.int rng n in
    if Prng.bool rng then begin
      (* Relocate to a random free compatible location. *)
      if Isa.is_memory dfg.Dfg.nodes.(i).Dfg.instr then begin
        let e = Prng.int rng grid.Grid.ls_entries in
        if Hashtbl.mem ls_used e then None else Some [ (i, Placement.Ls e) ]
      end
      else begin
        let c = Grid.coord (Prng.int rng grid.Grid.rows) (Prng.int rng grid.Grid.cols) in
        if Hashtbl.mem pe_used (c.Grid.row, c.Grid.col) || not (compatible i (Placement.Pe c))
        then None
        else Some [ (i, Placement.Pe c) ]
      end
    end
    else begin
      (* Swap with another node if both remain compatible. *)
      let j = Prng.int rng n in
      if i = j then None
      else
        let li = assign.(i) and lj = assign.(j) in
        if compatible i lj && compatible j li then Some [ (i, lj); (j, li) ] else None
    end
  in
  let apply updates = List.iter (fun (i, loc) -> assign.(i) <- loc) updates in
  let book loc i =
    match loc with
    | Placement.Pe c -> Hashtbl.replace pe_used (c.Grid.row, c.Grid.col) i
    | Placement.Ls e -> Hashtbl.replace ls_used e i
  in
  let unbook loc =
    match loc with
    | Placement.Pe c -> Hashtbl.remove pe_used (c.Grid.row, c.Grid.col)
    | Placement.Ls e -> Hashtbl.remove ls_used e
  in
  let commit_books updates =
    List.iter (fun (i, _) -> unbook assign.(i)) updates;
    apply updates;
    List.iter (fun (i, loc) -> book loc i) updates
  in
  let current = ref (latency_of dfg model grid kind assign) in
  let initial_latency = !current in
  let best = ref initial_latency in
  let best_assign = ref (Array.copy assign) in
  let temperature = ref initial_temperature in
  let accepted = ref 0 and improved = ref 0 in
  for _ = 1 to proposals do
    (match propose () with
    | None -> ()
    | Some updates ->
      let saved = List.map (fun (i, _) -> (i, assign.(i))) updates in
      (* Trial: apply, evaluate, then decide. *)
      apply updates;
      let trial = latency_of dfg model grid kind assign in
      let delta = trial -. !current in
      let accept =
        delta < 0.0
        || (!temperature > 1e-6 && Prng.float rng 1.0 < exp (-.delta /. !temperature))
      in
      if accept then begin
        incr accepted;
        if delta < 0.0 then incr improved;
        (* Fix the occupancy books for the move we kept. *)
        apply saved;
        commit_books updates;
        current := trial;
        if trial < !best then begin
          best := trial;
          best_assign := Array.copy assign
        end
      end
      else apply saved);
    temperature := !temperature *. cooling
  done;
  let final = Placement.make grid kind !best_assign in
  (* Leave the performance model describing the returned placement. *)
  List.iter
    (fun (i, j, _) ->
      Perf_model.set_transfer_estimate model i j (Placement.transfer_f final i j))
    (Dfg.edges dfg);
  ( final,
    {
      proposals;
      accepted = !accepted;
      improved = !improved;
      initial_latency;
      final_latency = !best;
    } )
