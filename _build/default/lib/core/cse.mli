(** Common-subexpression elimination over the LDFG — an extension
    optimization in the spirit the paper's conclusion invites ("more
    advanced mapping and optimization strategies with the DFG model ... as
    inputs").

    Hardware rationale: compiled loop bodies frequently recompute the same
    address arithmetic (base + offset chains); every duplicate costs a PE.
    Because the rename table already resolves true value sources, two nodes
    provably compute the same value when they apply the same operation with
    the same immediates to the same sources — no dataflow analysis beyond
    what MESA's front end already did.

    Only pure, unguarded compute nodes are eligible: memory operations,
    branches, anything under a predication guard (its value depends on the
    hidden old-value path) and [auipc] (PC-relative) are left alone. The
    result is a smaller graph with identical architectural behaviour, which
    the test suite checks by running both through the engine. *)

val apply : Dfg.t -> Dfg.t * int
(** [apply dfg] returns the reduced graph and the number of nodes
    eliminated (0 leaves the graph structurally identical). *)

val eligible : Dfg.t -> int -> bool
(** Whether a node may participate in CSE (exposed for tests). *)
