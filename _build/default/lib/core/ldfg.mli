(** Task T1: building the Logical DFG from the code region (§3.2).

    The builder walks the body in program order, renaming every source
    register through the {!Rename_table}. Forward branches open predication
    scopes: instructions inside a scope are guarded by the branch and carry a
    hidden dependency on the previous producer of their destination register
    (whose value they must forward when disabled). Stores are chained with
    memory-order links so the fabric commits them in program order. *)

val build : Region.t -> (Dfg.t, string) result
(** Translate an accepted region into its LDFG. Fails only on regions that
    should have been rejected by C2 (jumps/system instructions inside the
    body) — the controller treats that as a C2 violation discovered late. *)

val build_exn : Region.t -> Dfg.t
