(** Cycle-level model of the instruction-mapping state machine (Figure 8).

    The imap FSM walks the LDFG once; for each instruction it spends one
    cycle fetching the entry, one generating the candidate matrix at the
    anchor, one filtering it through F_free and F_op, a reduction-tree
    traversal to find the latency-minimizing position (depth = log2 of the
    candidate-matrix size — the one stage whose duration depends on the
    window dimensions, as the paper notes), and one cycle writing the SDFG
    entry. {!cycles} is the closed form {!Mapper.map_cycles} charges; the
    test suite keeps the two in lock step. *)

type state =
  | Fetch       (** read the next LDFG entry (Algorithm 1 line 1) *)
  | Generate    (** position the candidate matrix (line 4) *)
  | Filter      (** mask by F_free and F_op (line 5) *)
  | Reduce of int  (** reduction level, finding argmin latency (lines 8-18) *)
  | Writeback   (** commit the position to the SDFG (line 19) *)

val state_name : state -> string

type step = {
  cycle : int;
  node : int;
  state : state;
}

val reduction_depth : Mapper.config -> int
(** ceil(log2 (window_rows * window_cols)). *)

val simulate : Mapper.config -> Dfg.t -> step list
(** The full cycle-by-cycle trace of mapping every instruction. *)

val cycles : Mapper.config -> Dfg.t -> int
(** Total mapping cycles — equal to [Mapper.map_cycles]. *)

val timing_diagram : ?max_nodes:int -> Mapper.config -> Dfg.t -> string
(** A Figure 8-style text rendering: one row per instruction, one column
    per cycle, letters marking the active stage (F/G/L/R/W). *)
