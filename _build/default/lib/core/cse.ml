(* The value key of a pure node: its operation (destination register
   normalized away — the DFG tracks values, not names) plus its resolved
   sources. *)

let normalize_dest (instr : Isa.t) =
  match instr with
  | Isa.Rtype (op, _, rs1, rs2) -> Isa.Rtype (op, 0, rs1, rs2)
  | Isa.Itype (op, _, rs1, imm) -> Isa.Itype (op, 0, rs1, imm)
  | Isa.Lui (_, imm) -> Isa.Lui (0, imm)
  | Isa.Ftype (op, _, fs1, fs2) -> Isa.Ftype (op, 0, fs1, fs2)
  | Isa.Fcmp (op, _, fs1, fs2) -> Isa.Fcmp (op, 0, fs1, fs2)
  | Isa.Fcvt_w_s (_, fs1) -> Isa.Fcvt_w_s (0, fs1)
  | Isa.Fcvt_s_w (_, rs1) -> Isa.Fcvt_s_w (0, rs1)
  | Isa.Fmv_x_w (_, fs1) -> Isa.Fmv_x_w (0, fs1)
  | Isa.Fmv_w_x (_, rs1) -> Isa.Fmv_w_x (0, rs1)
  | other -> other

(* Register *names* inside the instruction are stale once sources are
   resolved; only opcode + immediate matter. Scrub source registers too so
   e.g. add t0,t1,t2 and add t3,s2,s3 with identical resolved sources
   unify. *)
let scrub (instr : Isa.t) =
  match normalize_dest instr with
  | Isa.Rtype (op, rd, _, _) -> Isa.Rtype (op, rd, 0, 0)
  | Isa.Itype (op, rd, _, imm) -> Isa.Itype (op, rd, 0, imm)
  | Isa.Ftype (op, fd, _, _) -> Isa.Ftype (op, fd, 0, 0)
  | Isa.Fcmp (op, rd, _, _) -> Isa.Fcmp (op, rd, 0, 0)
  | Isa.Fcvt_w_s (rd, _) -> Isa.Fcvt_w_s (rd, 0)
  | Isa.Fcvt_s_w (fd, _) -> Isa.Fcvt_s_w (fd, 0)
  | Isa.Fmv_x_w (rd, _) -> Isa.Fmv_x_w (rd, 0)
  | Isa.Fmv_w_x (fd, _) -> Isa.Fmv_w_x (fd, 0)
  | other -> other

let eligible (dfg : Dfg.t) i =
  let nd = dfg.Dfg.nodes.(i) in
  nd.Dfg.guards = []
  && i <> dfg.Dfg.back_branch
  &&
  match Isa.op_class nd.Dfg.instr with
  | Isa.C_alu | Isa.C_mul | Isa.C_div | Isa.C_fadd | Isa.C_fmul | Isa.C_fdiv -> (
    match nd.Dfg.instr with Isa.Auipc _ -> false | _ -> true)
  | Isa.C_load | Isa.C_store | Isa.C_branch | Isa.C_jump | Isa.C_system -> false

let apply (dfg : Dfg.t) =
  let n = Dfg.node_count dfg in
  (* representative.(j) = value-equivalent earlier node (possibly j). *)
  let representative = Array.init n Fun.id in
  let seen : (Isa.t * Dfg.src array, int) Hashtbl.t = Hashtbl.create 32 in
  let resolve s =
    match s with Dfg.Node i -> Dfg.Node representative.(i) | Dfg.Reg_in _ -> s
  in
  for j = 0 to n - 1 do
    if eligible dfg j then begin
      let nd = dfg.Dfg.nodes.(j) in
      let key = (scrub nd.Dfg.instr, Array.map resolve nd.Dfg.srcs) in
      match Hashtbl.find_opt seen key with
      | Some i -> representative.(j) <- i
      | None -> Hashtbl.add seen key j
    end
  done;
  let eliminated =
    Array.to_list representative
    |> List.mapi (fun j r -> j <> r)
    |> List.filter Fun.id |> List.length
  in
  if eliminated = 0 then (dfg, 0)
  else begin
    (* Compact: new index for every surviving node. *)
    let new_index = Array.make n (-1) in
    let kept = ref 0 in
    for j = 0 to n - 1 do
      if representative.(j) = j then begin
        new_index.(j) <- !kept;
        incr kept
      end
    done;
    let remap_node j = new_index.(representative.(j)) in
    let remap_src = function
      | Dfg.Node i -> Dfg.Node (remap_node i)
      | Dfg.Reg_in _ as s -> s
    in
    let nodes =
      Array.of_list
        (List.filter_map
           (fun j ->
             if representative.(j) <> j then None
             else
               let nd = dfg.Dfg.nodes.(j) in
               Some
                 {
                   nd with
                   Dfg.srcs = Array.map remap_src nd.Dfg.srcs;
                   hidden = Option.map remap_src nd.Dfg.hidden;
                   guards = List.map (fun (b, d) -> (remap_node b, d)) nd.Dfg.guards;
                   prev_store = Option.map remap_node nd.Dfg.prev_store;
                 })
           (List.init n Fun.id))
    in
    let reduced =
      {
        dfg with
        Dfg.nodes;
        live_out_x = List.map (fun (r, s) -> (r, remap_src s)) dfg.Dfg.live_out_x;
        live_out_f = List.map (fun (r, s) -> (r, remap_src s)) dfg.Dfg.live_out_f;
        back_branch = remap_node dfg.Dfg.back_branch;
      }
    in
    (reduced, eliminated)
  end
