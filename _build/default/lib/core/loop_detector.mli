(** Loop-stream detection and the C1-C3 acceptance criteria (§4.1).

    The detector watches the retired-instruction stream for backward taken
    branches. A stable innermost loop — the same backward branch firing for
    [confirm_iterations] consecutive iterations — becomes a candidate and is
    then vetted:

    - C1 (valid loop): body fits the trace cache / accelerator capacity;
    - C2 (control check): no system instructions, no jumps, no inner loops,
      every forward branch targets inside the region, the region ends in the
      conditional backward branch to its own entry;
    - C3 (instruction mix): enough compute relative to loop size, and an
      expected trip count high enough to amortize configuration (estimated
      from the iterations already observed).

    A verdict is delivered exactly once per candidate entry address;
    rejected entries are remembered so the pipeline is not re-annoyed. *)

type config = {
  capacity : int;               (** C1 bound = trace-cache capacity *)
  confirm_iterations : int;     (** stability threshold before vetting *)
  min_compute_fraction : float; (** C3: compute / size lower bound *)
  max_memory_fraction : float;  (** C3: memory / size upper bound *)
}

val default_config : config
(** capacity 512, confirm after 8 iterations, >= 20% compute, <= 60%
    memory. *)

type verdict =
  | Accepted of Region.t
  | Rejected of { entry : int; reason : string }

type t

val create : ?config:config -> Program.t -> t

val feed : t -> Interp.event -> verdict option
(** Present one retired instruction. A verdict is produced only at an
    iteration boundary (the confirming backward branch). *)

val blacklist : t -> int -> unit
(** Externally mark an entry address as non-acceleratable (e.g. the mapper
    failed to route it). *)

val is_blacklisted : t -> int -> bool

val candidates_seen : t -> int
(** Backward branches that ever became candidates (stats). *)
