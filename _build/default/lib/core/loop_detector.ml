type config = {
  capacity : int;
  confirm_iterations : int;
  min_compute_fraction : float;
  max_memory_fraction : float;
}

let default_config =
  {
    capacity = 512;
    confirm_iterations = 8;
    min_compute_fraction = 0.2;
    max_memory_fraction = 0.6;
  }

type verdict = Accepted of Region.t | Rejected of { entry : int; reason : string }

type candidate = { entry : int; last : int; mutable consecutive : int }

type t = {
  cfg : config;
  prog : Program.t;
  mutable candidate : candidate option;
  decided : (int, unit) Hashtbl.t; (* entries already accepted or rejected *)
  mutable candidates_seen : int;
}

let create ?(config = default_config) prog =
  { cfg = config; prog; candidate = None; decided = Hashtbl.create 16; candidates_seen = 0 }

let blacklist t entry = Hashtbl.replace t.decided entry ()
let is_blacklisted t entry = Hashtbl.mem t.decided entry
let candidates_seen t = t.candidates_seen

(* C2: vet every instruction of the body. The final instruction must be the
   confirming backward branch; everything else must be fabric-executable. *)
let control_check (instrs : Isa.t array) ~entry ~last =
  let n = Array.length instrs in
  let addr_of i = entry + (4 * i) in
  let rec go i =
    if i = n - 1 then Ok ()
    else
      let a = addr_of i in
      match instrs.(i) with
      | Isa.Jal _ | Isa.Jalr _ -> Error (Printf.sprintf "jump at 0x%x" a)
      | Isa.Ecall | Isa.Ebreak -> Error (Printf.sprintf "system instruction at 0x%x" a)
      | Isa.Fence -> Error (Printf.sprintf "fence at 0x%x" a)
      | Isa.Branch (_, _, _, off) ->
        let target = a + off in
        if off <= 0 then Error (Printf.sprintf "inner loop at 0x%x" a)
        else if target > last then
          Error (Printf.sprintf "branch at 0x%x escapes the region" a)
        else go (i + 1)
      | Isa.Rtype _ | Isa.Itype _ | Isa.Load _ | Isa.Store _ | Isa.Lui _
      | Isa.Auipc _ | Isa.Ftype _ | Isa.Fcmp _ | Isa.Flw _ | Isa.Fsw _
      | Isa.Fcvt_w_s _ | Isa.Fcvt_s_w _ | Isa.Fmv_x_w _ | Isa.Fmv_w_x _ ->
        go (i + 1)
  in
  match instrs.(n - 1) with
  | Isa.Branch (_, _, _, off) when addr_of (n - 1) + off = entry -> go 0
  | _ -> Error "region does not end in its backward branch"

let vet t ~entry ~last ~observed =
  let n = ((last - entry) / 4) + 1 in
  if n > t.cfg.capacity then
    Error (Printf.sprintf "C1: %d instructions exceed capacity %d" n t.cfg.capacity)
  else begin
    let instrs = Array.init n (fun i -> Program.fetch_exn t.prog (entry + (4 * i))) in
    match control_check instrs ~entry ~last with
    | Error e -> Error ("C2: " ^ e)
    | Ok () ->
      let region =
        {
          Region.entry;
          back_branch_addr = last;
          instrs;
          pragma = Program.pragma_at t.prog entry;
          observed_iterations = observed;
        }
      in
      let mix = Region.mix region in
      let size = float_of_int n in
      let compute_frac = float_of_int mix.Region.compute /. size in
      let memory_frac = float_of_int mix.Region.memory /. size in
      if mix.Region.unsupported > 0 then Error "C2: unsupported instruction"
      else if compute_frac < t.cfg.min_compute_fraction then
        Error (Printf.sprintf "C3: compute fraction %.2f too low" compute_frac)
      else if memory_frac > t.cfg.max_memory_fraction then
        Error (Printf.sprintf "C3: memory fraction %.2f too high" memory_frac)
      else Ok region
  end

let feed t (ev : Interp.event) =
  match (ev.instr, ev.taken) with
  | Isa.Branch (_, _, _, off), Some true when off < 0 -> begin
    let entry = ev.addr + off and last = ev.addr in
    if Hashtbl.mem t.decided entry then None
    else begin
      (match t.candidate with
      | Some c when c.entry = entry && c.last = last -> c.consecutive <- c.consecutive + 1
      | Some _ | None ->
        t.candidates_seen <- t.candidates_seen + 1;
        t.candidate <- Some { entry; last; consecutive = 1 });
      match t.candidate with
      | Some c when c.consecutive >= t.cfg.confirm_iterations ->
        Hashtbl.replace t.decided entry ();
        t.candidate <- None;
        (match vet t ~entry ~last ~observed:c.consecutive with
        | Ok region -> Some (Accepted region)
        | Error reason -> Some (Rejected { entry; reason }))
      | Some _ | None -> None
    end
  end
  | _ -> None
