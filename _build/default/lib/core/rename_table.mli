(** The instruction rename table (§3.2): architectural registers mapped to
    the last instruction that wrote them.

    MESA generalizes out-of-order renaming — instead of physical registers,
    destinations rename to instruction (node) identities, because on a
    spatial fabric every PE produces its own output. A register nobody in the
    region has written yet maps to the register file at loop entry
    ([Reg_in]). *)

type t

val create : unit -> t
(** All registers initially map to their live-in values. *)

val lookup : t -> Dfg.file -> Reg.t -> Dfg.src
val write : t -> Dfg.file -> Reg.t -> int -> unit
(** [write t file r node] renames [r] to the output of [node]. Writes to
    integer [x0] are ignored. *)

val live_ins : t -> Dfg.file -> Reg.t list
(** Registers that were looked up while still unwritten — the region's
    live-in set. *)

val live_outs : t -> Dfg.file -> (Reg.t * Dfg.src) list
(** Registers currently renamed to a node — the region's live-out set. *)

val reset : t -> unit
