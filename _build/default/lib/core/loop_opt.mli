(** Iteration-level optimizations (§4.3): spatial tiling and pipelining.

    Tiling duplicates the SDFG so independent iterations execute
    concurrently (Figure 6). It is only legal for loops the program
    explicitly annotated parallel ([omp parallel] / [omp simd]) — MESA never
    speculates at the thread level. The tiling factor is bounded by the
    fabric: enough PEs and load-store entries must exist for every
    instance.

    Pipelining overlaps successive iterations of one instance at the loop's
    initiation interval and is applied whenever optimizations are on (the
    engine's II computation already respects loop-carried recurrences). *)

type decision = {
  tiling : int;
  pipelined : bool;
}

val no_opt : decision

val decide :
  grid:Grid.t -> dfg:Dfg.t -> pragma:Program.pragma option -> decision
(** Largest legal tiling for the annotated loop on this grid (1 when the
    loop carries no annotation), with pipelining on. *)

val max_tiling : grid:Grid.t -> dfg:Dfg.t -> int
(** Capacity bound: [min(PEs / compute nodes, LS entries / memory nodes)],
    at least 1. *)
