let build (region : Region.t) =
  let n = Region.size region in
  let rename = Rename_table.create () in
  let nodes = Array.make n None in
  (* Open predication scopes: (branch node, first address past the scope). *)
  let open_guards = ref [] in
  let last_store = ref None in
  let file_of = function `Int -> Dfg.X | `Fp -> Dfg.F in
  let rec go j =
    if j = n then Ok ()
    else begin
      let instr = region.Region.instrs.(j) in
      let addr = Region.addr_of_index region j in
      (* Guards whose scope has ended no longer apply. *)
      open_guards := List.filter (fun (_, target) -> addr < target) !open_guards;
      match instr with
      | Isa.Jal _ | Isa.Jalr _ | Isa.Ecall | Isa.Ebreak | Isa.Fence ->
        Error
          (Printf.sprintf "C2 violation at 0x%x: %s" addr
             (Format.asprintf "%a" Isa.pp instr))
      | _ ->
        let srcs =
          Array.of_list
            (List.map (fun (r, file) -> Rename_table.lookup rename (file_of file) r)
               (Isa.reads instr))
        in
        let guards = List.map (fun (b, _) -> (b, true)) !open_guards in
        let hidden =
          if guards = [] then None
          else
            match (Isa.writes_int instr, Isa.writes_fp instr) with
            | Some rd, _ -> Some (Rename_table.lookup rename Dfg.X rd)
            | None, Some fd -> Some (Rename_table.lookup rename Dfg.F fd)
            | None, None -> None
        in
        let prev_store = if Isa.is_store instr then !last_store else None in
        nodes.(j) <-
          Some { Dfg.instr; addr; srcs; guards; hidden; prev_store };
        (* Program-order updates after the node is formed. *)
        if Isa.is_store instr then last_store := Some j;
        (match Isa.writes_int instr with
        | Some rd -> Rename_table.write rename Dfg.X rd j
        | None -> ());
        (match Isa.writes_fp instr with
        | Some fd -> Rename_table.write rename Dfg.F fd j
        | None -> ());
        (match instr with
        | Isa.Branch (_, _, _, off) when off > 0 && j < n - 1 ->
          open_guards := (j, addr + off) :: !open_guards
        | _ -> ());
        go (j + 1)
    end
  in
  match go 0 with
  | Error _ as e -> e
  | Ok () ->
    let nodes = Array.map Option.get nodes in
    let dfg =
      {
        Dfg.nodes;
        live_in_x = Rename_table.live_ins rename Dfg.X;
        live_in_f = Rename_table.live_ins rename Dfg.F;
        live_out_x = Rename_table.live_outs rename Dfg.X;
        live_out_f = Rename_table.live_outs rename Dfg.F;
        back_branch = n - 1;
        entry_addr = region.Region.entry;
        exit_addr = Region.exit_addr region;
      }
    in
    (match Dfg.validate dfg with
    | Ok () -> Ok dfg
    | Error e -> Error ("LDFG invariant violation: " ^ e))

let build_exn region =
  match build region with Ok dfg -> dfg | Error e -> failwith e
