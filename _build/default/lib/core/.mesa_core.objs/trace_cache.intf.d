lib/core/trace_cache.mli:
