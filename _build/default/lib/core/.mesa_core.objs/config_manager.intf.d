lib/core/config_manager.mli: Accel_config Dfg Mapper Perf_model Region
