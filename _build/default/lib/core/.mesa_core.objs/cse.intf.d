lib/core/cse.mli: Dfg
