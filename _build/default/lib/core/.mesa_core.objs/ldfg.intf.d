lib/core/ldfg.mli: Dfg Region
