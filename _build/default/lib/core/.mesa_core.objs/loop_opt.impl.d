lib/core/loop_opt.ml: Array Dfg Grid Isa Program
