lib/core/trace_cache.ml: Array Fun List
