lib/core/config_manager.ml: Accel_config Dfg Hashtbl Mapper Perf_model Region
