lib/core/mapper_anneal.ml: Array Dfg Grid Hashtbl Interconnect Isa List Perf_model Placement Prng
