lib/core/region.ml: Array Format Isa Program
