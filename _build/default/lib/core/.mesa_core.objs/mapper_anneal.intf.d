lib/core/mapper_anneal.mli: Grid Interconnect Perf_model Placement
