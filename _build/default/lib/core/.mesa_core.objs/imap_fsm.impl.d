lib/core/imap_fsm.ml: Array Buffer Bytes Dfg List Mapper Printf
