lib/core/optimizer.ml: Accel_config Array Dfg Engine List Mapper Perf_model Placement
