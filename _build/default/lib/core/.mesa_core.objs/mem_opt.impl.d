lib/core/mem_opt.ml: Array Dfg Hashtbl Isa List Reg
