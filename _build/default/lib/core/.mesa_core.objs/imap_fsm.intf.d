lib/core/imap_fsm.mli: Dfg Mapper
