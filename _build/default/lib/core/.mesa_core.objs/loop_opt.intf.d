lib/core/loop_opt.mli: Dfg Grid Program
