lib/core/loop_detector.ml: Array Hashtbl Interp Isa Printf Program Region
