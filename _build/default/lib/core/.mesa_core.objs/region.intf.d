lib/core/region.mli: Format Isa Program
