lib/core/mem_opt.mli: Dfg Reg
