lib/core/cse.ml: Array Dfg Fun Hashtbl Isa List Option
