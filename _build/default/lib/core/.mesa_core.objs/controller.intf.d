lib/core/controller.mli: Accel_config Activity Grid Hierarchy Interconnect Interp Loop_detector Machine Mapper Ooo_model Program
