lib/core/mapper.ml: Array Dfg Float Grid Interconnect Isa List Option Perf_model Placement Printf
