lib/core/rename_table.ml: Array Dfg Fun List Reg
