lib/core/optimizer.mli: Accel_config Engine Grid Interconnect Mapper Perf_model
