lib/core/mapper.mli: Dfg Grid Interconnect Perf_model Placement
