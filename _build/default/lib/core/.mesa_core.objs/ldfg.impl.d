lib/core/ldfg.ml: Array Dfg Format Isa List Option Printf Region Rename_table
