lib/core/rename_table.mli: Dfg Reg
