lib/core/loop_detector.mli: Interp Program Region
