type t = {
  forwarding : (int * int) list;
  vector_groups : int list list;
  prefetched : int list;
  induction_regs : Reg.t list;
}

let none = { forwarding = []; vector_groups = []; prefetched = []; induction_regs = [] }

type kind = K_int_load | K_fp_load | K_int_store | K_fp_store

let mem_info (nd : Dfg.node) =
  match nd.Dfg.instr with
  | Isa.Load (op, _, _, off) ->
    let width = match op with Isa.LB | Isa.LBU -> 1 | Isa.LH | Isa.LHU -> 2 | Isa.LW -> 4 in
    Some (K_int_load, width, nd.Dfg.srcs.(0), off)
  | Isa.Flw (_, _, off) -> Some (K_fp_load, 4, nd.Dfg.srcs.(0), off)
  | Isa.Store (op, _, _, off) ->
    let width = match op with Isa.SB -> 1 | Isa.SH -> 2 | Isa.SW -> 4 in
    Some (K_int_store, width, nd.Dfg.srcs.(1), off)
  | Isa.Fsw (_, _, off) -> Some (K_fp_store, 4, nd.Dfg.srcs.(1), off)
  | _ -> None

let is_load = function K_int_load | K_fp_load -> true | K_int_store | K_fp_store -> false

let forward_compatible ~store_kind ~load_kind =
  match (store_kind, load_kind) with
  | K_int_store, K_int_load | K_fp_store, K_fp_load -> true
  | _ -> false

let analyze (dfg : Dfg.t) =
  let nodes = dfg.Dfg.nodes in
  let n = Array.length nodes in
  let unguarded j = nodes.(j).Dfg.guards = [] in
  (* Induction registers: live-outs produced by r <- r + imm. *)
  let induction_regs =
    List.filter_map
      (fun (r, src) ->
        match src with
        | Dfg.Node p -> (
          match (nodes.(p).Dfg.instr, nodes.(p).Dfg.srcs) with
          | Isa.Itype (Isa.ADDI, _, _, _), [| Dfg.Reg_in (r', Dfg.X) |] when r' = r -> Some r
          | _ -> None)
        | Dfg.Reg_in _ -> None)
      dfg.Dfg.live_out_x
  in
  (* Store-load forwarding: walk back from each load while the base source
     stays provably the same; a store off a different base could alias, so
     stop there. *)
  let forwarding = ref [] in
  for j = 0 to n - 1 do
    match mem_info nodes.(j) with
    | Some (lk, lw, lbase, loff) when is_load lk && unguarded j ->
      let rec back i =
        if i < 0 then ()
        else
          match mem_info nodes.(i) with
          | Some (sk, sw, sbase, soff) when not (is_load sk) ->
            if sbase = lbase then begin
              if soff = loff && sw = lw && sw = 4 && forward_compatible ~store_kind:sk ~load_kind:lk
              then forwarding := (j, i) :: !forwarding
              else if soff = loff then () (* partial overlap: no forwarding *)
              else back (i - 1) (* same base, disjoint offset: keep walking *)
            end
            else if unguarded i then () (* unknown base: possible alias, stop *)
            else () (* guarded store: conservatively stop *)
          | Some _ | None -> back (i - 1)
      in
      back (j - 1)
    | Some _ | None -> ()
  done;
  let forwarded_loads = List.map fst !forwarding in
  (* Vectorization: loads sharing one renamed base source. *)
  let groups : (Dfg.src * kind, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  for j = 0 to n - 1 do
    match mem_info nodes.(j) with
    | Some (lk, _, base, off)
      when is_load lk && unguarded j && not (List.mem j forwarded_loads) -> (
      match Hashtbl.find_opt groups (base, lk) with
      | Some l -> l := (off, j) :: !l
      | None -> Hashtbl.add groups (base, lk) (ref [ (off, j) ]))
    | Some _ | None -> ()
  done;
  let vector_groups =
    Hashtbl.fold
      (fun _ l acc ->
        if List.length !l >= 2 then
          (List.sort compare !l |> List.map snd) :: acc
        else acc)
      groups []
    |> List.sort compare
  in
  (* Prefetching: the address chain must bottom out in induction registers,
     x0 or loop-invariant live-ins, through pure integer arithmetic. *)
  let invariant_reg r =
    r = 0 || List.mem r induction_regs || not (List.mem_assoc r dfg.Dfg.live_out_x)
  in
  let memo = Hashtbl.create 16 in
  let rec invariant_src = function
    | Dfg.Reg_in (r, Dfg.X) -> invariant_reg r
    | Dfg.Reg_in (_, Dfg.F) -> false
    | Dfg.Node p -> (
      match Hashtbl.find_opt memo p with
      | Some b -> b
      | None ->
        let b =
          (match Isa.op_class nodes.(p).Dfg.instr with
          | Isa.C_alu | Isa.C_mul -> true
          | _ -> false)
          && nodes.(p).Dfg.guards = []
          && Array.for_all invariant_src nodes.(p).Dfg.srcs
        in
        Hashtbl.add memo p b;
        b)
  in
  let prefetched = ref [] in
  for j = n - 1 downto 0 do
    match mem_info nodes.(j) with
    | Some (lk, _, base, _)
      when is_load lk && unguarded j && not (List.mem j forwarded_loads) ->
      if invariant_src base then prefetched := j :: !prefetched
    | Some _ | None -> ()
  done;
  { forwarding = List.rev !forwarding; vector_groups; prefetched = !prefetched; induction_regs }
