(** Simulated-annealing placement refinement — the "more advanced mapping
    strategies with the DFG model and performance data as inputs" the
    paper's conclusion points to as future work.

    The hardware mapper (Algorithm 1) is greedy and single-pass by
    necessity. This refiner, which a software agent or a more ambitious
    controller could run, starts from any valid placement and explores
    neighbouring ones — relocating a node to a free compatible location or
    swapping two compatible nodes — accepting strict improvements always
    and regressions with the usual cooling probability. The objective is
    the modeled iteration latency under the performance model's (possibly
    measured) operation weights, so profiling data steers the search just
    like it steers the greedy mapper's anchors.

    Determinism: the search is driven by the repo's explicit PRNG; equal
    seeds give equal placements. *)

type stats = {
  proposals : int;
  accepted : int;
  improved : int;        (** strict improvements adopted *)
  initial_latency : float;
  final_latency : float; (** latency of the best placement found *)
}

val refine :
  ?seed:int ->
  ?proposals:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  grid:Grid.t ->
  kind:Interconnect.kind ->
  model:Perf_model.t ->
  Placement.t ->
  Placement.t * stats
(** [refine ~grid ~kind ~model placement] returns the best placement found
    (never worse than the input under the model) and search statistics. As
    with {!Mapper.map}, the model's edge estimates are left describing the
    returned placement. Defaults: 2000 proposals, T0 = 8 cycles, cooling
    0.995 per proposal. *)
