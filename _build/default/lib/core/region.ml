type t = {
  entry : int;
  back_branch_addr : int;
  instrs : Isa.t array;
  pragma : Program.pragma option;
  observed_iterations : int;
}

let size t = Array.length t.instrs
let exit_addr t = t.back_branch_addr + 4
let addr_of_index t i = t.entry + (4 * i)
let contains t addr = addr >= t.entry && addr <= t.back_branch_addr

type mix = {
  compute : int;
  memory : int;
  control : int;
  fp : int;
  unsupported : int;
}

let mix t =
  let m = ref { compute = 0; memory = 0; control = 0; fp = 0; unsupported = 0 } in
  Array.iter
    (fun i ->
      let c = !m in
      m :=
        (match Isa.op_class i with
        | Isa.C_alu | Isa.C_mul | Isa.C_div -> { c with compute = c.compute + 1 }
        | Isa.C_fadd | Isa.C_fmul | Isa.C_fdiv -> { c with compute = c.compute + 1; fp = c.fp + 1 }
        | Isa.C_load | Isa.C_store -> { c with memory = c.memory + 1 }
        | Isa.C_branch -> { c with control = c.control + 1 }
        | Isa.C_jump | Isa.C_system -> { c with unsupported = c.unsupported + 1 }))
    t.instrs;
  !m

let pp ppf t =
  Format.fprintf ppf "region 0x%x..0x%x (%d instrs%s)" t.entry t.back_branch_addr
    (size t)
    (match t.pragma with
    | Some Program.Omp_parallel -> ", omp parallel"
    | Some Program.Omp_simd -> ", omp simd"
    | None -> "")
