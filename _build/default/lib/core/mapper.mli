(** Task T2: the data-driven spatial mapping algorithm (Algorithm 1).

    Instructions are visited in LDFG (program) order. For each one, a
    candidate matrix — a fixed window positioned at the critical (highest
    expected latency) placed predecessor — is filtered by the free matrix
    and the operation capability mask, each surviving position is scored
    with the expected completion latency

      [expLatency = L_op + max(A_s1, A_s2)],

    and the instruction lands on the argmin. Ties prefer positions with
    more free neighbours (keeping room for future consumers). Memory
    instructions are assigned to load-store entries by the same cost rule.
    When the window filters to nothing, the mapper falls back to a global
    scan, modelling the secondary-interconnect fallback of §3.3.

    The mapper is data-driven: predecessor latencies [L_s] come from the
    {!Perf_model}, so a remap after measurement naturally steers hot
    producers and consumers together. As a side effect the mapper installs
    its analytic transfer estimates into the model for every edge. *)

type config = {
  window_rows : int;
  window_cols : int;
}

val default_config : config
(** The paper's fixed 4x8 candidate matrix. *)

val map :
  ?config:config ->
  grid:Grid.t ->
  kind:Interconnect.kind ->
  Perf_model.t ->
  (Placement.t, string) result
(** Place the model's graph onto [grid]. Fails when PEs or LS entries run
    out (a structural hazard; the controller then rejects the region). *)

val map_cycles : config -> Dfg.t -> int
(** Hardware cost of running the imap FSM (Figure 8): a constant pipeline
    of stages per instruction plus a reduction tree over the candidate
    window. *)
