type t = {
  cap : int;
  mutable entry : int;
  mutable count : int;              (* slots in the active window *)
  mutable valid : bool array;
  mutable data : int32 array;
  mutable fills : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace_cache.create: capacity must be positive";
  {
    cap = capacity;
    entry = 0;
    count = 0;
    valid = Array.make capacity false;
    data = Array.make capacity 0l;
    fills = 0;
  }

let capacity t = t.cap

let set_region t ~entry ~last =
  let count = ((last - entry) / 4) + 1 in
  if count <= 0 then invalid_arg "Trace_cache.set_region: empty window";
  if count > t.cap then invalid_arg "Trace_cache.set_region: window exceeds capacity";
  t.entry <- entry;
  t.count <- count;
  Array.fill t.valid 0 t.cap false

let slot t addr =
  if addr < t.entry || addr > t.entry + (4 * (t.count - 1)) || (addr - t.entry) mod 4 <> 0
  then None
  else Some ((addr - t.entry) / 4)

let observe t ~addr ~word =
  match slot t addr with
  | Some i when not t.valid.(i) ->
    t.valid.(i) <- true;
    t.data.(i) <- word;
    t.fills <- t.fills + 1
  | Some _ | None -> ()

let complete t =
  t.count > 0
  &&
  let rec go i = i >= t.count || (t.valid.(i) && go (i + 1)) in
  go 0

let missing t =
  List.filter_map
    (fun i -> if t.valid.(i) then None else Some (t.entry + (4 * i)))
    (List.init t.count Fun.id)

let fill_from t fetch =
  List.iter
    (fun addr ->
      match fetch addr with
      | Some word -> observe t ~addr ~word
      | None -> ())
    (missing t)

let words t =
  if not (complete t) then failwith "Trace_cache.words: window incomplete";
  Array.sub t.data 0 t.count

let fills t = t.fills
