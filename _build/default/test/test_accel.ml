let check = Alcotest.check

(* -------------------- grid -------------------- *)

let grid_presets () =
  check Alcotest.int "M-64" 64 (Grid.pe_count Grid.m64);
  check Alcotest.int "M-128" 128 (Grid.pe_count Grid.m128);
  check Alcotest.int "M-512" 512 (Grid.pe_count Grid.m512);
  check Alcotest.int "M-128 is 16x8" 16 Grid.m128.Grid.rows;
  check Alcotest.int "M-512 is 64x8" 64 Grid.m512.Grid.rows;
  check Alcotest.int "M-64 is 16x4" 4 Grid.m64.Grid.cols;
  check Alcotest.int "LS entries are half the array" 64 Grid.m128.Grid.ls_entries

let grid_fp_half () =
  (* Exactly half the PEs carry FP logic (interleaved 2x2 slices). *)
  List.iter
    (fun g ->
      let fp = ref 0 in
      Grid.iter_coords g (fun c -> if Grid.has_fp g c then incr fp);
      check Alcotest.int (g.Grid.name ^ " FP count") (Grid.pe_count g / 2) !fp)
    [ Grid.m64; Grid.m128; Grid.m512 ]

let grid_capabilities () =
  let g = Grid.m128 in
  let fp_pe = ref None and int_pe = ref None in
  Grid.iter_coords g (fun c ->
      if Grid.has_fp g c && !fp_pe = None then fp_pe := Some c;
      if (not (Grid.has_fp g c)) && !int_pe = None then int_pe := Some c);
  let fp_pe = Option.get !fp_pe and int_pe = Option.get !int_pe in
  check Alcotest.bool "alu anywhere" true (Grid.supports g int_pe Isa.C_alu);
  check Alcotest.bool "fp on fp PE" true (Grid.supports g fp_pe Isa.C_fmul);
  check Alcotest.bool "no fp on int PE" false (Grid.supports g int_pe Isa.C_fmul);
  check Alcotest.bool "no loads on PEs" false (Grid.supports g fp_pe Isa.C_load);
  check Alcotest.bool "out of bounds" false (Grid.supports g (Grid.coord (-1) 0) Isa.C_alu)

let grid_of_pe_count () =
  check Alcotest.int "256" 256 (Grid.pe_count (Grid.of_pe_count 256));
  check Alcotest.int "16" 16 (Grid.pe_count (Grid.of_pe_count 16));
  check Alcotest.int "8 cols at 64+" 8 (Grid.of_pe_count 64).Grid.cols

let grid_manhattan () =
  check Alcotest.int "zero" 0 (Grid.manhattan (Grid.coord 1 1) (Grid.coord 1 1));
  check Alcotest.int "diagonal" 2 (Grid.manhattan (Grid.coord 0 0) (Grid.coord 1 1));
  check Alcotest.int "far" 10 (Grid.manhattan (Grid.coord 0 0) (Grid.coord 8 2))

(* -------------------- interconnect -------------------- *)

let interconnect_figure4_example1 () =
  (* Example 1 of Figure 4: hierarchical rows — 1 cycle within a row,
     3 cycles across rows. *)
  let g = Grid.m128 in
  let lat = Interconnect.latency g Interconnect.Hierarchical_rows in
  check Alcotest.int "same row" 1 (lat (Grid.coord 2 0) (Grid.coord 2 7));
  check Alcotest.int "across rows" 3 (lat (Grid.coord 2 0) (Grid.coord 3 0))

let interconnect_figure4_example2 () =
  (* Example 2: pure mesh — Manhattan distance. *)
  let g = Grid.m128 in
  let lat = Interconnect.latency g Interconnect.Pure_mesh in
  check Alcotest.int "neighbour" 1 (lat (Grid.coord 0 0) (Grid.coord 0 1));
  check Alcotest.int "diagonal" 2 (lat (Grid.coord 0 0) (Grid.coord 1 1));
  check Alcotest.int "self" 1 (lat (Grid.coord 0 0) (Grid.coord 0 0))

let interconnect_mesh_noc () =
  let g = Grid.m128 in
  let lat = Interconnect.latency g Interconnect.Mesh_noc in
  check Alcotest.int "neighbour local" 1 (lat (Grid.coord 0 0) (Grid.coord 0 1));
  check Alcotest.bool "far uses NoC" true (lat (Grid.coord 0 0) (Grid.coord 15 7) > 3);
  check Alcotest.bool "noc beats raw distance" true
    (lat (Grid.coord 0 0) (Grid.coord 15 7) < 22);
  check Alcotest.bool "route classification" true
    (Interconnect.route g Interconnect.Mesh_noc (Grid.coord 0 0) (Grid.coord 15 7)
     = Interconnect.Noc);
  check Alcotest.bool "neighbour is local" true
    (Interconnect.route g Interconnect.Mesh_noc (Grid.coord 0 0) (Grid.coord 0 1)
     = Interconnect.Local)

let interconnect_ls_coords () =
  let g = Grid.m128 in
  let c = Interconnect.ls_coord g 5 in
  check Alcotest.int "left edge" (-1) c.Grid.col;
  check Alcotest.int "row wraps" 5 c.Grid.row;
  let c2 = Interconnect.ls_coord g (5 + g.Grid.rows) in
  check Alcotest.int "wraps by rows" 5 c2.Grid.row

(* -------------------- placement -------------------- *)

let simple_region () =
  {
    Region.entry = 0x1000;
    back_branch_addr = 0x1000 + 24;
    instrs =
      [|
        Isa.Load (Isa.LW, 6, 10, 0);
        Isa.Ftype (Isa.FADD, 1, 2, 3);
        Isa.Rtype (Isa.ADD, 7, 6, 6);
        Isa.Store (Isa.SW, 7, 11, 0);
        Isa.Itype (Isa.ADDI, 10, 10, 4);
        Isa.Itype (Isa.ADDI, 5, 5, 1);
        Isa.Branch (Isa.BLT, 5, 13, -24);
      |];
    pragma = None;
    observed_iterations = 8;
  }

let mapped_placement () =
  let dfg = Ldfg.build_exn (simple_region ()) in
  let model = Perf_model.create dfg in
  match Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model with
  | Ok p -> (dfg, p)
  | Error e -> Alcotest.failf "map failed: %s" e

let placement_valid_and_typed () =
  let dfg, p = mapped_placement () in
  check Alcotest.bool "validates" true (Placement.validate dfg p = Ok ());
  (* Memory nodes on LS entries, others on PEs. *)
  Array.iteri
    (fun i nd ->
      match (Isa.is_memory nd.Dfg.instr, Placement.loc_of p i) with
      | true, Placement.Ls _ | false, Placement.Pe _ -> ()
      | _ -> Alcotest.failf "node %d mislocated" i)
    dfg.Dfg.nodes

let placement_rejects_double_booking () =
  let dfg, p = mapped_placement () in
  let assign = Array.copy p.Placement.assign in
  (* Nodes 1 and 2 are compute: force them onto the same PE. *)
  assign.(2) <- assign.(5);
  let bad = Placement.make p.Placement.grid p.Placement.kind assign in
  check Alcotest.bool "double booking rejected" true
    (Result.is_error (Placement.validate dfg bad))

let placement_rejects_fp_on_int_pe () =
  let dfg, p = mapped_placement () in
  let g = p.Placement.grid in
  (* Find an int-only PE not already used. *)
  let used = Hashtbl.create 16 in
  Array.iter
    (function Placement.Pe c -> Hashtbl.replace used (c.Grid.row, c.Grid.col) () | _ -> ())
    p.Placement.assign;
  let int_pe = ref None in
  Grid.iter_coords g (fun c ->
      if
        (not (Grid.has_fp g c))
        && (not (Hashtbl.mem used (c.Grid.row, c.Grid.col)))
        && !int_pe = None
      then int_pe := Some c);
  let assign = Array.copy p.Placement.assign in
  assign.(1) <- Placement.Pe (Option.get !int_pe);
  (* node 1 is the fadd *)
  let bad = Placement.make g p.Placement.kind assign in
  check Alcotest.bool "fp op on int PE rejected" true
    (Result.is_error (Placement.validate dfg bad))

let placement_transfer_consistency () =
  let _, p = mapped_placement () in
  check Alcotest.bool "transfer positive" true (Placement.transfer p 0 2 >= 1);
  check (Alcotest.float 1e-9) "float version agrees"
    (float_of_int (Placement.transfer p 0 2))
    (Placement.transfer_f p 0 2);
  check Alcotest.bool "used PEs counted" true (Placement.used_pes p = 5)

(* -------------------- accel config -------------------- *)

let config_bitstream_scaling () =
  let dfg = Ldfg.build_exn (simple_region ()) in
  let _, p = mapped_placement () in
  let plain = Accel_config.plain p in
  let tiled = Accel_config.with_opts ~tiling:4 p in
  check Alcotest.bool "tiling scales bits" true
    (Accel_config.bitstream_bits tiled dfg = 4 * Accel_config.bitstream_bits plain dfg);
  check Alcotest.bool "config cycles in the paper's band" true
    (let c = Accel_config.config_cycles plain dfg in
     c >= 500 && c <= 10000);
  check Alcotest.bool "multicast: tiled config far below 4x" true
    (Accel_config.config_cycles tiled dfg
    < 2 * Accel_config.config_cycles plain dfg)

let config_validation () =
  let _, p = mapped_placement () in
  Alcotest.check_raises "tiling >= 1"
    (Invalid_argument "Accel_config.with_opts: tiling must be >= 1") (fun () ->
      ignore (Accel_config.with_opts ~tiling:0 p))

let activity_accumulation () =
  let a = Activity.create () and b = Activity.create () in
  a.Activity.int_ops <- 3;
  b.Activity.int_ops <- 4;
  b.Activity.noc_transfers <- 7;
  Activity.add a b;
  check Alcotest.int "summed" 7 a.Activity.int_ops;
  check Alcotest.int "noc" 7 a.Activity.noc_transfers;
  check Alcotest.int "total ops" 7 (Activity.total_ops a)

let suites =
  [
    ( "grid",
      [
        Alcotest.test_case "presets" `Quick grid_presets;
        Alcotest.test_case "FP covers half" `Quick grid_fp_half;
        Alcotest.test_case "capabilities (F_op)" `Quick grid_capabilities;
        Alcotest.test_case "of_pe_count" `Quick grid_of_pe_count;
        Alcotest.test_case "manhattan" `Quick grid_manhattan;
      ] );
    ( "interconnect",
      [
        Alcotest.test_case "Figure 4 example 1 (rows)" `Quick interconnect_figure4_example1;
        Alcotest.test_case "Figure 4 example 2 (mesh)" `Quick interconnect_figure4_example2;
        Alcotest.test_case "mesh + NoC" `Quick interconnect_mesh_noc;
        Alcotest.test_case "LS entry coords" `Quick interconnect_ls_coords;
      ] );
    ( "placement",
      [
        Alcotest.test_case "valid and typed" `Quick placement_valid_and_typed;
        Alcotest.test_case "double booking rejected" `Quick placement_rejects_double_booking;
        Alcotest.test_case "FP capability enforced" `Quick placement_rejects_fp_on_int_pe;
        Alcotest.test_case "transfer consistency" `Quick placement_transfer_consistency;
      ] );
    ( "accel_config",
      [
        Alcotest.test_case "bitstream scaling" `Quick config_bitstream_scaling;
        Alcotest.test_case "validation" `Quick config_validation;
        Alcotest.test_case "activity accumulation" `Quick activity_accumulation;
      ] );
  ]
