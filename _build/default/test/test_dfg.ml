let check = Alcotest.check

let node ?(guards = []) ?hidden ?prev_store ~addr instr srcs =
  { Dfg.instr; addr; srcs = Array.of_list srcs; guards; hidden; prev_store }

(* The worked example of Figure 2: five instructions, add = 3 cycles,
   mul = 5 cycles, transfer latency = Manhattan distance (1 for neighbours,
   2 along the diagonal). The paper's table gives completions
   i1=3, i2=9, i5=15 with {i1, i4, i5} on the critical path and a total of
   15 cycles. *)
let figure2_dfg () =
  let r r = Dfg.Reg_in (r, Dfg.X) in
  {
    Dfg.nodes =
      [|
        node ~addr:0x0 (Isa.Rtype (Isa.ADD, 5, 1, 2)) [ r 1; r 2 ];
        node ~addr:0x4 (Isa.Rtype (Isa.MUL, 6, 5, 3)) [ Dfg.Node 0; r 3 ];
        node ~addr:0x8 (Isa.Rtype (Isa.ADD, 7, 6, 4)) [ Dfg.Node 1; r 4 ];
        node ~addr:0xc (Isa.Rtype (Isa.MUL, 28, 5, 8)) [ Dfg.Node 0; r 8 ];
        node ~addr:0x10 (Isa.Rtype (Isa.ADD, 29, 28, 9)) [ Dfg.Node 3; r 9 ];
      |];
    live_in_x = [ 1; 2; 3; 4; 8; 9 ];
    live_in_f = [];
    live_out_x = [ (29, Dfg.Node 4) ];
    live_out_f = [];
    back_branch = 4;
    entry_addr = 0x0;
    exit_addr = 0x14;
  }

let fig2_transfer i j =
  match (i, j) with
  | 0, 1 -> 1.0 (* neighbours *)
  | 1, 2 -> 1.0
  | 0, 3 -> 2.0 (* diagonal *)
  | 3, 4 -> 2.0
  | _ -> 1.0

let fig2_op dfg i =
  float_of_int (Latency.accel (Isa.op_class dfg.Dfg.nodes.(i).Dfg.instr))

let figure2_latency_table () =
  let dfg = figure2_dfg () in
  let compl_ =
    Dfg.completion_times dfg ~op_latency:(fig2_op dfg) ~transfer:fig2_transfer
  in
  check (Alcotest.array (Alcotest.float 1e-9)) "paper's table"
    [| 3.0; 9.0; 13.0; 10.0; 15.0 |] compl_;
  check (Alcotest.float 1e-9) "15 cycles total" 15.0
    (Dfg.iteration_latency dfg ~op_latency:(fig2_op dfg) ~transfer:fig2_transfer)

let figure2_critical_path () =
  let dfg = figure2_dfg () in
  let path = Dfg.critical_path dfg ~op_latency:(fig2_op dfg) ~transfer:fig2_transfer in
  check (Alcotest.list Alcotest.int) "i1 -> i4 -> i5" [ 0; 3; 4 ] path

let edges_and_children () =
  let dfg = figure2_dfg () in
  let edges = Dfg.edges dfg in
  check Alcotest.int "four data edges" 4 (List.length edges);
  check Alcotest.bool "0->1 present" true
    (List.exists (fun (i, j, k) -> i = 0 && j = 1 && k = Dfg.Data 0) edges);
  let ch = Dfg.children dfg in
  check (Alcotest.list Alcotest.int) "children of 0" [ 1; 3 ] ch.(0);
  check (Alcotest.list Alcotest.int) "children of 4" [] ch.(4);
  check (Alcotest.list Alcotest.int) "data preds of 4" [ 3 ] (Dfg.data_preds dfg 4)

let node_count_and_kinds () =
  let dfg = figure2_dfg () in
  check Alcotest.int "five nodes" 5 (Dfg.node_count dfg);
  check Alcotest.bool "no memory nodes" false (Dfg.is_memory_node dfg 0);
  check Alcotest.bool "back branch is not a real branch here" false
    (Dfg.is_branch_node dfg 4)

let validate_catches_forward_source () =
  let r r = Dfg.Reg_in (r, Dfg.X) in
  let dfg =
    {
      (figure2_dfg ()) with
      Dfg.nodes =
        [|
          node ~addr:0x0 (Isa.Rtype (Isa.ADD, 5, 1, 2)) [ Dfg.Node 1; r 2 ];
          node ~addr:0x4 (Isa.Branch (Isa.BNE, 5, 0, -4)) [ r 5; r 0 ];
        |];
      back_branch = 1;
    }
  in
  check Alcotest.bool "forward source rejected" true (Result.is_error (Dfg.validate dfg))

let validate_catches_bad_back_branch () =
  let dfg = figure2_dfg () in
  check Alcotest.bool "non-branch back edge rejected" true
    (Result.is_error (Dfg.validate dfg))

let validate_accepts_real_loop () =
  let r r = Dfg.Reg_in (r, Dfg.X) in
  let dfg =
    {
      (figure2_dfg ()) with
      Dfg.nodes =
        [|
          node ~addr:0x0 (Isa.Itype (Isa.ADDI, 5, 5, 1)) [ r 5 ];
          node ~addr:0x4 (Isa.Branch (Isa.BLT, 5, 10, -4)) [ Dfg.Node 0; r 10 ];
        |];
      live_in_x = [ 5; 10 ];
      live_out_x = [ (5, Dfg.Node 0) ];
      back_branch = 1;
    }
  in
  (match Dfg.validate dfg with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool))
    "carried induction" [ (5, true) ]
    (List.map (fun (r, f, _) -> (r, f = Dfg.X)) (Dfg.loop_carried dfg))

let guard_edges_weighted () =
  (* A guarded node must wait for its guard's enable signal. *)
  let r r = Dfg.Reg_in (r, Dfg.X) in
  let dfg =
    {
      (figure2_dfg ()) with
      Dfg.nodes =
        [|
          node ~addr:0x0 (Isa.Branch (Isa.BEQ, 1, 0, 8)) [ r 1; r 0 ];
          node ~addr:0x4
            ~guards:[ (0, true) ]
            ~hidden:(Dfg.Reg_in (5, Dfg.X))
            (Isa.Itype (Isa.ADDI, 5, 5, 1))
            [ r 5 ];
        |];
      back_branch = 0;
    }
  in
  let compl_ =
    Dfg.completion_times dfg
      ~op_latency:(fun _ -> 2.0)
      ~transfer:(fun _ _ -> 3.0)
  in
  (* Node 1 waits for guard (2.0) + transfer (3.0) then executes (2.0). *)
  check (Alcotest.float 1e-9) "guard delays" 7.0 compl_.(1)

let dot_and_pp () =
  let dfg = figure2_dfg () in
  let dot = Dfg.to_dot dfg in
  check Alcotest.bool "digraph" true (String.length dot > 7 && String.sub dot 0 7 = "digraph");
  check Alcotest.bool "mentions nodes" true
    (String.split_on_char '\n' dot |> List.exists (fun l -> l = "  n0 -> n1;"));
  let s = Format.asprintf "%a" Dfg.pp dfg in
  check Alcotest.bool "pp nonempty" true (String.length s > 50)

(* -------------------- perf model -------------------- *)

let perf_model_defaults_and_measurement () =
  let dfg = figure2_dfg () in
  let model = Perf_model.create dfg in
  check (Alcotest.float 1e-9) "default add" 3.0 (Perf_model.op_latency model 0);
  check (Alcotest.float 1e-9) "default mul" 5.0 (Perf_model.op_latency model 1);
  Perf_model.observe_op model 0 7.0;
  Perf_model.observe_op model 0 9.0;
  check (Alcotest.float 1e-9) "measured mean wins" 8.0 (Perf_model.op_latency model 0);
  Perf_model.reset_measurements model;
  check (Alcotest.float 1e-9) "reset restores default" 3.0 (Perf_model.op_latency model 0)

let perf_model_transfers () =
  let dfg = figure2_dfg () in
  let model = Perf_model.create dfg in
  check (Alcotest.float 1e-9) "default transfer" 1.0 (Perf_model.transfer model 0 1);
  Perf_model.set_transfer_estimate model 0 1 4.0;
  check (Alcotest.float 1e-9) "estimate" 4.0 (Perf_model.transfer model 0 1);
  Perf_model.observe_transfer model 0 1 6.0;
  check (Alcotest.float 1e-9) "measurement beats estimate" 6.0 (Perf_model.transfer model 0 1);
  Perf_model.set_transfer_estimate model 0 1 2.0;
  check (Alcotest.float 1e-9) "new estimate clears stale measurement" 2.0
    (Perf_model.transfer model 0 1)

let perf_model_latency_consistency () =
  let dfg = figure2_dfg () in
  let model = Perf_model.create dfg in
  List.iter
    (fun (i, j, _) ->
      Perf_model.set_transfer_estimate model i j (fig2_transfer i j))
    (Dfg.edges dfg);
  check (Alcotest.float 1e-9) "matches direct computation" 15.0
    (Perf_model.iteration_latency model);
  check (Alcotest.list Alcotest.int) "critical path via model" [ 0; 3; 4 ]
    (Perf_model.critical_path model)

let suites =
  [
    ( "dfg",
      [
        Alcotest.test_case "Figure 2 latency table" `Quick figure2_latency_table;
        Alcotest.test_case "Figure 2 critical path" `Quick figure2_critical_path;
        Alcotest.test_case "edges and children" `Quick edges_and_children;
        Alcotest.test_case "node kinds" `Quick node_count_and_kinds;
        Alcotest.test_case "validate forward source" `Quick validate_catches_forward_source;
        Alcotest.test_case "validate back branch" `Quick validate_catches_bad_back_branch;
        Alcotest.test_case "validate real loop" `Quick validate_accepts_real_loop;
        Alcotest.test_case "guard edges weighted" `Quick guard_edges_weighted;
        Alcotest.test_case "dot and pp" `Quick dot_and_pp;
      ] );
    ( "perf_model",
      [
        Alcotest.test_case "defaults and measurement" `Quick perf_model_defaults_and_measurement;
        Alcotest.test_case "transfer estimates" `Quick perf_model_transfers;
        Alcotest.test_case "latency consistency" `Quick perf_model_latency_consistency;
      ] );
  ]
