let check = Alcotest.check

(* -------------------- main memory -------------------- *)

let mem_endianness () =
  let m = Main_memory.create ~size:4096 () in
  Main_memory.store_word m 0 0x12345678;
  check Alcotest.int "little-endian byte 0" 0x78 (Main_memory.load_byte_u m 0);
  check Alcotest.int "little-endian byte 3" 0x12 (Main_memory.load_byte_u m 3);
  check Alcotest.int "half" 0x5678 (Main_memory.load_half_u m 0)

let mem_sign_extension () =
  let m = Main_memory.create ~size:4096 () in
  Main_memory.store_word m 0 (-1);
  check Alcotest.int "signed byte" (-1) (Main_memory.load_byte m 0);
  check Alcotest.int "unsigned byte" 0xFF (Main_memory.load_byte_u m 0);
  check Alcotest.int "signed half" (-1) (Main_memory.load_half m 0);
  check Alcotest.int "signed word" (-1) (Main_memory.load_word m 0)

let mem_bounds () =
  let m = Main_memory.create ~size:64 () in
  Alcotest.check_raises "oob word"
    (Invalid_argument "Main_memory: access at 0x3d width 4 out of bounds") (fun () ->
      ignore (Main_memory.load_word m 61));
  (match Main_memory.store_word m (-4) 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative address accepted")

let mem_float_roundtrip () =
  let m = Main_memory.create ~size:64 () in
  Main_memory.store_float32 m 0 1.5;
  check (Alcotest.float 0.0) "exact" 1.5 (Main_memory.load_float32 m 0);
  Main_memory.store_float32 m 4 0.1;
  check (Alcotest.float 0.0) "rounded consistently" (Machine.round32 0.1)
    (Main_memory.load_float32 m 4)

let mem_copy_equal () =
  let m = Main_memory.create ~size:64 () in
  Main_memory.store_word m 8 42;
  let c = Main_memory.copy m in
  check Alcotest.bool "equal" true (Main_memory.equal m c);
  Main_memory.store_word c 8 43;
  check Alcotest.bool "diverged" false (Main_memory.equal m c);
  check Alcotest.int "original untouched" 42 (Main_memory.load_word m 8)

let mem_blit_read () =
  let m = Main_memory.create ~size:256 () in
  Main_memory.blit_words m 16 [| 1; -2; 3 |];
  check (Alcotest.array Alcotest.int) "words" [| 1; -2; 3 |] (Main_memory.read_words m 16 3);
  Main_memory.blit_floats m 64 [| 1.0; 2.5 |];
  check (Alcotest.array (Alcotest.float 0.0)) "floats" [| 1.0; 2.5 |]
    (Main_memory.read_floats m 64 2)

(* -------------------- cache -------------------- *)

let small_cache () =
  Cache.create (Cache.config ~size_bytes:1024 ~ways:2 ~line_bytes:64 ~hit_latency:2)

let cache_hit_after_miss () =
  let c = small_cache () in
  check Alcotest.bool "first is miss" true (Cache.access c 0 ~write:false <> Cache.Hit);
  check Alcotest.bool "second hits" true (Cache.access c 0 ~write:false = Cache.Hit);
  check Alcotest.bool "same line hits" true (Cache.access c 63 ~write:false = Cache.Hit);
  check Alcotest.bool "next line misses" true (Cache.access c 64 ~write:false <> Cache.Hit)

let cache_lru_eviction () =
  let c = small_cache () in
  (* 8 sets x 2 ways; addresses 0, 8*64, 16*64 map to set 0. *)
  let a0 = 0 and a1 = 8 * 64 and a2 = 16 * 64 in
  ignore (Cache.access c a0 ~write:false);
  ignore (Cache.access c a1 ~write:false);
  ignore (Cache.access c a0 ~write:false); (* a0 freshly used; a1 is LRU *)
  ignore (Cache.access c a2 ~write:false); (* evicts a1 *)
  check Alcotest.bool "a0 survived" true (Cache.probe c a0);
  check Alcotest.bool "a1 evicted" false (Cache.probe c a1);
  check Alcotest.bool "a2 present" true (Cache.probe c a2)

let cache_dirty_writeback () =
  let c = small_cache () in
  ignore (Cache.access c 0 ~write:true);
  ignore (Cache.access c (8 * 64) ~write:false);
  (match Cache.access c (16 * 64) ~write:false with
  | Cache.Miss { dirty_eviction = true } -> ()
  | _ -> Alcotest.fail "expected a dirty eviction");
  check Alcotest.int "writeback counted" 1 (Cache.writebacks c)

let cache_stats_conservation () =
  let c = small_cache () in
  let rng = Prng.create 5 in
  for _ = 1 to 500 do
    ignore (Cache.access c (Prng.int rng 8192) ~write:(Prng.bool rng))
  done;
  check Alcotest.int "hits + misses = accesses" 500 (Cache.accesses c);
  check Alcotest.bool "hit rate in [0,1]" true
    (Cache.hit_rate c >= 0.0 && Cache.hit_rate c <= 1.0);
  Cache.reset_stats c;
  check Alcotest.int "stats reset" 0 (Cache.accesses c)

let cache_probe_no_side_effect () =
  let c = small_cache () in
  check Alcotest.bool "cold probe" false (Cache.probe c 0);
  check Alcotest.int "probe counts nothing" 0 (Cache.accesses c)

let cache_invalidate () =
  let c = small_cache () in
  ignore (Cache.access c 0 ~write:false);
  Cache.invalidate_all c;
  check Alcotest.bool "gone" false (Cache.probe c 0)

let cache_config_validation () =
  Alcotest.check_raises "bad line"
    (Invalid_argument "Cache.config: line size must be a power of two") (fun () ->
      ignore (Cache.config ~size_bytes:1024 ~ways:2 ~line_bytes:48 ~hit_latency:1))

(* -------------------- hierarchy -------------------- *)

let hierarchy_latency_bounds () =
  let h = Hierarchy.create Hierarchy.default_config in
  let rng = Prng.create 13 in
  for _ = 1 to 300 do
    let lat = Hierarchy.load_latency h (Prng.int rng (1 lsl 20)) in
    check Alcotest.bool "within bounds" true
      (lat >= Hierarchy.min_latency h && lat <= Hierarchy.max_latency h)
  done

let hierarchy_warm_hits () =
  let h = Hierarchy.create Hierarchy.default_config in
  let cold = Hierarchy.load_latency h 4096 in
  let warm = Hierarchy.load_latency h 4096 in
  check Alcotest.bool "cold slower than warm" true (cold > warm);
  check Alcotest.int "warm is an L1 hit" (Hierarchy.min_latency h) warm

let hierarchy_shared_l2 () =
  let hs = Hierarchy.create_shared Hierarchy.default_config ~cores:2 in
  (* Core 0 warms the L2; core 1 misses L1 but hits the shared L2. *)
  let cold = Hierarchy.load_latency hs.(0) 8192 in
  let sibling = Hierarchy.load_latency hs.(1) 8192 in
  check Alcotest.bool "sibling faster than DRAM" true (sibling < cold);
  check Alcotest.bool "sibling slower than its own L1" true
    (sibling > Hierarchy.min_latency hs.(1))

let hierarchy_sharing_penalty () =
  let solo = Hierarchy.create Hierarchy.default_config in
  let crowd = Hierarchy.create ~sharers:16 Hierarchy.default_config in
  (* First access misses everywhere: the 16-sharer L2 must cost more. *)
  let a = Hierarchy.load_latency solo 0 and b = Hierarchy.load_latency crowd 0 in
  check Alcotest.bool "shared L2 slower" true (b > a)

(* -------------------- contention -------------------- *)

let contention_respects_ready () =
  let c = Contention.create ~capacity:2 in
  let t = Contention.claim c 10.0 in
  check Alcotest.bool "not before ready" true (t >= 10.0)

let contention_serializes_at_capacity () =
  let c = Contention.create ~capacity:1 in
  let t1 = Contention.claim c 5.0 in
  let t2 = Contention.claim c 5.0 in
  let t3 = Contention.claim c 5.0 in
  check Alcotest.bool "distinct cycles" true (t1 < t2 && t2 < t3);
  check Alcotest.int "claim count" 3 (Contention.claimed c)

let contention_late_claim_no_blocking () =
  (* The bug that motivated this module: a claim far in the future must not
     consume earlier idle slots. *)
  let c = Contention.create ~capacity:1 in
  let late = Contention.claim c 100.0 in
  let early = Contention.claim c 0.0 in
  check Alcotest.bool "late claim unaffected" true (late >= 100.0);
  check Alcotest.bool "early slot still free" true (early < 2.0)

let contention_capacity_per_cycle () =
  let c = Contention.create ~capacity:3 in
  let ts = List.init 7 (fun _ -> Contention.claim c 0.0) in
  let at0 = List.length (List.filter (fun t -> t < 1.0) ts) in
  check Alcotest.int "three per cycle" 3 at0

let contention_reset () =
  let c = Contention.create ~capacity:1 in
  ignore (Contention.claim c 0.0);
  Contention.reset c;
  check Alcotest.int "cleared" 0 (Contention.claimed c);
  check Alcotest.bool "slot free again" true (Contention.claim c 0.0 < 1.0)

let suites =
  [
    ( "main_memory",
      [
        Alcotest.test_case "endianness" `Quick mem_endianness;
        Alcotest.test_case "sign extension" `Quick mem_sign_extension;
        Alcotest.test_case "bounds" `Quick mem_bounds;
        Alcotest.test_case "float roundtrip" `Quick mem_float_roundtrip;
        Alcotest.test_case "copy/equal" `Quick mem_copy_equal;
        Alcotest.test_case "blit/read" `Quick mem_blit_read;
      ] );
    ( "cache",
      [
        Alcotest.test_case "hit after miss" `Quick cache_hit_after_miss;
        Alcotest.test_case "LRU eviction" `Quick cache_lru_eviction;
        Alcotest.test_case "dirty writeback" `Quick cache_dirty_writeback;
        Alcotest.test_case "stats conservation" `Quick cache_stats_conservation;
        Alcotest.test_case "probe side-effect-free" `Quick cache_probe_no_side_effect;
        Alcotest.test_case "invalidate" `Quick cache_invalidate;
        Alcotest.test_case "config validation" `Quick cache_config_validation;
      ] );
    ( "hierarchy",
      [
        Alcotest.test_case "latency bounds" `Quick hierarchy_latency_bounds;
        Alcotest.test_case "warm hits" `Quick hierarchy_warm_hits;
        Alcotest.test_case "shared L2" `Quick hierarchy_shared_l2;
        Alcotest.test_case "sharing penalty" `Quick hierarchy_sharing_penalty;
      ] );
    ( "contention",
      [
        Alcotest.test_case "respects ready" `Quick contention_respects_ready;
        Alcotest.test_case "serializes at capacity" `Quick contention_serializes_at_capacity;
        Alcotest.test_case "late claim no blocking" `Quick contention_late_claim_no_blocking;
        Alcotest.test_case "capacity per cycle" `Quick contention_capacity_per_cycle;
        Alcotest.test_case "reset" `Quick contention_reset;
      ] );
  ]
