let check = Alcotest.check

let region_of instrs =
  let arr = Array.of_list instrs in
  {
    Region.entry = 0x1000;
    back_branch_addr = 0x1000 + (4 * (Array.length arr - 1));
    instrs = arr;
    pragma = None;
    observed_iterations = 8;
  }

(* t1 and t2 both compute in1[t0*4 base] addresses the same way; the two
   slli+add chains are value-identical. *)
let duplicate_address_loop =
  [
    Isa.Itype (Isa.SLLI, 6, 5, 2);  (* t1 = t0 << 2 *)
    Isa.Rtype (Isa.ADD, 6, 6, 10);  (* t1 += a0 *)
    Isa.Itype (Isa.SLLI, 7, 5, 2);  (* t2 = t0 << 2   (duplicate) *)
    Isa.Rtype (Isa.ADD, 7, 7, 10);  (* t2 += a0       (duplicate) *)
    Isa.Load (Isa.LW, 28, 6, 0);
    Isa.Load (Isa.LW, 29, 7, 4);
    Isa.Rtype (Isa.ADD, 30, 28, 29);
    Isa.Store (Isa.SW, 30, 11, 0);
    Isa.Itype (Isa.ADDI, 11, 11, 4);
    Isa.Itype (Isa.ADDI, 5, 5, 1);
    Isa.Branch (Isa.BLT, 5, 13, -40);
  ]

let cse_removes_duplicates () =
  let dfg = Ldfg.build_exn (region_of duplicate_address_loop) in
  let reduced, eliminated = Cse.apply dfg in
  check Alcotest.int "two nodes eliminated" 2 eliminated;
  check Alcotest.int "graph shrank" (Dfg.node_count dfg - 2) (Dfg.node_count reduced);
  check Alcotest.bool "still valid" true (Dfg.validate reduced = Ok ());
  (* The two loads now share one address producer. *)
  let loads =
    List.filter (fun i -> Dfg.is_memory_node reduced i)
      (List.init (Dfg.node_count reduced) Fun.id)
  in
  match loads with
  | [ l1; l2; _store ] ->
    check Alcotest.bool "shared address chain" true
      (reduced.Dfg.nodes.(l1).Dfg.srcs.(0) = reduced.Dfg.nodes.(l2).Dfg.srcs.(0))
  | _ -> Alcotest.fail "unexpected memory node count"

let cse_preserves_execution () =
  let region = region_of duplicate_address_loop in
  let dfg = Ldfg.build_exn region in
  let reduced, _ = Cse.apply dfg in
  let run d =
    let model = Perf_model.create d in
    let placement =
      Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model)
    in
    let mem = Main_memory.create () in
    Main_memory.blit_words mem 0x10000 (Array.init 128 (fun i -> 3 * i));
    let machine = Machine.create ~pc:0x1000 mem in
    Machine.set_args machine [ (10, 0x10000); (11, 0x20000); (5, 0); (13, 100) ];
    let hier = Hierarchy.create Hierarchy.default_config in
    match
      Engine.execute ~config:(Accel_config.plain placement) ~dfg:d ~machine ~hier ()
    with
    | Ok _ -> mem
    | Error e -> Alcotest.fail e
  in
  check Alcotest.bool "identical memory effects" true
    (Main_memory.equal (run dfg) (run reduced))

let cse_respects_guards_and_memory () =
  let instrs =
    [
      Isa.Branch (Isa.BEQ, 6, 0, 12);
      Isa.Itype (Isa.ADDI, 7, 5, 1);  (* guarded: not eligible *)
      Isa.Itype (Isa.ADDI, 28, 5, 1); (* guarded: not eligible *)
      Isa.Load (Isa.LW, 29, 10, 0);   (* memory: not eligible *)
      Isa.Load (Isa.LW, 30, 10, 0);   (* memory: kept even though identical *)
      Isa.Itype (Isa.ADDI, 5, 5, 1);
      Isa.Branch (Isa.BLT, 5, 13, -24);
    ]
  in
  let dfg = Ldfg.build_exn (region_of instrs) in
  check Alcotest.bool "guarded ineligible" false (Cse.eligible dfg 1);
  check Alcotest.bool "load ineligible" false (Cse.eligible dfg 3);
  check Alcotest.bool "branch ineligible" false (Cse.eligible dfg 0);
  check Alcotest.bool "plain addi eligible" true (Cse.eligible dfg 5);
  let _, eliminated = Cse.apply dfg in
  check Alcotest.int "nothing eliminated" 0 eliminated

let cse_distinguishes_immediates_and_ops () =
  let instrs =
    [
      Isa.Itype (Isa.ADDI, 6, 5, 1);
      Isa.Itype (Isa.ADDI, 7, 5, 2);  (* different immediate *)
      Isa.Rtype (Isa.ADD, 28, 5, 5);
      Isa.Rtype (Isa.XOR, 29, 5, 5);  (* different op *)
      Isa.Itype (Isa.ADDI, 5, 5, 3);  (* distinct immediate from node 0 *)
      Isa.Branch (Isa.BLT, 5, 13, -20);
    ]
  in
  let dfg = Ldfg.build_exn (region_of instrs) in
  let _, eliminated = Cse.apply dfg in
  check Alcotest.int "no false merges" 0 eliminated

let cse_kernels_noop_or_safe () =
  (* Hand-written kernels carry no duplicates; CSE must be an identity
     there — and must never break equivalence anywhere (the controller runs
     it by default, so the whole engine suite already re-checks this). *)
  List.iter
    (fun (k : Kernel.t) ->
      let dfg = Runner.dfg_of_kernel k in
      let reduced, eliminated = Cse.apply dfg in
      check Alcotest.bool (k.Kernel.name ^ " valid after cse") true
        (Dfg.validate reduced = Ok ());
      check Alcotest.int (k.Kernel.name ^ " node accounting")
        (Dfg.node_count dfg) (Dfg.node_count reduced + eliminated))
    (Workloads.all ())

let cse_random_loops_equivalent =
  QCheck2.Test.make ~name:"cse preserves controller equivalence" ~count:40
    ~print:Gen.loop_spec_print Gen.loop_spec (fun spec ->
      (* The controller applies CSE when optimizing; compare against the
         plain interpreter. Random bodies reuse temporaries heavily, so
         eliminations actually occur on many of these graphs. *)
      let prog, m_ref = Gen.build_loop spec in
      let m_mesa = Machine.copy m_ref ~mem:(Main_memory.copy m_ref.Machine.mem) () in
      let _ = Interp.run prog m_ref in
      let report = Controller.run prog m_mesa in
      report.Controller.halt = Interp.Ecall_halt
      && Main_memory.equal m_ref.Machine.mem m_mesa.Machine.mem)

(* -------------------- gshare -------------------- *)

let gshare_learns_alternation () =
  let bim = Predictor.create () in
  let gsh = Predictor.create ~kind:(Predictor.Gshare 8) () in
  for i = 1 to 400 do
    let dir = i mod 2 = 0 in
    ignore (Predictor.predict_and_update bim 0x1000 dir);
    ignore (Predictor.predict_and_update gsh 0x1000 dir)
  done;
  check Alcotest.bool "bimodal thrashes" true (Predictor.mispredicts bim > 100);
  check Alcotest.bool "gshare locks on" true (Predictor.mispredicts gsh < 40)

let gshare_biased_branches_fine () =
  let gsh = Predictor.create ~kind:(Predictor.Gshare 8) () in
  for _ = 1 to 200 do
    ignore (Predictor.predict_and_update gsh 0x1000 true)
  done;
  check Alcotest.bool "biased branch predicted" true (Predictor.mispredicts gsh <= 8)

let suites =
  [
    ( "cse",
      [
        Alcotest.test_case "removes duplicates" `Quick cse_removes_duplicates;
        Alcotest.test_case "preserves execution" `Quick cse_preserves_execution;
        Alcotest.test_case "respects guards and memory" `Quick cse_respects_guards_and_memory;
        Alcotest.test_case "distinguishes immediates/ops" `Quick
          cse_distinguishes_immediates_and_ops;
        Alcotest.test_case "identity on hand-written kernels" `Quick cse_kernels_noop_or_safe;
        QCheck_alcotest.to_alcotest cse_random_loops_equivalent;
      ] );
    ( "gshare",
      [
        Alcotest.test_case "learns alternation" `Quick gshare_learns_alternation;
        Alcotest.test_case "biased branches fine" `Quick gshare_biased_branches_fine;
      ] );
  ]
