let check = Alcotest.check

(* -------------------- bitstream codec -------------------- *)

let full_config_of (k : Kernel.t) =
  let dfg = Runner.dfg_of_kernel k in
  let model = Perf_model.create dfg in
  let placement =
    Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model)
  in
  let mo = Mem_opt.analyze dfg in
  let ld =
    Loop_opt.decide ~grid:Grid.m128 ~dfg
      ~pragma:(Program.pragma_at k.Kernel.program dfg.Dfg.entry_addr)
  in
  ( dfg,
    Accel_config.with_opts ~forwarding:mo.Mem_opt.forwarding
      ~vector_groups:mo.Mem_opt.vector_groups ~prefetched:mo.Mem_opt.prefetched
      ~tiling:ld.Loop_opt.tiling ~pipelined:ld.Loop_opt.pipelined placement )

let bitstream_roundtrip_all_kernels () =
  List.iter
    (fun (k : Kernel.t) ->
      let dfg, config = full_config_of k in
      let image = Bitstream.encode dfg config in
      match Bitstream.decode image with
      | Error e -> Alcotest.failf "%s: decode failed: %s" k.Kernel.name e
      | Ok (dfg', config') ->
        check Alcotest.bool (k.Kernel.name ^ " graph roundtrips") true (dfg = dfg');
        check Alcotest.bool (k.Kernel.name ^ " placement roundtrips") true
          (config'.Accel_config.placement.Placement.assign
          = config.Accel_config.placement.Placement.assign);
        check Alcotest.bool (k.Kernel.name ^ " options roundtrip") true
          (config'.Accel_config.forwarding = config.Accel_config.forwarding
          && config'.Accel_config.vector_groups = config.Accel_config.vector_groups
          && config'.Accel_config.prefetched = config.Accel_config.prefetched
          && config'.Accel_config.tiling = config.Accel_config.tiling
          && config'.Accel_config.pipelined = config.Accel_config.pipelined))
    (Workloads.all ())

let bitstream_detects_corruption () =
  let dfg, config = full_config_of (Workloads.find "nn") in
  let image = Bitstream.encode dfg config in
  check Alcotest.bool "starts with magic" true (image.(0) = Bitstream.magic);
  (* Flip one bit anywhere: the checksum must catch it. *)
  let corrupt = Array.copy image in
  corrupt.(7) <- Int32.logxor corrupt.(7) 0x10l;
  check Alcotest.bool "corruption rejected" true (Result.is_error (Bitstream.decode corrupt));
  (* Truncation. *)
  check Alcotest.bool "truncation rejected" true
    (Result.is_error (Bitstream.decode (Array.sub image 0 (Array.length image / 2))));
  (* Wrong magic. *)
  let bad = Array.copy image in
  bad.(0) <- 0l;
  check Alcotest.bool "bad magic rejected" true (Result.is_error (Bitstream.decode bad))

let bitstream_size_close_to_model () =
  List.iter
    (fun name ->
      let k = Workloads.find name in
      let dfg, config = full_config_of k in
      let real = Bitstream.size_bits dfg config in
      (* The analytic model charges per tiled instance; the codec stores one
         instance plus graph metadata. They must agree within a small
         factor for untiled images. *)
      let untiled = { config with Accel_config.tiling = 1 } in
      let modeled = Accel_config.bitstream_bits untiled dfg in
      let real1 = Bitstream.size_bits dfg untiled in
      check Alcotest.bool (name ^ " size plausible") true
        (real > 0 && real1 <= 4 * modeled && modeled <= 4 * real1))
    [ "nn"; "kmeans"; "btree" ]

(* The decoded bitstream must drive the fabric to the same results as the
   in-memory configuration: encode, decode, execute both, compare. *)
let bitstream_execution_equivalence () =
  let k = Workloads.nn ~n:400 () in
  let dfg, config = full_config_of k in
  let image = Bitstream.encode dfg config in
  let dfg', config' = Result.get_ok (Bitstream.decode image) in
  let run d c =
    let mem = Main_memory.create () in
    let machine = Kernel.prepare k mem in
    let hier = Hierarchy.create Hierarchy.default_config in
    match Engine.execute ~config:c ~dfg:d ~machine ~hier () with
    | Ok res -> (res.Engine.cycles, mem)
    | Error e -> Alcotest.fail e
  in
  let cyc1, mem1 = run dfg config in
  let cyc2, mem2 = run dfg' config' in
  check Alcotest.int "same cycles" cyc1 cyc2;
  check Alcotest.bool "same memory" true (Main_memory.equal mem1 mem2)

let bitstream_random_loops =
  QCheck2.Test.make ~name:"bitstream roundtrip on random loops" ~count:60
    ~print:Gen.loop_spec_print Gen.loop_spec (fun spec ->
      let prog, _ = Gen.build_loop spec in
      let code = Program.code prog in
      let n_loop =
        1
        + (Array.to_list code
          |> List.mapi (fun i x -> (i, x))
          |> List.find (fun (_, x) ->
                 match x with Isa.Branch (_, _, _, o) -> o < 0 | _ -> false)
          |> fst)
      in
      let region =
        {
          Region.entry = Program.base prog;
          back_branch_addr = Program.base prog + (4 * (n_loop - 1));
          instrs = Array.sub code 0 n_loop;
          pragma = None;
          observed_iterations = 8;
        }
      in
      match Ldfg.build region with
      | Error _ -> false
      | Ok dfg -> (
        match Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc (Perf_model.create dfg) with
        | Error _ -> false
        | Ok placement -> (
          let config = Accel_config.plain placement in
          match Bitstream.decode (Bitstream.encode dfg config) with
          | Ok (dfg', config') ->
            dfg = dfg'
            && config'.Accel_config.placement.Placement.assign
               = placement.Placement.assign
          | Error _ -> false)))

(* -------------------- imap FSM -------------------- *)

let fsm_matches_closed_form () =
  List.iter
    (fun name ->
      let dfg = Runner.dfg_of_kernel (Workloads.find name) in
      check Alcotest.int (name ^ " cycles")
        (Mapper.map_cycles Mapper.default_config dfg)
        (Imap_fsm.cycles Mapper.default_config dfg))
    [ "nn"; "kmeans"; "btree" ]

let fsm_stage_structure () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "gaussian") in
  let steps = Imap_fsm.simulate Mapper.default_config dfg in
  (* Contiguous cycles, one state per cycle. *)
  List.iteri
    (fun i s -> check Alcotest.int "cycle sequence" i s.Imap_fsm.cycle)
    steps;
  (* Each node passes through fetch..writeback in order. *)
  let per_node = 4 + Imap_fsm.reduction_depth Mapper.default_config in
  check Alcotest.int "steps per node" (per_node * Dfg.node_count dfg) (List.length steps);
  let first = List.hd steps and last = List.nth steps (List.length steps - 1) in
  check Alcotest.bool "starts with fetch" true (first.Imap_fsm.state = Imap_fsm.Fetch);
  check Alcotest.bool "ends with writeback" true (last.Imap_fsm.state = Imap_fsm.Writeback)

let fsm_reduction_depth () =
  check Alcotest.int "4x8 window reduces in 5" 5
    (Imap_fsm.reduction_depth Mapper.default_config);
  check Alcotest.int "2x2 window reduces in 2" 2
    (Imap_fsm.reduction_depth { Mapper.window_rows = 2; window_cols = 2 })

let fsm_timing_diagram () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "gaussian") in
  let d = Imap_fsm.timing_diagram ~max_nodes:4 Mapper.default_config dfg in
  check Alcotest.bool "mentions stages" true
    (String.length d > 0
    && String.exists (( = ) 'F') d
    && String.exists (( = ) 'R') d
    && String.exists (( = ) 'W') d);
  check Alcotest.string "state names" "reduce[3]" (Imap_fsm.state_name (Imap_fsm.Reduce 3))

(* -------------------- annealing refinement -------------------- *)

let anneal_never_worse () =
  List.iter
    (fun name ->
      let dfg = Runner.dfg_of_kernel (Workloads.find name) in
      let model = Perf_model.create dfg in
      let greedy =
        Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model)
      in
      let refined, stats =
        Mapper_anneal.refine ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc ~model greedy
      in
      check Alcotest.bool (name ^ " still valid") true
        (Placement.validate dfg refined = Ok ());
      check Alcotest.bool (name ^ " never worse") true
        (stats.Mapper_anneal.final_latency
        <= stats.Mapper_anneal.initial_latency +. 1e-9);
      check Alcotest.bool (name ^ " model describes result") true
        (Float.abs (Perf_model.iteration_latency model -. stats.Mapper_anneal.final_latency)
        < 1e-6))
    [ "nn"; "cfd"; "kmeans" ]

let anneal_deterministic () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "cfd") in
  let run () =
    let model = Perf_model.create dfg in
    let greedy =
      Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model)
    in
    let refined, _ =
      Mapper_anneal.refine ~seed:99 ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc ~model greedy
    in
    refined.Placement.assign
  in
  check Alcotest.bool "same seed, same placement" true (run () = run ())

let anneal_improves_bad_start () =
  (* Scatter a placement deliberately (far corners) and expect the search
     to claw back latency. *)
  let dfg = Runner.dfg_of_kernel (Workloads.find "nn") in
  let model = Perf_model.create dfg in
  let greedy =
    Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model)
  in
  (* Build a bad-but-valid placement: compute nodes pushed to the far
     (bottom-right) end of the array, scanning backwards for the first free
     compatible PE. *)
  let assign = Array.copy greedy.Placement.assign in
  let coords = ref [] in
  Grid.iter_coords Grid.m128 (fun c -> coords := c :: !coords);
  let remaining = ref !coords (* bottom-right first *) in
  Array.iteri
    (fun i nd ->
      if not (Isa.is_memory nd.Dfg.instr) then begin
        let cls = Isa.op_class nd.Dfg.instr in
        let rec take acc = function
          | [] -> Alcotest.fail "no compatible PE left"
          | c :: rest when Grid.supports Grid.m128 c cls ->
            remaining := List.rev_append acc rest;
            c
          | c :: rest -> take (c :: acc) rest
        in
        assign.(i) <- Placement.Pe (take [] !remaining)
      end)
    dfg.Dfg.nodes;
  let bad = Placement.make Grid.m128 Interconnect.Mesh_noc assign in
  check Alcotest.bool "bad placement is valid" true (Placement.validate dfg bad = Ok ());
  let _, stats =
    Mapper_anneal.refine ~proposals:4000 ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc
      ~model bad
  in
  check Alcotest.bool "refinement improves a scattered start" true
    (stats.Mapper_anneal.final_latency < stats.Mapper_anneal.initial_latency);
  check Alcotest.bool "bookkeeping" true
    (stats.Mapper_anneal.accepted >= stats.Mapper_anneal.improved
    && stats.Mapper_anneal.proposals = 4000)

(* -------------------- ablation -------------------- *)

let ablation_variant_semantics () =
  let k = Workloads.find "gaussian" in
  let full = Ablation.run_variant Ablation.Full k in
  let nothing = Ablation.run_variant Ablation.Nothing k in
  let no_tiling = Ablation.run_variant Ablation.No_tiling k in
  check Alcotest.bool "all variants correct" true
    (List.for_all (fun m -> m.Runner.checked = Ok ()) [ full; nothing; no_tiling ]);
  check Alcotest.bool "full fastest" true
    (full.Runner.cycles <= nothing.Runner.cycles
    && full.Runner.cycles <= no_tiling.Runner.cycles);
  check Alcotest.bool "tiling matters on a parallel kernel" true
    (no_tiling.Runner.cycles > full.Runner.cycles)

let ablation_experiment_smoke () =
  let o = Ablation.experiment ~kernels:[ Workloads.find "gaussian" ] () in
  check Alcotest.int "one summary per variant" (List.length Ablation.all_variants)
    (List.length o.Experiments.summary);
  check Alcotest.bool "full >= bare" true
    (List.assoc "ablation_full" o.Experiments.summary
    >= List.assoc "ablation_bare mapping" o.Experiments.summary)

(* -------------------- export & chart -------------------- *)

let csv_escaping () =
  let t = Tables.create [ ("a", Tables.Left); ("b", Tables.Left) ] in
  Tables.add_row t [ "plain"; "with,comma" ];
  Tables.add_rule t;
  Tables.add_row t [ "with\"quote"; "multi\nline" ];
  let csv = Export.table_to_csv t in
  check Alcotest.string "csv"
    "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",\"multi\nline\"\n" csv

let csv_summary () =
  check Alcotest.string "summary csv" "metric,value\nx,1.5\ny,2\n"
    (Export.summary_to_csv [ ("x", 1.5); ("y", 2.0) ])

let csv_outcome_and_file () =
  let o = Experiments.table1 () in
  let csv = Export.outcome_to_csv o in
  check Alcotest.bool "has header" true
    (String.length csv > 0 && String.sub csv 0 9 = "component");
  let path = Filename.temp_file "mesa" ".csv" in
  Export.write_file ~path csv;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  check Alcotest.string "file written" "component,area,power" line

let chart_rendering () =
  let c = Chart.bars ~title:"speedups" ~baseline:1.0 [ ("a", 2.0); ("bb", 0.5) ] in
  let lines = String.split_on_char '\n' c in
  check Alcotest.bool "title" true (List.hd lines = "speedups");
  check Alcotest.bool "bars drawn" true (String.exists (( = ) '#') c);
  check Alcotest.bool "baseline marker" true (String.exists (( = ) '|') c);
  let g =
    Chart.grouped ~title:"t" ~series_names:[ "m128"; "m512" ]
      [ ("k", [ 1.0; 2.0 ]) ]
  in
  check Alcotest.bool "grouped glyphs" true
    (String.exists (( = ) '#') g && String.exists (( = ) '=') g);
  check Alcotest.string "empty series" "t\n" (Chart.bars ~title:"t" [])

let suites =
  [
    ( "bitstream",
      [
        Alcotest.test_case "roundtrip on all kernels" `Quick bitstream_roundtrip_all_kernels;
        Alcotest.test_case "detects corruption" `Quick bitstream_detects_corruption;
        Alcotest.test_case "size close to model" `Quick bitstream_size_close_to_model;
        Alcotest.test_case "execution equivalence" `Quick bitstream_execution_equivalence;
        QCheck_alcotest.to_alcotest bitstream_random_loops;
      ] );
    ( "imap_fsm",
      [
        Alcotest.test_case "matches closed form" `Quick fsm_matches_closed_form;
        Alcotest.test_case "stage structure" `Quick fsm_stage_structure;
        Alcotest.test_case "reduction depth" `Quick fsm_reduction_depth;
        Alcotest.test_case "timing diagram" `Quick fsm_timing_diagram;
      ] );
    ( "mapper_anneal",
      [
        Alcotest.test_case "never worse" `Quick anneal_never_worse;
        Alcotest.test_case "deterministic" `Quick anneal_deterministic;
        Alcotest.test_case "improves a scattered start" `Quick anneal_improves_bad_start;
      ] );
    ( "ablation",
      [
        Alcotest.test_case "variant semantics" `Quick ablation_variant_semantics;
        Alcotest.test_case "experiment smoke" `Slow ablation_experiment_smoke;
      ] );
    ( "export",
      [
        Alcotest.test_case "csv escaping" `Quick csv_escaping;
        Alcotest.test_case "summary csv" `Quick csv_summary;
        Alcotest.test_case "outcome to file" `Quick csv_outcome_and_file;
        Alcotest.test_case "chart rendering" `Quick chart_rendering;
      ] );
  ]
