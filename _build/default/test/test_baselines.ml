let check = Alcotest.check

(* -------------------- OpenCGRA modulo scheduler -------------------- *)

let schedule_of name =
  let dfg = Runner.dfg_of_kernel (Workloads.find name) in
  (dfg, Result.get_ok (Opencgra.schedule dfg ~grid:Grid.m128))

let opencgra_mii_bounds () =
  let dfg, s = schedule_of "nn" in
  check Alcotest.bool "II >= resource MII" true
    (s.Opencgra.ii >= Opencgra.resource_mii dfg ~pes:(Grid.pe_count Grid.m128));
  check Alcotest.bool "II >= recurrence MII" true (s.Opencgra.ii >= Opencgra.recurrence_mii dfg);
  check Alcotest.bool "makespan >= II" true (s.Opencgra.makespan >= s.Opencgra.ii)

let opencgra_schedule_validity () =
  List.iter
    (fun (k : Kernel.t) ->
      let dfg = Runner.dfg_of_kernel k in
      match Opencgra.schedule dfg ~grid:Grid.m128 with
      | Error e -> Alcotest.failf "%s: %s" k.Kernel.name e
      | Ok s ->
        (* No two ops share a (PE, slot mod II). *)
        let seen = Hashtbl.create 64 in
        Array.iteri
          (fun i (pe, t) ->
            let key = (pe, t mod s.Opencgra.ii) in
            if Hashtbl.mem seen key then
              Alcotest.failf "%s: node %d double-books %d/%d" k.Kernel.name i pe
                (t mod s.Opencgra.ii);
            Hashtbl.replace seen key ())
          s.Opencgra.slots;
        (* Dependencies respect schedule order. *)
        Array.iteri
          (fun j nd ->
            Array.iter
              (function
                | Dfg.Node i ->
                  let _, ti = s.Opencgra.slots.(i) and _, tj = s.Opencgra.slots.(j) in
                  if tj <= ti then
                    Alcotest.failf "%s: node %d scheduled before producer %d" k.Kernel.name j i
                | Dfg.Reg_in _ -> ())
              nd.Dfg.srcs)
          dfg.Dfg.nodes)
    (Workloads.opencgra_compatible ())

let opencgra_small_grid_raises_ii () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "kmeans") in
  let small = Grid.make ~rows:2 ~cols:2 () in
  let s_small = Result.get_ok (Opencgra.schedule dfg ~grid:small) in
  let s_big = Result.get_ok (Opencgra.schedule dfg ~grid:Grid.m128) in
  check Alcotest.bool "fewer PEs, larger II" true (s_small.Opencgra.ii > s_big.Opencgra.ii);
  check Alcotest.bool "resource MII reflects PEs" true
    (s_small.Opencgra.ii >= Opencgra.resource_mii dfg ~pes:4)

let opencgra_recurrence_floor () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "nw") in
  (* nw carries a running max through registers: the recurrence bound must
     exceed the trivial 1. *)
  check Alcotest.bool "recurrence MII > 1" true (Opencgra.recurrence_mii dfg > 1)

let opencgra_ipc_definition () =
  let dfg, s = schedule_of "gaussian" in
  check (Alcotest.float 1e-9) "ipc = nodes / makespan"
    (float_of_int (Dfg.node_count dfg) /. float_of_int s.Opencgra.makespan)
    (Opencgra.ipc dfg s)

(* -------------------- DynaSpAM -------------------- *)

let dynaspam_qualification () =
  let nn = Runner.dfg_of_kernel (Workloads.find "nn") in
  let kmeans = Runner.dfg_of_kernel (Workloads.find "kmeans") in
  let cfg = { Dynaspam.default_config with Dynaspam.window = 24 } in
  let r_nn = Dynaspam.run ~config:cfg nn ~iterations:100 in
  let r_km = Dynaspam.run ~config:cfg kmeans ~iterations:100 in
  check Alcotest.bool "nn qualifies" true r_nn.Dynaspam.qualified;
  check Alcotest.bool "kmeans exceeds the window" false r_km.Dynaspam.qualified

let dynaspam_analytic_model () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "nn") in
  let r100 = Dynaspam.run dfg ~iterations:100 in
  let r200 = Dynaspam.run dfg ~iterations:200 in
  check Alcotest.bool "ii at least 1" true (r100.Dynaspam.ii >= 1.0);
  (* Steady state: cycles grow by II per extra iteration. *)
  check Alcotest.bool "linear growth" true
    (abs (r200.Dynaspam.cycles - r100.Dynaspam.cycles
         - int_of_float (100.0 *. r100.Dynaspam.ii))
    <= 2);
  (* nn's fsqrt occupies the divider: II reflects it. *)
  check Alcotest.bool "iterative unit bound" true
    (r100.Dynaspam.ii >= float_of_int Dynaspam.default_config.Dynaspam.div_occupancy /. 2.0)

let dynaspam_runner_measurement () =
  let k = Workloads.find "nn" in
  let base = Runner.single_core k in
  let dyn = Runner.dynaspam k in
  (* nn is memory/latency bound, so the fabric roughly ties the core; the
     +300-cycle control-transfer overhead is the only slack allowed. *)
  check Alcotest.bool "ties or beats the core" true
    (dyn.Runner.cycles <= base.Runner.cycles + 400);
  check Alcotest.bool "outputs correct" true (dyn.Runner.checked = Ok ());
  let km =
    Runner.dynaspam
      ~config:{ Dynaspam.default_config with Dynaspam.window = 24 }
      (Workloads.find "kmeans")
  in
  check Alcotest.string "unqualified falls back" "DynaSpAM (not qualified)" km.Runner.label

let suites =
  [
    ( "opencgra",
      [
        Alcotest.test_case "MII bounds" `Quick opencgra_mii_bounds;
        Alcotest.test_case "schedule validity" `Quick opencgra_schedule_validity;
        Alcotest.test_case "small grid raises II" `Quick opencgra_small_grid_raises_ii;
        Alcotest.test_case "recurrence floor" `Quick opencgra_recurrence_floor;
        Alcotest.test_case "ipc definition" `Quick opencgra_ipc_definition;
      ] );
    ( "dynaspam",
      [
        Alcotest.test_case "qualification window" `Quick dynaspam_qualification;
        Alcotest.test_case "analytic model" `Quick dynaspam_analytic_model;
        Alcotest.test_case "runner measurement" `Quick dynaspam_runner_measurement;
      ] );
  ]
