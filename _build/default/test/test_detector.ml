let check = Alcotest.check

(* -------------------- trace cache -------------------- *)

let trace_cache_capture () =
  let tc = Trace_cache.create ~capacity:16 in
  Trace_cache.set_region tc ~entry:0x1000 ~last:0x100C;
  check Alcotest.bool "incomplete at start" false (Trace_cache.complete tc);
  Trace_cache.observe tc ~addr:0x1000 ~word:1l;
  Trace_cache.observe tc ~addr:0x1004 ~word:2l;
  Trace_cache.observe tc ~addr:0x1010 ~word:9l; (* outside window: ignored *)
  check (Alcotest.list Alcotest.int) "missing" [ 0x1008; 0x100C ] (Trace_cache.missing tc);
  Trace_cache.fill_from tc (fun addr -> Some (Int32.of_int (addr land 0xFF)));
  check Alcotest.bool "complete" true (Trace_cache.complete tc);
  check (Alcotest.array Alcotest.int32) "contents in order" [| 1l; 2l; 8l; 0xCl |]
    (Trace_cache.words tc)

let trace_cache_idempotent () =
  let tc = Trace_cache.create ~capacity:4 in
  Trace_cache.set_region tc ~entry:0 ~last:0;
  Trace_cache.observe tc ~addr:0 ~word:5l;
  Trace_cache.observe tc ~addr:0 ~word:6l; (* second write ignored *)
  check (Alcotest.array Alcotest.int32) "first write sticks" [| 5l |] (Trace_cache.words tc);
  check Alcotest.int "one fill" 1 (Trace_cache.fills tc)

let trace_cache_capacity () =
  let tc = Trace_cache.create ~capacity:4 in
  Alcotest.check_raises "window too large"
    (Invalid_argument "Trace_cache.set_region: window exceeds capacity") (fun () ->
      Trace_cache.set_region tc ~entry:0 ~last:16)

(* -------------------- loop detector -------------------- *)

let feed_program prog machine detector max_steps =
  let verdicts = ref [] in
  let rec go n =
    if n = 0 then ()
    else
      match Interp.step prog machine with
      | Error _ -> ()
      | Ok ev ->
        (match Loop_detector.feed detector ev with
        | Some v -> verdicts := v :: !verdicts
        | None -> ());
        go (n - 1)
  in
  go max_steps;
  List.rev !verdicts

let accepts_hot_loop () =
  let k = Workloads.find "gaussian" in
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let detector = Loop_detector.create k.Kernel.program in
  match feed_program k.Kernel.program m detector 2000 with
  | [ Loop_detector.Accepted region ] ->
    check Alcotest.int "entry at loop" (Program.entry k.Kernel.program) region.Region.entry;
    check Alcotest.int "nine instructions" 9 (Region.size region);
    check Alcotest.bool "pragma seen" true (region.Region.pragma = Some Program.Omp_parallel);
    check Alcotest.bool "observed enough" true (region.Region.observed_iterations >= 8)
  | [] -> Alcotest.fail "no verdict"
  | _ -> Alcotest.fail "unexpected verdicts"

let verdict_is_single () =
  let k = Workloads.find "gaussian" in
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let detector = Loop_detector.create k.Kernel.program in
  let verdicts = feed_program k.Kernel.program m detector 100000 in
  check Alcotest.int "exactly one verdict" 1 (List.length verdicts)

let rejects_loop_with_jump () =
  let b = Asm.create () in
  let open Reg in
  Asm.label b "loop";
  Asm.jal b ra "sub";
  Asm.label b "sub";
  Asm.addi b t0 t0 1;
  Asm.blt b t0 a0 "loop";
  Asm.ecall b;
  let prog = Asm.assemble b in
  let m = Machine.create ~pc:(Program.entry prog) (Main_memory.create ~size:4096 ()) in
  Machine.set_x m a0 100;
  let detector = Loop_detector.create prog in
  match feed_program prog m detector 5000 with
  | [ Loop_detector.Rejected { reason; _ } ] ->
    check Alcotest.bool "C2 reason" true
      (String.length reason >= 2 && String.sub reason 0 2 = "C2")
  | _ -> Alcotest.fail "expected a C2 rejection"

let rejects_inner_loop () =
  (* Outer loop containing an inner loop: the inner is accepted (it is a
     plain loop); the outer must be rejected for nesting. *)
  let b = Asm.create () in
  let open Reg in
  Asm.label b "outer";
  Asm.li b t1 0;
  Asm.label b "inner";
  Asm.addi b t1 t1 1;
  Asm.addi b t2 t2 1;
  Asm.addi b t3 t3 1;
  Asm.blt b t1 a1 "inner";
  Asm.addi b t0 t0 1;
  Asm.blt b t0 a0 "outer";
  Asm.ecall b;
  let prog = Asm.assemble b in
  let m = Machine.create ~pc:(Program.entry prog) (Main_memory.create ~size:4096 ()) in
  Machine.set_x m a0 50;
  Machine.set_x m a1 20;
  let detector = Loop_detector.create prog in
  let verdicts = feed_program prog m detector 50000 in
  let accepted_entries =
    List.filter_map
      (function Loop_detector.Accepted r -> Some r.Region.entry | _ -> None)
      verdicts
  in
  let rejected =
    List.filter_map
      (function Loop_detector.Rejected { entry; reason } -> Some (entry, reason) | _ -> None)
      verdicts
  in
  check (Alcotest.list Alcotest.int) "inner accepted" [ Program.symbol prog "inner" ]
    accepted_entries;
  check Alcotest.bool "outer rejected for nesting" true
    (List.exists
       (fun (e, reason) ->
         e = Program.symbol prog "outer"
         && String.length reason >= 2
         && String.sub reason 0 2 = "C2")
       rejected)

let rejects_memory_only_loop () =
  (* A copy loop that is almost all memory traffic fails C3. *)
  let b = Asm.create () in
  let open Reg in
  Asm.label b "loop";
  Asm.lw b t1 0 a0;
  Asm.lw b t2 4 a0;
  Asm.lw b t3 8 a0;
  Asm.lw b t4 12 a0;
  Asm.sw b t1 0 a1;
  Asm.sw b t2 4 a1;
  Asm.sw b t3 8 a1;
  Asm.sw b t4 12 a1;
  Asm.addi b a0 a0 16;
  Asm.addi b a1 a1 16;
  Asm.bltu b a0 a2 "loop";
  Asm.ecall b;
  let prog = Asm.assemble b in
  let mem = Main_memory.create () in
  let m = Machine.create ~pc:(Program.entry prog) mem in
  Machine.set_args m [ (a0, 0x1000_0); (a1, 0x2000_0); (a2, 0x1000_0 + 4096) ];
  let detector = Loop_detector.create prog in
  match feed_program prog m detector 50000 with
  | [ Loop_detector.Rejected { reason; _ } ] ->
    check Alcotest.bool "C3 reason" true
      (String.length reason >= 2 && String.sub reason 0 2 = "C3")
  | _ -> Alcotest.fail "expected a C3 rejection"

let rejects_oversized_loop () =
  let detector_cfg = { Loop_detector.default_config with Loop_detector.capacity = 8 } in
  let k = Workloads.find "kmeans" in
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let detector = Loop_detector.create ~config:detector_cfg k.Kernel.program in
  match feed_program k.Kernel.program m detector 5000 with
  | [ Loop_detector.Rejected { reason; _ } ] ->
    check Alcotest.bool "C1 reason" true
      (String.length reason >= 2 && String.sub reason 0 2 = "C1")
  | _ -> Alcotest.fail "expected a C1 rejection"

let blacklist_is_respected () =
  let k = Workloads.find "gaussian" in
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let detector = Loop_detector.create k.Kernel.program in
  Loop_detector.blacklist detector (Program.entry k.Kernel.program);
  check Alcotest.bool "blacklisted" true
    (Loop_detector.is_blacklisted detector (Program.entry k.Kernel.program));
  let verdicts = feed_program k.Kernel.program m detector 20000 in
  check Alcotest.int "no verdicts" 0 (List.length verdicts)

let suites =
  [
    ( "trace_cache",
      [
        Alcotest.test_case "capture" `Quick trace_cache_capture;
        Alcotest.test_case "idempotent" `Quick trace_cache_idempotent;
        Alcotest.test_case "capacity" `Quick trace_cache_capacity;
      ] );
    ( "loop_detector",
      [
        Alcotest.test_case "accepts hot loop" `Quick accepts_hot_loop;
        Alcotest.test_case "one verdict per entry" `Quick verdict_is_single;
        Alcotest.test_case "rejects jumps (C2)" `Quick rejects_loop_with_jump;
        Alcotest.test_case "rejects nesting (C2)" `Quick rejects_inner_loop;
        Alcotest.test_case "rejects memory-only (C3)" `Quick rejects_memory_only_loop;
        Alcotest.test_case "rejects oversized (C1)" `Quick rejects_oversized_loop;
        Alcotest.test_case "blacklist respected" `Quick blacklist_is_respected;
      ] );
  ]
