let check = Alcotest.check

let dfg_of_kernel name = Runner.dfg_of_kernel (Workloads.find name)

let maps_every_kernel_every_grid () =
  List.iter
    (fun (k : Kernel.t) ->
      let dfg = Runner.dfg_of_kernel k in
      List.iter
        (fun grid ->
          let model = Perf_model.create dfg in
          match Mapper.map ~grid ~kind:Interconnect.Mesh_noc model with
          | Ok p ->
            check Alcotest.bool
              (Printf.sprintf "%s on %s valid" k.Kernel.name grid.Grid.name)
              true
              (Placement.validate dfg p = Ok ())
          | Error e -> Alcotest.failf "%s on %s: %s" k.Kernel.name grid.Grid.name e)
        [ Grid.m64; Grid.m128; Grid.m512 ])
    (Workloads.all ())

let mapping_deterministic () =
  let dfg = dfg_of_kernel "nn" in
  let p1 = Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc (Perf_model.create dfg)) in
  let p2 = Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc (Perf_model.create dfg)) in
  check Alcotest.bool "same placement" true (p1.Placement.assign = p2.Placement.assign)

let consumers_placed_near_producers () =
  (* The greedy objective should keep single-consumer chains tight: most
     data edges land within the local-link reach. *)
  let dfg = dfg_of_kernel "nn" in
  let p = Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc (Perf_model.create dfg)) in
  let compute_edges =
    List.filter
      (fun (i, j, k) ->
        (match k with Dfg.Data _ -> true | _ -> false)
        && (not (Dfg.is_memory_node dfg i))
        && not (Dfg.is_memory_node dfg j))
      (Dfg.edges dfg)
  in
  let close =
    List.filter (fun (i, j, _) -> Placement.transfer p i j <= 2) compute_edges
  in
  check Alcotest.bool "most compute edges within 2 hops" true
    (2 * List.length close >= List.length compute_edges)

let fails_when_grid_too_small () =
  let dfg = dfg_of_kernel "kmeans" in
  (* ~30 compute nodes cannot fit a 3x2 grid. *)
  let tiny = Grid.make ~rows:3 ~cols:2 () in
  let model = Perf_model.create dfg in
  check Alcotest.bool "mapping fails" true
    (Result.is_error (Mapper.map ~grid:tiny ~kind:Interconnect.Mesh_noc model))

let fails_without_ls_entries () =
  let dfg = dfg_of_kernel "nn" in
  let g = Grid.m64 in
  let starved = { g with Grid.ls_entries = 1 } in
  let model = Perf_model.create dfg in
  check Alcotest.bool "LS starvation fails" true
    (Result.is_error (Mapper.map ~grid:starved ~kind:Interconnect.Mesh_noc model))

let installs_transfer_estimates () =
  let dfg = dfg_of_kernel "gaussian" in
  let model = Perf_model.create dfg in
  let p = Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model) in
  List.iter
    (fun (i, j, _) ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "edge %d->%d estimate" i j)
        (Placement.transfer_f p i j)
        (Perf_model.transfer model i j))
    (Dfg.edges dfg)

let data_driven_anchoring () =
  (* Make one load extremely slow; the remap should not be worse under the
     new weights than the naive map evaluated under the same weights. *)
  let dfg = dfg_of_kernel "gaussian" in
  let naive = Perf_model.create dfg in
  let naive_p = Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc naive) in
  ignore naive_p;
  let naive_latency = Perf_model.iteration_latency naive in
  let informed = Perf_model.create dfg in
  (* Find the first load and report a 60-cycle AMAT for it. *)
  Array.iteri
    (fun i nd -> if Isa.is_load nd.Dfg.instr then Perf_model.observe_op informed i 60.0)
    dfg.Dfg.nodes;
  let _ = Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc informed) in
  let informed_latency = Perf_model.iteration_latency informed in
  check Alcotest.bool "informed map no worse than naive + measurement" true
    (informed_latency >= naive_latency)

let window_fallback_large_graph () =
  (* A wide graph (many independent chains) forces the window to overflow
     and exercises the global-scan fallback; the result must stay valid. *)
  let b = Asm.create () in
  let open Reg in
  Asm.label b "loop";
  for i = 0 to 20 do
    Asm.addi b (6 + (i mod 10)) (6 + ((i + 1) mod 10)) i
  done;
  Asm.addi b t0 t0 1;
  Asm.blt b t0 a3 "loop";
  Asm.ecall b;
  let prog = Asm.assemble b in
  let region =
    {
      Region.entry = Program.base prog;
      back_branch_addr = Program.base prog + (4 * 22);
      instrs = Array.sub (Program.code prog) 0 23;
      pragma = None;
      observed_iterations = 8;
    }
  in
  let dfg = Ldfg.build_exn region in
  let tiny = Grid.make ~rows:6 ~cols:4 () in
  let model = Perf_model.create dfg in
  match Mapper.map ~grid:tiny ~kind:Interconnect.Mesh_noc model with
  | Ok p -> check Alcotest.bool "fallback placement valid" true (Placement.validate dfg p = Ok ())
  | Error e -> Alcotest.failf "unexpected failure: %s" e

let map_cycles_model () =
  let dfg = dfg_of_kernel "nn" in
  let c = Mapper.map_cycles Mapper.default_config dfg in
  (* Figure 8: a handful of FSM stages per instruction. *)
  check Alcotest.int "9 cycles per instruction" (9 * Dfg.node_count dfg) c

let mapper_random_loops =
  QCheck2.Test.make ~name:"mapper valid on random loops" ~count:100
    ~print:Gen.loop_spec_print Gen.loop_spec (fun spec ->
      let prog, _ = Gen.build_loop spec in
      let code = Program.code prog in
      let n_loop =
        1
        + (Array.to_list code
          |> List.mapi (fun i x -> (i, x))
          |> List.find (fun (_, x) ->
                 match x with Isa.Branch (_, _, _, o) -> o < 0 | _ -> false)
          |> fst)
      in
      let region =
        {
          Region.entry = Program.base prog;
          back_branch_addr = Program.base prog + (4 * (n_loop - 1));
          instrs = Array.sub code 0 n_loop;
          pragma = None;
          observed_iterations = 8;
        }
      in
      match Ldfg.build region with
      | Error _ -> false
      | Ok dfg -> (
        match Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc (Perf_model.create dfg) with
        | Ok p -> Placement.validate dfg p = Ok ()
        | Error _ -> false))

let suites =
  [
    ( "mapper",
      [
        Alcotest.test_case "maps all kernels on all grids" `Quick maps_every_kernel_every_grid;
        Alcotest.test_case "deterministic" `Quick mapping_deterministic;
        Alcotest.test_case "locality objective" `Quick consumers_placed_near_producers;
        Alcotest.test_case "fails when grid too small" `Quick fails_when_grid_too_small;
        Alcotest.test_case "fails without LS entries" `Quick fails_without_ls_entries;
        Alcotest.test_case "installs transfer estimates" `Quick installs_transfer_estimates;
        Alcotest.test_case "data-driven anchoring" `Quick data_driven_anchoring;
        Alcotest.test_case "window fallback" `Quick window_fallback_large_graph;
        Alcotest.test_case "map cycles model" `Quick map_cycles_model;
        QCheck_alcotest.to_alcotest mapper_random_loops;
      ] );
  ]
