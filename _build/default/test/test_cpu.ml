let check = Alcotest.check

(* -------------------- branch predictor -------------------- *)

let predictor_learns_bias () =
  let p = Predictor.create () in
  for _ = 1 to 100 do
    ignore (Predictor.predict_and_update p 0x1000 true)
  done;
  check Alcotest.bool "predicts taken" true (Predictor.predict p 0x1000);
  check Alcotest.bool "few mispredicts" true (Predictor.mispredicts p <= 2);
  check Alcotest.int "lookups counted" 100 (Predictor.lookups p)

let predictor_loop_exit_pattern () =
  let p = Predictor.create () in
  (* 10 iterations taken, then one not-taken exit, repeated. *)
  let mispredicts_before = Predictor.mispredicts p in
  for _ = 1 to 5 do
    for _ = 1 to 10 do
      ignore (Predictor.predict_and_update p 0x2000 true)
    done;
    ignore (Predictor.predict_and_update p 0x2000 false)
  done;
  let m = Predictor.mispredicts p - mispredicts_before in
  check Alcotest.bool "roughly one mispredict per exit" true (m >= 5 && m <= 11)

let predictor_aliasing_distinct () =
  let p = Predictor.create () in
  for _ = 1 to 50 do
    ignore (Predictor.predict_and_update p 0x1000 true);
    ignore (Predictor.predict_and_update p 0x1004 false)
  done;
  check Alcotest.bool "both learned" true
    (Predictor.predict p 0x1000 && not (Predictor.predict p 0x1004))

let predictor_pow2_check () =
  Alcotest.check_raises "entries must be a power of two"
    (Invalid_argument "Predictor.create: entries must be a power of two") (fun () ->
      ignore (Predictor.create ~entries:1000 ()))

(* -------------------- OoO model -------------------- *)

let run_events cfg events =
  let hier = Hierarchy.create Hierarchy.default_config in
  let model = Ooo_model.create cfg hier in
  List.iter (Ooo_model.feed model) events;
  Ooo_model.summary model

let ev ?(addr = 0x1000) ?mem_addr ?taken instr =
  { Interp.addr; instr; mem_addr; taken; next_pc = addr + 4 }

let independent_adds n =
  List.init n (fun i -> ev ~addr:(0x1000 + (4 * i)) (Isa.Itype (Isa.ADDI, 1 + (i mod 8), 0, 1)))

let ooo_width_bound () =
  let s = run_events Ooo_model.default_config (independent_adds 400) in
  let cyc = float_of_int s.Ooo_model.cycles in
  check Alcotest.bool "near width-limited" true (cyc >= 100.0 && cyc <= 140.0)

let ooo_dependent_chain () =
  (* addi x1, x1, 1 repeated: one per cycle no matter the width. *)
  let events =
    List.init 200 (fun i -> ev ~addr:(0x1000 + (4 * i)) (Isa.Itype (Isa.ADDI, 1, 1, 1)))
  in
  let s = run_events Ooo_model.default_config events in
  check Alcotest.bool "serialized" true (s.Ooo_model.cycles >= 200)

let ooo_divider_occupancy () =
  let events =
    List.init 20 (fun i -> ev ~addr:(0x1000 + (4 * i)) (Isa.Rtype (Isa.DIV, 1 + (i mod 4), 5, 6)))
  in
  let s = run_events Ooo_model.default_config events in
  (* One unpipelined divider: ~20 cycles each. *)
  check Alcotest.bool "divider is the bottleneck" true (s.Ooo_model.cycles >= 20 * 20)

let ooo_mispredict_costs () =
  (* Alternating taken/not-taken branch: unpredictable. *)
  let bad =
    List.init 200 (fun i ->
        ev ~addr:0x1000 ~taken:(i mod 2 = 0) (Isa.Branch (Isa.BEQ, 1, 2, 16)))
  in
  let good =
    List.init 200 (fun _ -> ev ~addr:0x1000 ~taken:true (Isa.Branch (Isa.BEQ, 1, 2, 16)))
  in
  let sb = run_events Ooo_model.default_config bad in
  let sg = run_events Ooo_model.default_config good in
  check Alcotest.bool "mispredicts recorded" true (sb.Ooo_model.mispredicts > 50);
  check Alcotest.bool "mispredicts cost cycles" true (sb.Ooo_model.cycles > 2 * sg.Ooo_model.cycles)

let ooo_rob_limits_miss_overlap () =
  (* Strided cold loads: a small ROB cannot hide DRAM misses. *)
  let loads n =
    List.init n (fun i ->
        ev ~addr:(0x1000 + (4 * i)) ~mem_addr:(i * 64) (Isa.Load (Isa.LW, 1 + (i mod 8), 20, 0)))
  in
  let big = run_events { Ooo_model.default_config with Ooo_model.rob_size = 256 } (loads 200) in
  let small = run_events { Ooo_model.default_config with Ooo_model.rob_size = 8 } (loads 200) in
  check Alcotest.bool "bigger ROB faster" true (big.Ooo_model.cycles < small.Ooo_model.cycles)

let ooo_counters () =
  let events =
    [
      { (ev (Isa.Load (Isa.LW, 1, 2, 0))) with Interp.mem_addr = Some 0 };
      { (ev (Isa.Store (Isa.SW, 1, 2, 0))) with Interp.mem_addr = Some 4 };
      ev (Isa.Ftype (Isa.FADD, 1, 2, 3));
      ev (Isa.Rtype (Isa.ADD, 1, 2, 3));
      ev ~taken:false (Isa.Branch (Isa.BEQ, 1, 2, 8));
    ]
  in
  let s = run_events Ooo_model.default_config events in
  check Alcotest.int "loads" 1 s.Ooo_model.loads;
  check Alcotest.int "stores" 1 s.Ooo_model.stores;
  check Alcotest.int "fp" 1 s.Ooo_model.fp_ops;
  check Alcotest.int "int" 1 s.Ooo_model.int_ops;
  check Alcotest.int "branches" 1 s.Ooo_model.branches;
  check Alcotest.int "instructions" 5 s.Ooo_model.instructions

let ooo_ipc () =
  let s = run_events Ooo_model.default_config (independent_adds 100) in
  check Alcotest.bool "ipc positive" true (Ooo_model.ipc s > 1.0);
  let empty = run_events Ooo_model.default_config [] in
  check (Alcotest.float 0.0) "empty ipc" 0.0 (Ooo_model.ipc empty)

(* -------------------- coupled run -------------------- *)

let cpu_run_end_to_end () =
  let b = Asm.create () in
  let open Reg in
  Asm.li b t0 0;
  Asm.label b "loop";
  Asm.addi b t0 t0 1;
  Asm.blt b t0 a0 "loop";
  Asm.ecall b;
  let prog = Asm.assemble b in
  let m = Machine.create ~pc:(Program.entry prog) (Main_memory.create ~size:4096 ()) in
  Machine.set_x m a0 100;
  let r = Cpu_run.run prog m in
  check Alcotest.bool "halted" true (r.Cpu_run.halt = Interp.Ecall_halt);
  check Alcotest.int "architecture correct" 100 (Machine.get_x m t0);
  check Alcotest.bool "cycles sane" true
    (Cpu_run.cycles r > 50 && Cpu_run.cycles r < 2000);
  check Alcotest.bool "ipc sane" true (Cpu_run.ipc r > 0.1 && Cpu_run.ipc r < 4.0)

let suites =
  [
    ( "predictor",
      [
        Alcotest.test_case "learns bias" `Quick predictor_learns_bias;
        Alcotest.test_case "loop exit pattern" `Quick predictor_loop_exit_pattern;
        Alcotest.test_case "distinct branches" `Quick predictor_aliasing_distinct;
        Alcotest.test_case "power-of-two check" `Quick predictor_pow2_check;
      ] );
    ( "ooo_model",
      [
        Alcotest.test_case "width bound" `Quick ooo_width_bound;
        Alcotest.test_case "dependent chain serializes" `Quick ooo_dependent_chain;
        Alcotest.test_case "divider occupancy" `Quick ooo_divider_occupancy;
        Alcotest.test_case "mispredicts cost" `Quick ooo_mispredict_costs;
        Alcotest.test_case "ROB limits miss overlap" `Quick ooo_rob_limits_miss_overlap;
        Alcotest.test_case "class counters" `Quick ooo_counters;
        Alcotest.test_case "ipc" `Quick ooo_ipc;
        Alcotest.test_case "coupled run" `Quick cpu_run_end_to_end;
      ] );
  ]
