let check = Alcotest.check

let instr_testable = Alcotest.testable Isa.pp Isa.equal

(* Golden encodings cross-checked against the RISC-V specification /
   binutils output. *)
let golden_encodings () =
  let cases =
    [
      (Isa.Itype (Isa.ADDI, 1, 0, 1), 0x00100093l);          (* addi ra, zero, 1 *)
      (Isa.Rtype (Isa.ADD, 3, 1, 2), 0x002081B3l);           (* add gp, ra, sp *)
      (Isa.Rtype (Isa.SUB, 3, 1, 2), 0x402081B3l);           (* sub gp, ra, sp *)
      (Isa.Rtype (Isa.MUL, 10, 11, 12), 0x02C58533l);        (* mul a0, a1, a2 *)
      (Isa.Load (Isa.LW, 5, 10, 8), 0x00852283l);            (* lw t0, 8(a0) *)
      (Isa.Store (Isa.SW, 5, 10, 12), 0x00552623l);          (* sw t0, 12(a0) *)
      (Isa.Branch (Isa.BNE, 5, 6, -4), 0xFE629EE3l);         (* bne t0, t1, -4 *)
      (Isa.Lui (7, 0x12345000), 0x123453B7l);                (* lui t2, 0x12345 *)
      (Isa.Jal (1, 2048), 0x001000EFl);                      (* jal ra, 2048 *)
      (Isa.Jalr (0, 1, 0), 0x00008067l);                     (* ret *)
      (Isa.Ftype (Isa.FADD, 1, 2, 3), 0x003170D3l);          (* fadd.s ft1, ft2, ft3 *)
      (Isa.Flw (2, 10, 4), 0x00452107l);                     (* flw ft2, 4(a0) *)
      (Isa.Fsw (2, 10, 4), 0x00252227l);                     (* fsw ft2, 4(a0) *)
      (Isa.Ecall, 0x00000073l);
      (Isa.Ebreak, 0x00100073l);
    ]
  in
  List.iter
    (fun (instr, word) ->
      check Alcotest.int32
        (Format.asprintf "%a" Isa.pp instr)
        word (Encode.to_word instr))
    cases

let golden_decodings () =
  List.iter
    (fun (word, instr) ->
      match Decode.of_word word with
      | Ok got -> check instr_testable (Printf.sprintf "0x%lx" word) instr got
      | Error e -> Alcotest.failf "decode 0x%lx failed: %s" word e)
    [
      (0x00100093l, Isa.Itype (Isa.ADDI, 1, 0, 1));
      (0xFE629EE3l, Isa.Branch (Isa.BNE, 5, 6, -4));
      (0x00008067l, Isa.Jalr (0, 1, 0));
      (0x0000100Fl, Isa.Fence);
    ]

let decode_rejects_garbage () =
  List.iter
    (fun w ->
      match Decode.of_word w with
      | Ok i -> Alcotest.failf "0x%lx should not decode (got %s)" w (Disasm.to_string i)
      | Error _ -> ())
    [ 0xFFFFFFFFl; 0x0000007Fl; 0x0l ]

let roundtrip =
  QCheck2.Test.make ~name:"encode/decode roundtrip" ~count:2000 Gen.instr (fun i ->
      match Decode.of_word (Encode.to_word i) with
      | Ok i' -> Isa.equal i i'
      | Error _ -> false)

let encode_range_checks () =
  let expect_fail name f =
    match f () with
    | exception Encode.Unencodable _ -> ()
    | _ -> Alcotest.failf "%s should be unencodable" name
  in
  expect_fail "imm12 overflow" (fun () -> Encode.to_word (Isa.Itype (Isa.ADDI, 1, 1, 4096)));
  expect_fail "bad register" (fun () -> Encode.to_word (Isa.Rtype (Isa.ADD, 32, 0, 0)));
  expect_fail "odd branch offset" (fun () -> Encode.to_word (Isa.Branch (Isa.BEQ, 0, 0, 3)));
  expect_fail "branch too far" (fun () -> Encode.to_word (Isa.Branch (Isa.BEQ, 0, 0, 8192)));
  expect_fail "lui low bits" (fun () -> Encode.to_word (Isa.Lui (1, 0x123)))

let reg_names () =
  check Alcotest.string "zero" "zero" (Reg.name 0);
  check Alcotest.string "a0" "a0" (Reg.name 10);
  check Alcotest.string "t6" "t6" (Reg.name 31);
  check Alcotest.string "fa0" "fa0" (Reg.fname 10);
  check Alcotest.bool "valid" true (Reg.valid 31);
  check Alcotest.bool "invalid" false (Reg.valid 32)

let isa_classification () =
  check Alcotest.bool "lw is memory" true (Isa.is_memory (Isa.Load (Isa.LW, 1, 2, 0)));
  check Alcotest.bool "lw is load" true (Isa.is_load (Isa.Load (Isa.LW, 1, 2, 0)));
  check Alcotest.bool "sw is store" true (Isa.is_store (Isa.Store (Isa.SW, 1, 2, 0)));
  check Alcotest.bool "beq is control" true (Isa.is_control (Isa.Branch (Isa.BEQ, 1, 2, 4)));
  check Alcotest.bool "fadd is fp" true (Isa.is_fp (Isa.Ftype (Isa.FADD, 1, 2, 3)));
  check Alcotest.bool "add not fp" false (Isa.is_fp (Isa.Rtype (Isa.ADD, 1, 2, 3)))

let isa_reads_writes () =
  let add = Isa.Rtype (Isa.ADD, 3, 1, 2) in
  check (Alcotest.option Alcotest.int) "add writes" (Some 3) (Isa.writes_int add);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool)) "add reads"
    [ (1, true); (2, true) ]
    (List.map (fun (r, f) -> (r, f = `Int)) (Isa.reads add));
  let fsw = Isa.Fsw (4, 10, 8) in
  check (Alcotest.option Alcotest.int) "fsw no int dest" None (Isa.writes_int fsw);
  check (Alcotest.option Alcotest.int) "fsw no fp dest" None (Isa.writes_fp fsw);
  check Alcotest.int "fsw reads both files" 2 (List.length (Isa.reads fsw));
  let fsqrt = Isa.Ftype (Isa.FSQRT, 1, 2, 0) in
  check Alcotest.int "fsqrt single source" 1 (List.length (Isa.reads fsqrt))

let isa_branch_offset () =
  check (Alcotest.option Alcotest.int) "branch" (Some (-8))
    (Isa.branch_offset (Isa.Branch (Isa.BEQ, 1, 2, -8)));
  check (Alcotest.option Alcotest.int) "jal" (Some 16) (Isa.branch_offset (Isa.Jal (1, 16)));
  check (Alcotest.option Alcotest.int) "add" None (Isa.branch_offset (Isa.Rtype (Isa.ADD, 1, 2, 3)))

let asm_labels_and_branches () =
  let b = Asm.create ~base:0x2000 () in
  Asm.label b "top";
  Asm.addi b Reg.t0 Reg.t0 1;
  Asm.blt b Reg.t0 Reg.a0 "top";
  Asm.j b "end";
  Asm.nop b;
  Asm.label b "end";
  Asm.ret b;
  let prog = Asm.assemble b in
  check Alcotest.int "base" 0x2000 (Program.base prog);
  check instr_testable "backward branch" (Isa.Branch (Isa.BLT, 5, 10, -4))
    (Program.fetch_exn prog 0x2004);
  check instr_testable "forward jump" (Isa.Jal (0, 8)) (Program.fetch_exn prog 0x2008);
  check Alcotest.int "label address" 0x2010 (Program.symbol prog "end")

let asm_undefined_label () =
  let b = Asm.create () in
  Asm.j b "nowhere";
  Alcotest.check_raises "undefined" (Failure "Asm: undefined label nowhere") (fun () ->
      ignore (Asm.assemble b))

let asm_duplicate_label () =
  let b = Asm.create () in
  Asm.label b "x";
  Alcotest.check_raises "duplicate" (Failure "Asm: duplicate label x") (fun () ->
      Asm.label b "x")

let asm_li_expansion () =
  let cases = [ 0; 1; -1; 2047; -2048; 2048; 0x12345678; -0x12345678; min_int land 0xFFFFFFFF |> Machine.to_s32; 0x7FFFFFFF ] in
  List.iter
    (fun v ->
      let b = Asm.create () in
      Asm.li b Reg.t0 v;
      Asm.ecall b;
      let prog = Asm.assemble b in
      let mem = Main_memory.create ~size:4096 () in
      let m = Machine.create ~pc:(Program.entry prog) mem in
      let _ = Interp.run prog m in
      check Alcotest.int (Printf.sprintf "li %d" v) (Machine.to_s32 v) (Machine.get_x m Reg.t0))
    cases

let program_fetch_bounds () =
  let prog = Program.make ~base:0x1000 [| Isa.Fence; Isa.Ecall |] in
  check Alcotest.bool "in range" true (Program.in_range prog 0x1004);
  check Alcotest.bool "below" false (Program.in_range prog 0xFFC);
  check Alcotest.bool "above" false (Program.in_range prog 0x1008);
  check (Alcotest.option instr_testable) "misaligned" None (Program.fetch prog 0x1002);
  check Alcotest.int "end address" 0x1008 (Program.end_address prog);
  check Alcotest.int "index" 1 (Program.index_of_addr prog 0x1004);
  check Alcotest.int "addr" 0x1004 (Program.addr_of_index prog 1)

let program_words_roundtrip () =
  let b = Asm.create () in
  Asm.li b Reg.a0 12345;
  Asm.add b Reg.a1 Reg.a0 Reg.a0;
  Asm.ecall b;
  let prog = Asm.assemble b in
  match Program.of_words ~base:(Program.base prog) (Program.words prog) with
  | Ok prog' ->
    check (Alcotest.array instr_testable) "code preserved" (Program.code prog)
      (Program.code prog')
  | Error e -> Alcotest.fail e

let program_pragmas () =
  let b = Asm.create () in
  Asm.nop b;
  Asm.pragma b Program.Omp_parallel;
  Asm.label b "loop";
  Asm.nop b;
  let prog = Asm.assemble b in
  check Alcotest.bool "pragma at loop" true
    (Program.pragma_at prog (Program.symbol prog "loop") = Some Program.Omp_parallel);
  check Alcotest.bool "no pragma at entry" true (Program.pragma_at prog (Program.base prog) = None)

let disasm_text () =
  check Alcotest.string "add" "add t0, t1, t2" (Disasm.to_string (Isa.Rtype (Isa.ADD, 5, 6, 7)));
  check Alcotest.string "lw" "lw a0, 8(sp)" (Disasm.to_string (Isa.Load (Isa.LW, 10, 2, 8)));
  check Alcotest.string "fsqrt" "fsqrt.s ft1, ft2" (Disasm.to_string (Isa.Ftype (Isa.FSQRT, 1, 2, 0)))

let latency_tables () =
  check Alcotest.bool "cpu alu is 1" true (Latency.cpu Isa.C_alu = 1);
  check Alcotest.bool "accel add is 3 (Fig 2)" true (Latency.accel Isa.C_alu = 3);
  check Alcotest.bool "accel mul is 5 (Fig 2)" true (Latency.accel Isa.C_mul = 5);
  check Alcotest.bool "div occupies fully" true
    (Latency.occupancy_cpu Isa.C_div = Latency.cpu Isa.C_div);
  check Alcotest.bool "alu pipelined" true (Latency.occupancy_cpu Isa.C_alu = 1)

let suites =
  [
    ( "riscv",
      [
        Alcotest.test_case "golden encodings" `Quick golden_encodings;
        Alcotest.test_case "golden decodings" `Quick golden_decodings;
        Alcotest.test_case "decode rejects garbage" `Quick decode_rejects_garbage;
        QCheck_alcotest.to_alcotest roundtrip;
        Alcotest.test_case "encode range checks" `Quick encode_range_checks;
        Alcotest.test_case "register names" `Quick reg_names;
        Alcotest.test_case "isa classification" `Quick isa_classification;
        Alcotest.test_case "isa reads/writes" `Quick isa_reads_writes;
        Alcotest.test_case "branch offsets" `Quick isa_branch_offset;
        Alcotest.test_case "asm labels/branches" `Quick asm_labels_and_branches;
        Alcotest.test_case "asm undefined label" `Quick asm_undefined_label;
        Alcotest.test_case "asm duplicate label" `Quick asm_duplicate_label;
        Alcotest.test_case "li expansion" `Quick asm_li_expansion;
        Alcotest.test_case "program bounds" `Quick program_fetch_bounds;
        Alcotest.test_case "program words roundtrip" `Quick program_words_roundtrip;
        Alcotest.test_case "program pragmas" `Quick program_pragmas;
        Alcotest.test_case "disasm text" `Quick disasm_text;
        Alcotest.test_case "latency tables" `Quick latency_tables;
      ] );
  ]
