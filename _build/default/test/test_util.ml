let check = Alcotest.check
let float_eq = Alcotest.float 1e-9

let prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let prng_int_range () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    check Alcotest.bool "in [0,17)" true (v >= 0 && v < 17);
    let w = Prng.int_in rng (-5) 5 in
    check Alcotest.bool "in [-5,5]" true (w >= -5 && w <= 5)
  done

let prng_float_range () =
  let rng = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.float_in rng (-2.0) 2.0 in
    check Alcotest.bool "in [-2,2)" true (v >= -2.0 && v < 2.0)
  done

let prng_shuffle_permutes () =
  let rng = Prng.create 3 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same multiset" (Array.init 50 Fun.id) sorted

let prng_split_independent () =
  let rng = Prng.create 11 in
  let child = Prng.split rng in
  let a = Prng.bits64 rng and b = Prng.bits64 child in
  check Alcotest.bool "independent draws differ" true (a <> b)

let stats_mean_geomean () =
  check float_eq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check float_eq "mean empty" 0.0 (Stats.mean []);
  check float_eq "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  check float_eq "geomean singleton" 3.0 (Stats.geomean [ 3.0 ])

let stats_stddev () =
  check float_eq "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check (Alcotest.float 1e-6) "known" (sqrt 2.0) (Stats.stddev [ 1.0; 3.0; 1.0; 3.0 ] *. sqrt 2.0)

let stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check float_eq "median" 3.0 (Stats.percentile 0.5 xs);
  check float_eq "min" 1.0 (Stats.percentile 0.0 xs);
  check float_eq "max" 5.0 (Stats.percentile 1.0 xs);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty list") (fun () ->
      ignore (Stats.percentile 0.5 []))

let stats_clamp_divceil () =
  check float_eq "clamp low" 1.0 (Stats.clamp ~lo:1.0 ~hi:2.0 0.5);
  check float_eq "clamp high" 2.0 (Stats.clamp ~lo:1.0 ~hi:2.0 3.0);
  check Alcotest.int "iclamp" 4 (Stats.iclamp ~lo:0 ~hi:4 9);
  check Alcotest.int "div_ceil exact" 3 (Stats.div_ceil 9 3);
  check Alcotest.int "div_ceil round" 4 (Stats.div_ceil 10 3)

let stats_running () =
  let r = Stats.Running.create () in
  check float_eq "empty mean" 0.0 (Stats.Running.mean r);
  check float_eq "mean_or default" 7.0 (Stats.Running.mean_or r 7.0);
  Stats.Running.add r 2.0;
  Stats.Running.add r 4.0;
  check float_eq "mean" 3.0 (Stats.Running.mean r);
  check float_eq "mean_or ignores default" 3.0 (Stats.Running.mean_or r 7.0);
  check Alcotest.int "count" 2 (Stats.Running.count r);
  check float_eq "sum" 6.0 (Stats.Running.sum r);
  Stats.Running.reset r;
  check Alcotest.int "reset count" 0 (Stats.Running.count r)

let tables_render () =
  let t = Tables.create ~title:"T" [ ("a", Tables.Left); ("b", Tables.Right) ] in
  Tables.add_row t [ "x"; "1" ];
  Tables.add_rule t;
  Tables.add_row t [ "yy"; "22" ];
  let s = Tables.render t in
  check Alcotest.bool "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  check Alcotest.bool "has row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "| yy | 22 |"))

let tables_arity_check () =
  let t = Tables.create [ ("a", Tables.Left) ] in
  Alcotest.check_raises "row arity"
    (Invalid_argument "Tables.add_row: cell count does not match column count") (fun () ->
      Tables.add_row t [ "1"; "2" ])

let tables_cells () =
  check Alcotest.string "fcell" "1.250" (Tables.fcell 1.25);
  check Alcotest.string "xcell" "1.33x" (Tables.xcell 1.331);
  check Alcotest.string "icell" "1_234_567" (Tables.icell 1234567);
  check Alcotest.string "icell negative" "-1_000" (Tables.icell (-1000));
  check Alcotest.string "icell small" "42" (Tables.icell 42)

let suites =
  [
    ( "util",
      [
        Alcotest.test_case "prng determinism" `Quick prng_determinism;
        Alcotest.test_case "prng seed sensitivity" `Quick prng_seed_sensitivity;
        Alcotest.test_case "prng int ranges" `Quick prng_int_range;
        Alcotest.test_case "prng float ranges" `Quick prng_float_range;
        Alcotest.test_case "prng shuffle permutes" `Quick prng_shuffle_permutes;
        Alcotest.test_case "prng split" `Quick prng_split_independent;
        Alcotest.test_case "stats mean/geomean" `Quick stats_mean_geomean;
        Alcotest.test_case "stats stddev" `Quick stats_stddev;
        Alcotest.test_case "stats percentile" `Quick stats_percentile;
        Alcotest.test_case "stats clamp/div_ceil" `Quick stats_clamp_divceil;
        Alcotest.test_case "running average" `Quick stats_running;
        Alcotest.test_case "tables render" `Quick tables_render;
        Alcotest.test_case "tables arity" `Quick tables_arity_check;
        Alcotest.test_case "tables cells" `Quick tables_cells;
      ] );
  ]
