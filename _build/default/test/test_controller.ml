let check = Alcotest.check

(* -------------------- optimizer -------------------- *)

let opt_setup () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "cfd") in
  let model = Perf_model.create dfg in
  let placement =
    Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model)
  in
  (dfg, model, Accel_config.plain placement)

let optimizer_absorb () =
  let k = Workloads.find "cfd" in
  let dfg, model, config = opt_setup () in
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  let res = Result.get_ok (Engine.execute ~config ~dfg ~machine:m ~hier ()) in
  let before = Perf_model.op_latency model 0 in
  Optimizer.absorb model res;
  (* Node 0 is a load: its measured AMAT should now drive the model. *)
  check Alcotest.bool "measured latency absorbed" true
    (Perf_model.op_latency model 0 <> before)

let optimizer_monotone_adoption () =
  let k = Workloads.find "cfd" in
  let dfg, model, config = opt_setup () in
  let mem = Main_memory.create () in
  let m = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  let res =
    Result.get_ok (Engine.execute ~stop_after:64 ~config ~dfg ~machine:m ~hier ())
  in
  Optimizer.absorb model res;
  (match
     Optimizer.step ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc
       ~mapper:Mapper.default_config ~model ~current:config
   with
  | Optimizer.Adopt { latency; previous; config = config' } ->
    check Alcotest.bool "strict improvement" true
      (latency < previous *. (1.0 -. Optimizer.improvement_threshold));
    check Alcotest.bool "new placement valid" true
      (Placement.validate dfg config'.Accel_config.placement = Ok ())
  | Optimizer.Keep latency ->
    (* Keep must leave the model consistent with the current placement. *)
    check (Alcotest.float 1e-9) "estimates restored" latency
      (Perf_model.iteration_latency model))

(* -------------------- controller -------------------- *)

let controller_report (k : Kernel.t) ?(optimize = true) ?(iterative = false) ?grid () =
  let options = Controller.default_options ?grid ~optimize ~iterative () in
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let report = Controller.run ~options k.Kernel.program machine in
  (report, mem)

let controller_offloads_and_is_correct () =
  List.iter
    (fun name ->
      let k = Workloads.find name in
      let report, mem = controller_report k () in
      check Alcotest.bool (name ^ " halts") true (report.Controller.halt = Interp.Ecall_halt);
      check Alcotest.bool (name ^ " offloaded") true (report.Controller.offloads >= 1);
      check Alcotest.bool (name ^ " outputs") true (k.Kernel.check mem = Ok ());
      check Alcotest.bool (name ^ " accel did the work") true
        (report.Controller.activity.Activity.iterations > k.Kernel.n / 2);
      check Alcotest.int (name ^ " total = parts")
        (report.Controller.cpu_cycles + report.Controller.accel_cycles
       + report.Controller.overhead_cycles)
        report.Controller.total_cycles)
    [ "nn"; "bfs"; "kmeans"; "streamcluster" ]

let controller_matches_interpreter_state () =
  let k = Workloads.find "pathfinder" in
  (* Reference. *)
  let mem_ref = Main_memory.create () in
  let m_ref = Kernel.prepare k mem_ref in
  let _ = Interp.run k.Kernel.program m_ref in
  (* MESA. *)
  let report, mem = controller_report k () in
  ignore report;
  check Alcotest.bool "memory identical" true (Main_memory.equal mem_ref mem)

let controller_region_reports () =
  let k = Workloads.find "hotspot" in
  let report, _ = controller_report k () in
  match List.filter (fun (r : Controller.region_report) -> r.Controller.accepted)
          report.Controller.regions with
  | [ r ] ->
    check Alcotest.int "entry" (Program.entry k.Kernel.program) r.Controller.entry;
    check Alcotest.int "size" 21 r.Controller.size;
    check Alcotest.bool "parallel tiling applied" true (r.Controller.tiling > 1);
    check Alcotest.bool "pipelined" true r.Controller.pipelined;
    check Alcotest.bool "translation in Table 2 band" true
      (r.Controller.translation_cycles >= 500 && r.Controller.translation_cycles <= 20000);
    (* Detection + translation run a few dozen iterations on the CPU
       first; the fabric gets the rest. *)
    check Alcotest.bool "nearly all iterations on fabric" true
      (r.Controller.accel_iterations > (9 * k.Kernel.n) / 10
      && r.Controller.accel_iterations < k.Kernel.n)
  | _ -> Alcotest.fail "expected exactly one accepted region"

let controller_optimize_flag () =
  let k = Workloads.find "lud" in
  let report_opt, mem1 = controller_report k ~optimize:true () in
  let report_plain, mem2 = controller_report k ~optimize:false () in
  check Alcotest.bool "both correct" true
    (k.Kernel.check mem1 = Ok () && k.Kernel.check mem2 = Ok ());
  let tiling r =
    match
      List.find_opt (fun (x : Controller.region_report) -> x.Controller.accepted)
        r.Controller.regions
    with
    | Some x -> x.Controller.tiling
    | None -> 0
  in
  check Alcotest.bool "opt tiles" true (tiling report_opt > 1);
  check Alcotest.int "plain does not tile" 1 (tiling report_plain);
  check Alcotest.bool "optimizations pay" true
    (report_opt.Controller.total_cycles < report_plain.Controller.total_cycles)

let controller_nonparallel_untiled () =
  let k = Workloads.find "bfs" in
  let report, _ = controller_report k () in
  match
    List.find_opt (fun (x : Controller.region_report) -> x.Controller.accepted)
      report.Controller.regions
  with
  | Some r -> check Alcotest.int "no speculative tiling" 1 r.Controller.tiling
  | None -> Alcotest.fail "bfs should be accepted"

let controller_config_cache_reused () =
  (* A nested program that re-enters the same inner loop several times:
     after the first translation, re-encounters hit the config cache
     (offloads > 1, one accepted region, translation charged once). *)
  let b = Asm.create () in
  let open Reg in
  Asm.li b s2 0;
  Asm.label b "outer";
  Asm.li b t0 0;
  Asm.li b t1 0;
  Asm.label b "inner";
  Asm.lw b t2 0 a0;
  Asm.mul b t3 t2 t2;
  Asm.add b t1 t1 t3;
  Asm.addi b t0 t0 1;
  Asm.blt b t0 a1 "inner";
  Asm.sw b t1 0 a2;
  Asm.addi b a2 a2 4;
  Asm.addi b s2 s2 1;
  Asm.blt b s2 a3 "outer";
  Asm.ecall b;
  let prog = Asm.assemble b in
  let mem = Main_memory.create () in
  Main_memory.blit_words mem 0x10000 (Array.init 64 (fun i -> i + 1));
  let machine = Machine.create ~pc:(Program.entry prog) mem in
  Machine.set_args machine
    [ (a0, 0x10000); (a1, 600); (a2, 0x20000); (a3, 6) ];
  let report = Controller.run prog machine in
  check Alcotest.bool "halts" true (report.Controller.halt = Interp.Ecall_halt);
  let accepted =
    List.filter (fun (r : Controller.region_report) -> r.Controller.accepted)
      report.Controller.regions
  in
  check Alcotest.int "one cached region" 1 (List.length accepted);
  check Alcotest.bool "multiple offloads" true (report.Controller.offloads >= 3);
  (* The six outer iterations all wrote the same inner-loop sum. *)
  let first = Main_memory.load_word mem 0x20000 in
  check Alcotest.bool "sum nonzero" true (first <> 0);
  for i = 1 to 5 do
    check Alcotest.int "same sum each re-entry" first
      (Main_memory.load_word mem (0x20000 + (4 * i)))
  done

let controller_iterative_mode_correct () =
  let k = Workloads.find "kmeans" in
  let report, mem = controller_report k ~iterative:true () in
  check Alcotest.bool "correct under reoptimization" true (k.Kernel.check mem = Ok ());
  check Alcotest.bool "halts" true (report.Controller.halt = Interp.Ecall_halt)

let controller_speedup_helper () =
  let r, _ = controller_report (Workloads.find "gaussian") () in
  check (Alcotest.float 1e-9) "speedup arithmetic" 2.0
    (Controller.speedup ~baseline_cycles:(2 * r.Controller.total_cycles) r)

let suites =
  [
    ( "optimizer",
      [
        Alcotest.test_case "absorb measurements" `Quick optimizer_absorb;
        Alcotest.test_case "monotone adoption" `Quick optimizer_monotone_adoption;
      ] );
    ( "controller",
      [
        Alcotest.test_case "offloads and stays correct" `Quick controller_offloads_and_is_correct;
        Alcotest.test_case "matches interpreter state" `Quick controller_matches_interpreter_state;
        Alcotest.test_case "region reports" `Quick controller_region_reports;
        Alcotest.test_case "optimize flag" `Quick controller_optimize_flag;
        Alcotest.test_case "non-parallel loops untiled" `Quick controller_nonparallel_untiled;
        Alcotest.test_case "config cache reuse" `Quick controller_config_cache_reused;
        Alcotest.test_case "iterative mode correct" `Quick controller_iterative_mode_correct;
        Alcotest.test_case "speedup helper" `Quick controller_speedup_helper;
      ] );
  ]
