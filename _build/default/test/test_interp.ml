let check = Alcotest.check
let s32 = Machine.to_s32

(* -------------------- machine state -------------------- *)

let machine_x0_hardwired () =
  let m = Machine.create (Main_memory.create ~size:4096 ()) in
  Machine.set_x m 0 123;
  check Alcotest.int "x0 stays zero" 0 (Machine.get_x m 0)

let machine_sign_extension () =
  let m = Machine.create (Main_memory.create ~size:4096 ()) in
  Machine.set_x m 1 0xFFFFFFFF;
  check Alcotest.int "write sign-extends" (-1) (Machine.get_x m 1);
  Machine.set_x m 1 0x80000000;
  check Alcotest.int "min int32" (-2147483648) (Machine.get_x m 1)

let machine_fp_rounding () =
  let m = Machine.create (Main_memory.create ~size:4096 ()) in
  Machine.set_f m 0 0.1;
  check Alcotest.bool "0.1 rounded to single" true (Machine.get_f m 0 <> 0.1);
  check (Alcotest.float 1e-8) "close to 0.1" 0.1 (Machine.get_f m 0)

let machine_copy_and_equal () =
  let m = Machine.create (Main_memory.create ~size:4096 ()) in
  Machine.set_x m 5 42;
  let c = Machine.copy m () in
  check Alcotest.bool "copies equal" true (Machine.arch_equal m c);
  Machine.set_x c 5 43;
  check Alcotest.bool "diverged" false (Machine.arch_equal m c)

(* -------------------- integer ALU semantics -------------------- *)

let alu_add_sub_wrap () =
  check Alcotest.int "add wrap" (-2147483648) (Interp.Alu.rtype Isa.ADD 0x7FFFFFFF 1);
  check Alcotest.int "sub wrap" 0x7FFFFFFF (Interp.Alu.rtype Isa.SUB (-2147483648) 1)

let alu_shifts () =
  check Alcotest.int "sll" 16 (Interp.Alu.rtype Isa.SLL 1 4);
  check Alcotest.int "sll masks shamt" 2 (Interp.Alu.rtype Isa.SLL 1 33);
  check Alcotest.int "srl sign bit" 0x7FFFFFFF (Interp.Alu.rtype Isa.SRL (-1) 1);
  check Alcotest.int "sra keeps sign" (-1) (Interp.Alu.rtype Isa.SRA (-1) 1);
  check Alcotest.int "sra halves" (-4) (Interp.Alu.rtype Isa.SRA (-8) 1)

let alu_compare () =
  check Alcotest.int "slt signed" 1 (Interp.Alu.rtype Isa.SLT (-1) 0);
  check Alcotest.int "sltu unsigned" 0 (Interp.Alu.rtype Isa.SLTU (-1) 0);
  check Alcotest.int "sltu small" 1 (Interp.Alu.rtype Isa.SLTU 0 (-1))

let alu_mul_family () =
  check Alcotest.int "mul low" (s32 (123456 * 654321)) (Interp.Alu.rtype Isa.MUL 123456 654321);
  check Alcotest.int "mulh" 0 (Interp.Alu.rtype Isa.MULH 2 3);
  check Alcotest.int "mulh big" 1 (Interp.Alu.rtype Isa.MULH 0x40000000 4);
  check Alcotest.int "mulh negative" (-1) (Interp.Alu.rtype Isa.MULH (-2) 0x40000000);
  check Alcotest.int "mulhu max" (s32 0xFFFFFFFE) (Interp.Alu.rtype Isa.MULHU (-1) (-1));
  check Alcotest.int "mulhsu" (-1) (Interp.Alu.rtype Isa.MULHSU (-1) (-1))

let alu_div_rem_edge_cases () =
  check Alcotest.int "div" (-7) (Interp.Alu.rtype Isa.DIV 22 (-3));
  check Alcotest.int "div by zero" (-1) (Interp.Alu.rtype Isa.DIV 5 0);
  check Alcotest.int "div overflow" (-2147483648)
    (Interp.Alu.rtype Isa.DIV (-2147483648) (-1));
  check Alcotest.int "rem" 1 (Interp.Alu.rtype Isa.REM 22 (-3));
  check Alcotest.int "rem by zero" 5 (Interp.Alu.rtype Isa.REM 5 0);
  check Alcotest.int "rem overflow" 0 (Interp.Alu.rtype Isa.REM (-2147483648) (-1));
  check Alcotest.int "divu by zero" (-1) (Interp.Alu.rtype Isa.DIVU 5 0);
  check Alcotest.int "divu" 0x7FFFFFFF (Interp.Alu.rtype Isa.DIVU (-2) 2);
  check Alcotest.int "remu" 1 (Interp.Alu.rtype Isa.REMU (-1) 2)

let alu_reference =
  (* Cross-check 32-bit semantics against an Int64 reference model. *)
  QCheck2.Test.make ~name:"rtype vs int64 reference" ~count:2000
    QCheck2.Gen.(triple Gen.rop (int_range (-2147483648) 2147483647) (int_range (-2147483648) 2147483647))
    (fun (op, a, b) ->
      let got = Interp.Alu.rtype op a b in
      let a64 = Int64.of_int a and b64 = Int64.of_int b in
      let to32 v = Int64.to_int (Int64.of_int32 (Int64.to_int32 v)) in
      let expected =
        match op with
        | Isa.ADD -> Some (to32 (Int64.add a64 b64))
        | Isa.SUB -> Some (to32 (Int64.sub a64 b64))
        | Isa.XOR -> Some (to32 (Int64.logxor a64 b64))
        | Isa.OR -> Some (to32 (Int64.logor a64 b64))
        | Isa.AND -> Some (to32 (Int64.logand a64 b64))
        | Isa.MUL -> Some (to32 (Int64.mul a64 b64))
        | Isa.SLT -> Some (if a < b then 1 else 0)
        | _ -> None
      in
      match expected with Some e -> got = e | None -> got >= -2147483648 && got <= 2147483647)

(* -------------------- FP semantics -------------------- *)

let fp_min_max_nan () =
  let nan = Float.nan in
  check (Alcotest.float 0.0) "fmin nan left" 2.0 (Interp.Alu.ftype Isa.FMIN nan 2.0);
  check (Alcotest.float 0.0) "fmax nan right" 2.0 (Interp.Alu.ftype Isa.FMAX 2.0 nan);
  check (Alcotest.float 0.0) "fmin" 1.0 (Interp.Alu.ftype Isa.FMIN 1.0 2.0);
  check (Alcotest.float 0.0) "fmax" 2.0 (Interp.Alu.ftype Isa.FMAX 1.0 2.0)

let fp_sign_injection () =
  check (Alcotest.float 0.0) "fsgnj" (-3.0) (Interp.Alu.ftype Isa.FSGNJ 3.0 (-1.0));
  check (Alcotest.float 0.0) "fsgnjn" 3.0 (Interp.Alu.ftype Isa.FSGNJN 3.0 (-1.0));
  check (Alcotest.float 0.0) "fsgnjx" (-3.0) (Interp.Alu.ftype Isa.FSGNJX (-3.0) 1.0);
  check (Alcotest.float 0.0) "fsgnjx both negative" 3.0
    (Interp.Alu.ftype Isa.FSGNJX (-3.0) (-1.0))

let fp_compare_nan () =
  check Alcotest.int "feq nan" 0 (Interp.Alu.fcmp Isa.FEQ Float.nan 1.0);
  check Alcotest.int "flt" 1 (Interp.Alu.fcmp Isa.FLT 1.0 2.0);
  check Alcotest.int "fle equal" 1 (Interp.Alu.fcmp Isa.FLE 2.0 2.0)

let fp_convert () =
  check Alcotest.int "fcvt truncates toward zero" 1 (Interp.Alu.fcvt_w_s 1.9);
  check Alcotest.int "fcvt negative truncates" (-1) (Interp.Alu.fcvt_w_s (-1.9));
  check Alcotest.int "fcvt nan" 0x7FFFFFFF (Interp.Alu.fcvt_w_s Float.nan);
  check Alcotest.int "fcvt clamps high" 0x7FFFFFFF (Interp.Alu.fcvt_w_s 1e30);
  check Alcotest.int "fcvt clamps low" (-2147483648) (Interp.Alu.fcvt_w_s (-1e30));
  check (Alcotest.float 0.0) "fcvt_s_w" 42.0 (Interp.Alu.fcvt_s_w 42)

let fp_move_bits () =
  check Alcotest.int "fmv_x_w of 1.0" 0x3F800000 (Interp.Alu.fmv_x_w 1.0);
  check (Alcotest.float 0.0) "fmv_w_x roundtrip" 1.0 (Interp.Alu.fmv_w_x 0x3F800000);
  check Alcotest.int "fmv sign bit" (s32 0x80000000) (Interp.Alu.fmv_x_w (-0.0))

let fp_single_rounding () =
  (* fadd must round to single precision at every step. *)
  let r = Interp.Alu.ftype Isa.FADD 16777216.0 1.0 in
  check (Alcotest.float 0.0) "2^24 + 1 rounds away" 16777216.0 r

(* -------------------- branches -------------------- *)

let branch_semantics () =
  check Alcotest.bool "beq" true (Interp.Alu.branch_taken Isa.BEQ 3 3);
  check Alcotest.bool "bne" false (Interp.Alu.branch_taken Isa.BNE 3 3);
  check Alcotest.bool "blt signed" true (Interp.Alu.branch_taken Isa.BLT (-1) 0);
  check Alcotest.bool "bltu unsigned" false (Interp.Alu.branch_taken Isa.BLTU (-1) 0);
  check Alcotest.bool "bge equal" true (Interp.Alu.branch_taken Isa.BGE 2 2);
  check Alcotest.bool "bgeu" true (Interp.Alu.branch_taken Isa.BGEU (-1) 1)

(* -------------------- whole-program execution -------------------- *)

let run_program code setup =
  let b = Asm.create () in
  List.iter (fun f -> f b) code;
  let prog = Asm.assemble b in
  let mem = Main_memory.create ~size:65536 () in
  let m = Machine.create ~pc:(Program.entry prog) mem in
  setup m;
  let halt, retired = Interp.run prog m in
  (m, halt, retired)

let exec_simple_sum () =
  let open Reg in
  let m, halt, retired =
    run_program
      [
        (fun b -> Asm.li b t0 0);
        (fun b -> Asm.li b t1 0);
        (fun b -> Asm.label b "loop");
        (fun b -> Asm.add b t1 t1 t0);
        (fun b -> Asm.addi b t0 t0 1);
        (fun b -> Asm.blt b t0 a0 "loop");
        (fun b -> Asm.ecall b);
      ]
      (fun m -> Machine.set_x m a0 10)
  in
  check Alcotest.bool "halted on ecall" true (halt = Interp.Ecall_halt);
  check Alcotest.int "sum 0..9" 45 (Machine.get_x m t1);
  check Alcotest.int "retired" 32 retired

let exec_memory_ops () =
  let open Reg in
  let m, _, _ =
    run_program
      [
        (fun b -> Asm.li b t0 0x1234);
        (fun b -> Asm.li b t1 0x8000);
        (fun b -> Asm.sw b t0 0 t1);
        (fun b -> Asm.lb b t2 0 t1);
        (fun b -> Asm.lbu b t3 1 t1);
        (fun b -> Asm.lh b t4 0 t1);
        (fun b -> Asm.sb b t0 8 t1);
        (fun b -> Asm.lw b t5 8 t1);
        (fun b -> Asm.ecall b);
      ]
      (fun _ -> ())
  in
  check Alcotest.int "lb" 0x34 (Machine.get_x m t2);
  check Alcotest.int "lbu" 0x12 (Machine.get_x m t3);
  check Alcotest.int "lh" 0x1234 (Machine.get_x m t4);
  check Alcotest.int "sb stores low byte" 0x34 (Machine.get_x m t5)

let exec_signed_byte_load () =
  let open Reg in
  let m, _, _ =
    run_program
      [
        (fun b -> Asm.li b t0 0xFF);
        (fun b -> Asm.li b t1 0x8000);
        (fun b -> Asm.sb b t0 0 t1);
        (fun b -> Asm.lb b t2 0 t1);
        (fun b -> Asm.lbu b t3 0 t1);
        (fun b -> Asm.ecall b);
      ]
      (fun _ -> ())
  in
  check Alcotest.int "lb sign extends" (-1) (Machine.get_x m t2);
  check Alcotest.int "lbu zero extends" 0xFF (Machine.get_x m t3)

let exec_jal_jalr () =
  let open Reg in
  let m, _, _ =
    run_program
      [
        (fun b -> Asm.jal b ra "target");
        (fun b -> Asm.li b t0 111); (* skipped *)
        (fun b -> Asm.label b "target");
        (fun b -> Asm.li b t1 222);
        (fun b -> Asm.ecall b);
      ]
      (fun _ -> ())
  in
  check Alcotest.int "skipped" 0 (Machine.get_x m t0);
  check Alcotest.int "executed" 222 (Machine.get_x m t1);
  check Alcotest.int "link register" 0x1004 (Machine.get_x m ra)

let exec_exit_and_limits () =
  let _, halt, _ =
    run_program [ (fun b -> Asm.nop b); (fun b -> Asm.nop b) ] (fun _ -> ())
  in
  check Alcotest.bool "falls off the end" true (halt = Interp.Exited)

let exec_step_limit () =
  let b = Asm.create () in
  Asm.label b "spin";
  Asm.j b "spin";
  let prog = Asm.assemble b in
  let m = Machine.create ~pc:(Program.entry prog) (Main_memory.create ~size:4096 ()) in
  let halt, retired = Interp.run ~max_steps:100 prog m in
  check Alcotest.bool "step limit" true (halt = Interp.Step_limit);
  check Alcotest.int "retired 100" 100 retired

let exec_memory_fault () =
  let open Reg in
  let b = Asm.create () in
  Asm.li b t1 0x7FFFFFF0;
  Asm.lw b t0 0 t1;
  Asm.ecall b;
  let prog = Asm.assemble b in
  let m = Machine.create ~pc:(Program.entry prog) (Main_memory.create ~size:4096 ()) in
  let halt, _ = Interp.run prog m in
  check Alcotest.bool "faults" true (match halt with Interp.Fault _ -> true | _ -> false)

let suites =
  [
    ( "machine",
      [
        Alcotest.test_case "x0 hardwired" `Quick machine_x0_hardwired;
        Alcotest.test_case "sign extension" `Quick machine_sign_extension;
        Alcotest.test_case "fp rounding" `Quick machine_fp_rounding;
        Alcotest.test_case "copy/equal" `Quick machine_copy_and_equal;
      ] );
    ( "interp.alu",
      [
        Alcotest.test_case "add/sub wrap" `Quick alu_add_sub_wrap;
        Alcotest.test_case "shifts" `Quick alu_shifts;
        Alcotest.test_case "compares" `Quick alu_compare;
        Alcotest.test_case "mul family" `Quick alu_mul_family;
        Alcotest.test_case "div/rem edge cases" `Quick alu_div_rem_edge_cases;
        QCheck_alcotest.to_alcotest alu_reference;
        Alcotest.test_case "fp min/max NaN" `Quick fp_min_max_nan;
        Alcotest.test_case "fp sign injection" `Quick fp_sign_injection;
        Alcotest.test_case "fp compare NaN" `Quick fp_compare_nan;
        Alcotest.test_case "fp convert" `Quick fp_convert;
        Alcotest.test_case "fp move bits" `Quick fp_move_bits;
        Alcotest.test_case "fp single rounding" `Quick fp_single_rounding;
        Alcotest.test_case "branch semantics" `Quick branch_semantics;
      ] );
    ( "interp.exec",
      [
        Alcotest.test_case "simple sum loop" `Quick exec_simple_sum;
        Alcotest.test_case "memory ops" `Quick exec_memory_ops;
        Alcotest.test_case "signed byte load" `Quick exec_signed_byte_load;
        Alcotest.test_case "jal/jalr" `Quick exec_jal_jalr;
        Alcotest.test_case "exit halt" `Quick exec_exit_and_limits;
        Alcotest.test_case "step limit" `Quick exec_step_limit;
        Alcotest.test_case "memory fault" `Quick exec_memory_fault;
      ] );
  ]
