let check = Alcotest.check

(* Build a region directly from a list of instructions (entry at 0x1000).
   The last instruction must be the backward branch. *)
let region_of instrs ?pragma () =
  let arr = Array.of_list instrs in
  {
    Region.entry = 0x1000;
    back_branch_addr = 0x1000 + (4 * (Array.length arr - 1));
    instrs = arr;
    pragma;
    observed_iterations = 8;
  }

let simple_loop =
  (* lw t1, 0(a0); add t2, t1, t1; sw t2, 0(a1); addi a0, a0, 4;
     addi a1, a1, 4; addi t0, t0, 1; blt t0, a3, loop *)
  [
    Isa.Load (Isa.LW, 6, 10, 0);
    Isa.Rtype (Isa.ADD, 7, 6, 6);
    Isa.Store (Isa.SW, 7, 11, 0);
    Isa.Itype (Isa.ADDI, 10, 10, 4);
    Isa.Itype (Isa.ADDI, 11, 11, 4);
    Isa.Itype (Isa.ADDI, 5, 5, 1);
    Isa.Branch (Isa.BLT, 5, 13, -24);
  ]

let renaming_builds_dependencies () =
  let dfg = Ldfg.build_exn (region_of simple_loop ()) in
  check Alcotest.int "seven nodes" 7 (Dfg.node_count dfg);
  (* add reads the load's output twice. *)
  check Alcotest.bool "add depends on load" true
    (dfg.Dfg.nodes.(1).Dfg.srcs = [| Dfg.Node 0; Dfg.Node 0 |]);
  (* store data comes from the add; its base is a live-in. *)
  check Alcotest.bool "store sources" true
    (dfg.Dfg.nodes.(2).Dfg.srcs = [| Dfg.Node 1; Dfg.Reg_in (11, Dfg.X) |]);
  (* branch reads the incremented induction register. *)
  check Alcotest.bool "branch reads induction" true
    (dfg.Dfg.nodes.(6).Dfg.srcs = [| Dfg.Node 5; Dfg.Reg_in (13, Dfg.X) |])

let live_sets () =
  let dfg = Ldfg.build_exn (region_of simple_loop ()) in
  check (Alcotest.list Alcotest.int) "live-ins" [ 5; 10; 11; 13 ] dfg.Dfg.live_in_x;
  let outs = List.map fst dfg.Dfg.live_out_x |> List.sort compare in
  check (Alcotest.list Alcotest.int) "live-outs" [ 5; 6; 7; 10; 11 ] outs;
  check Alcotest.int "back branch last" 6 dfg.Dfg.back_branch;
  check Alcotest.int "entry" 0x1000 dfg.Dfg.entry_addr;
  check Alcotest.int "exit" (0x1000 + 28) dfg.Dfg.exit_addr

let store_order_chain () =
  let instrs =
    [
      Isa.Store (Isa.SW, 6, 10, 0);
      Isa.Store (Isa.SW, 6, 10, 4);
      Isa.Load (Isa.LW, 7, 10, 0);
      Isa.Itype (Isa.ADDI, 5, 5, 1);
      Isa.Branch (Isa.BLT, 5, 13, -16);
    ]
  in
  let dfg = Ldfg.build_exn (region_of instrs ()) in
  check (Alcotest.option Alcotest.int) "first store unchained" None
    dfg.Dfg.nodes.(0).Dfg.prev_store;
  check (Alcotest.option Alcotest.int) "second store chained" (Some 0)
    dfg.Dfg.nodes.(1).Dfg.prev_store;
  check (Alcotest.option Alcotest.int) "loads not statically chained" None
    dfg.Dfg.nodes.(2).Dfg.prev_store

let forward_branch_guards () =
  (* beq t1, zero, +12 skips the two middle instructions. *)
  let instrs =
    [
      Isa.Branch (Isa.BEQ, 6, 0, 12),  (* node 0: guard opener *)
      false;
      Isa.Itype (Isa.ADDI, 7, 7, 1), true;
      Isa.Itype (Isa.ADDI, 28, 28, 2), true;
      Isa.Itype (Isa.ADDI, 5, 5, 1), false;
      Isa.Branch (Isa.BLT, 5, 13, -16), false;
    ]
  in
  let dfg = Ldfg.build_exn (region_of (List.map fst instrs) ()) in
  List.iteri
    (fun i (_, guarded) ->
      let has_guard = dfg.Dfg.nodes.(i).Dfg.guards <> [] in
      check Alcotest.bool (Printf.sprintf "node %d guard" i) guarded has_guard)
    instrs;
  (* Guarded nodes carry the previous producer as hidden value. *)
  check Alcotest.bool "hidden is live-in" true
    (dfg.Dfg.nodes.(1).Dfg.hidden = Some (Dfg.Reg_in (7, Dfg.X)));
  check Alcotest.bool "guard polarity: disabled when taken" true
    (dfg.Dfg.nodes.(1).Dfg.guards = [ (0, true) ])

let nested_guards () =
  let instrs =
    [
      Isa.Branch (Isa.BEQ, 6, 0, 16);  (* outer: skips nodes 1-3 *)
      Isa.Branch (Isa.BNE, 7, 0, 8);   (* inner: skips node 2 *)
      Isa.Itype (Isa.ADDI, 28, 28, 1);
      Isa.Itype (Isa.ADDI, 29, 29, 1);
      Isa.Itype (Isa.ADDI, 5, 5, 1);
      Isa.Branch (Isa.BLT, 5, 13, -20);
    ]
  in
  let dfg = Ldfg.build_exn (region_of instrs ()) in
  check Alcotest.int "node 2 has two guards" 2 (List.length dfg.Dfg.nodes.(2).Dfg.guards);
  check Alcotest.int "node 3 has one guard" 1 (List.length dfg.Dfg.nodes.(3).Dfg.guards);
  check Alcotest.int "node 4 unguarded" 0 (List.length dfg.Dfg.nodes.(4).Dfg.guards);
  (* The inner branch itself sits under the outer guard. *)
  check Alcotest.bool "inner branch guarded" true (dfg.Dfg.nodes.(1).Dfg.guards = [ (0, true) ])

let rejects_jumps () =
  let instrs = [ Isa.Jal (1, 8); Isa.Branch (Isa.BLT, 5, 13, -4) ] in
  check Alcotest.bool "jal rejected" true (Result.is_error (Ldfg.build (region_of instrs ())))

let x0_reads_are_not_live_ins () =
  let instrs =
    [ Isa.Rtype (Isa.ADD, 6, 0, 0); Isa.Branch (Isa.BNE, 6, 0, -4) ]
  in
  let dfg = Ldfg.build_exn (region_of instrs ()) in
  check (Alcotest.list Alcotest.int) "x0 not live-in" [] dfg.Dfg.live_in_x

let rename_table_basics () =
  let t = Rename_table.create () in
  check Alcotest.bool "initial lookup is live-in" true
    (Rename_table.lookup t Dfg.X 7 = Dfg.Reg_in (7, Dfg.X));
  Rename_table.write t Dfg.X 7 3;
  check Alcotest.bool "renamed to node" true (Rename_table.lookup t Dfg.X 7 = Dfg.Node 3);
  Rename_table.write t Dfg.X 0 5;
  check Alcotest.bool "x0 never renamed" true
    (Rename_table.lookup t Dfg.X 0 = Dfg.Reg_in (0, Dfg.X));
  check (Alcotest.list Alcotest.int) "live-ins tracked" [ 7 ]
    (Rename_table.live_ins t Dfg.X);
  check Alcotest.int "live-outs tracked" 1 (List.length (Rename_table.live_outs t Dfg.X));
  Rename_table.reset t;
  check Alcotest.bool "reset" true (Rename_table.lookup t Dfg.X 7 = Dfg.Reg_in (7, Dfg.X))

let fp_file_separate () =
  let t = Rename_table.create () in
  Rename_table.write t Dfg.X 4 1;
  check Alcotest.bool "fp file untouched" true
    (Rename_table.lookup t Dfg.F 4 = Dfg.Reg_in (4, Dfg.F))

(* Property: every Ldfg built from a generated loop satisfies the DFG
   invariants and has its backward branch last. *)
let ldfg_invariants =
  QCheck2.Test.make ~name:"ldfg invariants on random loops" ~count:200
    ~print:Gen.loop_spec_print Gen.loop_spec (fun spec ->
      let prog, _ = Gen.build_loop spec in
      let code = Program.code prog in
      let n_loop =
        (* everything up to and including the backward branch *)
        1
        + (Array.to_list code
          |> List.mapi (fun i x -> (i, x))
          |> List.find (fun (_, x) ->
                 match x with Isa.Branch (_, _, _, o) -> o < 0 | _ -> false)
          |> fst)
      in
      let region =
        {
          Region.entry = Program.base prog;
          back_branch_addr = Program.base prog + (4 * (n_loop - 1));
          instrs = Array.sub code 0 n_loop;
          pragma = None;
          observed_iterations = 8;
        }
      in
      match Ldfg.build region with
      | Error _ -> false
      | Ok dfg ->
        Dfg.validate dfg = Ok ()
        && dfg.Dfg.back_branch = Dfg.node_count dfg - 1
        && List.for_all
             (fun (r, _) -> r <> 0)
             dfg.Dfg.live_out_x)

let suites =
  [
    ( "rename_table",
      [
        Alcotest.test_case "basics" `Quick rename_table_basics;
        Alcotest.test_case "separate files" `Quick fp_file_separate;
      ] );
    ( "ldfg",
      [
        Alcotest.test_case "renaming builds dependencies" `Quick renaming_builds_dependencies;
        Alcotest.test_case "live sets" `Quick live_sets;
        Alcotest.test_case "store order chain" `Quick store_order_chain;
        Alcotest.test_case "forward branch guards" `Quick forward_branch_guards;
        Alcotest.test_case "nested guards" `Quick nested_guards;
        Alcotest.test_case "rejects jumps" `Quick rejects_jumps;
        Alcotest.test_case "x0 not live-in" `Quick x0_reads_are_not_live_ins;
        QCheck_alcotest.to_alcotest ldfg_invariants;
      ] );
  ]
