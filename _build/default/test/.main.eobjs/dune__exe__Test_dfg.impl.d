test/test_dfg.ml: Alcotest Array Dfg Format Isa Latency List Perf_model Result String
