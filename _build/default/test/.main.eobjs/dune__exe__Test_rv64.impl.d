test/test_rv64.ml: Alcotest Array Dfg Encode Float Format Grid Int64 Interconnect Interp Isa List Main_memory Mapper Perf_model Printf Prng Result Runner Rv64 Schedule_view String Workloads
