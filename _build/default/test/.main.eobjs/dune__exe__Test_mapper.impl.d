test/test_mapper.ml: Alcotest Array Asm Dfg Gen Grid Interconnect Isa Kernel Ldfg List Mapper Perf_model Placement Printf Program QCheck2 QCheck_alcotest Reg Region Result Runner Workloads
