test/test_baselines.ml: Alcotest Array Dfg Dynaspam Grid Hashtbl Kernel List Opencgra Result Runner Workloads
