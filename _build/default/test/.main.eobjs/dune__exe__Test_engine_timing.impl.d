test/test_engine_timing.ml: Accel_config Activity Alcotest Engine Grid Hierarchy Interconnect Kernel List Main_memory Mapper Option Perf_model Result Runner Workloads
