test/gen.ml: Array Asm Format Gen Isa List Machine Main_memory Printf Prng Program QCheck2 Reg String
