test/test_interp.ml: Alcotest Asm Float Gen Int64 Interp Isa List Machine Main_memory Program QCheck2 QCheck_alcotest Reg
