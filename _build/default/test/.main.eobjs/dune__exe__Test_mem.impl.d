test/test_mem.ml: Alcotest Array Cache Contention Hierarchy List Machine Main_memory Prng
