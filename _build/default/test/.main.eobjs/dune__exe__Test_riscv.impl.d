test/test_riscv.ml: Alcotest Asm Decode Disasm Encode Format Gen Interp Isa Latency List Machine Main_memory Printf Program QCheck2 QCheck_alcotest Reg
