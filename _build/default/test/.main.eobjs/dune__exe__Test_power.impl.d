test/test_power.ml: Activity Alcotest Area_model Energy_model Grid List Ooo_model
