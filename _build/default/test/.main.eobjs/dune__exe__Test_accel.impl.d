test/test_accel.ml: Accel_config Activity Alcotest Array Dfg Grid Hashtbl Interconnect Isa Ldfg List Mapper Option Perf_model Placement Region Result
