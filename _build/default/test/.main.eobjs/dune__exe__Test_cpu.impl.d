test/test_cpu.ml: Alcotest Asm Cpu_run Hierarchy Interp Isa List Machine Main_memory Ooo_model Predictor Program Reg
