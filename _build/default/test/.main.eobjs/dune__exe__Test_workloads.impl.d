test/test_workloads.ml: Alcotest Array Dfg Interp Isa Kernel Ldfg List Main_memory Mem_opt Program Region Result Runner Workloads
