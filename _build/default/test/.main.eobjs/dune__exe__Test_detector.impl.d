test/test_detector.ml: Alcotest Asm Int32 Interp Kernel List Loop_detector Machine Main_memory Program Reg Region String Trace_cache Workloads
