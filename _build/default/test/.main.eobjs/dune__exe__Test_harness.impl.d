test/test_harness.ml: Alcotest Controller Dfg Experiments Kernel List Main_memory Multicore Ooo_model Runner String Tables Workloads
