test/test_util.ml: Alcotest Array Fun List Prng Stats String Tables
