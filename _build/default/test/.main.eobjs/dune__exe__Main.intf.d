test/main.mli:
