test/test_ldfg.ml: Alcotest Array Dfg Gen Isa Ldfg List Printf Program QCheck2 QCheck_alcotest Region Rename_table Result
