let check = Alcotest.check

let rv64_testable = Alcotest.testable Rv64.pp Rv64.equal

(* -------------------- codec -------------------- *)

let golden_rv64_encodings () =
  List.iter
    (fun (instr, word) ->
      check Alcotest.int32 (Format.asprintf "%a" Rv64.pp instr) word (Rv64.encode instr))
    [
      (Rv64.Ld (5, 10, 8), 0x00853283l);          (* ld t0, 8(a0) *)
      (Rv64.Sd (5, 10, 8), 0x00553423l);          (* sd t0, 8(a0) *)
      (Rv64.Lwu (5, 10, 0), 0x00056283l);         (* lwu t0, 0(a0) *)
      (Rv64.Iw (Isa.ADDI, 5, 6, 1), 0x0013029Bl); (* addiw t0, t1, 1 *)
      (Rv64.Rw (Isa.ADD, 5, 6, 7), 0x007302BBl);  (* addw t0, t1, t2 *)
      (Rv64.Rw (Isa.SUB, 5, 6, 7), 0x407302BBl);  (* subw t0, t1, t2 *)
      (Rv64.Itype (Isa.SLLI, 5, 6, 40), 0x02831293l); (* slli t0, t1, 40 *)
    ]

let rv64_roundtrip () =
  let cases =
    [
      Rv64.Rtype (Isa.ADD, 1, 2, 3);
      Rv64.Rtype (Isa.SRA, 4, 5, 6);
      Rv64.Itype (Isa.ADDI, 1, 2, -7);
      Rv64.Itype (Isa.SLLI, 1, 2, 63);
      Rv64.Itype (Isa.SRAI, 1, 2, 33);
      Rv64.Rw (Isa.SLL, 7, 8, 9);
      Rv64.Iw (Isa.SRAI, 7, 8, 13);
      Rv64.Load (Isa.LW, 1, 2, 100);
      Rv64.Lwu (1, 2, -12);
      Rv64.Ld (1, 2, 2040);
      Rv64.Store (Isa.SB, 1, 2, -1);
      Rv64.Sd (1, 2, 16);
      Rv64.Branch (Isa.BGEU, 1, 2, -64);
      Rv64.Lui (1, 0x7F000000);
      Rv64.Auipc (2, 0x1000);
      Rv64.Jal (1, 2048);
      Rv64.Jalr (1, 2, 4);
      Rv64.Ecall;
    ]
  in
  List.iter
    (fun i ->
      match Rv64.decode (Rv64.encode i) with
      | Ok i' -> check rv64_testable "roundtrip" i i'
      | Error e -> Alcotest.failf "decode failed for %s: %s" (Format.asprintf "%a" Rv64.pp i) e)
    cases

let rv64_rejects_m_extension () =
  (match Rv64.encode (Rv64.Rtype (Isa.MUL, 1, 2, 3)) with
  | exception Encode.Unencodable _ -> ()
  | _ -> Alcotest.fail "MUL should not encode in RV64I");
  (* mul a0,a1,a2 word decodes under RV32 but must be rejected here. *)
  check Alcotest.bool "mul word rejected" true
    (Result.is_error (Rv64.decode 0x02C58533l))

(* -------------------- 64-bit semantics -------------------- *)

let alu64_width () =
  check Alcotest.int64 "64-bit add does not wrap at 32" 0x100000000L
    (Rv64.alu64 Isa.ADD 0xFFFFFFFFL 1L);
  check Alcotest.int64 "sll 40" (Int64.shift_left 1L 40) (Rv64.alu64 Isa.SLL 1L 40L);
  check Alcotest.int64 "srl on negative" Int64.max_int
    (Rv64.alu64 Isa.SRL (-1L) 1L);
  check Alcotest.int64 "sltu" 1L (Rv64.alu64 Isa.SLTU 5L (-1L))

let aluw_sign_extension () =
  (* addiw: operate on low 32 bits and sign-extend. *)
  check Alcotest.int64 "addw wraps at 32 and sign-extends" (-2147483648L)
    (Rv64.aluw Isa.ADD 0x7FFFFFFFL 1L);
  check Alcotest.int64 "srlw zero-extends input word" 0x7FFFFFFFL
    (Rv64.aluw Isa.SRL 0xFFFFFFFFL 1L);
  check Alcotest.int64 "sraw keeps sign" (-1L) (Rv64.aluw Isa.SRA 0xFFFFFFFFL 1L);
  check Alcotest.int64 "sllw result sign-extends" (-2147483648L)
    (Rv64.aluw Isa.SLL 1L 31L)

(* Differential: on values representable in 32 bits, RV64's W-forms agree
   with the RV32 ALU. *)
let w_forms_match_rv32 () =
  let rng = Prng.create 0x64 in
  for _ = 1 to 500 do
    let a = Prng.int_in rng (-2147483648) 2147483647 in
    let b = Prng.int_in rng (-2147483648) 2147483647 in
    List.iter
      (fun op ->
        let r32 = Interp.Alu.rtype op a b in
        let r64 = Rv64.aluw op (Int64.of_int a) (Int64.of_int b) in
        check Alcotest.int64
          (Printf.sprintf "W-form %d %d" a b)
          (Int64.of_int r32) r64)
      [ Isa.ADD; Isa.SUB; Isa.SLL; Isa.SRL; Isa.SRA ]
  done

(* -------------------- execution -------------------- *)

let run_rv64 code setup =
  let mem = Main_memory.create ~size:65536 () in
  let m = Rv64.machine ~pc:0x1000 mem in
  setup m;
  match Rv64.run (Array.of_list code) ~base:0x1000 m with
  | Ok retired -> (m, retired)
  | Error e -> Alcotest.fail e

let rv64_sum_loop () =
  (* Sum 64-bit values: t1 += (t0 << 32) + t0 over 10 iterations. *)
  let m, _ =
    run_rv64
      [
        Rv64.Itype (Isa.ADDI, 5, 0, 0);              (* t0 = 0 *)
        Rv64.Itype (Isa.ADDI, 6, 0, 0);              (* t1 = 0 *)
        Rv64.Itype (Isa.SLLI, 7, 5, 32);             (* t2 = t0 << 32 *)
        Rv64.Rtype (Isa.ADD, 7, 7, 5);               (* t2 += t0 *)
        Rv64.Rtype (Isa.ADD, 6, 6, 7);               (* t1 += t2 *)
        Rv64.Itype (Isa.ADDI, 5, 5, 1);              (* t0++ *)
        Rv64.Branch (Isa.BLT, 5, 10, -16);           (* loop while t0 < a0 *)
        Rv64.Ecall;
      ]
      (fun m -> Rv64.set_x m 10 10L)
  in
  (* sum over i of (i << 32) + i, i = 0..9 = 45 * (2^32 + 1) *)
  check Alcotest.int64 "64-bit accumulation" (Int64.mul 45L 0x100000001L) (Rv64.get_x m 6)

let rv64_memory_doublewords () =
  let m, _ =
    run_rv64
      [
        Rv64.Lui (5, 0x12345000);
        Rv64.Itype (Isa.SLLI, 5, 5, 32);             (* big constant in high half *)
        Rv64.Itype (Isa.ADDI, 5, 5, 0x77);
        Rv64.Itype (Isa.ADDI, 6, 0, 0x100);          (* t1 = 0x100 *)
        Rv64.Sd (5, 6, 0);
        Rv64.Ld (7, 6, 0);
        Rv64.Lwu (28, 6, 4);                         (* high word, zero-extended *)
        Rv64.Ecall;
      ]
      (fun _ -> ())
  in
  check Alcotest.int64 "ld = sd" (Rv64.get_x m 5) (Rv64.get_x m 7);
  check Alcotest.int64 "lwu high word" 0x12345000L (Rv64.get_x m 28)

let rv64_x0_and_faults () =
  let m, _ = run_rv64 [ Rv64.Itype (Isa.ADDI, 0, 0, 5); Rv64.Ecall ] (fun _ -> ()) in
  check Alcotest.int64 "x0 hardwired" 0L (Rv64.get_x m 0);
  let mem = Main_memory.create ~size:64 () in
  let m = Rv64.machine ~pc:0x1000 mem in
  (* pc points nowhere *)
  m.Rv64.pc <- 0x2000;
  check Alcotest.bool "pc fault reported" true
    (Result.is_error (Rv64.run [| Rv64.Ecall |] ~base:0x1000 m))

(* -------------------- schedule view -------------------- *)

let schedule_slots_consistent () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "gaussian") in
  let model = Perf_model.create dfg in
  let placement =
    Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model)
  in
  let slots = Schedule_view.compute model placement in
  check Alcotest.int "one slot per node" (Dfg.node_count dfg) (Array.length slots);
  Array.iteri
    (fun i s ->
      check Alcotest.int "indexed" i s.Schedule_view.node;
      check Alcotest.bool "duration = op latency" true
        (Float.abs (s.Schedule_view.finish -. s.Schedule_view.start
                    -. Perf_model.op_latency model i)
        < 1e-9))
    slots;
  check (Alcotest.float 1e-9) "makespan = model latency"
    (Perf_model.iteration_latency model)
    (Schedule_view.makespan slots);
  (* Dependencies never start before their producers finish. *)
  Array.iteri
    (fun j nd ->
      Array.iter
        (function
          | Dfg.Node i ->
            check Alcotest.bool "producer first" true
              (slots.(i).Schedule_view.finish <= slots.(j).Schedule_view.start +. 1e-9)
          | Dfg.Reg_in _ -> ())
        nd.Dfg.srcs)
    dfg.Dfg.nodes

let schedule_gantt_renders () =
  let dfg = Runner.dfg_of_kernel (Workloads.find "nn") in
  let model = Perf_model.create dfg in
  let placement =
    Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model)
  in
  let slots = Schedule_view.compute model placement in
  let g = Schedule_view.gantt dfg slots in
  check Alcotest.bool "has bars" true (String.exists (( = ) '=') g);
  check Alcotest.bool "mentions LS entries" true
    (String.length g > 0
    && String.split_on_char '\n' g
       |> List.exists (fun l -> String.length l > 6 && String.sub l 5 2 = "LS"))

let suites =
  [
    ( "rv64",
      [
        Alcotest.test_case "golden encodings" `Quick golden_rv64_encodings;
        Alcotest.test_case "codec roundtrip" `Quick rv64_roundtrip;
        Alcotest.test_case "rejects M extension" `Quick rv64_rejects_m_extension;
        Alcotest.test_case "64-bit ALU width" `Quick alu64_width;
        Alcotest.test_case "W-form sign extension" `Quick aluw_sign_extension;
        Alcotest.test_case "W-forms match RV32" `Quick w_forms_match_rv32;
        Alcotest.test_case "64-bit sum loop" `Quick rv64_sum_loop;
        Alcotest.test_case "doubleword memory" `Quick rv64_memory_doublewords;
        Alcotest.test_case "x0 and faults" `Quick rv64_x0_and_faults;
      ] );
    ( "schedule_view",
      [
        Alcotest.test_case "slots consistent" `Quick schedule_slots_consistent;
        Alcotest.test_case "gantt renders" `Quick schedule_gantt_renders;
      ] );
  ]
