(* The benchmark executable regenerates every table and figure of the
   paper's evaluation (Section 6) and then times the hardware-critical
   algorithms with Bechamel.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- fig11        -- one experiment
     dune exec bench/main.exe -- micro        -- only the micro-benchmarks
     dune exec bench/main.exe -- list         -- experiment names

   Options (before the experiment names):
     --jobs N     run each experiment's measurements on N domains
                  (default 1; the tables are bit-identical for any N)
     --json PATH  dump per-experiment timings as JSON (schema v2: wall
                  clock plus simulated_cycles / cycles_per_second)
     --check PATH compare against a baseline JSON: simulated_cycles must
                  match exactly, cycles_per_second may not regress >2x
     --csv DIR    write each outcome as CSV *)

let experiments : (string * (jobs:int option -> Experiments.outcome)) list =
  [
    ("fig11", fun ~jobs -> Experiments.fig11 ?jobs ());
    ("fig12", fun ~jobs -> Experiments.fig12 ?jobs ());
    ("fig13", fun ~jobs -> Experiments.fig13 ?jobs ());
    ("fig14", fun ~jobs -> Experiments.fig14 ?jobs ());
    ("fig15", fun ~jobs -> Experiments.fig15 ?jobs ());
    ("fig16", fun ~jobs -> Experiments.fig16 ?jobs ());
    ("table1", fun ~jobs -> Experiments.table1 ?jobs ());
    ("table2", fun ~jobs -> Experiments.table2 ?jobs ());
    ("ablation", fun ~jobs -> Ablation.experiment ?jobs ());
    ("dse", fun ~jobs -> Dse.experiment ?jobs ());
    ("dse-guided", fun ~jobs -> Dse.guided_experiment ?jobs ());
    ("refine", fun ~jobs -> Refine.experiment ?jobs ());
  ]

(* Figure-style ASCII charts rendered next to the tables. *)
(* Parse a "1.33x"-style ratio cell. [None] on anything malformed — a
   malformed cell must drop its row from the chart, not plot as a 0.0 bar
   that looks like a real measurement. *)
let strip s =
  if String.length s < 2 then None
  else float_of_string_opt (String.sub s 0 (String.length s - 1))

let strip_row ~name ~key cells =
  match List.map strip cells |> List.fold_left
          (fun acc v -> match acc, v with Some l, Some x -> Some (x :: l) | _ -> None)
          (Some [])
  with
  | Some vs -> Some (List.rev vs)
  | None ->
    Printf.eprintf "[%s chart: skipping row %S with unparseable cells]\n" name key;
    None

let chart_of name (o : Experiments.outcome) =
  let rows = Tables.data_rows o.Experiments.table in
  match name with
  | "fig11" ->
    let series =
      List.filter_map
        (fun row ->
          match row with
          | [ k; m128; m512; _; _; _ ] when k <> "geomean" && k <> "paper (avg)" ->
            Option.map (fun vs -> (k, vs)) (strip_row ~name ~key:k [ m128; m512 ])
          | _ -> None)
        rows
    in
    Some
      (Chart.grouped ~title:"Figure 11 (chart): speedup vs 16-core CPU"
         ~series_names:[ "M-128"; "M-512" ] series)
  | "fig15" ->
    let series =
      List.filter_map
        (fun row ->
          match row with
          | [ pes; dflt; _; _ ] when pes <> "paper" ->
            Option.map
              (fun vs -> (pes ^ " PEs", List.hd vs))
              (strip_row ~name ~key:pes [ dflt ])
          | _ -> None)
        rows
    in
    Some (Chart.bars ~title:"Figure 15 (chart): nn scaling, default memory" series)
  | _ -> None

(* Per-experiment (wall-clock seconds, simulated-cycle delta) pairs,
   accumulated for --json / --check. The cycle delta comes from the
   process-wide {!Sim_meter}, so it is exact and jobs-invariant — CI can
   equality-gate on it while only tolerance-gating the wall clock. *)
let timings : (string * float * int) list ref = ref []

let run_experiment ?csv_dir ?jobs name f =
  let t0 = Unix.gettimeofday () in
  let c0 = Sim_meter.read () in
  let outcome = f ~jobs in
  let dt = Unix.gettimeofday () -. t0 in
  let cycles = Sim_meter.read () - c0 in
  timings := (name, dt, cycles) :: !timings;
  Printf.printf "\n";
  Tables.print outcome.Experiments.table;
  (match chart_of name outcome with
  | Some chart ->
    print_newline ();
    print_string chart
  | None -> ());
  (match csv_dir with
  | Some dir ->
    let path = Filename.concat dir (name ^ ".csv") in
    Export.write_file ~path (Export.outcome_to_csv outcome);
    Printf.printf "[wrote %s]\n" path
  | None -> ());
  Printf.printf "[%s finished in %.1fs]\n%!" name dt

(* Schema v2 adds [schema_version] plus per-experiment [simulated_cycles]
   and [cycles_per_second]; every v1 field keeps its name and meaning, so
   v1 consumers keep working. *)
let write_timings ~path ~jobs =
  let ts = List.rev !timings in
  let total = List.fold_left (fun acc (_, dt, _) -> acc +. dt) 0.0 ts in
  let json =
    Json.Assoc
      [
        ("schema_version", Json.Int 2);
        ("jobs", Json.Int (match jobs with None -> 1 | Some j -> j));
        ("total_seconds", Json.Float total);
        ( "experiments",
          Json.List
            (List.map
               (fun (name, dt, cycles) ->
                 Json.Assoc
                   [
                     ("name", Json.String name);
                     ("seconds", Json.Float dt);
                     ("simulated_cycles", Json.Int cycles);
                     ( "cycles_per_second",
                       Json.Float
                         (if dt > 0.0 then float_of_int cycles /. dt else 0.0) );
                   ])
               ts) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "[wrote %s]\n%!" path

(* --check BASELINE.json: compare this run against a committed schema-v2
   baseline. [simulated_cycles] must match exactly (the simulation is
   deterministic — any drift is a correctness bug, not noise); the wall
   clock only fails when [cycles_per_second] drops more than 2x below the
   baseline, a loose bound that survives shared CI runners. Experiments
   absent from either side are skipped, as are baselines without cycle
   fields (schema v1). *)
let check_against ~path =
  let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("[check] " ^ s); true) fmt in
  let text = In_channel.with_open_text path In_channel.input_all in
  match Json.of_string text with
  | Error e ->
    Printf.eprintf "[check] cannot parse %s: %s\n" path e;
    exit 1
  | Ok base ->
    let base_exps =
      match Json.member "experiments" base with
      | Some l -> Option.value (Json.to_list l) ~default:[]
      | None -> []
    in
    let lookup name =
      List.find_opt
        (fun e -> Json.member "name" e |> Option.map Json.to_string_opt
                  |> Option.join = Some name)
        base_exps
    in
    let bad = ref false in
    List.iter
      (fun (name, dt, cycles) ->
        match lookup name with
        | None -> ()
        | Some e ->
          let bint k = Json.member k e |> fun o -> Option.bind o Json.to_int in
          let bfloat k = Json.member k e |> fun o -> Option.bind o Json.to_float in
          (match bint "simulated_cycles" with
          | Some c when c <> cycles ->
            bad := fail "%s: simulated_cycles %d, baseline %d" name cycles c || !bad
          | _ -> ());
          (match bfloat "cycles_per_second" with
          | Some base_cps when base_cps > 0.0 ->
            let cps = if dt > 0.0 then float_of_int cycles /. dt else 0.0 in
            if cps < base_cps /. 2.0 then
              bad :=
                fail "%s: %.3g cycles/s is >2x below baseline %.3g" name cps base_cps
                || !bad
          | _ -> ()))
      (List.rev !timings);
    if !bad then exit 1;
    Printf.printf "[check] ok against %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure, timing the piece of
   MESA machinery that experiment leans on.                             *)

let nn_small = Workloads.nn ~n:256 ()
let dfg_nn = lazy (Runner.dfg_of_kernel nn_small)

let staged_controller () =
  (* fig11/fig14 backbone: a full monitored, translated, offloaded run. *)
  let mem = Main_memory.create () in
  let machine = Kernel.prepare nn_small mem in
  let report = Controller.run nn_small.Kernel.program machine in
  Hierarchy.release report.Controller.hier;
  Main_memory.release mem

let staged_modulo_schedule () =
  (* fig12: OpenCGRA's modulo scheduler. *)
  ignore (Opencgra.schedule (Lazy.force dfg_nn) ~grid:Grid.m128)

let staged_energy () =
  (* fig13/fig16: energy accounting over a synthetic activity record. *)
  let a = Activity.create () in
  a.Activity.int_ops <- 10_000;
  a.Activity.fp_ops <- 10_000;
  a.Activity.mem_ops <- 5_000;
  a.Activity.local_transfers <- 30_000;
  a.Activity.noc_transfers <- 2_000;
  a.Activity.cycles <- 40_000;
  ignore (Energy_model.accel_energy ~grid:Grid.m128 a)

let staged_dynaspam () =
  (* fig14 baseline: the DynaSpAM analytic model. *)
  ignore (Dynaspam.run (Lazy.force dfg_nn) ~iterations:1000)

let staged_engine () =
  (* fig15 backbone: one accelerator execution of the nn loop. *)
  let dfg = Lazy.force dfg_nn in
  let model = Perf_model.create dfg in
  let placement =
    Result.get_ok (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model)
  in
  let config = Accel_config.with_opts ~tiling:4 ~pipelined:true placement in
  let mem = Main_memory.create () in
  let machine = Kernel.prepare nn_small mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  ignore (Engine.execute ~config ~dfg ~machine ~hier ());
  Hierarchy.release hier;
  Main_memory.release mem

let staged_mapper () =
  (* Algorithm 1, the latency-minimizing instruction mapping (fig16 pays
     this on every reconfiguration). *)
  ignore
    (Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc
       (Perf_model.create (Lazy.force dfg_nn)))

let staged_area_model () =
  (* table1: the parametric synthesis model. *)
  ignore (Area_model.full_table ~capacity:512 ~grid:Grid.m128)

let staged_translation () =
  (* table2: LDFG build + map + configuration sizing. *)
  let dfg = Lazy.force dfg_nn in
  let model = Perf_model.create dfg in
  match Mapper.map ~grid:Grid.m128 ~kind:Interconnect.Mesh_noc model with
  | Ok placement ->
    ignore
      (Config_manager.translation_cycles Mapper.default_config dfg
         (Accel_config.plain placement))
  | Error _ -> ()

let micro_benchmarks () =
  let open Bechamel in
  let test =
    Test.make_grouped ~name:"mesa"
      [
        Test.make ~name:"fig11+fig14:controller-end-to-end" (Staged.stage staged_controller);
        Test.make ~name:"fig12:opencgra-modulo-schedule" (Staged.stage staged_modulo_schedule);
        Test.make ~name:"fig13:energy-accounting" (Staged.stage staged_energy);
        Test.make ~name:"fig14:dynaspam-model" (Staged.stage staged_dynaspam);
        Test.make ~name:"fig15:engine-execution" (Staged.stage staged_engine);
        Test.make ~name:"fig16:mapper-algorithm1" (Staged.stage staged_mapper);
        Test.make ~name:"table1:area-model" (Staged.stage staged_area_model);
        Test.make ~name:"table2:translation-cost" (Staged.stage staged_translation);
      ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Tables.create ~title:"Micro-benchmarks (Bechamel, monotonic clock)"
      [ ("benchmark", Tables.Left); ("time per run", Tables.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
        let pretty =
          if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
          else Printf.sprintf "%.0f ns" ns
        in
        rows := (name, pretty) :: !rows
      | _ -> rows := (name, "n/a") :: !rows)
    results;
  List.iter (fun (n, v) -> Tables.add_row t [ n; v ]) (List.sort compare !rows);
  print_newline ();
  Tables.print t

let () =
  let rec parse_opts (csv_dir, jobs, json, check) = function
    | "--csv" :: dir :: rest ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      parse_opts (Some dir, jobs, json, check) rest
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 -> parse_opts (csv_dir, Some j, json, check) rest
      | Some _ | None ->
        Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
        exit 1)
    | "--json" :: path :: rest -> parse_opts (csv_dir, jobs, Some path, check) rest
    | "--check" :: path :: rest -> parse_opts (csv_dir, jobs, json, Some path) rest
    | rest -> ((csv_dir, jobs, json, check), rest)
  in
  let (csv_dir, jobs, json, check), args =
    parse_opts (None, None, None, None) (List.tl (Array.to_list Sys.argv))
  in
  let finish () =
    (match json with Some path -> write_timings ~path ~jobs | None -> ());
    match check with Some path -> check_against ~path | None -> ()
  in
  match args with
  | [] ->
    List.iter (fun (name, f) -> run_experiment ?csv_dir ?jobs name f) experiments;
    finish ();
    micro_benchmarks ()
  | [ "micro" ] -> micro_benchmarks ()
  | [ "list" ] ->
    List.iter (fun (name, _) -> print_endline name) experiments;
    print_endline "micro"
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> run_experiment ?csv_dir ?jobs name f
        | None ->
          Printf.eprintf "unknown experiment %s (try: dune exec bench/main.exe -- list)\n"
            name;
          exit 1)
      names;
    finish ()
