(** Per-PE cycle attribution: the collector behind `mesa profile`.

    Every engine cycle of every lane (one lane per PE, one per load-store
    entry) is charged to exactly one bucket of a closed stall taxonomy, so
    that for each lane

    {v sum over buckets = engine cycles + controller config charges v}

    — the closure invariant the test suite enforces. The engine threads a
    collector through its hot loop (charging is a handful of float adds per
    node firing and changes no timing state); the controller brackets
    engine windows with {!begin_window} / window-end bookkeeping and
    charges configuration overhead; `lib/harness/profile.ml` turns the
    readout into JSON, heatmaps and Perfetto timelines.

    Memory stays O(lanes x buckets): full per-lane totals, plus a bounded
    ring buffer of the most recent attributed intervals per lane for
    timeline rendering (older intervals fall off; the totals do not). *)

(** The closed taxonomy. Every attributed cycle lands in exactly one. *)
type bucket =
  | Busy             (** executing an enabled (or predicated-off) op *)
  | Recurrence_wait  (** waiting for producer values (dependence chains) *)
  | Mem_port_stall   (** queued on a cache port *)
  | Noc_stall        (** waiting on NoC router-slice injection *)
  | Long_op          (** occupied by an iterative div/sqrt unit *)
  | Config           (** configuration writes, offload state transfer,
                         discarded (faulted) windows — controller-charged *)
  | Drain            (** after the lane's last firing, before loop exit *)
  | Idle             (** lane never used by the mapped SDFG *)
  | Masked_faulty    (** lane masked out of the fabric by fault recovery *)

val buckets : bucket list
(** All buckets, in canonical (serialization) order. *)

val bucket_count : int
val bucket_index : bucket -> int
val bucket_name : bucket -> string
val bucket_of_name : string -> bucket option

type t

val create : ?ring:int -> grid:Grid.t -> unit -> t
(** A collector for [grid]'s geometry. [ring] bounds the per-lane interval
    ring buffers (default 256 intervals per lane; must be positive). *)

val grid : t -> Grid.t

(** {2 Lanes} *)

val lane_count : t -> int
(** PE lanes (row-major) followed by load-store-entry lanes. *)

val pe_lane : t -> Grid.coord -> int
val ls_lane : t -> int -> int
val lane_label : t -> int -> string
(** ["pe_R_C"] or ["ls_E"]. *)

val lane_is_pe : t -> int -> bool

(** {2 Window bracketing (controller / test driver side)} *)

val begin_window : t -> at:float -> unit
(** Arm the collector for one engine execution whose window-relative time 0
    sits at absolute (wall-clock) cycle [at]; snapshots the accumulated
    state so {!abort_window} can discard the window. *)

val abort_window : t -> unit
(** Roll the collector back to the last {!begin_window}: a faulted window's
    cycles are discarded by the controller and must not pollute the
    attribution (they are re-charged as {!Config} recovery overhead). If
    the aborted window pushed more intervals than a ring's capacity, that
    ring's replay of older intervals is approximate; totals stay exact. *)

val charge_config : t -> int -> unit
(** Charge [cycles] of the {!Config} bucket to every lane (configuration
    writes, offload transfers, discarded fault windows), growing the
    per-lane attributed total by the same amount. *)

(** {2 Engine-side recording} *)

val charge_op : t ->
  lane:int -> start:float -> noc_wait:float -> port_wait:float ->
  service:float -> long_op:bool -> unit
(** One node firing on [lane]: inputs arrived at window-relative [start]
    (of which up to [noc_wait] cycles were NoC queueing — charged
    {!Noc_stall}, the rest of the gap {!Recurrence_wait}), then the op
    queued [port_wait] cycles on a cache port ({!Mem_port_stall}) and
    executed for [service] cycles ({!Busy}, or {!Long_op} when [long_op]).
    Overlap with already-attributed time on the lane (pipelined or tiled
    firings) is clipped so the lane's timeline never double-charges. *)

val observe_ii : t ->
  rec_:float -> mem:float -> fu:float -> achieved:float -> unit
(** One iteration's initiation-interval components: the loop-carried
    recurrence bound, the memory-port throughput bound, the iterative-unit
    bound, and the II actually achieved. *)

val note_noc_slice : t -> slice:int -> claims:int -> busy:int -> unit
(** Window-end readout of one router slice's contention table: total
    transfers injected and distinct busy cycles. Accumulated per slice. *)

val note_port_access : t -> port:int -> issue:float -> service:float -> unit
(** One cache-port access: window-relative issue time and service latency,
    recorded into the port's interval ring for timeline lanes. *)

val note_port_totals : t -> claims:int -> busy:int -> unit
(** Window-end readout of the shared memory-port contention table. *)

val end_window : t -> grid:Grid.t -> cycles:int -> iterations:int -> unit
(** Close the window: charge every lane's uncovered tail ({!Drain} for
    lanes that fired, {!Idle} for unused lanes, {!Masked_faulty} for PEs
    masked out of [grid] — the possibly-degraded fabric the window ran on)
    and fold [cycles] into the attributed totals. Called by the engine at
    the end of a successful execution. *)

(** {2 Readout} *)

val windows : t -> int
val iterations : t -> int

val engine_cycles : t -> int
(** Sum of [cycles] over completed (non-aborted) windows. *)

val config_cycles : t -> int
val total_cycles : t -> int
(** [engine_cycles + config_cycles] — what every lane's buckets sum to. *)

val lane_buckets : t -> int -> int array
(** Integer cycles per bucket for one lane, quantized with
    largest-remainder rounding so the array sums to exactly
    {!total_cycles}. Deterministic. *)

val totals : t -> int array
(** {!lane_buckets} summed over all lanes. *)

val lane_fired : t -> int -> bool
(** Whether the lane charged at least one firing over the whole run. *)

val lane_intervals : t -> int -> (float * float * bucket) list
(** The lane's ring-buffered recent intervals, oldest first, as
    [(absolute_start, duration, bucket)]. *)

val port_intervals : t -> int -> (float * float) list
(** Recent accesses on one cache port, oldest first, as
    [(absolute_issue, service)]. *)

val port_count : t -> int
val noc_slice_count : t -> int
val noc_claims : t -> int array
val noc_busy : t -> int array
val port_claims : t -> int
val port_busy : t -> int

type ii_summary = {
  ii_iterations : int;
  ii_mean : float;          (** mean achieved II *)
  ii_rec_mean : float;
  ii_mem_mean : float;
  ii_fu_mean : float;
  ii_rec_bound : int;       (** iterations whose II the recurrence set *)
  ii_mem_bound : int;
  ii_fu_bound : int;
}

val ii_summary : t -> ii_summary
