(** Activity counters accumulated by the engine during a run, consumed by
    the power model (Figure 13's breakdown and Figure 16's per-iteration
    energy) and by the evaluation tables. *)

type t = {
  mutable int_ops : int;       (** enabled integer ALU/MUL/DIV firings *)
  mutable fp_ops : int;
  mutable mem_ops : int;       (** loads + stores that reached the LSU *)
  mutable branch_ops : int;
  mutable disabled_ops : int;  (** predicated-off pass-through firings *)
  mutable forwarded_loads : int;
  mutable local_transfers : int;
  mutable noc_transfers : int;
  mutable iterations : int;
  mutable cycles : int;
}

val create : unit -> t
val add : t -> t -> unit
(** Accumulate [src] into the first argument. *)

val total_ops : t -> int

val register_stats : t -> Stats.group -> unit
(** Expose every activity counter (plus [total_ops]) as snapshot-time
    probes under [grp]. *)
