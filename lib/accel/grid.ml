type coord = { row : int; col : int }

let coord row col = { row; col }
let manhattan a b = abs (a.row - b.row) + abs (a.col - b.col)

type t = {
  rows : int;
  cols : int;
  fp_tile : int;
  ls_entries : int;
  mem_ports : int;
  slice_width : int;
  name : string;
  masked : coord list;
}

let make ?(fp_tile = 2) ?(mem_ports = 2) ?(slice_width = 4) ?name ~rows ~cols () =
  if rows <= 0 || cols <= 0 then invalid_arg "Grid.make: empty grid";
  let name = Option.value name ~default:(Printf.sprintf "M-%d" (rows * cols)) in
  {
    rows;
    cols;
    fp_tile;
    ls_entries = max 4 (rows * cols / 2);
    mem_ports;
    slice_width;
    name;
    masked = [];
  }

let m64 = make ~rows:16 ~cols:4 ~name:"M-64" ()
let m128 = make ~rows:16 ~cols:8 ~name:"M-128" ()
let m512 = make ~rows:64 ~cols:8 ~mem_ports:4 ~name:"M-512" ()

let of_pe_count n =
  if n <= 0 then invalid_arg "Grid.of_pe_count: non-positive PE count";
  let cols = if n >= 64 then 8 else if n >= 16 then 4 else 2 in
  let rows = Stats.div_ceil n cols in
  make ~rows ~cols ~name:(Printf.sprintf "M-%d" (rows * cols)) ()

let pe_count t = t.rows * t.cols
let in_bounds t c = c.row >= 0 && c.row < t.rows && c.col >= 0 && c.col < t.cols
let is_masked t c = List.mem c t.masked

let mask t coords =
  let fresh =
    List.filter (fun c -> in_bounds t c && not (is_masked t c)) coords
  in
  let fresh = List.sort_uniq compare fresh in
  if fresh = [] then t else { t with masked = t.masked @ fresh }

let healthy_pe_count t = pe_count t - List.length t.masked

let has_fp t c =
  ((c.row / t.fp_tile) + (c.col / t.fp_tile)) mod 2 = 0

let supports t c (cls : Isa.op_class) =
  in_bounds t c
  && (not (is_masked t c))
  &&
  match cls with
  | Isa.C_alu | Isa.C_mul | Isa.C_div | Isa.C_branch -> true
  | Isa.C_fadd | Isa.C_fmul | Isa.C_fdiv -> has_fp t c
  | Isa.C_load | Isa.C_store | Isa.C_jump | Isa.C_system -> false

let ls_row t e = e mod t.rows

let iter_coords t f =
  for row = 0 to t.rows - 1 do
    for col = 0 to t.cols - 1 do
      f { row; col }
    done
  done
