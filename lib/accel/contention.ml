type t = {
  mutable capacity : int;
  slots : (int, int) Hashtbl.t; (* cycle -> operations started that cycle *)
  mutable claimed : int;
}

(* Sized for a full engine execution up front so the per-cycle table rarely
   rehashes; recycled executions reuse the same buckets via [reset]. *)
let initial_slots = 1024

let create ~capacity =
  if capacity <= 0 then invalid_arg "Contention.create: capacity must be positive";
  { capacity; slots = Hashtbl.create initial_slots; claimed = 0 }

let claim_slot t ready =
  let rec find c =
    let used = Option.value (Hashtbl.find_opt t.slots c) ~default:0 in
    if used < t.capacity then begin
      Hashtbl.replace t.slots c (used + 1);
      (c, used)
    end
    else find (c + 1)
  in
  let start = int_of_float (Float.ceil ready) in
  let cycle, slot = find (max 0 start) in
  t.claimed <- t.claimed + 1;
  (Float.max ready (float_of_int cycle), slot)

let claim t ready = fst (claim_slot t ready)
let claimed t = t.claimed
let busy_cycles t = Hashtbl.length t.slots

let reset ?capacity t =
  (match capacity with
  | None -> ()
  | Some c ->
    if c <= 0 then invalid_arg "Contention.reset: capacity must be positive";
    t.capacity <- c);
  Hashtbl.reset t.slots;
  t.claimed <- 0
