(* Slot-based contention model.

   The naive model kept a cycle -> occupancy hashtable and, on each claim,
   scanned forward one cycle at a time until it found spare capacity. On an
   oversubscribed resource (a port-bound kernel) the free frontier runs
   ahead of the ready times, so every claim re-walks the same run of full
   cycles: O(iterations^2) over an execution — the single hottest path of
   the whole engine, per profile.

   This implementation keeps the same observable semantics — a claim books
   the first cycle at or after its ready time with spare capacity, and a
   late claim can still fill an earlier idle slot — but jumps over runs of
   full cycles in near-constant amortized time:

   - per-cycle occupancy lives in an open-addressed int->int table (linear
     probing, power-of-two size, multiplicative hashing) instead of a
     polymorphic-hash Hashtbl;
   - every full cycle carries a union-find style skip pointer to the next
     candidate cycle. A cycle can never become non-full (slots are never
     released), so a skip pointer only ever chases forward toward the first
     free cycle, and path compression makes repeated claims into the same
     full run O(inverse Ackermann) amortized — the "batched jump to the
     next ready event" of the event-driven engine core. *)

type t = {
  mutable capacity : int;
  mutable mask : int;  (* table size - 1; size is a power of two *)
  mutable keys : int array;  (* cycle + 1; 0 marks an empty slot *)
  mutable cnt : int array;  (* operations started that cycle *)
  mutable nxt : int array;  (* skip pointer, meaningful once the cycle is full *)
  mutable occupied : int;  (* distinct cycles with >= 1 operation *)
  mutable claimed : int;
  mutable last_slot : int;  (* sub-slot taken by the most recent claim *)
}

(* Sized for a full engine execution up front so the table rarely grows;
   recycled executions reuse the same buffers via [reset]. *)
let initial_size = 1024

let create ~capacity =
  if capacity <= 0 then invalid_arg "Contention.create: capacity must be positive";
  {
    capacity;
    mask = initial_size - 1;
    keys = Array.make initial_size 0;
    cnt = Array.make initial_size 0;
    nxt = Array.make initial_size 0;
    occupied = 0;
    claimed = 0;
    last_slot = 0;
  }

(* Fibonacci multiplicative hash of a cycle number into the table. *)
let[@inline] hash t k = (k * 0x2545F4914F6CDD1D) land max_int land t.mask

(* Index of cycle [k]'s slot, or of the empty slot where it would insert. *)
let[@inline] probe t k =
  let key = k + 1 in
  let i = ref (hash t k) in
  while
    let kk = t.keys.(!i) in
    kk <> 0 && kk <> key
  do
    i := (!i + 1) land t.mask
  done;
  !i

let grow t =
  let size = (t.mask + 1) * 2 in
  let keys = t.keys and cnt = t.cnt and nxt = t.nxt in
  t.mask <- size - 1;
  t.keys <- Array.make size 0;
  t.cnt <- Array.make size 0;
  t.nxt <- Array.make size 0;
  Array.iteri
    (fun i key ->
      if key <> 0 then begin
        let j = probe t (key - 1) in
        t.keys.(j) <- key;
        t.cnt.(j) <- cnt.(i);
        t.nxt.(j) <- nxt.(i)
      end)
    keys

(* First cycle >= [start] with spare capacity. Walks the skip chain of full
   cycles (iteratively, then compresses the whole chain to the answer so
   the next claim lands in O(1)). *)
let find_free t start =
  let rec walk c =
    let i = probe t c in
    if t.keys.(i) <> 0 && t.cnt.(i) >= t.capacity then walk t.nxt.(i) else c
  in
  let free = walk start in
  (* Path compression: repoint every full cycle on the chain at the answer. *)
  let c = ref start in
  while
    let i = probe t !c in
    if t.keys.(i) <> 0 && t.cnt.(i) >= t.capacity then begin
      let n = t.nxt.(i) in
      t.nxt.(i) <- free;
      c := n;
      !c <> free
    end
    else false
  do
    ()
  done;
  free

(* Allocation-free claim: the sub-slot lands in [last_slot] instead of a
   returned pair, keeping the engine's per-access path tuple-free. *)
let claim_issue t ready =
  let start = int_of_float (Float.ceil ready) in
  let cycle = find_free t (max 0 start) in
  let i = probe t cycle in
  let used =
    if t.keys.(i) = 0 then begin
      t.keys.(i) <- cycle + 1;
      t.cnt.(i) <- 0;
      t.nxt.(i) <- 0;
      t.occupied <- t.occupied + 1;
      0
    end
    else t.cnt.(i)
  in
  t.cnt.(i) <- used + 1;
  if used + 1 >= t.capacity then t.nxt.(i) <- cycle + 1;
  t.claimed <- t.claimed + 1;
  t.last_slot <- used;
  (* Keep the load factor under 5/8 so probes stay short (after all slot
     writes: growing rehashes and would invalidate [i]). *)
  if t.occupied * 8 > (t.mask + 1) * 5 then grow t;
  Float.max ready (float_of_int cycle)

let claim_slot t ready =
  let issue = claim_issue t ready in
  (issue, t.last_slot)

let claim t ready = claim_issue t ready
let last_slot t = t.last_slot
let claimed t = t.claimed
let busy_cycles t = t.occupied

let reset ?capacity t =
  (match capacity with
  | None -> ()
  | Some c ->
    if c <= 0 then invalid_arg "Contention.reset: capacity must be positive";
    t.capacity <- c);
  (* Shrink pathologically grown tables back toward the initial footprint;
     otherwise keep the warm buffers for the next execution. *)
  if t.mask + 1 > 65536 then begin
    t.mask <- initial_size - 1;
    t.keys <- Array.make initial_size 0;
    t.cnt <- Array.make initial_size 0;
    t.nxt <- Array.make initial_size 0
  end
  else Array.fill t.keys 0 (t.mask + 1) 0;
  t.occupied <- 0;
  t.claimed <- 0;
  t.last_slot <- 0
