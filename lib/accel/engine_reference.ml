(* The legacy engine: every DFG node re-evaluated on every fabric
   iteration, arrival folds recomputed from scratch each time. Kept verbatim
   as the differential oracle for the event-driven engine in [Engine] — the
   qcheck harness and `mesa_cli --engine reference` run both implementations
   and assert bit-identical cycles, memory, registers, stats and attribution
   sums. Not used on any production path; prefer [Engine.execute]. *)

open Engine_core

let execute ?(max_iterations = 4_000_000) ?stop_after ?fault ?(watchdog_window = 512)
    ?attribution ~(config : Accel_config.t) ~(dfg : Dfg.t)
    ~(machine : Machine.t) ~(hier : Hierarchy.t) () =
  match Placement.validate dfg config.placement with
  | Error e -> Error ("invalid placement: " ^ e)
  | Ok () -> (
    let n = Dfg.node_count dfg in
    let pl = config.placement in
    let grid = pl.Placement.grid in
    let nodes = dfg.Dfg.nodes in
    let mem = machine.Machine.mem in
    let debug = Sys.getenv_opt "MESA_ENGINE_DEBUG" <> None in
    (* Static per-node tables, hoisted out of the iteration loop: operation
       class and fabric latency, guard predicates, and the arrival
       dependencies (operand sources, hidden value, guards, memory-order
       link — in exactly the order the arrival fold visits them). *)
    let cls_of = Array.map (fun nd -> Isa.op_class nd.Dfg.instr) nodes in
    let cls_lat = Array.map (fun cls -> float_of_int (Latency.accel cls)) cls_of in
    let guards_of = Array.map (fun nd -> Array.of_list nd.Dfg.guards) nodes in
    let deps_of =
      Array.map
        (fun nd ->
          let ds = ref [] in
          Array.iter
            (function Dfg.Node i -> ds := i :: !ds | Dfg.Reg_in _ -> ())
            nd.Dfg.srcs;
          (match nd.Dfg.hidden with
          | Some (Dfg.Node i) -> ds := i :: !ds
          | Some (Dfg.Reg_in _) | None -> ());
          List.iter (fun (b, _) -> ds := b :: !ds) nd.Dfg.guards;
          if Isa.is_store nd.Dfg.instr then
            Option.iter (fun s -> ds := s :: !ds) nd.Dfg.prev_store;
          Array.of_list (List.rev !ds))
        nodes
    in
    (* Cycle attribution (the `mesa profile` collector): pure observation —
       charging never feeds back into any timing computation, so a profiled
       run is bit-identical to an unprofiled one. *)
    let prof = Option.is_some attribution in
    let lane_of =
      match attribution with
      | None -> [||]
      | Some a ->
        Array.init n (fun i ->
            match Placement.loc_of pl i with
            | Placement.Pe c -> Attribution.pe_lane a c
            | Placement.Ls e -> Attribution.ls_lane a e)
    in
    let live_out_x = Array.of_list dfg.Dfg.live_out_x in
    let live_out_f = Array.of_list dfg.Dfg.live_out_f in
    (* Loop-carried producers bound the pipelined initiation interval. *)
    let carried_nodes =
      Dfg.loop_carried dfg
      |> List.filter_map (fun (_, _, src) ->
             match src with Dfg.Node p -> Some p | Dfg.Reg_in _ -> None)
      |> Array.of_list
    in
    (* Optimization lookup tables. *)
    let forwarded = Array.make n false in
    List.iter (fun (load, _) -> forwarded.(load) <- true) config.forwarding;
    let vector_member = Array.make n false in
    List.iter
      (function
        | [] -> ()
        | _leader :: members -> List.iter (fun m -> vector_member.(m) <- true) members)
      config.vector_groups;
    let prefetched = Array.make n false in
    List.iter (fun l -> prefetched.(l) <- true) config.prefetched;
    (* Values: one slot per node, in the file its destination lives in. *)
    let vx = Array.make n 0 in
    let vf = Array.make n 0.0 in
    let in_x = Array.init Reg.count (Machine.get_x machine) in
    let in_f = Array.init Reg.count (Machine.get_f machine) in
    (* Fault bookkeeping: PE coordinate per node (LS entries are not fault
       targets) and the effective cache-port count after degradation. Port
       loss is sampled at window start; a mid-window ports event takes
       effect from the next window. *)
    let pe_coord =
      Array.init n (fun i ->
          match Placement.loc_of pl i with
          | Placement.Pe c -> Some c
          | Placement.Ls _ -> None)
    in
    (match fault with
    | Some f ->
      Fault.begin_window f
        ~used:(List.filter_map Fun.id (Array.to_list pe_coord))
    | None -> ());
    let effective_ports =
      let lost = match fault with Some f -> Fault.ports_lost f | None -> 0 in
      max 1 (grid.Grid.mem_ports - lost)
    in
    (* Timing state. *)
    let completes = Array.make n 0.0 in
    let acquired = ref [] in
    let acquire ~capacity =
      let c =
        match Engine_core.scratch_take () with
        | Some c ->
          Contention.reset ~capacity c;
          c
        | None -> Contention.create ~capacity
      in
      acquired := c :: !acquired;
      c
    in
    let ports = acquire ~capacity:effective_ports in
    let tiling = max 1 config.tiling in
    (* Tiled instances occupy disjoint physical regions, so each gets its
       own router slices; slot [inst * nslices + slice] serves (instance,
       slice). Slices are claimed lazily — most stay unused. *)
    let nslices = Interconnect.slices grid in
    let noc : Contention.t option array = Array.make (tiling * nslices) None in
    let noc_slot inst slice =
      let idx = (inst * nslices) + slice in
      match noc.(idx) with
      | Some c -> c
      | None ->
        let c = acquire ~capacity:1 in
        noc.(idx) <- Some c;
        c
    in
    let inst_next = Array.make tiling 0.0 in
    (* Measurements: one fresh registry per profiling window, snapshotted
       into the result. The hardware counters the optimizer reads (§5.2)
       live here; arrays/hashtable keep the hot-loop path at one observe. *)
    let reg = Stats.registry () in
    let node_grp = Stats.group reg "node" in
    let node_subgrps = Array.init n (fun i -> Stats.subgroup node_grp (string_of_int i)) in
    let node_lat = Array.map (fun g -> Stats.histogram g "latency") node_subgrps in
    let amat = Array.map (fun g -> Stats.histogram g "amat") node_subgrps in
    let edge_grp = Stats.group reg "edge" in
    let edge_subgrps : (int, Stats.group) Hashtbl.t = Hashtbl.create 16 in
    let edge_lat : (int * int, Stats.histogram) Hashtbl.t = Hashtbl.create 64 in
    let contention_grp = Stats.group reg "contention" in
    let noc_queue = Stats.histogram contention_grp "noc_queue_delay" in
    let port_queue = Stats.histogram contention_grp "port_queue_delay" in
    let ii_achieved = Stats.histogram (Stats.group reg "ii") "achieved" in
    let act = Activity.create () in
    let val_i = function
      | Dfg.Node i -> vx.(i)
      | Dfg.Reg_in (r, Dfg.X) -> in_x.(r)
      | Dfg.Reg_in (r, Dfg.F) ->
        raise (Exec_fail (Printf.sprintf "int read of FP live-in f%d" r))
    in
    let val_f = function
      | Dfg.Node i -> vf.(i)
      | Dfg.Reg_in (r, Dfg.F) -> in_f.(r)
      | Dfg.Reg_in (r, Dfg.X) ->
        raise (Exec_fail (Printf.sprintf "FP read of int live-in %s" (Reg.name r)))
    in
    let record_edge i j lat =
      let h =
        match Hashtbl.find_opt edge_lat (i, j) with
        | Some h -> h
        | None ->
          let sub =
            match Hashtbl.find_opt edge_subgrps i with
            | Some g -> g
            | None ->
              let g = Stats.subgroup edge_grp (string_of_int i) in
              Hashtbl.add edge_subgrps i g;
              g
          in
          let h = Stats.histogram sub (string_of_int j) in
          Hashtbl.add edge_lat (i, j) h;
          h
      in
      Stats.observe h lat
    in
    (* One data/control transfer from node [i] to node [j], with NoC
       contention applied at the producer's router slice. [last_noc_queue]
       lets the profiler split arrival gaps into NoC vs dependence wait. *)
    let last_noc_queue = ref 0.0 in
    let transfer_in inst iter_start i j =
      let base = float_of_int (Placement.transfer pl i j) in
      match Placement.route pl i j with
      | Interconnect.Local ->
        act.Activity.local_transfers <- act.Activity.local_transfers + 1;
        last_noc_queue := 0.0;
        record_edge i j base;
        base
      | Interconnect.Noc ->
        let slice = Interconnect.noc_slice grid (Placement.coord_of pl i) in
        let abs_out = iter_start +. completes.(i) in
        let inject = Contention.claim (noc_slot inst slice) abs_out in
        act.Activity.noc_transfers <- act.Activity.noc_transfers + 1;
        Stats.observe noc_queue (inject -. abs_out);
        last_noc_queue := inject -. abs_out;
        let lat = base +. (inject -. abs_out) in
        record_edge i j lat;
        lat
    in
    (* Claim a memory port: returns queuing delay given absolute readiness.
       [last_port_slot] records which sub-slot of the issue cycle was taken
       — the profiler's deterministic port-lane index. *)
    let last_port_slot = ref 0 in
    let claim_port abs_ready =
      let issue, slot = Contention.claim_slot ports abs_ready in
      let delay = issue -. abs_ready in
      last_port_slot := slot;
      Stats.observe port_queue delay;
      delay
    in
    (* Corrupt node [j]'s output latch: stuck-at [value] for permanent
       damage, xor-flip for a transient strike. Branch latches stick at /
       flip toward "taken" so a damaged back branch spins (the watchdog
       scenario). Returns whether the latched value actually changed. *)
    let corrupt_latch j ~value ~stuck =
      let nd = nodes.(j) in
      if cls_of.(j) = Isa.C_branch then begin
        let old = vx.(j) in
        vx.(j) <- (if stuck then 1 else if old <> 0 then 0 else 1);
        vx.(j) <> old
      end
      else if Isa.writes_int nd.Dfg.instr <> None then begin
        let old = vx.(j) in
        vx.(j) <- s32 (if stuck then value else old lxor value);
        vx.(j) <> old
      end
      else if Isa.writes_fp nd.Dfg.instr <> None then begin
        let old = vf.(j) in
        let bits = Interp.Alu.fmv_x_w old in
        vf.(j) <- Interp.Alu.fmv_w_x (if stuck then value else bits lxor value);
        vf.(j) <> old
      end
      else false
    in
    let run () =
      let iterations = ref 0 in
      let end_time = ref 0.0 in
      let exit_reached = ref false in
      let paused = ref false in
      let budget_hit = ref false in
      let watchdog_fired = ref false in
      let first_corrupt = ref None in
      let corrupt_iters = ref 0 in
      (* Stores observed so far in the current iteration, newest first. *)
      let iter_stores = ref [] in
      while not !exit_reached do
        let inst = !iterations mod tiling in
        let iter_start = inst_next.(inst) in
        iter_stores := [];
        let strikes =
          match fault with None -> [] | Some f -> (Fault.tick f).Fault.strikes
        in
        (* Iterative (non-pipelined) units bound reuse of their PE; all other
           PEs are internally pipelined. *)
        let fu_bound = ref 1.0 in
        let mem_accesses = ref 0 in
        for j = 0 to n - 1 do
          let nd = nodes.(j) in
          let cls = cls_of.(j) in
          (* Guard evaluation: a branch node's value is 1 when taken. *)
          let disabled =
            Array.exists (fun (b, dis) -> (vx.(b) <> 0) = dis) guards_of.(j)
          in
          (* Arrival of inputs (Equation 2, with contention). [arr_nonoc]
             shadows the arrival fold with NoC queueing deducted; the
             difference is the profiler's NoC-stall share of the gap. *)
          let arrival = ref 0.0 in
          let arr_nonoc = ref 0.0 in
          let dep i =
            let lat = transfer_in inst iter_start i j in
            arrival := Float.max !arrival (completes.(i) +. lat);
            if prof then
              arr_nonoc := Float.max !arr_nonoc (completes.(i) +. lat -. !last_noc_queue)
          in
          let deps = deps_of.(j) in
          for d = 0 to Array.length deps - 1 do
            dep deps.(d)
          done;
          (* Functional execution + operation latency. *)
          let oplat = ref 1.0 in
          let pq = ref 0.0 in
          if disabled then begin
            act.Activity.disabled_ops <- act.Activity.disabled_ops + 1;
            (match (Isa.writes_int nd.Dfg.instr, nd.Dfg.hidden) with
            | Some _, Some h -> vx.(j) <- val_i h
            | Some _, None -> vx.(j) <- 0
            | None, _ -> ());
            (match (Isa.writes_fp nd.Dfg.instr, nd.Dfg.hidden) with
            | Some _, Some h -> vf.(j) <- val_f h
            | Some _, None -> vf.(j) <- 0.0
            | None, _ -> ());
            if cls = Isa.C_branch then vx.(j) <- 0
          end
          else begin
            let mem_access ~load ~addr =
              incr mem_accesses;
              act.Activity.mem_ops <- act.Activity.mem_ops + 1;
              (* Dynamic disambiguation: an aliasing earlier store forwards
                 through the LSU broadcast; wait for it. *)
              (match
                 List.find_opt (fun (_, a) -> a lsr 2 = addr lsr 2) !iter_stores
               with
              | Some (s, _) when load -> dep s
              | Some _ | None -> ());
              if load && forwarded.(j) then begin
                act.Activity.forwarded_loads <- act.Activity.forwarded_loads + 1;
                oplat := 2.0
              end
              else if load && vector_member.(j) then oplat := 1.0
              else begin
                let queue = claim_port (iter_start +. !arrival) in
                let cache =
                  if load then Hierarchy.load_latency hier addr
                  else Hierarchy.store_latency hier addr
                in
                let lat =
                  if load && prefetched.(j) then
                    (* Issued an iteration ahead: only the hit path shows. *)
                    queue +. float_of_int (Hierarchy.min_latency hier)
                  else queue +. float_of_int cache
                in
                Stats.observe amat.(j) lat;
                oplat := lat;
                pq := queue;
                match attribution with
                | Some a ->
                  Attribution.note_port_access a ~port:!last_port_slot
                    ~issue:(iter_start +. !arrival +. queue)
                    ~service:(lat -. queue)
                | None -> ()
              end
            in
            match nd.Dfg.instr with
            | Isa.Rtype (op, _, _, _) ->
              act.Activity.int_ops <- act.Activity.int_ops + 1;
              vx.(j) <- Interp.Alu.rtype op (val_i nd.Dfg.srcs.(0)) (val_i nd.Dfg.srcs.(1));
              oplat := cls_lat.(j)
            | Isa.Itype (op, _, _, imm) ->
              act.Activity.int_ops <- act.Activity.int_ops + 1;
              vx.(j) <- Interp.Alu.itype op (val_i nd.Dfg.srcs.(0)) imm;
              oplat := cls_lat.(j)
            | Isa.Lui (_, imm) ->
              act.Activity.int_ops <- act.Activity.int_ops + 1;
              vx.(j) <- s32 imm;
              oplat := cls_lat.(j)
            | Isa.Auipc (_, imm) ->
              act.Activity.int_ops <- act.Activity.int_ops + 1;
              vx.(j) <- s32 (nd.Dfg.addr + imm);
              oplat := cls_lat.(j)
            | Isa.Load (op, _, _, off) ->
              let addr = u32 (val_i nd.Dfg.srcs.(0) + off) in
              vx.(j) <-
                (match op with
                | LB -> Main_memory.load_byte mem addr
                | LBU -> Main_memory.load_byte_u mem addr
                | LH -> Main_memory.load_half mem addr
                | LHU -> Main_memory.load_half_u mem addr
                | LW -> Main_memory.load_word mem addr);
              mem_access ~load:true ~addr
            | Isa.Flw (_, _, off) ->
              let addr = u32 (val_i nd.Dfg.srcs.(0) + off) in
              vf.(j) <- Main_memory.load_float32 mem addr;
              mem_access ~load:true ~addr
            | Isa.Store (op, _, _, off) ->
              let addr = u32 (val_i nd.Dfg.srcs.(1) + off) in
              let v = val_i nd.Dfg.srcs.(0) in
              (match op with
              | SB -> Main_memory.store_byte mem addr v
              | SH -> Main_memory.store_half mem addr v
              | SW -> Main_memory.store_word mem addr v);
              iter_stores := (j, addr) :: !iter_stores;
              mem_access ~load:false ~addr
            | Isa.Fsw (_, _, off) ->
              let addr = u32 (val_i nd.Dfg.srcs.(1) + off) in
              Main_memory.store_float32 mem addr (val_f nd.Dfg.srcs.(0));
              iter_stores := (j, addr) :: !iter_stores;
              mem_access ~load:false ~addr
            | Isa.Branch (op, _, _, _) ->
              act.Activity.branch_ops <- act.Activity.branch_ops + 1;
              let taken =
                Interp.Alu.branch_taken op (val_i nd.Dfg.srcs.(0)) (val_i nd.Dfg.srcs.(1))
              in
              vx.(j) <- (if taken then 1 else 0);
              oplat := cls_lat.(j)
            | Isa.Ftype (op, _, _, _) ->
              act.Activity.fp_ops <- act.Activity.fp_ops + 1;
              let a = val_f nd.Dfg.srcs.(0) in
              let b = if Array.length nd.Dfg.srcs > 1 then val_f nd.Dfg.srcs.(1) else 0.0 in
              vf.(j) <- Interp.Alu.ftype op a b;
              oplat := cls_lat.(j)
            | Isa.Fcmp (op, _, _, _) ->
              act.Activity.fp_ops <- act.Activity.fp_ops + 1;
              vx.(j) <- Interp.Alu.fcmp op (val_f nd.Dfg.srcs.(0)) (val_f nd.Dfg.srcs.(1));
              oplat := cls_lat.(j)
            | Isa.Fcvt_w_s (_, _) ->
              act.Activity.fp_ops <- act.Activity.fp_ops + 1;
              vx.(j) <- Interp.Alu.fcvt_w_s (val_f nd.Dfg.srcs.(0));
              oplat := cls_lat.(j)
            | Isa.Fcvt_s_w (_, _) ->
              act.Activity.fp_ops <- act.Activity.fp_ops + 1;
              vf.(j) <- Interp.Alu.fcvt_s_w (val_i nd.Dfg.srcs.(0));
              oplat := cls_lat.(j)
            | Isa.Fmv_x_w (_, _) ->
              act.Activity.int_ops <- act.Activity.int_ops + 1;
              vx.(j) <- Interp.Alu.fmv_x_w (val_f nd.Dfg.srcs.(0));
              oplat := cls_lat.(j)
            | Isa.Fmv_w_x (_, _) ->
              act.Activity.int_ops <- act.Activity.int_ops + 1;
              vf.(j) <- Interp.Alu.fmv_w_x (val_i nd.Dfg.srcs.(0));
              oplat := cls_lat.(j)
            | Isa.Jal _ | Isa.Jalr _ | Isa.Ecall | Isa.Ebreak | Isa.Fence ->
              raise
                (Exec_fail
                   (Printf.sprintf "node %d (%s) not executable on the fabric" j
                      (Format.asprintf "%a" Isa.pp nd.Dfg.instr)))
          end;
          Stats.observe node_lat.(j) !oplat;
          (match cls with
          | Isa.C_div | Isa.C_fdiv -> fu_bound := Float.max !fu_bound !oplat
          | _ -> ());
          completes.(j) <- !arrival +. !oplat;
          (match attribution with
          | Some a ->
            Attribution.charge_op a ~lane:lane_of.(j)
              ~start:(iter_start +. !arrival)
              ~noc_wait:(!arrival -. !arr_nonoc)
              ~port_wait:!pq
              ~service:(!oplat -. !pq)
              ~long_op:(match cls with Isa.C_div | Isa.C_fdiv -> true | _ -> false)
          | None -> ());
          (* Fault application: the latch corrupts after the node fires, so
             same-iteration consumers already see the bad value. *)
          (match (fault, pe_coord.(j)) with
          | Some f, Some c ->
            let applied =
              match List.find_opt (fun (d, _, _) -> d = c) (Fault.dead f) with
              | Some (_, k, v) ->
                if corrupt_latch j ~value:v ~stuck:true then Some k else None
              | None -> (
                match List.find_opt (fun s -> s.Fault.s_coord = c) strikes with
                | Some s ->
                  if corrupt_latch j ~value:s.Fault.s_value ~stuck:false then
                    Some Fault.Transient_pe
                  else None
                | None -> None)
            in
            (match applied with
            | Some k ->
              Fault.note_corruption f k;
              if !first_corrupt = None then first_corrupt := Some iter_start
            | None -> ())
          | _ -> ())
        done;
        let iter_latency = Array.fold_left Float.max 0.0 completes in
        if debug && !iterations < 40 then
          Printf.eprintf "iter=%d inst=%d start=%.1f lat=%.1f fu=%.1f\n" !iterations
            inst iter_start iter_latency !fu_bound;
        incr iterations;
        act.Activity.iterations <- act.Activity.iterations + 1;
        end_time := Float.max !end_time (iter_start +. iter_latency);
        let continue_loop = vx.(dfg.Dfg.back_branch) <> 0 in
        (* Next iteration's live-ins are this iteration's live-outs. *)
        Array.iter (fun (r, src) -> if r <> 0 then in_x.(r) <- val_i src) live_out_x;
        Array.iter (fun (r, src) -> in_f.(r) <- val_f src) live_out_f;
        (* Initiation of this instance's next iteration. *)
        (if config.pipelined then begin
           let ii_rec =
             Array.fold_left
               (fun acc p -> Float.max acc completes.(p))
               1.0 carried_nodes
           in
           let ii_mem =
             float_of_int (Stats.div_ceil !mem_accesses effective_ports)
           in
           let ii = Float.max (Float.max ii_rec ii_mem) !fu_bound in
           Stats.observe ii_achieved ii;
           (match attribution with
           | Some a ->
             Attribution.observe_ii a ~rec_:ii_rec ~mem:ii_mem ~fu:!fu_bound
               ~achieved:ii
           | None -> ());
           inst_next.(inst) <- iter_start +. ii
         end
         else begin
           Stats.observe ii_achieved (iter_latency +. 1.0);
           (match attribution with
           | Some a ->
             (* Non-pipelined: the full iteration latency is the recurrence. *)
             Attribution.observe_ii a ~rec_:(iter_latency +. 1.0) ~mem:0.0
               ~fu:0.0 ~achieved:(iter_latency +. 1.0)
           | None -> ());
           inst_next.(inst) <- iter_start +. iter_latency +. 1.0
         end);
        if not continue_loop then exit_reached := true
        else begin
          (* Watchdog: a corrupted window that keeps spinning is cut off
             after [watchdog_window] further iterations — the forward-
             progress bound a damaged back branch would otherwise defeat. *)
          (match fault with
          | Some f when Fault.window_corrupted f ->
            incr corrupt_iters;
            if !corrupt_iters >= watchdog_window then begin
              watchdog_fired := true;
              paused := true
            end
          | Some _ | None -> ());
          (match stop_after with
          | Some k when !iterations >= k -> paused := true
          | Some _ | None -> ());
          if !iterations >= max_iterations then begin
            budget_hit := true;
            paused := true
          end;
          if !paused then exit_reached := true
        end
      done;
      (* Architectural writeback: loop live-outs, and either the exit PC or
         (when pausing mid-loop) the entry PC so execution can resume. *)
      Array.iter (fun (r, src) -> Machine.set_x machine r (val_i src)) live_out_x;
      Array.iter (fun (r, src) -> Machine.set_f machine r (val_f src)) live_out_f;
      machine.Machine.pc <- (if !paused then dfg.Dfg.entry_addr else dfg.Dfg.exit_addr);
      act.Activity.cycles <- int_of_float (Float.ceil !end_time);
      (* Window-end profiler readouts: per-slice NoC contention (tiled
         instances fold onto their physical slice), shared-port totals, and
         the closing charge of every lane's uncovered tail. *)
      (match attribution with
      | Some a ->
        Array.iteri
          (fun idx c ->
            match c with
            | Some c ->
              Attribution.note_noc_slice a ~slice:(idx mod nslices)
                ~claims:(Contention.claimed c) ~busy:(Contention.busy_cycles c)
            | None -> ())
          noc;
        Attribution.note_port_totals a ~claims:(Contention.claimed ports)
          ~busy:(Contention.busy_cycles ports);
        Attribution.end_window a ~grid ~cycles:act.Activity.cycles
          ~iterations:!iterations
      | None -> ());
      let detection =
        match fault with
        | Some f when Fault.window_corrupted f ->
          let fc = Option.value !first_corrupt ~default:!end_time in
          Some
            {
              d_kinds = Fault.window_kinds f;
              d_latency = max 0 (int_of_float (Float.ceil (!end_time -. fc)));
              d_watchdog = !watchdog_fired;
            }
        | Some _ | None -> None
      in
      {
        cycles = act.Activity.cycles;
        iterations = !iterations;
        completed = not !paused;
        budget_exhausted = !budget_hit;
        fault = detection;
        exit_pc = machine.Machine.pc;
        activity = act;
        measured = Stats.snapshot reg;
      }
    in
    Fun.protect
      ~finally:(fun () -> Engine_core.scratch_park !acquired)
      (fun () -> try Ok (run ()) with Exec_fail msg -> Error msg))
