(** Geometry and capabilities of the spatial accelerator's PE array (§5.2).

    The evaluation's three configurations are [m64] (16x4), [m128] (16x8)
    and [m512] (64x8). Half of the PEs carry single-precision FP logic,
    arranged as interleaved 2x2 FP slices (Table 1's "FP Slice (2x2)").
    Load/store entries are a separate bank along the array's left edge
    (Figure 5), sized at half the PE count. *)

type coord = { row : int; col : int }

val coord : int -> int -> coord
val manhattan : coord -> coord -> int

type t = {
  rows : int;
  cols : int;
  fp_tile : int;        (** FP slices are [fp_tile x fp_tile] blocks *)
  ls_entries : int;     (** load-store entry count *)
  mem_ports : int;      (** cache ports shared by all LS entries *)
  slice_width : int;    (** PEs per NoC router slice (Figure 9: 4) *)
  name : string;
  masked : coord list;  (** PEs masked out of the fabric (fault recovery) *)
}

val make :
  ?fp_tile:int -> ?mem_ports:int -> ?slice_width:int -> ?name:string ->
  rows:int -> cols:int -> unit -> t
(** Custom geometry; [ls_entries] is set to half the PE count. *)

val m64 : t
val m128 : t
val m512 : t

val of_pe_count : int -> t
(** Geometry for a given PE budget, 8 columns wide when possible (the PE
    scaling sweep of Figure 15 uses this). *)

val pe_count : t -> int
val in_bounds : t -> coord -> bool

val mask : t -> coord list -> t
(** Mask PEs out of the fabric: {!supports} rejects them, so placement and
    validation route around the damage. Out-of-bounds and already-masked
    coordinates are ignored; masking nothing returns [t] unchanged. *)

val is_masked : t -> coord -> bool

val healthy_pe_count : t -> int
(** [pe_count] minus the masked PEs — the capacity the tiler may assume. *)

val has_fp : t -> coord -> bool
(** Whether the PE at [coord] has FP logic (checkerboard of [fp_tile]^2
    blocks — exactly half the array). *)

val supports : t -> coord -> Isa.op_class -> bool
(** The F_op capability test of §3.3: integer classes everywhere, FP
    classes only on FP PEs; memory, jump and system classes never map to a
    PE. *)

val ls_row : t -> int -> int
(** Row at which load-store entry [e] sits (entries wrap along the left
    edge). *)

val iter_coords : t -> (coord -> unit) -> unit
