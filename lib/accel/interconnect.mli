(** Point-to-point transfer-latency models for the accelerator backends.

    MESA is backend-agnostic as long as the interconnect's point-to-point
    latency can be computed quickly (§3.3); these are the three models the
    repo ships. [Mesh_noc] is the evaluation backend of Figure 9: direct
    single-cycle links to immediate neighbours, and a slice-granular
    half-ring NoC for distant transfers. [Hierarchical_rows] is the worked
    Example 1 of Figure 4 (1 cycle within a row, 3 cycles across rows);
    [Pure_mesh] is Example 2 (Manhattan distance). *)

type kind =
  | Mesh_noc
  | Hierarchical_rows
  | Pure_mesh

(** Which fabric a transfer used — the engine charges energy and contention
    differently for the two. *)
type route = Local | Noc

val route : Grid.t -> kind -> Grid.coord -> Grid.coord -> route
(** [Local] when the hop count is small enough for direct PE-PE links;
    [Noc] otherwise. *)

val latency : Grid.t -> kind -> Grid.coord -> Grid.coord -> int
(** Base (contention-free) cycles to move one value. Zero distance costs 1
    (output buffer to input buffer). *)

val noc_slice : Grid.t -> Grid.coord -> int
(** Index of the NoC router slice serving a PE; concurrent NoC transfers
    injected at the same slice serialize. *)

val slices : Grid.t -> int
(** Number of router slices in the grid ([noc_slice] ranges over
    [0 .. slices - 1]) — sizes the engine's contention tables and the
    profiler's per-link counters. *)

val ls_coord : Grid.t -> int -> Grid.coord
(** Virtual coordinate of a load-store entry (column -1 of its row), used
    to compute PE <-> LS-entry distances. *)
