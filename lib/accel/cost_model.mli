(** Analytical cycle estimator over a placed DFG — the model side of
    model-guided mapping and search.

    The estimator replays the engine's timing equations without executing
    anything: Equation-2 arrival folds over the placement's transfer
    latencies, capacity-1 router-slice occupancy for NoC injections,
    cache-port occupancy for memory issues, and the pipelined initiation
    interval bounded by loop-carried recurrences, memory-port throughput and
    iterative functional units. Iterations are timing-simulated until every
    tiled instance reaches a cycle-exact fixed point, then the remaining
    trip count is extrapolated at the steady II (falling back to simulating
    every iteration when no fixed point appears).

    The model is a pure function of its arguments: same inputs, same
    estimate — it touches no {!Stats} registry, no {!Sim_meter}, and no
    engine state. It deliberately assumes the value-independent fragment of
    the engine's semantics: every guard enabled, no dynamic store-to-load
    aliasing, and memory service latency from the [mem_latency] oracle
    instead of a live cache. On loops where those assumptions hold exactly
    (straight-line bodies without memory traffic) the estimate equals the
    event engine's measured cycles bit for bit; elsewhere the divergence is
    bounded and the property suite pins the bound. *)

type t = {
  cycles : int;          (** modeled makespan over [iterations] *)
  iter_latency : float;  (** steady-state latency of one iteration *)
  ii : float;            (** steady-state initiation interval *)
  ii_rec : float;        (** loop-carried recurrence bound on the II *)
  ii_mem : float;        (** memory-port throughput bound *)
  ii_fu : float;         (** iterative div/sqrt unit bound *)
  critical : int list;   (** node chain realizing [iter_latency], in
                             execution order *)
  simulated : int;       (** iterations timing-simulated before the fixed
                             point (= [iterations] when none was found) *)
  steady : bool;         (** a per-instance fixed point was found and the
                             tail extrapolated *)
}

val estimate :
  ?op_latency:(int -> float) ->
  ?mem_latency:(int -> float) ->
  ?iterations:int ->
  ?extrapolate:bool ->
  config:Accel_config.t ->
  dfg:Dfg.t ->
  unit ->
  t
(** Model [iterations] (default 1, clamped to at least 1) loop iterations of
    [dfg] under [config]'s placement and optimization flags.

    [op_latency] prices a non-memory node's firing (default: the static
    {!Latency.accel} table by op class — the same seed the {!Perf_model}
    starts from). [mem_latency] prices a memory node's cache service time,
    excluding the modeled port queueing (default: the L1 hit latency of
    {!Hierarchy.default_config}); feed measured AMATs through
    {!mem_oracle_of_measured} to tighten the estimate after a profiling
    window. [extrapolate:false] forces every iteration to be simulated —
    the fixed-point fast path must be observationally identical, and the
    property suite checks it. *)

val predicted_activity :
  config:Accel_config.t -> dfg:Dfg.t -> iterations:int -> cycles:int ->
  Activity.t
(** The activity counters the modeled run would accumulate (every guard
    assumed enabled): per-class op counts, local/NoC transfer counts and the
    given [iterations]/[cycles] — enough for {!Energy_model.accel_energy} to
    price a candidate point without executing it. *)

val op_oracle_of_measured : Stats.snapshot -> (int -> float)
(** An [op_latency] oracle reading ["node.<i>.latency"] means out of an
    engine window's measured snapshot, falling back to the static table for
    unmeasured (or memory) nodes. *)

val mem_oracle_of_measured : Stats.snapshot -> (int -> float)
(** A [mem_latency] oracle reading ["node.<i>.amat"] means with the window's
    mean port-queue delay deducted (the model re-applies its own queueing),
    clamped to at least one cycle; unmeasured nodes fall back to the default
    L1-hit service time. *)
