type t = {
  mutable int_ops : int;
  mutable fp_ops : int;
  mutable mem_ops : int;
  mutable branch_ops : int;
  mutable disabled_ops : int;
  mutable forwarded_loads : int;
  mutable local_transfers : int;
  mutable noc_transfers : int;
  mutable iterations : int;
  mutable cycles : int;
}

let create () =
  {
    int_ops = 0;
    fp_ops = 0;
    mem_ops = 0;
    branch_ops = 0;
    disabled_ops = 0;
    forwarded_loads = 0;
    local_transfers = 0;
    noc_transfers = 0;
    iterations = 0;
    cycles = 0;
  }

let add acc src =
  acc.int_ops <- acc.int_ops + src.int_ops;
  acc.fp_ops <- acc.fp_ops + src.fp_ops;
  acc.mem_ops <- acc.mem_ops + src.mem_ops;
  acc.branch_ops <- acc.branch_ops + src.branch_ops;
  acc.disabled_ops <- acc.disabled_ops + src.disabled_ops;
  acc.forwarded_loads <- acc.forwarded_loads + src.forwarded_loads;
  acc.local_transfers <- acc.local_transfers + src.local_transfers;
  acc.noc_transfers <- acc.noc_transfers + src.noc_transfers;
  acc.iterations <- acc.iterations + src.iterations;
  acc.cycles <- acc.cycles + src.cycles

let total_ops t =
  t.int_ops + t.fp_ops + t.mem_ops + t.branch_ops + t.disabled_ops

let register_stats t grp =
  Stats.int_probe grp "int_ops" (fun () -> t.int_ops);
  Stats.int_probe grp "fp_ops" (fun () -> t.fp_ops);
  Stats.int_probe grp "mem_ops" (fun () -> t.mem_ops);
  Stats.int_probe grp "branch_ops" (fun () -> t.branch_ops);
  Stats.int_probe grp "disabled_ops" (fun () -> t.disabled_ops);
  Stats.int_probe grp "forwarded_loads" (fun () -> t.forwarded_loads);
  Stats.int_probe grp "local_transfers" (fun () -> t.local_transfers);
  Stats.int_probe grp "noc_transfers" (fun () -> t.noc_transfers);
  Stats.int_probe grp "iterations" (fun () -> t.iterations);
  Stats.int_probe grp "cycles" (fun () -> t.cycles);
  Stats.int_probe grp "total_ops" (fun () -> total_ops t)
