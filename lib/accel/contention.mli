(** Slot-based contention model for shared, pipelined resources (cache
    ports, NoC router slices).

    A resource accepts [capacity] new operations per cycle. Claims arrive in
    arbitrary time order (the engine walks iterations whose absolute start
    times interleave), so the model keeps per-cycle occupancy counts rather
    than a single next-free clock: a claim takes the first cycle at or after
    its ready time with spare capacity, and a late claim never blocks an
    earlier idle slot. *)

type t

val create : capacity:int -> t
(** [capacity] operations may start per cycle; must be positive. *)

val claim : t -> float -> float
(** [claim t ready] books a slot and returns the issue time (>= [ready]).
    The queuing delay is [claim t ready -. ready]. *)

val claim_slot : t -> float -> float * int
(** Like {!claim}, additionally returning which of the [capacity] sub-slots
    of the issue cycle the claim took (0-based occupancy order) — the
    profiler uses it as a deterministic port index for timeline lanes. *)

val claim_issue : t -> float -> float
(** Allocation-free {!claim_slot}: returns the issue time and records the
    sub-slot in {!last_slot} instead of building a pair — the event-driven
    engine's hot-path entry point. *)

val last_slot : t -> int
(** Sub-slot taken by the most recent claim (0 before any claim). *)

val claimed : t -> int
(** Total operations booked. *)

val busy_cycles : t -> int
(** Number of distinct cycles with at least one booked operation — the
    numerator of the resource's utilization. *)

val reset : ?capacity:int -> t -> unit
(** Forget every booked slot (and optionally change the capacity), restoring
    the table to its freshly-created state. The engine recycles contention
    tables across executions through this instead of rebuilding their slot
    hashtables each time. *)
