(** Types and scratch state shared by the event-driven engine ({!Engine})
    and the legacy reference oracle ({!Engine_reference}). See {!Engine} for
    the full field documentation — callers use that module; this one exists
    so both implementations return literally the same record types. *)

type detection = {
  d_kinds : Fault.kind list;
  d_latency : int;
  d_watchdog : bool;
}

type result = {
  cycles : int;
  iterations : int;
  completed : bool;
  budget_exhausted : bool;
  fault : detection option;
  exit_pc : int;
  activity : Activity.t;
  measured : Stats.snapshot;
}

val u32 : int -> int
val s32 : int -> int

exception Exec_fail of string

val scratch_take : unit -> Contention.t option
(** Claim a recycled contention table from the domain-local pool, if one is
    parked (revive it with {!Contention.reset}). Safe to call from
    sys-threads sharing the domain (the `mesad` shard case). *)

val scratch_park : Contention.t list -> unit
(** Return a finished execution's tables to the domain-local pool. *)
