(* State shared by the two engine implementations: the event-driven core
   (`Engine`) and the legacy all-nodes-every-cycle oracle
   (`Engine_reference`). Both return the same result record and park their
   contention tables in the same domain-local scratch pool, so differential
   tests can swap implementations without touching any caller. *)

type detection = {
  d_kinds : Fault.kind list;
  d_latency : int;
  d_watchdog : bool;
}

type result = {
  cycles : int;
  iterations : int;
  completed : bool;
  budget_exhausted : bool;
  fault : detection option;
  exit_pc : int;
  activity : Activity.t;
  measured : Stats.snapshot;
}

let u32 = Machine.to_u32
let s32 = Machine.to_s32

exception Exec_fail of string

(* Recycled contention tables. An execution claims one table per cache-port
   group and one per active (instance, NoC slice) pair; building each from
   scratch costs a fresh slot table, so finished executions park their
   tables here and the next execution revives them with [Contention.reset].

   The pool is domain-local, so parallel harness jobs (one domain each)
   never contend across domains — but `mesad` serves its shards on
   sys-threads that SHARE a domain, and a preempted [Stack] push could hand
   the same table to two in-flight executions. The per-domain mutex closes
   that window; it is uncontended everywhere except the daemon, where the
   two lock hops per claim are noise against a full engine run. Each
   execution still owns its tables exclusively between [take] and [park],
   which is what keeps every execution deterministic. *)
let contention_scratch : (Mutex.t * Contention.t Stack.t) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (Mutex.create (), Stack.create ()))

let scratch_take () =
  let lock, stack = Domain.DLS.get contention_scratch in
  Mutex.protect lock (fun () -> Stack.pop_opt stack)

let scratch_park cs =
  let lock, stack = Domain.DLS.get contention_scratch in
  Mutex.protect lock (fun () -> List.iter (fun c -> Stack.push c stack) cs)
