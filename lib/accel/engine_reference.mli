(** The legacy all-nodes-every-iteration engine, kept verbatim as the
    differential oracle for the event-driven {!Engine}. Semantics and result
    schema are documented on {!Engine.execute}; this implementation is the
    definition the event-driven core must match bit-for-bit (cycles, memory,
    registers, stats snapshots, attribution sums). Reached in production
    only through [Engine.execute ~engine:`Reference] / [MESA_ENGINE=reference];
    tests may call it directly. *)

val execute :
  ?max_iterations:int ->
  ?stop_after:int ->
  ?fault:Fault.t ->
  ?watchdog_window:int ->
  ?attribution:Attribution.t ->
  config:Accel_config.t ->
  dfg:Dfg.t ->
  machine:Machine.t ->
  hier:Hierarchy.t ->
  unit ->
  (Engine_core.result, string) Stdlib.result
