(* The analytical twin of the engine's timing loop: same arrival folds, same
   contention tables, same II rule — but no functional execution, no cache,
   no stats. Guards are assumed enabled and store-to-load aliasing ignored,
   which is exactly the value-independent fragment of the engine semantics;
   the property suite pins where (and by how much) that diverges. *)

type t = {
  cycles : int;
  iter_latency : float;
  ii : float;
  ii_rec : float;
  ii_mem : float;
  ii_fu : float;
  critical : int list;
  simulated : int;
  steady : bool;
}

let default_op_latency (dfg : Dfg.t) j =
  float_of_int (Latency.accel (Isa.op_class dfg.Dfg.nodes.(j).Dfg.instr))

let default_mem_latency =
  float_of_int Hierarchy.default_config.Hierarchy.l1.Cache.hit_latency

(* Arrival dependencies in exactly the engine's fold order: operand sources,
   hidden value, guards, and (for stores) the memory-order link. *)
let deps_of (dfg : Dfg.t) =
  Array.map
    (fun nd ->
      let ds = ref [] in
      Array.iter
        (function Dfg.Node i -> ds := i :: !ds | Dfg.Reg_in _ -> ())
        nd.Dfg.srcs;
      (match nd.Dfg.hidden with
      | Some (Dfg.Node i) -> ds := i :: !ds
      | Some (Dfg.Reg_in _) | None -> ());
      List.iter (fun (b, _) -> ds := b :: !ds) nd.Dfg.guards;
      if Isa.is_store nd.Dfg.instr then
        Option.iter (fun s -> ds := s :: !ds) nd.Dfg.prev_store;
      Array.of_list (List.rev !ds))
    dfg.Dfg.nodes

let estimate ?op_latency ?mem_latency ?(iterations = 1) ?(extrapolate = true)
    ~(config : Accel_config.t) ~(dfg : Dfg.t) () =
  let n = Dfg.node_count dfg in
  let pl = config.Accel_config.placement in
  let grid = pl.Placement.grid in
  let nodes = dfg.Dfg.nodes in
  let iterations = max 1 iterations in
  let op_latency =
    match op_latency with Some f -> f | None -> default_op_latency dfg
  in
  let mem_latency =
    match mem_latency with Some f -> f | None -> fun _ -> default_mem_latency
  in
  let cls_of = Array.map (fun nd -> Isa.op_class nd.Dfg.instr) nodes in
  let is_mem = Array.map (fun nd -> Isa.is_memory nd.Dfg.instr) nodes in
  let is_load = Array.map (fun nd -> Isa.is_load nd.Dfg.instr) nodes in
  let deps = deps_of dfg in
  let carried_nodes =
    Dfg.loop_carried dfg
    |> List.filter_map (fun (_, _, src) ->
           match src with Dfg.Node p -> Some p | Dfg.Reg_in _ -> None)
    |> Array.of_list
  in
  let forwarded = Array.make n false in
  List.iter (fun (load, _) -> forwarded.(load) <- true) config.Accel_config.forwarding;
  let vector_member = Array.make n false in
  List.iter
    (function
      | [] -> ()
      | _leader :: members -> List.iter (fun m -> vector_member.(m) <- true) members)
    config.Accel_config.vector_groups;
  let ports_cap = max 1 grid.Grid.mem_ports in
  let ports = Contention.create ~capacity:ports_cap in
  let tiling = max 1 config.Accel_config.tiling in
  let nslices = Interconnect.slices grid in
  let noc : Contention.t option array = Array.make (tiling * nslices) None in
  let noc_slot inst slice =
    let idx = (inst * nslices) + slice in
    match noc.(idx) with
    | Some c -> c
    | None ->
      let c = Contention.create ~capacity:1 in
      noc.(idx) <- Some c;
      c
  in
  let completes = Array.make n 0.0 in
  let crit_dep = Array.make n (-1) in
  let inst_next = Array.make tiling 0.0 in
  (* Fixed-point detection. The system state at a round boundary is exactly
     (a) each instance's relative completion vector and II, and (b) the
     pending contention bookings at cycles at or beyond the time frontier —
     bookings behind the frontier can never be probed again (claims only
     look at cycles >= their ready time >= the frontier). If both repeat,
     shifted by one round, the schedule is provably periodic and the tail
     can be extrapolated. Comparing schedules alone is NOT enough: on an
     exactly port-saturated loop the backlog drifts by a fraction of a
     cycle per round while the relative vectors repeat for many rounds.
     [shadow] mirrors every booking the model makes ((table, cycle) ->
     claims) so the pending set is observable. *)
  let prev_completes = Array.init tiling (fun _ -> Array.make n Float.nan) in
  let prev_lat = Array.make tiling Float.nan in
  let prev_ii = Array.make tiling Float.nan in
  let stable = Array.make tiling false in
  let ran = Array.make tiling 0 in
  let shadow : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  (* Detection pays a Hashtbl write per claim and a snapshot per round; on
     a loop that never settles (drifting backlog) that cost buys nothing,
     so give up after a bounded number of round boundaries and simulate
     the rest flat out. *)
  let detect = ref extrapolate in
  let boundaries = ref 0 in
  let max_boundaries = 128 in
  (* Snapshots are only taken at boundary pairs (2^k, 2^k + 1): comparing
     any two consecutive equal-state boundaries proves periodicity, and the
     exponential spacing keeps snapshot work logarithmic in the warmup
     length instead of paying a prune + sort at every boundary. *)
  let snap_at b = b > 0 && (b land (b - 1) = 0 || (b - 1) land (b - 2) = 0) in
  let book tid issue =
    if !detect then begin
      let key = (tid, int_of_float issue) in
      Hashtbl.replace shadow key
        (1 + Option.value ~default:0 (Hashtbl.find_opt shadow key))
    end
  in
  let max_pending = 1024 in
  let pending_snapshot frontier =
    (* Prune bookings behind the frontier, then the pending multiset as a
       sorted (table, cycle - frontier, claims) array — or [None] when the
       backlog is too deep to be worth comparing. *)
    let floor_c = int_of_float (Float.ceil frontier) in
    let stale =
      Hashtbl.fold
        (fun ((_, c) as key) _ acc -> if c < floor_c then key :: acc else acc)
        shadow []
    in
    List.iter (Hashtbl.remove shadow) stale;
    if Hashtbl.length shadow > max_pending then None
    else begin
      let xs =
        Hashtbl.fold
          (fun (tid, c) count acc -> (tid, float_of_int c -. frontier, count) :: acc)
          shadow []
      in
      Some (List.sort compare xs)
    end
  in
  let prev_pending = ref None in
  let end_time = ref 0.0 in
  let last_lat = ref 0.0 in
  let last_ii = ref 0.0 in
  let last_rec = ref 0.0 in
  let last_mem = ref 0.0 in
  let last_fu = ref 0.0 in
  let simulated = ref 0 in
  let steady = ref false in
  let k = ref 0 in
  while !k < iterations && not !steady do
    let inst = !k mod tiling in
    if !detect && inst = 0 && !k > 0 then begin
      incr boundaries;
      if !boundaries > max_boundaries then begin
        detect := false;
        Hashtbl.reset shadow
      end
      else if snap_at !boundaries then begin
        (* Round boundary: the frontier is the earliest next initiation —
           no claim in this or any later round can probe behind it. *)
        let frontier = Array.fold_left Float.min inst_next.(0) inst_next in
        let state =
          match pending_snapshot frontier with
          | None -> None
          | Some pending ->
            let phases =
              Array.to_list (Array.map (fun t -> t -. frontier) inst_next)
            in
            Some (phases, pending)
        in
        if
          state <> None
          && snap_at (!boundaries - 1)
          && !prev_pending = state
          && Array.for_all (fun s -> s) stable
          && Array.for_all (fun r -> r >= 2) ran
        then steady := true;
        prev_pending := state
      end
    end;
    if not !steady then begin
    let iter_start = inst_next.(inst) in
    let fu_bound = ref 1.0 in
    let mem_accesses = ref 0 in
    for j = 0 to n - 1 do
      let arrival = ref 0.0 in
      crit_dep.(j) <- -1;
      let ds = deps.(j) in
      for d = 0 to Array.length ds - 1 do
        let i = ds.(d) in
        let base = float_of_int (Placement.transfer pl i j) in
        let lat =
          match Placement.route pl i j with
          | Interconnect.Local -> base
          | Interconnect.Noc ->
            let slice = Interconnect.noc_slice grid (Placement.coord_of pl i) in
            let abs_out = iter_start +. completes.(i) in
            let inject = Contention.claim (noc_slot inst slice) abs_out in
            book (1 + (inst * nslices) + slice) inject;
            base +. (inject -. abs_out)
        in
        if completes.(i) +. lat > !arrival then begin
          arrival := completes.(i) +. lat;
          crit_dep.(j) <- i
        end
      done;
      let oplat =
        if is_mem.(j) then begin
          incr mem_accesses;
          if is_load.(j) && forwarded.(j) then 2.0
          else if is_load.(j) && vector_member.(j) then 1.0
          else begin
            let ready = iter_start +. !arrival in
            let issue = Contention.claim ports ready in
            book 0 issue;
            (issue -. ready) +. mem_latency j
          end
        end
        else op_latency j
      in
      (match cls_of.(j) with
      | Isa.C_div | Isa.C_fdiv -> fu_bound := Float.max !fu_bound oplat
      | _ -> ());
      completes.(j) <- !arrival +. oplat
    done;
    let iter_latency = Array.fold_left Float.max 0.0 completes in
    end_time := Float.max !end_time (iter_start +. iter_latency);
    let ii_rec =
      Array.fold_left (fun acc p -> Float.max acc completes.(p)) 1.0 carried_nodes
    in
    let ii_mem = float_of_int (Stats.div_ceil !mem_accesses ports_cap) in
    let ii =
      if config.Accel_config.pipelined then
        Float.max (Float.max ii_rec ii_mem) !fu_bound
      else iter_latency +. 1.0
    in
    inst_next.(inst) <- iter_start +. ii;
    last_lat := iter_latency;
    last_ii := ii;
    last_rec := (if config.Accel_config.pipelined then ii_rec else ii);
    last_mem := (if config.Accel_config.pipelined then ii_mem else 0.0);
    last_fu := (if config.Accel_config.pipelined then !fu_bound else 0.0);
    (* Fixed-point bookkeeping for this instance. *)
    let same =
      ran.(inst) > 0
      && prev_lat.(inst) = iter_latency
      && prev_ii.(inst) = ii
      &&
      let eq = ref true in
      for j = 0 to n - 1 do
        if prev_completes.(inst).(j) <> completes.(j) then eq := false
      done;
      !eq
    in
    stable.(inst) <- same;
    if not same then Array.blit completes 0 prev_completes.(inst) 0 n;
    prev_lat.(inst) <- iter_latency;
    prev_ii.(inst) <- ii;
    ran.(inst) <- ran.(inst) + 1;
    incr k;
    simulated := !k
    end
  done;
  (* Extrapolate the un-simulated tail: in the periodic regime instance [j]
     initiates its remaining iterations II apart from [inst_next.(j)]. *)
  if !steady then begin
    let w = !simulated in
    for j = 0 to tiling - 1 do
      let k0 = w + ((((j - w) mod tiling) + tiling) mod tiling) in
      if k0 < iterations then begin
        let m = ((iterations - 1 - k0) / tiling) + 1 in
        let last_start = inst_next.(j) +. (float_of_int (m - 1) *. prev_ii.(j)) in
        end_time := Float.max !end_time (last_start +. prev_lat.(j))
      end
    done
  end;
  let critical =
    let best = ref 0 in
    for j = 1 to n - 1 do
      if completes.(j) > completes.(!best) then best := j
    done;
    let rec walk j acc = if j < 0 then acc else walk crit_dep.(j) (j :: acc) in
    walk !best []
  in
  {
    cycles = int_of_float (Float.ceil !end_time);
    iter_latency = !last_lat;
    ii = !last_ii;
    ii_rec = !last_rec;
    ii_mem = !last_mem;
    ii_fu = !last_fu;
    critical;
    simulated = !simulated;
    steady = !steady;
  }

(* ------------------------------------------------------------------ *)
(* Modeled activity counters: what the engine would tally with every guard
   enabled. Transfers count one per arrival-fold dependency visit, exactly
   like the engine's [transfer_in] call sites. *)

let predicted_activity ~(config : Accel_config.t) ~(dfg : Dfg.t) ~iterations
    ~cycles =
  let act = Activity.create () in
  let pl = config.Accel_config.placement in
  let n = Dfg.node_count dfg in
  let deps = deps_of dfg in
  let forwarded = Array.make n false in
  List.iter (fun (load, _) -> forwarded.(load) <- true) config.Accel_config.forwarding;
  let int_ops = ref 0
  and fp_ops = ref 0
  and mem_ops = ref 0
  and branch_ops = ref 0
  and fwd = ref 0
  and local = ref 0
  and noc = ref 0 in
  for j = 0 to n - 1 do
    (match dfg.Dfg.nodes.(j).Dfg.instr with
    | Isa.Rtype _ | Isa.Itype _ | Isa.Lui _ | Isa.Auipc _ | Isa.Fmv_x_w _
    | Isa.Fmv_w_x _ ->
      incr int_ops
    | Isa.Load _ | Isa.Flw _ | Isa.Store _ | Isa.Fsw _ ->
      incr mem_ops;
      if forwarded.(j) then incr fwd
    | Isa.Branch _ -> incr branch_ops
    | Isa.Ftype _ | Isa.Fcmp _ | Isa.Fcvt_w_s _ | Isa.Fcvt_s_w _ -> incr fp_ops
    | Isa.Jal _ | Isa.Jalr _ | Isa.Ecall | Isa.Ebreak | Isa.Fence -> ());
    Array.iter
      (fun i ->
        match Placement.route pl i j with
        | Interconnect.Local -> incr local
        | Interconnect.Noc -> incr noc)
      deps.(j)
  done;
  let iters = max 0 iterations in
  act.Activity.int_ops <- !int_ops * iters;
  act.Activity.fp_ops <- !fp_ops * iters;
  act.Activity.mem_ops <- !mem_ops * iters;
  act.Activity.branch_ops <- !branch_ops * iters;
  act.Activity.forwarded_loads <- !fwd * iters;
  act.Activity.local_transfers <- !local * iters;
  act.Activity.noc_transfers <- !noc * iters;
  act.Activity.iterations <- iters;
  act.Activity.cycles <- max 0 cycles;
  act

(* ------------------------------------------------------------------ *)
(* Oracles over an engine window's measured snapshot. *)

let hist_mean_of snapshot path =
  match Stats.find_hist snapshot path with
  | Some h when h.Stats.hcount > 0 -> Some (Stats.hist_mean h)
  | Some _ | None -> None

let op_oracle_of_measured snapshot =
  fun j ->
    match hist_mean_of snapshot (Printf.sprintf "node.%d.latency" j) with
    | Some m -> m
    | None -> 1.0

let mem_oracle_of_measured snapshot =
  let queue_mean =
    Option.value ~default:0.0
      (hist_mean_of snapshot "contention.port_queue_delay")
  in
  fun j ->
    match hist_mean_of snapshot (Printf.sprintf "node.%d.amat" j) with
    | Some amat -> Float.max 1.0 (amat -. queue_mean)
    | None -> default_mem_latency
