(** The accelerator execution engine: runs a configured DFG to completion,
    producing both the architectural side effects (values written to memory
    and registers — bit-identical to the CPU reference) and the cycle-level
    timing and counter readouts MESA's optimizer feeds on.

    Execution follows the hardware's dataflow semantics (§5.2):

    - each iteration, every node fires when its inputs have arrived
      (Equation 2 with placement-derived transfer latencies);
    - forward branches predicate: a node whose guard fired the skip
      direction is disabled and forwards its hidden (old destination) value;
    - memory nodes occupy load-store entries and compete for the array's
      cache ports; per-access latency comes from the shared hierarchy;
    - NoC transfers injected at the same router slice in the same cycle
      serialize (the contention the iterative optimizer later measures);
    - with [pipelined] set, iteration [k+1] initiates II cycles after
      iteration [k], II bounded by loop-carried dependencies, PE reuse and
      memory-port throughput;
    - with [tiling] = T, T instances of the SDFG execute concurrently on
      disjoint iterations (Figure 6), sharing the memory ports.

    The loop runs until its backward branch falls through, like the
    hardware: MESA only regains control at loop exit. *)

type detection = Engine_core.detection = {
  d_kinds : Fault.kind list;  (** corruption kinds applied this window *)
  d_latency : int;
      (** cycles between the first applied corruption and the end of the
          window — the modeled end-of-window checksum's detection latency *)
  d_watchdog : bool;
      (** the forward-progress watchdog (not the checksum) cut the window
          off: the corrupted loop was spinning *)
}

type result = Engine_core.result = {
  cycles : int;                       (** makespan of the accelerated loop *)
  iterations : int;
  completed : bool;                   (** false when [stop_after] paused the
                                          loop before its exit condition *)
  budget_exhausted : bool;            (** [max_iterations] hit: the safety
                                          budget, not a profiling pause *)
  fault : detection option;
      (** corruption was applied and detected this window; the architectural
          writeback is suspect and the caller must restore its checkpoint *)
  exit_pc : int;
  activity : Activity.t;
  measured : Stats.snapshot;
      (** this window's hardware-counter readouts:
          - ["node.<i>.latency"] — per-PE firing histogram (count = fires,
            mean = measured op latency, AMAT included for memory nodes);
          - ["node.<i>.amat"] — cache access time per memory node;
          - ["edge.<i>.<j>"] — measured transfer latency per dependence
            edge, NoC queueing included;
          - ["contention.noc_queue_delay" / "contention.port_queue_delay"]
            — router-slice and memory-port queueing;
          - ["ii.achieved"] — per-iteration initiation interval.
          The optimizer absorbs these into the region's {!Perf_model}. *)
}

val execute :
  ?max_iterations:int ->
  ?stop_after:int ->
  ?fault:Fault.t ->
  ?watchdog_window:int ->
  ?attribution:Attribution.t ->
  ?engine:[ `Event | `Reference ] ->
  config:Accel_config.t ->
  dfg:Dfg.t ->
  machine:Machine.t ->
  hier:Hierarchy.t ->
  unit ->
  (result, string) Stdlib.result
(** Run the loop whose live-ins are taken from [machine]'s current register
    state.

    [engine] selects the implementation: [`Event] (default) is the
    event-driven core — compiled static schedule, memoized steady-state
    arrival folds, batched time jumps; [`Reference] is the legacy
    node-scan oracle ({!Engine_reference}), kept for differential testing.
    Both are bit-identical in every observable (cycles, memory, registers,
    stats snapshots, attribution sums); the default can be overridden
    per-process with the [MESA_ENGINE] environment variable
    ([reference] / [event]), read at each call. Every successful execution
    also adds its window's cycle count to {!Sim_meter}. On success the machine holds the post-loop architectural state
    (registers, PC at the loop's exit address) and [machine.mem] holds every
    store's effect. Fails (leaving partial memory effects) if the placement
    is invalid for the DFG. Exceeding [max_iterations] (default 4 million)
    pauses like [stop_after] but flags [budget_exhausted] so the caller can
    abort the offload rather than resume forever.

    [stop_after] pauses execution after that many iterations if the loop has
    not exited: live-outs are written back, the PC is left at the loop entry,
    and the result carries [completed = false] — so the controller can
    inspect the counters, possibly reconfigure, and re-invoke [execute] to
    resume (or hand the loop back to the CPU). This models MESA's profiling
    windows for iterative optimization.

    [attribution] attaches a cycle-attribution collector (the `mesa profile`
    backend): every node firing, II decision and window-end contention
    readout is charged into its per-lane stall taxonomy. Attribution is pure
    observation — a profiled run's timing, memory and register effects are
    bit-identical to an unprofiled one. Callers bracket each execution with
    {!Attribution.begin_window} (the engine closes the window itself via
    [Attribution.end_window]) and discard faulted windows with
    {!Attribution.abort_window}.

    [fault] attaches a fault injector: due events fire as the loop iterates,
    corrupting node output latches (transient flips, permanent stuck-ats)
    and degrading cache ports. A corrupted window is reported through
    [result.fault]; a corrupted window that stops making forward progress is
    cut off by a watchdog after [watchdog_window] (default 512) further
    iterations. Corrupted values reaching stores do corrupt [machine.mem] —
    the caller checkpoints before the window and restores on detection. Wild
    corrupted addresses may escape as [Invalid_argument]; callers injecting
    faults should treat any exception with [Fault.window_corrupted] set as a
    detected fault. *)
