type kind = Mesh_noc | Hierarchical_rows | Pure_mesh
type route = Local | Noc

(* Direct links reach immediate neighbours; values can chain through at most
   [local_reach] hops before the NoC becomes the faster/only path. *)
let local_reach = 3

let route _grid kind a b =
  match kind with
  | Hierarchical_rows | Pure_mesh -> Local
  | Mesh_noc -> if Grid.manhattan a b <= local_reach then Local else Noc

let latency (grid : Grid.t) kind (a : Grid.coord) (b : Grid.coord) =
  let d = Grid.manhattan a b in
  match kind with
  | Pure_mesh -> max 1 d
  | Hierarchical_rows -> if a.row = b.row then 1 else 3
  | Mesh_noc ->
    if d <= local_reach then max 1 d
    else
      (* Inject + ride the half-ring (one hop per slice of PEs) + eject. *)
      2 + Stats.div_ceil d grid.slice_width + 1

let noc_slice (grid : Grid.t) (c : Grid.coord) =
  (c.row * grid.cols + c.col) / grid.slice_width

let slices (grid : Grid.t) =
  ((grid.rows * grid.cols) - 1) / grid.slice_width + 1

let ls_coord (grid : Grid.t) e = Grid.coord (Grid.ls_row grid e) (-1)
