type bucket =
  | Busy
  | Recurrence_wait
  | Mem_port_stall
  | Noc_stall
  | Long_op
  | Config
  | Drain
  | Idle
  | Masked_faulty

let buckets =
  [
    Busy; Recurrence_wait; Mem_port_stall; Noc_stall; Long_op; Config; Drain;
    Idle; Masked_faulty;
  ]

let bucket_count = List.length buckets

let bucket_index = function
  | Busy -> 0
  | Recurrence_wait -> 1
  | Mem_port_stall -> 2
  | Noc_stall -> 3
  | Long_op -> 4
  | Config -> 5
  | Drain -> 6
  | Idle -> 7
  | Masked_faulty -> 8

let bucket_of_index = Array.of_list buckets

let bucket_name = function
  | Busy -> "busy"
  | Recurrence_wait -> "recurrence_wait"
  | Mem_port_stall -> "mem_port_stall"
  | Noc_stall -> "noc_stall"
  | Long_op -> "long_op"
  | Config -> "config"
  | Drain -> "drain"
  | Idle -> "idle"
  | Masked_faulty -> "masked_faulty"

let bucket_of_name name =
  List.find_opt (fun b -> bucket_name b = name) buckets

(* One attributed interval, for the timeline ring. Times are absolute
   (wall-clock) cycles; durations are positive. *)
type interval = { i_start : float; i_dur : float; i_bucket : int }

let no_interval = { i_start = 0.0; i_dur = 0.0; i_bucket = 0 }

(* A bounded ring: [len] live entries ending at [head] (exclusive). *)
type ring = {
  slots : interval array;
  mutable head : int;
  mutable len : int;
}

let ring_create capacity =
  { slots = Array.make capacity no_interval; head = 0; len = 0 }

let ring_push r iv =
  let cap = Array.length r.slots in
  r.slots.(r.head) <- iv;
  r.head <- (r.head + 1) mod cap;
  if r.len < cap then r.len <- r.len + 1

let ring_to_list r =
  let cap = Array.length r.slots in
  let out = ref [] in
  for k = 0 to r.len - 1 do
    (* newest first, accumulate into oldest-first list *)
    out := r.slots.((r.head - 1 - k + (2 * cap)) mod cap) :: !out
  done;
  !out

type lane = {
  sums : float array;        (* bucket_count float cycles *)
  mutable cursor : float;    (* window-relative last attributed time *)
  mutable w_ops : int;       (* firings charged this window *)
  mutable fired : bool;      (* any firing over the whole run *)
  ring : ring;
}

(* State saved at [begin_window] so a faulted window can be discarded. *)
type snapshot = {
  s_sums : float array array;
  s_fired : bool array;
  s_ring : (int * int) array;       (* (head, len) per lane *)
  s_port_ring : (int * int) array;
  s_engine_cycles : int;
  s_config : int;
  s_windows : int;
  s_iterations : int;
  s_noc_claims : int array;
  s_noc_busy : int array;
  s_port_claims : int;
  s_port_busy : int;
  s_ii : float array;               (* rec/mem/fu/achieved sums *)
  s_ii_counts : int array;          (* iters, rec-, mem-, fu-bound *)
}

type t = {
  grid : Grid.t;
  lanes : lane array;
  port_rings : ring array;
  mutable w_at : float;             (* wall-clock start of current window *)
  mutable engine_cycles : int;
  mutable config : int;
  mutable windows : int;
  mutable iterations : int;
  noc_claims_a : int array;
  noc_busy_a : int array;
  mutable port_claims_n : int;
  mutable port_busy_n : int;
  ii_sums : float array;            (* rec, mem, fu, achieved *)
  ii_counts : int array;            (* iters, rec-bound, mem-bound, fu-bound *)
  mutable snap : snapshot option;
}

let create ?(ring = 256) ~(grid : Grid.t) () =
  if ring <= 0 then invalid_arg "Attribution.create: ring must be positive";
  let nlanes = (grid.Grid.rows * grid.Grid.cols) + grid.Grid.ls_entries in
  {
    grid;
    lanes =
      Array.init nlanes (fun _ ->
          {
            sums = Array.make bucket_count 0.0;
            cursor = 0.0;
            w_ops = 0;
            fired = false;
            ring = ring_create ring;
          });
    port_rings = Array.init (max 1 grid.Grid.mem_ports) (fun _ -> ring_create ring);
    w_at = 0.0;
    engine_cycles = 0;
    config = 0;
    windows = 0;
    iterations = 0;
    noc_claims_a = Array.make (Interconnect.slices grid) 0;
    noc_busy_a = Array.make (Interconnect.slices grid) 0;
    port_claims_n = 0;
    port_busy_n = 0;
    ii_sums = Array.make 4 0.0;
    ii_counts = Array.make 4 0;
    snap = None;
  }

let grid t = t.grid
let lane_count t = Array.length t.lanes

let pe_lane t (c : Grid.coord) = (c.Grid.row * t.grid.Grid.cols) + c.Grid.col
let ls_lane t e = (t.grid.Grid.rows * t.grid.Grid.cols) + e
let lane_is_pe t lane = lane < t.grid.Grid.rows * t.grid.Grid.cols

let lane_label t lane =
  if lane_is_pe t lane then
    Printf.sprintf "pe_%d_%d" (lane / t.grid.Grid.cols) (lane mod t.grid.Grid.cols)
  else Printf.sprintf "ls_%d" (lane - (t.grid.Grid.rows * t.grid.Grid.cols))

(* ------------------------------------------------------------------ *)
(* Window bracketing. *)

let begin_window t ~at =
  t.w_at <- at;
  Array.iter
    (fun ln ->
      ln.cursor <- 0.0;
      ln.w_ops <- 0)
    t.lanes;
  t.snap <-
    Some
      {
        s_sums = Array.map (fun ln -> Array.copy ln.sums) t.lanes;
        s_fired = Array.map (fun ln -> ln.fired) t.lanes;
        s_ring = Array.map (fun ln -> (ln.ring.head, ln.ring.len)) t.lanes;
        s_port_ring = Array.map (fun r -> (r.head, r.len)) t.port_rings;
        s_engine_cycles = t.engine_cycles;
        s_config = t.config;
        s_windows = t.windows;
        s_iterations = t.iterations;
        s_noc_claims = Array.copy t.noc_claims_a;
        s_noc_busy = Array.copy t.noc_busy_a;
        s_port_claims = t.port_claims_n;
        s_port_busy = t.port_busy_n;
        s_ii = Array.copy t.ii_sums;
        s_ii_counts = Array.copy t.ii_counts;
      }

let abort_window t =
  match t.snap with
  | None -> ()
  | Some s ->
    Array.iteri
      (fun i ln ->
        Array.blit s.s_sums.(i) 0 ln.sums 0 bucket_count;
        ln.fired <- s.s_fired.(i);
        let head, len = s.s_ring.(i) in
        ln.ring.head <- head;
        ln.ring.len <- len;
        ln.cursor <- 0.0;
        ln.w_ops <- 0)
      t.lanes;
    Array.iteri
      (fun i r ->
        let head, len = s.s_port_ring.(i) in
        r.head <- head;
        r.len <- len)
      t.port_rings;
    t.engine_cycles <- s.s_engine_cycles;
    t.config <- s.s_config;
    t.windows <- s.s_windows;
    t.iterations <- s.s_iterations;
    Array.blit s.s_noc_claims 0 t.noc_claims_a 0 (Array.length t.noc_claims_a);
    Array.blit s.s_noc_busy 0 t.noc_busy_a 0 (Array.length t.noc_busy_a);
    t.port_claims_n <- s.s_port_claims;
    t.port_busy_n <- s.s_port_busy;
    Array.blit s.s_ii 0 t.ii_sums 0 4;
    Array.blit s.s_ii_counts 0 t.ii_counts 0 4;
    t.snap <- None

(* Charge [dur] cycles of [bucket] on [ln] starting at window-relative
   [from], advancing the cursor. *)
let seg t ln ~from bucket dur =
  if dur > 0.0 then begin
    ln.sums.(bucket_index bucket) <- ln.sums.(bucket_index bucket) +. dur;
    ring_push ln.ring
      { i_start = t.w_at +. from; i_dur = dur; i_bucket = bucket_index bucket }
  end

let charge_config t cycles =
  if cycles < 0 then invalid_arg "Attribution.charge_config: negative cycles";
  if cycles > 0 then begin
    let d = float_of_int cycles in
    Array.iter (fun ln -> ln.sums.(bucket_index Config) <- ln.sums.(bucket_index Config) +. d)
      t.lanes;
    t.config <- t.config + cycles
  end

(* ------------------------------------------------------------------ *)
(* Engine-side recording. *)

let charge_op t ~lane ~start ~noc_wait ~port_wait ~service ~long_op =
  let ln = t.lanes.(lane) in
  ln.w_ops <- ln.w_ops + 1;
  ln.fired <- true;
  (if start > ln.cursor then begin
     (* Waiting for inputs: the portion attributable to NoC queueing on the
        critical input sits immediately before [start]; anything earlier is
        dependence (recurrence) wait. *)
     let gap = start -. ln.cursor in
     let noc = Float.min gap (Float.max 0.0 noc_wait) in
     let rec_wait = gap -. noc in
     seg t ln ~from:ln.cursor Recurrence_wait rec_wait;
     seg t ln ~from:(ln.cursor +. rec_wait) Noc_stall noc;
     ln.cursor <- start
   end);
  (* The op itself: port queue, then service. Overlap with time already
     attributed (pipelined or tiled firings out of order) is clipped. *)
  let p_end = start +. Float.max 0.0 port_wait in
  if p_end > ln.cursor then begin
    seg t ln ~from:ln.cursor Mem_port_stall (p_end -. ln.cursor);
    ln.cursor <- p_end
  end;
  let s_end = start +. Float.max 0.0 port_wait +. Float.max 0.0 service in
  if s_end > ln.cursor then begin
    seg t ln ~from:ln.cursor (if long_op then Long_op else Busy) (s_end -. ln.cursor);
    ln.cursor <- s_end
  end

let observe_ii t ~rec_ ~mem ~fu ~achieved =
  t.ii_sums.(0) <- t.ii_sums.(0) +. rec_;
  t.ii_sums.(1) <- t.ii_sums.(1) +. mem;
  t.ii_sums.(2) <- t.ii_sums.(2) +. fu;
  t.ii_sums.(3) <- t.ii_sums.(3) +. achieved;
  t.ii_counts.(0) <- t.ii_counts.(0) + 1;
  let d =
    if rec_ >= mem && rec_ >= fu then 1 else if mem >= fu then 2 else 3
  in
  t.ii_counts.(d) <- t.ii_counts.(d) + 1

let note_noc_slice t ~slice ~claims ~busy =
  if slice >= 0 && slice < Array.length t.noc_claims_a then begin
    t.noc_claims_a.(slice) <- t.noc_claims_a.(slice) + claims;
    t.noc_busy_a.(slice) <- t.noc_busy_a.(slice) + busy
  end

let note_port_access t ~port ~issue ~service =
  if port >= 0 && port < Array.length t.port_rings then
    ring_push t.port_rings.(port)
      { i_start = t.w_at +. issue; i_dur = service; i_bucket = 0 }

let note_port_totals t ~claims ~busy =
  t.port_claims_n <- t.port_claims_n + claims;
  t.port_busy_n <- t.port_busy_n + busy

let end_window t ~(grid : Grid.t) ~cycles ~iterations =
  let cf = float_of_int cycles in
  Array.iteri
    (fun i ln ->
      let tail = cf -. ln.cursor in
      let bucket =
        if lane_is_pe t i then begin
          let c = Grid.coord (i / t.grid.Grid.cols) (i mod t.grid.Grid.cols) in
          if Grid.is_masked grid c then Masked_faulty
          else if ln.w_ops = 0 then Idle
          else Drain
        end
        else if ln.w_ops = 0 then Idle
        else Drain
      in
      seg t ln ~from:ln.cursor bucket tail;
      ln.cursor <- cf)
    t.lanes;
  t.engine_cycles <- t.engine_cycles + cycles;
  t.windows <- t.windows + 1;
  t.iterations <- t.iterations + iterations

(* ------------------------------------------------------------------ *)
(* Readout. *)

let windows t = t.windows
let iterations t = t.iterations
let engine_cycles t = t.engine_cycles
let config_cycles t = t.config
let total_cycles t = t.engine_cycles + t.config

(* Largest-remainder quantization: integer cycles per bucket summing to
   exactly [total]. Floors first; the residue (positive from dropped
   fractions, or negative from accumulated float error) is distributed by
   fractional part, ties broken by bucket index — fully deterministic. *)
let quantize ~total sums =
  let n = Array.length sums in
  let floors = Array.map (fun s -> max 0 (int_of_float (Float.floor s))) sums in
  let rem = ref (total - Array.fold_left ( + ) 0 floors) in
  let frac i = sums.(i) -. Float.of_int floors.(i) in
  let order =
    List.sort
      (fun a b ->
        match compare (frac b) (frac a) with 0 -> compare a b | c -> c)
      (List.init n Fun.id)
  in
  let out = Array.copy floors in
  (* Positive residue: award to the largest fractional parts. *)
  let give = List.to_seq order |> Array.of_seq in
  let k = ref 0 in
  while !rem > 0 do
    let i = give.(!k mod n) in
    out.(i) <- out.(i) + 1;
    decr rem;
    incr k
  done;
  (* Negative residue: take from the smallest fractional parts with mass. *)
  let k = ref (n - 1) in
  while !rem < 0 do
    let i = give.(((!k mod n) + n) mod n) in
    if out.(i) > 0 then begin
      out.(i) <- out.(i) - 1;
      incr rem
    end;
    decr k
  done;
  out

let lane_buckets t lane = quantize ~total:(total_cycles t) t.lanes.(lane).sums

let totals t =
  let acc = Array.make bucket_count 0 in
  Array.iteri
    (fun i _ ->
      let b = lane_buckets t i in
      Array.iteri (fun j v -> acc.(j) <- acc.(j) + v) b)
    t.lanes;
  acc

let lane_fired t lane = t.lanes.(lane).fired

let lane_intervals t lane =
  List.map
    (fun iv -> (iv.i_start, iv.i_dur, bucket_of_index.(iv.i_bucket)))
    (ring_to_list t.lanes.(lane).ring)

let port_intervals t port =
  List.map (fun iv -> (iv.i_start, iv.i_dur)) (ring_to_list t.port_rings.(port))

let port_count t = Array.length t.port_rings
let noc_slice_count t = Array.length t.noc_claims_a
let noc_claims t = Array.copy t.noc_claims_a
let noc_busy t = Array.copy t.noc_busy_a
let port_claims t = t.port_claims_n
let port_busy t = t.port_busy_n

type ii_summary = {
  ii_iterations : int;
  ii_mean : float;
  ii_rec_mean : float;
  ii_mem_mean : float;
  ii_fu_mean : float;
  ii_rec_bound : int;
  ii_mem_bound : int;
  ii_fu_bound : int;
}

let ii_summary t =
  let n = t.ii_counts.(0) in
  let mean s = if n = 0 then 0.0 else s /. float_of_int n in
  {
    ii_iterations = n;
    ii_mean = mean t.ii_sums.(3);
    ii_rec_mean = mean t.ii_sums.(0);
    ii_mem_mean = mean t.ii_sums.(1);
    ii_fu_mean = mean t.ii_sums.(2);
    ii_rec_bound = t.ii_counts.(1);
    ii_mem_bound = t.ii_counts.(2);
    ii_fu_bound = t.ii_counts.(3);
  }
