(** Deterministic fault injection for the spatial fabric.

    A {!spec} is a seeded schedule of fault events the engine consults while
    a loop executes on the array. Every random choice (victim PE, stuck-at
    value) comes from one splitmix PRNG seeded by the schedule, so a run is
    reproducible from [--inject SPEC --fault-seed N] alone.

    Fault kinds and their modeled effect:

    - {!Transient_pe}: a one-shot upset in a PE's output latch — the value
      produced by the node on that PE is flipped for one iteration.
    - {!Permanent_pe}: a stuck-at PE — from the fire point on, every firing
      of a node placed there yields the stuck value (branch PEs stick at
      "taken"), until the controller masks the PE out of the {!Grid} and
      remaps.
    - {!Link_down}: a NoC router slice dies, taking the PEs it serves with
      it (modeled as permanent stuck-at over the whole slice).
    - {!Config_upset}: a bit flip in the configuration bitstream. The
      checksummed codec catches it at write time; the controller pays the
      write again.
    - {!Port_degrade}: one cache port lost (timing-only — no corruption, the
      array just serializes harder; never drops below one port).

    Detection is modeled, not value-compared: the engine marks the window
    corrupt at the first applied corruption (an end-of-window output
    checksum would catch exactly this set), and a watchdog bounds windows
    that stop making forward progress. *)

type kind =
  | Transient_pe
  | Permanent_pe
  | Link_down
  | Config_upset
  | Port_degrade

val kind_name : kind -> string

type event = {
  at : int;
      (** global fabric iteration index for PE/link/port events;
          configuration-write ordinal (1-based) for [Config_upset] *)
  kind : kind;
  coord : Grid.coord option;
      (** pin the victim PE (or, for [Link_down], any PE of the victim
          slice); [None] draws one from the occupied PEs *)
}

type spec = { seed : int; events : event list }

val spec : ?seed:int -> event list -> spec

val spec_of_string : ?seed:int -> string -> (spec, string) result
(** Comma-separated [KIND@AT] or [KIND@AT:ROWxCOL] tokens, where KIND is
    [transient], [permanent], [link], [config] or [ports] — e.g.
    ["transient@100,permanent@300:2x5,config@1"]. *)

val spec_to_string : spec -> string

(** Mutable injector state threaded through one controller run. *)
type t

val create : grid:Grid.t -> spec -> t
val seed : t -> int

(** {2 Engine-facing} *)

type strike = { s_coord : Grid.coord; s_kind : kind; s_value : int }
(** A transient corruption to apply this iteration at [s_coord]. *)

type step = {
  strikes : strike list;
  fabric_changed : bool;  (** permanent damage appeared this iteration *)
}

val begin_window : t -> used:Grid.coord list -> unit
(** Start an execution window: remember the occupied PEs (victim pool for
    drawn targets) and reset the window's corruption note. *)

val tick : t -> step
(** Advance the global iteration counter and fire any due events. *)

val note_corruption : t -> kind -> unit
(** The engine applied a corruption of [kind] in the current window. *)

val window_corrupted : t -> bool
val window_kinds : t -> kind list

val dead : t -> (Grid.coord * kind * int) list
(** Permanently dead PEs with the kind that killed them and their stuck-at
    value. *)

val dead_coords : t -> Grid.coord list
val ports_lost : t -> int

(** {2 Controller-facing} *)

val config_write : t -> bool
(** Record one configuration write; [true] when a scheduled upset hits it
    (the write must be paid again). Call until it returns [false]. *)

val injected : t -> int
(** Total events fired so far (latent strikes included). *)
