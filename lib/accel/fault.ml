type kind =
  | Transient_pe
  | Permanent_pe
  | Link_down
  | Config_upset
  | Port_degrade

let kind_name = function
  | Transient_pe -> "transient"
  | Permanent_pe -> "permanent"
  | Link_down -> "link"
  | Config_upset -> "config"
  | Port_degrade -> "ports"

let kind_of_name = function
  | "transient" -> Some Transient_pe
  | "permanent" -> Some Permanent_pe
  | "link" -> Some Link_down
  | "config" -> Some Config_upset
  | "ports" -> Some Port_degrade
  | _ -> None

type event = { at : int; kind : kind; coord : Grid.coord option }
type spec = { seed : int; events : event list }

let spec ?(seed = 0x5EED) events = { seed; events }

let spec_of_string ?(seed = 0x5EED) s =
  let parse_token tok =
    match String.split_on_char '@' (String.trim tok) with
    | [ k; rest ] -> (
      match kind_of_name k with
      | None -> Error (Printf.sprintf "unknown fault kind %S in %S" k tok)
      | Some kind -> (
        let at_str, coord_str =
          match String.split_on_char ':' rest with
          | [ a ] -> (a, None)
          | [ a; c ] -> (a, Some c)
          | _ -> (rest, None)
        in
        match int_of_string_opt at_str with
        | None -> Error (Printf.sprintf "bad fire point %S in %S" at_str tok)
        | Some at -> (
          match coord_str with
          | None -> Ok { at; kind; coord = None }
          | Some c -> (
            match String.split_on_char 'x' c with
            | [ r; col ] -> (
              match (int_of_string_opt r, int_of_string_opt col) with
              | Some r, Some col -> Ok { at; kind; coord = Some (Grid.coord r col) }
              | _ -> Error (Printf.sprintf "bad coordinate %S in %S" c tok))
            | _ -> Error (Printf.sprintf "bad coordinate %S in %S" c tok)))))
    | _ -> Error (Printf.sprintf "expected KIND@AT[:ROWxCOL], got %S" tok)
  in
  let tokens =
    List.filter (fun t -> String.trim t <> "") (String.split_on_char ',' s)
  in
  if tokens = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc tok ->
        Result.bind acc (fun evs ->
            Result.map (fun ev -> ev :: evs) (parse_token tok)))
      (Ok []) tokens
    |> Result.map (fun evs -> { seed; events = List.rev evs })

let spec_to_string sp =
  String.concat ","
    (List.map
       (fun ev ->
         let coord =
           match ev.coord with
           | None -> ""
           | Some c -> Printf.sprintf ":%dx%d" c.Grid.row c.Grid.col
         in
         Printf.sprintf "%s@%d%s" (kind_name ev.kind) ev.at coord)
       sp.events)

type strike = { s_coord : Grid.coord; s_kind : kind; s_value : int }
type step = { strikes : strike list; fabric_changed : bool }

type t = {
  grid : Grid.t;
  sd : int;
  prng : Prng.t;
  mutable pending : event list;        (* iteration-indexed events *)
  mutable next_due : int;              (* earliest pending fire point *)
  mutable config_pending : int list;   (* config-write ordinals *)
  mutable iteration : int;
  mutable config_writes : int;
  mutable dead : (Grid.coord * kind * int) list;
  mutable ports_lost : int;
  mutable used : Grid.coord list;
  mutable injected : int;
  mutable window_kinds : kind list;
}

let earliest events =
  List.fold_left (fun acc ev -> min acc ev.at) max_int events

let create ~grid sp =
  let iter_events, config_ords =
    List.partition (fun ev -> ev.kind <> Config_upset) sp.events
  in
  {
    grid;
    sd = sp.seed;
    prng = Prng.create sp.seed;
    pending = iter_events;
    next_due = earliest iter_events;
    config_pending = List.map (fun ev -> ev.at) config_ords;
    iteration = 0;
    config_writes = 0;
    dead = [];
    ports_lost = 0;
    used = [];
    injected = 0;
    window_kinds = [];
  }

let seed t = t.sd
let dead t = t.dead
let dead_coords t = List.map (fun (c, _, _) -> c) t.dead
let ports_lost t = t.ports_lost
let injected t = t.injected
let window_corrupted t = t.window_kinds <> []
let window_kinds t = t.window_kinds

let begin_window t ~used =
  t.used <- used;
  t.window_kinds <- []

let note_corruption t kind =
  if not (List.mem kind t.window_kinds) then
    t.window_kinds <- kind :: t.window_kinds

let is_dead t c = List.exists (fun (d, _, _) -> d = c) t.dead

(* 32-bit stuck-at / flip pattern; never zero so a flip always changes an
   integer value. *)
let draw_value t = (Int64.to_int (Prng.bits64 t.prng) land 0x7FFFFFFE) lor 1

(* Victim PE: an occupied, still-healthy PE when one exists (a fault that
   lands in unused silicon is latent and would make every schedule a no-op
   on small kernels), otherwise any healthy PE, otherwise none. *)
let draw_victim t =
  let healthy = List.filter (fun c -> not (is_dead t c)) t.used in
  match healthy with
  | _ :: _ -> Some (List.nth healthy (Prng.int t.prng (List.length healthy)))
  | [] ->
    let all = ref [] in
    Grid.iter_coords t.grid (fun c -> if not (is_dead t c) then all := c :: !all);
    (match !all with
    | [] -> None
    | l -> Some (List.nth l (Prng.int t.prng (List.length l))))

let victim_of t ev = match ev.coord with Some c -> Some c | None -> draw_victim t

let kill t coord kind =
  if not (is_dead t coord) then
    t.dead <- (coord, kind, draw_value t) :: t.dead

(* Shared idle step: the engine ticks the injector every iteration, and on
   almost all of them nothing is due — return a preallocated step instead of
   partitioning the pending list (and allocating two) each time. The
   [next_due] watermark is what lets the event-driven engine's batched time
   jumps stride over quiet iterations at constant cost. *)
let empty_step = { strikes = []; fabric_changed = false }

let tick t =
  let now = t.iteration in
  t.iteration <- now + 1;
  if now < t.next_due then empty_step
  else begin
  let due, rest = List.partition (fun ev -> ev.at <= now) t.pending in
  t.pending <- rest;
  t.next_due <- earliest rest;
  let strikes = ref [] in
  let fabric_changed = ref false in
  List.iter
    (fun ev ->
      t.injected <- t.injected + 1;
      match ev.kind with
      | Transient_pe -> (
        match victim_of t ev with
        | Some c ->
          strikes := { s_coord = c; s_kind = Transient_pe; s_value = draw_value t } :: !strikes
        | None -> ())
      | Permanent_pe -> (
        match victim_of t ev with
        | Some c ->
          kill t c Permanent_pe;
          fabric_changed := true
        | None -> ())
      | Link_down -> (
        match victim_of t ev with
        | Some c ->
          let slice = Interconnect.noc_slice t.grid c in
          Grid.iter_coords t.grid (fun d ->
              if Interconnect.noc_slice t.grid d = slice then kill t d Link_down);
          fabric_changed := true
        | None -> ())
      | Port_degrade ->
        t.ports_lost <- min (t.ports_lost + 1) (t.grid.Grid.mem_ports - 1)
      | Config_upset -> ())
    due;
  { strikes = !strikes; fabric_changed = !fabric_changed }
  end

let config_write t =
  t.config_writes <- t.config_writes + 1;
  let hit, rest = List.partition (fun ord -> ord <= t.config_writes) t.config_pending in
  t.config_pending <- rest;
  (match hit with
  | [] -> ()
  | l -> t.injected <- t.injected + List.length l);
  hit <> []
