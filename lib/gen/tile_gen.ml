open Tile_dsl

(* -------------------- generation -------------------- *)

(* Arrays get their element counts after the fact: every reference records
   the largest index it can reach, and the declaration is sized to fit. *)
type sizer = (string, int) Hashtbl.t

let record (sz : sizer) scope name (aff : affine) =
  let hi =
    List.fold_left
      (fun acc (v, c) ->
        let extent = List.assoc v scope in
        acc + if c >= 0 then c * (extent - 1) else 0)
      aff.const aff.coeffs
  in
  let prev = Option.value ~default:0 (Hashtbl.find_opt sz name) in
  Hashtbl.replace sz name (max prev hi)

(* An index expression over [scope] (outermost first): row-major-ish, the
   innermost variable always participates with a small coefficient. *)
let gen_affine rng sz scope name =
  let inner = fst (List.nth scope (List.length scope - 1)) in
  let coeffs =
    List.filter (fun (v, _) -> v = inner || Prng.int rng 10 < 6) scope
    |> List.map (fun (v, _) ->
           if v = inner then (v, 1 + Prng.int rng 2) else (v, 1 + Prng.int rng 8))
  in
  let aff = { coeffs; const = Prng.int rng 3 } in
  record sz scope name aff;
  aff

type mode = Ints | Floats | Mixed

let in_arrays mode =
  match mode with
  | Ints -> [ ("x", I32); ("y", I32) ]
  | Floats -> [ ("x", F32); ("y", F32) ]
  | Mixed -> [ ("x", I32); ("y", F32) ]

let out_dtype = function Ints -> I32 | Floats | Mixed -> F32

let rec gen_iexp rng sz scope mode depth =
  let int_loads =
    List.filter_map (fun (a, d) -> if d = I32 then Some a else None) (in_arrays mode)
  in
  let leaf () =
    match Prng.int rng 5 with
    | 0 | 1 when int_loads <> [] ->
      let a = List.nth int_loads (Prng.int rng (List.length int_loads)) in
      Iload (a, gen_affine rng sz scope a)
    | 2 -> Ivar (fst (List.nth scope (Prng.int rng (List.length scope))))
    | 3 -> Itmp 0
    | _ -> Iconst (1 + Prng.int rng 9)
  in
  if depth = 0 || Prng.int rng 4 = 0 then leaf ()
  else
    let op =
      match Prng.int rng 6 with
      | 0 | 1 -> Add
      | 2 -> Sub
      | 3 -> Mul
      | 4 -> Xor
      | _ -> And
    in
    Ibin (op, gen_iexp rng sz scope mode (depth - 1), gen_iexp rng sz scope mode (depth - 1))

let rec gen_fexp rng sz scope mode depth =
  let fp_loads =
    List.filter_map (fun (a, d) -> if d = F32 then Some a else None) (in_arrays mode)
  in
  let leaf () =
    match Prng.int rng 5 with
    | 0 | 1 when fp_loads <> [] ->
      let a = List.nth fp_loads (Prng.int rng (List.length fp_loads)) in
      Fload (a, gen_affine rng sz scope a)
    | 2 when mode = Mixed -> I2f (gen_iexp rng sz scope mode 1)
    | 3 -> Ftmp 0
    | _ -> Fconst (Machine.round32 (Prng.float_in rng (-2.0) 2.0))
  in
  if depth = 0 || Prng.int rng 4 = 0 then leaf ()
  else
    let op =
      match Prng.int rng 6 with
      | 0 | 1 -> Fadd
      | 2 -> Fsub
      | 3 | 4 -> Fmul
      | _ -> Fmin
    in
    Fbin (op, gen_fexp rng sz scope mode (depth - 1), gen_fexp rng sz scope mode (depth - 1))

let gen_guard rng scope body =
  let inner = fst (List.nth scope (List.length scope - 1)) in
  let e1 =
    if Prng.bool rng then Ibin (And, Ivar inner, Iconst 1) else Ivar inner
  in
  let c = match Prng.int rng 3 with 0 -> Lt | 1 -> Ne | _ -> Ge in
  If (c, e1, Iconst (Prng.int rng 4), body)

let generate ~seed =
  let rng = Prng.create seed in
  let mode = match Prng.int rng 3 with 0 -> Ints | 1 -> Floats | _ -> Mixed in
  let depth = 1 + Prng.int rng 3 in
  let reduce = depth >= 2 && Prng.int rng 3 = 0 in
  let tiled = Prng.int rng 10 < 3 in
  (* Trip counts must leave room for detection (8 consecutive iterations)
     plus translation latency before an offload can fire: depth-1 nests get
     one long run, deeper nests get shorter inner loops but several outer
     re-entries for a pending configuration to land on. *)
  let inner_extent =
    if tiled then (if Prng.bool rng then 12 else 16) * (2 + Prng.int rng 2)
    else if depth = 1 then Prng.int_in rng 200 500
    else Prng.int_in rng 32 96
  in
  let tile_factor = if inner_extent mod 12 = 0 then 12 else 16 in
  let var_names = [ "i"; "j"; "k" ] in
  let extents =
    List.init depth (fun d ->
        if d = depth - 1 then inner_extent else Prng.int_in rng 3 8)
  in
  let scope = List.map2 (fun v e -> (v, e)) (List.filteri (fun i _ -> i < depth) var_names) extents in
  let sz : sizer = Hashtbl.create 4 in
  let inner_var = fst (List.nth scope (depth - 1)) in
  let outer_scope = List.filteri (fun i _ -> i < depth - 1) scope in
  let fp = mode <> Ints in
  (* innermost statements *)
  let store_aff () =
    (* innermost coefficient 1..2 guarantees per-iteration injectivity *)
    let coeffs =
      List.filteri (fun i _ -> i = depth - 1 || Prng.bool rng) scope
      |> List.map (fun (v, _) ->
             if v = inner_var then (v, 1 + Prng.int rng 2) else (v, 1 + Prng.int rng 8))
    in
    let aff = { coeffs; const = Prng.int rng 2 } in
    record sz scope "out" aff;
    aff
  in
  let inner_body =
    if reduce then
      if fp then [ accum_f 0 Fadd (gen_fexp rng sz scope mode 2) ]
      else [ accum_i 0 Add (gen_iexp rng sz scope mode 2) ]
    else begin
      let set =
        if Prng.bool rng then
          if fp then [ Fset (0, gen_fexp rng sz scope mode 2) ]
          else [ Iset (0, gen_iexp rng sz scope mode 2) ]
        else []
      in
      let store () =
        if fp then Fstore ("out", store_aff (), gen_fexp rng sz scope mode 2)
        else Istore ("out", store_aff (), gen_iexp rng sz scope mode 2)
      in
      let first = store () in
      let extra =
        if Prng.int rng 10 < 3 then
          let s = store () in
          if Prng.bool rng then [ gen_guard rng scope [ s ] ] else [ s ]
        else []
      in
      set @ [ first ] @ extra
    end
  in
  let inner_for = For { var = inner_var; extent = inner_extent; tile_tag = None; body = inner_body } in
  let inner_for =
    if tiled then
      match tile ~t:tile_factor inner_for with Ok s -> s | Error _ -> inner_for
    else inner_for
  in
  (* wrap outward; a reduction initialises / stores in the immediate parent *)
  let rec wrap ~is_parent levels inner =
    match levels with
    | [] -> inner
    | (v, e) :: rest ->
      let body =
        if reduce && is_parent then begin
          let parent_scope = List.filteri (fun i _ -> i < depth - 1) scope in
          let coeffs =
            List.map (fun (v, _) -> (v, 1 + Prng.int rng 8)) parent_scope
          in
          let aff = { coeffs; const = 0 } in
          record sz parent_scope "out" aff;
          if fp then
            [ Fset (0, Fconst 0.0); inner; Fstore ("out", aff, Ftmp 0) ]
          else [ Iset (0, Iconst 0); inner; Istore ("out", aff, Itmp 0) ]
        end
        else [ inner ]
      in
      wrap ~is_parent:false rest (For { var = v; extent = e; tile_tag = None; body })
  in
  (* outer_scope is outermost-first; wrap from the inside out *)
  let nest = wrap ~is_parent:true (List.rev outer_scope) inner_for in
  let elems name = 1 + Option.value ~default:0 (Hashtbl.find_opt sz name) in
  let arrays =
    List.map
      (fun (a, d) ->
        { aname = a; dtype = d; input = true; elems = elems a })
      (in_arrays mode)
    @ [ { aname = "out"; dtype = out_dtype mode; input = false; elems = elems "out" } ]
  in
  {
    sname = Printf.sprintf "gen%d" (abs seed mod 1_000_000_000);
    seed;
    arrays;
    body = [ nest ];
  }

(* -------------------- shrinking -------------------- *)

let rec variants_of_list stmts =
  match stmts with
  | [] -> []
  | s :: rest ->
    let here =
      (match s with For _ -> [] | _ -> [ rest ])
      @ (match s with If (_, _, _, body) -> [ body @ rest ] | _ -> [])
      @ (match s with
        | For l ->
          (match untile s with Some s' -> [ s' :: rest ] | None -> [])
          @ (if l.extent >= 2 then
               [ For { l with extent = l.extent / 2 } :: rest ]
             else [])
          @ List.map
              (fun body' -> For { l with body = body' } :: rest)
              (variants_of_list l.body)
        | If (c, e1, e2, body) ->
          List.map
            (fun body' -> If (c, e1, e2, body') :: rest)
            (variants_of_list body)
        | _ -> [])
    in
    here @ List.map (fun rest' -> s :: rest') (variants_of_list rest)

let shrink_candidates spec =
  variants_of_list spec.body
  |> List.map (fun body -> { spec with body })
  |> List.filter (fun s -> validate s = Ok ())
