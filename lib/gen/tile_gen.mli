(** Seeded random programs over {!Tile_dsl}, plus the shrinker.

    [generate ~seed] is a pure function of the seed (splitmix, {!Prng}):
    equal seeds give structurally equal specs on any machine, which is what
    makes fuzzing runs replayable. Generated programs always pass
    {!Tile_dsl.validate}, bias toward detectable loops (innermost trip
    count at least 10, compute-heavy bodies) and cover the DSL's surface:
    int / FP / mixed arithmetic, depth-1..4 nests, tiling, reductions and
    guards. *)

val generate : seed:int -> Tile_dsl.spec

val shrink_candidates : Tile_dsl.spec -> Tile_dsl.spec list
(** One-step reductions of a failing spec, in a fixed order: drop a
    statement, inline a guard's body, undo a tiling split, halve a trip
    count. Every candidate is strictly simpler and still valid; the caller
    keeps any candidate that reproduces its failure and iterates. *)
