(** A combinator DSL for tile-level loop nests.

    This is the generator frontend the ROADMAP asks for: kernels are written
    (or drawn at random, {!Tile_gen}) as a small affine loop-nest AST —
    tiling, affine loads/stores, accumulations, conditional guards — and
    lowered ({!Tile_lower}) onto the RV32 assembler DSL and the
    {!Kernel.t} interface, so every program the DSL can express immediately
    runs on all of the repo's execution substrates.

    The AST carries its own exact evaluator (built on {!Interp.Alu}, the same
    32-bit semantics the interpreter and the accelerator engine share), which
    gives each program an independent third oracle: interpreter vs
    accelerator catches engine bugs, DSL-evaluation vs either catches
    lowering bugs.

    Shapes are deliberately restricted (one loop per nesting level, guards
    never contain loops, at most four arrays and three temporaries per file)
    so that lowering needs no register allocator and the validity of a
    program is decidable by {!validate} before any code is emitted. *)

type dtype = I32 | F32

type array_decl = {
  aname : string;
  dtype : dtype;
  input : bool;  (** filled with seeded data by {!setup}; outputs start zeroed *)
  elems : int;   (** 4-byte elements *)
}

(** Index expression [sum coeffs*var + const], in elements. *)
type affine = { coeffs : (string * int) list; const : int }

type ibin = Add | Sub | Mul | And | Or | Xor
type fbin = Fadd | Fsub | Fmul | Fmin | Fmax

(** Guard comparisons (signed). *)
type cmp = Lt | Ge | Eq | Ne

type exp =
  | Iconst of int
  | Fconst of float           (** must be exactly representable in single *)
  | Ivar of string            (** a loop induction variable *)
  | Itmp of int               (** integer temporary 0..2, zero-initialised *)
  | Ftmp of int               (** FP temporary 0..2, zero-initialised *)
  | Iload of string * affine
  | Fload of string * affine
  | Ibin of ibin * exp * exp
  | Fbin of fbin * exp * exp
  | I2f of exp
  | F2i of exp                (** truncating convert, RTZ *)

type stmt =
  | Iset of int * exp
  | Fset of int * exp
  | Istore of string * affine * exp
  | Fstore of string * affine * exp
  | If of cmp * exp * exp * stmt list  (** guard; body contains no loops *)
  | For of for_loop

and for_loop = {
  var : string;
  extent : int;
  tile_tag : string option;
      (** original variable name when this loop came out of {!tile} *)
  body : stmt list;  (** at most one nested [For] *)
}

type spec = {
  sname : string;
  seed : int;  (** input-data seed used by {!setup} *)
  arrays : array_decl list;
  body : stmt list;  (** exactly one top-level [For] *)
}

(** {1 Combinators} *)

val array_i : ?input:bool -> string -> int -> array_decl
val array_f : ?input:bool -> string -> int -> array_decl

val idx : ?const:int -> (string * int) list -> affine
(** [idx [ ("i", 8); ("j", 1) ]] is the element index [8*i + j]. *)

val for_ : string -> int -> stmt list -> stmt
val if_ : cmp -> exp -> exp -> stmt list -> stmt

val accum_i : int -> ibin -> exp -> stmt
(** [accum_i t op e] is [t := t op e] — an integer reduction step. *)

val accum_f : int -> fbin -> exp -> stmt

val tile : t:int -> stmt -> (stmt, string) result
(** Strip-mine a [For] by factor [t] (which must divide the extent) into an
    outer [var_o] / inner [var_i] pair, rewriting every use of the variable.
    Both new loops are tagged so {!untile} can undo the split. *)

val untile : stmt -> stmt option
(** Undo one {!tile} application; [None] if the statement is not an intact
    tiled pair. *)

(** {1 Analysis} *)

val validate : spec -> (unit, string) result
(** Check every restriction lowering relies on: shape (one loop per level,
    no loops under guards, single top-level loop), resource bounds (arrays,
    temporaries, loop depth, expression depth), static in-bounds indexing,
    immediate ranges, iteration-space volume, and type correctness. *)

val stmt_count : spec -> int
(** Number of statement nodes — the shrinker's size metric. *)

val fp_spec : spec -> bool
(** Uses the FP pipeline anywhere. *)

val innermost : spec -> for_loop option
(** The deepest loop of the nest (after {!validate}, it always exists). *)

val innermost_parallel : spec -> bool
(** Conservative safety analysis for marking the innermost loop parallel
    (the pragma MESA's tiling keys on): every store indexed injectively by
    the innermost variable, no array both read and written in the body, at
    most one store per array, no loop-carried or guarded temporary flow. *)

val outer_extent : spec -> int
(** Trip count of the outermost loop — the kernel's [n] / slicing range. *)

(** {1 Execution} *)

val base_of : spec -> string -> int
(** Byte base address of an array (fixed layout, 256 KiB per slot). *)

val setup : spec -> Main_memory.t -> unit
(** Fill input arrays with seeded deterministic data. *)

val eval : spec -> Main_memory.t -> unit
(** Reference-execute the whole nest against [mem] with bit-exact RV32IMF
    semantics ({!Interp.Alu}); temporaries start at zero and persist across
    iterations, exactly like the lowered registers. *)

val check : spec -> Main_memory.t -> (unit, string) result
(** Compare every array region of [mem] word-by-word (NaN-safe) against a
    fresh {!setup}+{!eval} run. *)

(** {1 Serialization} *)

val pp : Format.formatter -> spec -> unit
val to_string : spec -> string
val to_json : spec -> Json.t
val of_json : Json.t -> (spec, string) result
