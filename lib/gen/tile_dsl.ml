(* See tile_dsl.mli. The invariants validate enforces are exactly the ones
   Tile_lower relies on; lower never re-checks them. *)

type dtype = I32 | F32

type array_decl = { aname : string; dtype : dtype; input : bool; elems : int }
type affine = { coeffs : (string * int) list; const : int }
type ibin = Add | Sub | Mul | And | Or | Xor
type fbin = Fadd | Fsub | Fmul | Fmin | Fmax
type cmp = Lt | Ge | Eq | Ne

type exp =
  | Iconst of int
  | Fconst of float
  | Ivar of string
  | Itmp of int
  | Ftmp of int
  | Iload of string * affine
  | Fload of string * affine
  | Ibin of ibin * exp * exp
  | Fbin of fbin * exp * exp
  | I2f of exp
  | F2i of exp

type stmt =
  | Iset of int * exp
  | Fset of int * exp
  | Istore of string * affine * exp
  | Fstore of string * affine * exp
  | If of cmp * exp * exp * stmt list
  | For of for_loop

and for_loop = {
  var : string;
  extent : int;
  tile_tag : string option;
  body : stmt list;
}

type spec = {
  sname : string;
  seed : int;
  arrays : array_decl list;
  body : stmt list;
}

(* -------------------- resource limits -------------------- *)

let max_arrays = 4
let max_temps = 3
let max_depth = 5
let max_extent = 1024
let max_volume = 200_000
let max_scratch = 5
let array_slot_bytes = 0x40000
let array_base = 0x100000

(* -------------------- combinators -------------------- *)

let array_i ?(input = true) aname elems = { aname; dtype = I32; input; elems }
let array_f ?(input = true) aname elems = { aname; dtype = F32; input; elems }
let idx ?(const = 0) coeffs = { coeffs; const }
let for_ var extent body = For { var; extent; tile_tag = None; body }
let if_ c e1 e2 body = If (c, e1, e2, body)
let accum_i t op e = Iset (t, Ibin (op, Itmp t, e))
let accum_f t op e = Fset (t, Fbin (op, Ftmp t, e))

(* -------------------- tiling -------------------- *)

(* Bottom-up rewrite, except [fe] gets first shot at every node: a match
   replaces the whole subtree without descending into the replacement. *)
let map_stmts ~exp:fe ~aff:fa stmts =
  let rec go_e e =
    let e' = fe e in
    if e' != e then e'
    else
      match e with
      | Iconst _ | Fconst _ | Itmp _ | Ftmp _ | Ivar _ -> e
      | Iload (a, aff) -> Iload (a, fa aff)
      | Fload (a, aff) -> Fload (a, fa aff)
      | Ibin (op, l, r) -> Ibin (op, go_e l, go_e r)
      | Fbin (op, l, r) -> Fbin (op, go_e l, go_e r)
      | I2f e -> I2f (go_e e)
      | F2i e -> F2i (go_e e)
  and go_s = function
    | Iset (t, e) -> Iset (t, go_e e)
    | Fset (t, e) -> Fset (t, go_e e)
    | Istore (a, aff, e) -> Istore (a, fa aff, go_e e)
    | Fstore (a, aff, e) -> Fstore (a, fa aff, go_e e)
    | If (c, e1, e2, body) -> If (c, go_e e1, go_e e2, List.map go_s body)
    | For l -> For { l with body = List.map go_s l.body }
  in
  List.map go_s stmts

let tile ~t stmt =
  match stmt with
  | For { var; extent; tile_tag = None; body } when t > 1 && extent mod t = 0 ->
    let vo = var ^ "_o" and vi = var ^ "_i" in
    let fe = function
      | Ivar v when v = var ->
        Ibin (Add, Ibin (Mul, Ivar vo, Iconst t), Ivar vi)
      | e -> e
    in
    let fa (aff : affine) =
      let coeffs =
        List.concat_map
          (fun (v, c) -> if v = var then [ (vo, c * t); (vi, c) ] else [ (v, c) ])
          aff.coeffs
      in
      { aff with coeffs }
    in
    let body' = map_stmts ~exp:fe ~aff:fa body in
    Ok
      (For
         {
           var = vo;
           extent = extent / t;
           tile_tag = Some var;
           body =
             [ For { var = vi; extent = t; tile_tag = Some var; body = body' } ];
         })
  | For { tile_tag = Some _; _ } -> Error "already tiled"
  | For _ -> Error "tile factor must divide the extent and exceed 1"
  | _ -> Error "tile expects a For"

let untile stmt =
  match stmt with
  | For
      {
        var = vo;
        extent = eo;
        tile_tag = Some v;
        body = [ For { var = vi; extent = t; tile_tag = Some v'; body } ];
      }
    when v = v' && vo = v ^ "_o" && vi = v ^ "_i" ->
    let ok = ref true in
    let fe = function
      | Ibin (Add, Ibin (Mul, Ivar o, Iconst t'), Ivar i)
        when o = vo && i = vi && t' = t ->
        Ivar v
      | (Ivar x) as e ->
        if x = vo || x = vi then ok := false;
        e
      | e -> e
    in
    let fa (aff : affine) =
      let rec fuse = function
        | (o, co) :: (i, ci) :: rest when o = vo && i = vi ->
          if co <> ci * t then ok := false;
          (v, ci) :: fuse rest
        | (x, c) :: rest ->
          if x = vo || x = vi then ok := false;
          (x, c) :: fuse rest
        | [] -> []
      in
      { aff with coeffs = fuse aff.coeffs }
    in
    let body' = map_stmts ~exp:fe ~aff:fa body in
    if !ok then Some (For { var = v; extent = eo * t; tile_tag = None; body = body' })
    else None
  | _ -> None

(* -------------------- analysis -------------------- *)

let rec stmt_count_list stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | Iset _ | Fset _ | Istore _ | Fstore _ -> 1
      | If (_, _, _, body) -> 1 + stmt_count_list body
      | For l -> 1 + stmt_count_list l.body)
    0 stmts

let stmt_count spec = stmt_count_list spec.body

let rec exp_fp = function
  | Fconst _ | Ftmp _ | Fload _ | Fbin _ | I2f _ -> true
  | Iconst _ | Ivar _ | Itmp _ | Iload _ -> false
  | Ibin (_, l, r) -> exp_fp l || exp_fp r
  | F2i e -> exp_fp e

let fp_spec spec =
  let rec go = function
    | Iset (_, e) -> exp_fp e
    | Fset _ | Fstore _ -> true
    | Istore (_, _, e) -> exp_fp e
    | If (_, e1, e2, body) -> exp_fp e1 || exp_fp e2 || List.exists go body
    | For l -> List.exists go l.body
  in
  List.exists go spec.body

let rec find_for = function
  | [] -> None
  | For l :: _ -> Some l
  | _ :: rest -> find_for rest

let innermost spec =
  let rec go (l : for_loop) =
    match find_for l.body with None -> l | Some l' -> go l'
  in
  Option.map go (find_for spec.body)

let outer_extent spec =
  match find_for spec.body with Some l -> l.extent | None -> 0

(* Arrays loaded / stored in a loop-free statement list. *)
let rec exp_loads acc = function
  | Iconst _ | Fconst _ | Ivar _ | Itmp _ | Ftmp _ -> acc
  | Iload (a, _) | Fload (a, _) -> a :: acc
  | Ibin (_, l, r) | Fbin (_, l, r) -> exp_loads (exp_loads acc l) r
  | I2f e | F2i e -> exp_loads acc e

let rec body_loads acc = function
  | [] -> acc
  | (Iset (_, e) | Fset (_, e)) :: rest -> body_loads (exp_loads acc e) rest
  | (Istore (_, _, e) | Fstore (_, _, e)) :: rest ->
    body_loads (exp_loads acc e) rest
  | If (_, e1, e2, body) :: rest ->
    body_loads (body_loads (exp_loads (exp_loads acc e1) e2) body) rest
  | For l :: rest -> body_loads (body_loads acc l.body) rest

let rec body_stores acc = function
  | [] -> acc
  | (Istore (a, aff, _) | Fstore (a, aff, _)) :: rest ->
    body_stores ((a, aff) :: acc) rest
  | If (_, _, _, body) :: rest -> body_stores (body_stores acc body) rest
  | (Iset _ | Fset _) :: rest -> body_stores acc rest
  | For l :: rest -> body_stores (body_stores acc l.body) rest

let rec exp_temps acc = function
  | Itmp t -> (`I, t) :: acc
  | Ftmp t -> (`F, t) :: acc
  | Iconst _ | Fconst _ | Ivar _ -> acc
  | Iload _ | Fload _ -> acc
  | Ibin (_, l, r) | Fbin (_, l, r) -> exp_temps (exp_temps acc l) r
  | I2f e | F2i e -> exp_temps acc e

(* No temporary is read before an unconditional write in the same
   iteration, and no temporary is written under a guard. *)
let temps_straightline body =
  let module S = Set.Make (struct
    type t = [ `I | `F ] * int

    let compare = compare
  end) in
  let reads_ok written e =
    List.for_all (fun t -> S.mem t written) (exp_temps [] e)
  in
  let rec guarded_sets = function
    | [] -> false
    | (Iset _ | Fset _) :: _ -> true
    | If (_, _, _, b) :: rest -> guarded_sets b || guarded_sets rest
    | _ :: rest -> guarded_sets rest
  in
  let rec scan written = function
    | [] -> Some written
    | Iset (t, e) :: rest ->
      if reads_ok written e then scan (S.add (`I, t) written) rest else None
    | Fset (t, e) :: rest ->
      if reads_ok written e then scan (S.add (`F, t) written) rest else None
    | (Istore (_, _, e) | Fstore (_, _, e)) :: rest ->
      if reads_ok written e then scan written rest else None
    | If (_, e1, e2, body) :: rest ->
      if
        reads_ok written e1 && reads_ok written e2
        && (not (guarded_sets body))
        && scan written body <> None
      then scan written rest
      else None
    | For _ :: _ -> None
  in
  scan S.empty body <> None

let innermost_parallel spec =
  match innermost spec with
  | None -> false
  | Some l ->
    let stores = body_stores [] l.body in
    let store_arrays = List.map fst stores in
    let load_arrays = body_loads [] l.body in
    let injective (_, (aff : affine)) =
      match List.assoc_opt l.var aff.coeffs with
      | Some c -> c <> 0
      | None -> false
    in
    stores <> []
    && List.for_all injective stores
    && List.length (List.sort_uniq compare store_arrays)
       = List.length store_arrays
    && List.for_all (fun a -> not (List.mem a load_arrays)) store_arrays
    && temps_straightline l.body

(* -------------------- validation -------------------- *)

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let rec fold_result f acc = function
  | [] -> Ok acc
  | x :: rest ->
    let* acc = f acc x in
    fold_result f acc rest

let iter_result f l = fold_result (fun () x -> f x) () l

let validate spec =
  let arr name = List.find_opt (fun a -> a.aname = name) spec.arrays in
  let* () =
    if spec.sname = "" then Error "empty kernel name" else Ok ()
  in
  let* () =
    let n = List.length spec.arrays in
    if n < 1 || n > max_arrays then err "%d arrays (1..%d allowed)" n max_arrays
    else Ok ()
  in
  let* () =
    let names = List.map (fun a -> a.aname) spec.arrays in
    if List.length (List.sort_uniq compare names) <> List.length names then
      Error "duplicate array names"
    else Ok ()
  in
  let* () =
    iter_result
      (fun a ->
        if a.aname = "" then Error "empty array name"
        else if a.elems < 1 || a.elems * 4 > array_slot_bytes then
          err "array %s: %d elems out of range" a.aname a.elems
        else Ok ())
      spec.arrays
  in
  (* Static range of an affine over the in-scope extents. *)
  let affine_range scope (aff : affine) =
    List.fold_left
      (fun (lo, hi) (v, c) ->
        match List.assoc_opt v scope with
        | None -> (lo, hi) (* caught separately *)
        | Some extent ->
          let a = 0 and b = extent - 1 in
          if c >= 0 then (lo + (c * a), hi + (c * b))
          else (lo + (c * b), hi + (c * a)))
      (aff.const, aff.const) aff.coeffs
  in
  let check_affine scope name (aff : affine) =
    let vars = List.map fst aff.coeffs in
    let* () =
      if List.length (List.sort_uniq compare vars) <> List.length vars then
        err "%s: duplicate variable in index" name
      else Ok ()
    in
    let* () =
      iter_result
        (fun (v, c) ->
          if not (List.mem_assoc v scope) then
            err "%s: unbound variable %s" name v
          else if abs c > 4096 then err "%s: coefficient %d too large" name c
          else Ok ())
        aff.coeffs
    in
    let* () =
      if abs aff.const > 511 then err "%s: index constant %d too large" name aff.const
      else Ok ()
    in
    match arr name with
    | None -> err "unknown array %s" name
    | Some a ->
      let lo, hi = affine_range scope aff in
      if lo < 0 || hi >= a.elems then
        err "%s: index range [%d, %d] escapes 0..%d" name lo hi (a.elems - 1)
      else Ok (a.dtype)
  in
  (* Type-check an expression; returns its dtype and scratch-slot need. *)
  let rec check_exp scope e =
    match e with
    | Iconst c ->
      if abs c > 32767 then err "integer constant %d out of range" c
      else Ok (I32, 1)
    | Fconst f ->
      if f <> Machine.round32 f then Error "float constant not a single"
      else if Float.is_nan f || abs_float f > 1e9 then
        Error "float constant out of range"
      else Ok (F32, 1)
    | Ivar v ->
      if List.mem_assoc v scope then Ok (I32, 1) else err "unbound variable %s" v
    | Itmp t | Ftmp t ->
      if t < 0 || t >= max_temps then err "temporary %d out of range" t
      else Ok ((match e with Itmp _ -> I32 | _ -> F32), 1)
    | Iload (a, aff) ->
      let* d = check_affine scope a aff in
      if d <> I32 then err "iload from float array %s" a else Ok (I32, 1)
    | Fload (a, aff) ->
      let* d = check_affine scope a aff in
      if d <> F32 then err "fload from int array %s" a else Ok (F32, 1)
    | Ibin (_, l, r) ->
      let* dl, nl = check_exp scope l in
      let* dr, nr = check_exp scope r in
      if dl <> I32 || dr <> I32 then Error "integer op on float operand"
      else Ok (I32, max nl (1 + nr))
    | Fbin (_, l, r) ->
      let* dl, nl = check_exp scope l in
      let* dr, nr = check_exp scope r in
      if dl <> F32 || dr <> F32 then Error "float op on integer operand"
      else Ok (F32, max nl (1 + nr))
    | I2f e ->
      let* d, n = check_exp scope e in
      if d <> I32 then Error "i2f of float" else Ok (F32, n)
    | F2i e ->
      let* d, n = check_exp scope e in
      if d <> F32 then Error "f2i of integer" else Ok (I32, n)
  in
  let check_exp_need scope e expect =
    let* d, n = check_exp scope e in
    if d <> expect then Error "expression type mismatch"
    else if n > max_scratch then err "expression needs %d scratch slots (max %d)" n max_scratch
    else Ok ()
  in
  let rec check_body scope ~depth ~in_guard stmts =
    let fors = List.filter (function For _ -> true | _ -> false) stmts in
    let* () =
      if List.length fors > 1 then Error "more than one loop at a nesting level"
      else Ok ()
    in
    iter_result
      (fun s ->
        match s with
        | Iset (t, e) ->
          if t < 0 || t >= max_temps then err "temporary %d out of range" t
          else check_exp_need scope e I32
        | Fset (t, e) ->
          if t < 0 || t >= max_temps then err "temporary %d out of range" t
          else check_exp_need scope e F32
        | Istore (a, aff, e) ->
          let* d = check_affine scope a aff in
          if d <> I32 then err "istore to float array %s" a
          else check_exp_need scope e I32
        | Fstore (a, aff, e) ->
          let* d = check_affine scope a aff in
          if d <> F32 then err "fstore to int array %s" a
          else check_exp_need scope e F32
        | If (_, e1, e2, body) ->
          if in_guard then Error "nested guards"
          else
            let* () = check_exp_need scope e1 I32 in
            let* () = check_exp_need scope e2 I32 in
            let* () =
              if List.exists (function For _ -> true | _ -> false) body then
                Error "loop under a guard"
              else Ok ()
            in
            check_body scope ~depth ~in_guard:true body
        | For l ->
          if in_guard then Error "loop under a guard"
          else if depth >= max_depth then err "loop nest deeper than %d" max_depth
          else if l.extent < 1 || l.extent > max_extent then
            err "loop %s: extent %d out of range" l.var l.extent
          else if l.var = "" then Error "empty loop variable"
          else if List.mem_assoc l.var scope then err "shadowed variable %s" l.var
          else check_body ((l.var, l.extent) :: scope) ~depth:(depth + 1) ~in_guard:false l.body)
      stmts
  in
  let* () =
    match spec.body with
    | [ For _ ] -> Ok ()
    | _ -> Error "kernel body must be exactly one top-level loop"
  in
  let* () = check_body [] ~depth:0 ~in_guard:false spec.body in
  let rec volume acc = function
    | For l :: rest -> volume (volume (acc * l.extent) l.body) rest
    | _ :: rest -> volume acc rest
    | [] -> acc
  in
  let vol = volume 1 spec.body in
  if vol > max_volume then err "iteration space %d too large (max %d)" vol max_volume
  else Ok ()

(* -------------------- layout + execution -------------------- *)

let base_of spec name =
  let rec go i = function
    | [] -> invalid_arg ("Tile_dsl.base_of: " ^ name)
    | a :: _ when a.aname = name -> array_base + (i * array_slot_bytes)
    | _ :: rest -> go (i + 1) rest
  in
  go 0 spec.arrays

let setup spec mem =
  let rng = Prng.create (spec.seed lxor 0x7113_6e57) in
  List.iter
    (fun a ->
      if a.input then
        let base = base_of spec a.aname in
        match a.dtype with
        | I32 ->
          Main_memory.blit_words mem base
            (Array.init a.elems (fun _ -> Prng.int_in rng (-512) 511))
        | F32 ->
          Main_memory.blit_floats mem base
            (Array.init a.elems (fun _ ->
                 Machine.round32 (Prng.float_in rng (-2.0) 2.0))))
    spec.arrays

let rop_of = function
  | Add -> Isa.ADD
  | Sub -> Isa.SUB
  | Mul -> Isa.MUL
  | And -> Isa.AND
  | Or -> Isa.OR
  | Xor -> Isa.XOR

let fop_of = function
  | Fadd -> Isa.FADD
  | Fsub -> Isa.FSUB
  | Fmul -> Isa.FMUL
  | Fmin -> Isa.FMIN
  | Fmax -> Isa.FMAX

let bop_of = function Lt -> Isa.BLT | Ge -> Isa.BGE | Eq -> Isa.BEQ | Ne -> Isa.BNE

let eval spec mem =
  let itmp = Array.make max_temps 0 in
  let ftmp = Array.make max_temps 0.0 in
  let addr_of env spec_name (aff : affine) =
    let e =
      List.fold_left
        (fun acc (v, c) -> acc + (c * List.assoc v env))
        aff.const aff.coeffs
    in
    base_of spec spec_name + (4 * e)
  in
  let rec ieval env = function
    | Iconst c -> Machine.to_s32 c
    | Ivar v -> List.assoc v env
    | Itmp t -> itmp.(t)
    | Iload (a, aff) -> Main_memory.load_word mem (addr_of env a aff)
    | Ibin (op, l, r) -> Interp.Alu.rtype (rop_of op) (ieval env l) (ieval env r)
    | F2i e -> Interp.Alu.fcvt_w_s (feval env e)
    | Fconst _ | Ftmp _ | Fload _ | Fbin _ | I2f _ -> assert false
  and feval env = function
    | Fconst f -> f
    | Ftmp t -> ftmp.(t)
    | Fload (a, aff) -> Main_memory.load_float32 mem (addr_of env a aff)
    | Fbin (op, l, r) -> Interp.Alu.ftype (fop_of op) (feval env l) (feval env r)
    | I2f e -> Interp.Alu.fcvt_s_w (ieval env e)
    | Iconst _ | Ivar _ | Itmp _ | Iload _ | Ibin _ | F2i _ -> assert false
  in
  let rec run env stmts =
    List.iter
      (fun s ->
        match s with
        | Iset (t, e) -> itmp.(t) <- ieval env e
        | Fset (t, e) -> ftmp.(t) <- feval env e
        | Istore (a, aff, e) ->
          Main_memory.store_word mem (addr_of env a aff) (ieval env e)
        | Fstore (a, aff, e) ->
          Main_memory.store_float32 mem (addr_of env a aff) (feval env e)
        | If (c, e1, e2, body) ->
          if Interp.Alu.branch_taken (bop_of c) (ieval env e1) (ieval env e2)
          then run env body
        | For l ->
          for i = 0 to l.extent - 1 do
            run ((l.var, i) :: env) l.body
          done)
      stmts
  in
  run [] spec.body

let check spec mem =
  let ref_mem = Main_memory.create ~size:(Main_memory.size mem) () in
  setup spec ref_mem;
  eval spec ref_mem;
  let rec arrays_ok = function
    | [] -> Ok ()
    | a :: rest ->
      let base = base_of spec a.aname in
      let got = Main_memory.read_words mem base a.elems in
      let want = Main_memory.read_words ref_mem base a.elems in
      let bad = ref (-1) in
      Array.iteri (fun i w -> if !bad < 0 && w <> want.(i) then bad := i) got;
      if !bad >= 0 then
        err "%s[%d]: got 0x%08x want 0x%08x" a.aname !bad
          (got.(!bad) land 0xFFFFFFFF)
          (want.(!bad) land 0xFFFFFFFF)
      else arrays_ok rest
  in
  let out = arrays_ok spec.arrays in
  Main_memory.release ref_mem;
  out

(* -------------------- printing -------------------- *)

let ibin_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | And -> "&" | Or -> "|" | Xor -> "^"

let fbin_name = function
  | Fadd -> "+." | Fsub -> "-." | Fmul -> "*." | Fmin -> "min" | Fmax -> "max"

let cmp_name = function Lt -> "<" | Ge -> ">=" | Eq -> "==" | Ne -> "!="

let pp_affine ppf (aff : affine) =
  let parts =
    List.map (fun (v, c) -> if c = 1 then v else Printf.sprintf "%d%s" c v) aff.coeffs
    @ (if aff.const <> 0 || aff.coeffs = [] then [ string_of_int aff.const ] else [])
  in
  Format.fprintf ppf "%s" (String.concat "+" parts)

let rec pp_exp ppf = function
  | Iconst c -> Format.fprintf ppf "%d" c
  | Fconst f -> Format.fprintf ppf "%h" f
  | Ivar v -> Format.fprintf ppf "%s" v
  | Itmp t -> Format.fprintf ppf "t%d" t
  | Ftmp t -> Format.fprintf ppf "f%d" t
  | Iload (a, aff) | Fload (a, aff) -> Format.fprintf ppf "%s[%a]" a pp_affine aff
  | Ibin (op, l, r) ->
    Format.fprintf ppf "(%a %s %a)" pp_exp l (ibin_name op) pp_exp r
  | Fbin (op, l, r) ->
    Format.fprintf ppf "(%a %s %a)" pp_exp l (fbin_name op) pp_exp r
  | I2f e -> Format.fprintf ppf "i2f(%a)" pp_exp e
  | F2i e -> Format.fprintf ppf "f2i(%a)" pp_exp e

let rec pp_stmt indent ppf s =
  let pad = String.make indent ' ' in
  match s with
  | Iset (t, e) -> Format.fprintf ppf "%st%d = %a@," pad t pp_exp e
  | Fset (t, e) -> Format.fprintf ppf "%sf%d = %a@," pad t pp_exp e
  | Istore (a, aff, e) | Fstore (a, aff, e) ->
    Format.fprintf ppf "%s%s[%a] = %a@," pad a pp_affine aff pp_exp e
  | If (c, e1, e2, body) ->
    Format.fprintf ppf "%sif %a %s %a {@," pad pp_exp e1 (cmp_name c) pp_exp e2;
    List.iter (pp_stmt (indent + 2) ppf) body;
    Format.fprintf ppf "%s}@," pad
  | For l ->
    Format.fprintf ppf "%sfor %s < %d%s {@," pad l.var l.extent
      (match l.tile_tag with Some v -> " (tile of " ^ v ^ ")" | None -> "");
    List.iter (pp_stmt (indent + 2) ppf) l.body;
    Format.fprintf ppf "%s}@," pad

let pp ppf spec =
  Format.fprintf ppf "@[<v>kernel %s (seed %d)@," spec.sname spec.seed;
  List.iter
    (fun a ->
      Format.fprintf ppf "  %s %s[%d]%s@,"
        (match a.dtype with I32 -> "i32" | F32 -> "f32")
        a.aname a.elems
        (if a.input then " (input)" else ""))
    spec.arrays;
  List.iter (pp_stmt 2 ppf) spec.body;
  Format.fprintf ppf "@]"

let to_string spec = Format.asprintf "%a" pp spec

(* -------------------- JSON -------------------- *)

let affine_to_json (aff : affine) =
  Json.Assoc
    [
      ("c", Json.List (List.map (fun (v, c) -> Json.List [ Json.String v; Json.Int c ]) aff.coeffs));
      ("k", Json.Int aff.const);
    ]

let float_bits f = Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF
let bits_float b = Int32.float_of_bits (Int32.of_int b)

let rec exp_to_json = function
  | Iconst c -> Json.List [ Json.String "ic"; Json.Int c ]
  | Fconst f -> Json.List [ Json.String "fc"; Json.Int (float_bits f) ]
  | Ivar v -> Json.List [ Json.String "iv"; Json.String v ]
  | Itmp t -> Json.List [ Json.String "it"; Json.Int t ]
  | Ftmp t -> Json.List [ Json.String "ft"; Json.Int t ]
  | Iload (a, aff) -> Json.List [ Json.String "ild"; Json.String a; affine_to_json aff ]
  | Fload (a, aff) -> Json.List [ Json.String "fld"; Json.String a; affine_to_json aff ]
  | Ibin (op, l, r) ->
    Json.List
      [
        Json.String "ib";
        Json.String (match op with Add -> "add" | Sub -> "sub" | Mul -> "mul"
                     | And -> "and" | Or -> "or" | Xor -> "xor");
        exp_to_json l; exp_to_json r;
      ]
  | Fbin (op, l, r) ->
    Json.List
      [
        Json.String "fb";
        Json.String (match op with Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul"
                     | Fmin -> "fmin" | Fmax -> "fmax");
        exp_to_json l; exp_to_json r;
      ]
  | I2f e -> Json.List [ Json.String "i2f"; exp_to_json e ]
  | F2i e -> Json.List [ Json.String "f2i"; exp_to_json e ]

let rec stmt_to_json = function
  | Iset (t, e) -> Json.List [ Json.String "iset"; Json.Int t; exp_to_json e ]
  | Fset (t, e) -> Json.List [ Json.String "fset"; Json.Int t; exp_to_json e ]
  | Istore (a, aff, e) ->
    Json.List [ Json.String "ist"; Json.String a; affine_to_json aff; exp_to_json e ]
  | Fstore (a, aff, e) ->
    Json.List [ Json.String "fst"; Json.String a; affine_to_json aff; exp_to_json e ]
  | If (c, e1, e2, body) ->
    Json.List
      [
        Json.String "if";
        Json.String (match c with Lt -> "lt" | Ge -> "ge" | Eq -> "eq" | Ne -> "ne");
        exp_to_json e1; exp_to_json e2;
        Json.List (List.map stmt_to_json body);
      ]
  | For l ->
    Json.List
      [
        Json.String "for";
        Json.String l.var;
        Json.Int l.extent;
        (match l.tile_tag with Some v -> Json.String v | None -> Json.Null);
        Json.List (List.map stmt_to_json l.body);
      ]

let to_json spec =
  Json.Assoc
    [
      ("name", Json.String spec.sname);
      ("seed", Json.Int spec.seed);
      ( "arrays",
        Json.List
          (List.map
             (fun a ->
               Json.Assoc
                 [
                   ("name", Json.String a.aname);
                   ("dtype", Json.String (match a.dtype with I32 -> "i32" | F32 -> "f32"));
                   ("input", Json.Bool a.input);
                   ("elems", Json.Int a.elems);
                 ])
             spec.arrays) );
      ("body", Json.List (List.map stmt_to_json spec.body));
    ]

exception Bad of string

let of_json j =
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let str = function Json.String s -> s | _ -> fail "expected string" in
  let int = function Json.Int n -> n | j -> (match Json.to_int j with Some n -> n | None -> fail "expected int") in
  let affine = function
    | Json.Assoc _ as a ->
      let coeffs =
        match Json.member "c" a with
        | Some (Json.List l) ->
          List.map
            (function
              | Json.List [ v; c ] -> (str v, int c)
              | _ -> fail "bad coeff")
            l
        | _ -> fail "bad affine"
      in
      let const = match Json.member "k" a with Some k -> int k | None -> fail "bad affine" in
      { coeffs; const }
    | _ -> fail "bad affine"
  in
  let rec exp = function
    | Json.List (Json.String tag :: rest) -> (
      match (tag, rest) with
      | "ic", [ c ] -> Iconst (int c)
      | "fc", [ b ] -> Fconst (bits_float (int b))
      | "iv", [ v ] -> Ivar (str v)
      | "it", [ t ] -> Itmp (int t)
      | "ft", [ t ] -> Ftmp (int t)
      | "ild", [ a; aff ] -> Iload (str a, affine aff)
      | "fld", [ a; aff ] -> Fload (str a, affine aff)
      | "ib", [ op; l; r ] ->
        let op =
          match str op with
          | "add" -> Add | "sub" -> Sub | "mul" -> Mul
          | "and" -> And | "or" -> Or | "xor" -> Xor
          | s -> fail "bad ibin %s" s
        in
        Ibin (op, exp l, exp r)
      | "fb", [ op; l; r ] ->
        let op =
          match str op with
          | "fadd" -> Fadd | "fsub" -> Fsub | "fmul" -> Fmul
          | "fmin" -> Fmin | "fmax" -> Fmax
          | s -> fail "bad fbin %s" s
        in
        Fbin (op, exp l, exp r)
      | "i2f", [ e ] -> I2f (exp e)
      | "f2i", [ e ] -> F2i (exp e)
      | t, _ -> fail "bad expression tag %s" t)
    | _ -> fail "bad expression"
  in
  let rec stmt = function
    | Json.List (Json.String tag :: rest) -> (
      match (tag, rest) with
      | "iset", [ t; e ] -> Iset (int t, exp e)
      | "fset", [ t; e ] -> Fset (int t, exp e)
      | "ist", [ a; aff; e ] -> Istore (str a, affine aff, exp e)
      | "fst", [ a; aff; e ] -> Fstore (str a, affine aff, exp e)
      | "if", [ c; e1; e2; Json.List body ] ->
        let c =
          match str c with
          | "lt" -> Lt | "ge" -> Ge | "eq" -> Eq | "ne" -> Ne
          | s -> fail "bad cmp %s" s
        in
        If (c, exp e1, exp e2, List.map stmt body)
      | "for", [ v; e; tag; Json.List body ] ->
        For
          {
            var = str v;
            extent = int e;
            tile_tag = (match tag with Json.Null -> None | t -> Some (str t));
            body = List.map stmt body;
          }
      | t, _ -> fail "bad statement tag %s" t)
    | _ -> fail "bad statement"
  in
  try
    let sname = match Json.member "name" j with Some s -> str s | None -> fail "missing name" in
    let seed = match Json.member "seed" j with Some s -> int s | None -> fail "missing seed" in
    let arrays =
      match Json.member "arrays" j with
      | Some (Json.List l) ->
        List.map
          (fun a ->
            {
              aname = (match Json.member "name" a with Some s -> str s | None -> fail "array name");
              dtype =
                (match Json.member "dtype" a with
                | Some (Json.String "i32") -> I32
                | Some (Json.String "f32") -> F32
                | _ -> fail "array dtype");
              input = (match Json.member "input" a with Some (Json.Bool b) -> b | _ -> fail "array input");
              elems = (match Json.member "elems" a with Some e -> int e | None -> fail "array elems");
            })
          l
      | _ -> fail "missing arrays"
    in
    let body =
      match Json.member "body" j with
      | Some (Json.List l) -> List.map stmt l
      | _ -> fail "missing body"
    in
    Ok { sname; seed; arrays; body }
  with Bad m -> Error m
