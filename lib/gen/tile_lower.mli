(** Lowering {!Tile_dsl} specs onto the RV32 assembler DSL.

    The emitted program follows the repo's kernel conventions so a lowered
    spec is a drop-in {!Kernel.t} body: array bases arrive in [a0]..[a3],
    the outermost loop runs over the slice [\[a4, a5)] (so the multicore
    baseline can split it), and the hot loop ends in the canonical
    [addi ind, ind, 1; blt ind, bound, label] shape the loop detector keys
    on. When the innermost loop passes {!Tile_dsl.innermost_parallel} it is
    annotated with the OpenMP pragma, which is what MESA's tiling uses.

    Register map (fixed — validation bounds every resource):
    - [a0]..[a3]: array base addresses, [a4]/[a5]: slice lo/hi
    - [s2]..[s6]: inductions by depth; [s7]..[s10]: inner loop bounds
    - [t1]..[t3] / [ft0]..[ft2]: the DSL temporaries, zero-initialised
    - [t4]..[t6],[a6],[a7] / [ft3]..[ft7]: expression scratch stacks
    - [t0]: affine address helper *)

type built = {
  spec : Tile_dsl.spec;
  program : Program.t;
  n : int;           (** outermost extent = iteration count / slice range *)
  parallel : bool;   (** innermost loop carries the pragma *)
  fp : bool;
  setup : Main_memory.t -> unit;
  args : lo:int -> hi:int -> (Reg.t * int) list;
  fargs : (Reg.t * float) list;
  check : Main_memory.t -> (unit, string) result;
      (** against the DSL evaluator — an oracle independent of both the
          interpreter and the engine, so it catches lowering bugs too *)
}

(** Deliberately injectable lowering bugs, for mutation-testing the fuzzer:
    [Store_skew] displaces every store whose index uses two or more loop
    variables by one element. *)
type defect = Store_skew

val defect_to_string : defect -> string
val defect_of_string : string -> (defect, string) result

val lower : ?defect:defect -> Tile_dsl.spec -> (built, string) result
(** Validate, then emit. Lowering is deterministic: equal specs produce
    byte-identical programs. *)

val lower_exn : ?defect:defect -> Tile_dsl.spec -> built
