(* See tile_lower.mli for the register map. Tile_dsl.validate has already
   bounded every resource, so emission never allocates: each DSL object has
   a fixed register. *)

open Tile_dsl

type built = {
  spec : Tile_dsl.spec;
  program : Program.t;
  n : int;
  parallel : bool;
  fp : bool;
  setup : Main_memory.t -> unit;
  args : lo:int -> hi:int -> (Reg.t * int) list;
  fargs : (Reg.t * float) list;
  check : Main_memory.t -> (unit, string) result;
}

type defect = Store_skew

let defect_to_string Store_skew = "store-skew"

let defect_of_string = function
  | "store-skew" -> Ok Store_skew
  | s -> Error (Printf.sprintf "unknown defect %S (store-skew)" s)

let int_scratch = [| Reg.t4; Reg.t5; Reg.t6; Reg.a6; Reg.a7 |]
let fp_scratch = [| Reg.ft3; Reg.ft4; Reg.ft5; Reg.ft6; Reg.ft7 |]
let itmp_reg = [| Reg.t1; Reg.t2; Reg.t3 |]
let ftmp_reg = [| Reg.ft0; Reg.ft1; Reg.ft2 |]
let ind_reg = [| Reg.s2; Reg.s3; Reg.s4; Reg.s5; Reg.s6 |]
let bound_reg = [| Reg.s7; Reg.s8; Reg.s9; Reg.s10 |]
let base_reg = [| Reg.a0; Reg.a1; Reg.a2; Reg.a3 |]

let log2 n =
  let rec go k n = if n = 1 then k else go (k + 1) (n / 2) in
  go 0 n

let float_bits f = Int32.to_int (Int32.bits_of_float f)

let emit spec ~defect ~parallel =
  let b = Asm.create () in
  let array_index name =
    let rec go i = function
      | a :: _ when a.aname = name -> i
      | _ :: rest -> go (i + 1) rest
      | [] -> assert false
    in
    go 0 spec.arrays
  in
  let guard_id = ref 0 in
  (* Address of [arr[aff]] into [dst], clobbering t0. *)
  let emit_addr dst ~scope arr (aff : affine) ~skew =
    Asm.mv b dst base_reg.(array_index arr);
    let const = aff.const + skew in
    if const <> 0 then Asm.addi b dst dst (4 * const);
    List.iter
      (fun (v, c) ->
        if c <> 0 then begin
          let ind = List.assoc v scope in
          let bc = 4 * c in
          if bc > 0 && bc land (bc - 1) = 0 then Asm.slli b Reg.t0 ind (log2 bc)
          else begin
            Asm.li b Reg.t0 bc;
            Asm.mul b Reg.t0 Reg.t0 ind
          end;
          Asm.add b dst dst Reg.t0
        end)
      aff.coeffs
  in
  (* Evaluate into scratch slot [sp] of the file matching the type. *)
  let rec eval_i ~scope sp e =
    let dst = int_scratch.(sp) in
    match e with
    | Iconst c -> Asm.li b dst c
    | Ivar v -> Asm.mv b dst (List.assoc v scope)
    | Itmp t -> Asm.mv b dst itmp_reg.(t)
    | Iload (a, aff) ->
      emit_addr dst ~scope a aff ~skew:0;
      Asm.lw b dst 0 dst
    | Ibin (op, l, r) ->
      eval_i ~scope sp l;
      eval_i ~scope (sp + 1) r;
      let rop =
        match op with
        | Add -> Asm.add | Sub -> Asm.sub | Mul -> Asm.mul
        | And -> Asm.and_ | Or -> Asm.or_ | Xor -> Asm.xor
      in
      rop b dst dst int_scratch.(sp + 1)
    | F2i e ->
      eval_f ~scope sp e;
      Asm.fcvt_w_s b dst fp_scratch.(sp)
    | Fconst _ | Ftmp _ | Fload _ | Fbin _ | I2f _ -> assert false
  and eval_f ~scope sp e =
    let dst = fp_scratch.(sp) in
    match e with
    | Fconst f ->
      Asm.li b int_scratch.(sp) (float_bits f);
      Asm.fmv_w_x b dst int_scratch.(sp)
    | Ftmp t -> Asm.fmv b dst ftmp_reg.(t)
    | Fload (a, aff) ->
      emit_addr int_scratch.(sp) ~scope a aff ~skew:0;
      Asm.flw b dst 0 int_scratch.(sp)
    | Fbin (op, l, r) ->
      eval_f ~scope sp l;
      eval_f ~scope (sp + 1) r;
      let fop =
        match op with
        | Fadd -> Asm.fadd | Fsub -> Asm.fsub | Fmul -> Asm.fmul
        | Fmin -> Asm.fmin | Fmax -> Asm.fmax
      in
      fop b dst dst fp_scratch.(sp + 1)
    | I2f e ->
      eval_i ~scope sp e;
      Asm.fcvt_s_w b dst int_scratch.(sp)
    | Iconst _ | Ivar _ | Itmp _ | Iload _ | Ibin _ | F2i _ -> assert false
  in
  let store_skew (aff : affine) =
    match defect with
    | Some Store_skew
      when List.length (List.filter (fun (_, c) -> c <> 0) aff.coeffs) >= 2 ->
      1
    | _ -> 0
  in
  let rec emit_stmt ~depth ~scope s =
    match s with
    | Iset (t, e) ->
      eval_i ~scope 0 e;
      Asm.mv b itmp_reg.(t) int_scratch.(0)
    | Fset (t, e) ->
      eval_f ~scope 0 e;
      Asm.fmv b ftmp_reg.(t) fp_scratch.(0)
    | Istore (a, aff, e) ->
      eval_i ~scope 0 e;
      emit_addr int_scratch.(1) ~scope a aff ~skew:(store_skew aff);
      Asm.sw b int_scratch.(0) 0 int_scratch.(1)
    | Fstore (a, aff, e) ->
      eval_f ~scope 0 e;
      emit_addr int_scratch.(0) ~scope a aff ~skew:(store_skew aff);
      Asm.fsw b fp_scratch.(0) 0 int_scratch.(0)
    | If (c, e1, e2, body) ->
      eval_i ~scope 0 e1;
      eval_i ~scope 1 e2;
      incr guard_id;
      let skip = Printf.sprintf "G%d" !guard_id in
      let br =
        (* branch on the negation: fall through into the guarded body *)
        match c with
        | Lt -> Asm.bge | Ge -> Asm.blt | Eq -> Asm.bne | Ne -> Asm.beq
      in
      br b int_scratch.(0) int_scratch.(1) skip;
      List.iter (emit_stmt ~depth ~scope) body;
      Asm.label b skip
    | For l ->
      let ind = ind_reg.(depth) in
      let bound = if depth = 0 then Reg.a5 else bound_reg.(depth - 1) in
      if depth = 0 then Asm.mv b ind Reg.a4
      else begin
        Asm.li b ind 0;
        Asm.li b bound l.extent
      end;
      let innermost = not (List.exists (function For _ -> true | _ -> false) l.body) in
      if innermost && parallel then Asm.pragma b Program.Omp_parallel;
      let lbl = "L_" ^ l.var in
      Asm.label b lbl;
      List.iter (emit_stmt ~depth:(depth + 1) ~scope:((l.var, ind) :: scope)) l.body;
      Asm.addi b ind ind 1;
      Asm.blt b ind bound lbl
  in
  (* Preamble: zero the DSL temporaries so every register the body reads is
     defined on entry. *)
  Array.iter (fun r -> Asm.li b r 0) itmp_reg;
  if fp_spec spec then
    Array.iter (fun r -> Asm.fmv_w_x b r Reg.zero) ftmp_reg;
  List.iter (emit_stmt ~depth:0 ~scope:[]) spec.body;
  Asm.ecall b;
  Asm.assemble b

let lower ?defect spec =
  match validate spec with
  | Error e -> Error e
  | Ok () ->
    let parallel = innermost_parallel spec in
    let program = emit spec ~defect ~parallel in
    let args ~lo ~hi =
      List.mapi (fun i a -> (base_reg.(i), base_of spec a.aname)) spec.arrays
      @ [ (Reg.a4, lo); (Reg.a5, hi) ]
    in
    Ok
      {
        spec;
        program;
        n = outer_extent spec;
        parallel;
        fp = fp_spec spec;
        setup = setup spec;
        args;
        fargs = [];
        check = check spec;
      }

let lower_exn ?defect spec =
  match lower ?defect spec with
  | Ok b -> b
  | Error e -> failwith ("Tile_lower: " ^ e)
