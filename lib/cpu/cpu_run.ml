type result = { halt : Interp.halt; summary : Ooo_model.summary }

let run ?max_steps ?(config = Ooo_model.default_config) ?hierarchy prog machine =
  let owned, hierarchy =
    match hierarchy with
    | Some h -> (None, h)
    | None ->
      let h = Hierarchy.create Hierarchy.default_config in
      (Some h, h)
  in
  let model = Ooo_model.create config hierarchy in
  let halt, _retired =
    Interp.run ?max_steps ~on_event:(Ooo_model.feed model) prog machine
  in
  let r = { halt; summary = Ooo_model.summary model } in
  (* The summary is plain counters: a hierarchy we created is fully
     consumed and can be recycled. *)
  Option.iter Hierarchy.release owned;
  Sim_meter.add r.summary.Ooo_model.cycles;
  r

let cycles r = r.summary.Ooo_model.cycles
let ipc r = Ooo_model.ipc r.summary
