type t = {
  xregs : int array;
  fregs : float array;
  mutable pc : int;
  mem : Main_memory.t;
}

let create ?(pc = 0x1000) mem =
  { xregs = Array.make Reg.count 0; fregs = Array.make Reg.count 0.0; pc; mem }

let to_s32 v = (v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)
let to_u32 v = v land 0xFFFFFFFF
let round32 f = Int32.float_of_bits (Int32.bits_of_float f)

let get_x t r = if r = 0 then 0 else t.xregs.(r)
let set_x t r v = if r <> 0 then t.xregs.(r) <- to_s32 v
let get_f t r = t.fregs.(r)
let set_f t r v = t.fregs.(r) <- round32 v

let set_args t args = List.iter (fun (r, v) -> set_x t r v) args
let set_fargs t args = List.iter (fun (r, v) -> set_f t r v) args

let copy t ?mem () =
  {
    xregs = Array.copy t.xregs;
    fregs = Array.copy t.fregs;
    pc = t.pc;
    mem = Option.value mem ~default:t.mem;
  }

let restore t ~from =
  Array.blit from.xregs 0 t.xregs 0 Reg.count;
  Array.blit from.fregs 0 t.fregs 0 Reg.count;
  t.pc <- from.pc

let arch_equal a b =
  (* FP registers compare by bit pattern: NaN payloads are architectural
     state too, and [nan = nan] is false under OCaml's [=]. *)
  a.pc = b.pc
  && Array.for_all2 ( = ) a.xregs b.xregs
  && Array.for_all2
       (fun x y -> Int32.bits_of_float x = Int32.bits_of_float y)
       a.fregs b.fregs
