type config = {
  width : int;
  rob_size : int;
  mispredict_penalty : int;
  alu_units : int;
  mul_units : int;
  div_units : int;
  fp_units : int;
  mem_ports : int;
  latencies : Latency.table;
}

let default_config =
  {
    width = 4;
    rob_size = 192;
    mispredict_penalty = 12;
    alu_units = 4;
    mul_units = 2;
    div_units = 1;
    fp_units = 2;
    mem_ports = 2;
    latencies = Latency.cpu;
  }

type summary = {
  cycles : int;
  instructions : int;
  mispredicts : int;
  loads : int;
  stores : int;
  int_ops : int;
  fp_ops : int;
  branches : int;
  load_latency_sum : int;
  rob_stalls : int;
  fetch_refills : int;
}

type t = {
  cfg : config;
  hier : Hierarchy.t;
  predictor : Predictor.t;
  int_ready : int array;  (* completion cycle of last writer per int reg *)
  fp_ready : int array;
  alu_free : int array;   (* next-free cycle per unit *)
  mul_free : int array;
  div_free : int array;
  fp_free : int array;
  port_free : int array;
  commit_ring : int array; (* commit cycles of the last rob_size instrs *)
  mutable seq : int;
  mutable fetch_cycle : int;
  mutable fetched_this_cycle : int;
  mutable last_commit : int;
  mutable commit_cycle : int;
  mutable committed_this_cycle : int;
  mutable loads : int;
  mutable stores : int;
  mutable int_ops : int;
  mutable fp_ops : int;
  mutable branches : int;
  mutable load_latency_sum : int;
  mutable rob_stalls : int;
  mutable fetch_refills : int;
}

let create cfg hier =
  {
    cfg;
    hier;
    predictor = Predictor.create ();
    int_ready = Array.make Reg.count 0;
    fp_ready = Array.make Reg.count 0;
    alu_free = Array.make cfg.alu_units 0;
    mul_free = Array.make cfg.mul_units 0;
    div_free = Array.make cfg.div_units 0;
    fp_free = Array.make cfg.fp_units 0;
    port_free = Array.make cfg.mem_ports 0;
    commit_ring = Array.make cfg.rob_size 0;
    seq = 0;
    fetch_cycle = 0;
    fetched_this_cycle = 0;
    last_commit = 0;
    commit_cycle = 0;
    committed_this_cycle = 0;
    loads = 0;
    stores = 0;
    int_ops = 0;
    fp_ops = 0;
    branches = 0;
    load_latency_sum = 0;
    rob_stalls = 0;
    fetch_refills = 0;
  }

(* Claim the earliest-free unit from a pool; mark it busy until
   [issue + occupancy] and return the earliest cycle the op can issue given
   unit availability. *)
let claim_unit pool ~not_before ~occupancy =
  let best = ref 0 in
  for i = 1 to Array.length pool - 1 do
    if pool.(i) < pool.(!best) then best := i
  done;
  let issue = max not_before pool.(!best) in
  pool.(!best) <- issue + occupancy;
  issue

let fetch_time t =
  if t.fetched_this_cycle >= t.cfg.width then begin
    t.fetch_cycle <- t.fetch_cycle + 1;
    t.fetched_this_cycle <- 0
  end;
  t.fetched_this_cycle <- t.fetched_this_cycle + 1;
  t.fetch_cycle

let commit_time t ~complete =
  let target = max complete t.last_commit in
  if target > t.commit_cycle then begin
    t.commit_cycle <- target;
    t.committed_this_cycle <- 0
  end;
  if t.committed_this_cycle >= t.cfg.width then begin
    t.commit_cycle <- t.commit_cycle + 1;
    t.committed_this_cycle <- 0
  end;
  t.committed_this_cycle <- t.committed_this_cycle + 1;
  t.last_commit <- t.commit_cycle;
  t.commit_cycle

let feed t (ev : Interp.event) =
  let cfg = t.cfg in
  let cls = Isa.op_class ev.instr in
  (* Operand readiness. *)
  let ready =
    List.fold_left
      (fun acc (r, file) ->
        match file with
        | `Int -> max acc t.int_ready.(r)
        | `Fp -> max acc t.fp_ready.(r))
      0 (Isa.reads ev.instr)
  in
  (* Structural constraints: fetch slot and ROB space. *)
  let fetched = fetch_time t in
  let rob_slot = t.commit_ring.(t.seq mod cfg.rob_size) in
  if rob_slot > ready && rob_slot > fetched then t.rob_stalls <- t.rob_stalls + 1;
  let not_before = max (max ready fetched) rob_slot in
  (* Functional unit and latency. *)
  let issue, latency =
    match cls with
    | Isa.C_alu | Isa.C_branch | Isa.C_jump | Isa.C_system ->
      (claim_unit t.alu_free ~not_before ~occupancy:1, cfg.latencies cls)
    | Isa.C_mul -> (claim_unit t.mul_free ~not_before ~occupancy:1, cfg.latencies cls)
    | Isa.C_div ->
      let occ = Latency.occupancy_cpu Isa.C_div in
      (claim_unit t.div_free ~not_before ~occupancy:occ, cfg.latencies cls)
    | Isa.C_fadd | Isa.C_fmul ->
      (claim_unit t.fp_free ~not_before ~occupancy:1, cfg.latencies cls)
    | Isa.C_fdiv ->
      let occ = Latency.occupancy_cpu Isa.C_fdiv in
      (claim_unit t.fp_free ~not_before ~occupancy:occ, cfg.latencies cls)
    | Isa.C_load ->
      let addr = Option.value ev.mem_addr ~default:0 in
      let lat = Hierarchy.load_latency t.hier addr in
      t.load_latency_sum <- t.load_latency_sum + lat;
      (claim_unit t.port_free ~not_before ~occupancy:1, lat)
    | Isa.C_store ->
      let addr = Option.value ev.mem_addr ~default:0 in
      (* Stores retire into the store buffer; cache state is updated but the
         latency is off the critical path. *)
      ignore (Hierarchy.store_latency t.hier addr);
      (claim_unit t.port_free ~not_before ~occupancy:1, 1)
  in
  let complete = issue + latency in
  (* Destination readiness. *)
  (match Isa.writes_int ev.instr with
  | Some rd when rd <> 0 -> t.int_ready.(rd) <- complete
  | Some _ | None -> ());
  (match Isa.writes_fp ev.instr with
  | Some fd -> t.fp_ready.(fd) <- complete
  | None -> ());
  (* Branch resolution and misprediction. *)
  (match (cls, ev.taken) with
  | Isa.C_branch, Some actual ->
    t.branches <- t.branches + 1;
    let correct = Predictor.predict_and_update t.predictor ev.addr actual in
    (* A zero penalty models predicated execution (no control speculation at
       all); otherwise a wrong prediction refetches after resolution. *)
    if (not correct) && cfg.mispredict_penalty > 0 then begin
      let resume = complete + cfg.mispredict_penalty in
      if resume > t.fetch_cycle then begin
        t.fetch_refills <- t.fetch_refills + 1;
        t.fetch_cycle <- resume;
        t.fetched_this_cycle <- 0
      end
    end
  | _ -> ());
  (* Class accounting. *)
  (match cls with
  | Isa.C_load -> t.loads <- t.loads + 1
  | Isa.C_store -> t.stores <- t.stores + 1
  | Isa.C_fadd | Isa.C_fmul | Isa.C_fdiv -> t.fp_ops <- t.fp_ops + 1
  | Isa.C_alu | Isa.C_mul | Isa.C_div -> t.int_ops <- t.int_ops + 1
  | Isa.C_branch | Isa.C_jump | Isa.C_system -> ());
  (* In-order commit bounds ROB reuse. *)
  let commit = commit_time t ~complete in
  t.commit_ring.(t.seq mod cfg.rob_size) <- commit;
  t.seq <- t.seq + 1

let summary t =
  {
    cycles = t.last_commit;
    instructions = t.seq;
    mispredicts = Predictor.mispredicts t.predictor;
    loads = t.loads;
    stores = t.stores;
    int_ops = t.int_ops;
    fp_ops = t.fp_ops;
    branches = t.branches;
    load_latency_sum = t.load_latency_sum;
    rob_stalls = t.rob_stalls;
    fetch_refills = t.fetch_refills;
  }

let ipc s = if s.cycles = 0 then 0.0 else float_of_int s.instructions /. float_of_int s.cycles

(* Wire the live model into a stats group: probes read the mutable fields
   at snapshot time, so the timing hot path is untouched. *)
let register_stats t grp =
  Stats.int_probe grp "cycles" (fun () -> t.last_commit);
  Stats.int_probe grp "instructions" (fun () -> t.seq);
  Stats.int_probe grp "mispredicts" (fun () -> Predictor.mispredicts t.predictor);
  Stats.int_probe grp "branches" (fun () -> t.branches);
  Stats.int_probe grp "loads" (fun () -> t.loads);
  Stats.int_probe grp "stores" (fun () -> t.stores);
  Stats.int_probe grp "int_ops" (fun () -> t.int_ops);
  Stats.int_probe grp "fp_ops" (fun () -> t.fp_ops);
  Stats.int_probe grp "load_latency_sum" (fun () -> t.load_latency_sum);
  Stats.int_probe grp "rob_stalls" (fun () -> t.rob_stalls);
  Stats.int_probe grp "fetch_refills" (fun () -> t.fetch_refills);
  Stats.derived grp "ipc" (fun () -> ipc (summary t));
  Stats.derived grp "amat" (fun () ->
      if t.loads = 0 then 0.0
      else float_of_int t.load_latency_sum /. float_of_int t.loads)

let register_summary_stats s grp =
  Stats.int_probe grp "cycles" (fun () -> s.cycles);
  Stats.int_probe grp "instructions" (fun () -> s.instructions);
  Stats.int_probe grp "mispredicts" (fun () -> s.mispredicts);
  Stats.int_probe grp "branches" (fun () -> s.branches);
  Stats.int_probe grp "loads" (fun () -> s.loads);
  Stats.int_probe grp "stores" (fun () -> s.stores);
  Stats.int_probe grp "int_ops" (fun () -> s.int_ops);
  Stats.int_probe grp "fp_ops" (fun () -> s.fp_ops);
  Stats.int_probe grp "load_latency_sum" (fun () -> s.load_latency_sum);
  Stats.int_probe grp "rob_stalls" (fun () -> s.rob_stalls);
  Stats.int_probe grp "fetch_refills" (fun () -> s.fetch_refills);
  Stats.derived grp "ipc" (fun () -> ipc s)
