(** Architectural state of one RV32IMF hart: 32 integer registers, 32
    single-precision FP registers, the PC and a handle on main memory.

    Integer registers hold native ints that are always sign-extended 32-bit
    values; FP registers hold floats that are always exactly representable in
    single precision. These invariants are maintained by every writer
    (interpreter and accelerator engine). *)

type t = {
  xregs : int array;
  fregs : float array;
  mutable pc : int;
  mem : Main_memory.t;
}

val create : ?pc:int -> Main_memory.t -> t
(** Fresh state with zeroed registers. *)

val get_x : t -> Reg.t -> int
(** Read an integer register; [x0] always reads 0. *)

val set_x : t -> Reg.t -> int -> unit
(** Write an integer register (sign-extending to 32 bits); writes to [x0]
    are discarded. *)

val get_f : t -> Reg.t -> float
val set_f : t -> Reg.t -> float -> unit
(** Write an FP register, rounding to single precision. *)

val set_args : t -> (Reg.t * int) list -> unit
(** Convenience: write several integer registers (kernel arguments). *)

val set_fargs : t -> (Reg.t * float) list -> unit

val copy : t -> ?mem:Main_memory.t -> unit -> t
(** Copy the register state; memory is shared unless a replacement is
    given. *)

val restore : t -> from:t -> unit
(** Overwrite [t]'s registers and PC from a checkpoint taken by {!copy}
    (memory is untouched — restore it separately with
    {!Main_memory.restore}). Used to roll back a fault-corrupted window. *)

val arch_equal : t -> t -> bool
(** Equality of registers and PC (not memory); used by equivalence tests. *)

val round32 : float -> float
(** Round a float to the nearest single-precision value. *)

val to_s32 : int -> int
(** Sign-extend the low 32 bits. *)

val to_u32 : int -> int
(** Zero-extend the low 32 bits. *)
