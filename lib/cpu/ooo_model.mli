(** Trace-driven out-of-order core timing model — the stand-in for the
    paper's gem5 BOOM-like baseline (§6.1: quad-issue OoO RISC-V).

    The model consumes the dynamic instruction stream produced by
    {!Interp.run} and computes a cycle count under the classic analytic OoO
    approximation: an instruction issues as soon as (a) it has been fetched,
    (b) its source operands are ready, (c) a functional unit of its class is
    free, and (d) ROB space exists; it commits in order at a bounded width.
    Branch mispredictions (from a bimodal predictor) stall fetch; loads take
    their measured cache-hierarchy latency and compete for memory ports.

    This family of models tracks real OoO cores closely for loop-dominated
    codes, which is all the evaluation requires: the paper's results are
    relative speedups over the same dynamic instruction stream. *)

type config = {
  width : int;               (** fetch/issue/commit width *)
  rob_size : int;
  mispredict_penalty : int;  (** frontend refill cycles *)
  alu_units : int;
  mul_units : int;
  div_units : int;
  fp_units : int;            (** shared FP add/mul/div pool *)
  mem_ports : int;           (** cache ports = LSU issue slots per cycle *)
  latencies : Latency.table;
}

val default_config : config
(** Quad-issue, 192-entry ROB, 12-cycle mispredict penalty, 4 ALUs, 2
    multipliers, 1 divider, 2 FP units, 2 memory ports — a BOOM-class
    configuration. *)

type t

val create : config -> Hierarchy.t -> t

val feed : t -> Interp.event -> unit
(** Account one retired instruction. Call in program order. *)

type summary = {
  cycles : int;           (** commit cycle of the last instruction *)
  instructions : int;
  mispredicts : int;
  loads : int;
  stores : int;
  int_ops : int;
  fp_ops : int;
  branches : int;
  load_latency_sum : int; (** for AMAT reporting *)
  rob_stalls : int;       (** instructions whose issue waited on ROB space *)
  fetch_refills : int;    (** frontend restarts after a mispredict *)
}

val summary : t -> summary

val ipc : summary -> float
(** Instructions per cycle; 0 for an empty run. *)

val register_stats : t -> Stats.group -> unit
(** Expose the live model's counters (cycles, instructions, per-class op
    counts, stalls, IPC, AMAT) as probes under [grp]. Snapshot-time reads
    only — the timing hot path is untouched. *)

val register_summary_stats : summary -> Stats.group -> unit
(** Same stat names over a frozen {!summary}, for runs that only keep the
    summary around (baseline measurements). *)
