type point = {
  kernel : string;
  rows : int;
  cols : int;
  mem_ports : int;
  kind : Interconnect.kind;
  l1_kb : int;
  l2_kb : int;
}

type outcome = {
  point : point;
  mapped : bool;
  reject : string option;
  cycles : int;
  iterations : int;
  energy_nj : float;
  power_w : float;
  area_mm2 : float;
  perf : float;
  perf_per_watt : float;
}

type spec = {
  kernels : string list;
  grids : (int * int) list;
  ports : int list;
  kinds : Interconnect.kind list;
  l1_kb : int list;
  l2_kb : int list;
  budget : int option;
}

type strategy = Exhaustive | Guided

type defect = Inverted_rank

let strategy_to_string = function
  | Exhaustive -> "exhaustive"
  | Guided -> "guided"

let strategy_of_string = function
  | "exhaustive" -> Ok Exhaustive
  | "guided" -> Ok Guided
  | s -> Error (Printf.sprintf "unknown strategy %S (exhaustive|guided)" s)

let kind_to_string = function
  | Interconnect.Mesh_noc -> "mesh_noc"
  | Interconnect.Hierarchical_rows -> "hier_rows"
  | Interconnect.Pure_mesh -> "pure_mesh"

let kind_of_string = function
  | "mesh_noc" -> Ok Interconnect.Mesh_noc
  | "hier_rows" -> Ok Interconnect.Hierarchical_rows
  | "pure_mesh" -> Ok Interconnect.Pure_mesh
  | s -> Error (Printf.sprintf "unknown interconnect %S (mesh_noc|hier_rows|pure_mesh)" s)

let point_label (p : point) =
  Printf.sprintf "%s@%dx%d p%d %s L1:%dK L2:%dK" p.kernel p.rows p.cols
    p.mem_ports (kind_to_string p.kind) p.l1_kb p.l2_kb

let default_spec =
  {
    kernels = [ "nn"; "kmeans"; "bfs" ];
    grids = [ (4, 4); (8, 4); (8, 8); (16, 8) ];
    ports = [ 2; 4; 8 ];
    kinds = [ Interconnect.Mesh_noc ];
    l1_kb = [ 64 ];
    l2_kb = [ 8192 ];
    budget = None;
  }

(* Deduplicate preserving first-occurrence order: the axes must be sets for
   lattice indices to be well-defined, but the user's order is the
   enumeration order. *)
let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let axes_of_spec s =
  ( Array.of_list (dedup s.kernels),
    Array.of_list (dedup s.grids),
    Array.of_list (dedup s.ports),
    Array.of_list (dedup s.kinds),
    Array.of_list (dedup s.l1_kb),
    Array.of_list (dedup s.l2_kb) )

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate_spec s =
  let ( let* ) = Result.bind in
  let nonempty name = function
    | [] -> Error (Printf.sprintf "spec: %s axis is empty" name)
    | _ -> Ok ()
  in
  let* () = nonempty "kernels" s.kernels in
  let* () = nonempty "grids" s.grids in
  let* () = nonempty "ports" s.ports in
  let* () = nonempty "kinds" s.kinds in
  let* () = nonempty "l1" s.l1_kb in
  let* () = nonempty "l2" s.l2_kb in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        match Workloads.find name with
        | _ -> Ok ()
        | exception Not_found -> Error (Printf.sprintf "spec: unknown kernel %S" name))
      (Ok ()) s.kernels
  in
  let* () =
    List.fold_left
      (fun acc (r, c) ->
        let* () = acc in
        if r >= 1 && c >= 1 then Ok ()
        else Error (Printf.sprintf "spec: bad grid %dx%d" r c))
      (Ok ()) s.grids
  in
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        if p >= 1 then Ok () else Error (Printf.sprintf "spec: bad port count %d" p))
      (Ok ()) s.ports
  in
  let* () =
    List.fold_left
      (fun acc kb ->
        let* () = acc in
        if is_pow2 kb then Ok ()
        else Error (Printf.sprintf "spec: L1/L2 capacity %d KB is not a power of two" kb))
      (Ok ()) (s.l1_kb @ s.l2_kb)
  in
  match s.budget with
  | Some b when b < 1 -> Error "spec: budget must be at least 1"
  | _ -> Ok ()

let points_of_spec s =
  let kernels, grids, ports, kinds, l1s, l2s = axes_of_spec s in
  let acc = ref [] in
  Array.iter
    (fun kernel ->
      Array.iter
        (fun (rows, cols) ->
          Array.iter
            (fun mem_ports ->
              Array.iter
                (fun kind ->
                  Array.iter
                    (fun l1_kb ->
                      Array.iter
                        (fun l2_kb ->
                          acc :=
                            { kernel; rows; cols; mem_ports; kind; l1_kb; l2_kb }
                            :: !acc)
                        l2s)
                    l1s)
                kinds)
            ports)
        grids)
    kernels;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Point measurement.                                                  *)

let grid_of_point (p : point) =
  Grid.make ~rows:p.rows ~cols:p.cols ~mem_ports:p.mem_ports
    ~name:(Printf.sprintf "G%dx%d" p.rows p.cols)
    ()

let hier_config_of_point (p : point) =
  let dc = Hierarchy.default_config in
  {
    dc with
    Hierarchy.l1 =
      Cache.config ~size_bytes:(p.l1_kb * 1024) ~ways:dc.Hierarchy.l1.Cache.ways
        ~line_bytes:dc.Hierarchy.l1.Cache.line_bytes
        ~hit_latency:dc.Hierarchy.l1.Cache.hit_latency;
    l2 =
      Cache.config ~size_bytes:(p.l2_kb * 1024) ~ways:dc.Hierarchy.l2.Cache.ways
        ~line_bytes:dc.Hierarchy.l2.Cache.line_bytes
        ~hit_latency:dc.Hierarchy.l2.Cache.hit_latency;
  }

let rejected (p : point) reason =
  {
    point = p;
    mapped = false;
    reject = Some reason;
    cycles = 0;
    iterations = 0;
    energy_nj = 0.0;
    power_w = 0.0;
    area_mm2 = 0.0;
    perf = 0.0;
    perf_per_watt = 0.0;
  }

let evaluate (p : point) =
  let k = Workloads.find p.kernel in
  let grid = grid_of_point p in
  let dfg = Runner.dfg_of_kernel k in
  match Runner.placement_of ~kind:p.kind ~grid k with
  | Error e -> rejected p e
  | Ok placement -> (
    let mo = Mem_opt.analyze dfg in
    let ld =
      Loop_opt.decide ~grid ~dfg
        ~pragma:(Program.pragma_at k.Kernel.program dfg.Dfg.entry_addr)
    in
    let config =
      Accel_config.with_opts ~forwarding:mo.Mem_opt.forwarding
        ~vector_groups:mo.Mem_opt.vector_groups ~prefetched:mo.Mem_opt.prefetched
        ~tiling:ld.Loop_opt.tiling ~pipelined:true placement
    in
    let mem = Main_memory.create () in
    let machine = Kernel.prepare k mem in
    let hier = Hierarchy.create (hier_config_of_point p) in
    let finish out =
      Hierarchy.release hier;
      Main_memory.release mem;
      out
    in
    match Engine.execute ~config ~dfg ~machine ~hier () with
    | Error e -> finish (rejected p e)
    | Ok res ->
      let cycles = max 1 res.Engine.cycles in
      let breakdown = Energy_model.accel_energy ~grid res.Engine.activity in
      let energy_nj = breakdown.Energy_model.total_nj in
      (* nJ per cycle at the nominal 2 GHz clock is 2 W per unit. *)
      let power_w = 2.0 *. energy_nj /. float_of_int cycles in
      let area_mm2 = Area_model.total_area_mm2 (Area_model.accelerator ~grid) in
      let perf = 1000.0 *. float_of_int res.Engine.iterations /. float_of_int cycles in
      let perf_per_watt = if power_w > 0.0 then perf /. power_w else 0.0 in
      finish
        {
          point = p;
          mapped = true;
          reject = None;
          cycles = res.Engine.cycles;
          iterations = res.Engine.iterations;
          energy_nj;
          power_w;
          area_mm2;
          perf;
          perf_per_watt;
        })

(* ------------------------------------------------------------------ *)
(* Pareto frontier over (perf, perf-per-watt), both maximized.         *)

let dominates a b =
  a.perf >= b.perf && a.perf_per_watt >= b.perf_per_watt
  && (a.perf > b.perf || a.perf_per_watt > b.perf_per_watt)

let frontier outs =
  List.filter
    (fun o -> o.mapped && not (List.exists (fun x -> x.mapped && dominates x o) outs))
    outs

let ranked outs =
  List.stable_sort
    (fun a b ->
      match compare b.mapped a.mapped with
      | 0 -> (
        match compare b.perf a.perf with
        | 0 -> (
          match compare b.perf_per_watt a.perf_per_watt with
          | 0 -> compare (point_label a.point) (point_label b.point)
          | c -> c)
        | c -> c)
      | c -> c)
    outs

(* ------------------------------------------------------------------ *)
(* Checkpoint serialization. Floats print with 17 significant digits
   (Json.to_string), so decode∘encode is the identity and a frontier over
   restored outcomes is bit-identical to one over fresh measurements.     *)

let point_to_json (p : point) =
  Json.Assoc
    [
      ("kernel", Json.String p.kernel);
      ("rows", Json.Int p.rows);
      ("cols", Json.Int p.cols);
      ("ports", Json.Int p.mem_ports);
      ("kind", Json.String (kind_to_string p.kind));
      ("l1_kb", Json.Int p.l1_kb);
      ("l2_kb", Json.Int p.l2_kb);
    ]

let json_err fmt = Printf.ksprintf (fun s -> Error s) fmt

let get_int name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some i -> Ok i
  | None -> json_err "missing int field %S" name

let get_float name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok f
  | None -> json_err "missing float field %S" name

let get_string name j =
  match Option.bind (Json.member name j) Json.to_string_opt with
  | Some s -> Ok s
  | None -> json_err "missing string field %S" name

let point_of_json j =
  let ( let* ) = Result.bind in
  let* kernel = get_string "kernel" j in
  let* rows = get_int "rows" j in
  let* cols = get_int "cols" j in
  let* mem_ports = get_int "ports" j in
  let* kind = Result.bind (get_string "kind" j) kind_of_string in
  let* l1_kb = get_int "l1_kb" j in
  let* l2_kb = get_int "l2_kb" j in
  Ok { kernel; rows; cols; mem_ports; kind; l1_kb; l2_kb }

let outcome_to_json o =
  Json.Assoc
    [
      ("point", point_to_json o.point);
      ("mapped", Json.Bool o.mapped);
      ("reject", match o.reject with None -> Json.Null | Some r -> Json.String r);
      ("cycles", Json.Int o.cycles);
      ("iterations", Json.Int o.iterations);
      ("energy_nj", Json.Float o.energy_nj);
      ("power_w", Json.Float o.power_w);
      ("area_mm2", Json.Float o.area_mm2);
      ("perf", Json.Float o.perf);
      ("perf_per_watt", Json.Float o.perf_per_watt);
    ]

let outcome_of_json j =
  let ( let* ) = Result.bind in
  let* point =
    match Json.member "point" j with
    | Some pj -> point_of_json pj
    | None -> Error "outcome without point"
  in
  let* mapped =
    match Json.member "mapped" j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "outcome without mapped flag"
  in
  let reject =
    match Json.member "reject" j with Some (Json.String r) -> Some r | _ -> None
  in
  let* cycles = get_int "cycles" j in
  let* iterations = get_int "iterations" j in
  let* energy_nj = get_float "energy_nj" j in
  let* power_w = get_float "power_w" j in
  let* area_mm2 = get_float "area_mm2" j in
  let* perf = get_float "perf" j in
  let* perf_per_watt = get_float "perf_per_watt" j in
  Ok
    {
      point;
      mapped;
      reject;
      cycles;
      iterations;
      energy_nj;
      power_w;
      area_mm2;
      perf;
      perf_per_watt;
    }

let spec_to_json s =
  Json.Assoc
    [
      ("kernels", Json.List (List.map (fun k -> Json.String k) s.kernels));
      ( "grids",
        Json.List
          (List.map (fun (r, c) -> Json.List [ Json.Int r; Json.Int c ]) s.grids) );
      ("ports", Json.List (List.map (fun p -> Json.Int p) s.ports));
      ("kinds", Json.List (List.map (fun k -> Json.String (kind_to_string k)) s.kinds));
      ("l1_kb", Json.List (List.map (fun k -> Json.Int k) s.l1_kb));
      ("l2_kb", Json.List (List.map (fun k -> Json.Int k) s.l2_kb));
      ("budget", match s.budget with None -> Json.Null | Some b -> Json.Int b);
    ]

let spec_of_json j =
  let ( let* ) = Result.bind in
  let get_list name conv =
    match Option.bind (Json.member name j) Json.to_list with
    | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* v = conv item in
          Ok (v :: acc))
        (Ok []) items
      |> Result.map List.rev
    | None -> json_err "spec: missing list %S" name
  in
  let* kernels =
    get_list "kernels" (function Json.String s -> Ok s | _ -> Error "bad kernel")
  in
  let* grids =
    get_list "grids" (function
      | Json.List [ Json.Int r; Json.Int c ] -> Ok (r, c)
      | _ -> Error "bad grid")
  in
  let* ports =
    get_list "ports" (function Json.Int p -> Ok p | _ -> Error "bad port")
  in
  let* kinds =
    get_list "kinds" (function
      | Json.String s -> kind_of_string s
      | _ -> Error "bad kind")
  in
  let* l1_kb = get_list "l1_kb" (function Json.Int k -> Ok k | _ -> Error "bad l1") in
  let* l2_kb = get_list "l2_kb" (function Json.Int k -> Ok k | _ -> Error "bad l2") in
  let budget =
    match Json.member "budget" j with Some (Json.Int b) -> Some b | _ -> None
  in
  Ok { kernels; grids; ports; kinds; l1_kb; l2_kb; budget }

let checkpoint_to_json ?(strategy = Exhaustive) spec outcomes =
  Json.Assoc
    (("version", Json.Int 1)
     ::
     (* The strategy field extends the v1 schema compatibly: absent means
        exhaustive, so checkpoints written before guided search existed
        (and exhaustive ones written today) keep their exact byte format. *)
     (match strategy with
     | Exhaustive -> []
     | Guided -> [ ("strategy", Json.String (strategy_to_string strategy)) ])
    @ [
        ("spec", spec_to_json spec);
        ("outcomes", Json.List (List.map outcome_to_json outcomes));
      ])

let checkpoint_of_json j =
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Json.member "version" j) Json.to_int with
    | Some 1 -> Ok ()
    | Some v -> json_err "unsupported checkpoint version %d" v
    | None -> Error "checkpoint without version"
  in
  let* strategy =
    match Json.member "strategy" j with
    | None -> Ok Exhaustive
    | Some (Json.String s) -> strategy_of_string s
    | Some _ -> Error "checkpoint with malformed strategy"
  in
  let* spec =
    match Json.member "spec" j with
    | Some sj -> spec_of_json sj
    | None -> Error "checkpoint without spec"
  in
  let* outcomes =
    match Option.bind (Json.member "outcomes" j) Json.to_list with
    | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* o = outcome_of_json item in
          Ok (o :: acc))
        (Ok []) items
      |> Result.map List.rev
    | None -> Error "checkpoint without outcomes"
  in
  Ok (spec, strategy, outcomes)

let write_checkpoint ?strategy path spec outcomes =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string ~indent:2 (checkpoint_to_json ?strategy spec outcomes));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Budgeted greedy exploration: deterministic seeds, then expansion to
   the lattice neighbours of the current frontier.                     *)

let index_of arr v =
  let n = Array.length arr in
  let rec go i = if i >= n then None else if arr.(i) = v then Some i else go (i + 1) in
  go 0

let seeds_of_axes (kernels, grids, ports, kinds, l1s, l2s) =
  let mid a = (Array.length a - 1) / 2 in
  let last a = Array.length a - 1 in
  let point ik (ig, ip, ikd, i1, i2) =
    let rows, cols = grids.(ig) in
    {
      kernel = kernels.(ik);
      rows;
      cols;
      mem_ports = ports.(ip);
      kind = kinds.(ikd);
      l1_kb = l1s.(i1);
      l2_kb = l2s.(i2);
    }
  in
  let per_kernel ik =
    [
      point ik (0, 0, 0, 0, 0);
      point ik (last grids, last ports, last kinds, last l1s, last l2s);
      point ik (mid grids, mid ports, mid kinds, mid l1s, mid l2s);
    ]
  in
  List.concat_map per_kernel (List.init (Array.length kernels) Fun.id) |> dedup

let neighbours_of_point ((kernels, grids, ports, kinds, l1s, l2s) as _axes) p =
  match
    ( index_of kernels p.kernel,
      index_of grids (p.rows, p.cols),
      index_of ports p.mem_ports,
      index_of kinds p.kind,
      index_of l1s p.l1_kb,
      index_of l2s p.l2_kb )
  with
  | Some _, Some ig, Some ip, Some ikd, Some i1, Some i2 ->
    let mk (ig, ip, ikd, i1, i2) =
      let rows, cols = grids.(ig) in
      { p with rows; cols; mem_ports = ports.(ip); kind = kinds.(ikd);
               l1_kb = l1s.(i1); l2_kb = l2s.(i2) }
    in
    let dim len i delta = let j = i + delta in if j >= 0 && j < len then Some j else None in
    List.filter_map Fun.id
      [
        Option.map (fun j -> mk (j, ip, ikd, i1, i2)) (dim (Array.length grids) ig (-1));
        Option.map (fun j -> mk (j, ip, ikd, i1, i2)) (dim (Array.length grids) ig 1);
        Option.map (fun j -> mk (ig, j, ikd, i1, i2)) (dim (Array.length ports) ip (-1));
        Option.map (fun j -> mk (ig, j, ikd, i1, i2)) (dim (Array.length ports) ip 1);
        Option.map (fun j -> mk (ig, ip, j, i1, i2)) (dim (Array.length kinds) ikd (-1));
        Option.map (fun j -> mk (ig, ip, j, i1, i2)) (dim (Array.length kinds) ikd 1);
        Option.map (fun j -> mk (ig, ip, ikd, j, i2)) (dim (Array.length l1s) i1 (-1));
        Option.map (fun j -> mk (ig, ip, ikd, j, i2)) (dim (Array.length l1s) i1 1);
        Option.map (fun j -> mk (ig, ip, ikd, i1, j)) (dim (Array.length l2s) i2 (-1));
        Option.map (fun j -> mk (ig, ip, ikd, i1, j)) (dim (Array.length l2s) i2 1);
      ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Guided search surrogate: the analytical cost model prices a lattice
   point without running the engine, so ranking the whole lattice costs
   about as much as measuring one point.                                *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let rec drop n = function
  | l when n <= 0 -> l
  | [] -> []
  | _ :: tl -> drop (n - 1) tl

(* The model only needs enough iterations to rank points; past the steady
   state every estimate rescales by the same II. *)
let surrogate_horizon (k : Kernel.t) = min (max 1 k.Kernel.n) 128

(* Model cycles-per-iteration of a point, plus everything needed to price
   its energy. [Error] when the mapper rejects the point outright. *)
let model_of_point (p : point) =
  let k = Workloads.find p.kernel in
  let grid = grid_of_point p in
  let dfg = Runner.dfg_of_kernel k in
  match Runner.placement_of ~kind:p.kind ~grid k with
  | Error e -> Error e
  | Ok placement ->
    let mo = Mem_opt.analyze dfg in
    let ld =
      Loop_opt.decide ~grid ~dfg
        ~pragma:(Program.pragma_at k.Kernel.program dfg.Dfg.entry_addr)
    in
    let config =
      Accel_config.with_opts ~forwarding:mo.Mem_opt.forwarding
        ~vector_groups:mo.Mem_opt.vector_groups ~prefetched:mo.Mem_opt.prefetched
        ~tiling:ld.Loop_opt.tiling ~pipelined:true placement
    in
    let h = surrogate_horizon k in
    let est = Cost_model.estimate ~config ~dfg ~iterations:h () in
    Ok (float_of_int est.Cost_model.cycles /. float_of_int h, config, dfg, grid, h)

(* Surrogate (perf, perf/W) mirroring [evaluate]'s derivations with model
   quantities. The model prices every access at the L1 hit latency, so
   [scale] — measured-over-model cycles-per-iteration on the kernel's seed
   point — absorbs that kernel's average miss penalty. *)
let predict_point ~scale (p : point) =
  match model_of_point p with
  | Error e -> Error e
  | Ok (cpi, config, dfg, grid, h) ->
    let cpi = cpi *. scale in
    let cycles = max 1 (int_of_float (Float.ceil (cpi *. float_of_int h))) in
    let act = Cost_model.predicted_activity ~config ~dfg ~iterations:h ~cycles in
    let energy_nj = (Energy_model.accel_energy ~grid act).Energy_model.total_nj in
    let power_w = 2.0 *. energy_nj /. float_of_int cycles in
    let perf = 1000.0 /. cpi in
    let perf_per_watt = if power_w > 0.0 then perf /. power_w else 0.0 in
    Ok (perf, perf_per_watt)

(* ------------------------------------------------------------------ *)
(* The explorer.                                                       *)

type result = {
  spec : spec;
  strategy : strategy;
  outcomes : outcome list;
  front : outcome list;
  complete : bool;
  evaluated : int;
  measured : int;
  exhaustive_count : int;
  restored : int;
  stats : Stats.snapshot;
  timeline : Trace.span list;
}

let load_checkpoint ~strategy ~resume ~checkpoint spec =
  if not resume then Ok []
  else
    match checkpoint with
    | None -> Error "resume requires a checkpoint path"
    | Some path when not (Sys.file_exists path) -> Ok []
    | Some path -> (
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Result.bind (Json.of_string text) checkpoint_of_json with
      | Error e -> Error (Printf.sprintf "checkpoint %s: %s" path e)
      | Ok (sp, st, outs) ->
        if sp <> spec then
          Error (Printf.sprintf "checkpoint %s was produced by a different spec" path)
        else if st <> strategy then
          Error
            (Printf.sprintf "checkpoint %s was produced by the %s strategy" path
               (strategy_to_string st))
        else Ok outs)

let run ?jobs ?checkpoint ?(resume = false) ?stop_after ?(strategy = Exhaustive)
    ?defect spec =
  let ( let* ) = Result.bind in
  let* () = validate_spec spec in
  let* () =
    match (strategy, spec.budget) with
    | Guided, Some _ ->
      Error "spec: the guided strategy sets its own budget; drop the spec's"
    | _ -> Ok ()
  in
  let* prior = load_checkpoint ~strategy ~resume ~checkpoint spec in
  let known : (point, outcome) Hashtbl.t = Hashtbl.create 97 in
  List.iter (fun o -> Hashtbl.replace known o.point o) prior;
  let all_points = points_of_spec spec in
  let exhaustive_count = List.length all_points in
  let reg = Stats.registry () in
  let grp = Stats.group reg "dse" in
  let c_eval = Stats.counter ~desc:"points measured fresh by this run" grp "points_evaluated" in
  let c_hits = Stats.counter ~desc:"points restored from the checkpoint" grp "cache_hits" in
  let c_rej = Stats.counter ~desc:"points whose mapping or execution was rejected" grp "points_rejected" in
  let c_meas = Stats.counter ~desc:"engine runs that mapped (fresh or restored)" grp "points_measured" in
  let c_batches = Stats.counter ~desc:"guided halving batches dispatched" grp "guided_batches" in
  Stats.int_probe ~desc:"full lattice size" grp "exhaustive_count"
    (fun () -> exhaustive_count);
  let outcomes_rev = ref [] in
  Stats.int_probe ~desc:"non-dominated points at readout" grp "frontier_size"
    (fun () -> List.length (frontier (List.rev !outcomes_rev)));
  let timeline = ref [] in
  let clock = ref 0 in
  let fresh = ref 0 in
  let stopped = ref false in
  let append ~was_restored o =
    outcomes_rev := o :: !outcomes_rev;
    if was_restored then Stats.incr c_hits
    else begin
      Stats.incr c_eval;
      incr fresh
    end;
    if o.mapped then Stats.incr c_meas else Stats.incr c_rej;
    timeline :=
      Trace.span ~cat:"dse" ~ts:!clock ~dur:(max 0 o.cycles)
        ~args:
          [
            ("cycles", Json.Int o.cycles);
            ("mapped", Json.Bool o.mapped);
            ("perf", Json.Float o.perf);
          ]
        (point_label o.point)
      :: !timeline;
    clock := !clock + max 1 o.cycles;
    (match checkpoint with
    | Some path -> write_checkpoint ~strategy path spec (List.rev !outcomes_rev)
    | None -> ());
    match stop_after with
    | Some k when !fresh >= k -> stopped := true
    | _ -> ()
  in
  Pool.with_pool ?jobs (fun pool ->
      (* Evaluate a batch: restored points replay from the checkpoint, fresh
         ones fan out over the pool; results are appended in batch order, so
         the checkpoint always holds a prefix of the deterministic assembly
         order. Returns false once [stop_after] has cut the run short. *)
      let eval_batch batch =
        let slots =
          List.map
            (fun p ->
              match Hashtbl.find_opt known p with
              | Some o -> `Restored o
              | None -> `Fut (Pool.submit pool (fun () -> evaluate p)))
            batch
        in
        List.iter
          (fun slot ->
            if not !stopped then
              match slot with
              | `Restored o -> append ~was_restored:true o
              | `Fut f ->
                let o = Pool.await f in
                Hashtbl.replace known o.point o;
                append ~was_restored:false o)
          slots;
        not !stopped
      in
      match (strategy, spec.budget) with
      | Exhaustive, None -> ignore (eval_batch all_points)
      | Guided, _ ->
        (* Surrogate-ranked successive halving. One engine-measured seed per
           kernel calibrates the model's cycles-per-iteration; the model
           then prices every remaining point, candidates are ranked by the
           better of their two objective ranks, and batches of shrinking
           size are measured until every unmeasured candidate is dominated
           beyond the model's observed error, or the hard cap — half the
           lattice — is reached. Every ordering ties off on point labels,
           so the schedule is deterministic at any [jobs] and replays
           identically from a checkpoint. *)
        let cap = (exhaustive_count + 1) / 2 in
        let measured () =
          List.fold_left (fun n o -> if o.mapped then n + 1 else n) 0 !outcomes_rev
        in
        let scheduled = Hashtbl.create 97 in
        let sched p = Hashtbl.replace scheduled p () in
        let go = ref true in
        (* Seeds: per kernel, walk the lattice in enumeration order until a
           point maps, and calibrate on it. *)
        let calib : (string, float) Hashtbl.t = Hashtbl.create 7 in
        List.iter
          (fun kernel ->
            let rec walk = function
              | [] -> ()
              | p :: tl ->
                if !go then begin
                  sched p;
                  go := eval_batch [ p ];
                  match Hashtbl.find_opt known p with
                  | Some o when o.mapped -> (
                    match model_of_point p with
                    | Ok (cpi, _, _, _, _) when cpi > 0.0 ->
                      let meas =
                        float_of_int o.cycles
                        /. float_of_int (max 1 o.iterations)
                      in
                      Hashtbl.replace calib kernel (meas /. cpi)
                    | _ -> ())
                  | _ -> walk tl
                end
            in
            walk (List.filter (fun p -> p.kernel = kernel) all_points))
          (dedup spec.kernels);
        (* Price the rest of the lattice. Points the mapper rejects cost no
           engine time — record them outright so the reject column still
           covers the whole lattice. *)
        let unmappable = ref [] in
        let cands = ref [] in
        List.iter
          (fun p ->
            if not (Hashtbl.mem scheduled p) then
              match Hashtbl.find_opt calib p.kernel with
              | None -> ()
              | Some scale -> (
                match predict_point ~scale p with
                | Error _ -> unmappable := p :: !unmappable
                | Ok (perf, ppw) -> cands := (p, perf, ppw) :: !cands))
          all_points;
        (match List.rev !unmappable with
        | [] -> ()
        | rj ->
          List.iter sched rj;
          if !go then go := eval_batch rj);
        let cands = List.rev !cands in
        (* Rank: a point's key is the better of its positions in the
           perf-descending and perf/W-descending orders, so both frontier
           extremes surface early. *)
        let arr = Array.of_list cands in
        let n = Array.length arr in
        let rank cmp =
          let idx = Array.init n Fun.id in
          Array.sort (fun i j -> cmp arr.(i) arr.(j)) idx;
          let r = Array.make n 0 in
          Array.iteri (fun pos i -> r.(i) <- pos) idx;
          r
        in
        let lbl (p, _, _) = point_label p in
        let desc pr a b =
          match compare (pr b) (pr a) with 0 -> compare (lbl a) (lbl b) | c -> c
        in
        let rp = rank (desc (fun (_, f, _) -> f)) in
        let rw = rank (desc (fun (_, _, w) -> w)) in
        let keyed =
          Array.mapi
            (fun i ((p, f, _) as c) ->
              ((min rp.(i) rw.(i), -.f, point_label p), c))
            arr
        in
        Array.sort compare keyed;
        let order = Array.to_list (Array.map snd keyed) in
        let order =
          match defect with Some Inverted_rank -> List.rev order | None -> order
        in
        (* τ-dominance pruning: drop a candidate once a measurement beats
           its prediction by more than the model's worst observed relative
           error (floored at 10%) on both objectives. *)
        let predictions = Hashtbl.create 97 in
        List.iter (fun (p, f, w) -> Hashtbl.replace predictions p (f, w)) cands;
        let tau () =
          List.fold_left
            (fun t o ->
              if not o.mapped then t
              else
                match Hashtbl.find_opt predictions o.point with
                | Some (f, _) when o.perf > 0.0 ->
                  Float.max t (Float.abs (o.perf -. f) /. o.perf)
                | _ -> t)
            0.10 !outcomes_rev
        in
        let dominated t (f, w) =
          let fo = f *. (1.0 +. t) and wo = w *. (1.0 +. t) in
          List.exists
            (fun o -> o.mapped && o.perf > fo && o.perf_per_watt > wo)
            !outcomes_rev
        in
        let rec halve queue width =
          if !go && queue <> [] then begin
            let t = tau () in
            let queue =
              List.filter (fun (_, f, w) -> not (dominated t (f, w))) queue
            in
            let room = cap - measured () in
            if queue <> [] && room > 0 then begin
              let sz = max 1 (min width (min room (List.length queue))) in
              let batch = take sz queue in
              Stats.incr c_batches;
              List.iter (fun (p, _, _) -> sched p) batch;
              go := eval_batch (List.map (fun (p, _, _) -> p) batch);
              halve (drop sz queue) (max 1 (width / 2))
            end
          end
        in
        halve order (max 1 ((List.length order + 3) / 4))
      | Exhaustive, Some budget ->
        let axes = axes_of_spec spec in
        let scheduled = Hashtbl.create 97 in
        let total = ref 0 in
        let rec round batch =
          let batch =
            List.filter (fun p -> not (Hashtbl.mem scheduled p)) (dedup batch)
          in
          let room = budget - !total in
          if room > 0 && batch <> [] then begin
            let chosen = take room batch in
            List.iter (fun p -> Hashtbl.replace scheduled p ()) chosen;
            total := !total + List.length chosen;
            if eval_batch chosen then
              let front = frontier (List.rev !outcomes_rev) in
              let next =
                List.concat_map (fun o -> neighbours_of_point axes o.point) front
                |> List.sort_uniq compare
              in
              round next
          end
        in
        round (seeds_of_axes axes));
  let outcomes = List.rev !outcomes_rev in
  Ok
    {
      spec;
      strategy;
      outcomes;
      front = frontier outcomes;
      complete = not !stopped;
      evaluated = !fresh;
      measured =
        List.fold_left (fun n o -> if o.mapped then n + 1 else n) 0 outcomes;
      exhaustive_count;
      restored = List.length outcomes - !fresh;
      stats = Stats.snapshot reg;
      timeline = List.rev !timeline;
    }

let result_to_json r =
  Json.Assoc
    [
      ("spec", spec_to_json r.spec);
      ("strategy", Json.String (strategy_to_string r.strategy));
      ("exhaustive_count", Json.Int r.exhaustive_count);
      ("measured", Json.Int r.measured);
      ("outcomes", Json.List (List.map outcome_to_json r.outcomes));
      ("frontier", Json.List (List.map outcome_to_json r.front));
    ]

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let table ?top r =
  let t =
    Tables.create ~title:"Design-space exploration (ranked; * = Pareto frontier)"
      [
        ("", Tables.Left);
        ("kernel", Tables.Left);
        ("grid", Tables.Left);
        ("ports", Tables.Right);
        ("interconnect", Tables.Left);
        ("L1 KB", Tables.Right);
        ("L2 KB", Tables.Right);
        ("cycles", Tables.Right);
        ("perf (it/kc)", Tables.Right);
        ("perf/W", Tables.Right);
        ("energy (uJ)", Tables.Right);
        ("area (mm2)", Tables.Right);
        ("outcome", Tables.Left);
      ]
  in
  let on_front o = List.exists (fun f -> f.point = o.point) r.front in
  let rows = ranked r.outcomes in
  let rows = match top with None -> rows | Some n -> List.filteri (fun i _ -> i < n) rows in
  List.iter
    (fun o ->
      Tables.add_row t
        [
          (if on_front o then "*" else "");
          o.point.kernel;
          Printf.sprintf "%dx%d" o.point.rows o.point.cols;
          string_of_int o.point.mem_ports;
          kind_to_string o.point.kind;
          string_of_int o.point.l1_kb;
          string_of_int o.point.l2_kb;
          (if o.mapped then Tables.icell o.cycles else "-");
          (if o.mapped then Tables.fcell o.perf else "-");
          (if o.mapped then Tables.fcell o.perf_per_watt else "-");
          (if o.mapped then Tables.fcell (o.energy_nj /. 1000.0) else "-");
          (if o.mapped then Tables.fcell o.area_mm2 else "-");
          (match o.reject with None -> "ok" | Some why -> "rejected: " ^ why);
        ])
    rows;
  t

let experiment ?jobs () =
  let spec =
    {
      kernels = [ "nn"; "kmeans" ];
      grids = [ (4, 4); (8, 4); (8, 8); (16, 8) ];
      ports = [ 2; 8 ];
      kinds = [ Interconnect.Mesh_noc ];
      l1_kb = [ 64 ];
      l2_kb = [ 8192 ];
      budget = None;
    }
  in
  match run ?jobs spec with
  | Error e -> failwith ("dse experiment: " ^ e)
  | Ok r ->
    let best f = List.fold_left (fun acc o -> Float.max acc (f o)) 0.0 r.outcomes in
    {
      Experiments.table = table r;
      summary =
        [
          ("points", float_of_int (List.length r.outcomes));
          ("frontier_size", float_of_int (List.length r.front));
          ("best_perf", best (fun o -> o.perf));
          ("best_perf_per_watt", best (fun o -> o.perf_per_watt));
        ];
    }

let guided_experiment ?jobs () =
  let spec =
    {
      kernels = [ "nn"; "kmeans" ];
      grids = [ (4, 4); (8, 4); (8, 8); (16, 8) ];
      ports = [ 2; 8 ];
      kinds = [ Interconnect.Mesh_noc ];
      l1_kb = [ 64 ];
      l2_kb = [ 8192 ];
      budget = None;
    }
  in
  match (run ?jobs spec, run ?jobs ~strategy:Guided spec) with
  | Error e, _ | _, Error e -> failwith ("guided dse experiment: " ^ e)
  | Ok ex, Ok gd ->
    let labels r =
      List.sort compare (List.map (fun o -> point_label o.point) r.front)
    in
    {
      Experiments.table = table gd;
      summary =
        [
          ("exhaustive_measured", float_of_int ex.measured);
          ("guided_measured", float_of_int gd.measured);
          ( "evaluated_fraction",
            float_of_int gd.measured /. float_of_int (max 1 gd.exhaustive_count) );
          ("frontier_match", if labels ex = labels gd then 1.0 else 0.0);
        ];
    }
