type result = {
  cycles : int;
  threads : int;
  summaries : Ooo_model.summary list;
}

let default_fork_join_cycles = 6000

let run ?(cores = 16) ?(fork_join_cycles = default_fork_join_cycles)
    ?(cpu = Ooo_model.default_config) (k : Kernel.t) mem =
  if (not k.Kernel.parallel) || cores <= 1 then begin
    let hier = Hierarchy.create Hierarchy.default_config in
    let machine = Kernel.prepare_slice k mem ~lo:0 ~hi:k.Kernel.n in
    let r = Cpu_run.run ~config:cpu ~hierarchy:hier k.Kernel.program machine in
    Hierarchy.release hier;
    { cycles = r.Cpu_run.summary.Ooo_model.cycles; threads = 1; summaries = [ r.Cpu_run.summary ] }
  end
  else begin
    let n = k.Kernel.n in
    (* Index ranges per thread; with n < cores some slices are empty and
       spawn no thread at all. *)
    let slices =
      List.filter_map
        (fun tid ->
          let lo = n * tid / cores and hi = n * (tid + 1) / cores in
          if hi <= lo then None else Some (lo, hi))
        (List.init cores Fun.id)
    in
    let populated = List.length slices in
    (* Only running threads contend on the shared L2, so the per-sharer
       penalty scales with the populated slice count: padding a run with
       empty slices (cores >> n) leaves the cycle count unchanged. *)
    let hiers = Hierarchy.create_shared Hierarchy.default_config ~cores:populated in
    let summaries =
      List.mapi
        (fun i (lo, hi) ->
          let machine = Kernel.prepare_slice k mem ~lo ~hi in
          let r = Cpu_run.run ~config:cpu ~hierarchy:hiers.(i) k.Kernel.program machine in
          r.Cpu_run.summary)
        slices
    in
    let slowest =
      List.fold_left (fun acc s -> max acc s.Ooo_model.cycles) 0 summaries
    in
    { cycles = slowest + fork_join_cycles; threads = populated; summaries }
  end
