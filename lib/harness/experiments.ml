type outcome = {
  table : Tables.t;
  summary : (string * float) list;
}


(* ------------------------------------------------------------------ *)
(* Figure 11: speedup & energy efficiency vs the 16-core CPU.          *)

let fig11 ?jobs ?kernels () =
  let kernels = match kernels with Some ks -> ks | None -> Workloads.all () in
  let t =
    Tables.create ~title:"Figure 11: performance and energy efficiency vs 16-core OoO CPU"
      [
        ("benchmark", Tables.Left);
        ("M-128 speedup", Tables.Right);
        ("M-512 speedup", Tables.Right);
        ("M-128 energy eff", Tables.Right);
        ("M-512 energy eff", Tables.Right);
        ("outputs", Tables.Left);
      ]
  in
  let acc = ref [] in
  let measured =
    Pool.with_pool ?jobs (fun pool ->
        kernels
        |> List.map (fun k ->
               ( k,
                 Pool.submit pool (fun () -> Runner.multicore k),
                 Pool.submit pool (fun () -> Runner.mesa_measure ~grid:Grid.m128 k),
                 Pool.submit pool (fun () -> Runner.mesa_measure ~grid:Grid.m512 k) ))
        |> List.map (fun (k, b, m1, m5) ->
               (k, Pool.await b, Pool.await m1, Pool.await m5)))
  in
  List.iter
    (fun ((k : Kernel.t), base, m128, m512) ->
      let s128 = Runner.speedup ~baseline:base m128
      and s512 = Runner.speedup ~baseline:base m512
      and e128 = Runner.efficiency ~baseline:base m128
      and e512 = Runner.efficiency ~baseline:base m512 in
      acc := (s128, s512, e128, e512) :: !acc;
      let all_ok =
        List.for_all (fun c -> c = Ok ()) [ base.checked; m128.checked; m512.checked ]
      in
      Tables.add_row t
        [
          k.Kernel.name;
          Tables.xcell s128;
          Tables.xcell s512;
          Tables.xcell e128;
          Tables.xcell e512;
          (if all_ok then "ok" else "FAIL");
        ])
    measured;
  let col f = List.map f !acc in
  let g1 = Stats.geomean (col (fun (a, _, _, _) -> a)) in
  let g2 = Stats.geomean (col (fun (_, a, _, _) -> a)) in
  let g3 = Stats.geomean (col (fun (_, _, a, _) -> a)) in
  let g4 = Stats.geomean (col (fun (_, _, _, a) -> a)) in
  Tables.add_rule t;
  Tables.add_row t
    [ "geomean"; Tables.xcell g1; Tables.xcell g2; Tables.xcell g3; Tables.xcell g4; "" ];
  Tables.add_row t [ "paper (avg)"; "1.33x"; "1.81x"; "1.86x"; "1.92x"; "" ];
  {
    table = t;
    summary =
      [
        ("m128_speedup_geomean", g1);
        ("m512_speedup_geomean", g2);
        ("m128_efficiency_geomean", g3);
        ("m512_efficiency_geomean", g4);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Figure 12: per-iteration IPC vs OpenCGRA.                           *)

let engine_ipc (k : Kernel.t) ~grid ~optimized =
  let dfg = Runner.dfg_of_kernel k in
  match Runner.placement_of ~grid k with
  | Error e -> Error e
  | Ok placement ->
    let config =
      if optimized then begin
        let mo = Mem_opt.analyze dfg in
        let ld = Loop_opt.decide ~grid ~dfg ~pragma:(Program.pragma_at k.Kernel.program dfg.Dfg.entry_addr) in
        Accel_config.with_opts ~forwarding:mo.Mem_opt.forwarding
          ~vector_groups:mo.Mem_opt.vector_groups ~prefetched:mo.Mem_opt.prefetched
          ~tiling:ld.Loop_opt.tiling ~pipelined:true placement
      end
      else Accel_config.plain placement
    in
    let mem = Main_memory.create () in
    k.Kernel.setup mem;
    let machine = Kernel.prepare k mem in
    let hier = Hierarchy.create Hierarchy.default_config in
    let out =
      match Engine.execute ~config ~dfg ~machine ~hier () with
      | Error e -> Error e
      | Ok res ->
        let ipc =
          float_of_int (Dfg.node_count dfg * res.Engine.iterations)
          /. float_of_int (max 1 res.Engine.cycles)
        in
        Ok ipc
    in
    Hierarchy.release hier;
    Main_memory.release mem;
    out

let fig12 ?jobs ?kernels () =
  let kernels =
    match kernels with Some ks -> ks | None -> Workloads.opencgra_compatible ()
  in
  let t =
    Tables.create ~title:"Figure 12: per-iteration IPC vs OpenCGRA (same grid, M-128)"
      [
        ("benchmark", Tables.Left);
        ("OpenCGRA IPC", Tables.Right);
        ("MESA no-opt IPC", Tables.Right);
        ("MESA opt IPC", Tables.Right);
      ]
  in
  let ratios_noopt = ref [] and ratios_opt = ref [] in
  let measured =
    Pool.with_pool ?jobs (fun pool ->
        kernels
        |> List.map (fun k ->
               ( k,
                 Pool.submit pool (fun () ->
                     let dfg = Runner.dfg_of_kernel k in
                     match Opencgra.schedule dfg ~grid:Grid.m128 with
                     | Ok s -> Opencgra.ipc dfg s
                     | Error _ -> 0.0),
                 Pool.submit pool (fun () ->
                     Result.value (engine_ipc k ~grid:Grid.m128 ~optimized:false)
                       ~default:0.0),
                 Pool.submit pool (fun () ->
                     Result.value (engine_ipc k ~grid:Grid.m128 ~optimized:true)
                       ~default:0.0) ))
        |> List.map (fun (k, c, n, o) -> (k, Pool.await c, Pool.await n, Pool.await o)))
  in
  List.iter
    (fun ((k : Kernel.t), cgra_ipc, noopt, opt) ->
      if cgra_ipc > 0.0 then begin
        ratios_noopt := (noopt /. cgra_ipc) :: !ratios_noopt;
        ratios_opt := (opt /. cgra_ipc) :: !ratios_opt
      end;
      Tables.add_row t
        [ k.Kernel.name; Tables.fcell cgra_ipc; Tables.fcell noopt; Tables.fcell opt ])
    measured;
  let r_noopt = Stats.geomean !ratios_noopt and r_opt = Stats.geomean !ratios_opt in
  Tables.add_rule t;
  Tables.add_row t
    [ "geomean vs OpenCGRA"; "1.000"; Tables.fcell r_noopt; Tables.fcell r_opt ];
  Tables.add_row t [ "paper (shape)"; "1.0"; "slightly below 1.0"; "well above 1.0" ];
  {
    table = t;
    summary = [ ("noopt_vs_opencgra", r_noopt); ("opt_vs_opencgra", r_opt) ];
  }

(* ------------------------------------------------------------------ *)
(* Figure 13: area / power / energy breakdown by component.            *)

let fig13 ?jobs ?kernels () =
  let kernels =
    match kernels with
    | Some ks -> ks
    | None -> List.map Workloads.find [ "nn"; "kmeans"; "hotspot"; "cfd" ]
  in
  let grid = Grid.m128 in
  (* Energy shares measured across the four benchmarks. *)
  let sum = ref { Energy_model.compute_nj = 0.; memory_nj = 0.; interconnect_nj = 0.; control_nj = 0.; total_nj = 0. } in
  let reports = Pool.run ?jobs (fun k -> snd (Runner.mesa ~grid k)) kernels in
  List.iter
    (fun report ->
      let b = Energy_model.accel_energy ~grid report.Controller.activity in
      let mesa_nj =
        Energy_model.mesa_energy_nj ~busy_cycles:report.Controller.mesa_busy_cycles
      in
      sum :=
        {
          Energy_model.compute_nj = !sum.Energy_model.compute_nj +. b.Energy_model.compute_nj;
          memory_nj = !sum.Energy_model.memory_nj +. b.Energy_model.memory_nj;
          interconnect_nj = !sum.Energy_model.interconnect_nj +. b.Energy_model.interconnect_nj;
          control_nj = !sum.Energy_model.control_nj +. b.Energy_model.control_nj +. mesa_nj;
          total_nj = !sum.Energy_model.total_nj +. b.Energy_model.total_nj +. mesa_nj;
        };
      Hierarchy.release report.Controller.hier)
    reports;
  let b = !sum in
  let pct part = 100.0 *. part /. b.Energy_model.total_nj in
  (* Area and power shares from the synthesis model, folded to the same
     categories. *)
  let entries = Area_model.accelerator ~grid in
  let find name =
    List.find (fun (en : Area_model.entry) -> en.Area_model.component = name) entries
  in
  let top = find "Accelerator Top" and pe = find "PE Array" in
  let lsu = find "Load-Store Unit" and noc = find "NoC" in
  let glue_area =
    top.Area_model.area_um2 -. pe.Area_model.area_um2 -. lsu.Area_model.area_um2
    -. noc.Area_model.area_um2
  and glue_power =
    top.Area_model.power_mw -. pe.Area_model.power_mw -. lsu.Area_model.power_mw
    -. noc.Area_model.power_mw
  in
  let apct v = 100.0 *. v /. top.Area_model.area_um2 in
  let ppct v = 100.0 *. v /. top.Area_model.power_mw in
  let t =
    Tables.create ~title:"Figure 13: breakdown by component (energy avg of nn/kmeans/hotspot/cfd)"
      [
        ("component", Tables.Left);
        ("area %", Tables.Right);
        ("power %", Tables.Right);
        ("energy %", Tables.Right);
      ]
  in
  Tables.add_row t
    [ "compute (PE array)"; Tables.fcell1 (apct pe.Area_model.area_um2);
      Tables.fcell1 (ppct pe.Area_model.power_mw); Tables.fcell1 (pct b.Energy_model.compute_nj) ];
  Tables.add_row t
    [ "memory (LSU + caches)"; Tables.fcell1 (apct lsu.Area_model.area_um2);
      Tables.fcell1 (ppct lsu.Area_model.power_mw); Tables.fcell1 (pct b.Energy_model.memory_nj) ];
  Tables.add_row t
    [ "interconnect (NoC)"; Tables.fcell1 (apct noc.Area_model.area_um2);
      Tables.fcell1 (ppct noc.Area_model.power_mw); Tables.fcell1 (pct b.Energy_model.interconnect_nj) ];
  Tables.add_row t
    [ "control (+MESA)"; Tables.fcell1 (apct glue_area); Tables.fcell1 (ppct glue_power);
      Tables.fcell1 (pct b.Energy_model.control_nj) ];
  let mem_compute = pct b.Energy_model.compute_nj +. pct b.Energy_model.memory_nj in
  Tables.add_rule t;
  Tables.add_row t [ "memory+compute energy"; ""; ""; Tables.fcell1 mem_compute ];
  Tables.add_row t [ "paper"; ""; ""; "~87" ];
  { table = t; summary = [ ("memory_plus_compute_energy_pct", mem_compute) ] }

(* ------------------------------------------------------------------ *)
(* Figure 14: M-64 vs single core and DynaSpAM.                        *)

let fig14 ?jobs ?kernels () =
  let kernels = match kernels with Some ks -> ks | None -> Workloads.dynaspam_shared () in
  let t =
    Tables.create ~title:"Figure 14: speedup vs a single OoO core (M-64 with optimizations)"
      [
        ("benchmark", Tables.Left);
        ("DynaSpAM", Tables.Right);
        ("M-64", Tables.Right);
        ("M-64 +iterative", Tables.Right);
      ]
  in
  let ds = ref [] and m64 = ref [] and m64i = ref [] in
  let measured =
    Pool.with_pool ?jobs (fun pool ->
        kernels
        |> List.map (fun k ->
               ( k,
                 Pool.submit pool (fun () -> Runner.single_core k),
                 Pool.submit pool (fun () ->
                     Runner.dynaspam
                       ~config:{ Dynaspam.default_config with Dynaspam.window = 24 }
                       k),
                 Pool.submit pool (fun () ->
                     Runner.mesa_measure ~grid:Grid.m64 ~iterative:false k),
                 Pool.submit pool (fun () ->
                     Runner.mesa_measure ~grid:Grid.m64 ~iterative:true k) ))
        |> List.map (fun (k, b, d, x, y) ->
               (k, Pool.await b, Pool.await d, Pool.await x, Pool.await y)))
  in
  List.iter
    (fun ((k : Kernel.t), base, dyn, a, b) ->
      let sd = Runner.speedup ~baseline:base dyn in
      let sa = Runner.speedup ~baseline:base a in
      let sb = Runner.speedup ~baseline:base b in
      ds := sd :: !ds;
      m64 := sa :: !m64;
      m64i := sb :: !m64i;
      Tables.add_row t
        [ k.Kernel.name; Tables.xcell sd; Tables.xcell sa; Tables.xcell sb ])
    measured;
  let g1 = Stats.geomean !ds and g2 = Stats.geomean !m64 and g3 = Stats.geomean !m64i in
  Tables.add_rule t;
  Tables.add_row t [ "geomean"; Tables.xcell g1; Tables.xcell g2; Tables.xcell g3 ];
  Tables.add_row t [ "paper (avg)"; "1.42x"; "1.86x"; "2.01x" ];
  {
    table = t;
    summary =
      [ ("dynaspam_geomean", g1); ("m64_geomean", g2); ("m64_iterative_geomean", g3) ];
  }

(* ------------------------------------------------------------------ *)
(* Figure 15: PE scaling for nn.                                       *)

let fig15 ?jobs ?(n = 2048) () =
  let pe_counts = [ 16; 32; 64; 128; 256; 512 ] in
  let k = Workloads.nn ~n () in
  let measure ?mem_ports pes = Runner.mesa_measure ~grid:(Grid.of_pe_count pes) ?mem_ports k in
  let base_default, base_ideal, points =
    Pool.with_pool ?jobs (fun pool ->
        let bd = Pool.submit pool (fun () -> measure 16) in
        let bi = Pool.submit pool (fun () -> measure ~mem_ports:1024 16) in
        let pts =
          List.map
            (fun pes ->
              ( pes,
                Pool.submit pool (fun () -> measure pes),
                Pool.submit pool (fun () -> measure ~mem_ports:1024 pes) ))
            pe_counts
        in
        ( Pool.await bd,
          Pool.await bi,
          List.map (fun (pes, d, i) -> (pes, Pool.await d, Pool.await i)) pts ))
  in
  let t =
    Tables.create ~title:"Figure 15: MESA performance scaling with PE count (nn kernel)"
      [
        ("PEs", Tables.Right);
        ("default", Tables.Right);
        ("ideal memory", Tables.Right);
        ("ideal scaling", Tables.Right);
      ]
  in
  let last_default = ref 1.0 in
  List.iter
    (fun (pes, md, mi) ->
      let d = Runner.speedup ~baseline:base_default md in
      let i = Runner.speedup ~baseline:base_ideal mi in
      last_default := d;
      Tables.add_row t
        [
          string_of_int pes;
          Tables.xcell d;
          Tables.xcell i;
          Tables.xcell (float_of_int pes /. 16.0);
        ])
    points;
  Tables.add_rule t;
  Tables.add_row t [ "paper"; "flattens past 128 PEs"; "keeps scaling"; "linear" ];
  { table = t; summary = [ ("default_512pe_speedup", !last_default) ] }

(* ------------------------------------------------------------------ *)
(* Figure 16: per-iteration energy amortization for nn.                *)

let fig16 ?jobs ?(n = 2048) () =
  ignore (jobs : int option);  (* a single measurement; nothing to fan out *)
  let k = Workloads.nn ~n () in
  let _, report = Runner.mesa ~grid:Grid.m128 k in
  Hierarchy.release report.Controller.hier;
  let grid = Grid.m128 in
  let accel = Energy_model.accel_energy ~grid report.Controller.activity in
  let iterations = report.Controller.activity.Activity.iterations in
  let e_iter = accel.Energy_model.total_nj /. float_of_int (max 1 iterations) in
  let e_config =
    Energy_model.mesa_energy_nj ~busy_cycles:report.Controller.mesa_busy_cycles
  in
  let t =
    Tables.create
      ~title:"Figure 16: average energy per iteration (nJ) vs iterations elapsed (nn)"
      [
        ("iterations", Tables.Right);
        ("energy/iter (nJ)", Tables.Right);
        ("config share %", Tables.Right);
      ]
  in
  let amortized = ref max_int in
  List.iter
    (fun iters ->
      let avg = ((e_config +. (float_of_int iters *. e_iter)) /. float_of_int iters) in
      let share = 100.0 *. e_config /. (e_config +. (float_of_int iters *. e_iter)) in
      if share < 50.0 && !amortized = max_int then amortized := iters;
      Tables.add_row t
        [ string_of_int iters; Tables.fcell1 avg; Tables.fcell1 share ])
    [ 1; 2; 5; 10; 20; 30; 50; 70; 100; 150; 300 ];
  let breakeven = e_config /. e_iter in
  Tables.add_rule t;
  Tables.add_row t
    [ "break-even"; Tables.fcell1 breakeven; "(paper: ~70 iterations)" ];
  { table = t; summary = [ ("breakeven_iterations", breakeven) ] }

(* ------------------------------------------------------------------ *)
(* Table 1: hardware area and power breakdown.                         *)

let table1 ?jobs () =
  ignore (jobs : int option);  (* analytic, no simulation to fan out *)
  let entries = Area_model.full_table ~capacity:512 ~grid:Grid.m128 in
  let t =
    Tables.create ~title:"Table 1: area and power by component (128 PEs, capacity 512)"
      [ ("component", Tables.Left); ("area", Tables.Right); ("power", Tables.Right) ]
  in
  List.iter
    (fun (en : Area_model.entry) ->
      let pad = String.concat "" (List.init en.Area_model.indent (fun _ -> "- ")) in
      let area =
        if en.Area_model.area_um2 >= 1e6 then
          Printf.sprintf "%.3f mm2" (en.Area_model.area_um2 /. 1e6)
        else Printf.sprintf "%.1f um2" en.Area_model.area_um2
      in
      let power =
        if en.Area_model.power_mw >= 1000.0 then
          Printf.sprintf "%.2f W" (en.Area_model.power_mw /. 1e3)
        else Printf.sprintf "%.3f mW" en.Area_model.power_mw
      in
      Tables.add_row t [ pad ^ en.Area_model.component; area; power ])
    entries;
  Tables.add_rule t;
  let frac = Area_model.mesa_area_fraction_of_core ~capacity:512 in
  Tables.add_row t
    [ "MESA / core area"; Printf.sprintf "%.1f%%" (100.0 *. frac); "(paper: <10%)" ];
  List.iter
    (fun grid ->
      let acc = Area_model.accelerator ~grid in
      Tables.add_row t
        [
          grid.Grid.name ^ " accelerator total";
          Printf.sprintf "%.2f mm2" (Area_model.total_area_mm2 acc);
          Printf.sprintf "%.2f W" (Area_model.total_power_w acc);
        ])
    [ Grid.m64; Grid.m512 ];
  { table = t; summary = [ ("mesa_core_area_fraction", frac) ] }

(* ------------------------------------------------------------------ *)
(* Table 2: configuration latency comparison.                          *)

let table2 ?jobs () =
  let t =
    Tables.create ~title:"Table 2: configuration latency and approach comparison"
      [
        ("work", Tables.Left);
        ("config latency", Tables.Left);
        ("targets", Tables.Left);
        ("optimizations", Tables.Left);
      ]
  in
  Tables.add_row t [ "TRIPS"; "AOT"; "2D Spatial"; "H-Block (EDGE)" ];
  Tables.add_row t [ "CCA"; "-"; "1D FF"; "N/A" ];
  Tables.add_row t [ "DynaSpAM"; "JIT (ns)"; "1D FF"; "Out-of-order" ];
  Tables.add_row t [ "DORA"; "JIT (ms)"; "2D Spatial"; "Vect., Unroll, Deepen" ];
  (* Measured MESA translation latency across the suite. *)
  let cycles =
    Pool.run ?jobs
      (fun k ->
        match Runner.dfg_of_kernel k with
        | dfg -> (
          match Runner.placement_of ~grid:Grid.m128 k with
          | Ok placement ->
            let config = Accel_config.plain placement in
            Some
              (float_of_int
                 (Config_manager.translation_cycles Mapper.default_config dfg config))
          | Error _ -> None)
        | exception _ -> None)
      (Workloads.all ())
    |> List.filter_map Fun.id
  in
  let lo = List.fold_left Float.min infinity cycles in
  let hi = List.fold_left Float.max 0.0 cycles in
  Tables.add_row t
    [
      "MESA (this repo, measured)";
      Printf.sprintf "JIT (%.0f-%.0f cycles)" lo hi;
      "2D Spatial";
      "Dynamic, Tile, Pipeline";
    ];
  Tables.add_rule t;
  Tables.add_row t
    [ "paper"; "JIT (ns-us, 10^3-10^4 cycles)"; "2D Spatial"; "Dynamic, Tile, Pipeline" ];
  { table = t; summary = [ ("config_cycles_min", lo); ("config_cycles_max", hi) ] }

let all ?jobs () =
  [
    ("fig11", fig11 ?jobs ());
    ("fig12", fig12 ?jobs ());
    ("fig13", fig13 ?jobs ());
    ("fig14", fig14 ?jobs ());
    ("fig15", fig15 ?jobs ());
    ("fig16", fig16 ?jobs ());
    ("table1", table1 ?jobs ());
    ("table2", table2 ?jobs ());
  ]
