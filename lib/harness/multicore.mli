(** The 16-core OoO CPU baseline of §6 (gem5 multicore in the paper).

    A kernel whose hot loop is OpenMP-parallel is split into per-thread
    index slices, each simulated on its own core model with a private L1
    over the shared L2 (extra latency per sharer models contention). The
    region's wall clock is the slowest slice plus the OpenMP fork/join
    overhead — the real-world cost that MESA's sub-microsecond
    configuration undercuts. Non-parallel kernels run on one core. *)

type result = {
  cycles : int;
  threads : int;
  summaries : Ooo_model.summary list; (** one per active core *)
}

val default_fork_join_cycles : int
(** ~3 us at 2 GHz for a 16-thread parallel region. *)

val run :
  ?cores:int ->
  ?fork_join_cycles:int ->
  ?cpu:Ooo_model.config ->
  Kernel.t ->
  Main_memory.t ->
  result
(** Execute the kernel (memory must already contain its inputs). Slices are
    simulated sequentially, which is functionally equivalent for the
    independent iterations the annotation guarantees.

    When [n < cores], the surplus slices are empty and spawn no thread:
    [threads] counts only populated slices, [summaries] has one entry per
    populated slice, and the shared-L2 contention penalty scales with the
    populated count — so the cycle count equals a run with exactly that
    many cores. *)
