(** Reproduction of every table and figure in the paper's evaluation
    (§6). Each experiment returns a rendered {!Tables.t} whose rows are the
    series the corresponding figure plots, with the paper's headline
    numbers quoted alongside for comparison, plus a machine-readable
    summary used by EXPERIMENTS.md and the tests. *)

type outcome = {
  table : Tables.t;
  summary : (string * float) list;  (** named headline metrics *)
}

(** Every experiment takes [?jobs]: its independent per-(kernel,
    configuration) measurements run on a {!Pool} of that many domains
    (default [1], i.e. fully sequential). Results are assembled in
    submission order and each measurement is deterministic, so the outcome
    — table text and summary — is bit-identical for every [jobs] value. *)

val fig11 : ?jobs:int -> ?kernels:Kernel.t list -> unit -> outcome
(** Speedup and energy efficiency of M-128/M-512 over the 16-core CPU
    across the Rodinia suite. Paper averages: 1.33x / 1.81x performance,
    1.86x / 1.92x energy efficiency. *)

val fig12 : ?jobs:int -> ?kernels:Kernel.t list -> unit -> outcome
(** Per-iteration IPC against the OpenCGRA modulo scheduler: MESA without
    optimizations slightly behind, with optimizations clearly ahead. *)

val fig13 : ?jobs:int -> ?kernels:Kernel.t list -> unit -> outcome
(** Area / power / energy breakdown by component (nn, kmeans, hotspot,
    cfd): memory + compute should carry ~87% of energy. *)

val fig14 : ?jobs:int -> ?kernels:Kernel.t list -> unit -> outcome
(** M-64 against a single OoO core and DynaSpAM. Paper: DynaSpAM 1.42x,
    M-64 1.86x, 2.01x with iterative reconfiguration. *)

val fig15 : ?jobs:int -> ?n:int -> unit -> outcome
(** PE scaling of the nn kernel, default vs ideal-memory vs ideal:
    near-linear to ~128 PEs, then memory-bound. *)

val fig16 : ?jobs:int -> ?n:int -> unit -> outcome
(** Energy per iteration versus iterations executed: configuration energy
    amortizes around 70 iterations. *)

val table1 : ?jobs:int -> unit -> outcome
(** Hardware area/power breakdown at 128 PEs (identical to the paper by
    calibration; other configs derive from the scaling model). *)

val table2 : ?jobs:int -> unit -> outcome
(** Configuration-latency comparison across approaches; MESA's measured
    translation latency must fall in the 10^3-10^4 cycle band. *)

val all : ?jobs:int -> unit -> (string * outcome) list
(** Every experiment, in paper order. *)
