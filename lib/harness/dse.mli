(** Deterministic, resumable design-space exploration over the joint
    microarchitecture space.

    A {!spec} names the axes of the sweep — kernel subset, grid geometries,
    cache-port counts, interconnect backends, L1/L2 capacities — and the
    explorer measures every combination (or, with a [budget], a greedy
    subset expanding around the current Pareto frontier). Point enumeration
    is a pure function of the spec and every measurement is deterministic,
    so two runs of the same spec are bit-identical — including a run that
    was killed and resumed from its checkpoint, at any [jobs] value: points
    fan out across a {!Pool} but results are assembled in submission order,
    and the checkpoint always holds a prefix of that order.

    Each point runs the kernel's hot loop on the engine (translation shared
    through {!Runner}'s memo: the LDFG once per kernel, the placement once
    per (kernel, grid, interconnect)) and records cycles, the offload/reject
    outcome, energy from {!Energy_model} and area from {!Area_model}. The
    result carries a 2D Pareto {!frontier} over (performance,
    performance-per-watt), a ranked table, a [dse] stats group
    (points_evaluated / cache_hits / points_rejected / frontier_size) and
    Chrome-trace timeline spans. *)

(** One configuration of the joint space. *)
type point = {
  kernel : string;
  rows : int;
  cols : int;
  mem_ports : int;
  kind : Interconnect.kind;
  l1_kb : int;
  l2_kb : int;
}

val point_label : point -> string
(** ["nn@16x8 p4 mesh_noc L1:64K L2:8192K"] — stable display/trace name. *)

(** The measurement at one point. Rejected points ([mapped = false]) keep
    the mapping or engine error in [reject] and zero metrics; they never
    enter the frontier. *)
type outcome = {
  point : point;
  mapped : bool;
  reject : string option;
  cycles : int;
  iterations : int;
  energy_nj : float;        (** accelerator energy over the loop *)
  power_w : float;          (** average power at the nominal 2 GHz clock *)
  area_mm2 : float;         (** accelerator area at this geometry *)
  perf : float;             (** iterations per kilocycle (higher is better) *)
  perf_per_watt : float;    (** [perf / power_w] *)
}

(** The sweep specification. Every axis list is deduplicated in user order;
    the exhaustive point list is the cartesian product, kernels outermost,
    L2 innermost. [budget = Some n] switches to capped greedy exploration:
    deterministic seeds (lattice corners and centre per kernel), then
    repeated expansion to the lattice neighbours of the current frontier
    until the budget or the reachable space is exhausted. *)
type spec = {
  kernels : string list;
  grids : (int * int) list;     (** (rows, cols) *)
  ports : int list;
  kinds : Interconnect.kind list;
  l1_kb : int list;
  l2_kb : int list;
  budget : int option;
}

val default_spec : spec
(** nn/kmeans/bfs over 4x4..16x8 grids, 2/4/8 ports, the mesh+NoC backend,
    64 KB L1, 8 MB L2, no budget. *)

val validate_spec : spec -> (unit, string) result
(** Kernels exist, axes non-empty, geometries/ports/capacities positive
    (capacities must keep the cache geometry valid: power-of-two KB). *)

val points_of_spec : spec -> point list
(** The exhaustive enumeration (pure; ignores [budget]). *)

val evaluate : point -> outcome
(** Measure one point (deterministic; safe to call from pool workers). *)

val kind_to_string : Interconnect.kind -> string
val kind_of_string : string -> (Interconnect.kind, string) result

(** {2 Search strategies} *)

(** How the lattice is explored. [Exhaustive] measures every point (or the
    spec's greedy [budget] subset). [Guided] measures one calibration seed
    per kernel, prices every remaining point with the analytical
    {!Cost_model} surrogate, and runs surrogate-ranked successive halving
    with τ-dominance pruning — stopping once every unmeasured candidate is
    dominated by a measurement beyond the model's worst observed relative
    error (floored at 10%), or at the hard cap of half the lattice. *)
type strategy = Exhaustive | Guided

(** Injectable search defects for mutation tests. [Inverted_rank] makes the
    surrogate ranking worst-first: a healthy τ-stop and cap must then
    demonstrably miss Pareto-frontier points, proving the ranking (not the
    cap alone) is what finds the frontier cheaply. *)
type defect = Inverted_rank

val strategy_to_string : strategy -> string
val strategy_of_string : string -> (strategy, string) result

val predict_point :
  scale:float -> point -> (float * float, string) result
(** The surrogate: model-predicted (perf, perf-per-watt) for a point,
    mirroring {!evaluate}'s derivations with {!Cost_model} cycle estimates
    and {!Cost_model.predicted_activity} energy. [scale] is the kernel's
    measured-over-model cycles-per-iteration calibration factor (the model
    prices every access at the L1 hit latency; the scale absorbs the
    kernel's average miss penalty). [Error] when the mapper rejects the
    point. Pure and deterministic. *)

(** {2 Pareto frontier} *)

val dominates : outcome -> outcome -> bool
(** [dominates a b]: [a] is no worse on both (perf, perf-per-watt) axes and
    strictly better on at least one. *)

val frontier : outcome list -> outcome list
(** The non-dominated mapped outcomes, in input order. *)

val ranked : outcome list -> outcome list
(** All outcomes sorted best-first: mapped before rejected, then perf,
    perf-per-watt and label as deterministic tie-breakers. *)

(** {2 Checkpoints} *)

val checkpoint_to_json : ?strategy:strategy -> spec -> outcome list -> Json.t
(** The ["strategy"] field is emitted only for [Guided] (absent means
    exhaustive), so checkpoints written before guided search existed — and
    exhaustive ones written today — keep their exact byte format. *)

val checkpoint_of_json : Json.t -> (spec * strategy * outcome list, string) result
(** Inverse of {!checkpoint_to_json}: floats round-trip exactly (17
    significant digits), so a frontier computed over restored outcomes is
    bit-identical to one over freshly measured outcomes. *)

(** {2 Running a sweep} *)

type result = {
  spec : spec;
  strategy : strategy;
  outcomes : outcome list;  (** assembly order: enumeration order for
                                exhaustive sweeps, evaluation order for
                                budgeted/guided ones *)
  front : outcome list;
  complete : bool;          (** false when [stop_after] cut the run short *)
  evaluated : int;          (** points measured fresh by this run *)
  measured : int;           (** mapped outcomes over the whole run, fresh or
                                restored — the numerator of the guided
                                evaluated-fraction gate *)
  exhaustive_count : int;   (** full lattice size, the denominator *)
  restored : int;           (** points restored from the checkpoint *)
  stats : Stats.snapshot;   (** the [dse] counter group *)
  timeline : Trace.span list;  (** one span per point on a virtual
                                   cumulative-cycles axis *)
}

val run :
  ?jobs:int ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?stop_after:int ->
  ?strategy:strategy ->
  ?defect:defect ->
  spec ->
  (result, string) Stdlib.result
(** Execute the sweep. [checkpoint] names a JSON file rewritten (atomically,
    via a temp file + rename) after every completed point; [resume] loads it
    first — completed points are restored instead of re-measured (counted as
    [dse.cache_hits]) and the sweep continues where it left off. A missing
    checkpoint file under [resume] is a fresh start; a checkpoint for a
    different spec or strategy is an error. [stop_after n] returns after [n]
    fresh measurements (the test suite's deterministic stand-in for a kill).
    [jobs] sizes the worker pool; the result is bit-identical for any value.
    [strategy] defaults to [Exhaustive]; [Guided] rejects specs with a
    [budget] (it sets its own: at most half the lattice is measured).
    [defect] injects a search defect for mutation tests. *)

val result_to_json : result -> Json.t
(** Spec, strategy, measured/exhaustive point counts, outcomes and frontier
    — everything that must be bit-identical between an
    interrupted-then-resumed sweep and an uninterrupted one (so not
    [evaluated]/[restored], which legitimately differ). *)

val table : ?top:int -> result -> Tables.t
(** The ranked table ([top] rows, default all), frontier points starred. *)

val experiment : ?jobs:int -> unit -> Experiments.outcome
(** The bench-harness entry: a small fixed sweep (nn and kmeans across four
    geometries, two port counts), summarized by frontier size and the best
    point on each axis. *)

val guided_experiment : ?jobs:int -> unit -> Experiments.outcome
(** Guided vs exhaustive on the same pinned sub-space: the guided run's
    ranked table, summarized by measured-point counts on both strategies,
    the guided evaluated fraction and whether the frontiers match
    point-for-point (1.0 = yes). *)
