type t = {
  kernel : string;
  grid_name : string;
  rows : int;
  cols : int;
  ls_entries : int;
  mem_ports : int;
  total_cycles : int;
  accel_cycles : int;
  config_cycles : int;
  attributed_cycles : int;
  iterations : int;
  windows : int;
  lane_labels : string array;
  lane_buckets : int array array;
  totals : int array;
  ii : Attribution.ii_summary;
  critical_path : int list;
  critical_path_latency : float;
  critical_path_pct : float;
  noc_claims : int array;
  noc_busy : int array;
  port_claims : int;
  port_busy : int;
  mem_levels : (string * int) list;
  dominant : Attribution.bucket;
}

let schema = "mesa-profile-v1"

(* Buckets that count as a bottleneck when naming the dominant stall: time
   doing useful work (Busy), winding down (Drain) or on lanes the SDFG never
   used (Idle/Masked) is not a stall to chase. *)
let stall_buckets =
  Attribution.
    [ Recurrence_wait; Mem_port_stall; Noc_stall; Long_op; Config ]

let dominant_of totals =
  List.fold_left
    (fun best b ->
      let v = totals.(Attribution.bucket_index b) in
      match best with
      | Some (_, bv) when bv >= v -> best
      | _ -> Some (b, v))
    None stall_buckets
  |> Option.get |> fst

let of_report ~kernel (report : Controller.report) =
  match report.Controller.attribution with
  | None -> Error "report carries no attribution (run with profile:true)"
  | Some a ->
    let grid = Attribution.grid a in
    let nlanes = Attribution.lane_count a in
    let lane_labels = Array.init nlanes (Attribution.lane_label a) in
    let lane_buckets = Array.init nlanes (Attribution.lane_buckets a) in
    let totals = Attribution.totals a in
    (* The dominant region (most fabric cycles) carries the critical path
       the one-liner reports. *)
    let cp_nodes, cp_lat, cp_pct =
      let best =
        List.fold_left
          (fun best (r : Controller.region_report) ->
            match best with
            | Some (b : Controller.region_report)
              when b.Controller.accel_cycles >= r.Controller.accel_cycles ->
              best
            | _ -> if r.Controller.accepted then Some r else best)
          None report.Controller.regions
      in
      match best with
      | None -> ([], 0.0, 0.0)
      | Some r ->
        let pct =
          100.0
          *. r.Controller.critical_path_latency
          *. float_of_int r.Controller.accel_iterations
          /. float_of_int (max 1 r.Controller.accel_cycles)
        in
        (r.Controller.critical_path, r.Controller.critical_path_latency, pct)
    in
    Ok
      {
        kernel;
        grid_name = grid.Grid.name;
        rows = grid.Grid.rows;
        cols = grid.Grid.cols;
        ls_entries = grid.Grid.ls_entries;
        mem_ports = grid.Grid.mem_ports;
        total_cycles = report.Controller.total_cycles;
        accel_cycles = Attribution.engine_cycles a;
        config_cycles = Attribution.config_cycles a;
        attributed_cycles = Attribution.total_cycles a;
        iterations = Attribution.iterations a;
        windows = Attribution.windows a;
        lane_labels;
        lane_buckets;
        totals;
        ii = Attribution.ii_summary a;
        critical_path = cp_nodes;
        critical_path_latency = cp_lat;
        critical_path_pct = cp_pct;
        noc_claims = Attribution.noc_claims a;
        noc_busy = Attribution.noc_busy a;
        port_claims = Attribution.port_claims a;
        port_busy = Attribution.port_busy a;
        mem_levels = Hierarchy.level_counts report.Controller.hier;
        dominant = dominant_of totals;
      }

let of_attribution ~kernel ?(critical_path = ([], 0.0)) ?(mem_levels = [])
    (a : Attribution.t) =
  let grid = Attribution.grid a in
  let nlanes = Attribution.lane_count a in
  let cp_nodes, cp_lat = critical_path in
  let cp_pct =
    100.0 *. cp_lat
    *. float_of_int (Attribution.iterations a)
    /. float_of_int (max 1 (Attribution.engine_cycles a))
  in
  let totals = Attribution.totals a in
  {
    kernel;
    grid_name = grid.Grid.name;
    rows = grid.Grid.rows;
    cols = grid.Grid.cols;
    ls_entries = grid.Grid.ls_entries;
    mem_ports = grid.Grid.mem_ports;
    total_cycles = Attribution.total_cycles a;
    accel_cycles = Attribution.engine_cycles a;
    config_cycles = Attribution.config_cycles a;
    attributed_cycles = Attribution.total_cycles a;
    iterations = Attribution.iterations a;
    windows = Attribution.windows a;
    lane_labels = Array.init nlanes (Attribution.lane_label a);
    lane_buckets = Array.init nlanes (Attribution.lane_buckets a);
    totals;
    ii = Attribution.ii_summary a;
    critical_path = cp_nodes;
    critical_path_latency = cp_lat;
    critical_path_pct = cp_pct;
    noc_claims = Attribution.noc_claims a;
    noc_busy = Attribution.noc_busy a;
    port_claims = Attribution.port_claims a;
    port_busy = Attribution.port_busy a;
    mem_levels;
    dominant = dominant_of totals;
  }

let closes t =
  Array.for_all
    (fun b -> Array.fold_left ( + ) 0 b = t.attributed_cycles)
    t.lane_buckets
  && Array.fold_left ( + ) 0 t.totals
     = t.attributed_cycles * Array.length t.lane_buckets

(* ------------------------------------------------------------------ *)
(* JSON (the stable mesa-profile-v1 schema). *)

let buckets_json b =
  Json.Assoc
    (List.map
       (fun bk -> (Attribution.bucket_name bk, Json.Int b.(Attribution.bucket_index bk)))
       Attribution.buckets)

let int_array_json a = Json.List (Array.to_list (Array.map (fun v -> Json.Int v) a))

let to_json t =
  Json.Assoc
    [
      ("schema", Json.String schema);
      ("kernel", Json.String t.kernel);
      ( "grid",
        Json.Assoc
          [
            ("name", Json.String t.grid_name);
            ("rows", Json.Int t.rows);
            ("cols", Json.Int t.cols);
            ("ls_entries", Json.Int t.ls_entries);
            ("mem_ports", Json.Int t.mem_ports);
          ] );
      ( "cycles",
        Json.Assoc
          [
            ("total", Json.Int t.total_cycles);
            ("accel", Json.Int t.accel_cycles);
            ("config", Json.Int t.config_cycles);
            ("attributed", Json.Int t.attributed_cycles);
          ] );
      ("iterations", Json.Int t.iterations);
      ("windows", Json.Int t.windows);
      ("buckets", buckets_json t.totals);
      ( "lanes",
        Json.List
          (Array.to_list
             (Array.mapi
                (fun i b ->
                  Json.Assoc
                    [
                      ("lane", Json.String t.lane_labels.(i));
                      ("buckets", buckets_json b);
                    ])
                t.lane_buckets)) );
      ( "ii",
        Json.Assoc
          [
            ("iterations", Json.Int t.ii.Attribution.ii_iterations);
            ("mean", Json.Float t.ii.Attribution.ii_mean);
            ("rec_mean", Json.Float t.ii.Attribution.ii_rec_mean);
            ("mem_mean", Json.Float t.ii.Attribution.ii_mem_mean);
            ("fu_mean", Json.Float t.ii.Attribution.ii_fu_mean);
            ("rec_bound", Json.Int t.ii.Attribution.ii_rec_bound);
            ("mem_bound", Json.Int t.ii.Attribution.ii_mem_bound);
            ("fu_bound", Json.Int t.ii.Attribution.ii_fu_bound);
          ] );
      ( "critical_path",
        Json.Assoc
          [
            ("nodes", Json.List (List.map (fun n -> Json.Int n) t.critical_path));
            ("latency", Json.Float t.critical_path_latency);
            ("pct", Json.Float t.critical_path_pct);
          ] );
      ( "noc",
        Json.Assoc
          [
            ("claims", int_array_json t.noc_claims);
            ("busy", int_array_json t.noc_busy);
          ] );
      ( "ports",
        Json.Assoc
          [ ("claims", Json.Int t.port_claims); ("busy", Json.Int t.port_busy) ]
      );
      ("mem", Json.Assoc (List.map (fun (k, v) -> (k, Json.Int v)) t.mem_levels));
      ("dominant_stall", Json.String (Attribution.bucket_name t.dominant));
    ]

exception Parse of string

let of_json j =
  let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt in
  let mem name j =
    match Json.member name j with Some v -> v | None -> fail "missing %S" name
  in
  let int name j =
    match Json.to_int (mem name j) with
    | Some v -> v
    | None -> fail "%S is not an int" name
  in
  let flt name j =
    match Json.to_float (mem name j) with
    | Some v -> v
    | None -> fail "%S is not a number" name
  in
  let str name j =
    match Json.to_string_opt (mem name j) with
    | Some v -> v
    | None -> fail "%S is not a string" name
  in
  let int_array name j =
    match Json.to_list (mem name j) with
    | Some l ->
      Array.of_list
        (List.map
           (fun v ->
             match Json.to_int v with
             | Some i -> i
             | None -> fail "%S holds a non-int" name)
           l)
    | None -> fail "%S is not a list" name
  in
  let buckets_of j =
    let b = Array.make Attribution.bucket_count 0 in
    List.iter
      (fun bk -> b.(Attribution.bucket_index bk) <- int (Attribution.bucket_name bk) j)
      Attribution.buckets;
    b
  in
  try
    (match Json.to_string_opt (mem "schema" j) with
    | Some s when s = schema -> ()
    | Some s -> fail "unsupported schema %S (want %S)" s schema
    | None -> fail "missing schema");
    let grid = mem "grid" j in
    let cycles = mem "cycles" j in
    let lanes =
      match Json.to_list (mem "lanes" j) with
      | Some l -> l
      | None -> fail "\"lanes\" is not a list"
    in
    let lane_labels = Array.of_list (List.map (str "lane") lanes) in
    let lane_buckets =
      Array.of_list (List.map (fun l -> buckets_of (mem "buckets" l)) lanes)
    in
    let ii = mem "ii" j in
    let cp = mem "critical_path" j in
    let noc = mem "noc" j in
    let ports = mem "ports" j in
    let mem_levels =
      match Json.to_assoc (mem "mem" j) with
      | Some kvs ->
        List.map
          (fun (k, v) ->
            match Json.to_int v with
            | Some i -> (k, i)
            | None -> fail "mem.%s is not an int" k)
          kvs
      | None -> fail "\"mem\" is not an object"
    in
    let dominant =
      let name = str "dominant_stall" j in
      match Attribution.bucket_of_name name with
      | Some b -> b
      | None -> fail "unknown bucket %S" name
    in
    Ok
      {
        kernel = str "kernel" j;
        grid_name = str "name" grid;
        rows = int "rows" grid;
        cols = int "cols" grid;
        ls_entries = int "ls_entries" grid;
        mem_ports = int "mem_ports" grid;
        total_cycles = int "total" cycles;
        accel_cycles = int "accel" cycles;
        config_cycles = int "config" cycles;
        attributed_cycles = int "attributed" cycles;
        iterations = int "iterations" j;
        windows = int "windows" j;
        lane_labels;
        lane_buckets;
        totals = buckets_of (mem "buckets" j);
        ii =
          {
            Attribution.ii_iterations = int "iterations" ii;
            ii_mean = flt "mean" ii;
            ii_rec_mean = flt "rec_mean" ii;
            ii_mem_mean = flt "mem_mean" ii;
            ii_fu_mean = flt "fu_mean" ii;
            ii_rec_bound = int "rec_bound" ii;
            ii_mem_bound = int "mem_bound" ii;
            ii_fu_bound = int "fu_bound" ii;
          };
        critical_path = Array.to_list (int_array "nodes" cp);
        critical_path_latency = flt "latency" cp;
        critical_path_pct = flt "pct" cp;
        noc_claims = int_array "claims" noc;
        noc_busy = int_array "busy" noc;
        port_claims = int "claims" ports;
        port_busy = int "busy" ports;
        mem_levels;
        dominant;
      }
  with Parse msg -> Error ("profile: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Regression gate. *)

type violation = {
  v_key : string;
  v_before : int;
  v_after : int;
  v_limit : float;
}

let diff ?(tolerances = []) ~max_regress before after =
  let limit key =
    match List.assoc_opt key tolerances with Some l -> l | None -> max_regress
  in
  (* Exact integer gate: [after] may exceed [before] by at most
     floor(before * limit%), so 0% flags any increase. The limit doubles as
     an absolute floor of floor(limit) cycles — a bucket growing from zero
     would otherwise trip any nonzero tolerance. *)
  let check key b a acc =
    let l = limit key in
    let allowance =
      max (int_of_float (Float.of_int b *. l /. 100.0)) (int_of_float l)
    in
    if a > b + allowance then { v_key = key; v_before = b; v_after = a; v_limit = l } :: acc
    else acc
  in
  let acc =
    List.fold_left
      (fun acc bk ->
        let i = Attribution.bucket_index bk in
        check (Attribution.bucket_name bk) before.totals.(i) after.totals.(i) acc)
      [] Attribution.buckets
  in
  List.rev
    (check "attributed" before.attributed_cycles after.attributed_cycles acc)

let render_violations vs =
  String.concat ""
    (List.map
       (fun v ->
         Printf.sprintf "  REGRESSED %-16s %d -> %d (limit +%.1f%%)\n" v.v_key
           v.v_before v.v_after v.v_limit)
       vs)

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let ii_kind t =
  let r = t.ii.Attribution.ii_rec_bound
  and m = t.ii.Attribution.ii_mem_bound
  and f = t.ii.Attribution.ii_fu_bound in
  if r >= m && r >= f then "II-bound (recurrence)"
  else if m >= f then "port-bound (memory throughput)"
  else "FU-bound (iterative units)"

let render t =
  let buf = Buffer.create 2048 in
  let nlanes = Array.length t.lane_buckets in
  Printf.bprintf buf "profile: %s on %s (%dx%d PEs, %d ls, %d ports)\n" t.kernel
    t.grid_name t.rows t.cols t.ls_entries t.mem_ports;
  Printf.bprintf buf
    "  cycles: total %d | fabric %d | config %d | attributed %d\n"
    t.total_cycles t.accel_cycles t.config_cycles t.attributed_cycles;
  Printf.bprintf buf "  windows %d, iterations %d\n\n" t.windows t.iterations;
  let denom = float_of_int (max 1 (t.attributed_cycles * max 1 nlanes)) in
  Buffer.add_string buf
    (Chart.bars ~title:"cycle attribution (% of lane-cycles)"
       (List.map
          (fun bk ->
            ( Attribution.bucket_name bk,
              100.0 *. float_of_int t.totals.(Attribution.bucket_index bk) /. denom ))
          Attribution.buckets));
  Buffer.add_char buf '\n';
  let lane_util i =
    let b = t.lane_buckets.(i) in
    (float_of_int
       (b.(Attribution.bucket_index Attribution.Busy)
       + b.(Attribution.bucket_index Attribution.Long_op)))
    /. float_of_int (max 1 t.attributed_cycles)
  in
  Buffer.add_string buf
    (Chart.heat ~title:"PE utilization (busy+long_op fraction)" ~rows:t.rows
       ~cols:t.cols (fun r c -> lane_util ((r * t.cols) + c)));
  Buffer.add_char buf '\n';
  if t.ls_entries > 0 then begin
    Buffer.add_string buf
      (Chart.heat ~title:"load-store lanes" ~rows:1 ~cols:t.ls_entries
         (fun _ e -> lane_util ((t.rows * t.cols) + e)));
    Buffer.add_char buf '\n'
  end;
  if Array.length t.noc_busy > 0 then begin
    Buffer.add_string buf
      (Chart.heat ~title:"NoC link occupancy (busy fraction)" ~rows:1
         ~cols:(Array.length t.noc_busy) (fun _ s ->
           float_of_int t.noc_busy.(s) /. float_of_int (max 1 t.accel_cycles)));
    Buffer.add_char buf '\n'
  end;
  Printf.bprintf buf "  ports: %d accesses over %d busy cycles (%.1f%% of fabric)\n"
    t.port_claims t.port_busy
    (100.0 *. float_of_int t.port_busy /. float_of_int (max 1 t.accel_cycles));
  Printf.bprintf buf "  mem: %s\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) t.mem_levels));
  Printf.bprintf buf
    "  II: mean %.2f (rec %.2f, mem %.2f, fu %.2f) over %d iterations\n"
    t.ii.Attribution.ii_mean t.ii.Attribution.ii_rec_mean
    t.ii.Attribution.ii_mem_mean t.ii.Attribution.ii_fu_mean
    t.ii.Attribution.ii_iterations;
  let dom_pct =
    100.0
    *. float_of_int t.totals.(Attribution.bucket_index t.dominant)
    /. denom
  in
  Printf.bprintf buf
    "  bottleneck: %s (%.1f%% of lane-cycles); %s; critical path %d nodes, \
     latency %.1f = %.1f%% of fabric cycles%s\n"
    (Attribution.bucket_name t.dominant)
    dom_pct (ii_kind t)
    (List.length t.critical_path)
    t.critical_path_latency t.critical_path_pct
    (if t.critical_path_pct > 100.0 then " (pipelined overlap)" else "");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Perfetto timeline lanes. *)

let pid_fabric = 1
let pid_ports = 2

let timeline a =
  let spans = ref [] in
  let emit s = spans := s :: !spans in
  emit (Trace.process_name ~pid:0 "controller");
  emit (Trace.process_name ~pid:pid_fabric "fabric");
  emit (Trace.process_name ~pid:pid_ports "cache ports");
  for lane = 0 to Attribution.lane_count a - 1 do
    emit
      (Trace.thread_name ~pid:pid_fabric ~tid:lane (Attribution.lane_label a lane));
    List.iter
      (fun (start, dur, bucket) ->
        match bucket with
        | Attribution.Idle | Attribution.Masked_faulty -> ()
        | _ ->
          let d = int_of_float (Float.round dur) in
          if d >= 1 then
            emit
              (Trace.span ~pid:pid_fabric ~tid:lane ~cat:"fabric"
                 ~ts:(int_of_float (Float.round start))
                 ~dur:d
                 (Attribution.bucket_name bucket)))
      (Attribution.lane_intervals a lane)
  done;
  for port = 0 to Attribution.port_count a - 1 do
    emit
      (Trace.thread_name ~pid:pid_ports ~tid:port (Printf.sprintf "port_%d" port));
    List.iter
      (fun (issue, service) ->
        let d = int_of_float (Float.round service) in
        if d >= 1 then
          emit
            (Trace.span ~pid:pid_ports ~tid:port ~cat:"mem"
               ~ts:(int_of_float (Float.round issue))
               ~dur:d "access"))
      (Attribution.port_intervals a port)
  done;
  List.rev !spans
