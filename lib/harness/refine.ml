(* Harness wiring for Mapper.refine: the model predicts, the engine
   confirms. Confirmation re-executes the kernel end to end on fresh state
   and validates the outputs against the OCaml reference, so a placement
   the pass adopts is both faster and semantically intact. *)

type report = {
  kernel : string;
  baseline_cycles : int;
  refined_cycles : int;
  model_baseline : int;
  model_refined : int;
  rounds : int;
  proposed : int;
  confirmed : int;
  accepted : int;
  iterations : int;
  placement : Placement.t;
  baseline : Placement.t;
  config : Accel_config.t;
  dfg : Dfg.t;
}

(* The model only needs enough iterations to rank candidates; past the
   steady state extra iterations just rescale every estimate by the same
   II, so a capped horizon keeps scoring cheap without disturbing the
   ordering. *)
let model_horizon iterations = min iterations 128

let config_around ~(k : Kernel.t) ~(dfg : Dfg.t) ~(grid : Grid.t) placement =
  let mo = Mem_opt.analyze dfg in
  let ld =
    Loop_opt.decide ~grid ~dfg
      ~pragma:(Program.pragma_at k.Kernel.program dfg.Dfg.entry_addr)
  in
  Accel_config.with_opts ~forwarding:mo.Mem_opt.forwarding
    ~vector_groups:mo.Mem_opt.vector_groups ~prefetched:mo.Mem_opt.prefetched
    ~tiling:ld.Loop_opt.tiling ~pipelined:true placement

let execute_once ?attribution ~(k : Kernel.t) ~dfg config =
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let hier = Hierarchy.create Hierarchy.default_config in
  let finish out =
    Hierarchy.release hier;
    Main_memory.release mem;
    out
  in
  match Engine.execute ?attribution ~config ~dfg ~machine ~hier () with
  | Error e -> finish (Error e)
  | Ok res ->
    if not res.Engine.completed then finish (Error "loop did not complete")
    else (
      match k.Kernel.check mem with
      | Error e -> finish (Error ("output check failed: " ^ e))
      | Ok () -> finish (Ok res))

let run_core ?(seed = 0) ?max_rounds ?beam ~kind ~grid ?baseline ?measured
    (k : Kernel.t) =
  let dfg = Runner.dfg_of_kernel k in
  let baseline =
    match baseline with
    | Some p -> Ok p
    | None -> Runner.placement_of ~kind ~grid k
  in
  match baseline with
  | Error e -> Error e
  | Ok baseline -> (
    let config_of = config_around ~k ~dfg ~grid in
    match execute_once ~k ~dfg (config_of baseline) with
    | Error e -> Error ("baseline execution failed: " ^ e)
    | Ok base_res ->
      let iterations = base_res.Engine.iterations in
      let horizon = model_horizon iterations in
      (* A measured snapshot (a profiled engine window) tightens the
         model: per-node firing latencies and AMATs replace the static
         tables, so the ranking reflects the fabric this kernel actually
         saw rather than the generic seed. *)
      let op_latency = Option.map Cost_model.op_oracle_of_measured measured in
      let mem_latency =
        Option.map Cost_model.mem_oracle_of_measured measured
      in
      let predict pl =
        Cost_model.estimate ?op_latency ?mem_latency ~config:(config_of pl)
          ~dfg ~iterations:horizon ()
      in
      let confirm pl =
        match execute_once ~k ~dfg (config_of pl) with
        | Ok res -> Some res.Engine.cycles
        | Error _ -> None
      in
      let r =
        Mapper.refine ~seed ?max_rounds ?beam ~predict ~confirm ~dfg
          ~baseline_cycles:base_res.Engine.cycles baseline
      in
      Ok
        {
          kernel = k.Kernel.name;
          baseline_cycles = r.Mapper.baseline_cycles;
          refined_cycles = r.Mapper.refined_cycles;
          model_baseline = (predict baseline).Cost_model.cycles;
          model_refined = (predict r.Mapper.placement).Cost_model.cycles;
          rounds = r.Mapper.rounds;
          proposed = r.Mapper.proposed;
          confirmed = r.Mapper.confirmed;
          accepted = r.Mapper.accepted;
          iterations;
          placement = r.Mapper.placement;
          baseline;
          config = config_of r.Mapper.placement;
          dfg;
        })

let run ?seed ?max_rounds ?beam ?(kind = Interconnect.Mesh_noc)
    ?(grid = Grid.m64) (k : Kernel.t) =
  run_core ?seed ?max_rounds ?beam ~kind ~grid k

let run_measured ?seed ?max_rounds ?beam ?(kind = Interconnect.Mesh_noc)
    ?(grid = Grid.m64) ?baseline ~measured (k : Kernel.t) =
  run_core ?seed ?max_rounds ?beam ~kind ~grid ?baseline ~measured k

let config_for (r : report) placement =
  let grid = placement.Placement.grid in
  config_around ~k:(Workloads.find r.kernel) ~dfg:r.dfg ~grid placement

let profile (r : report) placement =
  let k = Workloads.find r.kernel in
  let config = config_for r placement in
  let grid = placement.Placement.grid in
  let a = Attribution.create ~grid () in
  Attribution.begin_window a ~at:0.0;
  match execute_once ~attribution:a ~k ~dfg:r.dfg config with
  | Error e -> Error e
  | Ok _ ->
    let est =
      Cost_model.estimate ~config ~dfg:r.dfg
        ~iterations:(model_horizon r.iterations) ()
    in
    Ok
      (Profile.of_attribution ~kernel:r.kernel
         ~critical_path:(est.Cost_model.critical, est.Cost_model.iter_latency)
         a)

let experiment ?jobs:_ () =
  let kernels = [ "nn"; "kmeans"; "bfs"; "cfd"; "hotspot" ] in
  let t =
    Tables.create ~title:"Model-guided placement refinement (M-64)"
      [
        ("kernel", Tables.Left);
        ("baseline cycles", Tables.Right);
        ("refined cycles", Tables.Right);
        ("speedup", Tables.Right);
        ("rounds", Tables.Right);
        ("proposed", Tables.Right);
        ("confirmed", Tables.Right);
        ("accepted", Tables.Right);
      ]
  in
  let improved = ref 0 in
  let gains = ref [] in
  List.iter
    (fun name ->
      match run (Workloads.find name) with
      | Error e -> Tables.add_row t [ name; "-"; "-"; "-"; "-"; "-"; "-"; e ]
      | Ok r ->
        if r.refined_cycles < r.baseline_cycles then incr improved;
        gains :=
          (float_of_int r.baseline_cycles /. float_of_int (max 1 r.refined_cycles))
          :: !gains;
        Tables.add_row t
          [
            name;
            Tables.icell r.baseline_cycles;
            Tables.icell r.refined_cycles;
            Tables.xcell
              (float_of_int r.baseline_cycles /. float_of_int (max 1 r.refined_cycles));
            string_of_int r.rounds;
            string_of_int r.proposed;
            string_of_int r.confirmed;
            string_of_int r.accepted;
          ])
    kernels;
  let best = List.fold_left Float.max 1.0 !gains in
  {
    Experiments.table = t;
    summary =
      [
        ("kernels", float_of_int (List.length kernels));
        ("improved", float_of_int !improved);
        ("best_speedup", best);
      ];
  }

let report_to_json (r : report) =
  Json.Assoc
    [
      ("schema", Json.String "mesa-refine-v1");
      ("kernel", Json.String r.kernel);
      ("baseline_cycles", Json.Int r.baseline_cycles);
      ("refined_cycles", Json.Int r.refined_cycles);
      ("model_baseline", Json.Int r.model_baseline);
      ("model_refined", Json.Int r.model_refined);
      ("rounds", Json.Int r.rounds);
      ("proposed", Json.Int r.proposed);
      ("confirmed", Json.Int r.confirmed);
      ("accepted", Json.Int r.accepted);
      ("iterations", Json.Int r.iterations);
    ]
