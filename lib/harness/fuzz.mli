(** Differential fuzzing of the whole MESA stack.

    Each case draws a random {!Tile_dsl} program ({!Tile_gen.generate}) and
    a random fabric configuration (the same grid / port / interconnect /
    cache axes the differential qcheck suite uses), then runs the program
    through the RV32 interpreter and the full controller pipeline and
    demands:
    - bit-identical final memory and architectural registers,
    - the kernel's DSL-evaluator reference ({!Tile_lower.built.check}) —
      this third oracle is what catches *lowering* bugs, which
      interpreter-vs-accelerator alone cannot (both would execute the same
      miscompiled program),
    - exact cycle-accounting closure
      ([total = cpu + accel + overhead]), and, on profiled cases, stall
      attribution that closes against it.

    Everything is deterministic from [seed]: per-case seeds are drawn
    sequentially up front and distributed to workers, so the summary — and
    its [digest] — are bit-identical across runs and [--jobs] values.

    On failure the program is shrunk ({!Tile_gen.shrink_candidates},
    greedy re-run) to a minimal reproducer, ready to be written to a corpus
    directory as JSON and replayed with [mesa_cli fuzz --replay]. *)

type fabric = {
  rows : int;
  cols : int;
  ports : int;
  kind : Interconnect.kind;
  l1_kb : int;
  l2_kb : int;
  profile : bool;  (** arm the cycle-attribution collector for this case *)
}

(** The draw axes, shared with the qcheck differential tests (test/gen.ml)
    so there is exactly one generator definition. *)

val rows_choices : int array
val cols_choices : int array
val ports_choices : int array
val kind_choices : Interconnect.kind array
val l1_choices : int array
val l2_choices : int array

val draw_fabric : Prng.t -> fabric
val fabric_to_string : fabric -> string
val fabric_to_json : fabric -> Json.t
val fabric_of_json : Json.t -> (fabric, string) result

(** A passing case's fingerprint — folded into the run digest. *)
type observation = {
  cycles : int;
  offloads : int;
  mem_checksum : int;
}

val run_case :
  ?defect:Tile_lower.defect ->
  Tile_dsl.spec ->
  fabric ->
  (observation, string) result
(** One full differential check; [Error detail] describes the first
    violated oracle. *)

type failure = {
  index : int;
  kernel_seed : int;
  fabric : fabric;
  detail : string;         (** of the original (unshrunk) failure *)
  spec : Tile_dsl.spec;    (** as generated *)
  shrunk : Tile_dsl.spec;  (** minimal reproducer *)
  shrunk_detail : string;
  shrink_steps : int;      (** accepted reduction steps *)
}

val shrink :
  ?defect:Tile_lower.defect ->
  ?max_attempts:int ->
  Tile_dsl.spec ->
  fabric ->
  Tile_dsl.spec * string * int
(** Greedily minimize a failing spec under the same fabric; returns the
    smallest still-failing spec, its failure detail and the number of
    accepted steps. [max_attempts] bounds total re-executions (default
    300). *)

type summary = {
  cases : int;
  offloaded_cases : int;  (** cases where at least one region ran on the fabric *)
  total_offloads : int;
  failures : failure list;
  digest : int;           (** FNV-1a over every case's observation *)
}

val run :
  ?jobs:int ->
  ?defect:Tile_lower.defect ->
  ?max_shrink:int ->
  seed:int ->
  count:int ->
  unit ->
  summary

val failure_to_json : master_seed:int -> failure -> Json.t
(** Self-contained corpus entry: seeds, fabric, original + shrunk spec,
    disassembly of the shrunk program, failure details. *)

val write_corpus : dir:string -> master_seed:int -> failure -> string
(** Write the corpus entry into [dir] (created if needed); returns the file
    path. *)

val replay :
  ?defect:Tile_lower.defect -> Json.t -> (observation, string) result
(** Re-run a corpus entry (its shrunk spec under its fabric). *)
