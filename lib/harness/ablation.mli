(** Ablation study over MESA's design choices (the knobs DESIGN.md calls
    out): each variant strips exactly one mechanism from the full
    configuration and re-runs the suite, so the table attributes the
    speedup to its sources.

    Variants:
    - [full]           everything on (the Figure 11 configuration)
    - [no_tiling]      spatial tiling disabled (Figure 6 off)
    - [no_pipelining]  iterations execute back-to-back
    - [no_mem_opts]    store-load forwarding / vectorization / prefetch off
    - [no_iterative]   runtime reconfiguration off
    - [nothing]        bare Algorithm 1 placement only *)

type variant = Full | No_tiling | No_pipelining | No_mem_opts | No_iterative | Nothing

val variant_name : variant -> string
val all_variants : variant list

val run_variant : ?grid:Grid.t -> variant -> Kernel.t -> Runner.measurement
(** One kernel under one variant (functional outputs are still verified). *)

val experiment : ?jobs:int -> ?grid:Grid.t -> ?kernels:Kernel.t list -> unit -> Experiments.outcome
(** The full ablation table: per kernel, each variant's speedup over the
    16-core baseline. [jobs] fans the per-(kernel, variant) runs out on a
    domain {!Pool} (the outcome is bit-identical for every value); a geomean row summarizes how much each mechanism is
    worth. Defaults to four representative kernels (one FP-streaming, one
    predicated, one vectorizable, one memory-bound). *)
