(** Unified kernel execution across every substrate the evaluation
    compares, each returning the same measurement record (cycles, energy,
    output validation). *)

type measurement = {
  label : string;
  cycles : int;
  energy_nj : float;
  checked : (unit, string) result;  (** output validated against the OCaml
                                        reference *)
  stats : Stats.snapshot;           (** end-of-run counter readout — full
                                        controller tree for MESA runs, the
                                        CPU summary group for baselines *)
}

val speedup : baseline:measurement -> measurement -> float
val efficiency : baseline:measurement -> measurement -> float

val single_core : Kernel.t -> measurement
(** One OoO core (the Figure 14 baseline). *)

val multicore : ?cores:int -> Kernel.t -> measurement
(** The 16-core baseline (Figure 11). *)

val mesa :
  ?grid:Grid.t ->
  ?optimize:bool ->
  ?iterative:bool ->
  ?mem_ports:int ->
  ?inject:Fault.spec ->
  ?profile:bool ->
  Kernel.t ->
  measurement * Controller.report
(** Full MESA run (CPU + transparent offload). [mem_ports] overrides the
    accelerator's cache ports (Figure 15's ideal-memory variant); [inject]
    arms a fault schedule for the run (the output check still validates
    bit-exact results after recovery); [profile] arms the cycle-attribution
    collector, returned in [report.attribution] (timing stays
    bit-identical — see {!Profile.of_report}). *)

val mesa_measure :
  ?grid:Grid.t ->
  ?optimize:bool ->
  ?iterative:bool ->
  ?mem_ports:int ->
  ?inject:Fault.spec ->
  ?profile:bool ->
  Kernel.t ->
  measurement
(** {!mesa} for callers that only want the measurement: the report's cache
    hierarchy is recycled ({!Hierarchy.release}) before returning, which
    keeps sweep loops off the allocator. *)

val dfg_of_kernel : Kernel.t -> Dfg.t
(** The kernel's hot-loop LDFG, for the analytic baselines (OpenCGRA /
    DynaSpAM) and inspection. Raises [Failure] on kernels whose loop cannot
    be translated.

    Memoized on (kernel name, iteration count): translation is pure, the
    returned graph is immutable and shared, and the memo table is
    mutex-protected so pool workers can race on it safely. Failures are not
    cached. *)

val placement_of :
  ?kind:Interconnect.kind ->
  grid:Grid.t ->
  Kernel.t ->
  (Placement.t, string) result
(** The kernel's Algorithm-1 placement on [grid] (default backend
    [Mesh_noc]), computed from a fresh performance model — the
    translation the engine-level experiments (fig12, table2) repeat per
    figure. Memoized like {!dfg_of_kernel}, keyed additionally by the grid
    geometry and interconnect kind; mapping errors are cached too (they are
    equally deterministic). *)

val swap_placement :
  ?kind:Interconnect.kind -> grid:Grid.t -> Kernel.t -> Placement.t -> unit
(** Atomically replace the memoized placement for (kernel, grid, [kind]) —
    how an accepted background refinement is installed into the warm
    translation memo. Readers racing the swap see either the old or the
    new placement, never a torn entry. The caller is responsible for the
    placement's validity (the refinement path only installs
    engine-confirmed, output-validated placements). *)

val translation_cache_stats : unit -> int * int * int
(** [(hits, misses, evictions)] over both memo tables since start (or the
    last {!clear_translation_cache}). An eviction is a wholesale reset of
    both tables on reaching the capacity bound. *)

val translation_cache_capacity : unit -> int
(** The combined entry bound across both memo tables (default 512). *)

val set_translation_cache_capacity : int -> unit
(** Change the bound. When an insert would reach it, both tables reset and
    the eviction counter increments — a sweep over hundreds of placements
    stays bounded while single-figure workloads never evict. Raises
    [Invalid_argument] on a capacity below 1. *)

val clear_translation_cache : unit -> unit
(** Drop every memoized LDFG and placement (tests use this to measure cold
    paths). *)

val dynaspam : ?config:Dynaspam.config -> Kernel.t -> measurement
(** DynaSpAM analytic model over the same dynamic iteration count; the
    non-loop remainder is charged at single-core cost. Unqualified kernels
    return the single-core measurement. *)
