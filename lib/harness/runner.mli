(** Unified kernel execution across every substrate the evaluation
    compares, each returning the same measurement record (cycles, energy,
    output validation). *)

type measurement = {
  label : string;
  cycles : int;
  energy_nj : float;
  checked : (unit, string) result;  (** output validated against the OCaml
                                        reference *)
  stats : Stats.snapshot;           (** end-of-run counter readout — full
                                        controller tree for MESA runs, the
                                        CPU summary group for baselines *)
}

val speedup : baseline:measurement -> measurement -> float
val efficiency : baseline:measurement -> measurement -> float

val single_core : Kernel.t -> measurement
(** One OoO core (the Figure 14 baseline). *)

val multicore : ?cores:int -> Kernel.t -> measurement
(** The 16-core baseline (Figure 11). *)

val mesa :
  ?grid:Grid.t ->
  ?optimize:bool ->
  ?iterative:bool ->
  ?mem_ports:int ->
  ?inject:Fault.spec ->
  Kernel.t ->
  measurement * Controller.report
(** Full MESA run (CPU + transparent offload). [mem_ports] overrides the
    accelerator's cache ports (Figure 15's ideal-memory variant); [inject]
    arms a fault schedule for the run (the output check still validates
    bit-exact results after recovery). *)

val dfg_of_kernel : Kernel.t -> Dfg.t
(** The kernel's hot-loop LDFG, for the analytic baselines (OpenCGRA /
    DynaSpAM) and inspection. Raises [Failure] on kernels whose loop cannot
    be translated. *)

val dynaspam : ?config:Dynaspam.config -> Kernel.t -> measurement
(** DynaSpAM analytic model over the same dynamic iteration count; the
    non-loop remainder is charged at single-core cost. Unqualified kernels
    return the single-core measurement. *)
